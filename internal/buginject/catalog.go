package buginject

import (
	"repro/internal/jit"
	"repro/internal/profile"
)

// Trigger combinators. Each returns a predicate over (compilation
// context, event). The catalog composes them so that every bug requires
// a genuine optimization interaction: a behavior occurring in code
// produced by another optimization, at lock/loop nesting, or in
// combination with other behaviors in the same compilation.

// on fires on every event of the given behavior.
func on(b profile.Behavior) Trigger {
	return func(_ *jit.Context, ev jit.Event) bool { return ev.Behavior == b }
}

// withProv fires when the behavior's event carries all provenance bits —
// the optimization acted on code another optimization produced.
func withProv(b profile.Behavior, prov jit.Prov) Trigger {
	return func(_ *jit.Context, ev jit.Event) bool {
		return ev.Behavior == b && ev.Prov&prov == prov
	}
}

// withPair fires when the behavior occurs in a compilation that already
// performed the other behavior.
func withPair(b, other profile.Behavior) Trigger {
	return func(ctx *jit.Context, ev jit.Event) bool {
		return ev.Behavior == b && ctx.Count(other) > 0
	}
}

// atSyncDepth fires when the behavior occurs at lock nesting >= d.
func atSyncDepth(b profile.Behavior, d int) Trigger {
	return func(_ *jit.Context, ev jit.Event) bool {
		return ev.Behavior == b && ev.SyncDepth >= d
	}
}

// atLoopDepth fires when the behavior occurs at loop nesting >= d.
func atLoopDepth(b profile.Behavior, d int) Trigger {
	return func(_ *jit.Context, ev jit.Event) bool {
		return ev.Behavior == b && ev.LoopDepth >= d
	}
}

// countAtLeast fires on the nth occurrence of the behavior in one
// compilation.
func countAtLeast(b profile.Behavior, n int64) Trigger {
	return func(ctx *jit.Context, ev jit.Event) bool {
		return ev.Behavior == b && ctx.Count(b) >= n
	}
}

// onFinish fires at the end-of-compilation checkpoint.
func onFinish(pred func(ctx *jit.Context) bool) Trigger {
	return func(ctx *jit.Context, ev jit.Event) bool {
		return ev.Pass == "finish" && pred(ctx)
	}
}

// counts builds a finish predicate requiring minimum per-behavior counts.
func counts(reqs map[profile.Behavior]int64) func(ctx *jit.Context) bool {
	return func(ctx *jit.Context) bool {
		for b, n := range reqs {
			if ctx.Count(b) < n {
				return false
			}
		}
		return true
	}
}

// onDereflect fires on de-reflection events (unlogged behavior) when the
// condition holds.
func onDereflect(cond func(ctx *jit.Context) bool) Trigger {
	return func(ctx *jit.Context, ev jit.Event) bool {
		return ev.Pass == "dereflect" && cond(ctx)
	}
}

// onTrapInsert fires when speculation is inserted and the condition holds.
func onTrapInsert(cond func(ctx *jit.Context, ev jit.Event) bool) Trigger {
	return func(ctx *jit.Context, ev jit.Event) bool {
		return ev.Pass == "traps" && ev.Behavior == jit.BehaviorNone && cond(ctx, ev)
	}
}

// and conjoins triggers on the same event.
func and(ts ...Trigger) Trigger {
	return func(ctx *jit.Context, ev jit.Event) bool {
		for _, t := range ts {
			if !t(ctx, ev) {
				return false
			}
		}
		return true
	}
}

// Catalog is the full 59-bug ground-truth set: 45 HotSpot + 14 OpenJ9,
// with kind/status/priority/version distributions matching the paper's
// Tables 2 and 3 and component distribution matching Table 4.
var Catalog = buildCatalog()

func buildCatalog() []*Bug {
	all := []int{8, 11, 17, 21, 23}
	var bugs []*Bug
	add := func(b *Bug) { bugs = append(bugs, b) }

	// ---- HotSpot: Global Value Numbering, C2 (10 bugs) ----
	add(&Bug{ID: "JDK-8301001", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: InProgress, Versions: all,
		Summary: "GVN subsumes a node inside an unrolled body and leaves a stale control edge",
		Trigger: withProv(profile.BGVN, jit.FromUnroll)})
	add(&Bug{ID: "JDK-8301002", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{8, 11, 17},
		Summary: "value numbering after scalar replacement hits a dangling field projection",
		Trigger: withPair(profile.BGVN, profile.BScalarReplace)})
	add(&Bug{ID: "JDK-8301003", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "GVN over inlined expression trees recurses past the node budget",
		Trigger: withProv(profile.BGVN, jit.FromInline)})
	add(&Bug{ID: "JDK-8301004", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{17, 21, 23},
		Summary: "iterative GVN reprocesses a coarsened lock region's phi",
		Trigger: withPair(profile.BGVN, profile.BLockCoarsen)})
	add(&Bug{ID: "JDK-8301005", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "hash collision after autobox elimination rewrites the constant table",
		Trigger: withPair(profile.BGVN, profile.BAutoboxElim)})
	add(&Bug{ID: "JDK-8301006", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: Fixed, Versions: []int{17},
		Summary: "GVN inside a peeled iteration misses the loop-exit projection",
		Trigger: withProv(profile.BGVN, jit.FromPeel)})
	add(&Bug{ID: "JDK-8301007", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{23},
		Summary: "repeated subsumption under a lock region corrupts the worklist",
		Trigger: and(countAtLeast(profile.BGVN, 3), atSyncDepth(profile.BGVN, 1))})
	add(&Bug{ID: "JDK-8301008", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "GVN after lock elimination reuses a released BoxLock slot",
		Trigger: withPair(profile.BGVN, profile.BLockElim)})
	add(&Bug{ID: "JDK-8301009", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Miscompile, Effect: EffectCorruptFold,
		Priority: "P2", Status: Fixed, Versions: []int{17},
		Summary: "constant fold after GVN-subsumed redundant store yields a stale value",
		Trigger: and(on(profile.BAlgebraic), func(ctx *jit.Context, _ jit.Event) bool {
			return ctx.Count(profile.BGVN) > 0 && ctx.Count(profile.BRedundantStore) > 0
		})})
	add(&Bug{ID: "JDK-8301010", Impl: HotSpot, Component: "Global Value Number., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: Duplicate, Versions: []int{8, 11},
		Summary: "GVN encounters a de-reflected call node with an unexpected kind",
		Trigger: onDereflect(func(ctx *jit.Context) bool { return ctx.Count(profile.BGVN) >= 2 })})

	// ---- HotSpot: Ideal Loop Optimization, C2 (7 bugs) ----
	add(&Bug{ID: "JDK-8302001", Impl: HotSpot, Component: "Ideal Loop Optimizat., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: InProgress, Versions: []int{8, 21},
		Summary: "unrolling a body that holds a monitor duplicates the BoxLock without renumbering",
		Trigger: atSyncDepth(profile.BUnroll, 1)})
	add(&Bug{ID: "JDK-8302002", Impl: HotSpot, Component: "Ideal Loop Optimizat., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{17, 21, 23},
		Summary: "peel followed by unswitch leaves the peeled guard outside the selected loop",
		Trigger: withPair(profile.BUnswitch, profile.BPeel)})
	add(&Bug{ID: "JDK-8302003", Impl: HotSpot, Component: "Ideal Loop Optimizat., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "pre/main/post split of an inlined body recomputes limits from the wrong frame",
		Trigger: withProv(profile.BPreMainPost, jit.FromInline)})
	add(&Bug{ID: "JDK-8302004", Impl: HotSpot, Component: "Ideal Loop Optimizat., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: Fixed, Versions: []int{8},
		Summary: "unswitching a condition produced by peeling duplicates the exit edge",
		Trigger: withProv(profile.BUnswitch, jit.FromPeel)})
	add(&Bug{ID: "JDK-8302005", Impl: HotSpot, Component: "Ideal Loop Optimizat., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{21},
		Summary: "nested-loop unroll interacts with an outer peel's backedge bookkeeping",
		Trigger: atLoopDepth(profile.BUnroll, 2)})
	add(&Bug{ID: "JDK-8302006", Impl: HotSpot, Component: "Ideal Loop Optimizat., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "unroll of a body holding a boxing round-trip reuses a dead cache node",
		Trigger: withPair(profile.BUnroll, profile.BAutoboxElim)})
	add(&Bug{ID: "JDK-8302007", Impl: HotSpot, Component: "Ideal Loop Optimizat., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: Duplicate, Versions: []int{8},
		Summary: "peeling twice in one compilation clones the same safepoint",
		Trigger: countAtLeast(profile.BPeel, 2)})

	// ---- HotSpot: Code Generation, C2 (7 bugs) ----
	add(&Bug{ID: "JDK-8303001", Impl: HotSpot, Component: "Code Generation, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: InProgress, Versions: []int{17, 21, 23},
		Summary: "matcher fails on a lock region whose body was produced by unroll+coarsen",
		Trigger: onFinish(func(ctx *jit.Context) bool {
			u := ctx.ProvUnion()
			return u.Has(jit.FromUnroll) && u.Has(jit.FromCoarsen) && ctx.Count(profile.BNestedLockElim) > 0
		})})
	add(&Bug{ID: "JDK-8303002", Impl: HotSpot, Component: "Code Generation, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{8, 11},
		Summary: "spill slot accounting wrong after heavy inlining with escape analysis",
		Trigger: onFinish(counts(map[profile.Behavior]int64{profile.BInline: 4, profile.BEscapeNone: 1}))})
	add(&Bug{ID: "JDK-8303003", Impl: HotSpot, Component: "Code Generation, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "flag register clobbered emitting a coarsened region with algebraic rewrites",
		Trigger: onFinish(counts(map[profile.Behavior]int64{profile.BLockCoarsen: 1, profile.BAlgebraic: 2}))})
	add(&Bug{ID: "JDK-8303004", Impl: HotSpot, Component: "Code Generation, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "branch shortening miscounts after unswitch duplicated a trap table",
		Trigger: onFinish(counts(map[profile.Behavior]int64{profile.BUnswitch: 1, profile.BDCE: 1}))})
	add(&Bug{ID: "JDK-8303005", Impl: HotSpot, Component: "Code Generation, C2", Kind: Miscompile, Effect: EffectDropLiveStore,
		Priority: "P3", Status: InProgress, Versions: []int{17},
		Summary: "store scheduler drops a live store when RSE ran inside an unrolled body",
		Trigger: withProv(profile.BRedundantStore, jit.FromUnroll)})
	add(&Bug{ID: "JDK-8303006", Impl: HotSpot, Component: "Code Generation, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: Duplicate, Versions: []int{8},
		Summary: "oop map for an inlined synchronized frame omits the displaced header",
		Trigger: and(on(profile.BInlineSync), atLoopDepth(profile.BInlineSync, 1))})
	add(&Bug{ID: "JDK-8303007", Impl: HotSpot, Component: "Code Generation, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{23},
		Summary: "peephole window crosses a deopt point inserted for an unstable if",
		Trigger: onTrapInsert(func(ctx *jit.Context, _ jit.Event) bool {
			return ctx.Count(profile.BUnswitch) > 0
		})})

	// ---- HotSpot: Ideal Graph Building, C2 (5 bugs) ----
	add(&Bug{ID: "JDK-8304001", Impl: HotSpot, Component: "Ideal Graph Building, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: InProgress, Versions: []int{17, 23},
		Summary: "parser merges a rewired monitor state with the wrong JVMS depth",
		Trigger: atSyncDepth(profile.BInlineSync, 1)})
	add(&Bug{ID: "JDK-8304002", Impl: HotSpot, Component: "Ideal Graph Building, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "deep inlining exhausts the parse-time monitor stack",
		Trigger: countAtLeast(profile.BInline, 6)})
	add(&Bug{ID: "JDK-8304003", Impl: HotSpot, Component: "Ideal Graph Building, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{8, 11, 17},
		Summary: "de-reflected callee inlined under a lock builds a malformed exception state",
		Trigger: and(on(profile.BInline), atSyncDepth(profile.BInline, 1),
			func(ctx *jit.Context, ev jit.Event) bool { return ev.Prov.Has(jit.FromDereflect) })})
	add(&Bug{ID: "JDK-8304004", Impl: HotSpot, Component: "Ideal Graph Building, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "inlining inside a loop body miscomputes the backedge phi count",
		Trigger: and(atLoopDepth(profile.BInline, 1), countAtLeast(profile.BInline, 3))})
	add(&Bug{ID: "JDK-8304005", Impl: HotSpot, Component: "Ideal Graph Building, C2", Kind: Miscompile, Effect: EffectDropSyncCleanup,
		Priority: "P3", Status: Fixed, Versions: []int{11},
		Summary: "rewired monitor's exception handler dropped when callee also unrolled a loop",
		Trigger: withPair(profile.BInlineSync, profile.BUnroll)})

	// ---- HotSpot: Macro Expansion, C2 (4 bugs) ----
	add(&Bug{ID: "JDK-8312744", Impl: HotSpot, Component: "Macro Expansion, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P2", Status: Fixed, Versions: []int{17, 21, 23},
		Summary: "lock coarsening retry after unrolling reshaped the region dereferences null",
		Trigger: withProv(profile.BLockCoarsen, jit.FromUnroll)})
	add(&Bug{ID: "JDK-8324174", Impl: HotSpot, Component: "Macro Expansion, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: Fixed, Versions: []int{21, 23},
		Summary: "three nested monitors overflow the eliminated-lock retry budget",
		Trigger: and(on(profile.BNestedLockElim), atSyncDepth(profile.BNestedLockElim, 2))})
	add(&Bug{ID: "JDK-8305003", Impl: HotSpot, Component: "Macro Expansion, C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{8, 11},
		Summary: "expanding a coarsened region twice reuses the freed FastLock node",
		Trigger: countAtLeast(profile.BLockCoarsen, 2)})
	add(&Bug{ID: "JDK-8305004", Impl: HotSpot, Component: "Macro Expansion, C2", Kind: Miscompile, Effect: EffectSkipCoarsenUnlock,
		Priority: "P3", Status: InProgress, Versions: []int{8},
		Summary: "coarsened region inside an unswitched loop loses its exceptional unlock",
		Trigger: withProv(profile.BLockCoarsen, jit.FromUnswitch)})

	// ---- HotSpot: Conditional Constant Propagation, C2 (1 bug) ----
	add(&Bug{ID: "JDK-8306001", Impl: HotSpot, Component: "Cond. Const. Prop., C2", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: InProgress, Versions: []int{23},
		Summary: "CCP folds a condition cloned by unswitching and frees the live twin",
		Trigger: withProv(profile.BAlgebraic, jit.FromUnswitch)})

	// ---- HotSpot: Runtime (4 bugs) ----
	add(&Bug{ID: "JDK-8307001", Impl: HotSpot, Component: "Runtime", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: InProgress, Versions: []int{17},
		Summary: "deopt of a frame holding a rewired monitor unwinds past the lock record",
		Trigger: and(on(profile.BDeoptRecompile), func(ctx *jit.Context, _ jit.Event) bool {
			has := false
			ctx.Fn.Body.Walk(func(n *jit.Node) bool {
				if n.Kind == jit.NSync {
					has = true
				}
				return !has
			})
			return has
		})})
	add(&Bug{ID: "JDK-8307002", Impl: HotSpot, Component: "Runtime", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "trap table relocation wrong when speculation lands inside a lock region",
		Trigger: onTrapInsert(func(_ *jit.Context, ev jit.Event) bool { return ev.SyncDepth >= 1 })})
	add(&Bug{ID: "JDK-8307003", Impl: HotSpot, Component: "Runtime", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: InProgress, Versions: []int{17, 23},
		Summary: "recompilation after deopt replays stale escape analysis results",
		Trigger: withPair(profile.BDeoptRecompile, profile.BEscapeNone)})
	add(&Bug{ID: "JDK-8307004", Impl: HotSpot, Component: "Runtime", Kind: Miscompile, Effect: EffectCorruptFold,
		Priority: "P4", Status: Duplicate, Versions: []int{8},
		Summary: "constant table patched during recompilation reads a torn entry",
		Trigger: withPair(profile.BAlgebraic, profile.BDeoptRecompile)})

	// ---- HotSpot: Other JIT Components (7 bugs) ----
	add(&Bug{ID: "JDK-8322743", Impl: HotSpot, Component: "Other JIT Compone.", Kind: Crash, Effect: EffectCrash,
		Priority: "P3", Status: Fixed, Versions: []int{21, 23},
		Summary: "loop + nested locks + inlining + escape analysis interaction corrupts the allocation state",
		Trigger: onFinish(counts(map[profile.Behavior]int64{
			profile.BUnroll: 1, profile.BNestedLockElim: 1, profile.BInline: 1, profile.BEscapeNone: 1}))})
	add(&Bug{ID: "JDK-8324853", Impl: HotSpot, Component: "Other JIT Compone.", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "escape analysis of an arg-escaping monitor confuses lock elision",
		Trigger: withPair(profile.BEscapeArg, profile.BLockElim)})
	add(&Bug{ID: "JDK-8308003", Impl: HotSpot, Component: "Other JIT Compone.", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{8},
		Summary: "scalar replacement inside an unrolled body duplicates the field local",
		Trigger: withPair(profile.BScalarReplace, profile.BUnroll)})
	add(&Bug{ID: "JDK-8308004", Impl: HotSpot, Component: "Other JIT Compone.", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: Duplicate, Versions: []int{8},
		Summary: "autobox elimination in a peeled iteration leaves a stale cache probe",
		Trigger: withProv(profile.BAutoboxElim, jit.FromPeel)})
	add(&Bug{ID: "JDK-8308005", Impl: HotSpot, Component: "Other JIT Compone.", Kind: Miscompile, Effect: EffectDropSyncCleanup,
		Priority: "P4", Status: InProgress, Versions: []int{8},
		Summary: "rewired monitor under reflection-eliminated call loses the unlock on throw",
		Trigger: and(on(profile.BInlineSync), func(ctx *jit.Context, _ jit.Event) bool {
			for _, ev := range ctx.Events {
				if ev.Pass == "dereflect" {
					return true
				}
			}
			return false
		})})
	add(&Bug{ID: "JDK-8308006", Impl: HotSpot, Component: "Other JIT Compone.", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{11},
		Summary: "DCE removes the landing pad of an unswitched loop twin",
		Trigger: withProv(profile.BDCE, jit.FromUnswitch)})
	add(&Bug{ID: "JDK-8308007", Impl: HotSpot, Component: "Other JIT Compone.", Kind: Crash, Effect: EffectCrash,
		Priority: "P4", Status: NotBackportable, Versions: []int{11},
		Summary: "redundant store elimination across a coarsened region removes a live store",
		Trigger: withProv(profile.BRedundantStore, jit.FromCoarsen)})

	// ---- OpenJ9 (14 bugs) ----
	add(&Bug{ID: "Issue-18919", Impl: OpenJ9, Component: "Redundancy Elimination", Kind: Miscompile, Effect: EffectDropLiveStore,
		Status: Fixed, Versions: []int{17, 21, 23},
		Summary: "store elimination inside an unrolled body removes the live iteration's store",
		Trigger: withProv(profile.BRedundantStore, jit.FromUnroll)})
	add(&Bug{ID: "Issue-18920", Impl: OpenJ9, Component: "Redundancy Elimination", Kind: Miscompile, Effect: EffectDropLiveStore,
		Status: InProgress, Versions: []int{8, 11, 17},
		Summary: "field store elimination confused by an inlined setter",
		Trigger: withProv(profile.BRedundantStore, jit.FromInline)})
	add(&Bug{ID: "Issue-18921", Impl: OpenJ9, Component: "Redundancy Elimination", Kind: Miscompile, Effect: EffectDropLiveStore,
		Status: InProgress, Versions: []int{8, 11, 17, 21, 23},
		Summary: "store under a coarsened monitor treated as redundant",
		Trigger: and(on(profile.BRedundantStore), atSyncDepth(profile.BRedundantStore, 1),
			withPair(profile.BRedundantStore, profile.BLockCoarsen))})
	add(&Bug{ID: "Issue-18922", Impl: OpenJ9, Component: "Redundancy Elimination", Kind: Miscompile, Effect: EffectDropLiveStore,
		Status: InProgress, Versions: []int{21, 23},
		Summary: "second RSE round after GVN drops a store GVN had renamed",
		Trigger: withPair(profile.BRedundantStore, profile.BGVN)})
	add(&Bug{ID: "Issue-19001", Impl: OpenJ9, Component: "Loop Optimization", Kind: Crash, Effect: EffectCrash,
		Status: InProgress, Versions: []int{8, 11, 17, 21, 23},
		Summary: "unroll of a region holding two monitors corrupts the loop table",
		Trigger: atSyncDepth(profile.BUnroll, 2)})
	add(&Bug{ID: "Issue-19002", Impl: OpenJ9, Component: "Loop Optimization", Kind: Miscompile, Effect: EffectCorruptFold,
		Status: Fixed, Versions: []int{11, 17},
		Summary: "trip-count fold wrong after peel+unroll of the same loop nest",
		Trigger: and(on(profile.BAlgebraic), func(ctx *jit.Context, _ jit.Event) bool {
			return ctx.Count(profile.BPeel) > 0 && ctx.Count(profile.BUnroll) > 0
		})})
	add(&Bug{ID: "Issue-19003", Impl: OpenJ9, Component: "Loop Optimization", Kind: Miscompile, Effect: EffectCorruptFold,
		Status: InProgress, Versions: []int{8, 11},
		Summary: "unswitch twin's folded condition evaluated with inverted sense",
		Trigger: and(on(profile.BAlgebraic), withProv(profile.BAlgebraic, jit.FromUnswitch))})
	add(&Bug{ID: "Issue-19101", Impl: OpenJ9, Component: "Pattern Recognition", Kind: Miscompile, Effect: EffectCorruptFold,
		Status: InProgress, Versions: []int{8, 11, 17, 21, 23},
		Summary: "idiom recognizer fires on an inlined expression with a widened operand",
		Trigger: and(on(profile.BAlgebraic), withProv(profile.BAlgebraic, jit.FromInline),
			countAtLeast(profile.BAlgebraic, 2))})
	add(&Bug{ID: "Issue-19102", Impl: OpenJ9, Component: "Pattern Recognition", Kind: Miscompile, Effect: EffectCorruptFold,
		Status: Fixed, Versions: []int{8},
		Summary: "recognizer walks past a trap node inserted in a hot guard",
		Trigger: onTrapInsert(func(ctx *jit.Context, _ jit.Event) bool {
			return ctx.Count(profile.BAlgebraic) > 0 && ctx.Count(profile.BInline) > 0
		})})
	add(&Bug{ID: "Issue-19201", Impl: OpenJ9, Component: "Dead Code Elimination", Kind: Miscompile, Effect: EffectDropLiveStore,
		Status: InProgress, Versions: []int{17, 21, 23},
		Summary: "DCE pass marks the store kept by RSE as dead",
		Trigger: and(on(profile.BRedundantStore), withPair(profile.BRedundantStore, profile.BDCE))})
	add(&Bug{ID: "Issue-19301", Impl: OpenJ9, Component: "Escape Analysis", Kind: Miscompile, Effect: EffectDropSyncCleanup,
		Status: InProgress, Versions: []int{8, 11, 17, 21, 23},
		Summary: "EA-driven lock elision miscommunicates with the inliner's monitor rewiring",
		Trigger: withPair(profile.BInlineSync, profile.BEscapeNone)})
	add(&Bug{ID: "Issue-19401", Impl: OpenJ9, Component: "SIMD Support", Kind: Miscompile, Effect: EffectCorruptFold,
		Status: Fixed, Versions: []int{11, 17},
		Summary: "vectorized unrolled body folds the remainder lane constant wrongly",
		Trigger: and(on(profile.BAlgebraic), withProv(profile.BAlgebraic, jit.FromUnroll),
			withPair(profile.BAlgebraic, profile.BPreMainPost))})
	add(&Bug{ID: "Issue-19501", Impl: OpenJ9, Component: "Value propagation", Kind: Miscompile, Effect: EffectCorruptFold,
		Status: Duplicate, Versions: []int{8, 11},
		Summary: "value propagation through a scalar-replaced field loses the wrap",
		Trigger: and(on(profile.BAlgebraic), withPair(profile.BAlgebraic, profile.BScalarReplace))})
	add(&Bug{ID: "Issue-19601", Impl: OpenJ9, Component: "Runtime", Kind: Crash, Effect: EffectCrash,
		Status: InProgress, Versions: []int{8, 11, 17, 21, 23},
		Summary: "deopt record for a frame with a coarsened monitor misparsed on recompile",
		Trigger: withPair(profile.BDeoptRecompile, profile.BLockCoarsen)})

	return bugs
}
