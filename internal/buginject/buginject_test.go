package buginject

import (
	"testing"

	"repro/internal/jit"
	"repro/internal/profile"
	"repro/internal/vm"
)

func TestCatalogMatchesPaperCounts(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionDistributionMatchesTable3(t *testing.T) {
	// Table 3: #bugs per OpenJDK version; one bug may affect several.
	want := map[int]int{8: 26, 11: 9, 17: 13, 21: 9, 23: 12}
	got := map[int]int{}
	nb := map[int]int{}
	for _, b := range Catalog {
		if b.Impl != HotSpot {
			continue
		}
		for _, v := range b.Versions {
			got[v]++
			if b.Status == NotBackportable {
				nb[v]++
			}
		}
	}
	for v, w := range want {
		if got[v] != w {
			t.Errorf("version %d: %d bugs, want %d", v, got[v], w)
		}
	}
	if nb[8] != 12 || nb[11] != 2 {
		t.Errorf("not-backportable per version = %v, want 12@8 and 2@11", nb)
	}
}

func TestComponentDistributionMatchesTable4(t *testing.T) {
	wantHS := map[string]int{
		"Global Value Number., C2":  10,
		"Ideal Loop Optimizat., C2": 7,
		"Code Generation, C2":       7,
		"Ideal Graph Building, C2":  5,
		"Macro Expansion, C2":       4,
		"Cond. Const. Prop., C2":    1,
		"Runtime":                   4,
		"Other JIT Compone.":        7,
	}
	wantJ9 := map[string]int{
		"Redundancy Elimination": 4,
		"Loop Optimization":      3,
		"Pattern Recognition":    2,
		"Dead Code Elimination":  1,
		"Escape Analysis":        1,
		"SIMD Support":           1,
		"Value propagation":      1,
		"Runtime":                1,
	}
	gotHS, gotJ9 := map[string]int{}, map[string]int{}
	for _, b := range Catalog {
		if b.Impl == HotSpot {
			gotHS[b.Component]++
		} else {
			gotJ9[b.Component]++
		}
	}
	for c, w := range wantHS {
		if gotHS[c] != w {
			t.Errorf("HotSpot %q: %d, want %d", c, gotHS[c], w)
		}
	}
	for c, w := range wantJ9 {
		if gotJ9[c] != w {
			t.Errorf("OpenJ9 %q: %d, want %d", c, gotJ9[c], w)
		}
	}
}

func TestPriorityDistribution(t *testing.T) {
	got := map[string]int{}
	for _, b := range Catalog {
		if b.Impl == HotSpot {
			got[b.Priority]++
		}
	}
	if got["P2"] != 2 || got["P3"] != 13 || got["P4"] != 30 {
		t.Errorf("priorities = %v, want P2:2 P3:13 P4:30", got)
	}
}

func TestInjectorArmsPerVersion(t *testing.T) {
	inj8 := NewInjector(HotSpot, 8)
	inj23 := NewInjector(HotSpot, 23)
	if len(inj8.Armed()) != 26 {
		t.Errorf("jdk8 armed %d, want 26", len(inj8.Armed()))
	}
	if len(inj23.Armed()) != 12 {
		t.Errorf("mainline armed %d, want 12", len(inj23.Armed()))
	}
	b := ByID("JDK-8312744")
	if b == nil {
		t.Fatal("JDK-8312744 missing")
	}
	if b.In(8) || !b.In(17) {
		t.Error("JDK-8312744 version set wrong")
	}
}

func TestInjectorCrashOnTrigger(t *testing.T) {
	inj := NewInjectorFor([]*Bug{ByID("JDK-8312744")})
	ctx := &jit.Context{Fn: &jit.Func{Class: "T", Name: "m"}, Hook: inj}
	// An unrelated event does not fire.
	if err := ctx.Record(jit.Event{Pass: "loop", Behavior: profile.BUnroll}); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	// Coarsening with unroll provenance fires.
	err := ctx.Record(jit.Event{Pass: "locks", Behavior: profile.BLockCoarsen, Prov: jit.FromUnroll | jit.FromCoarsen})
	crash, ok := err.(*vm.Crash)
	if !ok {
		t.Fatalf("want crash, got %v", err)
	}
	if crash.BugID != "JDK-8312744" || crash.Component != "Macro Expansion, C2" {
		t.Errorf("crash = %+v", crash)
	}
	if len(inj.Triggered) != 1 {
		t.Errorf("Triggered = %d", len(inj.Triggered))
	}
}

func TestMiscompileEffectSetsFlagOnce(t *testing.T) {
	inj := NewInjectorFor([]*Bug{ByID("Issue-18919")})
	ctx := &jit.Context{Fn: &jit.Func{Class: "T", Name: "m"}, Hook: inj}
	if err := ctx.Record(jit.Event{Pass: "rse", Behavior: profile.BRedundantStore, Prov: jit.FromUnroll}); err != nil {
		t.Fatalf("miscompile effect must not error: %v", err)
	}
	if !ctx.DropNextStore {
		t.Fatal("effect flag not set")
	}
	ctx.DropNextStore = false
	// One-shot per execution: a second matching event does not re-arm.
	if err := ctx.Record(jit.Event{Pass: "rse", Behavior: profile.BRedundantStore, Prov: jit.FromUnroll}); err != nil {
		t.Fatal(err)
	}
	if ctx.DropNextStore {
		t.Error("miscompile effect re-armed")
	}
}

func TestTriggersAreInteractionShaped(t *testing.T) {
	// No catalog bug may fire on a bare single behavior with no context:
	// an event with zero counts, zero depth, zero provenance.
	for _, b := range Catalog {
		ctx := &jit.Context{Fn: &jit.Func{Class: "T", Name: "m"}}
		for beh := 0; beh < profile.NumBehaviors; beh++ {
			ev := jit.Event{Pass: "x", Behavior: profile.Behavior(beh)}
			// Simulate a first-ever event: counts all zero except this one.
			ctx.Counts = [profile.NumBehaviors]int64{}
			ctx.Counts[beh] = 1
			if b.Trigger(ctx, ev) {
				t.Errorf("bug %s fires on bare %v event (too shallow)", b.ID, profile.Behavior(beh))
			}
		}
	}
}
