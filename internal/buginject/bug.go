// Package buginject seeds the simulated JVMs with the paper's 59
// ground-truth defects. Each bug is a predicate over the JIT's
// compilation events — the optimization-interaction state — plus an
// effect: a compiler crash or a specific miscompilation. Per-version and
// per-implementation activation reproduces Tables 2–4 of the paper.
//
// Ground truth is the point: against real JVMs the paper can only count
// what each tool found; against seeded bugs every detection experiment
// (Tables 5–6, Figure 5) measures recall exactly.
package buginject

import (
	"fmt"
	"strings"

	"repro/internal/jit"
	"repro/internal/vm"
)

// Impl names a JVM implementation.
type Impl string

// Implementations.
const (
	HotSpot Impl = "HotSpot"
	OpenJ9  Impl = "OpenJ9"
)

// Kind is the bug's observable failure mode.
type Kind int

// Bug kinds.
const (
	Crash Kind = iota
	Miscompile
)

func (k Kind) String() string {
	if k == Crash {
		return "Crash"
	}
	return "Miscompilation"
}

// Status mirrors the paper's Table 2 report categories.
type Status string

// Statuses.
const (
	InProgress      Status = "In Progress"
	Fixed           Status = "Fixed"
	Duplicate       Status = "Duplicate"
	NotBackportable Status = "Not Backportable"
)

// Effect selects what happens when the trigger fires.
type Effect int

// Effects.
const (
	EffectCrash             Effect = iota
	EffectDropSyncCleanup          // inlined sync region loses exception cleanup
	EffectSkipCoarsenUnlock        // coarsened region loses exception unlock
	EffectDropLiveStore            // RSE removes a live store
	EffectCorruptFold              // algebraic fold off by one
)

// Trigger is a predicate over the compilation state at one event.
type Trigger func(ctx *jit.Context, ev jit.Event) bool

// Bug is one seeded defect.
type Bug struct {
	ID        string
	Impl      Impl
	Component string // per the paper's Table 4 component names
	Kind      Kind
	Effect    Effect
	Priority  string // P2/P3/P4 (HotSpot only)
	Status    Status
	// Versions lists the release trains the defect is present in
	// (8, 11, 17, 21; 23 = mainline).
	Versions []int
	Summary  string
	Trigger  Trigger
}

// In reports whether the bug is live in the given version.
func (b *Bug) In(version int) bool {
	for _, v := range b.Versions {
		if v == version {
			return true
		}
	}
	return false
}

// Injector is the jit.Hook that arms a version's bug set. It records
// which bugs fired during an execution.
type Injector struct {
	bugs      []*Bug
	Triggered []*Bug
	seen      map[string]bool
	armedFP   string
}

// NewInjector arms every catalog bug live in (impl, version).
func NewInjector(impl Impl, version int) *Injector {
	inj := &Injector{seen: map[string]bool{}}
	for _, b := range Catalog {
		if b.Impl == impl && b.In(version) {
			inj.bugs = append(inj.bugs, b)
		}
	}
	return inj
}

// NewInjectorFor arms an explicit bug list (for tests and ablations).
func NewInjectorFor(bugs []*Bug) *Injector {
	return &Injector{bugs: bugs, seen: map[string]bool{}}
}

// Armed returns the active bug set.
func (inj *Injector) Armed() []*Bug { return inj.bugs }

// Observe implements jit.Hook.
func (inj *Injector) Observe(ctx *jit.Context, ev jit.Event) error {
	for _, b := range inj.bugs {
		if inj.seen[b.ID] && b.Effect != EffectCrash {
			// Miscompile effects are one-shot per execution; crashes
			// re-fire (re-running the compile crashes again).
			continue
		}
		if !b.Trigger(ctx, ev) {
			continue
		}
		if !inj.seen[b.ID] {
			inj.seen[b.ID] = true
			inj.Triggered = append(inj.Triggered, b)
		}
		switch b.Effect {
		case EffectCrash:
			return &vm.Crash{
				BugID:     b.ID,
				Component: b.Component,
				Message:   b.Summary,
				FnKey:     ctx.Fn.Key(),
			}
		case EffectDropSyncCleanup:
			ctx.DropSyncCleanup = true
		case EffectSkipCoarsenUnlock:
			ctx.SkipCoarsenUnlock = true
		case EffectDropLiveStore:
			ctx.DropNextStore = true
		case EffectCorruptFold:
			ctx.CorruptFold = true
		}
	}
	return nil
}

// CacheFingerprint implements jit.CacheableHook. Compile output depends
// on exactly two injector inputs: the armed bug set and which one-shot
// miscompile effects already fired this execution (seen is set iff the
// bug is in Triggered, so the Triggered sequence covers it).
func (inj *Injector) CacheFingerprint() string {
	if inj.armedFP == "" {
		var b strings.Builder
		for _, bug := range inj.bugs {
			b.WriteString(bug.ID)
			b.WriteByte(',')
		}
		inj.armedFP = "armed:" + b.String()
	}
	var b strings.Builder
	b.WriteString(inj.armedFP)
	b.WriteString("|seen:")
	for _, bug := range inj.Triggered {
		b.WriteString(bug.ID)
		b.WriteByte(',')
	}
	return b.String()
}

// TriggeredIDs implements jit.CacheableHook.
func (inj *Injector) TriggeredIDs() []string {
	ids := make([]string, len(inj.Triggered))
	for i, b := range inj.Triggered {
		ids[i] = b.ID
	}
	return ids
}

// ReplayTriggered implements jit.CacheableHook: it re-applies the
// trigger transitions a cached compilation made, in recorded order (the
// miscompile effects themselves are baked into the cached IR).
func (inj *Injector) ReplayTriggered(ids []string) {
	for _, id := range ids {
		if inj.seen[id] {
			continue
		}
		for _, b := range inj.bugs {
			if b.ID == id {
				inj.seen[id] = true
				inj.Triggered = append(inj.Triggered, b)
				break
			}
		}
	}
}

var (
	_ jit.Hook          = (*Injector)(nil)
	_ jit.CacheableHook = (*Injector)(nil)
)

// ByID returns the catalog bug with the given ID, or nil.
func ByID(id string) *Bug {
	for _, b := range Catalog {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Validate sanity-checks the catalog against the paper's reported
// counts; it is called from tests.
func Validate() error {
	counts := map[Impl]int{}
	kinds := map[Impl]map[Kind]int{HotSpot: {}, OpenJ9: {}}
	status := map[Impl]map[Status]int{HotSpot: {}, OpenJ9: {}}
	ids := map[string]bool{}
	for _, b := range Catalog {
		if ids[b.ID] {
			return fmt.Errorf("duplicate bug id %s", b.ID)
		}
		ids[b.ID] = true
		if b.Trigger == nil {
			return fmt.Errorf("bug %s has no trigger", b.ID)
		}
		if len(b.Versions) == 0 {
			return fmt.Errorf("bug %s affects no versions", b.ID)
		}
		counts[b.Impl]++
		kinds[b.Impl][b.Kind]++
		status[b.Impl][b.Status]++
	}
	check := func(name string, got, want int) error {
		if got != want {
			return fmt.Errorf("%s: got %d, want %d", name, got, want)
		}
		return nil
	}
	for _, c := range []struct {
		name      string
		got, want int
	}{
		{"HotSpot bugs", counts[HotSpot], 45},
		{"OpenJ9 bugs", counts[OpenJ9], 14},
		{"HotSpot crashes", kinds[HotSpot][Crash], 39},
		{"HotSpot miscompiles", kinds[HotSpot][Miscompile], 6},
		{"OpenJ9 crashes", kinds[OpenJ9][Crash], 2},
		{"OpenJ9 miscompiles", kinds[OpenJ9][Miscompile], 12},
		{"HotSpot in-progress", status[HotSpot][InProgress], 19},
		{"HotSpot fixed", status[HotSpot][Fixed], 7},
		{"HotSpot duplicates", status[HotSpot][Duplicate], 5},
		{"HotSpot not-backportable", status[HotSpot][NotBackportable], 14},
		{"OpenJ9 in-progress", status[OpenJ9][InProgress], 9},
		{"OpenJ9 fixed", status[OpenJ9][Fixed], 4},
		{"OpenJ9 duplicates", status[OpenJ9][Duplicate], 1},
	} {
		if err := check(c.name, c.got, c.want); err != nil {
			return err
		}
	}
	return nil
}
