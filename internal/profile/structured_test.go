package profile

import (
	"reflect"
	"testing"
)

// TestLineBehaviorsMatchRules pins every structured Line* set against
// sample renderings of its emission sites: the behaviors a pass counts
// directly on the fast path must be exactly the rules the reference
// regex oracle would match on the rendered line. Editing a rule pattern
// or a pass's line format without updating the other fails here.
func TestLineBehaviorsMatchRules(t *testing.T) {
	cases := []struct {
		name    string
		flag    Flag
		set     []Behavior
		samples []string
	}{
		{"inline", FlagPrintInlining, LineInline,
			[]string{"@ 1 Foo::work (12 nodes)   inline (hot)"}},
		{"inline-sync", FlagPrintInlining, LineInlineSync,
			[]string{"@ 2 Foo::sync   inline (hot) monitors rewired"}},
		{"unroll", FlagTraceLoopOpts, LineUnroll,
			[]string{"Unroll 8(16)", "Unroll 4"}},
		{"peel", FlagTraceLoopOpts, LinePeel,
			[]string{"Peel  Foo.work trip=3"}},
		{"unswitch", FlagTraceLoopOpts, LineUnswitch,
			[]string{"Unswitch  Foo.work"}},
		{"pre-main-post", FlagTraceLoopOpts, LinePreMainPost,
			[]string{"PreMainPost Foo.work"}},
		{"lock-elim", FlagPrintEliminateLocks, LineLockElim,
			[]string{"++++ Eliminated: 2 Lock"}},
		{"nested-lock-elim", FlagPrintEliminateLocks, LineNestedLockElim,
			[]string{"++++ Eliminated: 1 Lock (nested)"}},
		{"lock-coarsen", FlagPrintLockCoarsening, LineLockCoarsen,
			[]string{"Coarsened 2 locks on this in Foo.work"}},
		{"escape-none", FlagPrintEscapeAnalysis, LineEscapeNone,
			[]string{"obj is NoEscape"}},
		{"escape-arg", FlagPrintEscapeAnalysis, LineEscapeArg,
			[]string{"arg is ArgEscape"}},
		{"scalar-replace", FlagPrintEliminateAllocations, LineScalarReplace,
			[]string{"Scalar replaced allocation p (Point)"}},
		{"autobox", FlagTraceAutoBoxElimination, LineAutoboxElim,
			[]string{"Eliminated autobox Integer.valueOf in Foo.work", "Eliminated autobox local b in Foo.work"}},
		{"redundant-store", FlagTraceRedundantStores, LineRedundantStore,
			[]string{"Removed redundant store to x in Foo.work", "Removed redundant store to o.f in Foo.work"}},
		{"algebraic", FlagTraceAlgebraicOpts, LineAlgebraic,
			[]string{"AlgebraicSimplify: x*1 in Foo.work"}},
		{"gvn", FlagPrintGVN, LineGVN,
			[]string{"GVN hit: add(a,b) subsumed by t1 in Foo.work"}},
		{"dce", FlagTraceDeadCode, LineDCE,
			[]string{"DCE: removed dead branch in Foo.work"}},
		{"uncommon-trap", FlagTraceDeoptimization, LineUncommonTrap,
			[]string{"Uncommon trap occurred in Foo.work reason=trap"}},
		{"deopt-recompile", FlagTraceDeoptimization, LineDeoptRecompile,
			[]string{"Deoptimization: recompile Foo.work (count 2)"}},
	}
	covered := map[Behavior]bool{}
	for _, c := range cases {
		for _, b := range c.set {
			covered[b] = true
		}
		for _, s := range c.samples {
			if got := MatchBehaviors(c.flag, s); !reflect.DeepEqual(got, c.set) {
				t.Errorf("%s: MatchBehaviors(%q) = %v, want %v", c.name, s, got, c.set)
			}
		}
	}
	for b := 0; b < NumBehaviors; b++ {
		if !covered[Behavior(b)] {
			t.Errorf("behavior %s has no structured line set under test", Behavior(b))
		}
	}
}

// TestCounterRecorderMatchesRecorder drives an identical emission stream
// through the full recorder and the counter recorder: the fast counters
// must equal both the full recorder's counters and the reference regex
// extraction over the rendered text, and the counter recorder must keep
// no text at all.
func TestCounterRecorderMatchesRecorder(t *testing.T) {
	for _, fs := range []FlagSet{DefaultFlags(), {FlagTraceLoopOpts: true, FlagPrintInlining: true}, NoFlags()} {
		full := NewRecorder(fs)
		fast := NewCounterRecorder(fs)
		emit := func(flag Flag, set []Behavior, format string, args ...any) {
			full.EmitBehaviorf(flag, set, format, args...)
			fast.EmitBehaviorf(flag, set, format, args...)
		}
		emit(FlagTraceLoopOpts, LineUnroll, "Unroll %d(%d)", 8, 16)
		emit(FlagTraceLoopOpts, LinePeel, "Peel  %s trip=%d", "Foo.work", 3)
		emit(FlagPrintInlining, LineInline, "@ %d %s::%s (%d nodes)   inline (hot)", 1, "Foo", "work", 12)
		emit(FlagPrintInlining, LineInlineSync, "@ %d %s::%s   inline (hot) monitors rewired", 2, "Foo", "sync")
		emit(FlagPrintEliminateLocks, LineNestedLockElim, "++++ Eliminated: 1 Lock (nested)")
		emit(FlagTraceDeoptimization, LineUncommonTrap, "Uncommon trap occurred in %s reason=%s", "Foo.work", "trap")
		// Rule-free diagnostic noise must not perturb either path.
		full.Emitf(FlagPrintCompilation, "    1    3    Foo::work (hot)")
		fast.Emitf(FlagPrintCompilation, "    1    3    Foo::work (hot)")

		ref := ExtractOBV(full.Text())
		if full.OBV() != ref {
			t.Errorf("flags %v: full recorder OBV %v != ExtractOBV %v", fs, full.OBV(), ref)
		}
		if fast.OBV() != ref {
			t.Errorf("flags %v: counter recorder OBV %v != ExtractOBV %v", fs, fast.OBV(), ref)
		}
		if fast.Len() != 0 || fast.Text() != "" {
			t.Errorf("flags %v: counter recorder retained %d lines of text", fs, fast.Len())
		}
	}
}
