package profile

// Per-emission-site behavior sets for the structured OBV fast path.
//
// Each variable names one line shape a pass emits and lists every rule
// in Rules whose pattern matches the rendered text — the fast path
// mirrors the paper's §3.4 rule table rather than replacing it, and the
// regex-over-log path stays the reference oracle. Two shapes match two
// rules at once: the nested-lock elimination line contains both
// "++++ Eliminated: 1 Lock" and "Lock (nested)", and the synchronized-
// callee inline line contains both "inline (hot)" and "monitors
// rewired". TestLineBehaviorsMatchRules pins every set against sample
// renderings, so a rule edit that changes a match set fails loudly.
var (
	LineInline         = []Behavior{BInline}
	LineInlineSync     = []Behavior{BInline, BInlineSync}
	LineUnroll         = []Behavior{BUnroll}
	LinePeel           = []Behavior{BPeel}
	LineUnswitch       = []Behavior{BUnswitch}
	LinePreMainPost    = []Behavior{BPreMainPost}
	LineLockElim       = []Behavior{BLockElim}
	LineNestedLockElim = []Behavior{BLockElim, BNestedLockElim}
	LineLockCoarsen    = []Behavior{BLockCoarsen}
	LineEscapeNone     = []Behavior{BEscapeNone}
	LineEscapeArg      = []Behavior{BEscapeArg}
	LineScalarReplace  = []Behavior{BScalarReplace}
	LineAutoboxElim    = []Behavior{BAutoboxElim}
	LineRedundantStore = []Behavior{BRedundantStore}
	LineAlgebraic      = []Behavior{BAlgebraic}
	LineGVN            = []Behavior{BGVN}
	LineDCE            = []Behavior{BDCE}
	LineUncommonTrap   = []Behavior{BUncommonTrap}
	LineDeoptRecompile = []Behavior{BDeoptRecompile}
)

// MatchBehaviors returns the behaviors whose rules match text under the
// given flag, in rule-table order. The structured.go line sets must
// agree with this for every rendered line; the tests enforce it.
func MatchBehaviors(flag Flag, text string) []Behavior {
	var out []Behavior
	for _, r := range Rules {
		if r.Flag != flag {
			continue
		}
		if r.re.MatchString(text) {
			out = append(out, r.Behavior)
		}
	}
	return out
}
