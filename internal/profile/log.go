package profile

import (
	"fmt"
	"strings"
)

// Recorder is the VM-side log sink. Optimization passes emit flag-gated
// lines into it; the fuzzer reads back the raw text and greps it with
// the behavior rules. A nil *Recorder is valid and drops everything.
type Recorder struct {
	flags FlagSet
	lines []string
}

// NewRecorder builds a recorder honoring the given flag set.
func NewRecorder(flags FlagSet) *Recorder {
	return &Recorder{flags: flags}
}

// Emitf appends a formatted line if its gating flag is enabled.
func (r *Recorder) Emitf(flag Flag, format string, args ...any) {
	if r == nil || !r.flags.Enabled(flag) {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// Text returns the accumulated log as one string.
func (r *Recorder) Text() string {
	if r == nil {
		return ""
	}
	return strings.Join(r.lines, "\n")
}

// Lines returns the raw log lines.
func (r *Recorder) Lines() []string {
	if r == nil {
		return nil
	}
	return r.lines
}

// Len returns the number of recorded lines.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.lines)
}

// Emitter is the narrow interface passes use to write profile data.
type Emitter interface {
	Emitf(flag Flag, format string, args ...any)
}

var _ Emitter = (*Recorder)(nil)
