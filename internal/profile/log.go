package profile

import (
	"fmt"
	"strings"
	"sync"
)

// Recorder is the VM-side log sink. Optimization passes emit flag-gated
// lines into it; the fuzzer reads back the raw text and greps it with
// the behavior rules, or — on the structured fast path — reads the
// behavior counters the passes maintained directly and never pays for
// line formatting at all. A nil *Recorder is valid and drops everything.
type Recorder struct {
	flags     FlagSet
	lines     []string
	counts    OBV
	countOnly bool
}

// NewRecorder builds a recorder honoring the given flag set.
func NewRecorder(flags FlagSet) *Recorder {
	return &Recorder{flags: flags}
}

// NewCounterRecorder builds a recorder for the structured OBV fast path:
// behavior counters are maintained under the same flag gating as the
// textual log, but no line is ever formatted or stored. Text() returns
// "" and OBV() returns the counts the passes accumulated.
func NewCounterRecorder(flags FlagSet) *Recorder {
	return &Recorder{flags: flags, countOnly: true}
}

// Emitf appends a formatted line if its gating flag is enabled. Lines
// emitted this way match no counting rule (PrintCompilation etc.), so a
// counter-mode recorder drops them without formatting.
func (r *Recorder) Emitf(flag Flag, format string, args ...any) {
	if r == nil || !r.flags.Enabled(flag) || r.countOnly {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// EmitBehaviorf appends a formatted line whose rendered text matches the
// counting rules for the given behaviors (some lines match two rules).
// The counters advance under the same flag gate as the line itself, so
// counter-mode OBVs agree with ExtractOBV over the textual log.
func (r *Recorder) EmitBehaviorf(flag Flag, behaviors []Behavior, format string, args ...any) {
	if r == nil || !r.flags.Enabled(flag) {
		return
	}
	for _, b := range behaviors {
		r.counts[b]++
	}
	if r.countOnly {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// AppendLine appends a pre-formatted line with its behavior set. The
// compile cache uses it to replay recorded emissions on a cache hit.
func (r *Recorder) AppendLine(flag Flag, behaviors []Behavior, text string) {
	if r == nil || !r.flags.Enabled(flag) {
		return
	}
	for _, b := range behaviors {
		r.counts[b]++
	}
	if r.countOnly {
		return
	}
	r.lines = append(r.lines, text)
}

// builderPool recycles the string builders Text() joins lines with; a
// campaign calls Text once per execution.
var builderPool = sync.Pool{New: func() any { return new(strings.Builder) }}

// Text returns the accumulated log as one string.
func (r *Recorder) Text() string {
	if r == nil || len(r.lines) == 0 {
		return ""
	}
	n := len(r.lines) - 1
	for _, l := range r.lines {
		n += len(l)
	}
	b := builderPool.Get().(*strings.Builder)
	b.Reset()
	b.Grow(n)
	for i, l := range r.lines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(l)
	}
	s := b.String()
	builderPool.Put(b)
	return s
}

// Lines returns the raw log lines.
func (r *Recorder) Lines() []string {
	if r == nil {
		return nil
	}
	return r.lines
}

// Len returns the number of recorded lines.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.lines)
}

// OBV returns the behavior counts accumulated through EmitBehaviorf /
// AppendLine. For a recorder whose emissions all went through the
// structured API this equals ExtractOBV(r.Text()); the equivalence is
// pinned by TestStructuredOBVMatchesExtract in the jvm package.
func (r *Recorder) OBV() OBV {
	if r == nil {
		return OBV{}
	}
	return r.counts
}

// CountOnly reports whether the recorder drops line text (fast path).
func (r *Recorder) CountOnly() bool { return r != nil && r.countOnly }

// Emitter is the narrow interface passes use to write profile data.
type Emitter interface {
	Emitf(flag Flag, format string, args ...any)
}

// BehaviorEmitter extends Emitter with the structured emission API that
// carries the line's rule-match set alongside the text.
type BehaviorEmitter interface {
	Emitter
	EmitBehaviorf(flag Flag, behaviors []Behavior, format string, args ...any)
}

// EmitBehavior routes a rule-counted line through e, using the
// structured API when the emitter supports it and falling back to plain
// Emitf (losing only the counters, which that emitter does not keep).
func EmitBehavior(e Emitter, flag Flag, behaviors []Behavior, format string, args ...any) {
	if e == nil {
		return
	}
	if be, ok := e.(BehaviorEmitter); ok {
		be.EmitBehaviorf(flag, behaviors, format, args...)
		return
	}
	e.Emitf(flag, format, args...)
}

var (
	_ Emitter         = (*Recorder)(nil)
	_ BehaviorEmitter = (*Recorder)(nil)
)
