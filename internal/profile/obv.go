package profile

import (
	"fmt"
	"math"
	"regexp"
	"strings"
)

// Rule pairs a behavior with the regular expression that counts its
// occurrences in the profile log and the flag that must be on for the
// line to exist at all (§3.4: "we summarized the regular expression
// rules to capture the occurrences of each optimization behavior").
type Rule struct {
	Behavior Behavior
	Flag     Flag
	Pattern  string
	re       *regexp.Regexp
}

// Rules is the rule table, one per counted behavior, mirroring the
// paper's manual investigation of the 15 flags. The patterns are written
// against the exact line formats the simulated passes emit; e.g. the
// loop unroller prints "Unroll 8(16)" just like Listing 4's HotSpot code.
var Rules = buildRules()

func buildRules() []Rule {
	rs := []Rule{
		{Behavior: BInline, Flag: FlagPrintInlining, Pattern: `inline \(hot\)`},
		{Behavior: BInlineSync, Flag: FlagPrintInlining, Pattern: `monitors rewired`},
		{Behavior: BUnroll, Flag: FlagTraceLoopOpts, Pattern: `Unroll [0-9]+`},
		{Behavior: BPeel, Flag: FlagTraceLoopOpts, Pattern: `Peel `},
		{Behavior: BUnswitch, Flag: FlagTraceLoopOpts, Pattern: `Unswitch `},
		{Behavior: BPreMainPost, Flag: FlagTraceLoopOpts, Pattern: `PreMainPost `},
		{Behavior: BLockElim, Flag: FlagPrintEliminateLocks, Pattern: `\+\+\+\+ Eliminated: [0-9]+ Lock`},
		{Behavior: BNestedLockElim, Flag: FlagPrintEliminateLocks, Pattern: `Lock \(nested\)`},
		{Behavior: BLockCoarsen, Flag: FlagPrintLockCoarsening, Pattern: `Coarsened [0-9]+ locks`},
		{Behavior: BEscapeNone, Flag: FlagPrintEscapeAnalysis, Pattern: `is NoEscape`},
		{Behavior: BEscapeArg, Flag: FlagPrintEscapeAnalysis, Pattern: `is ArgEscape`},
		{Behavior: BScalarReplace, Flag: FlagPrintEliminateAllocations, Pattern: `Scalar replaced`},
		{Behavior: BAutoboxElim, Flag: FlagTraceAutoBoxElimination, Pattern: `Eliminated autobox`},
		{Behavior: BRedundantStore, Flag: FlagTraceRedundantStores, Pattern: `redundant store`},
		{Behavior: BAlgebraic, Flag: FlagTraceAlgebraicOpts, Pattern: `AlgebraicSimplify:`},
		{Behavior: BGVN, Flag: FlagPrintGVN, Pattern: `GVN hit:`},
		{Behavior: BDCE, Flag: FlagTraceDeadCode, Pattern: `DCE: removed`},
		{Behavior: BUncommonTrap, Flag: FlagTraceDeoptimization, Pattern: `Uncommon trap occurred`},
		{Behavior: BDeoptRecompile, Flag: FlagTraceDeoptimization, Pattern: `Deoptimization: recompile`},
	}
	for i := range rs {
		rs[i].re = regexp.MustCompile(rs[i].Pattern)
	}
	return rs
}

// OBV is the Optimization Behavior Vector: per-behavior occurrence
// counts for one execution.
type OBV [NumBehaviors]int64

// ExtractOBV greps the profile log text with every rule and returns the
// occurrence counts.
func ExtractOBV(logText string) OBV {
	var v OBV
	for _, r := range Rules {
		v[r.Behavior] += int64(len(r.re.FindAllStringIndex(logText, -1)))
	}
	return v
}

// Slice returns the counts as a slice — the wire encoding used by the
// out-of-process execution backend.
func (v OBV) Slice() []int64 {
	out := make([]int64, NumBehaviors)
	copy(out, v[:])
	return out
}

// OBVFromSlice is the decode half of Slice. A length mismatch means the
// two sides disagree on the behavior taxonomy (wire-version skew) and is
// reported as an error rather than silently truncated.
func OBVFromSlice(s []int64) (OBV, error) {
	var v OBV
	if len(s) != NumBehaviors {
		return v, fmt.Errorf("profile: OBV length %d, want %d (behavior-taxonomy skew)", len(s), NumBehaviors)
	}
	copy(v[:], s)
	return v, nil
}

// Add returns the element-wise sum.
func (v OBV) Add(w OBV) OBV {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Total returns the sum of all counts.
func (v OBV) Total() int64 {
	var t int64
	for _, c := range v {
		t += c
	}
	return t
}

// DistinctTypes returns the number of behaviors with nonzero counts.
func (v OBV) DistinctTypes() int {
	n := 0
	for _, c := range v {
		if c > 0 {
			n++
		}
	}
	return n
}

// Norm is the Euclidean magnitude ||v||.
func (v OBV) Norm() float64 {
	var s float64
	for _, c := range v {
		s += float64(c) * float64(c)
	}
	return math.Sqrt(s)
}

// Delta implements the paper's Formula 2: the Euclidean distance over
// positive increments only,
//
//	Δ = sqrt( Σ_i max(0, child_i − parent_i)² )
//
// Reductions are ignored so the metric rewards newly triggered behavior.
func Delta(parent, child OBV) float64 {
	var s float64
	for i := range parent {
		d := float64(child[i] - parent[i])
		if d > 0 {
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// SumIncrement is the alternative scheme the paper rejects (the plain
// sum of positive increments); kept for the ablation benchmark that
// reproduces the rationale in §3.4.
func SumIncrement(parent, child OBV) float64 {
	var s float64
	for i := range parent {
		if d := child[i] - parent[i]; d > 0 {
			s += float64(d)
		}
	}
	return s
}

// UpdateWeight implements Formula 3: w' = w · (1 + Δ/||child||). When the
// child vector is all-zero the weight is unchanged.
func UpdateWeight(w float64, parent, child OBV) float64 {
	norm := child.Norm()
	if norm == 0 {
		return w
	}
	return w * (1 + Delta(parent, child)/norm)
}

// String renders the nonzero dimensions compactly.
func (v OBV) String() string {
	var b strings.Builder
	b.WriteString("OBV{")
	first := true
	for i, c := range v {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "%s:%d", Behavior(i), c)
	}
	b.WriteString("}")
	return b.String()
}
