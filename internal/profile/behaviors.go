// Package profile models the paper's profile-data channel: JVM flags gate
// textual log lines that the optimization passes emit; regex rules parse
// those lines back into a 19-dimensional Optimization Behavior Vector
// (OBV); and the OBV arithmetic (Euclidean increment Δ, weight update)
// drives the fuzzer's guidance exactly as in §3.4 of the paper.
//
// The information flow is deliberately indirect — passes write text, the
// fuzzer greps text — because that is the interface the paper's tool has
// against a real JVM.
package profile

// Behavior enumerates the 19 optimization behaviors the rules can
// observe (the paper's 15 flags record 19 behavior types).
type Behavior int

// Behaviors.
const (
	BInline     Behavior = iota
	BInlineSync          // inlining of a synchronized callee (Listing 1's hazard)
	BUnroll
	BPeel
	BUnswitch
	BPreMainPost // pre/main/post loop splitting before unrolling
	BLockElim
	BNestedLockElim
	BLockCoarsen
	BEscapeNone // allocation classified NoEscape
	BEscapeArg  // allocation classified ArgEscape
	BScalarReplace
	BAutoboxElim
	BRedundantStore
	BAlgebraic
	BGVN
	BDCE
	BUncommonTrap
	BDeoptRecompile

	NumBehaviors = 19
)

var behaviorNames = [NumBehaviors]string{
	"Inline", "InlineSync", "Unroll", "Peel", "Unswitch", "PreMainPost",
	"LockElim", "NestedLockElim", "LockCoarsen", "EscapeNone", "EscapeArg",
	"ScalarReplace", "AutoboxElim", "RedundantStore", "Algebraic", "GVN",
	"DCE", "UncommonTrap", "DeoptRecompile",
}

func (b Behavior) String() string {
	if b >= 0 && int(b) < NumBehaviors {
		return behaviorNames[b]
	}
	return "Behavior?"
}

// AllBehaviors lists every behavior in index order.
func AllBehaviors() []Behavior {
	out := make([]Behavior, NumBehaviors)
	for i := range out {
		out[i] = Behavior(i)
	}
	return out
}
