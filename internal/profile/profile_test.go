package profile

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRulesCoverAllBehaviors(t *testing.T) {
	seen := map[Behavior]bool{}
	for _, r := range Rules {
		if r.Pattern == "" {
			t.Errorf("rule for %v has empty pattern", r.Behavior)
		}
		if seen[r.Behavior] {
			t.Errorf("duplicate rule for %v", r.Behavior)
		}
		seen[r.Behavior] = true
	}
	if len(seen) != NumBehaviors {
		t.Errorf("rules cover %d behaviors, want %d", len(seen), NumBehaviors)
	}
}

func TestFifteenFlags(t *testing.T) {
	if got := len(AllFlags()); got != 15 {
		t.Errorf("flag count = %d, want 15 (paper §3.4)", got)
	}
	// Every counting rule's flag must be one of the 15.
	valid := map[Flag]bool{}
	for _, f := range AllFlags() {
		valid[f] = true
	}
	for _, r := range Rules {
		if !valid[r.Flag] {
			t.Errorf("rule %v references unknown flag %q", r.Behavior, r.Flag)
		}
	}
}

func TestExtractOBVMatchesEmittedLines(t *testing.T) {
	rec := NewRecorder(DefaultFlags())
	rec.Emitf(FlagTraceLoopOpts, "Unroll %d(%d)", 8, 16)
	rec.Emitf(FlagTraceLoopOpts, "Unroll %d", 4)
	rec.Emitf(FlagTraceLoopOpts, "Peel  T.foo trip=5")
	rec.Emitf(FlagPrintEliminateLocks, "++++ Eliminated: %d Lock", 2)
	rec.Emitf(FlagPrintEliminateLocks, "++++ Eliminated: 1 Lock (nested)")
	rec.Emitf(FlagPrintLockCoarsening, "Coarsened 4 locks on this in T.foo")
	rec.Emitf(FlagPrintInlining, "@ 1 T::bar (3 nodes)   inline (hot)")
	rec.Emitf(FlagPrintInlining, "@ 2 T::baz   inline (hot) monitors rewired")
	rec.Emitf(FlagTraceDeoptimization, "Uncommon trap occurred in T.foo reason=unstable_if")
	rec.Emitf(FlagTraceDeoptimization, "Deoptimization: recompile T.foo (count 1)")

	v := ExtractOBV(rec.Text())
	want := map[Behavior]int64{
		BUnroll: 2, BPeel: 1, BLockElim: 2, BNestedLockElim: 1, BLockCoarsen: 1,
		BInline: 2, BInlineSync: 1, BUncommonTrap: 1, BDeoptRecompile: 1,
	}
	for b, n := range want {
		if v[b] != n {
			t.Errorf("%v = %d, want %d", b, v[b], n)
		}
	}
	// The "Lock (nested)" line also matches the plain Lock rule — that
	// overlap is intentional (a nested elimination IS an elimination).
	if v[BUnswitch] != 0 || v[BGVN] != 0 {
		t.Errorf("spurious counts: %v", v)
	}
}

func TestFlagGating(t *testing.T) {
	rec := NewRecorder(FlagSet{FlagTraceLoopOpts: true})
	rec.Emitf(FlagTraceLoopOpts, "Unroll 4")
	rec.Emitf(FlagPrintInlining, "@ 1 x  inline (hot)") // gated off
	v := ExtractOBV(rec.Text())
	if v[BUnroll] != 1 || v[BInline] != 0 {
		t.Errorf("gating broken: %v", v)
	}
	var nilRec *Recorder
	nilRec.Emitf(FlagTraceLoopOpts, "ignored") // must not panic
	if nilRec.Text() != "" || nilRec.Len() != 0 {
		t.Error("nil recorder should be empty")
	}
}

func TestDeltaFormula(t *testing.T) {
	var p, c OBV
	p[0], p[1] = 1, 5
	c[0], c[1], c[2] = 2, 2, 2
	// increments: +1, (−3 ignored), +2 => sqrt(1+4)
	want := math.Sqrt(5)
	if got := Delta(p, c); math.Abs(got-want) > 1e-9 {
		t.Errorf("Delta = %v, want %v", got, want)
	}
	// The paper's worked example: (1,0,0,...) -> (2,2,2,0,...) gives 3.
	var p2, c2 OBV
	p2[0] = 1
	c2[0], c2[1], c2[2] = 2, 2, 2
	if got := Delta(p2, c2); math.Abs(got-3) > 1e-9 {
		t.Errorf("paper example Delta = %v, want 3", got)
	}
}

func TestWeightUpdateFormula(t *testing.T) {
	var p, c OBV
	c[0] = 3
	c[1] = 4 // ||c|| = 5, Δ = 5
	w := UpdateWeight(2, p, c)
	if math.Abs(w-4) > 1e-9 { // 2 * (1 + 5/5)
		t.Errorf("UpdateWeight = %v, want 4", w)
	}
	// Zero child vector leaves the weight unchanged.
	var z OBV
	if got := UpdateWeight(1.5, p, z); got != 1.5 {
		t.Errorf("UpdateWeight on zero = %v", got)
	}
}

func TestSumIncrementBias(t *testing.T) {
	// §3.4's rationale: frequent behaviors dominate the sum but not the
	// normalized Euclidean update.
	var p, c OBV
	p[BInline], c[BInline] = 100, 200
	p[BUnswitch], c[BUnswitch] = 1, 2
	if got := SumIncrement(p, c); got != 101 {
		t.Errorf("SumIncrement = %v, want 101", got)
	}
	d := Delta(p, c)
	if d >= 101 {
		t.Errorf("Delta should de-emphasize the imbalance, got %v", d)
	}
}

// Property: Δ is never negative and is zero iff no dimension increased.
func TestDeltaProperties(t *testing.T) {
	f := func(ps, cs [NumBehaviors]uint8) bool {
		var p, c OBV
		inc := false
		for i := 0; i < NumBehaviors; i++ {
			p[i] = int64(ps[i])
			c[i] = int64(cs[i])
			if c[i] > p[i] {
				inc = true
			}
		}
		d := Delta(p, c)
		if d < 0 {
			return false
		}
		return (d > 0) == inc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: weights never decrease under Formula 3.
func TestWeightMonotoneProperty(t *testing.T) {
	f := func(ps, cs [NumBehaviors]uint8, w8 uint8) bool {
		var p, c OBV
		for i := 0; i < NumBehaviors; i++ {
			p[i], c[i] = int64(ps[i]), int64(cs[i])
		}
		w := 0.1 + float64(w8)/16
		return UpdateWeight(w, p, c) >= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ExtractOBV is additive over concatenated logs.
func TestExtractAdditiveProperty(t *testing.T) {
	lines := []string{
		"Unroll 4", "Peel  x", "GVN hit: y", "DCE: removed z",
		"++++ Eliminated: 1 Lock", "is NoEscape",
	}
	f := func(pick []uint8) bool {
		if len(pick) > 60 {
			pick = pick[:60]
		}
		var a, b strings.Builder
		for i, p := range pick {
			line := lines[int(p)%len(lines)]
			if i%2 == 0 {
				a.WriteString(line + "\n")
			} else {
				b.WriteString(line + "\n")
			}
		}
		sum := ExtractOBV(a.String()).Add(ExtractOBV(b.String()))
		whole := ExtractOBV(a.String() + "\n" + b.String())
		return sum == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestOBVHelpers(t *testing.T) {
	var v OBV
	v[BUnroll] = 3
	v[BInline] = 4
	if v.Total() != 7 {
		t.Errorf("Total = %d", v.Total())
	}
	if v.DistinctTypes() != 2 {
		t.Errorf("DistinctTypes = %d", v.DistinctTypes())
	}
	if math.Abs(v.Norm()-5) > 1e-9 {
		t.Errorf("Norm = %v", v.Norm())
	}
	s := v.String()
	if !strings.Contains(s, "Unroll:3") || !strings.Contains(s, "Inline:4") {
		t.Errorf("String = %q", s)
	}
}

func TestBehaviorNames(t *testing.T) {
	for _, b := range AllBehaviors() {
		if b.String() == "Behavior?" {
			t.Errorf("behavior %d has no name", b)
		}
	}
	if Behavior(99).String() != "Behavior?" {
		t.Error("out-of-range behavior should render as Behavior?")
	}
}
