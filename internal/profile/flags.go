package profile

import "sort"

// Flag names a diagnostic VM flag (the -XX:+Print... / -XX:+Trace...
// family). Each flag gates a family of log lines; §2.2 of the paper.
type Flag string

// The 15 flags MopFuzzer passes to the VM. The first twelve carry the 19
// counted behaviors; the last three are informational (compilation
// events, generated code, statistics) and match no counting rule —
// exactly the situation the paper describes where available flags bound
// what guidance can see.
const (
	FlagPrintInlining             Flag = "PrintInlining"
	FlagTraceLoopOpts             Flag = "TraceLoopOpts"
	FlagPrintEliminateLocks       Flag = "PrintEliminateLocks"
	FlagPrintLockCoarsening       Flag = "PrintLockCoarsening"
	FlagPrintEscapeAnalysis       Flag = "PrintEscapeAnalysis"
	FlagPrintEliminateAllocations Flag = "PrintEliminateAllocations"
	FlagTraceAutoBoxElimination   Flag = "TraceAutoBoxElimination"
	FlagTraceRedundantStores      Flag = "TraceRedundantStores"
	FlagTraceAlgebraicOpts        Flag = "TraceAlgebraicOpts"
	FlagPrintGVN                  Flag = "PrintGVN"
	FlagTraceDeadCode             Flag = "TraceDeadCode"
	FlagTraceDeoptimization       Flag = "TraceDeoptimization"
	FlagPrintCompilation          Flag = "PrintCompilation"
	FlagPrintAssembly             Flag = "PrintAssembly"
	FlagPrintOptoStatistics       Flag = "PrintOptoStatistics"
)

// AllFlags lists the 15 flags in canonical order.
func AllFlags() []Flag {
	return []Flag{
		FlagPrintInlining, FlagTraceLoopOpts, FlagPrintEliminateLocks,
		FlagPrintLockCoarsening, FlagPrintEscapeAnalysis, FlagPrintEliminateAllocations,
		FlagTraceAutoBoxElimination, FlagTraceRedundantStores, FlagTraceAlgebraicOpts,
		FlagPrintGVN, FlagTraceDeadCode, FlagTraceDeoptimization,
		FlagPrintCompilation, FlagPrintAssembly, FlagPrintOptoStatistics,
	}
}

// FlagSet is the set of enabled diagnostic flags for one execution.
type FlagSet map[Flag]bool

// DefaultFlags enables all 15 diagnostic flags (the fuzzer's setting).
func DefaultFlags() FlagSet {
	fs := FlagSet{}
	for _, f := range AllFlags() {
		fs[f] = true
	}
	return fs
}

// NoFlags returns an empty flag set (production-like run: no profile
// data, the setting the MopFuzzer_g variant is forced into when a VM
// offers no diagnostics).
func NoFlags() FlagSet { return FlagSet{} }

// Enabled reports whether f is on.
func (fs FlagSet) Enabled(f Flag) bool { return fs[f] }

// Names returns the enabled flags as strings in the canonical AllFlags
// order — the stable wire encoding used by the out-of-process execution
// backend. Flags outside the canonical 15 are appended alphabetically so
// no enabled flag is ever dropped.
func (fs FlagSet) Names() []string {
	var out []string
	canonical := map[Flag]bool{}
	for _, f := range AllFlags() {
		canonical[f] = true
		if fs[f] {
			out = append(out, string(f))
		}
	}
	var extra []string
	for f, on := range fs {
		if on && !canonical[f] {
			extra = append(extra, string(f))
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// FlagSetFromNames rebuilds a FlagSet from a Names encoding. It is the
// decode half of the wire protocol: FlagSetFromNames(fs.Names()) enables
// exactly the flags fs enables.
func FlagSetFromNames(names []string) FlagSet {
	if len(names) == 0 {
		return nil
	}
	fs := FlagSet{}
	for _, n := range names {
		fs[Flag(n)] = true
	}
	return fs
}

// Any reports whether at least one flag is enabled. Executions with no
// flags enabled skip log assembly and OBV extraction entirely.
func (fs FlagSet) Any() bool {
	for _, on := range fs {
		if on {
			return true
		}
	}
	return false
}
