package bytecode

import (
	"fmt"

	"repro/internal/lang"
)

// Compile lowers a checked program to an Image. The program must have
// passed lang.Check; Compile reports an error for constructs the checker
// would have rejected rather than crashing, but gives no guarantees about
// unchecked programs.
func Compile(p *lang.Program) (*Image, error) {
	img := &Image{EntryClass: p.EntryClass, Program: p}
	for _, cl := range p.Classes {
		cf := &ClassFile{Name: cl.Name}
		for _, f := range cl.Fields {
			cf.Fields = append(cf.Fields, FieldInfo{Name: f.Name, Static: f.Static, IsRef: f.Ty.IsRef()})
		}
		for _, m := range cl.Methods {
			fn, err := compileMethod(p, cl, m)
			if err != nil {
				return nil, err
			}
			cf.Funcs = append(cf.Funcs, fn)
		}
		img.Classes = append(img.Classes, cf)
	}
	if img.Entry() == nil {
		return nil, fmt.Errorf("bytecode: image has no entry %s.main", p.EntryClass)
	}
	return img, nil
}

// fnCompiler holds per-method compilation state.
type fnCompiler struct {
	prog   *lang.Program
	class  *lang.Class
	method *lang.Method
	fn     *Function

	scopes    []map[string]int
	nextSlot  int
	syncDepth int32 // static monitor nesting depth at the current point

	intPool map[int64]int32
	strPool map[string]int32
	mPool   map[MethodRef]int32
	fPool   map[FieldRef]int32
	cPool   map[string]int32
}

func compileMethod(p *lang.Program, cl *lang.Class, m *lang.Method) (*Function, error) {
	fc := &fnCompiler{
		prog:   p,
		class:  cl,
		method: m,
		fn: &Function{
			Class:        cl.Name,
			Name:         m.Name,
			HasReceiver:  !m.Static,
			Void:         m.Ret.Kind == lang.KindVoid,
			Synchronized: m.Synchronized,
			Source:       m,
			key:          cl.Name + "." + m.Name,
		},
		intPool: map[int64]int32{},
		strPool: map[string]int32{},
		mPool:   map[MethodRef]int32{},
		fPool:   map[FieldRef]int32{},
		cPool:   map[string]int32{},
	}
	fc.push()
	if !m.Static {
		fc.declare("this")
	}
	for _, pr := range m.Params {
		fc.declare(pr.Name)
	}
	fc.fn.NParams = fc.nextSlot
	if err := fc.block(m.Body); err != nil {
		return nil, err
	}
	// Implicit return for void methods falling off the end.
	fc.emit(Return, 0, 0)
	fc.fn.NLocals = fc.nextSlot
	return fc.fn, nil
}

func (fc *fnCompiler) push() { fc.scopes = append(fc.scopes, map[string]int{}) }
func (fc *fnCompiler) pop()  { fc.scopes = fc.scopes[:len(fc.scopes)-1] }

func (fc *fnCompiler) declare(name string) int {
	slot := fc.nextSlot
	fc.nextSlot++
	fc.scopes[len(fc.scopes)-1][name] = slot
	return slot
}

func (fc *fnCompiler) slot(name string) (int, error) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if s, ok := fc.scopes[i][name]; ok {
			return s, nil
		}
	}
	return 0, fmt.Errorf("bytecode: %s.%s: unresolved variable %q", fc.class.Name, fc.method.Name, name)
}

func (fc *fnCompiler) emit(op Op, a, b int32) int32 {
	fc.fn.Code = append(fc.fn.Code, Instr{Op: op, A: a, B: b})
	return int32(len(fc.fn.Code) - 1)
}

func (fc *fnCompiler) pc() int32 { return int32(len(fc.fn.Code)) }

func (fc *fnCompiler) patch(at int32) { fc.fn.Code[at].A = fc.pc() }

func (fc *fnCompiler) intConst(v int64) int32 {
	if i, ok := fc.intPool[v]; ok {
		return i
	}
	i := int32(len(fc.fn.Ints))
	fc.fn.Ints = append(fc.fn.Ints, v)
	fc.intPool[v] = i
	return i
}

func (fc *fnCompiler) strConst(v string) int32 {
	if i, ok := fc.strPool[v]; ok {
		return i
	}
	i := int32(len(fc.fn.Strs))
	fc.fn.Strs = append(fc.fn.Strs, v)
	fc.strPool[v] = i
	return i
}

func (fc *fnCompiler) methodRef(class, name string) (int32, error) {
	cl := fc.prog.Class(class)
	if cl == nil {
		return 0, fmt.Errorf("bytecode: unknown class %q", class)
	}
	m := cl.Method(name)
	if m == nil {
		return 0, fmt.Errorf("bytecode: unknown method %s.%s", class, name)
	}
	ref := MethodRef{Class: class, Method: name, Static: m.Static, NArgs: len(m.Params), Void: m.Ret.Kind == lang.KindVoid}
	if i, ok := fc.mPool[ref]; ok {
		return i, nil
	}
	i := int32(len(fc.fn.Methods))
	fc.fn.Methods = append(fc.fn.Methods, ref)
	fc.mPool[ref] = i
	return i, nil
}

func (fc *fnCompiler) fieldRef(class, name string) (int32, bool, error) {
	cl := fc.prog.Class(class)
	if cl == nil {
		return 0, false, fmt.Errorf("bytecode: unknown class %q", class)
	}
	f := cl.FieldByName(name)
	if f == nil {
		return 0, false, fmt.Errorf("bytecode: unknown field %s.%s", class, name)
	}
	ref := FieldRef{Class: class, Name: name, Static: f.Static}
	if i, ok := fc.fPool[ref]; ok {
		return i, f.Static, nil
	}
	i := int32(len(fc.fn.Fields))
	fc.fn.Fields = append(fc.fn.Fields, ref)
	fc.fPool[ref] = i
	return i, f.Static, nil
}

func (fc *fnCompiler) classRef(name string) int32 {
	if i, ok := fc.cPool[name]; ok {
		return i
	}
	i := int32(len(fc.fn.Classes))
	fc.fn.Classes = append(fc.fn.Classes, name)
	fc.cPool[name] = i
	return i
}

func (fc *fnCompiler) block(b *lang.Block) error {
	if b == nil {
		return nil
	}
	fc.push()
	defer fc.pop()
	for _, s := range b.Stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fnCompiler) stmt(s lang.Stmt) error {
	switch n := s.(type) {
	case *lang.VarDecl:
		if err := fc.expr(n.Init); err != nil {
			return err
		}
		slot := fc.declare(n.Name)
		fc.emit(Store, int32(slot), 0)
	case *lang.Assign:
		return fc.assign(n)
	case *lang.ExprStmt:
		if err := fc.expr(n.E); err != nil {
			return err
		}
		if !isVoidExpr(n.E) {
			fc.emit(Pop, 0, 0)
		}
	case *lang.If:
		if err := fc.expr(n.Cond); err != nil {
			return err
		}
		jElse := fc.emit(JumpIfFalse, 0, 0)
		if err := fc.block(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			jEnd := fc.emit(Jump, 0, 0)
			fc.patch(jElse)
			if err := fc.block(n.Else); err != nil {
				return err
			}
			fc.patch(jEnd)
		} else {
			fc.patch(jElse)
		}
	case *lang.For:
		return fc.forLoop(n)
	case *lang.While:
		cond := fc.pc()
		if err := fc.expr(n.Cond); err != nil {
			return err
		}
		jEnd := fc.emit(JumpIfFalse, 0, 0)
		if err := fc.block(n.Body); err != nil {
			return err
		}
		fc.emit(Jump, cond, 0)
		fc.patch(jEnd)
	case *lang.Sync:
		return fc.sync(n)
	case *lang.Return:
		if n.E != nil {
			if err := fc.expr(n.E); err != nil {
				return err
			}
			fc.emit(ReturnVal, 0, 0)
		} else {
			fc.emit(Return, 0, 0)
		}
	case *lang.Throw:
		if err := fc.expr(n.E); err != nil {
			return err
		}
		fc.emit(Throw, 0, 0)
	case *lang.Try:
		return fc.try(n)
	case *lang.Print:
		if err := fc.expr(n.E); err != nil {
			return err
		}
		fc.emit(PrintOp, 0, 0)
	case *lang.Block:
		return fc.block(n)
	default:
		return fmt.Errorf("bytecode: unknown statement type %T", s)
	}
	return nil
}

func (fc *fnCompiler) assign(n *lang.Assign) error {
	switch t := n.Target.(type) {
	case *lang.VarRef:
		if err := fc.expr(n.Value); err != nil {
			return err
		}
		slot, err := fc.slot(t.Name)
		if err != nil {
			return err
		}
		fc.emit(Store, int32(slot), 0)
	case *lang.FieldRef:
		idx, static, err := fc.fieldRef(t.Class, t.Name)
		if err != nil {
			return err
		}
		if static {
			if err := fc.expr(n.Value); err != nil {
				return err
			}
			fc.emit(PutStatic, idx, 0)
			return nil
		}
		if err := fc.expr(t.Recv); err != nil {
			return err
		}
		if err := fc.expr(n.Value); err != nil {
			return err
		}
		fc.emit(PutField, idx, 0)
	case *lang.Index:
		if err := fc.expr(t.Arr); err != nil {
			return err
		}
		if err := fc.expr(t.Idx); err != nil {
			return err
		}
		if err := fc.expr(n.Value); err != nil {
			return err
		}
		fc.emit(AStore, 0, 0)
	default:
		return fmt.Errorf("bytecode: invalid assignment target %T", n.Target)
	}
	return nil
}

func (fc *fnCompiler) forLoop(n *lang.For) error {
	fc.push()
	defer fc.pop()
	if err := fc.expr(n.From); err != nil {
		return err
	}
	slot := int32(fc.declare(n.Var))
	fc.emit(Store, slot, 0)
	cond := fc.pc()
	fc.emit(Load, slot, 0)
	if err := fc.expr(n.To); err != nil {
		return err
	}
	fc.emit(CmpLt, 0, 0)
	jEnd := fc.emit(JumpIfFalse, 0, 0)
	if err := fc.block(n.Body); err != nil {
		return err
	}
	fc.emit(Load, slot, 0)
	fc.emit(Const, fc.intConst(n.Step), 0)
	fc.emit(Add, 0, 0)
	fc.emit(Store, slot, 0)
	fc.emit(Jump, cond, 0)
	fc.patch(jEnd)
	return nil
}

func (fc *fnCompiler) sync(n *lang.Sync) error {
	fc.push()
	defer fc.pop()
	if err := fc.expr(n.Monitor); err != nil {
		return err
	}
	tmp := int32(fc.declare("$mon" + itoa(int(fc.syncDepth))))
	fc.emit(Dup, 0, 0)
	fc.emit(Store, tmp, 0)
	fc.emit(MonitorEnter, 0, 0)
	fc.syncDepth++
	if err := fc.block(n.Body); err != nil {
		return err
	}
	fc.syncDepth--
	fc.emit(Load, tmp, 0)
	fc.emit(MonitorExit, 0, 0)
	return nil
}

func (fc *fnCompiler) try(n *lang.Try) error {
	start := fc.pc()
	depth := fc.syncDepth
	if err := fc.block(n.Body); err != nil {
		return err
	}
	jEnd := fc.emit(Jump, 0, 0)
	end := fc.pc()

	fc.push()
	catchSlot := int32(fc.declare(n.CatchVar))
	handler := fc.pc()
	if err := fc.block(n.Catch); err != nil {
		return err
	}
	fc.pop()
	fc.patch(jEnd)

	fc.fn.ExTable = append(fc.fn.ExTable, ExRange{
		Start: start, End: end, Handler: handler, CatchSlot: catchSlot, MonDepth: depth,
	})
	return nil
}

func isVoidExpr(e lang.Expr) bool {
	return e.ResultType().Kind == lang.KindVoid
}

func (fc *fnCompiler) expr(e lang.Expr) error {
	switch n := e.(type) {
	case *lang.IntLit:
		b := int32(0)
		if n.Ty.Kind == lang.KindLong {
			b = 1
		}
		fc.emit(Const, fc.intConst(n.V), b)
	case *lang.BoolLit:
		v := int32(0)
		if n.V {
			v = 1
		}
		fc.emit(ConstBool, v, 0)
	case *lang.StrLit:
		fc.emit(ConstStr, fc.strConst(n.V), 0)
	case *lang.VarRef:
		slot, err := fc.slot(n.Name)
		if err != nil {
			return err
		}
		fc.emit(Load, int32(slot), 0)
	case *lang.FieldRef:
		idx, static, err := fc.fieldRef(n.Class, n.Name)
		if err != nil {
			return err
		}
		if static {
			fc.emit(GetStatic, idx, 0)
			return nil
		}
		if err := fc.expr(n.Recv); err != nil {
			return err
		}
		fc.emit(GetField, idx, 0)
	case *lang.Binary:
		return fc.binary(n)
	case *lang.Unary:
		if err := fc.expr(n.X); err != nil {
			return err
		}
		switch n.Op {
		case lang.OpNeg:
			fc.emit(Neg, 0, 0)
		case lang.OpBitNot:
			fc.emit(BitNot, 0, 0)
		case lang.OpNot:
			fc.emit(Not, 0, 0)
		}
	case *lang.Call:
		idx, err := fc.methodRef(n.Class, n.Method)
		if err != nil {
			return err
		}
		ref := fc.fn.Methods[idx]
		if !ref.Static {
			if err := fc.expr(n.Recv); err != nil {
				return err
			}
		}
		for _, a := range n.Args {
			if err := fc.expr(a); err != nil {
				return err
			}
		}
		fc.emit(Invoke, idx, 0)
	case *lang.ReflectCall:
		idx, err := fc.methodRef(n.Class, n.Method)
		if err != nil {
			return err
		}
		ref := fc.fn.Methods[idx]
		if !ref.Static {
			if err := fc.expr(n.Recv); err != nil {
				return err
			}
		}
		for _, a := range n.Args {
			if err := fc.expr(a); err != nil {
				return err
			}
		}
		fc.emit(InvokeReflect, idx, 0)
	case *lang.ReflectFieldGet:
		idx, static, err := fc.fieldRef(n.Class, n.Name)
		if err != nil {
			return err
		}
		if !static {
			if err := fc.expr(n.Recv); err != nil {
				return err
			}
		}
		fc.emit(ReflectGetF, idx, 0)
	case *lang.New:
		fc.emit(NewObj, fc.classRef(n.Class), 0)
	case *lang.NewArray:
		if err := fc.expr(n.Len); err != nil {
			return err
		}
		fc.emit(NewArr, 0, 0)
	case *lang.Index:
		if err := fc.expr(n.Arr); err != nil {
			return err
		}
		if err := fc.expr(n.Idx); err != nil {
			return err
		}
		fc.emit(ALoad, 0, 0)
	case *lang.Box:
		if err := fc.expr(n.X); err != nil {
			return err
		}
		fc.emit(BoxOp, 0, 0)
	case *lang.Unbox:
		if err := fc.expr(n.X); err != nil {
			return err
		}
		fc.emit(UnboxOp, 0, 0)
	case *lang.Widen:
		if err := fc.expr(n.X); err != nil {
			return err
		}
		fc.emit(I2L, 0, 0)
	case *lang.Cond:
		if err := fc.expr(n.C); err != nil {
			return err
		}
		jF := fc.emit(JumpIfFalse, 0, 0)
		if err := fc.expr(n.T); err != nil {
			return err
		}
		jEnd := fc.emit(Jump, 0, 0)
		fc.patch(jF)
		if err := fc.expr(n.F); err != nil {
			return err
		}
		fc.patch(jEnd)
	default:
		return fmt.Errorf("bytecode: unknown expression type %T", e)
	}
	return nil
}

func (fc *fnCompiler) binary(n *lang.Binary) error {
	// Short-circuit logical operators.
	if n.Op == lang.OpLAnd || n.Op == lang.OpLOr {
		if err := fc.expr(n.L); err != nil {
			return err
		}
		fc.emit(Dup, 0, 0)
		var j int32
		if n.Op == lang.OpLAnd {
			j = fc.emit(JumpIfFalse, 0, 0)
		} else {
			j = fc.emit(JumpIfTrue, 0, 0)
		}
		fc.emit(Pop, 0, 0)
		if err := fc.expr(n.R); err != nil {
			return err
		}
		fc.patch(j)
		return nil
	}
	if err := fc.expr(n.L); err != nil {
		return err
	}
	if err := fc.expr(n.R); err != nil {
		return err
	}
	op, ok := map[lang.BinOp]Op{
		lang.OpAdd: Add, lang.OpSub: Sub, lang.OpMul: Mul, lang.OpDiv: Div, lang.OpRem: Rem,
		lang.OpAnd: And, lang.OpOr: Or, lang.OpXor: Xor, lang.OpShl: Shl, lang.OpShr: Shr,
		lang.OpEq: CmpEq, lang.OpNe: CmpNe, lang.OpLt: CmpLt, lang.OpLe: CmpLe,
		lang.OpGt: CmpGt, lang.OpGe: CmpGe,
	}[n.Op]
	if !ok {
		return fmt.Errorf("bytecode: unmapped binary op %v", n.Op)
	}
	fc.emit(op, 0, 0)
	return nil
}

func itoa(n int) string {
	return fmt.Sprintf("%d", n)
}
