package bytecode

import (
	"fmt"
	"strings"
)

// Disassemble renders a function as a human-readable listing.
func Disassemble(f *Function) string {
	var b strings.Builder
	mods := ""
	if f.Synchronized {
		mods = "synchronized "
	}
	fmt.Fprintf(&b, "%s%s.%s  (params=%d locals=%d void=%v)\n", mods, f.Class, f.Name, f.NParams, f.NLocals, f.Void)
	for pc, ins := range f.Code {
		fmt.Fprintf(&b, "  %4d: %-14s", pc, ins.Op)
		switch ins.Op {
		case Const:
			suffix := ""
			if ins.B == 1 {
				suffix = "L"
			}
			fmt.Fprintf(&b, "%d%s", f.Ints[ins.A], suffix)
		case ConstStr:
			fmt.Fprintf(&b, "%q", f.Strs[ins.A])
		case ConstBool:
			fmt.Fprintf(&b, "%v", ins.A != 0)
		case Load, Store:
			fmt.Fprintf(&b, "slot %d", ins.A)
		case Jump, JumpIfFalse, JumpIfTrue:
			fmt.Fprintf(&b, "-> %d", ins.A)
		case Invoke, InvokeReflect:
			fmt.Fprintf(&b, "%s", f.Methods[ins.A])
		case GetField, PutField, GetStatic, PutStatic, ReflectGetF:
			fmt.Fprintf(&b, "%s", f.Fields[ins.A])
		case NewObj:
			fmt.Fprintf(&b, "%s", f.Classes[ins.A])
		}
		b.WriteString("\n")
	}
	for _, ex := range f.ExTable {
		fmt.Fprintf(&b, "  try [%d,%d) -> handler %d (slot %d, mondepth %d)\n",
			ex.Start, ex.End, ex.Handler, ex.CatchSlot, ex.MonDepth)
	}
	return b.String()
}

// DisassembleImage renders every function in the image.
func DisassembleImage(img *Image) string {
	var b strings.Builder
	for _, c := range img.Classes {
		for _, f := range c.Funcs {
			b.WriteString(Disassemble(f))
			b.WriteString("\n")
		}
	}
	return b.String()
}
