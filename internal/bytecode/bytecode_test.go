package bytecode

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func compileSrc(t *testing.T, src string) *Image {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatalf("Check: %v", err)
	}
	img, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return img
}

const allConstructs = `
class T {
  int f;
  static int sf;
  static void main() {
    T t = new T();
    t.f = 3;
    T.sf = 9;
    int[] a = new int[4];
    a[0] = t.f + T.sf;
    Integer bx = Integer.valueOf(a[0]);
    int u = bx.intValue();
    long l = 5L;
    l = l * u;
    boolean b = u > 3 && l < 100L;
    if (b) { print(l); } else { print(0); }
    int s = 0;
    for (int i = 0; i < 10; i += 2) { s = s + i; }
    while (s > 0) { s = s - 7; }
    synchronized (t) { t.f = t.f + 1; }
    try { throw 5; } catch (e) { print(e); }
    int r = reflect_invoke("T", "id", t, 4);
    int g = reflect_get("T", "f", t);
    print(r + g ? 1 : 0);
  }
  int id(int x) { return x; }
}
`

func TestCompileAndVerifyAllConstructs(t *testing.T) {
	src := strings.Replace(allConstructs, "print(r + g ? 1 : 0);", "print(r + g);", 1)
	img := compileSrc(t, src)
	if err := Verify(img); err != nil {
		t.Fatalf("Verify: %v\n%s", err, DisassembleImage(img))
	}
}

func TestCompileTernary(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { int x = 3; int y = x > 1 ? 10 : 20; print(y); } }`)
	if err := Verify(img); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesBadJump(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { print(1); } }`)
	f := img.Entry()
	f.Code = append(f.Code, Instr{Op: Jump, A: 999})
	if err := Verify(img); err == nil || !strings.Contains(err.Error(), "jump target") {
		t.Errorf("Verify = %v, want jump target error", err)
	}
}

func TestVerifyCatchesUnderflow(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { print(1); } }`)
	f := img.Entry()
	f.Code = append([]Instr{{Op: Pop}}, f.Code...)
	if err := Verify(img); err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("Verify = %v, want underflow error", err)
	}
}

func TestVerifyCatchesInconsistentDepth(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { print(1); } }`)
	f := img.Entry()
	// Build: 0: const_bool -> 1: jump_if_false 3 -> 2: const(pushes) -> 3: return
	// Path A reaches 3 with depth 0, path B (through 2) with depth 1.
	f.Code = []Instr{
		{Op: ConstBool, A: 1},
		{Op: JumpIfFalse, A: 3},
		{Op: Const, A: 0},
		{Op: Return},
	}
	f.Ints = []int64{7}
	if err := Verify(img); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("Verify = %v, want inconsistent depth error", err)
	}
}

func TestVerifyCatchesBadLocal(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { print(1); } }`)
	f := img.Entry()
	f.Code = append([]Instr{{Op: Load, A: 57}}, f.Code...)
	if err := Verify(img); err == nil || !strings.Contains(err.Error(), "local slot") {
		t.Errorf("Verify = %v, want local slot error", err)
	}
}

func TestVerifyCatchesUnresolvableMethod(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { T.foo(); } static void foo() { return; } }`)
	f := img.Entry()
	f.Methods[0].Method = "gone"
	if err := Verify(img); err == nil || !strings.Contains(err.Error(), "unresolvable") {
		t.Errorf("Verify = %v, want unresolvable method error", err)
	}
}

func TestVerifyCatchesFallOffEnd(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { print(1); } }`)
	f := img.Entry()
	f.Code = f.Code[:len(f.Code)-1] // drop trailing return
	if err := Verify(img); err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Errorf("Verify = %v, want falls-off-end error", err)
	}
}

func TestExceptionTableRecordsMonDepth(t *testing.T) {
	img := compileSrc(t, `
class T {
  static void main() {
    T t = new T();
    synchronized (t) {
      try { throw 1; } catch (e) { print(e); }
    }
  }
}`)
	f := img.Entry()
	if len(f.ExTable) != 1 {
		t.Fatalf("ExTable len = %d, want 1", len(f.ExTable))
	}
	if f.ExTable[0].MonDepth != 1 {
		t.Errorf("MonDepth = %d, want 1", f.ExTable[0].MonDepth)
	}
}

func TestDisassembleContainsOps(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { T t = new T(); synchronized (t) { print(1); } } }`)
	out := Disassemble(img.Entry())
	for _, want := range []string{"monitorenter", "monitorexit", "new", "print", "return"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestMethodRefDedup(t *testing.T) {
	img := compileSrc(t, `
class T {
  static void main() { T.foo(); T.foo(); T.foo(); }
  static void foo() { return; }
}`)
	f := img.Entry()
	if len(f.Methods) != 1 {
		t.Errorf("method pool size = %d, want 1 (dedup)", len(f.Methods))
	}
}

func TestConstPoolDedup(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { print(42 + 42 + 42); } }`)
	f := img.Entry()
	count := 0
	for _, v := range f.Ints {
		if v == 42 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("constant 42 appears %d times in pool, want 1", count)
	}
}

func TestSynchronizedMethodFlag(t *testing.T) {
	img := compileSrc(t, `
class T {
  static void main() { T t = new T(); t.locked(); }
  synchronized void locked() { return; }
}`)
	f := img.Class("T").Func("locked")
	if !f.Synchronized || !f.HasReceiver {
		t.Errorf("locked: Synchronized=%v HasReceiver=%v", f.Synchronized, f.HasReceiver)
	}
	if err := Verify(img); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestImageLookup(t *testing.T) {
	img := compileSrc(t, `class T { static void main() { return; } }`)
	if img.Lookup(MethodRef{Class: "T", Method: "main"}) == nil {
		t.Error("Lookup failed for T.main")
	}
	if img.Lookup(MethodRef{Class: "X", Method: "main"}) != nil {
		t.Error("Lookup of unknown class should be nil")
	}
	if got := len(img.Functions()); got != 1 {
		t.Errorf("Functions() = %d, want 1", got)
	}
}
