package bytecode

import (
	"fmt"

	"repro/internal/lang"
)

// MethodRef names a callable method in the image.
type MethodRef struct {
	Class  string
	Method string
	Static bool
	NArgs  int  // declared parameters (excluding receiver)
	Void   bool // true when the method returns void
}

func (r MethodRef) String() string {
	kind := "virtual"
	if r.Static {
		kind = "static"
	}
	return fmt.Sprintf("%s %s.%s/%d", kind, r.Class, r.Method, r.NArgs)
}

// FieldRef names a field in the image.
type FieldRef struct {
	Class  string
	Name   string
	Static bool
}

func (r FieldRef) String() string { return r.Class + "." + r.Name }

// ExRange is one exception-table entry: if an exception unwinds while
// pc is in [Start, End), control transfers to Handler with the thrown
// code stored into local CatchSlot. MonDepth records the frame monitor
// depth at try entry so the runtime can release monitors entered inside
// the protected range before running the handler.
type ExRange struct {
	Start, End int32
	Handler    int32
	CatchSlot  int32
	MonDepth   int32
}

// Function is one compiled method.
type Function struct {
	Class        string
	Name         string
	NParams      int // locals 0..NParams-1 hold receiver (if any) then args
	HasReceiver  bool
	NLocals      int
	Void         bool
	Synchronized bool

	Code    []Instr
	Ints    []int64     // integer constant pool
	Strs    []string    // string constant pool
	Methods []MethodRef // method refs, indexed by Invoke A operands
	Fields  []FieldRef  // field refs, indexed by field ops
	Classes []string    // class refs, indexed by NewObj
	ExTable []ExRange

	// Source is the method's tree form, retained for the JIT tiers
	// (analogous to HotSpot retaining bytecode for recompilation).
	Source *lang.Method

	// key caches Key(). Compile fills it eagerly so concurrent readers
	// never race on a lazy write; hand-built Functions fall back to
	// concatenation.
	key string
}

// Key returns "Class.Name", the image-wide function key.
func (f *Function) Key() string {
	if f.key != "" {
		return f.key
	}
	return f.Class + "." + f.Name
}

// ClassFile is one compiled class.
type ClassFile struct {
	Name   string
	Fields []FieldInfo
	Funcs  []*Function
}

// FieldInfo describes a declared field.
type FieldInfo struct {
	Name   string
	Static bool
	IsRef  bool // reference-typed (objects, boxes, arrays) vs numeric/bool
}

// Func returns the named function of the class, or nil.
func (c *ClassFile) Func(name string) *Function {
	for _, f := range c.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Image is a fully compiled program: the unit the VM loads and runs.
type Image struct {
	Classes    []*ClassFile
	EntryClass string
	// Program is the source program, retained for the JIT tiers.
	Program *lang.Program
}

// Class returns the named class file, or nil.
func (img *Image) Class(name string) *ClassFile {
	for _, c := range img.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Lookup resolves a method ref to its function, or nil.
func (img *Image) Lookup(ref MethodRef) *Function {
	c := img.Class(ref.Class)
	if c == nil {
		return nil
	}
	return c.Func(ref.Method)
}

// Entry returns the program's main function, or nil.
func (img *Image) Entry() *Function {
	c := img.Class(img.EntryClass)
	if c == nil {
		return nil
	}
	return c.Func("main")
}

// Functions returns every function in the image in declaration order.
func (img *Image) Functions() []*Function {
	var out []*Function
	for _, c := range img.Classes {
		out = append(out, c.Funcs...)
	}
	return out
}
