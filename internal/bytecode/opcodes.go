// Package bytecode defines the classfile-like executable form of mini-Java
// programs: a stack-based instruction set, a compiler from the lang AST,
// a structural verifier, and a disassembler.
//
// The simulated JVM's interpreter tier executes this bytecode directly;
// the JIT tiers compile from the method's tree form (like OpenJ9's
// Testarossa tree IR) once a method becomes hot.
package bytecode

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Instructions use at most two int32 operands, A and B.
const (
	Nop Op = iota

	// Constants and locals.
	Const    // push int constant pool entry A (int or long per B: 0=int, 1=long)
	ConstStr // push string constant pool entry A
	ConstBool
	Load  // push local slot A
	Store // pop into local slot A
	Dup
	Pop

	// Arithmetic / bitwise (pop two, push one).
	Add
	Sub
	Mul
	Div // throws ArithmeticException (code -3) on divide by zero
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Neg    // pop one, push one
	BitNot // pop one, push one

	// Comparisons (pop two, push bool).
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	Not // pop bool, push bool

	// Control flow.
	Jump        // unconditional branch to pc A
	JumpIfFalse // pop bool; branch to pc A when false
	JumpIfTrue  // pop bool; branch to pc A when true

	// Objects, fields, arrays.
	NewObj    // push new instance of class ref A
	NewArr    // pop length, push new int array
	GetField  // pop receiver, push field (field ref A)
	PutField  // pop value, pop receiver, store field (field ref A)
	GetStatic // push static field (field ref A)
	PutStatic // pop value into static field (field ref A)
	ALoad     // pop index, pop array, push element (bounds-checked, code -2)
	AStore    // pop value, pop index, pop array, store element

	// Conversions.
	I2L // pop int, push it widened to long

	// Boxing.
	BoxOp   // pop int, push Integer
	UnboxOp // pop Integer, push int (NPE code -1 on null)

	// Calls.
	Invoke        // method ref A; pops args (and receiver for instance), pushes result if non-void
	InvokeReflect // like Invoke but through the reflection runtime
	ReflectGetF   // field ref A read via reflection; pops receiver (or nothing if static)

	// Monitors.
	MonitorEnter // pop reference, enter its monitor
	MonitorExit  // pop reference, exit its monitor

	// Method exit / exceptions.
	Return    // return void
	ReturnVal // pop value, return it
	Throw     // pop int code, raise exception

	// Output.
	PrintOp // pop value, append to program output
)

var opNames = [...]string{
	Nop: "nop", Const: "const", ConstStr: "const_str", ConstBool: "const_bool",
	Load: "load", Store: "store", Dup: "dup", Pop: "pop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Neg: "neg", BitNot: "bitnot",
	CmpEq: "cmpeq", CmpNe: "cmpne", CmpLt: "cmplt", CmpLe: "cmple",
	CmpGt: "cmpgt", CmpGe: "cmpge", Not: "not",
	Jump: "jump", JumpIfFalse: "jump_if_false", JumpIfTrue: "jump_if_true",
	NewObj: "new", NewArr: "newarray",
	GetField: "getfield", PutField: "putfield",
	GetStatic: "getstatic", PutStatic: "putstatic",
	ALoad: "aload", AStore: "astore",
	I2L: "i2l", BoxOp: "box", UnboxOp: "unbox",
	Invoke: "invoke", InvokeReflect: "invoke_reflect", ReflectGetF: "reflect_getfield",
	MonitorEnter: "monitorenter", MonitorExit: "monitorexit",
	Return: "return", ReturnVal: "return_val", Throw: "throw",
	PrintOp: "print",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// StackEffect returns the net change in operand-stack depth caused by the
// instruction (pushes minus pops). Invoke variants depend on the method
// ref, so they are handled separately by the verifier.
func (o Op) StackEffect() (int, bool) {
	switch o {
	case Nop, Jump:
		return 0, true
	case Const, ConstStr, ConstBool, Load, Dup, GetStatic:
		return 1, true
	case Store, Pop, JumpIfFalse, JumpIfTrue, PutStatic, MonitorEnter, MonitorExit,
		ReturnVal, Throw, PrintOp:
		return -1, true
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe:
		return -1, true
	case Neg, BitNot, Not, NewArr, I2L, BoxOp, UnboxOp, GetField:
		return 0, true
	case NewObj:
		return 1, true
	case PutField:
		return -2, true
	case ALoad:
		return -1, true
	case AStore:
		return -3, true
	case Return:
		return 0, true
	}
	return 0, false
}

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	A, B int32
}

// Exception codes used by the runtime for built-in failures.
const (
	ExcNullPointer = -1
	ExcArrayBounds = -2
	ExcArithmetic  = -3
)
