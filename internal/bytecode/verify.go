package bytecode

import (
	"fmt"
)

// Verify structurally checks every function in the image, in the spirit
// of the JVM's classfile verifier:
//
//   - jump targets and exception-table ranges lie inside the code
//   - constant-pool, local, method-ref, field-ref and class-ref indices
//     are in range
//   - operand-stack depth is consistent at every instruction across all
//     paths (abstract interpretation with merge checking) and never
//     negative
//   - execution cannot fall off the end of the code
//   - every Invoke target resolves in the image
//
// It returns an error describing the first violated rule.
func Verify(img *Image) error {
	for _, c := range img.Classes {
		for _, f := range c.Funcs {
			if err := verifyFunc(img, f); err != nil {
				return fmt.Errorf("bytecode: verify %s: %w", f.Key(), err)
			}
		}
	}
	return nil
}

func verifyFunc(img *Image, f *Function) error {
	n := int32(len(f.Code))
	if n == 0 {
		return fmt.Errorf("empty code")
	}
	// Index range checks.
	for pc, ins := range f.Code {
		switch ins.Op {
		case Const:
			if ins.A < 0 || int(ins.A) >= len(f.Ints) {
				return fmt.Errorf("pc %d: const index %d out of range", pc, ins.A)
			}
		case ConstStr:
			if ins.A < 0 || int(ins.A) >= len(f.Strs) {
				return fmt.Errorf("pc %d: string index %d out of range", pc, ins.A)
			}
		case Load, Store:
			if ins.A < 0 || int(ins.A) >= f.NLocals {
				return fmt.Errorf("pc %d: local slot %d out of range [0,%d)", pc, ins.A, f.NLocals)
			}
		case Jump, JumpIfFalse, JumpIfTrue:
			if ins.A < 0 || ins.A >= n {
				return fmt.Errorf("pc %d: jump target %d out of range", pc, ins.A)
			}
		case Invoke, InvokeReflect:
			if ins.A < 0 || int(ins.A) >= len(f.Methods) {
				return fmt.Errorf("pc %d: method ref %d out of range", pc, ins.A)
			}
			ref := f.Methods[ins.A]
			if img.Lookup(ref) == nil {
				return fmt.Errorf("pc %d: unresolvable method %s", pc, ref)
			}
		case GetField, PutField, GetStatic, PutStatic, ReflectGetF:
			if ins.A < 0 || int(ins.A) >= len(f.Fields) {
				return fmt.Errorf("pc %d: field ref %d out of range", pc, ins.A)
			}
		case NewObj:
			if ins.A < 0 || int(ins.A) >= len(f.Classes) {
				return fmt.Errorf("pc %d: class ref %d out of range", pc, ins.A)
			}
			if img.Class(f.Classes[ins.A]) == nil {
				return fmt.Errorf("pc %d: unresolvable class %q", pc, f.Classes[ins.A])
			}
		}
	}
	for i, ex := range f.ExTable {
		if ex.Start < 0 || ex.End > n || ex.Start >= ex.End {
			return fmt.Errorf("extable %d: bad range [%d,%d)", i, ex.Start, ex.End)
		}
		if ex.Handler < 0 || ex.Handler >= n {
			return fmt.Errorf("extable %d: handler %d out of range", i, ex.Handler)
		}
		if ex.CatchSlot < 0 || int(ex.CatchSlot) >= f.NLocals {
			return fmt.Errorf("extable %d: catch slot %d out of range", i, ex.CatchSlot)
		}
	}
	return verifyStack(img, f)
}

// verifyStack abstractly interprets stack depths over all paths.
func verifyStack(img *Image, f *Function) error {
	const unvisited = -1
	depth := make([]int, len(f.Code))
	for i := range depth {
		depth[i] = unvisited
	}
	type workItem struct {
		pc int32
		d  int
	}
	work := []workItem{{0, 0}}
	for _, ex := range f.ExTable {
		work = append(work, workItem{ex.Handler, 0})
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.d
	path:
		for {
			if pc >= int32(len(f.Code)) {
				return fmt.Errorf("execution falls off the end at pc %d", pc)
			}
			if prev := depth[pc]; prev != unvisited {
				if prev != d {
					return fmt.Errorf("pc %d: inconsistent stack depth %d vs %d", pc, prev, d)
				}
				break // already explored from here
			}
			depth[pc] = d
			ins := f.Code[pc]
			switch ins.Op {
			case Invoke, InvokeReflect:
				ref := f.Methods[ins.A]
				pops := ref.NArgs
				if !ref.Static {
					pops++
				}
				d -= pops
				if !ref.Void {
					d++
				}
			case ReflectGetF:
				if !f.Fields[ins.A].Static {
					d-- // receiver
				}
				d++ // value
			default:
				eff, ok := ins.Op.StackEffect()
				if !ok {
					return fmt.Errorf("pc %d: unknown opcode %d", pc, ins.Op)
				}
				d += eff
			}
			if d < 0 {
				return fmt.Errorf("pc %d: stack underflow (%s)", pc, ins.Op)
			}
			switch ins.Op {
			case Jump:
				pc = ins.A
				continue
			case JumpIfFalse, JumpIfTrue:
				work = append(work, workItem{ins.A, d})
			case Return, ReturnVal, Throw:
				if ins.Op == ReturnVal && f.Void {
					return fmt.Errorf("pc %d: value return from void function", pc)
				}
				break path
			}
			pc++
		}
	}
	return nil
}
