package coverage

// Catalog is the instrumented-region table of the simulated JVM. Line
// weights sum to 126,000 across the four components, matching the
// paper's note that OpenJDK17's four main components encompass roughly
// 126K lines. Regions prefixed with a pass name are marked by that pass;
// runtime and GC regions are marked by the interpreter and heap.
var Catalog = []Region{
	// --- C1 (client compiler): 19,000 lines ---
	{"c1.build", C1, 3000},
	{"c1.inline.try", C1, 1200},
	{"c1.inline.apply", C1, 900},
	{"c1.inline.sync_handler", C1, 700}, // Listing 1's fill_sync_handler path
	{"c1.algebra.apply", C1, 800},
	{"c1.rse.apply", C1, 700},
	{"c1.dce.apply", C1, 900},
	{"c1.codegen", C1, 4500},
	{"c1.runtime_stubs", C1, 1800},
	{"c1.deopt_support", C1, 1100},
	{"c1.profiling", C1, 1600},
	{"c1.exceptions", C1, 1800},

	// --- C2 (server compiler): 60,000 lines ---
	{"c2.parse", C2, 5000},
	{"c2.gvn.apply", C2, 2500},
	{"c2.gvn.subsume", C2, 1500},
	{"c2.inline.try", C2, 2000},
	{"c2.inline.apply", C2, 1500},
	{"c2.inline.sync", C2, 1200},
	{"c2.escape.analyze", C2, 2500},
	{"c2.escape.noescape", C2, 1200},
	{"c2.escape.argescape", C2, 800},
	{"c2.scalar.replace", C2, 1500},
	{"c2.locks.eliminate", C2, 1500},
	{"c2.locks.nested", C2, 1000},
	{"c2.locks.coarsen", C2, 1800},
	{"c2.loop.tree", C2, 2200},
	{"c2.loop.peel", C2, 1300},
	{"c2.loop.unswitch", C2, 1400},
	{"c2.loop.unroll", C2, 1700},
	{"c2.loop.premainpost", C2, 1100},
	{"c2.autobox.eliminate", C2, 1200},
	{"c2.algebra.apply", C2, 1600},
	{"c2.algebra.fold", C2, 900},
	{"c2.rse.apply", C2, 1100},
	{"c2.dce.apply", C2, 1400},
	{"c2.dereflect.apply", C2, 1300},
	{"c2.traps.insert", C2, 1200},
	{"c2.traps.fire", C2, 900},
	{"c2.macro.expand", C2, 2400},
	{"c2.codegen", C2, 7000},
	{"c2.regalloc", C2, 4200},
	{"c2.idealize", C2, 3300},
	{"c2.osr", C2, 1800},

	// --- Runtime: 27,000 lines ---
	{"runtime.startup", Runtime, 3000},
	{"runtime.interp.core", Runtime, 6000},
	{"runtime.interp.calls", Runtime, 2000},
	{"runtime.objects", Runtime, 2200},
	{"runtime.arrays", Runtime, 1800},
	{"runtime.boxing", Runtime, 1200},
	{"runtime.monitors", Runtime, 2400},
	{"runtime.monitors.nested", Runtime, 800},
	{"runtime.exceptions", Runtime, 2200},
	{"runtime.exceptions.unwind", Runtime, 1000},
	{"runtime.reflection", Runtime, 2000},
	{"runtime.deopt", Runtime, 1400},
	{"runtime.statics", Runtime, 1000},

	// --- GC: 20,000 lines ---
	{"gc.alloc.fast", GC, 3500},
	{"gc.alloc.slow", GC, 1500},
	{"gc.mark", GC, 4000},
	{"gc.sweep", GC, 3500},
	{"gc.roots.frames", GC, 2000},
	{"gc.roots.statics", GC, 1200},
	{"gc.barriers", GC, 2800},
	{"gc.large", GC, 1500},
}
