// Package coverage models the --enable-native-coverage instrumentation
// of the simulated JVM. The VM's source is divided into named line
// regions, each belonging to one of the four components the paper's
// Figure 2 reports (C1, C2, Runtime, GC). Executing a code path marks
// its region; coverage is the line-weighted fraction of marked regions.
package coverage

import (
	"sort"
	"sync"
)

// Component is one of the JVM's four instrumented components.
type Component string

// Components.
const (
	C1      Component = "C1"
	C2      Component = "C2"
	Runtime Component = "Runtime"
	GC      Component = "GC"
)

// Components lists the four components in report order.
func Components() []Component { return []Component{C1, C2, Runtime, GC} }

// Region is a named block of VM source lines.
type Region struct {
	Name  string
	Comp  Component
	Lines int
}

// Tracker accumulates region hits across one or many executions. A hit
// set only ever grows, so campaign-wide trackers can be shared by
// parallel workers: the mutex makes each mark atomic, and the final
// contents are order-independent.
type Tracker struct {
	mu   sync.Mutex
	hits map[string]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{hits: map[string]bool{}} }

// Hit marks a region as executed. Unknown names are tolerated (and
// ignored by reports) so instrumentation sites never fail.
func (t *Tracker) Hit(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hits[name] = true
	t.mu.Unlock()
}

// Hits returns the number of distinct regions marked.
func (t *Tracker) Hits() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.hits)
}

// Names returns the hit region names in sorted order — the wire
// encoding the out-of-process execution backend ships back to the
// parent, which replays them with Hit.
func (t *Tracker) Names() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]string, 0, len(t.hits))
	for k := range t.hits {
		out = append(out, k)
	}
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// Covered reports whether the named region was hit.
func (t *Tracker) Covered(name string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits[name]
}

// Merge folds another tracker's hits into t.
func (t *Tracker) Merge(o *Tracker) {
	if t == nil || o == nil {
		return
	}
	o.mu.Lock()
	keys := make([]string, 0, len(o.hits))
	for k := range o.hits {
		keys = append(keys, k)
	}
	o.mu.Unlock()
	t.mu.Lock()
	for _, k := range keys {
		t.hits[k] = true
	}
	t.mu.Unlock()
}

// Lines returns (covered, total) line counts for a component.
func (t *Tracker) Lines(comp Component) (covered, total int) {
	if t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	for _, r := range Catalog {
		if r.Comp != comp {
			continue
		}
		total += r.Lines
		if t != nil && t.hits[r.Name] {
			covered += r.Lines
		}
	}
	return covered, total
}

// Percent returns the line coverage percentage for a component.
func (t *Tracker) Percent(comp Component) float64 {
	c, tot := t.Lines(comp)
	if tot == 0 {
		return 0
	}
	return 100 * float64(c) / float64(tot)
}

// Summary returns the line-weighted coverage percentage across all four
// components (the paper's "Summary" bar).
func (t *Tracker) Summary() float64 {
	var c, tot int
	for _, comp := range Components() {
		cc, ct := t.Lines(comp)
		c += cc
		tot += ct
	}
	if tot == 0 {
		return 0
	}
	return 100 * float64(c) / float64(tot)
}

// TotalLines returns the instrumented line count of the whole VM
// (~126K, matching the paper's statement about OpenJDK17's four main
// components).
func TotalLines() int {
	n := 0
	for _, r := range Catalog {
		n += r.Lines
	}
	return n
}
