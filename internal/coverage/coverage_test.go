package coverage

import (
	"testing"
	"testing/quick"
)

func TestCatalogTotals(t *testing.T) {
	if got := TotalLines(); got != 126000 {
		t.Errorf("TotalLines = %d, want 126000 (the paper's ~126K)", got)
	}
	perComp := map[Component]int{}
	names := map[string]bool{}
	for _, r := range Catalog {
		if names[r.Name] {
			t.Errorf("duplicate region %q", r.Name)
		}
		names[r.Name] = true
		if r.Lines <= 0 {
			t.Errorf("region %q has %d lines", r.Name, r.Lines)
		}
		perComp[r.Comp] += r.Lines
	}
	want := map[Component]int{C1: 19000, C2: 60000, Runtime: 27000, GC: 20000}
	for c, w := range want {
		if perComp[c] != w {
			t.Errorf("%s lines = %d, want %d", c, perComp[c], w)
		}
	}
}

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker()
	if tr.Percent(C2) != 0 {
		t.Error("fresh tracker should be 0%")
	}
	tr.Hit("c2.parse")
	tr.Hit("c2.parse") // idempotent
	tr.Hit("not-a-region")
	c, total := tr.Lines(C2)
	if c != 5000 || total != 60000 {
		t.Errorf("Lines(C2) = %d/%d", c, total)
	}
	if !tr.Covered("c2.parse") || tr.Covered("c2.codegen") {
		t.Error("Covered broken")
	}
	if tr.Hits() != 2 { // includes the unknown name
		t.Errorf("Hits = %d", tr.Hits())
	}
}

func TestTrackerMergeAndSummary(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	a.Hit("c1.build")
	b.Hit("gc.mark")
	a.Merge(b)
	if !a.Covered("gc.mark") {
		t.Error("merge lost a hit")
	}
	wantPct := 100 * float64(3000+4000) / float64(TotalLines())
	if got := a.Summary(); got < wantPct-0.01 || got > wantPct+0.01 {
		t.Errorf("Summary = %v, want %v", got, wantPct)
	}
}

func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.Hit("c2.parse") // must not panic
	tr.Merge(NewTracker())
	if tr.Hits() != 0 || tr.Covered("c2.parse") {
		t.Error("nil tracker should be inert")
	}
	if c, _ := tr.Lines(C2); c != 0 {
		t.Error("nil tracker covered lines")
	}
}

// Property: Percent is monotone under additional hits and bounded by 100.
func TestPercentMonotoneProperty(t *testing.T) {
	var regionNames []string
	for _, r := range Catalog {
		regionNames = append(regionNames, r.Name)
	}
	f := func(picks []uint16) bool {
		tr := NewTracker()
		prev := 0.0
		for _, p := range picks {
			tr.Hit(regionNames[int(p)%len(regionNames)])
			cur := tr.Summary()
			if cur < prev || cur > 100.0001 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFullCoverageIs100(t *testing.T) {
	tr := NewTracker()
	for _, r := range Catalog {
		tr.Hit(r.Name)
	}
	for _, c := range Components() {
		if p := tr.Percent(c); p < 99.999 {
			t.Errorf("%s full coverage = %v", c, p)
		}
	}
	if tr.Summary() < 99.999 {
		t.Errorf("Summary = %v", tr.Summary())
	}
}
