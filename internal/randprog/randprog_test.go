package randprog

import (
	"math/rand"
	"testing"

	"repro/internal/buginject"
	"repro/internal/bytecode"
	"repro/internal/jvm"
	"repro/internal/lang"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(9)))
	b := Generate(rand.New(rand.NewSource(9)))
	if a != b {
		t.Error("same seed produced different programs")
	}
}

func TestGeneratedProgramsParseAndCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		src := Generate(rng)
		p, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("program %d does not parse: %v\n%s", i, err, src)
		}
		if err := lang.Check(p); err != nil {
			t.Fatalf("program %d ill-typed: %v\n%s", i, err, src)
		}
	}
}

// TestInterpreterVsJITStress is the substrate's own fuzzing campaign:
// random programs must behave identically on the bytecode interpreter
// and on the bug-free optimizing JIT — if this test fails, one of the
// sixteen passes or the executor has a real semantics bug.
func TestInterpreterVsJITStress(t *testing.T) {
	trials := 80
	if testing.Short() {
		trials = 15
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < trials; i++ {
		src := Generate(rng)
		p, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if err := lang.Check(p); err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		ref, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{
			PureInterpreter: true, MaxSteps: 8_000_000,
		})
		if err != nil {
			t.Fatalf("program %d interp: %v", i, err)
		}
		opt, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{
			ForceCompile: true, Bugs: []*buginject.Bug{}, MaxSteps: 8_000_000,
		})
		if err != nil {
			t.Fatalf("program %d jit: %v", i, err)
		}
		if ref.Result.TimedOut || opt.Result.TimedOut {
			continue
		}
		if opt.Crashed() {
			t.Fatalf("program %d crashed the bug-free JIT: %v\n%s", i, opt.Result.Crash, src)
		}
		if ref.Result.OutputString() != opt.Result.OutputString() {
			t.Fatalf("program %d: engines disagree\n-- interp --\n%s\n-- jit --\n%s\n-- source --\n%s",
				i, ref.Result.OutputString(), opt.Result.OutputString(), src)
		}
	}
}

// TestOpenJ9PipelineStress repeats the differential check against the
// OpenJ9-tuned pipeline (bigger inline budget, later traps).
func TestOpenJ9PipelineStress(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	rng := rand.New(rand.NewSource(13))
	spec := jvm.Spec{Impl: buginject.OpenJ9, Version: 23}
	for i := 0; i < trials; i++ {
		src := Generate(rng)
		p := lang.MustParse(src)
		if err := lang.Check(p); err != nil {
			t.Fatal(err)
		}
		ref, err := jvm.Run(lang.CloneProgram(p), spec, jvm.Options{PureInterpreter: true, MaxSteps: 8_000_000})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := jvm.Run(lang.CloneProgram(p), spec, jvm.Options{
			ForceCompile: true, Bugs: []*buginject.Bug{}, MaxSteps: 8_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Result.TimedOut || opt.Result.TimedOut {
			continue
		}
		if ref.Result.OutputString() != opt.Result.OutputString() {
			t.Fatalf("program %d (J9): engines disagree\n%s\nvs\n%s\n%s",
				i, ref.Result.OutputString(), opt.Result.OutputString(), src)
		}
	}
}

// TestGeneratedImagesVerify checks the bytecode verifier accepts every
// compiled random program (the compiler and verifier agree on
// structural rules).
func TestGeneratedImagesVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		p := lang.MustParse(Generate(rng))
		if err := lang.Check(p); err != nil {
			t.Fatal(err)
		}
		img, err := bytecode.Compile(p)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if err := bytecode.Verify(img); err != nil {
			t.Fatalf("program %d fails verification: %v", i, err)
		}
	}
}

// TestRoundTripGeneratedPrograms checks parse(format(p)) == format(p)
// on random programs (the printer/parser property at scale).
func TestRoundTripGeneratedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		p := lang.MustParse(Generate(rng))
		if err := lang.Check(p); err != nil {
			t.Fatal(err)
		}
		s1 := lang.Format(p)
		p2, err := lang.Parse(s1)
		if err != nil {
			t.Fatalf("program %d reparse: %v", i, err)
		}
		if err := lang.Check(p2); err != nil {
			t.Fatalf("program %d recheck: %v", i, err)
		}
		if s2 := lang.Format(p2); s1 != s2 {
			t.Fatalf("program %d round trip unstable", i)
		}
	}
}
