// Package randprog generates random well-formed mini-Java programs for
// stress-testing the substrate itself: every generated program must
// produce identical output on the bytecode interpreter and the bug-free
// JIT. It deliberately covers the darker corners the seed corpus avoids
// (exceptions crossing lock regions, reflection, boxing chains, shadowing,
// long arithmetic, early returns from loops).
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Generate returns the source of a random program. The same rng state
// always yields the same program.
func Generate(rng *rand.Rand) string {
	g := &gen{rng: rng}
	return g.program()
}

type gen struct {
	rng   *rand.Rand
	vars  []string // int locals in scope
	longs []string // long locals in scope
	depth int
	n     int
}

func (g *gen) fresh(prefix string) string {
	g.n++
	return fmt.Sprintf("%s%d", prefix, g.n)
}

func (g *gen) intVar() string {
	return g.vars[g.rng.Intn(len(g.vars))]
}

// expr emits an int expression of bounded depth. Division uses guarded
// denominators so programs fail only where the language says they may.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return g.intVar()
		case 1:
			return fmt.Sprintf("%d", g.rng.Intn(201)-100)
		case 2:
			return "this.f"
		default:
			return "T.sf"
		}
	}
	switch g.rng.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s / (1 + (%s & 7)))", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s %% (1 + (%s & 15)))", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("Integer.valueOf(%s).intValue()", g.expr(depth-1))
	case 3:
		return fmt.Sprintf("T.h2(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(-%s)", g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	default:
		ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>"}
		op := ops[g.rng.Intn(len(ops))]
		r := g.expr(depth - 1)
		if op == "<<" || op == ">>" {
			r = fmt.Sprintf("(%s & 7)", r)
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, r)
	}
}

func (g *gen) boolExpr(depth int) string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	cmp := fmt.Sprintf("(%s %s %s)", g.expr(depth), ops[g.rng.Intn(len(ops))], g.expr(depth))
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s && %s)", cmp, g.boolExprLeaf())
	case 1:
		return fmt.Sprintf("(%s || %s)", cmp, g.boolExprLeaf())
	case 2:
		return "(!" + cmp + ")"
	}
	return cmp
}

func (g *gen) boolExprLeaf() string {
	return fmt.Sprintf("(%s > %d)", g.intVar(), g.rng.Intn(50))
}

func (g *gen) stmt(b *strings.Builder, indent string) {
	if g.depth > 4 {
		fmt.Fprintf(b, "%s%s = %s;\n", indent, g.intVar(), g.expr(1))
		return
	}
	switch g.rng.Intn(14) {
	case 0:
		v := g.fresh("x")
		fmt.Fprintf(b, "%sint %s = %s;\n", indent, v, g.expr(2))
		g.vars = append(g.vars, v)
	case 1:
		fmt.Fprintf(b, "%s%s = %s;\n", indent, g.intVar(), g.expr(2))
	case 2:
		fmt.Fprintf(b, "%sthis.f = %s;\n", indent, g.expr(1))
	case 3:
		fmt.Fprintf(b, "%sT.sf = %s;\n", indent, g.expr(1))
	case 4: // if/else
		g.depth++
		fmt.Fprintf(b, "%sif (%s) {\n", indent, g.boolExpr(1))
		g.block(b, indent+"  ", 1+g.rng.Intn(2))
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(b, "%s} else {\n", indent)
			g.block(b, indent+"  ", 1)
		}
		fmt.Fprintf(b, "%s}\n", indent)
		g.depth--
	case 5: // counted loop
		g.depth++
		lv := g.fresh("k")
		fmt.Fprintf(b, "%sfor (int %s = 0; %s < %d; %s += %d) {\n",
			indent, lv, lv, 2+g.rng.Intn(18), lv, 1+g.rng.Intn(2))
		g.vars = append(g.vars, lv)
		g.block(b, indent+"  ", 1+g.rng.Intn(2))
		g.vars = g.vars[:len(g.vars)-1]
		fmt.Fprintf(b, "%s}\n", indent)
		g.depth--
	case 6: // while with decreasing guard
		g.depth++
		wv := g.fresh("w")
		fmt.Fprintf(b, "%sint %s = %d;\n", indent, wv, g.rng.Intn(12))
		fmt.Fprintf(b, "%swhile (%s > 0) {\n", indent, wv)
		fmt.Fprintf(b, "%s  %s = %s - 1;\n", indent, wv, wv)
		g.vars = append(g.vars, wv)
		g.block(b, indent+"  ", 1)
		fmt.Fprintf(b, "%s}\n", indent)
		g.depth--
	case 7: // synchronized region
		g.depth++
		mons := []string{"this", "t2", `"L"`}
		fmt.Fprintf(b, "%ssynchronized (%s) {\n", indent, mons[g.rng.Intn(len(mons))])
		g.block(b, indent+"  ", 1+g.rng.Intn(2))
		fmt.Fprintf(b, "%s}\n", indent)
		g.depth--
	case 8: // try/catch with a conditional throw
		g.depth++
		cv := g.fresh("e")
		fmt.Fprintf(b, "%stry {\n", indent)
		fmt.Fprintf(b, "%s  if (%s) {\n", indent, g.boolExpr(0))
		fmt.Fprintf(b, "%s    throw %s;\n", indent, g.expr(0))
		fmt.Fprintf(b, "%s  }\n", indent)
		g.block(b, indent+"  ", 1)
		fmt.Fprintf(b, "%s} catch (%s) {\n", indent, cv)
		fmt.Fprintf(b, "%s  %s = %s + 1;\n", indent, g.intVar(), cv)
		fmt.Fprintf(b, "%s}\n", indent)
		g.depth--
	case 9: // array traffic (masked indices)
		fmt.Fprintf(b, "%sarr[%s & 7] = %s;\n", indent, g.expr(0), g.expr(1))
		fmt.Fprintf(b, "%s%s = arr[%s & 7];\n", indent, g.intVar(), g.expr(0))
	case 10: // boxing round trips
		v := g.fresh("bx")
		fmt.Fprintf(b, "%sInteger %s = Integer.valueOf(%s);\n", indent, v, g.expr(1))
		fmt.Fprintf(b, "%s%s = %s.intValue() ^ %s;\n", indent, g.intVar(), v, g.intVar())
	case 11: // reflection
		fmt.Fprintf(b, "%s%s = reflect_invoke(\"T\", \"h1\", null, %s);\n", indent, g.intVar(), g.expr(0))
	case 12: // long arithmetic
		v := g.fresh("l")
		fmt.Fprintf(b, "%slong %s = %s;\n", indent, v, g.expr(1))
		fmt.Fprintf(b, "%s%s = %s * 2654435761L + %s;\n", indent, v, v, g.intVar())
		g.longs = append(g.longs, v)
	default: // accumulate into the checksum
		fmt.Fprintf(b, "%sacc = acc ^ %s;\n", indent, g.expr(2))
	}
}

// block emits n statements in a nested lexical scope: declarations made
// inside must not leak into the generator's view of the outer scope.
func (g *gen) block(b *strings.Builder, indent string, n int) {
	savedVars := len(g.vars)
	savedLongs := len(g.longs)
	for i := 0; i < n; i++ {
		g.stmt(b, indent)
	}
	g.vars = g.vars[:savedVars]
	g.longs = g.longs[:savedLongs]
}

func (g *gen) program() string {
	g.vars = []string{"i", "acc"}
	g.longs = nil
	g.n = 0
	g.depth = 0

	var body strings.Builder
	g.block(&body, "    ", 4+g.rng.Intn(5))

	var b strings.Builder
	b.WriteString("class T {\n")
	b.WriteString("  int f;\n")
	b.WriteString("  static int sf;\n")
	b.WriteString("  static void main() {\n")
	b.WriteString("    T t = new T();\n")
	fmt.Fprintf(&b, "    t.f = %d;\n", g.rng.Intn(40)+1)
	b.WriteString("    long total = 0;\n")
	fmt.Fprintf(&b, "    for (int i = 0; i < %d; i += 1) {\n", 600+g.rng.Intn(3)*300)
	b.WriteString("      try {\n")
	b.WriteString("        total = total + t.work(i);\n")
	b.WriteString("      } catch (me) {\n")
	b.WriteString("        total = total - me;\n")
	b.WriteString("      }\n")
	b.WriteString("    }\n")
	b.WriteString("    print(total);\n")
	b.WriteString("    print(t.f);\n")
	b.WriteString("    print(T.sf);\n")
	b.WriteString("  }\n")
	b.WriteString("  int work(int i) {\n")
	b.WriteString("    int acc = i;\n")
	b.WriteString("    T t2 = new T();\n")
	b.WriteString("    int[] arr = new int[8];\n")
	b.WriteString(body.String())
	b.WriteString("    return acc;\n")
	b.WriteString("  }\n")
	b.WriteString("  static int h1(int x) { return x * 3 - 1; }\n")
	b.WriteString("  static int h2(int x, int y) { return x + y * 2; }\n")
	b.WriteString("}\n")
	return b.String()
}
