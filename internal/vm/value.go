// Package vm implements the simulated JVM's runtime: tagged values, a
// garbage-collected heap, monitors, the bytecode interpreter tier, method
// profiling, and the tier-up machinery that hands hot methods to a
// pluggable JIT compiler.
package vm

import (
	"fmt"
)

// Kind tags a runtime value.
type Kind uint8

// Value kinds.
const (
	KInvalid Kind = iota
	KInt          // 32-bit Java int semantics, stored sign-extended
	KLong
	KBool
	KStr
	KNull
	KObj
	KBox // java.lang.Integer
	KArr // int[]
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KLong:
		return "long"
	case KBool:
		return "boolean"
	case KStr:
		return "String"
	case KNull:
		return "null"
	case KObj:
		return "object"
	case KBox:
		return "Integer"
	case KArr:
		return "int[]"
	}
	return "invalid"
}

// Value is a runtime value. Exactly one of the payload fields is
// meaningful, selected by Kind.
type Value struct {
	Kind Kind
	I    int64
	S    string
	Obj  *Object
	Arr  *Array
}

// Constructors.
func IntVal(v int64) Value  { return Value{Kind: KInt, I: int64(int32(v))} }
func LongVal(v int64) Value { return Value{Kind: KLong, I: v} }
func BoolVal(b bool) Value {
	if b {
		return Value{Kind: KBool, I: 1}
	}
	return Value{Kind: KBool, I: 0}
}
func StrVal(s string) Value  { return Value{Kind: KStr, S: s} }
func NullVal() Value         { return Value{Kind: KNull} }
func ObjVal(o *Object) Value { return Value{Kind: KObj, Obj: o} }
func BoxVal(o *Object) Value { return Value{Kind: KBox, Obj: o} }
func ArrVal(a *Array) Value  { return Value{Kind: KArr, Arr: a} }

// Bool reports the truth of a KBool value.
func (v Value) Bool() bool { return v.I != 0 }

// IsRef reports whether v is a reference (possibly null).
func (v Value) IsRef() bool {
	switch v.Kind {
	case KObj, KBox, KArr, KStr, KNull:
		return true
	}
	return false
}

// String renders the value the way the program output channel does.
func (v Value) String() string {
	switch v.Kind {
	case KInt, KLong:
		return fmt.Sprintf("%d", v.I)
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KStr:
		return v.S
	case KNull:
		return "null"
	case KObj:
		return v.Obj.Class + "@obj"
	case KBox:
		if v.Obj == nil {
			return "null"
		}
		return fmt.Sprintf("%d", v.Obj.BoxVal)
	case KArr:
		return fmt.Sprintf("int[%d]", len(v.Arr.Elems))
	}
	return "<invalid>"
}

// SameRef reports whether two reference values denote the same heap cell
// (Java ==). Strings compare by identity of interned instance, which our
// runtime guarantees per distinct literal text.
func SameRef(a, b Value) bool {
	if a.Kind == KNull || b.Kind == KNull {
		return a.Kind == b.Kind
	}
	switch {
	case a.Kind == KArr && b.Kind == KArr:
		return a.Arr == b.Arr
	case (a.Kind == KObj || a.Kind == KBox) && (b.Kind == KObj || b.Kind == KBox):
		return a.Obj == b.Obj
	case a.Kind == KStr && b.Kind == KStr:
		return a.S == b.S
	}
	return false
}

// Arith applies Java arithmetic to two numeric values: if either operand
// is long the result is long; otherwise the result wraps to 32 bits.
// Division and remainder by zero return an ArithmeticException.
func Arith(op func(a, b int64) int64, a, b Value) Value {
	r := op(a.I, b.I)
	if a.Kind == KLong || b.Kind == KLong {
		return LongVal(r)
	}
	return IntVal(r)
}
