package vm

import "repro/internal/bytecode"

// Tier identifies a compilation tier.
type Tier int

// Tiers.
const (
	TierInterpreter Tier = iota
	TierC1
	TierC2
)

func (t Tier) String() string {
	switch t {
	case TierC1:
		return "C1"
	case TierC2:
		return "C2"
	}
	return "interpreter"
}

// CompiledMethod is executable code produced by a JIT tier.
type CompiledMethod interface {
	// Invoke runs the compiled code. args holds the receiver (for
	// instance methods) followed by the declared parameters. The
	// result is the return value (ignored for void methods).
	Invoke(args []Value) (Value, error)
}

// Compiler is the JIT interface the machine tiers up through. A nil
// Compiler leaves the machine in pure-interpreter mode.
type Compiler interface {
	// Compile translates fn at the given tier. env provides runtime
	// services (allocation, statics, calls, monitors, output, fuel).
	// A returned *Crash error models a compiler crash.
	Compile(fn *bytecode.Function, tier Tier, env Env) (CompiledMethod, error)
}

// Env is the runtime-service interface the machine exposes to compiled
// code and to the JIT compiler.
type Env interface {
	// Allocation.
	NewObject(class string) Value
	NewBox(v int64) Value
	NewArray(n int64) Value

	// Statics.
	GetStatic(class, field string) Value
	SetStatic(class, field string, v Value)

	// Interned string monitors (string literals lock a shared object).
	StringMonitor(s string) *Object

	// Calls dispatch through the tiering machinery, so a compiled
	// caller can reach an interpreted callee and vice versa. recv is
	// ignored for static targets.
	Call(ref bytecode.MethodRef, recv Value, args []Value) (Value, error)

	// Monitors. Enter/Exit return ErrIllegalMonitor on imbalance.
	// Compiled code is responsible for balancing its own regions
	// (seeded bugs deliberately break this; the machine observes the
	// leak).
	MonitorEnter(v Value) error
	MonitorExit(v Value) error

	// Output channel (the differential-testing oracle input).
	Print(v Value)

	// Step consumes fuel; it returns ErrTimeout when the budget is gone.
	Step() error

	// InvalidateCode discards the compiled form of a method (deopt),
	// returning it to the interpreter until it re-tiers.
	InvalidateCode(fnKey string)

	// DeoptCount reports how many times a method has been invalidated,
	// letting recompilations drop the failing speculation.
	DeoptCount(fnKey string) int

	// Image exposes the loaded program, letting the compiler resolve
	// callees for inlining.
	Image() *bytecode.Image
}
