package vm

// Object is a heap-allocated class instance. BoxVal holds the wrapped
// int when the object is a java.lang.Integer box.
type Object struct {
	Class  string
	Fields map[string]Value
	Mon    Monitor
	BoxVal int64
	marked bool
}

// Array is a heap-allocated int array.
type Array struct {
	Elems  []int64
	Mon    Monitor
	marked bool
}

// Monitor models a (single-threaded) Java monitor: a re-entrant lock
// with an entry depth. An exit on a monitor with zero depth is an
// IllegalMonitorStateException; the fuzzer's oracles watch for leaked
// (still-held) monitors after program exit, the symptom of the inlining
// interaction bug in the paper's Listing 1.
type Monitor struct {
	Depth int
}

// Heap owns all allocations and runs a mark-sweep collector. The GC is a
// genuine substrate component: it traces roots the machine provides, and
// its activity feeds the coverage model's GC component.
type Heap struct {
	objects []*Object
	arrays  []*Array

	AllocCount int   // total allocations
	Units      int64 // cumulative allocation units: objects + boxes + array elements
	GCEvery    int   // allocations between collections (0 = never)
	GCCycles   int // collections performed
	Freed      int // cells reclaimed across all cycles
	sinceGC    int
	onGC       func(live, freed int)
}

// NewHeap returns a heap collecting every gcEvery allocations.
func NewHeap(gcEvery int) *Heap {
	return &Heap{GCEvery: gcEvery}
}

// SetGCHook installs a callback invoked after each collection.
func (h *Heap) SetGCHook(fn func(live, freed int)) { h.onGC = fn }

// NewObject allocates an instance of class with zeroed fields.
func (h *Heap) NewObject(class string, refFields map[string]bool) *Object {
	o := &Object{Class: class, Fields: map[string]Value{}}
	for name, isRef := range refFields {
		if isRef {
			o.Fields[name] = NullVal()
		} else {
			o.Fields[name] = IntVal(0)
		}
	}
	h.objects = append(h.objects, o)
	h.bump(1)
	return o
}

// NewBox allocates an Integer box.
func (h *Heap) NewBox(v int64) *Object {
	o := &Object{Class: "Integer", BoxVal: int64(int32(v))}
	h.objects = append(h.objects, o)
	h.bump(1)
	return o
}

// NewArray allocates an int array of length n.
func (h *Heap) NewArray(n int64) *Array {
	if n < 0 {
		n = 0
	}
	a := &Array{Elems: make([]int64, n)}
	h.arrays = append(h.arrays, a)
	h.bump(1 + n)
	return a
}

func (h *Heap) bump(units int64) {
	h.AllocCount++
	h.Units += units
	h.sinceGC++
}

// Live returns the number of live heap cells (post any pending GC this is
// exact; between GCs it includes garbage).
func (h *Heap) Live() int { return len(h.objects) + len(h.arrays) }

// NeedsGC reports whether the allocation budget since the last collection
// is exhausted.
func (h *Heap) NeedsGC() bool { return h.GCEvery > 0 && h.sinceGC >= h.GCEvery }

// Collect runs a mark-sweep cycle from the given roots.
func (h *Heap) Collect(roots []Value) (live, freed int) {
	h.sinceGC = 0
	h.GCCycles++
	for _, r := range roots {
		markValue(r)
	}
	var objs []*Object
	for _, o := range h.objects {
		if o.marked {
			o.marked = false
			objs = append(objs, o)
		} else {
			freed++
		}
	}
	h.objects = objs
	var arrs []*Array
	for _, a := range h.arrays {
		if a.marked {
			a.marked = false
			arrs = append(arrs, a)
		} else {
			freed++
		}
	}
	h.arrays = arrs
	h.Freed += freed
	live = h.Live()
	if h.onGC != nil {
		h.onGC(live, freed)
	}
	return live, freed
}

func markValue(v Value) {
	switch v.Kind {
	case KObj, KBox:
		markObject(v.Obj)
	case KArr:
		if v.Arr != nil {
			v.Arr.marked = true
		}
	}
}

func markObject(o *Object) {
	if o == nil || o.marked {
		return
	}
	o.marked = true
	for _, f := range o.Fields {
		markValue(f)
	}
}
