package vm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/lang"
)

// run compiles and interprets src (no JIT) and returns the result.
func run(t *testing.T, src string) *Result {
	t.Helper()
	return runCfg(t, src, Config{})
}

func runCfg(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatalf("Check: %v", err)
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := bytecode.Verify(img); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return NewMachine(img, cfg).Run()
}

func wantOutput(t *testing.T, res *Result, want ...string) {
	t.Helper()
	if res.Crash != nil {
		t.Fatalf("unexpected crash: %v", res.Crash)
	}
	if res.Exception != nil {
		t.Fatalf("unexpected exception: %v", res.Exception)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, res.Output[i], want[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `class T { static void main() {
		print(2 + 3 * 4);
		print(10 / 3);
		print(10 % 3);
		print(7 - 10);
		print(6 & 3);
		print(6 | 3);
		print(6 ^ 3);
		print(1 << 5);
		print(-32 >> 2);
		print(~5);
		print(-(4));
	} }`)
	wantOutput(t, res, "14", "3", "1", "-3", "2", "7", "5", "32", "-8", "-6", "-4")
}

func TestInt32Wrap(t *testing.T) {
	res := run(t, `class T { static void main() {
		int big = 2147483647;
		print(big + 1);
		long lbig = 2147483647L;
		print(lbig + 1);
	} }`)
	wantOutput(t, res, "-2147483648", "2147483648")
}

func TestControlFlow(t *testing.T) {
	res := run(t, `class T { static void main() {
		int s = 0;
		for (int i = 0; i < 10; i += 1) { s = s + i; }
		print(s);
		int n = 3;
		while (n > 0) { n = n - 1; }
		print(n);
		if (s == 45) { print(1); } else { print(2); }
		boolean b = s == 45 || 1 / 0 == 0;
		print(b ? 100 : 200);
	} }`)
	wantOutput(t, res, "45", "0", "1", "100")
}

func TestShortCircuitAvoidsSideEffect(t *testing.T) {
	res := run(t, `class T {
		static int calls;
		static void main() {
			boolean a = false && T.bump();
			boolean b = true || T.bump();
			print(T.calls);
			print(a ? 1 : 0);
			print(b ? 1 : 0);
		}
		static boolean bump() { T.calls = T.calls + 1; return true; }
	}`)
	wantOutput(t, res, "0", "0", "1")
}

func TestObjectsAndFields(t *testing.T) {
	res := run(t, `class T {
		int f;
		static int sf;
		static void main() {
			T a = new T();
			T b = new T();
			a.f = 5;
			b.f = 7;
			T.sf = a.f + b.f;
			print(T.sf);
			print(a == a ? 1 : 0);
			print(a == b ? 1 : 0);
		}
	}`)
	wantOutput(t, res, "12", "1", "0")
}

func TestArrays(t *testing.T) {
	res := run(t, `class T { static void main() {
		int[] a = new int[5];
		for (int i = 0; i < 5; i += 1) { a[i] = i * i; }
		int s = 0;
		for (int i = 0; i < 5; i += 1) { s = s + a[i]; }
		print(s);
	} }`)
	wantOutput(t, res, "30")
}

func TestBoxing(t *testing.T) {
	res := run(t, `class T { static void main() {
		Integer bx = Integer.valueOf(41);
		print(bx.intValue() + 1);
	} }`)
	wantOutput(t, res, "42")
}

func TestCallsAndRecursion(t *testing.T) {
	res := run(t, `class T {
		static void main() { print(T.fib(10)); }
		static int fib(int n) {
			int r = n < 2 ? n : T.fib(n - 1) + T.fib(n - 2);
			return r;
		}
	}`)
	wantOutput(t, res, "55")
}

func TestInstanceDispatch(t *testing.T) {
	res := run(t, `class T {
		int f;
		static void main() {
			T t = new T();
			t.f = 10;
			print(t.addF(5));
		}
		int addF(int x) { return x + this.f; }
	}`)
	wantOutput(t, res, "15")
}

func TestReflection(t *testing.T) {
	res := run(t, `class T {
		int f;
		static void main() {
			T t = new T();
			t.f = 9;
			print(reflect_invoke("T", "twice", t, 4));
			print(reflect_get("T", "f", t));
		}
		int twice(int x) { return x * 2; }
	}`)
	wantOutput(t, res, "8", "9")
}

func TestExceptions(t *testing.T) {
	res := run(t, `class T { static void main() {
		try { throw 7; } catch (e) { print(e); }
		try { print(1 / 0); } catch (e) { print(e); }
		int[] a = new int[2];
		try { a[5] = 1; } catch (e) { print(e); }
		T t = new T();
		t = T.nullT();
		try { print(t.f()); } catch (e) { print(e); }
	}
	int f() { return 1; }
	static T nullT() { T x = new T(); return x; }
	}`)
	// nullT returns a real object, so the last call succeeds.
	wantOutput(t, res, "7", "-3", "-2", "1")
}

func TestUncaughtException(t *testing.T) {
	res := run(t, `class T { static void main() { throw 13; } }`)
	if res.Exception == nil || res.Exception.Code != 13 {
		t.Fatalf("Exception = %v, want code 13", res.Exception)
	}
	if !strings.Contains(res.OutputString(), "<uncaught 13>") {
		t.Errorf("OutputString = %q", res.OutputString())
	}
}

func TestExceptionUnwindsCalls(t *testing.T) {
	res := run(t, `class T {
		static void main() {
			try { T.deep(3); } catch (e) { print(e); }
		}
		static void deep(int n) {
			if (n == 0) { throw 99; }
			T.deep(n - 1);
		}
	}`)
	wantOutput(t, res, "99")
}

func TestSynchronizedBlocksAndUnwinding(t *testing.T) {
	res := run(t, `class T {
		static void main() {
			T t = new T();
			synchronized (t) {
				synchronized (t) {
					print(1);
				}
			}
			try {
				synchronized (t) { throw 3; }
			} catch (e) { print(e); }
			print(2);
		}
	}`)
	wantOutput(t, res, "1", "3", "2")
	if res.MonitorLeaks != 0 {
		t.Errorf("MonitorLeaks = %d, want 0", res.MonitorLeaks)
	}
}

func TestSynchronizedMethodReleasesOnThrow(t *testing.T) {
	res := run(t, `class T {
		static void main() {
			T t = new T();
			try { t.boom(); } catch (e) { print(e); }
		}
		synchronized void boom() { throw 11; }
	}`)
	wantOutput(t, res, "11")
	if res.MonitorLeaks != 0 {
		t.Errorf("MonitorLeaks = %d, want 0", res.MonitorLeaks)
	}
}

func TestStringMonitorInterning(t *testing.T) {
	res := run(t, `class T { static void main() {
		synchronized ("lock") { synchronized ("lock") { print(1); } }
	} }`)
	wantOutput(t, res, "1")
	if res.MonitorLeaks != 0 {
		t.Errorf("MonitorLeaks = %d", res.MonitorLeaks)
	}
}

func TestTimeout(t *testing.T) {
	res := runCfg(t, `class T { static void main() {
		int x = 0;
		while (x < 2) { x = x * 1; }
		print(x);
	} }`, Config{MaxSteps: 10_000})
	if !res.TimedOut {
		t.Fatalf("want timeout, got %+v", res)
	}
}

func TestGCCollectsGarbage(t *testing.T) {
	res := runCfg(t, `class T {
		int f;
		static void main() {
			int s = 0;
			for (int i = 0; i < 10000; i += 1) {
				T t = new T();
				t.f = i;
				s = s + t.f;
			}
			print(s);
		}
	}`, Config{GCEvery: 512})
	wantOutput(t, res, "49995000")
	if res.GCCycles == 0 {
		t.Error("GC never ran")
	}
	if res.AllocCount < 10000 {
		t.Errorf("AllocCount = %d, want >= 10000", res.AllocCount)
	}
}

func TestProfileCountsHotness(t *testing.T) {
	p, err := lang.Parse(`class T {
		static void main() {
			int s = 0;
			for (int i = 0; i < 1000; i += 1) { s = s + T.inc(i); }
			print(s);
		}
		static int inc(int x) { return x + 1; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img, Config{})
	res := m.Run()
	if res.Crash != nil || res.Exception != nil {
		t.Fatalf("bad result: %+v", res)
	}
	prof := m.Profile("T.inc")
	if prof.Invocations != 1000 {
		t.Errorf("T.inc invocations = %d, want 1000", prof.Invocations)
	}
	mainProf := m.Profile("T.main")
	if mainProf.Backedges < 900 {
		t.Errorf("T.main backedges = %d, want ~1000", mainProf.Backedges)
	}
	if prof.Hotness() < 1000 {
		t.Errorf("Hotness = %d", prof.Hotness())
	}
}

func TestDeterministicOutput(t *testing.T) {
	src := `class T { static void main() {
		int s = 0;
		for (int i = 0; i < 500; i += 1) { s = s ^ i * 31; }
		print(s);
	} }`
	a := run(t, src).OutputString()
	b := run(t, src).OutputString()
	if a != b {
		t.Errorf("non-deterministic: %q vs %q", a, b)
	}
}

func TestValueHelpers(t *testing.T) {
	if IntVal(1<<40).I != 0 {
		// int32 truncation of 2^40 is 0
		t.Errorf("IntVal should truncate to 32 bits, got %d", IntVal(1<<40).I)
	}
	if LongVal(1<<40).I != 1<<40 {
		t.Error("LongVal should not truncate")
	}
	if !BoolVal(true).Bool() || BoolVal(false).Bool() {
		t.Error("BoolVal broken")
	}
	if NullVal().String() != "null" {
		t.Error("null renders wrong")
	}
	o := &Object{Class: "T"}
	if !SameRef(ObjVal(o), ObjVal(o)) {
		t.Error("SameRef should match identical objects")
	}
	if SameRef(ObjVal(o), NullVal()) {
		t.Error("SameRef object vs null")
	}
	if !SameRef(NullVal(), NullVal()) {
		t.Error("null == null")
	}
}

func TestHeapMarkSweep(t *testing.T) {
	h := NewHeap(0)
	a := h.NewObject("T", map[string]bool{"x": true})
	b := h.NewObject("T", nil)
	a.Fields["x"] = ObjVal(b)
	c := h.NewObject("T", nil) // garbage
	_ = c
	arr := h.NewArray(3)
	live, freed := h.Collect([]Value{ObjVal(a), ArrVal(arr)})
	if freed != 1 {
		t.Errorf("freed = %d, want 1", freed)
	}
	if live != 3 {
		t.Errorf("live = %d, want 3", live)
	}
}

// fakeJIT counts compile requests and returns a bailout so execution
// stays interpreted (tier-policy tests need no real compiler).
type fakeJIT struct{ compiled []string }

func (f *fakeJIT) Compile(fn *bytecode.Function, tier Tier, env Env) (CompiledMethod, error) {
	f.compiled = append(f.compiled, fn.Key()+"@"+tier.String())
	return nil, errBailout
}

var errBailout = fmt.Errorf("bailout")

func TestCompileEagerPolicy(t *testing.T) {
	p, _ := lang.Parse(`class T {
		static void main() { print(T.one()); }
		static int one() { return 1; }
	}`)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	img, _ := bytecode.Compile(p)
	jit := &fakeJIT{}
	res := NewMachine(img, Config{JIT: jit, CompileEager: true}).Run()
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	// -Xcomp tiers through C1 on the first invocation of every method.
	want := map[string]bool{"T.main@C1": true, "T.one@C1": true}
	for _, k := range jit.compiled {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Errorf("missing compiles: %v (got %v)", want, jit.compiled)
	}
}

func TestCompileEagerTiersToC2(t *testing.T) {
	p, _ := lang.Parse(`class T {
		static void main() { print(T.one() + T.one()); }
		static int one() { return 1; }
	}`)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	img, _ := bytecode.Compile(p)
	jit := &fakeJIT{}
	res := NewMachine(img, Config{JIT: jit, CompileEager: true}).Run()
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	// T.one is invoked twice: C1 on the first call, C2 on the second.
	want := []string{"T.one@C1", "T.one@C2"}
	got := map[string]bool{}
	for _, k := range jit.compiled {
		got[k] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing %s (got %v)", w, jit.compiled)
		}
	}
}

func TestCompileOnlyPolicy(t *testing.T) {
	p, _ := lang.Parse(`class T {
		static void main() { print(T.one() + T.two()); }
		static int one() { return 1; }
		static int two() { return 2; }
	}`)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	img, _ := bytecode.Compile(p)
	jit := &fakeJIT{}
	res := NewMachine(img, Config{JIT: jit, CompileEager: true, CompileOnly: "T.two"}).Run()
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	if len(jit.compiled) != 1 || jit.compiled[0] != "T.two@C1" {
		t.Errorf("compileonly violated: %v", jit.compiled)
	}
}

func TestTieredThresholdPolicy(t *testing.T) {
	p, _ := lang.Parse(`class T {
		static void main() {
			long s = 0;
			for (int i = 0; i < 400; i += 1) { s = s + T.inc(i); }
			print(s);
		}
		static int inc(int x) { return x + 1; }
	}`)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	img, _ := bytecode.Compile(p)
	jit := &fakeJIT{}
	res := NewMachine(img, Config{JIT: jit, C1Threshold: 50, C2Threshold: 100000}).Run()
	if res.Crash != nil {
		t.Fatal(res.Crash)
	}
	// inc crosses C1 at 50 invocations; a bailout records the attempt
	// once (the machine does not retry every call).
	c1 := 0
	for _, k := range jit.compiled {
		if k == "T.inc@C1" {
			c1++
		}
	}
	if c1 != 1 {
		t.Errorf("T.inc C1 compile attempts = %d, want 1 (got %v)", c1, jit.compiled)
	}
}
