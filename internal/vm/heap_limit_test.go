package vm

import (
	"strings"
	"testing"
)

// allocStorm burns few interpreter steps per iteration but 1001 heap
// units, so the allocation budget fires long before step fuel would.
const allocStorm = `class T { static void main() {
	long s = 0;
	for (int i = 0; i < 1000; i += 1) {
		int[] a = new int[1000];
		s = s + a[0];
	}
	print(s);
} }`

func TestHeapExhaustion(t *testing.T) {
	res := runCfg(t, allocStorm, Config{MaxHeapUnits: 50_000})
	if !res.HeapExhausted {
		t.Fatalf("HeapExhausted = false; steps=%d allocs=%d", res.Steps, res.AllocCount)
	}
	if res.TimedOut || res.Crash != nil {
		t.Errorf("misclassified: %+v", res)
	}
	if !strings.Contains(res.OutputString(), "<heap-exhausted>") {
		t.Errorf("OutputString = %q, want <heap-exhausted> marker", res.OutputString())
	}
}

func TestHeapDefaultCapUnchangedBehavior(t *testing.T) {
	// ~1M units is far under the 64M default: the same program must run
	// to completion untouched by the cap.
	res := run(t, allocStorm)
	if res.HeapExhausted {
		t.Fatal("default heap cap fired on a modest workload")
	}
	wantOutput(t, res, "0")
}

func TestHeapCapDisabled(t *testing.T) {
	res := runCfg(t, allocStorm, Config{MaxHeapUnits: -1})
	if res.HeapExhausted {
		t.Fatal("negative MaxHeapUnits must disable the cap")
	}
	wantOutput(t, res, "0")
}

func TestHeapUnitsAccounting(t *testing.T) {
	res := run(t, `class T { static void main() {
		T o = new T();
		int[] a = new int[10];
		print(a[3]);
		print(o.v);
	}
	int v;
	}`)
	wantOutput(t, res, "0", "0")
	// One object (1 unit) + one 10-element array (11 units); boxing or
	// string monitors would only add, so assert a lower bound.
	if res.AllocCount < 2 {
		t.Errorf("AllocCount = %d, want >= 2", res.AllocCount)
	}
}
