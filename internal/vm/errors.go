package vm

import (
	"errors"
	"fmt"
)

// Thrown is a mini-Java exception in flight, carrying its int code.
// Negative codes are runtime-generated (see bytecode.Exc*).
type Thrown struct {
	Code int64
}

func (t *Thrown) Error() string { return fmt.Sprintf("exception %d", t.Code) }

// Crash models a JVM-level failure (SIGSEGV, assertion failure in a
// debug build, ...). It is raised by seeded compiler defects and aborts
// the whole execution; the machine turns it into an hs_err-style report.
type Crash struct {
	BugID     string
	Component string
	Message   string
	FnKey     string // method being compiled or executed
}

func (c *Crash) Error() string {
	return fmt.Sprintf("JVM crash in %s (%s): %s [%s]", c.Component, c.BugID, c.Message, c.FnKey)
}

// HsErrReport renders the crash like HotSpot's hs_err_pid log header.
func (c *Crash) HsErrReport(vmName string) string {
	return fmt.Sprintf(`#
# A fatal error has been detected by the Java Runtime Environment:
#
#  Internal Error (%s), bug=%s
#  Problematic frame: %s
#  %s
#
# VM: %s (simulated, debug build)
#`, c.Component, c.BugID, c.FnKey, c.Message, vmName)
}

// ErrTimeout reports that the step budget was exhausted. Mutants with
// pathological loop growth hit this; the fuzzer treats it as a skip, not
// a bug.
var ErrTimeout = errors.New("vm: execution step budget exhausted")

// ErrHeapExhausted reports that the heap-allocation budget was
// exhausted (the OutOfMemoryError analogue). Like ErrTimeout it is a
// fuel model — cumulative allocation units, not live bytes — so
// fuel-proof allocation storms (tight loops allocating huge arrays,
// which burn few interpreter steps per cell) still terminate. The
// fuzzer treats it as a dead-end mutant; the campaign harness
// classifies the triggering mutant as a heap-exhausted fault.
var ErrHeapExhausted = errors.New("vm: heap allocation budget exhausted")

// ErrIllegalMonitor reports an unbalanced monitor exit, which a correct
// program cannot produce; it indicates a compiler defect.
var ErrIllegalMonitor = errors.New("vm: IllegalMonitorStateException")
