package vm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bytecode"
)

// Config tunes a Machine. Zero values select the defaults noted below.
type Config struct {
	C1Threshold int // invocations before C1 compilation (default 50)
	C2Threshold int // invocations before C2 compilation (default 500)
	// CompileEager mirrors -Xcomp: every method compiles at C2 on its
	// first invocation (the paper's forced-compilation setting; our
	// interpreter has no on-stack replacement, so hot entry-point loops
	// would otherwise never reach the JIT).
	CompileEager bool
	// CompileOnly mirrors -XX:CompileCommand=compileonly,C::m — when
	// non-empty, only the method with this key ("Class.method") is JIT
	// compiled; everything else stays interpreted.
	CompileOnly string
	MaxSteps    int64 // fuel budget (default 30,000,000)
	// MaxHeapUnits caps cumulative allocation units (objects + boxes +
	// array elements), the OutOfMemoryError analogue to the MaxSteps
	// fuel model. Default 64,000,000 — high enough that no well-formed
	// workload hits it; negative disables the cap.
	MaxHeapUnits int64
	GCEvery      int // allocations between GC cycles (default 4096)

	// JIT is the pluggable compiler; nil leaves the machine in pure
	// interpreter mode (the reference semantics).
	JIT Compiler

	// OnCompile, if set, observes each successful tier-up.
	OnCompile func(fn *bytecode.Function, tier Tier)
	// OnGC, if set, observes each collection cycle.
	OnGC func(live, freed int)

	// Trace, if set, receives named runtime events (the coverage
	// instrumentation channel; region names per coverage.Catalog).
	Trace func(event string)
}

func (c Config) withDefaults() Config {
	if c.C1Threshold == 0 {
		c.C1Threshold = 50
	}
	if c.C2Threshold == 0 {
		c.C2Threshold = 500
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 30_000_000
	}
	if c.MaxHeapUnits == 0 {
		c.MaxHeapUnits = 64_000_000
	}
	if c.GCEvery == 0 {
		c.GCEvery = 4096
	}
	return c
}

// MethodProfile accumulates the interpreter's hotness counters for one
// method, the signal the tier-up policy reads.
type MethodProfile struct {
	Invocations int
	Backedges   int64
	Deopts      int
}

// Hotness folds loop activity into the invocation count the way tiered
// compilation policies weight on-stack loops.
func (p *MethodProfile) Hotness() int {
	return p.Invocations + int(p.Backedges/8)
}

// Result is the outcome of one program execution.
type Result struct {
	Output        []string
	Exception     *Thrown // uncaught exception, if any
	Crash         *Crash  // JVM-level crash, if any
	TimedOut      bool
	HeapExhausted bool // heap-allocation budget blown (OutOfMemoryError analogue)

	MonitorLeaks int // monitors still held at exit (compiler defect symptom)
	Steps        int64
	GCCycles     int
	AllocCount   int
	Tiers        map[string]Tier // final tier per method key
	Deopts       int             // total code invalidations
}

// Crashed reports whether the run ended in a JVM crash.
func (r *Result) Crashed() bool { return r.Crash != nil }

// OutputString joins the output channel into one comparable string,
// including the termination status, so differential testing sees
// exceptions and leaks too.
func (r *Result) OutputString() string {
	s := ""
	for _, line := range r.Output {
		s += line + "\n"
	}
	switch {
	case r.Crash != nil:
		s += fmt.Sprintf("<crash %s>", r.Crash.BugID)
	case r.Exception != nil:
		s += fmt.Sprintf("<uncaught %d>", r.Exception.Code)
	case r.TimedOut:
		s += "<timeout>"
	case r.HeapExhausted:
		s += "<heap-exhausted>"
	}
	if r.MonitorLeaks > 0 {
		s += fmt.Sprintf("<monitor-leak %d>", r.MonitorLeaks)
	}
	return s
}

// Machine executes one program image. A Machine is single-use: create,
// Run once, inspect the Result.
type Machine struct {
	img  *bytecode.Image
	cfg  Config
	Heap *Heap

	statics   map[string]Value
	strMons   map[string]*Object
	classMons map[string]*Object

	output []string
	steps  int64

	profiles map[string]*MethodProfile
	compiled map[string]CompiledMethod
	tiers    map[string]Tier
	deopts   map[string]int

	heldMonitors int
	frames       []*frame

	argBufs  [][]Value // LIFO freelist of call-argument buffers
	rootsBuf []Value   // reused GC root scratch
}

type frame struct {
	fn     *bytecode.Function
	locals []Value
	stack  []Value
	mons   []monEntry
}

// framePool recycles interpreter frames across calls (and across
// machines — campaign workers each run millions of calls, and a frame
// plus its locals slice used to be two heap allocations per call).
// Frames are strictly LIFO per machine, so a frame returned in
// interpret's epilogue is never referenced again: m.frames has already
// popped it and GC root scans only walk live frames.
var framePool = sync.Pool{New: func() any { return &frame{} }}

// newFrame returns a cleared frame with locals sized for fn. Reused
// locals are zeroed up to NLocals (the old make([]Value, n) semantics);
// the stack and monitor slices keep their capacity, length zero.
func newFrame(fn *bytecode.Function) *frame {
	f := framePool.Get().(*frame)
	f.fn = fn
	if cap(f.locals) < fn.NLocals {
		f.locals = make([]Value, fn.NLocals)
	} else {
		f.locals = f.locals[:fn.NLocals]
		clear(f.locals)
	}
	f.stack = f.stack[:0]
	f.mons = f.mons[:0]
	return f
}

// freeFrame returns a frame to the pool. Slices are kept for capacity
// reuse but their contents cleared so the pool does not pin dead heap
// objects between runs.
func freeFrame(f *frame) {
	f.fn = nil
	clear(f.locals)
	clear(f.stack[:cap(f.stack)])
	f.mons = f.mons[:0]
	framePool.Put(f)
}

// getArgs pops a call-argument buffer of length n from the machine's
// freelist (calls nest LIFO, so buffers released in call order are
// immediately reusable by the next sibling call).
func (m *Machine) getArgs(n int) []Value {
	if k := len(m.argBufs); k > 0 {
		buf := m.argBufs[k-1]
		m.argBufs = m.argBufs[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
		// Undersized: drop it so the freelist converges on the widest
		// call signatures instead of wedging behind a narrow buffer.
	}
	return make([]Value, n)
}

// putArgs returns a buffer once the call has copied the values out
// (interpreted frames copy into locals, compiled code into its scope
// stack — neither retains the slice).
func (m *Machine) putArgs(buf []Value) {
	clear(buf[:cap(buf)])
	m.argBufs = append(m.argBufs, buf)
}

type monEntry struct {
	mon *Monitor
	v   Value
}

// NewMachine builds a machine for the image.
func NewMachine(img *bytecode.Image, cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		img:       img,
		cfg:       cfg,
		Heap:      NewHeap(cfg.GCEvery),
		statics:   map[string]Value{},
		strMons:   map[string]*Object{},
		classMons: map[string]*Object{},
		profiles:  map[string]*MethodProfile{},
		compiled:  map[string]CompiledMethod{},
		tiers:     map[string]Tier{},
		deopts:    map[string]int{},
	}
	m.Heap.SetGCHook(cfg.OnGC)
	for _, c := range img.Classes {
		for _, f := range c.Fields {
			if f.Static {
				if f.IsRef {
					m.statics[c.Name+"."+f.Name] = NullVal()
				} else {
					m.statics[c.Name+"."+f.Name] = IntVal(0)
				}
			}
		}
	}
	return m
}

func (m *Machine) trace(event string) {
	if m.cfg.Trace != nil {
		m.cfg.Trace(event)
	}
}

// Run executes the program to completion and returns the result.
func (m *Machine) Run() *Result {
	m.trace("runtime.startup")
	m.trace("runtime.interp.core")
	entry := m.img.Entry()
	var err error
	if entry == nil {
		err = errors.New("vm: image has no entry point")
	} else {
		_, err = m.CallFunction(entry, nil)
	}
	res := &Result{
		Output:       m.output,
		Steps:        m.steps,
		GCCycles:     m.Heap.GCCycles,
		AllocCount:   m.Heap.AllocCount,
		MonitorLeaks: m.heldMonitors,
		Tiers:        m.tiers,
	}
	for _, d := range m.deopts {
		res.Deopts += d
	}
	switch e := err.(type) {
	case nil:
	case *Thrown:
		res.Exception = e
	case *Crash:
		res.Crash = e
	default:
		if errors.Is(err, ErrTimeout) {
			res.TimedOut = true
		} else if errors.Is(err, ErrHeapExhausted) {
			res.HeapExhausted = true
		} else if errors.Is(err, ErrIllegalMonitor) {
			// An unbalanced monitor exit escaping to top level is a
			// compiler defect symptom; surface it as a crash.
			res.Crash = &Crash{BugID: "illegal-monitor", Component: "Runtime", Message: err.Error()}
		} else {
			res.Crash = &Crash{BugID: "internal", Component: "Runtime", Message: err.Error()}
		}
	}
	return res
}

// Profile returns the profile for a method key, creating it on demand.
func (m *Machine) Profile(key string) *MethodProfile {
	p := m.profiles[key]
	if p == nil {
		p = &MethodProfile{}
		m.profiles[key] = p
	}
	return p
}

// CallFunction invokes fn through the tiering machinery. args holds the
// receiver (for instance methods) followed by the parameters.
func (m *Machine) CallFunction(fn *bytecode.Function, args []Value) (Value, error) {
	key := fn.Key()
	prof := m.Profile(key)
	prof.Invocations++
	m.trace("runtime.interp.calls")
	if err := m.tierUp(fn, prof); err != nil {
		return Value{}, err
	}

	// Synchronized methods lock the receiver (or the class object).
	var syncVal Value
	if fn.Synchronized {
		if fn.HasReceiver {
			syncVal = args[0]
		} else {
			syncVal = ObjVal(m.classMonitor(fn.Class))
		}
		if err := m.MonitorEnter(syncVal); err != nil {
			return Value{}, err
		}
	}

	var ret Value
	var err error
	if cm := m.compiled[key]; cm != nil {
		ret, err = cm.Invoke(args)
	} else {
		ret, err = m.interpret(fn, args)
	}

	if fn.Synchronized {
		// Release on both normal and exceptional exit (the VM runtime,
		// not the compiled code, owns method-level sync).
		if exitErr := m.MonitorExit(syncVal); exitErr != nil && err == nil {
			err = exitErr
		}
	}
	return ret, err
}

func (m *Machine) tierUp(fn *bytecode.Function, prof *MethodProfile) error {
	if m.cfg.JIT == nil {
		return nil
	}
	key := fn.Key()
	if m.cfg.CompileOnly != "" && key != m.cfg.CompileOnly {
		return nil
	}
	cur := m.tiers[key]
	hot := prof.Hotness()
	var want Tier
	switch {
	case m.cfg.CompileEager:
		// -Xcomp with tiering: C1 on the first invocation, C2 on the
		// next, so both pipelines run for every compiled method.
		if cur < TierC1 {
			want = TierC1
		} else {
			want = TierC2
		}
	case hot >= m.cfg.C2Threshold:
		want = TierC2
	case hot >= m.cfg.C1Threshold:
		want = TierC1
	default:
		return nil
	}
	if want <= cur {
		return nil
	}
	cm, err := m.cfg.JIT.Compile(fn, want, m)
	if err != nil {
		var crash *Crash
		if errors.As(err, &crash) {
			return crash
		}
		// Compilation bailout: stay at the current tier, but record the
		// attempt so we don't retry every call.
		m.tiers[key] = want
		return nil
	}
	m.compiled[key] = cm
	m.tiers[key] = want
	if m.cfg.OnCompile != nil {
		m.cfg.OnCompile(fn, want)
	}
	return nil
}

func (m *Machine) classMonitor(class string) *Object {
	o := m.classMons[class]
	if o == nil {
		o = &Object{Class: class + "$Class"}
		m.classMons[class] = o
	}
	return o
}

// --- Env implementation (services for compiled code and the JIT) ---

// NewObject allocates a class instance with zeroed fields.
func (m *Machine) NewObject(class string) Value {
	refFields := map[string]bool{}
	if cf := m.img.Class(class); cf != nil {
		for _, f := range cf.Fields {
			if !f.Static {
				refFields[f.Name] = f.IsRef
			}
		}
	}
	v := ObjVal(m.Heap.NewObject(class, refFields))
	m.trace("runtime.objects")
	m.trace("gc.alloc.fast")
	m.maybeGC()
	return v
}

// NewBox allocates an Integer box.
func (m *Machine) NewBox(v int64) Value {
	b := BoxVal(m.Heap.NewBox(v))
	m.trace("runtime.boxing")
	m.trace("gc.alloc.fast")
	m.maybeGC()
	return b
}

// NewArray allocates an int array.
func (m *Machine) NewArray(n int64) Value {
	a := ArrVal(m.Heap.NewArray(n))
	m.trace("runtime.arrays")
	m.trace("gc.alloc.fast")
	if n > 1000 {
		m.trace("gc.large")
	}
	m.maybeGC()
	return a
}

func (m *Machine) maybeGC() {
	if !m.Heap.NeedsGC() {
		return
	}
	m.trace("gc.alloc.slow")
	m.trace("gc.mark")
	m.trace("gc.sweep")
	m.trace("gc.roots.statics")
	if len(m.frames) > 0 {
		m.trace("gc.roots.frames")
	}
	roots := m.rootsBuf[:0]
	for _, v := range m.statics {
		roots = append(roots, v)
	}
	for _, f := range m.frames {
		roots = append(roots, f.locals...)
		roots = append(roots, f.stack...)
		for _, me := range f.mons {
			roots = append(roots, me.v)
		}
	}
	for _, o := range m.strMons {
		roots = append(roots, ObjVal(o))
	}
	m.Heap.Collect(roots)
	m.rootsBuf = roots
}

// GetStatic reads a static field.
func (m *Machine) GetStatic(class, field string) Value {
	m.trace("runtime.statics")
	return m.statics[class+"."+field]
}

// SetStatic writes a static field.
func (m *Machine) SetStatic(class, field string, v Value) {
	m.statics[class+"."+field] = v
}

// StringMonitor interns the shared lock object for a string literal.
func (m *Machine) StringMonitor(s string) *Object {
	o := m.strMons[s]
	if o == nil {
		o = &Object{Class: "String"}
		m.strMons[s] = o
	}
	return o
}

// Call dispatches a method reference through tiering.
func (m *Machine) Call(ref bytecode.MethodRef, recv Value, args []Value) (Value, error) {
	fn := m.img.Lookup(ref)
	if fn == nil {
		return Value{}, fmt.Errorf("vm: unresolvable method %s", ref)
	}
	callArgs := args
	if !ref.Static {
		if recv.Kind == KNull {
			return Value{}, &Thrown{Code: bytecode.ExcNullPointer}
		}
		// Prepend the receiver via the argument freelist: callees copy
		// the values out (interpreted frames into locals, compiled code
		// into its scope stack) before returning, so the buffer is free
		// again once CallFunction completes.
		callArgs = m.getArgs(len(args) + 1)
		callArgs[0] = recv
		copy(callArgs[1:], args)
	}
	ret, err := m.CallFunction(fn, callArgs)
	if !ref.Static {
		m.putArgs(callArgs)
	}
	return ret, err
}

// MonitorEnter enters the monitor of a reference value.
func (m *Machine) MonitorEnter(v Value) error {
	mon := m.monitorOf(v)
	if mon == nil {
		return &Thrown{Code: bytecode.ExcNullPointer}
	}
	m.trace("runtime.monitors")
	if mon.Depth > 0 {
		m.trace("runtime.monitors.nested")
	}
	mon.Depth++
	m.heldMonitors++
	return nil
}

// MonitorExit exits the monitor of a reference value.
func (m *Machine) MonitorExit(v Value) error {
	mon := m.monitorOf(v)
	if mon == nil {
		return &Thrown{Code: bytecode.ExcNullPointer}
	}
	if mon.Depth == 0 {
		return ErrIllegalMonitor
	}
	mon.Depth--
	m.heldMonitors--
	return nil
}

func (m *Machine) monitorOf(v Value) *Monitor {
	switch v.Kind {
	case KObj, KBox:
		if v.Obj == nil {
			return nil
		}
		return &v.Obj.Mon
	case KArr:
		if v.Arr == nil {
			return nil
		}
		return &v.Arr.Mon
	case KStr:
		return &m.StringMonitor(v.S).Mon
	}
	return nil
}

// HeldMonitors reports the number of currently held monitor entries.
func (m *Machine) HeldMonitors() int { return m.heldMonitors }

// Print appends a value to the program output channel.
func (m *Machine) Print(v Value) {
	m.output = append(m.output, v.String())
}

// Step consumes one unit of fuel. It is also where the heap-allocation
// cap surfaces: allocation sites have no error channel, so the budget
// check rides the per-instruction fuel check instead (the interpreter
// and compiled code both step every instruction, bounding the delay to
// one instruction after the blown allocation).
func (m *Machine) Step() error {
	m.steps++
	if m.steps > m.cfg.MaxSteps {
		return ErrTimeout
	}
	if m.cfg.MaxHeapUnits > 0 && m.Heap.Units > m.cfg.MaxHeapUnits {
		return ErrHeapExhausted
	}
	return nil
}

// InvalidateCode deopts a method back to the interpreter.
func (m *Machine) InvalidateCode(fnKey string) {
	m.trace("runtime.deopt")
	delete(m.compiled, fnKey)
	m.tiers[fnKey] = TierInterpreter
	m.deopts[fnKey]++
	// Halve the hotness so the method re-tiers after more profiling.
	if p := m.profiles[fnKey]; p != nil {
		p.Invocations /= 2
		p.Backedges /= 2
		p.Deopts++
	}
}

// DeoptCount reports how many times a method was invalidated.
func (m *Machine) DeoptCount(fnKey string) int { return m.deopts[fnKey] }

// Image exposes the loaded image.
func (m *Machine) Image() *bytecode.Image { return m.img }

var _ Env = (*Machine)(nil)
