package vm

import (
	"fmt"

	"repro/internal/bytecode"
)

// interpret executes fn's bytecode directly. It is the reference
// semantics: the JIT tiers must agree with it on every program (that
// agreement is the miscompilation oracle).
func (m *Machine) interpret(fn *bytecode.Function, args []Value) (Value, error) {
	f := newFrame(fn)
	copy(f.locals, args)
	m.frames = append(m.frames, f)
	defer func() {
		m.frames = m.frames[:len(m.frames)-1]
		freeFrame(f)
	}()

	prof := m.Profile(fn.Key())
	code := fn.Code
	pc := int32(0)

	push := func(v Value) { f.stack = append(f.stack, v) }
	pop := func() Value {
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		return v
	}

	// raise routes an in-flight exception: to a handler in this frame
	// if one covers pc, otherwise out of the frame after releasing any
	// monitors this frame entered. Returns the new pc, or -1 to
	// propagate.
	raise := func(t *Thrown) int32 {
		m.trace("runtime.exceptions")
		for _, ex := range fn.ExTable {
			if pc >= ex.Start && pc < ex.End {
				for len(f.mons) > int(ex.MonDepth) {
					me := f.mons[len(f.mons)-1]
					f.mons = f.mons[:len(f.mons)-1]
					me.mon.Depth--
					m.heldMonitors--
				}
				f.stack = f.stack[:0]
				f.locals[ex.CatchSlot] = IntVal(t.Code)
				return ex.Handler
			}
		}
		for len(f.mons) > 0 {
			me := f.mons[len(f.mons)-1]
			f.mons = f.mons[:len(f.mons)-1]
			me.mon.Depth--
			m.heldMonitors--
		}
		m.trace("runtime.exceptions.unwind")
		return -1
	}

	for {
		if err := m.Step(); err != nil {
			return Value{}, err
		}
		if pc < 0 || pc >= int32(len(code)) {
			return Value{}, fmt.Errorf("vm: %s: pc %d out of range", fn.Key(), pc)
		}
		ins := code[pc]
		switch ins.Op {
		case bytecode.Nop:

		case bytecode.Const:
			v := fn.Ints[ins.A]
			if ins.B == 1 {
				push(LongVal(v))
			} else {
				push(IntVal(v))
			}
		case bytecode.ConstStr:
			push(StrVal(fn.Strs[ins.A]))
		case bytecode.ConstBool:
			push(BoolVal(ins.A != 0))
		case bytecode.Load:
			push(f.locals[ins.A])
		case bytecode.Store:
			f.locals[ins.A] = pop()
		case bytecode.Dup:
			push(f.stack[len(f.stack)-1])
		case bytecode.Pop:
			pop()

		case bytecode.Add:
			b, a := pop(), pop()
			push(Arith(func(x, y int64) int64 { return x + y }, a, b))
		case bytecode.Sub:
			b, a := pop(), pop()
			push(Arith(func(x, y int64) int64 { return x - y }, a, b))
		case bytecode.Mul:
			b, a := pop(), pop()
			push(Arith(func(x, y int64) int64 { return x * y }, a, b))
		case bytecode.Div:
			b, a := pop(), pop()
			if b.I == 0 {
				if h := raise(&Thrown{Code: bytecode.ExcArithmetic}); h >= 0 {
					pc = h
					continue
				}
				return Value{}, &Thrown{Code: bytecode.ExcArithmetic}
			}
			push(Arith(divJava, a, b))
		case bytecode.Rem:
			b, a := pop(), pop()
			if b.I == 0 {
				if h := raise(&Thrown{Code: bytecode.ExcArithmetic}); h >= 0 {
					pc = h
					continue
				}
				return Value{}, &Thrown{Code: bytecode.ExcArithmetic}
			}
			push(Arith(remJava, a, b))
		case bytecode.And:
			b, a := pop(), pop()
			if a.Kind == KBool {
				push(BoolVal(a.I != 0 && b.I != 0))
			} else {
				push(Arith(func(x, y int64) int64 { return x & y }, a, b))
			}
		case bytecode.Or:
			b, a := pop(), pop()
			if a.Kind == KBool {
				push(BoolVal(a.I != 0 || b.I != 0))
			} else {
				push(Arith(func(x, y int64) int64 { return x | y }, a, b))
			}
		case bytecode.Xor:
			b, a := pop(), pop()
			if a.Kind == KBool {
				push(BoolVal((a.I != 0) != (b.I != 0)))
			} else {
				push(Arith(func(x, y int64) int64 { return x ^ y }, a, b))
			}
		case bytecode.Shl:
			b, a := pop(), pop()
			push(Arith(shlJava(a.Kind == KLong), a, b))
		case bytecode.Shr:
			b, a := pop(), pop()
			push(Arith(shrJava(a.Kind == KLong), a, b))
		case bytecode.Neg:
			a := pop()
			push(Arith(func(x, _ int64) int64 { return -x }, a, a))
		case bytecode.BitNot:
			a := pop()
			push(Arith(func(x, _ int64) int64 { return ^x }, a, a))

		case bytecode.CmpEq, bytecode.CmpNe:
			b, a := pop(), pop()
			eq := false
			if a.IsRef() && b.IsRef() {
				eq = SameRef(a, b)
			} else {
				eq = a.I == b.I
			}
			if ins.Op == bytecode.CmpNe {
				eq = !eq
			}
			push(BoolVal(eq))
		case bytecode.CmpLt:
			b, a := pop(), pop()
			push(BoolVal(a.I < b.I))
		case bytecode.CmpLe:
			b, a := pop(), pop()
			push(BoolVal(a.I <= b.I))
		case bytecode.CmpGt:
			b, a := pop(), pop()
			push(BoolVal(a.I > b.I))
		case bytecode.CmpGe:
			b, a := pop(), pop()
			push(BoolVal(a.I >= b.I))
		case bytecode.Not:
			a := pop()
			push(BoolVal(a.I == 0))

		case bytecode.Jump:
			if ins.A <= pc {
				prof.Backedges++
			}
			pc = ins.A
			continue
		case bytecode.JumpIfFalse:
			if !pop().Bool() {
				if ins.A <= pc {
					prof.Backedges++
				}
				pc = ins.A
				continue
			}
		case bytecode.JumpIfTrue:
			if pop().Bool() {
				if ins.A <= pc {
					prof.Backedges++
				}
				pc = ins.A
				continue
			}

		case bytecode.NewObj:
			push(m.NewObject(fn.Classes[ins.A]))
		case bytecode.NewArr:
			n := pop()
			push(m.NewArray(n.I))

		case bytecode.GetField:
			recv := pop()
			v, thr := getFieldOf(recv, fn.Fields[ins.A].Name)
			if thr != nil {
				if h := raise(thr); h >= 0 {
					pc = h
					continue
				}
				return Value{}, thr
			}
			push(v)
		case bytecode.PutField:
			val := pop()
			recv := pop()
			if recv.Kind != KObj || recv.Obj == nil {
				thr := &Thrown{Code: bytecode.ExcNullPointer}
				if h := raise(thr); h >= 0 {
					pc = h
					continue
				}
				return Value{}, thr
			}
			if val.IsRef() {
				m.trace("gc.barriers")
			}
			recv.Obj.Fields[fn.Fields[ins.A].Name] = val
		case bytecode.GetStatic:
			ref := fn.Fields[ins.A]
			push(m.GetStatic(ref.Class, ref.Name))
		case bytecode.PutStatic:
			ref := fn.Fields[ins.A]
			m.SetStatic(ref.Class, ref.Name, pop())

		case bytecode.ALoad:
			idx, arr := pop(), pop()
			v, thr := arrayLoad(arr, idx.I)
			if thr != nil {
				if h := raise(thr); h >= 0 {
					pc = h
					continue
				}
				return Value{}, thr
			}
			push(v)
		case bytecode.AStore:
			val, idx, arr := pop(), pop(), pop()
			if thr := arrayStore(arr, idx.I, val.I); thr != nil {
				if h := raise(thr); h >= 0 {
					pc = h
					continue
				}
				return Value{}, thr
			}

		case bytecode.I2L:
			v := pop()
			push(LongVal(v.I))
		case bytecode.BoxOp:
			v := pop()
			push(m.NewBox(v.I))
		case bytecode.UnboxOp:
			v := pop()
			if v.Kind != KBox || v.Obj == nil {
				thr := &Thrown{Code: bytecode.ExcNullPointer}
				if h := raise(thr); h >= 0 {
					pc = h
					continue
				}
				return Value{}, thr
			}
			push(IntVal(v.Obj.BoxVal))

		case bytecode.Invoke, bytecode.InvokeReflect:
			ref := fn.Methods[ins.A]
			nArgs := ref.NArgs
			callArgs := m.getArgs(nArgs)
			for i := nArgs - 1; i >= 0; i-- {
				callArgs[i] = pop()
			}
			recv := Value{Kind: KNull}
			if !ref.Static {
				recv = pop()
			}
			if ins.Op == bytecode.InvokeReflect {
				m.trace("runtime.reflection")
				// Reflection pays lookup overhead: extra fuel.
				for i := 0; i < 8; i++ {
					if err := m.Step(); err != nil {
						m.putArgs(callArgs)
						return Value{}, err
					}
				}
			}
			ret, err := m.Call(ref, recv, callArgs)
			m.putArgs(callArgs)
			if err != nil {
				if thr, ok := err.(*Thrown); ok {
					if h := raise(thr); h >= 0 {
						pc = h
						continue
					}
				}
				return Value{}, err
			}
			if !ref.Void {
				push(ret)
			}
		case bytecode.ReflectGetF:
			ref := fn.Fields[ins.A]
			m.trace("runtime.reflection")
			for i := 0; i < 4; i++ {
				if err := m.Step(); err != nil {
					return Value{}, err
				}
			}
			if ref.Static {
				push(m.GetStatic(ref.Class, ref.Name))
			} else {
				recv := pop()
				v, thr := getFieldOf(recv, ref.Name)
				if thr != nil {
					if h := raise(thr); h >= 0 {
						pc = h
						continue
					}
					return Value{}, thr
				}
				push(v)
			}

		case bytecode.MonitorEnter:
			v := pop()
			mon := m.monitorOf(v)
			if mon == nil {
				thr := &Thrown{Code: bytecode.ExcNullPointer}
				if h := raise(thr); h >= 0 {
					pc = h
					continue
				}
				return Value{}, thr
			}
			m.trace("runtime.monitors")
			if mon.Depth > 0 {
				m.trace("runtime.monitors.nested")
			}
			mon.Depth++
			m.heldMonitors++
			f.mons = append(f.mons, monEntry{mon: mon, v: v})
		case bytecode.MonitorExit:
			v := pop()
			mon := m.monitorOf(v)
			if mon == nil || mon.Depth == 0 || len(f.mons) == 0 {
				return Value{}, ErrIllegalMonitor
			}
			mon.Depth--
			m.heldMonitors--
			f.mons = f.mons[:len(f.mons)-1]

		case bytecode.Return:
			for len(f.mons) > 0 { // defensive; balanced code leaves none
				me := f.mons[len(f.mons)-1]
				f.mons = f.mons[:len(f.mons)-1]
				me.mon.Depth--
				m.heldMonitors--
			}
			return Value{}, nil
		case bytecode.ReturnVal:
			v := pop()
			for len(f.mons) > 0 {
				me := f.mons[len(f.mons)-1]
				f.mons = f.mons[:len(f.mons)-1]
				me.mon.Depth--
				m.heldMonitors--
			}
			return v, nil
		case bytecode.Throw:
			code := pop()
			thr := &Thrown{Code: code.I}
			if h := raise(thr); h >= 0 {
				pc = h
				continue
			}
			return Value{}, thr

		case bytecode.PrintOp:
			m.Print(pop())

		default:
			return Value{}, fmt.Errorf("vm: %s: bad opcode %d at pc %d", fn.Key(), ins.Op, pc)
		}
		pc++
	}
}

func getFieldOf(recv Value, name string) (Value, *Thrown) {
	if recv.Kind != KObj || recv.Obj == nil {
		return Value{}, &Thrown{Code: bytecode.ExcNullPointer}
	}
	return recv.Obj.Fields[name], nil
}

func arrayLoad(arr Value, idx int64) (Value, *Thrown) {
	if arr.Kind != KArr || arr.Arr == nil {
		return Value{}, &Thrown{Code: bytecode.ExcNullPointer}
	}
	if idx < 0 || idx >= int64(len(arr.Arr.Elems)) {
		return Value{}, &Thrown{Code: bytecode.ExcArrayBounds}
	}
	return IntVal(arr.Arr.Elems[idx]), nil
}

func arrayStore(arr Value, idx, val int64) *Thrown {
	if arr.Kind != KArr || arr.Arr == nil {
		return &Thrown{Code: bytecode.ExcNullPointer}
	}
	if idx < 0 || idx >= int64(len(arr.Arr.Elems)) {
		return &Thrown{Code: bytecode.ExcArrayBounds}
	}
	arr.Arr.Elems[idx] = int64(int32(val))
	return nil
}

func divJava(a, b int64) int64 { return a / b }
func remJava(a, b int64) int64 { return a % b }

func shlJava(isLong bool) func(a, b int64) int64 {
	if isLong {
		return func(a, b int64) int64 { return a << uint(b&63) }
	}
	return func(a, b int64) int64 { return int64(int32(a) << uint(b&31)) }
}

func shrJava(isLong bool) func(a, b int64) int64 {
	if isLong {
		return func(a, b int64) int64 { return a >> uint(b&63) }
	}
	return func(a, b int64) int64 { return int64(int32(a) >> uint(b&31)) }
}
