package vm

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/lang"
)

// callHeavySrc is the interpreter-allocation workload: a hot loop making
// nested calls (frames), passing arguments (arg buffers), boxing, and
// allocating enough to trigger GC root scans — every allocation site the
// frame/arg reuse machinery targets.
const callHeavySrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 400; i += 1) {
      total = total + t.outer(i, i + 1);
    }
    print(total);
  }
  int outer(int a, int b) {
    return this.inner(a) + this.inner(b);
  }
  int inner(int x) {
    int acc = 0;
    for (int k = 0; k < 3; k += 1) { acc = acc + x + k; }
    return acc;
  }
}`

func compileForBench(tb testing.TB, src string) *bytecode.Image {
	tb.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		tb.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		tb.Fatal(err)
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// BenchmarkInterpretCallHeavy measures the pure-interpreter hot loop on
// the call-heavy workload. allocs/op is the number this PR's frame and
// argument-buffer reuse drives down; TestInterpreterAllocBudget pins it.
func BenchmarkInterpretCallHeavy(b *testing.B) {
	img := compileForBench(b, callHeavySrc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := NewMachine(img, Config{}).Run()
		if res.Crash != nil || res.Exception != nil {
			b.Fatalf("bad result: %+v", res)
		}
	}
}

// TestInterpreterAllocBudget pins the interpreter's allocation behavior:
// the call-heavy workload makes ~2400 calls, and before frame reuse each
// one allocated a frame plus a locals slice plus an argument buffer
// (>7000 allocations per run). With the freelists the whole run must
// stay within a small constant budget — if this fails, a per-call
// allocation crept back into the hot loop.
func TestInterpreterAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short test shuffling")
	}
	img := compileForBench(t, callHeavySrc)
	var out *Result
	allocs := testing.AllocsPerRun(5, func() {
		out = NewMachine(img, Config{}).Run()
	})
	if out.Crash != nil || out.Exception != nil {
		t.Fatalf("bad result: %+v", out)
	}
	if len(out.Output) != 1 || out.Output[0] != "482400" {
		t.Fatalf("output = %v, want [482400]", out.Output)
	}
	// Machine construction + heap objects + GC bookkeeping legitimately
	// allocate; per-call frame/locals/args churn must not. 2400 calls
	// would add >7000 allocations on their own.
	const budget = 800
	if allocs > budget {
		t.Errorf("interpreter run allocated %.0f times, budget %d — per-call allocations are back in the hot loop", allocs, budget)
	}
}
