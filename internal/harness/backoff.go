package harness

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// JitterSource is a concurrency-safe random source for backoff jitter.
// It is a pointer type so Backoff stays a plain copyable value: retry
// policies travel by value through configs, and several goroutines may
// share one policy.
type JitterSource struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewJitterSource returns a seeded jitter source — tests pin the seed
// for reproducible retry schedules.
func NewJitterSource(seed int64) *JitterSource {
	return &JitterSource{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (s *JitterSource) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Float64()
}

// globalJitter is the fallback jitter source, seeded once per process.
var globalJitter = NewJitterSource(time.Now().UnixNano())

// Backoff computes exponential retry delays with optional jitter. The
// zero value (and any policy with Jitter == 0) is fully deterministic —
// Delay(n) == Base << n, capped at Max — which is what keeps default
// campaigns byte-identical. Fleet RPC retries set Jitter to spread
// correlated retries (a coordinator re-dispatching to many workers at
// once) instead of synchronizing them into thundering herds.
type Backoff struct {
	// Base is the delay before the first retry, doubled per attempt.
	Base time.Duration
	// Max caps the computed delay; 0 means uncapped.
	Max time.Duration
	// Jitter in (0, 1] randomizes each delay to
	// [(1-Jitter)·d, d] — "equal jitter" keeps a deterministic floor so
	// tests can still bound sleeps. 0 disables jitter entirely.
	Jitter float64
	// Rand is the jitter source. Nil falls back to a process-global
	// seeded source; tests inject NewJitterSource(seed) for
	// reproducible schedules.
	Rand *JitterSource
}

// Delay returns the delay before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d <<= 1
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter <= 0 {
		return d
	}
	j := b.Jitter
	if j > 1 {
		j = 1
	}
	src := b.Rand
	if src == nil {
		src = globalJitter
	}
	// Equal-jitter: keep a (1-j)·d floor, randomize the rest.
	return time.Duration(float64(d) * (1 - j*src.Float64()))
}

// RetryConfig tunes Retry.
type RetryConfig struct {
	// Attempts bounds total tries (first call + retries). <=0 means a
	// single attempt.
	Attempts int
	// Backoff schedules the delay between attempts.
	Backoff Backoff
	// IsTransient classifies errors worth retrying. Nil retries every
	// error.
	IsTransient func(error) bool
	// Sleep is the clock seam (nil = time.Sleep, interruptible by ctx).
	Sleep func(time.Duration)
	// OnRetry, when set, observes each retry about to be scheduled
	// (attempt is 0-based, err the failure that caused it) — the seam
	// fleet metrics count RPC retries through.
	OnRetry func(attempt int, err error)
}

// Retry runs op with bounded attempts and (optionally jittered)
// exponential backoff between them, stopping early when ctx is
// cancelled or the error is not transient. It returns nil on the first
// success and the last error otherwise.
func Retry(ctx context.Context, cfg RetryConfig, op func(context.Context) error) error {
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if cfg.OnRetry != nil {
				cfg.OnRetry(attempt-1, err)
			}
			d := cfg.Backoff.Delay(attempt - 1)
			if cfg.Sleep != nil {
				cfg.Sleep(d)
			} else if d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				}
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if cfg.IsTransient != nil && !cfg.IsTransient(err) {
			return err
		}
	}
	return err
}
