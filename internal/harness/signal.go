package harness

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// ShutdownContext returns a context cancelled on SIGINT/SIGTERM (and by
// the returned stop func). The campaign loop checks the context between
// supervised tasks: on cancellation it flushes a final checkpoint and
// returns the partial CampaignResult, so a Ctrl-C mid-campaign loses at
// most the in-flight seed, and a later -resume continues the run.
// A second signal falls through to the default handler (hard kill),
// matching the usual double-Ctrl-C contract.
func ShutdownContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
