// Package harness is the fault-isolated campaign execution engine. The
// paper's results come from long campaigns (24-hour comparisons, a
// three-month hunt) where the fuzzer must outlive every pathology its
// own mutants provoke; this package supplies the survival machinery:
// panic containment, wall-clock watchdogs, bounded retry, a quarantine
// store for pathological mutants, periodic checkpoints with resume, and
// graceful SIGINT/SIGTERM shutdown. It is substrate-agnostic — tasks
// are opaque closures — so the core fuzzing loop stays deterministic
// and the engine stays reusable.
package harness

import (
	"errors"
	"fmt"
	"strings"
)

// FaultClass is the campaign-level classification taxonomy. The first
// two classes come from the paper's oracles (the substrate reporting a
// seeded bug); the last three are produced by the harness itself when
// the substrate misbehaves as a Go program rather than as a simulated
// JVM. A mutant that panics or hangs the substrate is itself a
// crash-oracle finding, so faults are first-class artifacts.
type FaultClass string

// Fault classes.
const (
	// FaultCrash: the simulated JVM crashed (seeded crash bug fired).
	FaultCrash FaultClass = "crash"
	// FaultMiscompile: differential testing caught divergent output.
	FaultMiscompile FaultClass = "miscompile"
	// FaultTimeout: the wall-clock watchdog cancelled a hung execution
	// (distinct from the VM's step-fuel ErrTimeout, which the fuzzer
	// handles inline as a skipped mutant).
	FaultTimeout FaultClass = "timeout"
	// FaultHeapExhausted: an execution blew the VM heap-allocation
	// budget (vm.ErrHeapExhausted).
	FaultHeapExhausted FaultClass = "heap-exhausted"
	// FaultHarness: a Go panic escaped the substrate (vm/jit) and was
	// contained by the supervisor instead of killing the process.
	FaultHarness FaultClass = "harness-fault"
)

// Fault is one classified failure of a supervised task. It carries
// enough context to be a standalone bug report: the component blamed,
// the triggering source, the stack (for panics), and where the mutant
// was quarantined.
type Fault struct {
	Class     FaultClass `json:"class"`
	TaskID    string     `json:"task_id"`
	SeedName  string     `json:"seed_name,omitempty"`
	Round     int        `json:"round"`
	Component string     `json:"component,omitempty"` // jit, vm, bytecode, ... (from the panic stack)
	Message   string     `json:"message"`
	Stack     string     `json:"stack,omitempty"`
	Retries   int        `json:"retries"`
	// Source is the triggering mutant (or seed) program text; persisted
	// with the fault so the finding reproduces without the campaign RNG.
	Source         string `json:"source,omitempty"`
	QuarantinePath string `json:"quarantine_path,omitempty"`
}

// Error makes a Fault usable as an error value.
func (f *Fault) Error() string {
	return fmt.Sprintf("harness: %s in task %s: %s", f.Class, f.TaskID, f.Message)
}

// Context extracts the supervision context attached to findings that
// came through the supervised path.
func (f *Fault) Context() *FaultContext {
	return &FaultContext{Class: f.Class, Retries: f.Retries, QuarantinePath: f.QuarantinePath}
}

// HsErrReport renders the fault like HotSpot's hs_err_pid log header,
// mirroring vm.Crash.HsErrReport, with the harness fault context
// (class, retries, quarantine path) included.
func (f *Fault) HsErrReport(vmName string) string {
	stack := ""
	if f.Stack != "" {
		first := f.Stack
		if i := strings.IndexByte(first, '\n'); i >= 0 {
			first = first[:i]
		}
		stack = fmt.Sprintf("\n#  Stack: %s", first)
	}
	return fmt.Sprintf(`#
# A fatal error has been detected by the fuzzing harness:
#
#  %s in component %s, task=%s (round %d)
#  %s%s
#
# Harness: fault class=%s, retries=%d, quarantine=%s
# VM: %s (simulated, supervised run)
#`, f.Class, f.orUnknown(), f.TaskID, f.Round, f.Message, stack,
		f.Class, f.Retries, f.orNone(), vmName)
}

func (f *Fault) orUnknown() string {
	if f.Component == "" {
		return "unknown"
	}
	return f.Component
}

func (f *Fault) orNone() string {
	if f.QuarantinePath == "" {
		return "<none>"
	}
	return f.QuarantinePath
}

// Faulter lets an error value carry a pre-classified harness fault
// across an API boundary. Execution backends use it for process-level
// containment: when an out-of-process child dies (panic, watchdog kill,
// signal), the backend returns an error implementing Faulter and the
// supervisor converts it into a first-class Fault — the same treatment
// an in-process panic gets from recover() — instead of recording an
// ordinary task error.
type Faulter interface {
	HarnessFault() *Fault
}

// AsFault extracts a pre-classified fault from anywhere in err's chain,
// or returns nil when the error is an ordinary one.
func AsFault(err error) *Fault {
	var f Faulter
	if errors.As(err, &f) {
		return f.HarnessFault()
	}
	return nil
}

// FaultContext is the slice of supervision state attached to ordinary
// findings (crash/miscompile oracles) that were detected inside a
// supervised task, so their reports can say how the harness treated
// the run.
type FaultContext struct {
	Class          FaultClass `json:"class"`
	Retries        int        `json:"retries"`
	QuarantinePath string     `json:"quarantine_path,omitempty"`
}

// AnnotateHsErr appends the harness fault context to an hs_err-style
// crash report produced by the substrate (vm.Crash.HsErrReport). A nil
// context returns the report unchanged, so unsupervised paths keep the
// seed format byte-identical.
func AnnotateHsErr(report string, fc *FaultContext) string {
	if fc == nil {
		return report
	}
	q := fc.QuarantinePath
	if q == "" {
		q = "<none>"
	}
	return report + fmt.Sprintf("\n# Harness: fault class=%s, retries=%d, quarantine=%s\n#", fc.Class, fc.Retries, q)
}

// componentOrder fixes blame priority when several substrate packages
// appear in a panic stack: the deepest (most specific) component wins,
// which with Go stacks means the first occurrence top-down.
var componentPackages = []struct{ pkg, name string }{
	{"repro/internal/jit", "jit"},
	{"repro/internal/vm", "vm"},
	{"repro/internal/bytecode", "bytecode"},
	{"repro/internal/jvm", "jvm"},
	{"repro/internal/lang", "lang"},
	{"repro/internal/corpus", "corpus"},
	{"repro/internal/core", "core"},
}

// ComponentFromStack attributes a contained panic to the substrate
// package nearest the top of the stack (the innermost frame that is
// ours). Frames defined in _test.go files are skipped, so a test-only
// injected hook blames the substrate package that invoked it, matching
// what a production fault would report. Returns "" when no known
// package appears.
func ComponentFromStack(stack string) string {
	lines := strings.Split(stack, "\n")
	for i, ln := range lines {
		for _, c := range componentPackages {
			if !strings.Contains(ln, c.pkg+".") {
				continue
			}
			if i+1 < len(lines) && strings.Contains(lines[i+1], "_test.go") {
				continue
			}
			return c.name
		}
	}
	return ""
}
