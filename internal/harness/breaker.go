package harness

import (
	"sync"
	"time"
)

// BreakerState is the circuit's position.
type BreakerState string

// Breaker states: closed passes calls, open rejects them, half-open
// admits a single probe after the cooldown.
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker is a per-dependency circuit breaker: Threshold consecutive
// failures open the circuit, rejecting calls for Cooldown; after the
// cooldown one probe is admitted (half-open) and its outcome closes or
// re-opens the circuit. The fleet coordinator keeps one per worker so a
// dead or flapping worker stops absorbing dispatch attempts (and their
// retry budgets) instead of stalling every queued job behind it.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the circuit
	// (default 3).
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// probe (default 30s).
	Cooldown time.Duration
	// Now is the clock seam (nil = wall clock).
	Now func() time.Time
	// OnOpen, when set, observes each closed→open transition (metrics).
	OnOpen func()

	mu       sync.Mutex
	failures int
	state    BreakerState
	openedAt time.Time
	probing  bool
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 3
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 30 * time.Second
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed. In the open state it
// returns false until the cooldown elapses, then admits exactly one
// probe (half-open) until that probe settles via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false // one probe at a time
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// Success reports a completed call; it closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = BreakerClosed
	b.probing = false
}

// Failure reports a failed call; enough consecutive ones (or a failed
// half-open probe) open the circuit.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	wasOpen := b.state == BreakerOpen
	if b.state == BreakerHalfOpen || b.failures >= b.threshold() {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		if !wasOpen && b.OnOpen != nil {
			b.OnOpen()
		}
	}
}

// State returns the circuit's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == "" {
		return BreakerClosed
	}
	return b.state
}
