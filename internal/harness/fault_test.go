package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// carriedFault is a minimal Faulter-carrying error, the shape the exec
// package's BackendFault uses for process-level containment.
type carriedFault struct{ f *Fault }

func (e *carriedFault) Error() string        { return "child died" }
func (e *carriedFault) HarnessFault() *Fault { return e.f }

func TestAsFault(t *testing.T) {
	want := &Fault{Class: FaultTimeout, Message: "watchdog"}
	err := fmt.Errorf("task: %w", &carriedFault{f: want})
	if got := AsFault(err); got != want {
		t.Errorf("AsFault through a wrap = %v, want %v", got, want)
	}
	if AsFault(errors.New("plain")) != nil {
		t.Error("plain errors must not convert to faults")
	}
	if AsFault(nil) != nil {
		t.Error("nil error must not convert to a fault")
	}
}

// TestSupervisorAdoptsCarriedFault: a task returning a Faulter error is
// recorded as a classified fault — not a task error — with the task's
// identity attached, exactly like a recovered panic.
func TestSupervisorAdoptsCarriedFault(t *testing.T) {
	sup, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := sup.Do(context.Background(), Task{
		ID:       "seedX",
		SeedName: "seedX",
		Round:    3,
		Run: func(context.Context) (any, error) {
			return nil, &carriedFault{f: &Fault{Class: FaultHarness, Message: "child killed"}}
		},
	})
	if out.Err != nil {
		t.Fatalf("carried fault leaked as task error: %v", out.Err)
	}
	if out.Fault == nil {
		t.Fatal("fault not adopted")
	}
	if out.Fault.Class != FaultHarness || out.Fault.SeedName != "seedX" || out.Fault.Round != 3 {
		t.Errorf("fault missing classification or task identity: %+v", out.Fault)
	}
}
