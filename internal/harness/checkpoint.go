package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// checkpointVersion guards the snapshot schema; a mismatched version is
// rejected rather than silently misread. v2 added finding provenance
// (cursor, round, mutation-chain length), the final-mutant OBV, and the
// divergence site to the campaign's finding snapshots.
const checkpointVersion = 2

// CheckpointVersionScheduled (v3) marks snapshots whose campaign state
// carries power-schedule arm statistics. The envelope is otherwise
// identical to v2; campaigns stamp v3 only when a schedule block is
// present, so schedule-free checkpoints stay byte-identical to
// pre-schedule builds, and decoding accepts both.
const CheckpointVersionScheduled = 3

// CheckpointVersionGenerate (v4) marks snapshots whose campaign state
// carries generator-subsystem state (emission counts, pool-slot
// overlay, pinned template extras). Same envelope; campaigns stamp v4
// only when a generate block is present, so generator-free checkpoints
// stay byte-identical to older builds.
const CheckpointVersionGenerate = 4

// Checkpoint is a campaign snapshot. The harness owns the envelope
// (task cursor, execution count, quarantine index); the campaign owns
// State, an opaque JSON blob with its findings, deltas, per-seed
// mutator weights, and seen-bug set. TaskCursor doubles as the RNG
// cursor: per-task RNG seeds are derived from the campaign seed plus
// the global task index, so restoring the cursor restores the random
// stream exactly.
type Checkpoint struct {
	Version     int             `json:"version"`
	TaskCursor  int             `json:"task_cursor"`
	Executions  int             `json:"executions"`
	Quarantined []string        `json:"quarantined,omitempty"`
	State       json.RawMessage `json:"state,omitempty"`
}

// Save writes the checkpoint atomically (temp file + rename), so an
// interruption mid-flush leaves the previous snapshot intact.
func (c *Checkpoint) Save(path string) error {
	if c.Version != CheckpointVersionScheduled && c.Version != CheckpointVersionGenerate {
		c.Version = checkpointVersion
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: checkpoint encode: %w", err)
	}
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("harness: checkpoint write: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a snapshot.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: checkpoint read: %w", err)
	}
	return DecodeCheckpoint(data)
}

// DecodeCheckpoint validates a serialized snapshot — the same checks
// LoadCheckpoint applies, reusable for snapshots that arrive over the
// wire (fleet checkpoint handoff) instead of from a file.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("harness: checkpoint decode: %w", err)
	}
	if c.Version != checkpointVersion && c.Version != CheckpointVersionScheduled && c.Version != CheckpointVersionGenerate {
		return nil, fmt.Errorf("harness: checkpoint version %d, want %d, %d, or %d",
			c.Version, checkpointVersion, CheckpointVersionScheduled, CheckpointVersionGenerate)
	}
	if c.TaskCursor < 0 || c.Executions < 0 {
		return nil, fmt.Errorf("harness: checkpoint has negative cursor/executions")
	}
	return &c, nil
}
