package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"
)

// Config tunes the supervisor. The zero value is the deterministic
// sequential mode: tasks run inline on the calling goroutine with
// panic containment only — no watchdog goroutine, no retries, no
// persistence — so default campaigns reproduce byte-identically.
type Config struct {
	// ExecTimeout is the per-task wall-clock deadline. Zero disables
	// the watchdog (the VM step-fuel budget remains the inner bound);
	// non-zero runs each task on a worker goroutine and cancels it via
	// context when the deadline passes, classifying the task as a
	// timeout fault.
	ExecTimeout time.Duration
	// MaxRetries bounds re-attempts for errors IsTransient classifies
	// as retryable. Faults (panic/hang) are never retried — they are
	// quarantined instead.
	MaxRetries int
	// Backoff is the base delay between transient retries, doubled per
	// attempt. Zero retries immediately.
	Backoff time.Duration
	// BackoffJitter in (0, 1] randomizes each retry delay (equal-jitter:
	// the floor stays at (1-Jitter)·delay). Zero — the default — keeps
	// the historical deterministic schedule, so existing campaigns and
	// their tests are unchanged.
	BackoffJitter float64
	// BackoffSeed seeds the jitter source when BackoffJitter is set;
	// 0 uses a process-global seeded source. Tests pin it for
	// reproducible schedules.
	BackoffSeed int64
	// IsTransient classifies task errors as retryable. Nil means no
	// error is transient.
	IsTransient func(error) bool
	// QuarantineDir persists pathological mutants; "" keeps the
	// quarantine in memory for the run only.
	QuarantineDir string
	// CheckpointPath enables periodic campaign snapshots; "" disables.
	CheckpointPath string
	// CheckpointEvery is the minimum executions between snapshots
	// (<=0 snapshots after every task).
	CheckpointEvery int
	// ResumePath, when set, restores campaign state from a snapshot
	// before the first task.
	ResumePath string
	// OnTask, when set, observes the count of supervised tasks after
	// each one completes (progress reporting; tests use it to trigger
	// deterministic interruptions).
	OnTask func(done int)
	// Sleep is the backoff clock (test seam; nil = time.Sleep).
	Sleep func(time.Duration)
}

// Task is one supervised unit of work — for the campaign, fuzzing one
// seed for one round.
type Task struct {
	ID       string // quarantine key (seed name: a seed that kills the substrate is skipped thereafter)
	SeedName string
	Round    int
	Source   string // program text persisted if the task is quarantined
	Run      func(ctx context.Context) (any, error)
}

// Outcome is the result of one supervised task.
type Outcome struct {
	Value   any    // task return value on success
	Err     error  // ordinary task error (recorded, not fatal)
	Fault   *Fault // classified fault (panic / wall-clock hang)
	Skipped bool   // task was already quarantined and did not run
	Retries int    // transient re-attempts consumed
}

// Supervisor executes tasks with panic containment, a wall-clock
// watchdog, bounded transient retry, and quarantine bookkeeping.
type Supervisor struct {
	Cfg       Config
	Q         *Quarantine
	backoff   *Backoff
	tasksDone int
}

// New builds a supervisor, opening (and loading) the quarantine store.
func New(cfg Config) (*Supervisor, error) {
	q, err := OpenQuarantine(cfg.QuarantineDir)
	if err != nil {
		return nil, err
	}
	b := &Backoff{Base: cfg.Backoff, Jitter: cfg.BackoffJitter}
	if cfg.BackoffJitter > 0 && cfg.BackoffSeed != 0 {
		b.Rand = NewJitterSource(cfg.BackoffSeed)
	}
	return &Supervisor{Cfg: cfg, Q: q, backoff: b}, nil
}

// Do runs one task under supervision. Quarantined tasks are skipped
// (returning the stored fault); contained faults are classified and
// quarantined; transient errors are retried with exponential backoff.
func (s *Supervisor) Do(ctx context.Context, t Task) *Outcome {
	return s.Finish(t, s.Attempt(ctx, t))
}

// Attempt is the order-independent half of Do: it skip-checks the
// quarantine, executes the task with containment / watchdog / transient
// retry, and returns the raw outcome — without writing the quarantine
// or advancing the completion counter. Parallel engines call Attempt
// from worker goroutines and apply Finish in task order; the quarantine
// pre-check here is a safe optimization because the store only grows
// through Finish calls for earlier tasks.
func (s *Supervisor) Attempt(ctx context.Context, t Task) *Outcome {
	if f := s.Q.Get(t.ID); f != nil {
		return &Outcome{Fault: f, Skipped: true}
	}
	var out *Outcome
	for attempt := 0; ; attempt++ {
		out = s.attempt(ctx, t)
		out.Retries = attempt
		if out.Err != nil && out.Fault == nil &&
			s.Cfg.IsTransient != nil && s.Cfg.IsTransient(out.Err) &&
			attempt < s.Cfg.MaxRetries {
			s.sleep(s.backoff.Delay(attempt))
			continue
		}
		break
	}
	return out
}

// Finish applies the order-dependent half of supervision to an outcome
// produced by Attempt: an authoritative quarantine re-check (a task
// attempted speculatively in parallel may have had its seed quarantined
// by an earlier task in the meantime — it is then skipped exactly as a
// sequential run would have skipped it, and the speculative result
// discarded), quarantine persistence for new faults, and completion
// bookkeeping. Must be called in task order, once per Attempt.
func (s *Supervisor) Finish(t Task, out *Outcome) *Outcome {
	defer func() {
		s.tasksDone++
		if s.Cfg.OnTask != nil {
			s.Cfg.OnTask(s.tasksDone)
		}
	}()
	if !out.Skipped {
		if f := s.Q.Get(t.ID); f != nil {
			return &Outcome{Fault: f, Skipped: true}
		}
		if out.Fault != nil {
			out.Fault.Retries = out.Retries
			// Quarantine failures are deliberately non-fatal: losing the
			// artifact must not lose the campaign.
			_ = s.Q.Add(out.Fault)
		}
	}
	return out
}

// Report classifies a failure the task surfaced gracefully (e.g. the
// VM reporting heap exhaustion inside a completed fuzzing round) and
// quarantines its triggering source like any contained fault.
func (s *Supervisor) Report(f *Fault) *Fault {
	_ = s.Q.Add(f)
	return f
}

// attempt executes the task once, containing panics, and — when the
// watchdog is armed — racing it against the wall-clock deadline.
func (s *Supervisor) attempt(ctx context.Context, t Task) *Outcome {
	if s.Cfg.ExecTimeout <= 0 {
		out := &Outcome{}
		out.Value, out.Err = s.contained(ctx, t, out)
		return out
	}
	tctx, cancel := context.WithTimeout(ctx, s.Cfg.ExecTimeout)
	defer cancel()
	type reply struct {
		v     any
		err   error
		fault *Fault
	}
	ch := make(chan reply, 1) // buffered: an abandoned worker must not leak forever
	go func() {
		o := &Outcome{}
		v, err := s.contained(tctx, t, o)
		ch <- reply{v, err, o.Fault}
	}()
	select {
	case r := <-ch:
		return &Outcome{Value: r.v, Err: r.err, Fault: r.fault}
	case <-tctx.Done():
		if ctx.Err() != nil {
			// The campaign is shutting down; not the task's fault.
			return &Outcome{Err: ctx.Err()}
		}
		return &Outcome{Fault: &Fault{
			Class:    FaultTimeout,
			TaskID:   t.ID,
			SeedName: t.SeedName,
			Round:    t.Round,
			Message:  fmt.Sprintf("wall-clock deadline %s exceeded (step fuel did not fire)", s.Cfg.ExecTimeout),
			Source:   t.Source,
		}}
	}
}

// contained invokes the task body with recover() converting any Go
// panic in the substrate into a classified harness fault. Errors that
// carry a pre-classified fault (Faulter — an out-of-process execution
// backend reporting a dead child) get the same first-class treatment:
// the fault is adopted, stamped with the task identity, and the error
// consumed, so process-level containment composes with panic
// containment.
func (s *Supervisor) contained(ctx context.Context, t Task, out *Outcome) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := string(debug.Stack())
			out.Fault = &Fault{
				Class:     FaultHarness,
				TaskID:    t.ID,
				SeedName:  t.SeedName,
				Round:     t.Round,
				Component: ComponentFromStack(stack),
				Message:   fmt.Sprint(r),
				Stack:     stack,
				Source:    t.Source,
			}
			v, err = nil, nil
		}
	}()
	v, err = t.Run(ctx)
	if err != nil {
		if f := AsFault(err); f != nil {
			f.TaskID, f.SeedName, f.Round = t.ID, t.SeedName, t.Round
			if f.Source == "" {
				f.Source = t.Source
			}
			out.Fault = f
			v, err = nil, nil
		}
	}
	return v, err
}

func (s *Supervisor) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.Cfg.Sleep != nil {
		s.Cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// TasksDone reports the number of supervised tasks completed (including
// skips).
func (s *Supervisor) TasksDone() int { return s.tasksDone }
