package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestPanicContainmentAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	sup, err := New(Config{QuarantineDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	task := Task{
		ID:       "Boom",
		SeedName: "Boom",
		Round:    3,
		Source:   "class Boom {}",
		Run: func(context.Context) (any, error) {
			panic("synthetic substrate panic")
		},
	}
	out := sup.Do(context.Background(), task)
	if out.Fault == nil {
		t.Fatal("panic not contained into a fault")
	}
	if out.Fault.Class != FaultHarness {
		t.Errorf("Class = %s, want %s", out.Fault.Class, FaultHarness)
	}
	if !strings.Contains(out.Fault.Message, "synthetic substrate panic") {
		t.Errorf("Message = %q, want the panic value", out.Fault.Message)
	}
	if out.Fault.Stack == "" {
		t.Error("fault has no stack")
	}
	if out.Fault.QuarantinePath == "" {
		t.Fatal("fault not quarantined")
	}
	data, err := os.ReadFile(out.Fault.QuarantinePath)
	if err != nil {
		t.Fatalf("quarantine artifact unreadable: %v", err)
	}
	var stored Fault
	if err := json.Unmarshal(data, &stored); err != nil {
		t.Fatalf("quarantine artifact not JSON: %v", err)
	}
	if stored.Source != task.Source || stored.Round != 3 {
		t.Errorf("stored fault = %+v, want source and round preserved", stored)
	}

	// A quarantined task is skipped, returning the stored fault.
	out2 := sup.Do(context.Background(), task)
	if !out2.Skipped || out2.Fault == nil || out2.Fault.Class != FaultHarness {
		t.Errorf("second Do = %+v, want skip with stored fault", out2)
	}
}

func TestQuarantineReloadAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	q1, err := OpenQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := q1.Add(&Fault{Class: FaultHeapExhausted, TaskID: "Test0001#r2", Message: "blew the heap", Source: "class T {}"}); err != nil {
		t.Fatal(err)
	}
	// A second open (a resumed process) sees the same index.
	q2, err := OpenQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := q2.Get("Test0001#r2")
	if f == nil {
		t.Fatal("quarantine entry lost across reopen")
	}
	if f.Class != FaultHeapExhausted || f.Source != "class T {}" {
		t.Errorf("reloaded fault = %+v", f)
	}
	if got := q2.IDs(); len(got) != 1 || got[0] != "Test0001#r2" {
		t.Errorf("IDs = %v", got)
	}
}

func TestWatchdogClassifiesHangAsTimeout(t *testing.T) {
	sup, err := New(Config{ExecTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	out := sup.Do(context.Background(), Task{
		ID: "Hang",
		Run: func(ctx context.Context) (any, error) {
			<-ctx.Done() // a fuel-proof hang: only the watchdog can end it
			return nil, ctx.Err()
		},
	})
	if out.Fault == nil || out.Fault.Class != FaultTimeout {
		t.Fatalf("outcome = %+v, want timeout fault", out)
	}
}

func TestWatchdogPreservesResults(t *testing.T) {
	sup, err := New(Config{ExecTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	out := sup.Do(context.Background(), Task{
		ID:  "Quick",
		Run: func(context.Context) (any, error) { return 42, nil },
	})
	if out.Fault != nil || out.Err != nil || out.Value != 42 {
		t.Fatalf("outcome = %+v, want value 42", out)
	}
}

func TestShutdownCancelIsNotATaskFault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup, err := New(Config{ExecTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	out := sup.Do(ctx, Task{ID: "T", Run: func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if out.Fault != nil {
		t.Fatalf("shutdown misclassified as fault: %+v", out.Fault)
	}
	if !errors.Is(out.Err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", out.Err)
	}
}

func TestTransientRetryWithBackoff(t *testing.T) {
	errFlaky := errors.New("flaky io")
	var slept []time.Duration
	attempts := 0
	sup, err := New(Config{
		MaxRetries:  3,
		Backoff:     10 * time.Millisecond,
		IsTransient: func(err error) bool { return errors.Is(err, errFlaky) },
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sup.Do(context.Background(), Task{ID: "Flaky", Run: func(context.Context) (any, error) {
		attempts++
		if attempts <= 2 {
			return nil, errFlaky
		}
		return "ok", nil
	}})
	if out.Err != nil || out.Value != "ok" {
		t.Fatalf("outcome = %+v, want success after retries", out)
	}
	if out.Retries != 2 || attempts != 3 {
		t.Errorf("Retries = %d attempts = %d, want 2/3", out.Retries, attempts)
	}
	if len(slept) != 2 || slept[1] != 2*slept[0] {
		t.Errorf("backoff schedule = %v, want doubling", slept)
	}

	// Non-transient errors are not retried.
	attempts = 0
	out = sup.Do(context.Background(), Task{ID: "Hard", Run: func(context.Context) (any, error) {
		attempts++
		return nil, errors.New("permanent")
	}})
	if attempts != 1 || out.Err == nil {
		t.Errorf("permanent error retried %d times", attempts)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	in := &Checkpoint{
		TaskCursor:  17,
		Executions:  912,
		Quarantined: []string{"Test0007"},
		State:       json.RawMessage(`{"final_deltas":[1.5,2.25]}`),
	}
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("atomic write left a temp file behind")
	}
	out, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.TaskCursor != 17 || out.Executions != 912 || len(out.Quarantined) != 1 {
		t.Errorf("loaded = %+v", out)
	}
	var inState, outState map[string]any
	if err := json.Unmarshal(in.State, &inState); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.State, &outState); err != nil {
		t.Fatalf("state round-trip not JSON: %v", err)
	}
	if len(outState["final_deltas"].([]any)) != 2 {
		t.Errorf("state round-trip lost data: %s", out.State)
	}

	// A wrong version is rejected, not misread.
	raw, _ := os.ReadFile(path)
	bad := strings.Replace(string(raw), `"version": 2`, `"version": 999`, 1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("version mismatch accepted")
	}
}

func TestComponentFromStack(t *testing.T) {
	stack := `goroutine 1 [running]:
repro/internal/jit.(*Compiler).Compile(0xc0000b2000)
	/root/repo/internal/jit/pipeline.go:47 +0x1b
repro/internal/vm.(*Machine).tierUp(0xc0000c4000)
	/root/repo/internal/vm/machine.go:305 +0x99`
	if got := ComponentFromStack(stack); got != "jit" {
		t.Errorf("component = %q, want jit (innermost frame wins)", got)
	}
	if got := ComponentFromStack("nothing of ours"); got != "" {
		t.Errorf("component = %q, want empty", got)
	}
}

func TestHsErrReportsCarryFaultContext(t *testing.T) {
	f := &Fault{
		Class: FaultHarness, TaskID: "Boom", Round: 1, Component: "jit",
		Message: "index out of range", Retries: 2, QuarantinePath: "/q/Boom.json",
	}
	rep := f.HsErrReport("openjdk-17")
	for _, want := range []string{"harness-fault", "retries=2", "/q/Boom.json", "openjdk-17"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	base := "# dummy hs_err"
	ann := AnnotateHsErr(base, f.Context())
	if !strings.Contains(ann, "fault class=harness-fault") || !strings.Contains(ann, "retries=2") {
		t.Errorf("annotation missing context: %s", ann)
	}
	if AnnotateHsErr(base, nil) != base {
		t.Error("nil context must leave the report untouched")
	}
}

func TestShutdownContextOnSIGINT(t *testing.T) {
	ctx, stop := ShutdownContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("SIGINT did not cancel the shutdown context")
	}
}
