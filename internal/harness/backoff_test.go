package harness

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministicWithoutJitter(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 60, 60}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := (&Backoff{}).Delay(3); got != 0 {
		t.Errorf("zero-value Delay = %v, want 0", got)
	}
}

func TestBackoffJitterBoundedAndSeedable(t *testing.T) {
	mk := func(seed int64) *Backoff {
		return &Backoff{Base: 100 * time.Millisecond, Jitter: 0.5, Rand: NewJitterSource(seed)}
	}
	a, b := mk(42), mk(42)
	sawDistinct := false
	var prev time.Duration
	for i := 0; i < 32; i++ {
		da, db := a.Delay(1), b.Delay(1)
		if da != db {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da, db)
		}
		// Equal-jitter keeps the floor at (1-J)·d and the ceiling at d.
		if da < 100*time.Millisecond || da > 200*time.Millisecond {
			t.Fatalf("jittered Delay(1) = %v outside [100ms, 200ms]", da)
		}
		if i > 0 && da != prev {
			sawDistinct = true
		}
		prev = da
	}
	if !sawDistinct {
		t.Error("jittered delays never varied")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	errFlaky := errors.New("flaky")
	var slept []time.Duration
	var retried []int
	calls := 0
	err := Retry(context.Background(), RetryConfig{
		Attempts:    4,
		Backoff:     Backoff{Base: 5 * time.Millisecond},
		IsTransient: func(err error) bool { return errors.Is(err, errFlaky) },
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		OnRetry:     func(attempt int, err error) { retried = append(retried, attempt) },
	}, func(context.Context) error {
		calls++
		if calls <= 2 {
			return errFlaky
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v calls = %d, want success on third call", err, calls)
	}
	if len(slept) != 2 || slept[0] != 5*time.Millisecond || slept[1] != 10*time.Millisecond {
		t.Errorf("slept = %v, want [5ms 10ms]", slept)
	}
	if len(retried) != 2 {
		t.Errorf("OnRetry fired %d times, want 2", len(retried))
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	errFatal := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), RetryConfig{
		Attempts:    5,
		IsTransient: func(error) bool { return false },
	}, func(context.Context) error { calls++; return errFatal })
	if !errors.Is(err, errFatal) || calls != 1 {
		t.Errorf("err = %v calls = %d, want one attempt", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	errFlaky := errors.New("flaky")
	calls := 0
	err := Retry(context.Background(), RetryConfig{Attempts: 3}, func(context.Context) error {
		calls++
		return errFlaky
	})
	if !errors.Is(err, errFlaky) || calls != 3 {
		t.Errorf("err = %v calls = %d, want 3 attempts then the last error", err, calls)
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, RetryConfig{Attempts: 10, Backoff: Backoff{Base: time.Hour}}, func(context.Context) error {
		calls++
		cancel()
		return errors.New("fail")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (backoff interrupted)", calls)
	}
}

func TestBreakerOpensAfterThresholdAndRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	opened := 0
	b := &Breaker{Threshold: 2, Cooldown: time.Minute, Now: func() time.Time { return now }, OnOpen: func() { opened++ }}

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("one failure below threshold must not open the circuit")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("threshold failures should open the circuit")
	}
	if opened != 1 {
		t.Errorf("OnOpen fired %d times, want 1", opened)
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("post-cooldown probe rejected")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Failed probe re-opens without a second OnOpen storm from open→open.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe should re-open the circuit")
	}

	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe should close the circuit")
	}
}

func TestSupervisorJitteredBackoffStaysBounded(t *testing.T) {
	errFlaky := errors.New("flaky io")
	var slept []time.Duration
	attempts := 0
	sup, err := New(Config{
		MaxRetries:    3,
		Backoff:       10 * time.Millisecond,
		BackoffJitter: 0.5,
		BackoffSeed:   7,
		IsTransient:   func(err error) bool { return errors.Is(err, errFlaky) },
		Sleep:         func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sup.Do(context.Background(), Task{ID: "Flaky", Run: func(context.Context) (any, error) {
		attempts++
		if attempts <= 3 {
			return nil, errFlaky
		}
		return "ok", nil
	}})
	if out.Err != nil || out.Value != "ok" {
		t.Fatalf("outcome = %+v, want success after retries", out)
	}
	floors := []time.Duration{5, 10, 20}
	ceils := []time.Duration{10, 20, 40}
	if len(slept) != 3 {
		t.Fatalf("slept %v, want 3 backoffs", slept)
	}
	for i, d := range slept {
		if d < floors[i]*time.Millisecond || d > ceils[i]*time.Millisecond {
			t.Errorf("backoff %d = %v outside [%v, %v]", i, d, floors[i]*time.Millisecond, ceils[i]*time.Millisecond)
		}
	}
}
