package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Quarantine persists pathological mutants (panic / hang /
// heap-exhaustion triggers) with their fault reports. Quarantined task
// IDs are skipped on retry: a mutant that kills the substrate once
// must not be allowed to kill every subsequent round, but it is kept
// on disk as a first-class finding artifact.
//
// Layout: one JSON file per fault under Dir, named after the sanitized
// task ID. Opening a quarantine re-reads the directory, so the index
// survives process restarts (the resume path relies on this).
// Safe for concurrent use: parallel workers pre-check Get while the
// merge stage Adds entries for earlier tasks.
type Quarantine struct {
	mu    sync.Mutex
	dir   string
	index map[string]*Fault
}

// OpenQuarantine opens (creating if needed) the store at dir and loads
// any existing entries. An empty dir yields an in-memory-only store:
// skip semantics still work within the run, nothing is persisted.
func OpenQuarantine(dir string) (*Quarantine, error) {
	q := &Quarantine{dir: dir, index: map[string]*Fault{}}
	if dir == "" {
		return q, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: quarantine dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("harness: quarantine dir: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue // a torn entry must not block the campaign
		}
		var f Fault
		if err := json.Unmarshal(data, &f); err != nil || f.TaskID == "" {
			continue
		}
		f.QuarantinePath = path
		q.index[f.TaskID] = &f
	}
	return q, nil
}

// Add stores the fault, writing it to disk when the store is backed by
// a directory, and records the resulting path on the fault.
func (q *Quarantine) Add(f *Fault) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.index[f.TaskID] = f
	if q.dir == "" {
		return nil
	}
	path := filepath.Join(q.dir, sanitizeID(f.TaskID)+".json")
	f.QuarantinePath = path
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// Get returns the stored fault for a task ID, or nil.
func (q *Quarantine) Get(id string) *Fault {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.index[id]
}

// Has reports whether the task ID is quarantined.
func (q *Quarantine) Has(id string) bool { return q.Get(id) != nil }

// Len reports the number of quarantined entries.
func (q *Quarantine) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.index)
}

// IDs returns the quarantined task IDs, sorted for determinism.
func (q *Quarantine) IDs() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.index))
	for id := range q.index {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Dir exposes the backing directory ("" when memory-only).
func (q *Quarantine) Dir() string { return q.dir }

// sanitizeID maps a task ID onto a safe file stem.
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, id)
}

// writeFileAtomic writes via a temp file + rename so a crash mid-write
// never leaves a torn artifact for the resume path to trip over.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
