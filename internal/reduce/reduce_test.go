package reduce

import (
	"strings"
	"testing"

	"repro/internal/jvm"
	"repro/internal/lang"
)

// crashSrc triggers JDK-8312744 on the reference VM with lots of
// removable clutter around the key structure.
const crashSrc = `
class T {
  int f;
  static int sf;
  static void main() {
    T t = new T();
    t.f = 3;
    int[] junk = new int[16];
    junk[0] = 5;
    long total = 0;
    for (int i = 0; i < 1500; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
    print(junk[0]);
    T.sf = T.sf + 1;
    print(T.sf);
  }
  int foo(int i) {
    int noise = i * 31;
    int noise2 = noise ^ 7;
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) {
        acc = acc + k + i;
      }
    }
    synchronized (this) {
      acc = acc + this.f;
    }
    return acc + noise2 - noise2;
  }
  static int unusedHelper(int x) { return x + 1; }
}
`

func crashes(p *lang.Program) bool {
	r, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{ForceCompile: true, MaxSteps: 2_000_000})
	if err != nil {
		return false
	}
	return r.Crashed() && r.Result.Crash.BugID == "JDK-8312744"
}

func TestReducePreservesTrigger(t *testing.T) {
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	if !crashes(p) {
		t.Fatal("the unreduced case must crash")
	}
	res := Reduce(p, crashes, Options{})
	if res.StmtsAfter >= res.StmtsBefore {
		t.Errorf("no shrinkage: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
	if !crashes(res.Program) {
		t.Fatal("reduced case no longer crashes")
	}
	// The key structures must survive: a lock inside a small counted
	// loop (unrolling turns the copies into the adjacent regions the
	// coarsening defect needs — one source-level lock suffices).
	src := lang.Format(res.Program)
	if strings.Count(src, "synchronized") < 1 {
		t.Errorf("reduction removed a load-bearing lock:\n%s", src)
	}
	if !strings.Contains(src, "for (") {
		t.Errorf("reduction removed the load-bearing loop:\n%s", src)
	}
	// Clutter should be gone.
	if strings.Contains(src, "unusedHelper") {
		t.Errorf("dead method survived:\n%s", src)
	}
	if strings.Contains(src, "junk") {
		t.Errorf("dead array survived:\n%s", src)
	}
}

func TestReduceOriginalUntouched(t *testing.T) {
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	before := lang.Format(p)
	Reduce(p, crashes, Options{MaxRounds: 1})
	if lang.Format(p) != before {
		t.Error("Reduce mutated its input")
	}
}

func TestReduceStopsWhenPredicateNeverHolds(t *testing.T) {
	p := lang.MustParse(`class T { static void main() { print(1); print(2); } }`)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	res := Reduce(p, func(*lang.Program) bool { return false }, Options{})
	if res.StmtsAfter != res.StmtsBefore {
		t.Errorf("reduced despite failing predicate: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
}

func TestReduceToMinimalOutput(t *testing.T) {
	// Predicate: program still prints "7" somewhere. Reduction should
	// strip everything unrelated.
	src := `
class T {
  static void main() {
    int a = 1;
    int b = a + 10;
    print(b);
    print(7);
    print(b + 5);
  }
}`
	p := lang.MustParse(src)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	keep := func(cand *lang.Program) bool {
		r, err := jvm.Run(lang.CloneProgram(cand), jvm.Reference(), jvm.Options{PureInterpreter: true})
		if err != nil {
			return false
		}
		for _, line := range r.Result.Output {
			if line == "7" {
				return true
			}
		}
		return false
	}
	res := Reduce(p, keep, Options{})
	if res.StmtsAfter > 2 {
		t.Errorf("expected near-minimal program, got %d statements:\n%s",
			res.StmtsAfter, lang.Format(res.Program))
	}
}

func TestReduceAlreadyMinimal(t *testing.T) {
	p := lang.MustParse(`class T { static void main() { print(1); } }`)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	keep := func(cand *lang.Program) bool {
		r, err := jvm.Run(lang.CloneProgram(cand), jvm.Reference(), jvm.Options{PureInterpreter: true})
		if err != nil {
			return false
		}
		for _, line := range r.Result.Output {
			if line == "1" {
				return true
			}
		}
		return false
	}
	res := Reduce(p, keep, Options{})
	if res.StmtsAfter != res.StmtsBefore {
		t.Errorf("minimal program changed size: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
	if !keep(res.Program) {
		t.Error("minimal program no longer satisfies the predicate")
	}
}

func TestReduceAcceptAllTerminatesAndShrinks(t *testing.T) {
	// A predicate that accepts every candidate is the degenerate
	// worst case: reduction must still reach a fixed point (it deletes
	// everything deletable) instead of spinning.
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	res := Reduce(p, func(*lang.Program) bool { return true }, Options{})
	if res.StmtsAfter >= res.StmtsBefore {
		t.Errorf("accept-all predicate did not shrink: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
	if res.StmtsAfter != 0 {
		t.Errorf("accept-all should delete every statement, %d left:\n%s",
			res.StmtsAfter, lang.Format(res.Program))
	}
	if err := lang.Check(lang.CloneProgram(res.Program)); err != nil {
		t.Errorf("reduced program is ill-formed: %v", err)
	}
}

func TestReduceFlappingPredicateTerminates(t *testing.T) {
	// A predicate that flips on every call (a flaky oracle) must not
	// livelock the fixed-point loop: rounds are bounded, so Reduce
	// returns a well-formed program in bounded work.
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	n := 0
	flap := func(*lang.Program) bool {
		n++
		return n%2 == 0
	}
	res := Reduce(p, flap, Options{})
	if res.StmtsAfter > res.StmtsBefore {
		t.Errorf("flaky predicate grew the program: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
	if res.Rounds > 8 {
		t.Errorf("rounds = %d, want <= default bound 8", res.Rounds)
	}
	if err := lang.Check(lang.CloneProgram(res.Program)); err != nil {
		t.Errorf("reduced program is ill-formed: %v", err)
	}
}
