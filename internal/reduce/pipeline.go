package reduce

import (
	"context"

	"repro/internal/buginject"
	"repro/internal/exec"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// Pipeline is the reusable finding-reduction stage: it shrinks a
// bug-triggering mutant while the specific catalog bug keeps firing,
// probing candidates through an execution backend. The CLI's -reduce
// path and the triage worker share this one implementation, so the
// "still triggers" semantics cannot drift between them.
type Pipeline struct {
	// Executor runs reduction probes; nil uses the in-process default. A
	// subprocess executor isolates the probes exactly like the fuzzing
	// loop's executions.
	Executor exec.Executor
	// MaxSteps bounds each probe execution (0 = 2,000,000, the CLI's
	// historical probe budget).
	MaxSteps int64
	// Options tunes the underlying syntax-guided reduction.
	Options Options
}

// ReduceFinding shrinks p while bug keeps firing on target. When the
// bug is not armed on the finding's own target (a differential finding
// attributed to another build), candidates are probed on every spec
// instead. The context cancels in-flight reduction: once ctx is done
// every probe fails, so the fixed-point loop drains quickly and returns
// the best candidate found so far — callers running reduction under a
// watchdog rely on this to reclaim abandoned workers.
func (pl *Pipeline) ReduceFinding(ctx context.Context, p *lang.Program, bug *buginject.Bug, target jvm.Spec) *Result {
	maxSteps := pl.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000
	}
	specs := []jvm.Spec{target}
	if !bug.In(target.Version) || bug.Impl != target.Impl {
		specs = jvm.AllSpecs()
	}
	ex := exec.Or(pl.Executor)
	keep := func(cand *lang.Program) bool {
		if ctx.Err() != nil {
			return false
		}
		for _, spec := range specs {
			r, err := ex.Execute(ctx, lang.CloneProgram(cand), spec, jvm.Options{ForceCompile: true, MaxSteps: maxSteps})
			if err != nil {
				continue
			}
			if r.Result.Crash != nil && r.Result.Crash.BugID == bug.ID {
				return true
			}
			for _, t := range r.Triggered {
				if t.ID == bug.ID {
					return true
				}
			}
		}
		return false
	}
	return Reduce(p, keep, pl.Options)
}
