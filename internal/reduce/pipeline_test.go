package reduce

import (
	"context"
	"flag"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/buginject"
	"repro/internal/exec"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// minijvmPath is the -exec-json binary built by TestMain (or supplied
// via $MINIJVM); empty means subprocess reduction tests skip.
var minijvmPath string

// TestMain builds cmd/minijvm once, mirroring the exec package's test
// harness. -short skips the build (and the tests that need it).
func TestMain(m *testing.M) {
	flag.Parse()
	if !testing.Short() {
		if p := os.Getenv("MINIJVM"); p != "" {
			minijvmPath = p
		} else {
			dir, err := os.MkdirTemp("", "minijvm")
			if err == nil {
				bin := filepath.Join(dir, "minijvm")
				out, err := osexec.Command("go", "build", "-o", bin, "repro/cmd/minijvm").CombinedOutput()
				if err != nil {
					fmt.Fprintf(os.Stderr, "reduce_test: building minijvm failed, subprocess tests will skip: %v\n%s", err, out)
				} else {
					minijvmPath = bin
				}
				defer os.RemoveAll(dir)
			}
		}
	}
	os.Exit(m.Run())
}

func coarsenBug(t *testing.T) *buginject.Bug {
	t.Helper()
	bug := buginject.ByID("JDK-8312744")
	if bug == nil {
		t.Fatal("JDK-8312744 missing from the catalog")
	}
	return bug
}

func TestPipelineReducesFinding(t *testing.T) {
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	pl := &Pipeline{}
	res := pl.ReduceFinding(context.Background(), p, coarsenBug(t), jvm.Reference())
	if res.StmtsAfter >= res.StmtsBefore {
		t.Errorf("no shrinkage: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
	if !crashes(res.Program) {
		t.Fatal("reduced case no longer triggers the bug")
	}
}

// TestPipelineOffTargetBugProbesAllSpecs: a finding whose bug is not
// armed on its own target (differential attribution) still reduces —
// the pipeline widens the probe set to every spec.
func TestPipelineOffTargetBugProbesAllSpecs(t *testing.T) {
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	bug := coarsenBug(t)
	off := jvm.Spec{Impl: buginject.OpenJ9, Version: 8}
	if bug.In(off.Version) && bug.Impl == off.Impl {
		t.Fatalf("test needs a spec the bug is NOT armed on; %s is armed on %s", bug.ID, off.Name())
	}
	pl := &Pipeline{Options: Options{MaxRounds: 1}}
	res := pl.ReduceFinding(context.Background(), p, bug, off)
	if res.StmtsAfter >= res.StmtsBefore {
		t.Errorf("off-target reduction made no progress: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
	if !crashes(res.Program) {
		t.Fatal("reduced case no longer triggers the bug on the armed spec")
	}
}

// TestPipelineCancelledContext: a dead context makes every probe fail,
// so reduction returns promptly with the input unshrunk instead of
// spinning — the property the triage watchdog relies on to reclaim
// abandoned reductions.
func TestPipelineCancelledContext(t *testing.T) {
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res := (&Pipeline{}).ReduceFinding(ctx, p, coarsenBug(t), jvm.Reference())
	if res.StmtsAfter != res.StmtsBefore {
		t.Errorf("cancelled reduction still shrank: %d -> %d", res.StmtsBefore, res.StmtsAfter)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled reduction took %s, want fast drain", elapsed)
	}
}

// TestPipelineSubprocessExecutor: reduction probes run through the
// out-of-process backend and converge to the same minimized program as
// the in-process default.
func TestPipelineSubprocessExecutor(t *testing.T) {
	if minijvmPath == "" {
		t.Skip("minijvm binary unavailable (-short or build failure)")
	}
	p := lang.MustParse(crashSrc)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	bug := coarsenBug(t)
	opts := Options{MaxRounds: 1} // bound the child-process count
	inproc := (&Pipeline{Options: opts}).ReduceFinding(context.Background(), p, bug, jvm.Reference())

	sub := exec.NewSubprocess(minijvmPath)
	sub.Timeout = 30 * time.Second
	viaSub := (&Pipeline{Executor: sub, Options: opts}).ReduceFinding(context.Background(), p, bug, jvm.Reference())

	if viaSub.StmtsAfter >= viaSub.StmtsBefore {
		t.Errorf("subprocess reduction made no progress: %d -> %d", viaSub.StmtsBefore, viaSub.StmtsAfter)
	}
	if got, want := lang.Format(viaSub.Program), lang.Format(inproc.Program); got != want {
		t.Errorf("backends reduced to different programs:\n-- subprocess --\n%s\n-- inprocess --\n%s", got, want)
	}
	if !crashes(viaSub.Program) {
		t.Fatal("subprocess-reduced case no longer triggers the bug")
	}
}
