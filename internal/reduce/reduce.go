// Package reduce implements syntax-guided test-case reduction in the
// spirit of perses: grammar-aware shrinking steps (statement deletion,
// structure unwrapping, method removal) applied to a fixed point while a
// caller-supplied predicate — "still triggers the bug" — keeps holding.
package reduce

import (
	"repro/internal/lang"
)

// Predicate reports whether a candidate still exhibits the behavior of
// interest. Candidates are always well-formed (type-checked) programs.
type Predicate func(p *lang.Program) bool

// Options bounds the reduction.
type Options struct {
	MaxRounds int // fixed-point iterations (default 8)
}

// Result reports what reduction achieved.
type Result struct {
	Program     *lang.Program
	StmtsBefore int
	StmtsAfter  int
	Rounds      int
	TestedCands int
}

// Reduce shrinks p while keep holds. p is not modified.
func Reduce(p *lang.Program, keep Predicate, opt Options) *Result {
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 8
	}
	cur := lang.CloneProgram(p)
	res := &Result{StmtsBefore: lang.CountStmts(p)}

	try := func(candidate *lang.Program) bool {
		res.TestedCands++
		if err := lang.Check(candidate); err != nil {
			return false
		}
		return keep(candidate)
	}

	for round := 0; round < opt.MaxRounds; round++ {
		res.Rounds = round + 1
		progress := false

		// Pass 1: delete whole statements, largest first.
		for _, loc := range sortedBySize(cur) {
			cand := lang.CloneProgram(cur)
			cl := lang.Find(cand, loc.Stmt.ID())
			if cl == nil {
				continue
			}
			cl.Remove()
			if try(cand) {
				cur = cand
				progress = true
			}
		}

		// Pass 2: unwrap structures (keep bodies, drop the wrapper).
		for _, loc := range sortedBySize(cur) {
			var body []lang.Stmt
			switch n := loc.Stmt.(type) {
			case *lang.Sync:
				body = n.Body.Stmts
			case *lang.For:
				body = n.Body.Stmts
			case *lang.While:
				body = n.Body.Stmts
			case *lang.If:
				body = n.Then.Stmts
			case *lang.Try:
				body = n.Body.Stmts
			default:
				continue
			}
			cand := lang.CloneProgram(cur)
			cl := lang.Find(cand, loc.Stmt.ID())
			if cl == nil {
				continue
			}
			// Rebuild the body from the candidate's own copy.
			var candBody []lang.Stmt
			switch n := cl.Stmt.(type) {
			case *lang.Sync:
				candBody = n.Body.Stmts
			case *lang.For:
				candBody = n.Body.Stmts
			case *lang.While:
				candBody = n.Body.Stmts
			case *lang.If:
				candBody = n.Then.Stmts
			case *lang.Try:
				candBody = n.Body.Stmts
			}
			if len(candBody) == 0 {
				continue
			}
			cl.Remove()
			for i := len(candBody) - 1; i >= 0; i-- {
				cl.Parent.Stmts = insertAt(cl.Parent.Stmts, cl.Index, candBody[i])
			}
			if try(cand) {
				cur = cand
				progress = true
			}
			_ = body
		}

		// Pass 3: drop unreferenced methods (never main).
		for _, cl := range cur.Classes {
			for mi := len(cl.Methods) - 1; mi >= 0; mi-- {
				m := cl.Methods[mi]
				if m.Name == "main" && cl.Name == cur.EntryClass {
					continue
				}
				if methodReferenced(cur, cl.Name, m.Name) {
					continue
				}
				cand := lang.CloneProgram(cur)
				cc := cand.Class(cl.Name)
				for i, cm := range cc.Methods {
					if cm.Name == m.Name {
						cc.Methods = append(cc.Methods[:i], cc.Methods[i+1:]...)
						break
					}
				}
				if try(cand) {
					cur = cand
					progress = true
				}
			}
		}

		if !progress {
			break
		}
	}
	res.Program = cur
	res.StmtsAfter = lang.CountStmts(cur)
	return res
}

func insertAt(s []lang.Stmt, i int, v lang.Stmt) []lang.Stmt {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// sortedBySize lists statements largest-subtree-first so big deletions
// are attempted early (perses' priority queue by tree size).
func sortedBySize(p *lang.Program) []*lang.Location {
	locs := lang.Statements(p)
	sizes := make(map[int]int, len(locs))
	for _, loc := range locs {
		n := 0
		lang.WalkStmts(loc.Stmt, func(lang.Stmt) bool { n++; return true })
		sizes[loc.Stmt.ID()] = n
	}
	// Insertion sort by descending size keeps this dependency-free and
	// stable for determinism.
	out := append([]*lang.Location(nil), locs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && sizes[out[j].Stmt.ID()] > sizes[out[j-1].Stmt.ID()]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func methodReferenced(p *lang.Program, class, method string) bool {
	found := false
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			lang.WalkStmts(m.Body, func(s lang.Stmt) bool {
				lang.WalkExprsIn(s, func(e lang.Expr) {
					switch n := e.(type) {
					case *lang.Call:
						if n.Class == class && n.Method == method {
							found = true
						}
					case *lang.ReflectCall:
						if n.Class == class && n.Method == method {
							found = true
						}
					}
				})
				return !found
			})
		}
	}
	return found
}
