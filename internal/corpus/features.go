package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"math"

	"repro/internal/lang"
)

// Features is the deterministic per-seed feature vector the corpus
// intelligence layer operates on: the seed's OBV fingerprint and
// coverage footprint from one profiling dry-run under the default plan,
// plus static program-shape counters from the parsed AST. Everything is
// derived from the seed source and the (deterministic) VM, so two
// extractions of the same seed are byte-identical — across runs and
// across execution backends, which the backend-equivalence tests pin
// for OBV and coverage replay.
type Features struct {
	Name       string `json:"name"`
	SourceHash string `json:"source_hash"`
	// OBV is the optimization-behavior vector of the unmutated seed
	// under the default compilation plan (nil until profiled).
	OBV []int64 `json:"obv,omitempty"`
	// Coverage lists the VM line regions the dry-run hit, sorted — the
	// same encoding coverage.Tracker.Names ships over the exec wire.
	Coverage []string `json:"coverage,omitempty"`
	// Static program shape.
	Methods      int `json:"methods"`
	Stmts        int `json:"stmts"`
	MaxLoopDepth int `json:"max_loop_depth"`
	LoopSites    int `json:"loop_sites"`
	SyncSites    int `json:"sync_sites"`
	TrySites     int `json:"try_sites"`
	ArraySites   int `json:"array_sites"`
	CallSites    int `json:"call_sites"`
}

// HashSource returns the cache key for a seed source: hex SHA-256.
func HashSource(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// StaticFeatures extracts the AST-derived half of a seed's feature
// vector. The profiling half (OBV, Coverage) is filled in by the caller
// that owns an execution backend (core.ScoreSeeds); this split keeps
// corpus free of VM dependencies.
func StaticFeatures(name, source string, p *lang.Program) *Features {
	ft := &Features{
		Name:       name,
		SourceHash: HashSource(source),
		Stmts:      lang.CountStmts(p),
	}
	for _, c := range p.Classes {
		ft.Methods += len(c.Methods)
	}
	for _, loc := range lang.Statements(p) {
		if d := loc.LoopDepth(); d > ft.MaxLoopDepth {
			ft.MaxLoopDepth = d
		}
		switch loc.Stmt.(type) {
		case *lang.For, *lang.While:
			ft.LoopSites++
		case *lang.Sync:
			ft.SyncSites++
		case *lang.Try:
			ft.TrySites++
		}
		lang.WalkExprsIn(loc.Stmt, func(e lang.Expr) {
			switch e.(type) {
			case *lang.NewArray, *lang.Index:
				ft.ArraySites++
			case *lang.Call, *lang.ReflectCall:
				ft.CallSites++
			}
		})
	}
	return ft
}

// scalars flattens the static counters into a fixed-order vector for
// the distance metric.
func (f *Features) scalars() []int {
	return []int{
		f.Methods, f.Stmts, f.MaxLoopDepth, f.LoopSites,
		f.SyncSites, f.TrySites, f.ArraySites, f.CallSites,
	}
}

// Distance is the pairwise seed distance in [0, 1): a weighted blend of
// normalized OBV Euclidean distance (what the VM did), coverage Jaccard
// distance (where the VM went), and normalized L1 over the static shape
// counters (what the program is). Deterministic: pure arithmetic over
// the feature vectors.
func Distance(a, b *Features) float64 {
	return 0.5*obvDistance(a.OBV, b.OBV) +
		0.3*jaccardDistance(a.Coverage, b.Coverage) +
		0.2*scalarDistance(a.scalars(), b.scalars())
}

func obvDistance(a, b []int64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	at := func(s []int64, i int) float64 {
		if i < len(s) {
			return float64(s[i])
		}
		return 0
	}
	var diff, na, nb float64
	for i := 0; i < n; i++ {
		d := at(a, i) - at(b, i)
		diff += d * d
		na += at(a, i) * at(a, i)
		nb += at(b, i) * at(b, i)
	}
	return math.Sqrt(diff) / (1 + math.Sqrt(na) + math.Sqrt(nb))
}

func jaccardDistance(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	// Both slices are sorted (coverage.Tracker.Names order).
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			union++
			i++
			j++
		case a[i] < b[j]:
			union++
			i++
		default:
			union++
			j++
		}
	}
	union += len(a) - i + len(b) - j
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

func scalarDistance(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += float64(d) / float64(1+a[i]+b[i])
	}
	return sum / float64(len(a))
}

// DiversityScores returns, per seed, the mean distance to every other
// seed — the corpus-relative "how different is this one" score that
// feeds both distillation ordering and the power schedule's base
// energy. A single-seed corpus scores 0.
func DiversityScores(fs []*Features) []float64 {
	out := make([]float64, len(fs))
	if len(fs) < 2 {
		return out
	}
	for i := range fs {
		sum := 0.0
		for j := range fs {
			if i != j {
				sum += Distance(fs[i], fs[j])
			}
		}
		out[i] = sum / float64(len(fs)-1)
	}
	return out
}
