package corpus

// DefaultDistillSpread is the minimum pairwise distance a kept seed
// must add to the distilled subset. Seeds closer than this to an
// already-kept seed are redundant: their OBV fingerprint, coverage
// footprint, and shape are near-duplicates, so fuzzing both buys
// little over fuzzing one twice.
const DefaultDistillSpread = 0.05

// Distill selects the minimal maximally-diverse subset of a scored
// corpus by greedy farthest-point traversal: start from the seed with
// the highest diversity score, then repeatedly add the seed farthest
// from everything already kept, stopping when the best remaining
// candidate is within spread of the kept set (spread <= 0 uses
// DefaultDistillSpread). maxKeep > 0 caps the subset size. Returns the
// kept indices in ascending order. Fully deterministic: ties break
// toward the lower index.
func Distill(fs []*Features, spread float64, maxKeep int) []int {
	if len(fs) == 0 {
		return nil
	}
	if spread <= 0 {
		spread = DefaultDistillSpread
	}
	div := DiversityScores(fs)
	start := 0
	for i, d := range div {
		if d > div[start] {
			start = i
		}
	}

	kept := []int{start}
	// minDist[i] tracks each candidate's distance to its nearest kept
	// seed; farthest-point adds the argmax each step.
	minDist := make([]float64, len(fs))
	for i := range fs {
		if i != start {
			minDist[i] = Distance(fs[i], fs[start])
		}
	}
	taken := make([]bool, len(fs))
	taken[start] = true

	for maxKeep <= 0 || len(kept) < maxKeep {
		best, bestDist := -1, 0.0
		for i := range fs {
			if taken[i] {
				continue
			}
			if best == -1 || minDist[i] > bestDist {
				best, bestDist = i, minDist[i]
			}
		}
		if best == -1 || bestDist < spread {
			break
		}
		kept = append(kept, best)
		taken[best] = true
		for i := range fs {
			if !taken[i] {
				if d := Distance(fs[i], fs[best]); d < minDist[i] {
					minDist[i] = d
				}
			}
		}
	}

	// Selection order is farthest-point order; report in corpus order.
	sortInts(kept)
	return kept
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SeedScore is one seed's entry in a distillation report.
type SeedScore struct {
	Name      string    `json:"name"`
	Diversity float64   `json:"diversity"`
	Kept      bool      `json:"kept"`
	Features  *Features `json:"features,omitempty"`
}

// DistillReport is the JSON result of a distillation pass — the shape
// `mopfuzzer -distill` prints and POST /corpus/distill returns.
type DistillReport struct {
	Submitted int     `json:"submitted"`
	Kept      int     `json:"kept"`
	Spread    float64 `json:"spread"`
	// KeptSeeds lists the kept seed names in corpus order.
	KeptSeeds []string    `json:"kept_seeds"`
	Scores    []SeedScore `json:"scores"`
}

// BuildDistillReport runs Distill over scored features and assembles
// the report.
func BuildDistillReport(fs []*Features, spread float64, maxKeep int) *DistillReport {
	if spread <= 0 {
		spread = DefaultDistillSpread
	}
	keptIdx := Distill(fs, spread, maxKeep)
	keptSet := map[int]bool{}
	for _, i := range keptIdx {
		keptSet[i] = true
	}
	div := DiversityScores(fs)
	rep := &DistillReport{Submitted: len(fs), Kept: len(keptIdx), Spread: spread}
	for _, i := range keptIdx {
		rep.KeptSeeds = append(rep.KeptSeeds, fs[i].Name)
	}
	for i, f := range fs {
		rep.Scores = append(rep.Scores, SeedScore{
			Name:      f.Name,
			Diversity: div[i],
			Kept:      keptSet[i],
			Features:  f,
		})
	}
	return rep
}
