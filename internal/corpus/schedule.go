package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/jit"
)

// ScheduleMode selects how a campaign allocates its execution budget
// across seeds.
type ScheduleMode string

// Schedule modes.
const (
	// ScheduleOff walks seeds in cursor order — the pre-scheduling
	// campaign, byte-identical by construction.
	ScheduleOff ScheduleMode = "off"
	// SchedulePower allocates round slots across (seed, plan-mode) arms
	// by decayed-yield energy with UCB exploration.
	SchedulePower ScheduleMode = "power"
)

// ParseScheduleMode maps CLI/JSON spellings to a mode. "" and "off"
// both mean off, mirroring jit.ParsePlanMode.
func ParseScheduleMode(s string) (ScheduleMode, error) {
	switch s {
	case "", string(ScheduleOff):
		return ScheduleOff, nil
	case string(SchedulePower):
		return SchedulePower, nil
	}
	return "", fmt.Errorf("corpus: unknown schedule mode %q (want off or power)", s)
}

// PlanModesFor returns the plan-mode axis of the arm space for a
// campaign's plan-fuzz setting: every mode up to and including the
// configured one, so the scheduler can learn that (say) a seed yields
// only under fuzzed plans and spend its slots there.
func PlanModesFor(mode jit.PlanMode) []jit.PlanMode {
	switch mode {
	case jit.PlanMinimal:
		return []jit.PlanMode{jit.PlanDefault, jit.PlanMinimal}
	case jit.PlanFull:
		return []jit.PlanMode{jit.PlanDefault, jit.PlanMinimal, jit.PlanFull}
	default:
		return []jit.PlanMode{jit.PlanDefault}
	}
}

// Energy/selection tuning. Documented in DESIGN.md §13; changing any of
// these changes power-mode campaign results (they are part of the
// deterministic schedule definition, like a mutator's RNG draw order).
const (
	// energyFloor keeps zero-diversity seeds explorable.
	energyFloor = 0.2
	// findingWeight values one finding as this many units of
	// (saturated) OBV-delta yield.
	findingWeight = 5.0
	// yieldDecay multiplies every arm's accumulated yields once per
	// round boundary: recent evidence dominates.
	yieldDecay = 0.9
	// coverageStride reserves every coverageStride-th round slot as a
	// coverage slot: round-robin over live seeds at the configured
	// (topmost) plan mode. This floors every seed's sampling rate at
	// roughly 1/(stride x pool size) of the budget, so energy
	// exploitation can never starve a seed out of detection entirely —
	// bugs are reachable only from the seeds that exercise their
	// component, and a bandit with no coverage floor provably loses
	// them when their arms start cold.
	coverageStride = 2
	// scheduleSalt decorrelates the round-planning RNG stream from the
	// per-task mutation streams (cfg.Seed + cursor) and the plan
	// generator (planSeedSalt).
	scheduleSalt int64 = 0x73636864 // "schd"
	// scheduleRoundSalt spreads successive rounds across the seed space.
	scheduleRoundSalt int64 = 0x9E3779B9
)

// armState is one (seed, plan-mode) bandit arm.
type armState struct {
	seed    int // index into the campaign's seed pool
	mode    jit.PlanMode
	plays   int
	deltaY  float64 // decayed, saturated OBV-delta yield
	findY   float64 // decayed finding yield
	retired bool    // quarantined seed: energy pinned to zero
}

// genArm is one generator bandit arm: which seed source earns the
// between-round corpus-refresh slots. Arms exist only when the campaign
// runs the generator subsystem (EnableGenerators), so plain power
// checkpoints stay byte-identical to v3.
type genArm struct {
	id     string // generator ID ("randprog", "template", "style:<name>")
	plays  int
	deltaY float64
	findY  float64
}

// Scheduler is the campaign power schedule: a deterministic UCB-style
// bandit over (seed, plan-mode) arms. One round allocates len(seeds)
// slots (the same task count as cursor order, so budget accounting and
// the dead-pool check are unchanged); slots are sampled with
// replacement proportionally to arm energy x UCB bonus, from an RNG
// seeded by (campaign seed, round) — so the whole schedule is a pure
// function of the campaign seed and the merged observation prefix,
// which is what makes resume and fleet handoff byte-identical.
//
// Concurrency: PlanRound/Observe/RetireSeed run on the campaign merge
// goroutine. SeedAt/ArmFor are read by parallel workers, but only
// touch the immutable per-round plan and per-arm identity fields; the
// engine's round barrier guarantees no worker holds a task from a
// round whose plan is not yet computed.
type Scheduler struct {
	seed  int64
	names []string
	div   []float64
	modes []jit.PlanMode
	arms  []armState
	round int
	plan  []int // arm index per slot; len == len(names) once planned
	plays int
	// Generator arms (nil without the generator subsystem).
	gens     []genArm
	genPlays int
}

// NewScheduler builds a scheduler over the seed pool. names and
// diversity are parallel (DiversityScores output); modes is the plan
// axis (PlanModesFor).
func NewScheduler(names []string, diversity []float64, modes []jit.PlanMode, seed int64) *Scheduler {
	if len(modes) == 0 {
		modes = []jit.PlanMode{jit.PlanDefault}
	}
	s := &Scheduler{seed: seed, names: names, modes: modes}
	s.div = make([]float64, len(names))
	copy(s.div, diversity)
	s.arms = make([]armState, 0, len(names)*len(modes))
	for i := range names {
		for _, m := range modes {
			s.arms = append(s.arms, armState{seed: i, mode: m})
		}
	}
	return s
}

func (s *Scheduler) energy(a *armState) float64 {
	if a.retired {
		return 0
	}
	return (energyFloor + s.div[a.seed]) * (1 + a.deltaY + findingWeight*a.findY)
}

// StartRound makes round r's slot plan current. Crossing round
// boundaries decays every arm's yields once per round. Idempotent for
// the current round, including a plan restored from a checkpoint —
// which is exactly what makes mid-round resume byte-identical: the
// interrupted run's plan continues instead of being recomputed from
// mid-round statistics.
func (s *Scheduler) StartRound(r int) {
	if s.plan != nil && r == s.round {
		return
	}
	if s.plan != nil {
		for s.round < r {
			s.decayArms()
			s.round++
		}
	}
	s.round = r
	s.plan = s.computePlan(r)
}

func (s *Scheduler) decayArms() {
	for i := range s.arms {
		s.arms[i].deltaY *= yieldDecay
		s.arms[i].findY *= yieldDecay
	}
	for i := range s.gens {
		s.gens[i].deltaY *= yieldDecay
		s.gens[i].findY *= yieldDecay
	}
}

// EnableGenerators adds one bandit arm per seed generator, in the given
// (deterministic) order. Called once, before the first round.
func (s *Scheduler) EnableGenerators(ids []string) {
	s.gens = make([]genArm, len(ids))
	for i, id := range ids {
		s.gens[i] = genArm{id: id}
	}
}

// ObserveGen credits one finished task's yield to the generator that
// emitted its seed. Tasks on baseline-pool seeds (no generator
// provenance) never reach here.
func (s *Scheduler) ObserveGen(id string, delta float64, findings int) {
	for i := range s.gens {
		if s.gens[i].id != id {
			continue
		}
		a := &s.gens[i]
		a.plays++
		s.genPlays++
		if delta > 0 {
			a.deltaY += delta / (1 + delta)
		}
		a.findY += float64(findings)
		return
	}
}

// PickGen chooses the generator for refresh slot k: unplayed arms are
// drained round-robin (k indexes into them, so a multi-slot refresh
// spreads cold arms across slots instead of stacking one), then the arm
// with the best decayed yield x UCB score wins. Deterministic (argmax,
// no RNG draw) so refresh decisions replay identically from restored
// statistics.
func (s *Scheduler) PickGen(k int) string {
	var unplayed []int
	for i := range s.gens {
		if s.gens[i].plays == 0 {
			unplayed = append(unplayed, i)
		}
	}
	if len(unplayed) > 0 {
		return s.gens[unplayed[k%len(unplayed)]].id
	}
	best, bestScore := -1, math.Inf(-1)
	for i := range s.gens {
		a := &s.gens[i]
		score := (1 + a.deltaY + findingWeight*a.findY) / float64(a.plays) *
			(1 + math.Sqrt(2*math.Log(float64(1+s.genPlays))/float64(1+a.plays)))
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return ""
	}
	return s.gens[best].id
}

// ReplaceSeed renames seed index's arms to a refreshed (generated) seed
// and resets their statistics: a new program is a cold arm, and a
// quarantined slot comes back alive. The slot keeps its diversity prior
// (generated seeds are not re-scored mid-campaign).
func (s *Scheduler) ReplaceSeed(seedIndex int, name string) {
	s.names[seedIndex] = name
	for i := range s.arms {
		if s.arms[i].seed == seedIndex {
			a := &s.arms[i]
			a.plays, a.deltaY, a.findY, a.retired = 0, 0, 0, false
		}
	}
}

// computePlan builds the round's slot plan: coverage slots (every
// coverageStride-th slot, round-robin over live seeds at the topmost
// plan mode — the same task kind cursor order would run) interleaved
// with energy-sampled slots. The RNG is seeded from the campaign seed
// and the round alone — no carried RNG state — so a resumed scheduler
// with the same arm statistics plans identical future rounds; the
// coverage rotation is a pure function of the round and the live set.
func (s *Scheduler) computePlan(round int) []int {
	rng := rand.New(rand.NewSource((s.seed ^ scheduleSalt) + int64(round)*scheduleRoundSalt))
	scores := make([]float64, len(s.arms))
	total := 0.0
	for i := range s.arms {
		e := s.energy(&s.arms[i])
		if e > 0 {
			e *= 1 + math.Sqrt(2*math.Log(float64(1+s.plays))/float64(1+s.arms[i].plays))
		}
		scores[i] = e
		total += e
	}
	var live []int // seed indices with at least one unretired arm
	for i := range s.names {
		if !s.arms[i*len(s.modes)].retired {
			live = append(live, i)
		}
	}
	topMode := len(s.modes) - 1
	plan := make([]int, len(s.names))
	nCov := (len(plan) + coverageStride - 1) / coverageStride
	cov := 0
	for slot := range plan {
		if slot%coverageStride == 0 && len(live) > 0 {
			// Coverage slot: the rotation advances by the round's slot
			// count, so over successive rounds every live seed is visited
			// even when the pool is larger than one round's quota.
			seedIdx := live[(round*nCov+cov)%len(live)]
			cov++
			plan[slot] = seedIdx*len(s.modes) + topMode
			continue
		}
		if total <= 0 {
			// Every arm retired or at zero energy: degrade to cursor
			// order under the default plan so the dead-pool check can
			// run its course.
			plan[slot] = slot * len(s.modes)
			continue
		}
		x := rng.Float64() * total
		pick := -1
		for i, sc := range scores {
			if sc <= 0 {
				continue
			}
			pick = i
			x -= sc
			if x <= 0 {
				break
			}
		}
		plan[slot] = pick
	}
	return plan
}

// armAt returns the arm scheduled for a cursor position. The round's
// plan must be current (StartRound(cursor/len(seeds)) has run).
func (s *Scheduler) armAt(cursor int) *armState {
	if s.plan == nil {
		panic("corpus: Scheduler.armAt before StartRound")
	}
	return &s.arms[s.plan[cursor%len(s.names)]]
}

// ArmFor resolves a cursor position to its scheduled seed index and
// plan mode. Safe for concurrent use by engine workers within the
// planned round.
func (s *Scheduler) ArmFor(cursor int) (seedIndex int, mode jit.PlanMode) {
	a := s.armAt(cursor)
	return a.seed, a.mode
}

// Observe merges one finished task's yield into its arm: the
// final-mutant OBV delta (saturated into [0,1)) and the number of bug
// findings. Called for every merged task in cursor order, including
// skipped/faulted ones (zero yield, but the play still counts against
// the arm's UCB bonus).
func (s *Scheduler) Observe(cursor int, delta float64, findings int) {
	a := s.armAt(cursor)
	a.plays++
	s.plays++
	if delta > 0 {
		a.deltaY += delta / (1 + delta)
	}
	a.findY += float64(findings)
}

// RetireSeed zeroes the energy of every arm of a quarantined seed.
// Without this a high-energy pathological seed keeps winning slots
// that the harness then skips, burning rounds (the quarantine/schedule
// interplay fix).
func (s *Scheduler) RetireSeed(seedIndex int) {
	for i := range s.arms {
		if s.arms[i].seed == seedIndex {
			s.arms[i].retired = true
		}
	}
}

// ArmCount reports the arm-space size.
func (s *Scheduler) ArmCount() int { return len(s.arms) }

// TotalEnergy sums live arm energy — the /metrics gauge.
func (s *Scheduler) TotalEnergy() float64 {
	total := 0.0
	for i := range s.arms {
		total += s.energy(&s.arms[i])
	}
	return total
}

// ArmStats is one arm's serialized statistics (checkpoint v3).
type ArmStats struct {
	Seed         string  `json:"seed"`
	PlanMode     string  `json:"plan_mode"`
	Plays        int     `json:"plays,omitempty"`
	DeltaYield   float64 `json:"delta_yield,omitempty"`
	FindingYield float64 `json:"finding_yield,omitempty"`
	Retired      bool    `json:"retired,omitempty"`
}

// ScheduleState is the scheduler's checkpoint block: the current round,
// its already-sampled slot plan, and every arm's statistics. Restoring
// it continues the schedule byte-identically; the RNG needs no state
// (round planning reseeds from the campaign seed and round number).
type ScheduleState struct {
	Round int        `json:"round"`
	Plays int        `json:"plays,omitempty"`
	Plan  []int      `json:"plan"`
	Arms  []ArmStats `json:"arms"`
	// Generator arms (checkpoint v4); omitted without the generator
	// subsystem so v3 snapshots round-trip byte-identically.
	GenArms  []GenArmStats `json:"gen_arms,omitempty"`
	GenPlays int           `json:"gen_plays,omitempty"`
}

// GenArmStats is one generator arm's serialized statistics.
type GenArmStats struct {
	ID           string  `json:"id"`
	Plays        int     `json:"plays,omitempty"`
	DeltaYield   float64 `json:"delta_yield,omitempty"`
	FindingYield float64 `json:"finding_yield,omitempty"`
}

// State snapshots the scheduler, or nil if no round was planned yet.
func (s *Scheduler) State() *ScheduleState {
	if s == nil || s.plan == nil {
		return nil
	}
	st := &ScheduleState{
		Round: s.round,
		Plays: s.plays,
		Plan:  append([]int(nil), s.plan...),
	}
	for i := range s.arms {
		a := &s.arms[i]
		st.Arms = append(st.Arms, ArmStats{
			Seed:         s.names[a.seed],
			PlanMode:     string(a.mode),
			Plays:        a.plays,
			DeltaYield:   a.deltaY,
			FindingYield: a.findY,
			Retired:      a.retired,
		})
	}
	for i := range s.gens {
		a := &s.gens[i]
		st.GenArms = append(st.GenArms, GenArmStats{
			ID:           a.id,
			Plays:        a.plays,
			DeltaYield:   a.deltaY,
			FindingYield: a.findY,
		})
	}
	st.GenPlays = s.genPlays
	return st
}

// Restore loads a checkpointed schedule. The arm space must match the
// current configuration exactly — a changed seed pool or plan-fuzz
// mode makes the persisted statistics meaningless, so mismatches are
// errors, not silent drift.
func (s *Scheduler) Restore(st *ScheduleState) error {
	if st == nil {
		return nil
	}
	if len(st.Arms) != len(s.arms) {
		return fmt.Errorf("corpus: schedule state has %d arms, config builds %d (seed pool or plan-fuzz mode changed)", len(st.Arms), len(s.arms))
	}
	for i := range st.Arms {
		a, as := &s.arms[i], &st.Arms[i]
		if as.Seed != s.names[a.seed] || as.PlanMode != string(a.mode) {
			return fmt.Errorf("corpus: schedule state arm %d is %s/%s, config expects %s/%s",
				i, as.Seed, as.PlanMode, s.names[a.seed], a.mode)
		}
	}
	if len(st.Plan) != len(s.names) {
		return fmt.Errorf("corpus: schedule state plan has %d slots, want %d", len(st.Plan), len(s.names))
	}
	for _, p := range st.Plan {
		if p < 0 || p >= len(s.arms) {
			return fmt.Errorf("corpus: schedule state plan references arm %d of %d", p, len(s.arms))
		}
	}
	if st.GenArms != nil {
		if len(st.GenArms) != len(s.gens) {
			return fmt.Errorf("corpus: schedule state has %d generator arms, config builds %d (generator set changed)", len(st.GenArms), len(s.gens))
		}
		for i := range st.GenArms {
			if st.GenArms[i].ID != s.gens[i].id {
				return fmt.Errorf("corpus: schedule state generator arm %d is %s, config expects %s", i, st.GenArms[i].ID, s.gens[i].id)
			}
		}
	}
	for i := range st.Arms {
		a, as := &s.arms[i], &st.Arms[i]
		a.plays, a.deltaY, a.findY, a.retired = as.Plays, as.DeltaYield, as.FindingYield, as.Retired
	}
	for i := range st.GenArms {
		a, as := &s.gens[i], &st.GenArms[i]
		a.plays, a.deltaY, a.findY = as.Plays, as.DeltaYield, as.FindingYield
	}
	s.round = st.Round
	s.plays = st.Plays
	s.genPlays = st.GenPlays
	s.plan = append([]int(nil), st.Plan...)
	return nil
}
