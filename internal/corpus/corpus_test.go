package corpus

import (
	"strings"
	"testing"

	"repro/internal/jvm"
	"repro/internal/lang"
)

func TestPoolDeterministic(t *testing.T) {
	a := DefaultPool(10, 42)
	b := DefaultPool(10, 42)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("pool sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatalf("seed %d differs across identical generations", i)
		}
	}
	c := DefaultPool(10, 43)
	same := 0
	for i := range a {
		if a[i].Source == c[i].Source {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical pools")
	}
}

func TestAllSeedsParseCheckAndRun(t *testing.T) {
	for _, seed := range DefaultPool(25, 7) {
		p := seed.Parse()
		if err := lang.Check(p); err != nil {
			t.Fatalf("%s: %v\n%s", seed.Name, err, seed.Source)
		}
		// Seeds must run cleanly on the pure interpreter...
		ref, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{PureInterpreter: true})
		if err != nil {
			t.Fatalf("%s: %v", seed.Name, err)
		}
		if ref.Result.Exception != nil || ref.Result.TimedOut {
			t.Fatalf("%s: seed misbehaves: %s", seed.Name, ref.Result.OutputString())
		}
		// ...and agree with the bug-free JIT.
		opt, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{ForceCompile: true, Bugs: nil})
		if err != nil {
			t.Fatalf("%s: %v", seed.Name, err)
		}
		// The reference (mainline) carries bugs; what matters here is
		// that seeds themselves don't trigger any.
		if opt.Crashed() {
			t.Fatalf("%s: unmutated seed crashes the JVM: %v", seed.Name, opt.Result.Crash)
		}
		if ref.Result.OutputString() != opt.Result.OutputString() {
			t.Fatalf("%s: seed output differs across engines:\n%s\nvs\n%s",
				seed.Name, ref.Result.OutputString(), opt.Result.OutputString())
		}
	}
}

func TestTryParse(t *testing.T) {
	good := Seed{Name: "Good", Source: "class G { static void main() { print(1); } }"}
	if _, err := good.TryParse(); err != nil {
		t.Fatalf("TryParse(valid) = %v", err)
	}
	bad := Seed{Name: "Bad", Source: "class {"}
	_, err := bad.TryParse()
	if err == nil {
		t.Fatal("TryParse accepted a malformed program")
	}
	// The error names the seed, so a service can blame the submission.
	if got := err.Error(); !strings.Contains(got, "Bad") {
		t.Errorf("TryParse error %q does not name the seed", got)
	}
	// Parse delegates: same failure surfaces as the historical panic,
	// with the TryParse error as its message.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Parse(malformed) did not panic")
		}
		if msg, ok := r.(string); !ok || msg != err.Error() {
			t.Errorf("Parse panic = %v, want TryParse error %q", r, err)
		}
	}()
	bad.Parse()
}

func TestMotivatingSeedShape(t *testing.T) {
	p := lang.MustParse(MotivatingSeed)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	cl := p.Class("T")
	if cl == nil || cl.Method("foo") == nil {
		t.Fatal("motivating seed must define T.foo (the Listing 2 shape)")
	}
	if cl.FieldByName("f") == nil {
		t.Fatal("motivating seed needs an int field for EscapeAnalysis-evoke")
	}
}
