package corpus

import (
	"sync"

	"repro/internal/lang"
)

// DefaultParseCacheSize bounds a ParseCache unless the caller picks its
// own cap. Large enough that any single campaign's pool fits (service
// pools default to tens of seeds), small enough that a long-lived
// daemon sharing one cache across thousands of jobs cannot grow without
// limit.
const DefaultParseCacheSize = 1024

// ParseCache memoizes Seed.Parse so a campaign parses each seed once
// instead of once per round. Sharing the parsed program is sound: the
// fuzzer clones it before checking or mutating anything, cloning
// preserves statement IDs and the ID counter, and parsing is
// deterministic — so a cached program is indistinguishable from a
// fresh parse, and eviction is equally transparent (the next Parse
// just re-parses). Safe for concurrent use (parallel campaign
// workers, daemon runners sharing one cache).
//
// The cache is bounded: once it holds cap entries, inserting a new one
// evicts the oldest insertion (deterministic FIFO — eviction order
// depends only on first-insertion order, which for campaign use is
// cursor order).
type ParseCache struct {
	mu    sync.RWMutex
	m     map[string]*lang.Program
	order []string // insertion order, for FIFO eviction
	cap   int      // <= 0: unbounded
	stats ParseCacheStats
}

// ParseCacheStats counts cache traffic; surfaced in the daemon's
// /metrics as mopfuzzd_corpus_parsecache_*.
type ParseCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Size      int
}

// NewParseCache returns an empty cache with the default bound.
func NewParseCache() *ParseCache {
	return NewParseCacheSize(DefaultParseCacheSize)
}

// NewParseCacheSize returns an empty cache holding at most size parsed
// programs; size <= 0 means unbounded.
func NewParseCacheSize(size int) *ParseCache {
	return &ParseCache{m: map[string]*lang.Program{}, cap: size}
}

// Parse returns the seed's program, parsing at most once per distinct
// source text (until evicted). Like Seed.Parse it panics on malformed
// generated source.
func (c *ParseCache) Parse(s Seed) *lang.Program {
	if c == nil {
		return s.Parse()
	}
	c.mu.RLock()
	p := c.m[s.Source]
	c.mu.RUnlock()
	if p != nil {
		c.mu.Lock()
		c.stats.Hits++
		c.mu.Unlock()
		return p
	}
	parsed := s.Parse()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Keep the first stored instance so every caller shares one tree.
	if prior := c.m[s.Source]; prior != nil {
		c.stats.Hits++
		return prior
	}
	c.stats.Misses++
	c.m[s.Source] = parsed
	c.order = append(c.order, s.Source)
	for c.cap > 0 && len(c.m) > c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
		c.stats.Evictions++
	}
	return parsed
}

// Len reports the number of cached parses.
func (c *ParseCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats snapshots the traffic counters.
func (c *ParseCache) Stats() ParseCacheStats {
	if c == nil {
		return ParseCacheStats{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := c.stats
	st.Size = len(c.m)
	return st
}
