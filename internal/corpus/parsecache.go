package corpus

import (
	"sync"

	"repro/internal/lang"
)

// ParseCache memoizes Seed.Parse so a campaign parses each seed once
// instead of once per round. Sharing the parsed program is sound: the
// fuzzer clones it before checking or mutating anything, cloning
// preserves statement IDs and the ID counter, and parsing is
// deterministic — so a cached program is indistinguishable from a
// fresh parse. Safe for concurrent use (parallel campaign workers).
type ParseCache struct {
	mu sync.RWMutex
	m  map[string]*lang.Program
}

// NewParseCache returns an empty cache.
func NewParseCache() *ParseCache {
	return &ParseCache{m: map[string]*lang.Program{}}
}

// Parse returns the seed's program, parsing at most once per distinct
// source text. Like Seed.Parse it panics on malformed generated source.
func (c *ParseCache) Parse(s Seed) *lang.Program {
	if c == nil {
		return s.Parse()
	}
	c.mu.RLock()
	p := c.m[s.Source]
	c.mu.RUnlock()
	if p != nil {
		return p
	}
	parsed := s.Parse()
	c.mu.Lock()
	// Keep the first stored instance so every caller shares one tree.
	if prior := c.m[s.Source]; prior != nil {
		parsed = prior
	} else {
		c.m[s.Source] = parsed
	}
	c.mu.Unlock()
	return parsed
}

// Len reports the number of cached parses.
func (c *ParseCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
