package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// scoreCacheVersion guards the serialized score-cache schema.
const scoreCacheVersion = 1

// scoreCacheFile is the on-disk form: feature vectors keyed by source
// hash, so a renamed seed with identical source still hits.
type scoreCacheFile struct {
	Version  int                  `json:"version"`
	Features map[string]*Features `json:"features"`
}

// ScoreCache persists per-seed feature vectors across campaigns, so
// resumed runs and fleet workers re-profiling the same corpus skip the
// dry-runs. Entries are keyed by source hash; scoring is deterministic,
// so a hit is byte-identical to re-extraction and cache use never
// changes campaign results.
type ScoreCache struct {
	path string
	m    map[string]*Features
}

// LoadScoreCache opens (or initializes) the cache at path. A missing
// file is an empty cache; a corrupt or version-skewed file is treated
// as empty rather than failing the campaign — the cache is a pure
// accelerator, never a source of truth.
func LoadScoreCache(path string) *ScoreCache {
	c := &ScoreCache{path: path, m: map[string]*Features{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var f scoreCacheFile
	if json.Unmarshal(data, &f) != nil || f.Version != scoreCacheVersion {
		return c
	}
	for k, v := range f.Features {
		if v != nil {
			c.m[k] = v
		}
	}
	return c
}

// Get returns the cached features for a source hash, or nil.
func (c *ScoreCache) Get(sourceHash string) *Features {
	if c == nil {
		return nil
	}
	return c.m[sourceHash]
}

// Put stores a freshly extracted feature vector.
func (c *ScoreCache) Put(f *Features) {
	if c == nil || f == nil || f.SourceHash == "" {
		return
	}
	c.m[f.SourceHash] = f
}

// Len reports the number of cached vectors.
func (c *ScoreCache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.m)
}

// Save writes the cache atomically (temp file + rename). Keys are
// serialized in sorted order so the file is byte-stable.
func (c *ScoreCache) Save() error {
	if c == nil || c.path == "" {
		return nil
	}
	f := scoreCacheFile{Version: scoreCacheVersion, Features: map[string]*Features{}}
	for k, v := range c.m {
		f.Features[k] = v
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: score cache encode: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return fmt.Errorf("corpus: score cache dir: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("corpus: score cache write: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("corpus: score cache rename: %w", err)
	}
	return nil
}

// SortedHashes returns the cached source hashes in sorted order (test
// and debugging aid).
func (c *ScoreCache) SortedHashes() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
