// Package corpus generates the seed pool. Seeds are shaped like the
// OpenJDK regression tests the paper draws from (its Listing 2): a main
// that warms a workload method up through a hot loop, plus a few helper
// methods — plain programs with mutation points, not yet optimization-rich.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/lang"
)

// Seed is one corpus entry. Gen is generator provenance ("template",
// "style:<name>", "randprog") for seeds emitted by internal/generate;
// empty for the baseline pool.
type Seed struct {
	Name   string
	Source string
	Gen    string
}

// TryParse parses the seed's source, returning an error for malformed
// input. It is the entry point for user-supplied seeds (service job
// submissions, files handed to CLIs), where a bad program must surface
// as a rejection the caller can report — a 400 response, not a daemon
// fault.
func (s Seed) TryParse() (*lang.Program, error) {
	p, err := lang.Parse(s.Source)
	if err != nil {
		return nil, fmt.Errorf("corpus: seed %s: %v", s.Name, err)
	}
	return p, nil
}

// Parse returns the seed's program (panics on malformed generated source,
// which the generator's tests rule out). Generated-corpus paths keep this
// convenience; anything parsing untrusted source goes through TryParse.
func (s Seed) Parse() *lang.Program {
	p, err := s.TryParse()
	if err != nil {
		panic(err.Error())
	}
	return p
}

// DefaultPool deterministically generates count seeds from the given
// random seed.
func DefaultPool(count int, seed int64) []Seed {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Seed, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, Seed{
			Name:   fmt.Sprintf("Test%04d", i+1),
			Source: generate(rng),
		})
	}
	return out
}

// generate emits one regression-test-shaped program.
func generate(rng *rand.Rand) string {
	g := &gen{rng: rng}
	return g.program()
}

type gen struct {
	rng  *rand.Rand
	vars []string // int locals in scope inside work()
	n    int
}

func (g *gen) fresh(prefix string) string {
	g.n++
	return fmt.Sprintf("%s%d", prefix, g.n)
}

func (g *gen) pickVar() string {
	return g.vars[g.rng.Intn(len(g.vars))]
}

func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return g.pickVar()
		case 1:
			return fmt.Sprintf("%d", g.rng.Intn(97)+1)
		default:
			return "this.f"
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := ops[g.rng.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), op, g.intExpr(depth-1))
}

func (g *gen) stmt(b *strings.Builder, indent string) {
	switch g.rng.Intn(8) {
	case 0: // new local
		v := g.fresh("v")
		fmt.Fprintf(b, "%sint %s = %s;\n", indent, v, g.intExpr(2))
		g.vars = append(g.vars, v)
	case 1: // assignment
		fmt.Fprintf(b, "%s%s = %s;\n", indent, g.pickVar(), g.intExpr(2))
	case 2: // field update
		fmt.Fprintf(b, "%sthis.f = %s;\n", indent, g.intExpr(1))
	case 3: // branch
		fmt.Fprintf(b, "%sif (%s > %s) {\n", indent, g.pickVar(), g.intExpr(1))
		fmt.Fprintf(b, "%s  %s = %s + 1;\n", indent, g.pickVar(), g.pickVar())
		fmt.Fprintf(b, "%s}\n", indent)
	case 4: // small counted loop
		lv := g.fresh("k")
		trips := []int{3, 4, 6, 8, 16, 20, 32}[g.rng.Intn(7)]
		fmt.Fprintf(b, "%sfor (int %s = 0; %s < %d; %s += 1) {\n", indent, lv, lv, trips, lv)
		fmt.Fprintf(b, "%s  %s = %s + %s;\n", indent, g.pickVar(), g.pickVar(), lv)
		fmt.Fprintf(b, "%s}\n", indent)
	case 5: // call a helper
		fmt.Fprintf(b, "%s%s = T.helper(%s);\n", indent, g.pickVar(), g.intExpr(1))
	case 6: // array traffic (masked index: always in bounds)
		fmt.Fprintf(b, "%sarr[%s & 7] = %s;\n", indent, g.pickVar(), g.intExpr(1))
		fmt.Fprintf(b, "%s%s = %s + arr[%s & 7];\n", indent, g.pickVar(), g.pickVar(), g.pickVar())
	default: // accumulate
		fmt.Fprintf(b, "%s%s = %s %s %s;\n", indent, g.pickVar(), g.pickVar(),
			[]string{"+", "-", "^"}[g.rng.Intn(3)], g.intExpr(1))
	}
}

func (g *gen) program() string {
	g.vars = []string{"i", "acc"}
	g.n = 0
	trips := 1000 + g.rng.Intn(4)*250

	var body strings.Builder
	nStmts := 3 + g.rng.Intn(4)
	for s := 0; s < nStmts; s++ {
		g.stmt(&body, "    ")
	}

	var b strings.Builder
	b.WriteString("class T {\n")
	b.WriteString("  int f;\n")
	b.WriteString("  static int sf;\n")
	b.WriteString("  static void main() {\n")
	b.WriteString("    T t = new T();\n")
	fmt.Fprintf(&b, "    t.f = %d;\n", g.rng.Intn(50)+1)
	b.WriteString("    long total = 0;\n")
	fmt.Fprintf(&b, "    for (int i = 0; i < %d; i += 1) {\n", trips)
	b.WriteString("      total = total + t.work(i);\n")
	b.WriteString("    }\n")
	b.WriteString("    print(total);\n")
	b.WriteString("    print(t.f);\n")
	b.WriteString("    print(T.sf);\n")
	b.WriteString("  }\n")
	b.WriteString("  int work(int i) {\n")
	b.WriteString("    int acc = i;\n")
	b.WriteString("    int[] arr = new int[8];\n")
	b.WriteString(body.String())
	b.WriteString("    T.sf = T.sf + 1;\n")
	b.WriteString("    return acc;\n")
	b.WriteString("  }\n")
	b.WriteString("  static int helper(int x) { return x * 2 + 1; }\n")
	b.WriteString("  static int helper2(int x, int y) { return x + y; }\n")
	b.WriteString("}\n")
	return b.String()
}

// MotivatingSeed is the paper's Listing 2 shape: the smallest seed that
// reproduces the JDK-8312744 walk-through in the examples.
const MotivatingSeed = `
class T {
  int f;
  static int sf;
  static void main() {
    T t = new T();
    t.f = 7;
    long total = 0;
    for (int i = 0; i < 1500; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
  }
  int foo(int i) {
    int acc = i + this.f;
    return acc;
  }
  static int helper(int x) { return x * 2 + 1; }
}
`
