package corpus

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/jit"
	"repro/internal/lang"
)

const shapeSrc = `
class S {
  int f;
  static void main() {
    S s = new S();
    int[] a = new int[4];
    int acc = 0;
    for (int i = 0; i < 4; i += 1) {
      for (int k = 0; k < 2; k += 1) {
        acc = acc + s.work(i);
      }
      a[i] = acc;
    }
    synchronized (s) { acc = acc + s.f; }
    try { acc = acc + a[0]; } catch (e) { acc = 0; }
    print(acc);
  }
  int work(int x) { return x + this.f; }
}`

func TestStaticFeaturesCounts(t *testing.T) {
	p := lang.MustParse(shapeSrc)
	ft := StaticFeatures("S", shapeSrc, p)
	if ft.Methods != 2 {
		t.Errorf("Methods = %d, want 2", ft.Methods)
	}
	if ft.LoopSites != 2 {
		t.Errorf("LoopSites = %d, want 2", ft.LoopSites)
	}
	if ft.MaxLoopDepth < 2 {
		t.Errorf("MaxLoopDepth = %d, want >= 2", ft.MaxLoopDepth)
	}
	if ft.SyncSites != 1 || ft.TrySites != 1 {
		t.Errorf("Sync/Try = %d/%d, want 1/1", ft.SyncSites, ft.TrySites)
	}
	if ft.ArraySites == 0 {
		t.Error("ArraySites = 0 despite new int[4] and index sites")
	}
	if ft.CallSites == 0 {
		t.Error("CallSites = 0 despite s.work(i) calls")
	}
	if ft.SourceHash != HashSource(shapeSrc) {
		t.Error("SourceHash does not match HashSource")
	}
}

// TestStaticFeaturesByteStable: two extractions of the same pool must
// serialize byte-identically — the property that makes the score cache
// a pure accelerator.
func TestStaticFeaturesByteStable(t *testing.T) {
	extract := func() []byte {
		var fs []*Features
		for _, s := range DefaultPool(8, 11) {
			fs = append(fs, StaticFeatures(s.Name, s.Source, s.Parse()))
		}
		data, err := json.Marshal(fs)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := extract(), extract()
	if string(a) != string(b) {
		t.Fatal("feature extraction is not byte-stable across runs")
	}
}

func TestDistanceProperties(t *testing.T) {
	var fs []*Features
	for i, s := range DefaultPool(6, 3) {
		ft := StaticFeatures(s.Name, s.Source, s.Parse())
		// Synthesize distinct dynamic halves so all three blend terms
		// are exercised.
		ft.OBV = []int64{int64(i), int64(i * 2), 3}
		if i%2 == 0 {
			ft.Coverage = []string{"vm.go:1", "vm.go:2"}
		} else {
			ft.Coverage = []string{"vm.go:2", "vm.go:9"}
		}
		fs = append(fs, ft)
	}
	for i := range fs {
		if d := Distance(fs[i], fs[i]); d != 0 {
			t.Errorf("Distance(x, x) = %g, want 0", d)
		}
		for j := range fs {
			dij, dji := Distance(fs[i], fs[j]), Distance(fs[j], fs[i])
			if dij != dji {
				t.Errorf("asymmetric: d(%d,%d)=%g d(%d,%d)=%g", i, j, dij, j, i, dji)
			}
			if dij < 0 || dij >= 1 {
				t.Errorf("d(%d,%d) = %g out of [0,1)", i, j, dij)
			}
		}
	}
	div := DiversityScores(fs)
	if len(div) != len(fs) {
		t.Fatalf("DiversityScores length %d, want %d", len(div), len(fs))
	}
	for i, d := range div {
		if d <= 0 {
			t.Errorf("seed %d diversity %g, want > 0 over a varied pool", i, d)
		}
	}
	if one := DiversityScores(fs[:1]); one[0] != 0 {
		t.Errorf("single-seed diversity = %g, want 0", one[0])
	}
}

// TestDistillShrinksAndDeterministic: near-duplicate seeds collapse, the
// kept subset is strictly smaller, sorted, stable across calls, and
// capped by maxKeep.
func TestDistillShrinks(t *testing.T) {
	var fs []*Features
	for i, s := range DefaultPool(6, 3) {
		ft := StaticFeatures(s.Name, s.Source, s.Parse())
		ft.OBV = []int64{int64(i % 2), 5}
		fs = append(fs, ft)
	}
	// Append exact duplicates of seed 0: zero distance, must never add
	// to the kept set.
	for n := 0; n < 4; n++ {
		dup := *fs[0]
		fs = append(fs, &dup)
	}
	kept := Distill(fs, 0, 0)
	if len(kept) == 0 || len(kept) >= len(fs) {
		t.Fatalf("kept %d of %d, want a strict non-empty subset", len(kept), len(fs))
	}
	for i := 1; i < len(kept); i++ {
		if kept[i] <= kept[i-1] {
			t.Fatalf("kept indices not strictly ascending: %v", kept)
		}
	}
	if again := Distill(fs, 0, 0); !reflect.DeepEqual(kept, again) {
		t.Fatalf("distill not deterministic: %v vs %v", kept, again)
	}
	if capped := Distill(fs, 0, 2); len(capped) > 2 {
		t.Errorf("maxKeep=2 kept %d", len(capped))
	}
	rep := BuildDistillReport(fs, 0, 0)
	if rep.Submitted != len(fs) || rep.Kept != len(kept) || len(rep.Scores) != len(fs) {
		t.Errorf("report shape: %+v", rep)
	}
	if rep.Spread != DefaultDistillSpread {
		t.Errorf("report spread = %g, want default %g", rep.Spread, DefaultDistillSpread)
	}
}

func schedulerFixture(seed int64) *Scheduler {
	names := []string{"A", "B", "C", "D"}
	div := []float64{0.1, 0.4, 0.2, 0.3}
	return NewScheduler(names, div, PlanModesFor(jit.PlanFull), seed)
}

// playRounds drives a scheduler through n rounds with a deterministic
// observation pattern and returns every planned slot.
func playRounds(s *Scheduler, rounds int) []int {
	var all []int
	nSeeds := 4
	for r := 0; r < rounds; r++ {
		s.StartRound(r)
		for i := 0; i < nSeeds; i++ {
			cursor := r*nSeeds + i
			seedIdx, _ := s.ArmFor(cursor)
			all = append(all, s.plan[i])
			s.Observe(cursor, float64(seedIdx), seedIdx%2)
		}
	}
	return all
}

func TestSchedulerDeterministic(t *testing.T) {
	a := playRounds(schedulerFixture(7), 6)
	b := playRounds(schedulerFixture(7), 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical schedulers planned different slots")
	}
	c := playRounds(schedulerFixture(8), 6)
	if reflect.DeepEqual(a, c) {
		t.Error("different campaign seeds produced identical schedules")
	}
}

// TestSchedulerCoverageFloor: every live seed must keep appearing in
// plans — the coverage slots' guarantee that exploitation cannot starve
// a seed out of detection.
func TestSchedulerCoverageFloor(t *testing.T) {
	s := schedulerFixture(7)
	seen := map[int]bool{}
	for r := 0; r < 4; r++ {
		s.StartRound(r)
		for i := 0; i < 4; i++ {
			seedIdx, _ := s.ArmFor(r*4 + i)
			seen[seedIdx] = true
			s.Observe(r*4+i, 0, 0)
		}
	}
	for seedIdx := 0; seedIdx < 4; seedIdx++ {
		if !seen[seedIdx] {
			t.Errorf("seed %d never scheduled in 4 rounds", seedIdx)
		}
	}
}

func TestSchedulerStateRoundTrip(t *testing.T) {
	a := schedulerFixture(7)
	playRounds(a, 3)
	st := a.State()
	if st == nil {
		t.Fatal("State() nil after planning")
	}
	// JSON round-trip, as the checkpoint does.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back ScheduleState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	b := schedulerFixture(7)
	if err := b.Restore(&back); err != nil {
		t.Fatal(err)
	}
	// Both schedulers must plan identical futures.
	for r := 3; r < 6; r++ {
		a.StartRound(r)
		b.StartRound(r)
		if !reflect.DeepEqual(a.plan, b.plan) {
			t.Fatalf("round %d plans diverge after restore: %v vs %v", r, a.plan, b.plan)
		}
		for i := 0; i < 4; i++ {
			a.Observe(r*4+i, 1, 0)
			b.Observe(r*4+i, 1, 0)
		}
	}
}

func TestSchedulerRestoreValidation(t *testing.T) {
	a := schedulerFixture(7)
	playRounds(a, 2)
	good := a.State()

	wrongArms := *good
	wrongArms.Arms = good.Arms[:len(good.Arms)-1]
	if err := schedulerFixture(7).Restore(&wrongArms); err == nil {
		t.Error("arm-count mismatch accepted")
	}

	wrongName := *good
	wrongName.Arms = append([]ArmStats(nil), good.Arms...)
	wrongName.Arms[0].Seed = "Z"
	if err := schedulerFixture(7).Restore(&wrongName); err == nil {
		t.Error("arm seed-name mismatch accepted")
	}

	wrongPlan := *good
	wrongPlan.Plan = []int{0}
	if err := schedulerFixture(7).Restore(&wrongPlan); err == nil {
		t.Error("plan-length mismatch accepted")
	}

	badIdx := *good
	badIdx.Plan = append([]int(nil), good.Plan...)
	badIdx.Plan[0] = 999
	if err := schedulerFixture(7).Restore(&badIdx); err == nil {
		t.Error("out-of-range plan index accepted")
	}

	if err := schedulerFixture(7).Restore(nil); err != nil {
		t.Errorf("nil state should be a no-op, got %v", err)
	}
}

// TestSchedulerRetire: a retired seed's arms drop to zero energy and
// stop appearing in freshly planned rounds.
func TestSchedulerRetire(t *testing.T) {
	s := schedulerFixture(7)
	s.StartRound(0)
	before := s.TotalEnergy()
	s.RetireSeed(1)
	if after := s.TotalEnergy(); after >= before {
		t.Errorf("energy %g -> %g after retiring a seed, want a drop", before, after)
	}
	for r := 1; r < 5; r++ {
		for i := 0; i < 4; i++ {
			s.Observe((r-1)*4+i, 0, 0)
		}
		s.StartRound(r)
		for i := 0; i < 4; i++ {
			if seedIdx, _ := s.ArmFor(r*4 + i); seedIdx == 1 {
				t.Fatalf("round %d still schedules retired seed 1", r)
			}
		}
	}
}

func TestParseScheduleMode(t *testing.T) {
	for _, in := range []string{"", "off"} {
		if m, err := ParseScheduleMode(in); err != nil || m != ScheduleOff {
			t.Errorf("ParseScheduleMode(%q) = %v, %v", in, m, err)
		}
	}
	if m, err := ParseScheduleMode("power"); err != nil || m != SchedulePower {
		t.Errorf("ParseScheduleMode(power) = %v, %v", m, err)
	}
	if _, err := ParseScheduleMode("bogus"); err == nil {
		t.Error("bogus schedule mode accepted")
	}
}

func TestPlanModesFor(t *testing.T) {
	if got := PlanModesFor(jit.PlanDefault); len(got) != 1 || got[0] != jit.PlanDefault {
		t.Errorf("PlanModesFor(default) = %v", got)
	}
	if got := PlanModesFor(jit.PlanFull); len(got) != 3 || got[2] != jit.PlanFull {
		t.Errorf("PlanModesFor(full) = %v", got)
	}
}

// TestParseCacheBounded: the FIFO bound evicts the oldest insertion and
// the stats count hits, misses, and evictions.
func TestParseCacheBounded(t *testing.T) {
	seeds := DefaultPool(3, 5)
	c := NewParseCacheSize(2)
	c.Parse(seeds[0])
	c.Parse(seeds[1])
	c.Parse(seeds[0]) // hit
	c.Parse(seeds[2]) // evicts seeds[0]
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 1 || st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %+v, want 3 misses, 1 hit, 1 eviction, size 2", st)
	}
	// The evicted seed re-parses (a miss), transparently.
	c.Parse(seeds[0])
	if st := c.Stats(); st.Misses != 4 || st.Evictions != 2 {
		t.Errorf("post-reinsert stats = %+v", st)
	}
	var nilCache *ParseCache
	if p := nilCache.Parse(seeds[0]); p == nil {
		t.Error("nil cache must fall through to Parse")
	}
	if st := nilCache.Stats(); st != (ParseCacheStats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestScoreCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "scores.json")
	c := LoadScoreCache(path)
	if c.Len() != 0 {
		t.Fatalf("missing file loaded %d entries", c.Len())
	}
	for _, s := range DefaultPool(3, 9) {
		c.Put(StaticFeatures(s.Name, s.Source, s.Parse()))
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(path)
	if string(first) != string(second) {
		t.Error("score cache file not byte-stable across saves")
	}

	back := LoadScoreCache(path)
	if back.Len() != c.Len() {
		t.Fatalf("reloaded %d entries, want %d", back.Len(), c.Len())
	}
	for _, h := range c.SortedHashes() {
		if !reflect.DeepEqual(back.Get(h), c.Get(h)) {
			t.Errorf("entry %s drifted across save/load", h)
		}
	}

	// Corrupt file: empty cache, no error.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := LoadScoreCache(path); got.Len() != 0 {
		t.Errorf("corrupt cache loaded %d entries", got.Len())
	}
}
