package triage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// storeVersion guards the on-disk record schema; records with another
// version are rejected rather than silently misread, mirroring the
// checkpoint format's versioning.
const storeVersion = 1

const (
	dataFile  = "findings.jsonl"
	indexFile = "index.json"
)

// Occurrence is one sighting of a signature: where in which campaign
// the finding surfaced.
type Occurrence struct {
	SeedName    string `json:"seed"`
	Target      string `json:"target"`
	Round       int    `json:"round"`
	Cursor      int    `json:"cursor"`
	AtExecution int    `json:"at_execution"`
	// GeneratorID names the generator that emitted the seed ("template",
	// "style:<name>", ...). Empty for baseline-pool seeds, keeping
	// pre-generator records byte-identical.
	GeneratorID string `json:"generator_id,omitempty"`
	ChainLen    int    `json:"chain_len"`
	// Time is a Unix timestamp for human-facing first/last-seen; the
	// worker's clock seam keeps it deterministic under test.
	Time int64 `json:"time,omitempty"`
}

// Entry is the aggregated state of one signature: counts, sighting
// range, affected targets, the raw reproducer, and — once the reduction
// pipeline has run — the minimized one.
type Entry struct {
	Key     string     `json:"key"`
	Sig     Signature  `json:"sig"`
	Count   int        `json:"count"`
	First   Occurrence `json:"first"`
	Last    Occurrence `json:"last"`
	Targets []string   `json:"targets"` // sorted set of spec names
	// Raw is the unreduced reproducer (first sighting's mutant).
	Raw      string  `json:"raw,omitempty"`
	RawStmts int     `json:"raw_stmts,omitempty"`
	OBV      []int64 `json:"obv,omitempty"`
	// Min is the minimized reproducer; empty until reduction succeeds.
	Min          string `json:"min,omitempty"`
	MinStmts     int    `json:"min_stmts,omitempty"`
	ReduceRounds int    `json:"reduce_rounds,omitempty"`
	ReduceProbes int    `json:"reduce_probes,omitempty"`
	// Quarantine notes a reduction the harness had to contain (panic,
	// watchdog timeout); the entry keeps its raw reproducer.
	Quarantine string `json:"quarantine,omitempty"`
}

// record is one JSONL line. "entry" introduces (or, after compaction,
// consolidates) a signature; "sighting" adds occurrences to an existing
// one; "reduced" and "quarantined" report the reduction pipeline's
// outcome. Replaying the records in order rebuilds the entry table, so
// the log is the single source of truth and the index a disposable
// cache.
type record struct {
	V       int         `json:"v"`
	Kind    string      `json:"kind"`
	Key     string      `json:"key,omitempty"`
	Entry   *Entry      `json:"entry,omitempty"`
	Occ     *Occurrence `json:"occ,omitempty"`
	Count   int         `json:"count,omitempty"`
	Targets []string    `json:"targets,omitempty"`
	Program string      `json:"program,omitempty"`
	Stmts   int         `json:"stmts,omitempty"`
	Rounds  int         `json:"rounds,omitempty"`
	Probes  int         `json:"probes,omitempty"`
	Note    string      `json:"note,omitempty"`
}

// index is the derived lookup structure persisted alongside the log. It
// is a pure cache: Open trusts it only when its record count matches
// the log, and rebuilds it from the log otherwise (missing, stale, or
// corrupt index files are never fatal).
type index struct {
	Version int               `json:"version"`
	Records int               `json:"records"`
	Order   []string          `json:"order"`
	Entries map[string]*Entry `json:"entries"`
}

// Store is the persistent findings database. All methods are safe for
// concurrent use; appends are single JSONL lines on an O_APPEND handle,
// so a crash mid-write loses at most the trailing partial record, which
// Open tolerates.
type Store struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	entries map[string]*Entry
	order   []string // keys in first-seen order
	records int      // complete records on disk
}

// Open opens (creating if needed) the store rooted at dir and rebuilds
// its in-memory state from the index or, when that is stale, the log.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("triage: open store: %w", err)
	}
	s := &Store{dir: dir, entries: map[string]*Entry{}}
	validLen, err := s.load()
	if err != nil {
		return nil, err
	}
	if validLen >= 0 {
		// A crash left a partial trailing record; drop it so the next
		// append starts on a clean line instead of corrupting it further.
		if err := os.Truncate(s.path(dataFile), validLen); err != nil {
			return nil, fmt.Errorf("triage: trim partial record: %w", err)
		}
	}
	f, err := os.OpenFile(s.path(dataFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("triage: open store log: %w", err)
	}
	s.f = f
	return s, nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// load rebuilds entries from index.json when fresh, else by replaying
// findings.jsonl. It returns the byte length of the valid log prefix
// when a partial trailing record must be trimmed, and -1 otherwise.
func (s *Store) load() (validLen int64, err error) {
	data, err := os.ReadFile(s.path(dataFile))
	if os.IsNotExist(err) {
		return -1, nil
	}
	if err != nil {
		return -1, fmt.Errorf("triage: read store log: %w", err)
	}
	validLen = -1
	if n := len(data); n > 0 && data[n-1] != '\n' {
		// A crash interrupted the last append; only the complete,
		// newline-terminated prefix is trustworthy.
		validLen = int64(bytes.LastIndexByte(data, '\n') + 1)
		data = data[:validLen]
	}
	complete := bytes.Count(data, []byte{'\n'})
	if ix := s.loadIndex(); ix != nil && ix.Records == complete {
		s.entries, s.order, s.records = ix.Entries, ix.Order, ix.Records
		return validLen, nil
	}
	for i, ln := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(ln)) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(ln, &rec); err != nil {
			return -1, fmt.Errorf("triage: store log record %d corrupt: %w", i+1, err)
		}
		if rec.V != storeVersion {
			return -1, fmt.Errorf("triage: store log record %d has version %d, want %d", i+1, rec.V, storeVersion)
		}
		if err := s.apply(&rec); err != nil {
			return -1, fmt.Errorf("triage: store log record %d: %w", i+1, err)
		}
		s.records++
	}
	return validLen, nil
}

func (s *Store) loadIndex() *index {
	data, err := os.ReadFile(s.path(indexFile))
	if err != nil {
		return nil
	}
	var ix index
	if err := json.Unmarshal(data, &ix); err != nil || ix.Version != storeVersion || ix.Entries == nil {
		return nil
	}
	if len(ix.Order) != len(ix.Entries) {
		return nil
	}
	for _, k := range ix.Order {
		if ix.Entries[k] == nil {
			return nil
		}
	}
	return &ix
}

// apply replays one record into the entry table.
func (s *Store) apply(rec *record) error {
	switch rec.Kind {
	case "entry":
		if rec.Entry == nil || rec.Entry.Key == "" {
			return fmt.Errorf("entry record without entry")
		}
		e := *rec.Entry
		if _, exists := s.entries[e.Key]; !exists {
			s.order = append(s.order, e.Key)
		}
		s.entries[e.Key] = &e
	case "sighting":
		e := s.entries[rec.Key]
		if e == nil {
			return fmt.Errorf("sighting for unknown key %q", rec.Key)
		}
		n := rec.Count
		if n <= 0 {
			n = 1
		}
		e.Count += n
		if rec.Occ != nil {
			e.Last = *rec.Occ
			e.Targets = addTarget(e.Targets, rec.Occ.Target)
		}
		for _, t := range rec.Targets {
			e.Targets = addTarget(e.Targets, t)
		}
	case "reduced":
		e := s.entries[rec.Key]
		if e == nil {
			return fmt.Errorf("reduction for unknown key %q", rec.Key)
		}
		e.Min, e.MinStmts = rec.Program, rec.Stmts
		e.ReduceRounds, e.ReduceProbes = rec.Rounds, rec.Probes
	case "quarantined":
		e := s.entries[rec.Key]
		if e == nil {
			return fmt.Errorf("quarantine for unknown key %q", rec.Key)
		}
		e.Quarantine = rec.Note
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return nil
}

// append writes one record to the log and replays it in memory.
func (s *Store) append(rec *record) error {
	rec.V = storeVersion
	if err := s.apply(rec); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("triage: encode record: %w", err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("triage: append record: %w", err)
	}
	s.records++
	return nil
}

// Observe records one finding occurrence. The first sighting of a
// signature appends a full entry (with the raw reproducer) and returns
// novel=true — the caller's cue to run reduction; later sightings
// append a lightweight occurrence and return novel=false.
func (s *Store) Observe(sig Signature, occ Occurrence, raw string, rawStmts int, obv []int64) (novel bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := sig.Key()
	if _, ok := s.entries[key]; ok {
		return false, s.append(&record{Kind: "sighting", Key: key, Occ: &occ})
	}
	e := &Entry{
		Key: key, Sig: sig, Count: 1,
		First: occ, Last: occ,
		Targets:  []string{occ.Target},
		Raw:      raw,
		RawStmts: rawStmts,
		OBV:      obv,
	}
	return true, s.append(&record{Kind: "entry", Entry: e})
}

// Reduced stores the minimized reproducer for a signature.
func (s *Store) Reduced(key, program string, stmts, rounds, probes int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(&record{Kind: "reduced", Key: key, Program: program, Stmts: stmts, Rounds: rounds, Probes: probes})
}

// Quarantine notes that reduction for the signature was contained by
// the harness (panic or watchdog timeout); the entry keeps its raw
// reproducer.
func (s *Store) Quarantine(key, note string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(&record{Kind: "quarantined", Key: key, Note: note})
}

// Get returns a copy of the entry for key, or nil.
func (s *Store) Get(key string) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return nil
	}
	cp := *e
	return &cp
}

// Len reports the number of distinct signatures.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Entries returns entry copies in first-seen order.
func (s *Store) Entries() []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Entry, 0, len(s.order))
	for _, k := range s.order {
		cp := *s.entries[k]
		out = append(out, &cp)
	}
	return out
}

// MinimizedPrograms yields the reduced reproducer of every successfully
// minimized finding, in first-seen order, invoking fn with the entry
// key and the minimized source. Quarantined and not-yet-reduced entries
// are skipped. This is the template-mining feed: callers get the
// store's minimized corpus without re-reading the JSONL log by hand,
// and the deterministic order keeps template sets reproducible.
// Iteration stops early when fn returns false.
func (s *Store) MinimizedPrograms(fn func(key, program string) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range s.order {
		e := s.entries[k]
		if e.Min == "" || e.Quarantine != "" {
			continue
		}
		if !fn(k, e.Min) {
			return
		}
	}
}

// Compact rewrites the log to one consolidated entry record per
// signature (atomically: temp file + rename) and refreshes the index.
// Sighting trails from long campaigns collapse; nothing observable
// through Entries changes.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	for _, k := range s.order {
		line, err := json.Marshal(&record{V: storeVersion, Kind: "entry", Entry: s.entries[k]})
		if err != nil {
			return fmt.Errorf("triage: compact encode: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := s.path(dataFile + ".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("triage: compact write: %w", err)
	}
	if err := os.Rename(tmp, s.path(dataFile)); err != nil {
		return fmt.Errorf("triage: compact rename: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("triage: compact reopen: %w", err)
	}
	f, err := os.OpenFile(s.path(dataFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("triage: compact reopen: %w", err)
	}
	s.f = f
	s.records = len(s.order)
	return s.writeIndex()
}

// Merge folds another store's entries into this one: novel signatures
// are appended whole (counts, sighting range, and reduction preserved);
// known ones merge their occurrence counts, targets, and — when this
// store lacks one — the minimized reproducer. Returns the number of
// novel signatures added.
func (s *Store) Merge(src *Store) (added int, err error) {
	for _, e := range src.Entries() {
		s.mu.Lock()
		dst, known := s.entries[e.Key]
		if !known {
			if err := s.append(&record{Kind: "entry", Entry: e}); err != nil {
				s.mu.Unlock()
				return added, err
			}
			added++
			s.mu.Unlock()
			continue
		}
		last := e.Last
		if err := s.append(&record{Kind: "sighting", Key: e.Key, Count: e.Count, Occ: &last, Targets: e.Targets}); err != nil {
			s.mu.Unlock()
			return added, err
		}
		needMin := dst.Min == "" && e.Min != ""
		s.mu.Unlock()
		if needMin {
			if err := s.Reduced(e.Key, e.Min, e.MinStmts, e.ReduceRounds, e.ReduceProbes); err != nil {
				return added, err
			}
		}
	}
	return added, nil
}

// Flush persists the index cache. The log is always durable (every
// append hits the file); flushing only speeds up the next Open.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeIndex()
}

// Close flushes the index and releases the log handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	werr := s.writeIndex()
	cerr := s.f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeIndex persists the derived index atomically. Callers hold s.mu.
func (s *Store) writeIndex() error {
	ix := index{Version: storeVersion, Records: s.records, Order: s.order, Entries: s.entries}
	data, err := json.MarshalIndent(&ix, "", "  ")
	if err != nil {
		return fmt.Errorf("triage: encode index: %w", err)
	}
	tmp := s.path(indexFile + ".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("triage: write index: %w", err)
	}
	if err := os.Rename(tmp, s.path(indexFile)); err != nil {
		return fmt.Errorf("triage: write index: %w", err)
	}
	return nil
}

func addTarget(ts []string, t string) []string {
	if t == "" {
		return ts
	}
	i := sort.SearchStrings(ts, t)
	if i < len(ts) && ts[i] == t {
		return ts
	}
	ts = append(ts, "")
	copy(ts[i+1:], ts[i:])
	ts[i] = t
	return ts
}
