package triage

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/lang"
	"repro/internal/reduce"
)

// WorkerConfig tunes the async triage worker.
type WorkerConfig struct {
	// Store receives deduplicated findings; required.
	Store *Store
	// Executor runs reduction probes (nil = in-process).
	Executor exec.Executor
	// QueueSize bounds the finding queue (default 64). A full queue makes
	// Submit block — triage applies backpressure rather than dropping
	// findings silently.
	QueueSize int
	// ReduceTimeout is the wall-clock watchdog per reduction (default
	// 60s). A reduction that hangs past it is abandoned and the finding
	// quarantined; the cancelled context drains the abandoned goroutine.
	ReduceTimeout time.Duration
	// ReduceOptions tunes the syntax-guided reduction.
	ReduceOptions reduce.Options
	// MaxProbeSteps bounds each reduction probe (0 = pipeline default).
	MaxProbeSteps int64
	// Now supplies occurrence timestamps (test seam; nil = wall clock).
	Now func() int64
}

// Stats counts what the worker did with the findings it consumed.
type Stats struct {
	Received    int // findings submitted
	Novel       int // new signatures stored
	Duplicates  int // findings deduplicated against existing signatures
	Reduced     int // novel signatures successfully minimized
	Quarantined int // reductions the harness had to contain (panic/hang)
	Errors      int // store or reduction errors
	Dropped     int // findings rejected after shutdown
}

// Worker consumes campaign findings asynchronously: each one is
// signatured and deduplicated against the store, and novel signatures
// are reduced exactly once, under a supervisor watchdog so a
// pathological reduction is quarantined instead of wedging the
// campaign. One goroutine processes findings in submission order, so a
// deterministic campaign yields a deterministic store.
type Worker struct {
	cfg WorkerConfig
	sup *harness.Supervisor
	ch  chan *core.Finding

	mu    sync.Mutex
	stats Stats

	startOnce sync.Once
	done      chan struct{}

	// sendMu serializes Submit (read side) against Close (write side) so
	// a late Submit observes closed instead of sending on a closed
	// channel.
	sendMu sync.RWMutex
	closed bool
}

// NewWorker builds a triage worker over the given store.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("triage: worker needs a store")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.ReduceTimeout == 0 {
		cfg.ReduceTimeout = 60 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().Unix() }
	}
	sup, err := harness.New(harness.Config{ExecTimeout: cfg.ReduceTimeout})
	if err != nil {
		return nil, err
	}
	return &Worker{
		cfg:  cfg,
		sup:  sup,
		ch:   make(chan *core.Finding, cfg.QueueSize),
		done: make(chan struct{}),
	}, nil
}

// Start launches the consumer goroutine. Cancelling ctx makes every
// queued reduction fail fast (the supervisor's watchdog context is
// derived from it), so the queue drains promptly on shutdown; intake
// still requires Close. Start must be called before findings can drain.
func (w *Worker) Start(ctx context.Context) {
	w.startOnce.Do(func() { go w.loop(ctx) })
}

// Submit hands one finding to the worker, blocking when the queue is
// full (backpressure, not loss). Returns false when the worker has been
// closed and the finding was dropped.
func (w *Worker) Submit(f core.Finding) bool {
	w.sendMu.RLock()
	defer w.sendMu.RUnlock()
	if w.closed {
		w.count(func(s *Stats) { s.Dropped++ })
		return false
	}
	w.ch <- &f
	return true
}

// Close stops intake, blocks until every queued finding is processed,
// and flushes the store index.
func (w *Worker) Close() error {
	w.sendMu.Lock()
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
	w.sendMu.Unlock()
	<-w.done
	return w.cfg.Store.Flush()
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

func (w *Worker) loop(ctx context.Context) {
	defer close(w.done)
	for f := range w.ch {
		w.process(ctx, f)
	}
}

func (w *Worker) process(ctx context.Context, f *core.Finding) {
	w.mu.Lock()
	w.stats.Received++
	w.mu.Unlock()

	sig := Compute(f)
	key := sig.Key()
	occ := Occurrence{
		SeedName:    f.SeedName,
		Target:      f.Target.Name(),
		Round:       f.Round,
		Cursor:      f.Cursor,
		AtExecution: f.AtExecution,
		GeneratorID: f.GeneratorID,
		ChainLen:    f.ChainLen,
		Time:        w.cfg.Now(),
	}
	raw, rawStmts := "", 0
	if f.Program != nil {
		raw, rawStmts = lang.Format(f.Program), lang.CountStmts(f.Program)
	}
	var obv []int64
	if f.OBV.Total() > 0 {
		obv = f.OBV.Slice()
	}
	novel, err := w.cfg.Store.Observe(sig, occ, raw, rawStmts, obv)
	if err != nil {
		w.count(func(s *Stats) { s.Errors++ })
		return
	}
	if !novel {
		w.count(func(s *Stats) { s.Duplicates++ })
		return
	}
	w.count(func(s *Stats) { s.Novel++ })
	if f.Program == nil || f.Bug == nil {
		return // nothing to reduce (unattributed or programless finding)
	}

	// Reduce exactly once per novel signature, under supervision: a
	// panicking or hanging reduction becomes a quarantine note on the
	// entry instead of taking down the campaign, and the entry keeps its
	// raw reproducer.
	out := w.sup.Do(ctx, harness.Task{
		ID:       "triage:" + key,
		SeedName: f.SeedName,
		Round:    f.Round,
		Source:   raw,
		Run: func(tctx context.Context) (any, error) {
			pipe := &reduce.Pipeline{
				Executor: w.cfg.Executor,
				MaxSteps: w.cfg.MaxProbeSteps,
				Options:  w.cfg.ReduceOptions,
			}
			return pipe.ReduceFinding(tctx, f.Program, f.Bug, f.Target), nil
		},
	})
	switch {
	case out.Fault != nil:
		note := string(out.Fault.Class) + ": " + out.Fault.Message
		if err := w.cfg.Store.Quarantine(key, note); err != nil {
			w.count(func(s *Stats) { s.Errors++ })
			return
		}
		w.count(func(s *Stats) { s.Quarantined++ })
	case out.Err != nil:
		if ctx.Err() != nil {
			return // shutdown, not a reduction failure
		}
		w.count(func(s *Stats) { s.Errors++ })
	default:
		res := out.Value.(*reduce.Result)
		if err := w.cfg.Store.Reduced(key, lang.Format(res.Program), res.StmtsAfter, res.Rounds, res.TestedCands); err != nil {
			w.count(func(s *Stats) { s.Errors++ })
			return
		}
		w.count(func(s *Stats) { s.Reduced++ })
	}
}

func (w *Worker) count(f func(*Stats)) {
	w.mu.Lock()
	f(&w.stats)
	w.mu.Unlock()
}
