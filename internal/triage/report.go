package triage

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/profile"
)

// reportVersion guards the report JSON schema consumed by CI.
const reportVersion = 1

// ReportEntry is one deduplicated bug in a triage report.
type ReportEntry struct {
	Key           string `json:"key"`
	Domain        string `json:"domain"`
	BugID         string `json:"bug_id,omitempty"`
	Component     string `json:"component,omitempty"`
	DivergentPair string `json:"divergent_pair,omitempty"`
	Count         int    `json:"count"`
	// Targets is the sorted set of specs the bug was seen on.
	Targets []string `json:"targets"`
	// FirstSeed/FirstRound locate the first sighting; LastExecution the
	// latest one on the campaign time axis.
	FirstSeed     string `json:"first_seed,omitempty"`
	FirstRound    int    `json:"first_round"`
	LastExecution int    `json:"last_execution"`
	// RawStmts is the unreduced reproducer size; MinStmts the minimized
	// one, falling back to RawStmts while the signature is unreduced —
	// so min_stmts <= raw_stmts is an invariant, not a hope.
	RawStmts int  `json:"raw_stmts"`
	MinStmts int  `json:"min_stmts"`
	Reduced  bool `json:"reduced"`
	// Quarantined notes a reduction the harness contained (panic/hang).
	Quarantined string `json:"quarantined,omitempty"`
	// OBVFingerprint renders the profile behaviors active at failure.
	OBVFingerprint string `json:"obv_fingerprint,omitempty"`
	// Program is the best reproducer available: minimized when reduction
	// succeeded, raw otherwise.
	Program string `json:"program,omitempty"`
}

// Report is the triage summary for a findings store: every deduplicated
// signature with its best reproducer, plus aggregate counts.
type Report struct {
	Version     int           `json:"version"`
	Signatures  int           `json:"signatures"`
	Occurrences int           `json:"occurrences"`
	Reduced     int           `json:"reduced"`
	Quarantined int           `json:"quarantined"`
	Entries     []ReportEntry `json:"entries"`
}

// BuildReport renders the store's current state as a report, entries in
// first-seen order.
func BuildReport(s *Store) *Report {
	r := &Report{Version: reportVersion, Entries: []ReportEntry{}}
	for _, e := range s.Entries() {
		re := ReportEntry{
			Key:           e.Key,
			Domain:        e.Sig.Domain,
			BugID:         e.Sig.BugID,
			Component:     e.Sig.Component,
			DivergentPair: e.Sig.DivergentPair,
			Count:         e.Count,
			Targets:       e.Targets,
			FirstSeed:     e.First.SeedName,
			FirstRound:    e.First.Round,
			LastExecution: e.Last.AtExecution,
			RawStmts:      e.RawStmts,
			MinStmts:      e.RawStmts,
			Quarantined:   e.Quarantine,
			Program:       e.Raw,
		}
		if e.Min != "" {
			re.MinStmts, re.Reduced, re.Program = e.MinStmts, true, e.Min
			r.Reduced++
		}
		if e.Quarantine != "" {
			r.Quarantined++
		}
		if len(e.OBV) == profile.NumBehaviors {
			if v, err := profile.OBVFromSlice(e.OBV); err == nil && v.Total() > 0 {
				re.OBVFingerprint = v.String()
			}
		}
		r.Signatures++
		r.Occurrences += e.Count
		r.Entries = append(r.Entries, re)
	}
	return r
}

// JSON renders the report for machines (CI assertions, dashboards).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the canonical machine encoding — indented JSON plus a
// trailing newline. It is the single serialization behind both
// `triage report -json` and the service daemon's /jobs/{id}/findings
// endpoint, so CLI consumers and API consumers parse one format.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Text renders the report for humans.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "triage report: %d signature(s), %d occurrence(s), %d reduced, %d quarantined\n",
		r.Signatures, r.Occurrences, r.Reduced, r.Quarantined)
	for _, e := range r.Entries {
		id := e.BugID
		if id == "" {
			id = e.DivergentPair
		}
		if id == "" {
			id = "<unattributed>"
		}
		fmt.Fprintf(&b, "  %-14s %-26s %-12s ×%-3d targets=%s",
			id, e.Component, e.Domain, e.Count, strings.Join(e.Targets, ","))
		switch {
		case e.Reduced:
			fmt.Fprintf(&b, " reduced %d -> %d stmts", e.RawStmts, e.MinStmts)
		case e.Quarantined != "":
			fmt.Fprintf(&b, " reduction quarantined (%s)", e.Quarantined)
		default:
			fmt.Fprintf(&b, " raw %d stmts", e.RawStmts)
		}
		fmt.Fprintf(&b, "\n    first: seed %s round %d; last at execution %d\n",
			e.FirstSeed, e.FirstRound, e.LastExecution)
		if e.OBVFingerprint != "" {
			fmt.Fprintf(&b, "    obv: %s\n", e.OBVFingerprint)
		}
	}
	return b.String()
}
