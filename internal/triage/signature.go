// Package triage turns raw campaign findings into a deduplicated,
// minimized, persistent bug corpus — the paper's "test-case reduction
// and manual triage" step, made first-class. Three pieces compose:
//
//   - Signature: a deterministic root-cause key over a finding's
//     failure domain, blamed component, catalog bug ID, and divergence
//     site, so equal root causes collide across seeds, mutation chains,
//     campaign runs, and execution backends.
//   - Store: a crash-safe on-disk findings database (append-only JSONL
//     plus a rebuildable index) supporting open/append/compact/merge,
//     so repeated and resumed campaigns accumulate one corpus.
//   - Worker: an async, bounded, fault-contained pipeline that consumes
//     findings as the campaign merges them, dedups against the store,
//     and runs reduction exactly once per new signature under a
//     harness watchdog — a panicking or hanging reduction quarantines
//     that finding without stopping the campaign.
//
// The signature design follows the directed bug-localization line of
// work (Lim & Debray): optimization-pass blame plus the divergence site
// is a stable per-bug key for JIT defects.
package triage

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/profile"
)

// Signature is the deduplication key for one root cause. Two findings
// with equal keys are treated as the same bug regardless of which seed,
// mutation chain, campaign run, or execution backend surfaced them.
type Signature struct {
	// Domain is the failure domain: "crash" (the crash oracle fired) or
	// "differential" (the cross-build output comparison diverged).
	Domain string `json:"domain"`
	// BugID is the injected catalog bug, when the oracle attributed one.
	// It subsumes the divergence site: a catalog ID names the root cause
	// exactly, so Key ignores the (possibly seed-dependent) site fields.
	BugID string `json:"bug_id,omitempty"`
	// Component is the blamed JIT pass/component — the catalog bug's
	// component when attributed, otherwise the dominant profile behavior
	// active at failure (the best unattributed blame available).
	Component string `json:"component,omitempty"`
	// DivergentPair and DivergenceIndex locate the divergence site of a
	// differential finding: the modal~divergent spec pair and the index
	// of the first diverging target. They identify unattributed
	// divergences and annotate attributed ones.
	DivergentPair   string `json:"divergent_pair,omitempty"`
	DivergenceIndex int    `json:"divergence_index,omitempty"`
	// PlanPair locates a plan-differential divergence: the
	// modal~divergent compilation-plan IDs. For those findings the spec
	// pair is degenerate (one spec, many plans), so the plan pair is the
	// real site. Empty for spec differentials and crash findings,
	// keeping pre-plan signatures and keys byte-identical.
	PlanPair string `json:"plan_pair,omitempty"`
	// GeneratorID names the generator that emitted the seed the finding
	// surfaced on. Provenance only — Key ignores it, so the same root
	// cause reached via different generators still deduplicates; recall
	// analysis reads it to credit generators with first sightings.
	GeneratorID string `json:"generator_id,omitempty"`
}

// Compute derives the signature of a campaign finding.
func Compute(f *core.Finding) Signature {
	sig := Signature{Domain: f.Oracle, GeneratorID: f.GeneratorID}
	if sig.Domain == "" {
		sig.Domain = "crash"
	}
	if f.Bug != nil {
		sig.BugID = f.Bug.ID
		sig.Component = f.Bug.Component
	} else {
		sig.Component = dominantBehavior(f.OBV)
	}
	if f.Divergence != nil {
		sig.DivergentPair = f.Divergence.Modal.Name() + "~" + f.Divergence.Divergent.Name()
		sig.DivergenceIndex = f.Divergence.Index
		if f.Divergence.ModalPlan != "" || f.Divergence.DivergentPlan != "" {
			sig.PlanPair = f.Divergence.ModalPlan + "~" + f.Divergence.DivergentPlan
		}
	}
	return sig
}

// Key renders the stable deduplication key. Attributed findings key on
// (domain, catalog ID, component): the catalog ID is the root cause, so
// reaching the same bug from different seeds or backends collides, and
// distinct catalog bugs never do. Unattributed findings fall back to
// the divergence site, the only root-cause evidence available.
func (s Signature) Key() string {
	if s.BugID != "" {
		return s.Domain + "|" + s.BugID + "|" + s.Component
	}
	if s.DivergentPair != "" {
		key := fmt.Sprintf("%s|%s|%s#%d", s.Domain, s.Component, s.DivergentPair, s.DivergenceIndex)
		if s.PlanPair != "" {
			// Unattributed plan divergences dedup per plan pair: the same
			// spec under two different schedule pairs is two sites.
			key += "|" + s.PlanPair
		}
		return key
	}
	return s.Domain + "|" + s.Component
}

// dominantBehavior names the most frequent optimization behavior in the
// failure's OBV — the pass to blame when no catalog bug is attributed.
func dominantBehavior(obv profile.OBV) string {
	best, idx := int64(0), -1
	for i, c := range obv {
		if c > best {
			best, idx = c, i
		}
	}
	if idx < 0 {
		return "unknown"
	}
	return profile.Behavior(idx).String()
}
