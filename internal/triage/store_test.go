package triage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sigFor(id string) Signature {
	return Signature{Domain: "crash", BugID: id, Component: "c2-loopopts"}
}

func occAt(seed string, exec int) Occurrence {
	return Occurrence{SeedName: seed, Target: "openjdk-17", AtExecution: exec, Time: 42}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreObserveDedups(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	novel, err := s.Observe(sigFor("JDK-1"), occAt("s1", 10), "class A {}", 5, nil)
	if err != nil || !novel {
		t.Fatalf("first sighting: novel=%v err=%v", novel, err)
	}
	novel, err = s.Observe(sigFor("JDK-1"), occAt("s2", 20), "class B {}", 9, nil)
	if err != nil || novel {
		t.Fatalf("second sighting: novel=%v err=%v", novel, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	e := s.Get(sigFor("JDK-1").Key())
	if e.Count != 2 || e.First.SeedName != "s1" || e.Last.SeedName != "s2" {
		t.Errorf("aggregation wrong: %+v", e)
	}
	if e.Raw != "class A {}" || e.RawStmts != 5 {
		t.Errorf("raw reproducer must come from the first sighting: %+v", e)
	}
}

func TestStoreReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Observe(sigFor("JDK-1"), occAt("s1", 10), "class A {}", 5, []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(sigFor("JDK-2"), occAt("s1", 11), "class B {}", 7, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Reduced(sigFor("JDK-1").Key(), "class A' {}", 2, 3, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine(sigFor("JDK-2").Key(), "harness-fault: boom"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", r.Len())
	}
	e1 := r.Get(sigFor("JDK-1").Key())
	if e1.Min != "class A' {}" || e1.MinStmts != 2 || e1.ReduceRounds != 3 || e1.ReduceProbes != 40 {
		t.Errorf("reduction lost on reopen: %+v", e1)
	}
	if e2 := r.Get(sigFor("JDK-2").Key()); e2.Quarantine != "harness-fault: boom" {
		t.Errorf("quarantine note lost on reopen: %+v", e2)
	}
	// First-seen order survives.
	ents := r.Entries()
	if ents[0].Sig.BugID != "JDK-1" || ents[1].Sig.BugID != "JDK-2" {
		t.Errorf("entry order drifted: %s, %s", ents[0].Sig.BugID, ents[1].Sig.BugID)
	}
}

// TestStoreRebuildsWithoutIndex: deleting (or corrupting) index.json
// must be invisible — the log is the source of truth.
func TestStoreRebuildsWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Observe(sigFor("JDK-1"), occAt("s1", 10), "class A {}", 5, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir)
	defer r.Close()
	if r.Len() != 1 || r.Get(sigFor("JDK-1").Key()) == nil {
		t.Fatal("log replay without index lost the entry")
	}

	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, dir)
	defer r2.Close()
	if r2.Len() != 1 {
		t.Fatal("corrupt index was not rebuilt from the log")
	}
}

// TestStoreStaleIndexIgnored: an index left behind by a crashed process
// (record count != log) must be ignored in favor of a log replay.
func TestStoreStaleIndexIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Observe(sigFor("JDK-1"), occAt("s1", 10), "class A {}", 5, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // index now says 1 record
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if _, err := s2.Observe(sigFor("JDK-2"), occAt("s2", 20), "class B {}", 6, nil); err != nil {
		t.Fatal(err)
	}
	s2.f.Close() // crash: log has 2 records, index still says 1

	r := mustOpen(t, dir)
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("stale index won over the log: Len = %d, want 2", r.Len())
	}
}

// TestStoreToleratesTruncatedTail: a crash mid-append leaves a partial
// trailing line; everything before it must load.
func TestStoreToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Observe(sigFor("JDK-1"), occAt("s1", 10), "class A {}", 5, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, dataFile)
	if err := os.WriteFile(logPath, append(mustRead(t, logPath), []byte(`{"v":1,"kind":"sigh`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir)
	if r.Len() != 1 {
		t.Fatalf("truncated tail lost intact records: Len = %d, want 1", r.Len())
	}
	// The partial line was trimmed, so new appends land cleanly and the
	// next open replays without error.
	if _, err := r.Observe(sigFor("JDK-2"), occAt("s2", 20), "class B {}", 6, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, dir)
	defer r2.Close()
	if r2.Len() != 2 {
		t.Fatalf("append after crash recovery corrupted the log: Len = %d, want 2", r2.Len())
	}
}

// TestStoreRejectsVersionSkew: records from a future store format fail
// loudly instead of being misread.
func TestStoreRejectsVersionSkew(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, dataFile),
		[]byte(`{"v":99,"kind":"entry","entry":{"key":"k"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew not rejected: %v", err)
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if _, err := s.Observe(sigFor("JDK-1"), occAt("s1", i), "class A {}", 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reduced(sigFor("JDK-1").Key(), "class A' {}", 2, 1, 9); err != nil {
		t.Fatal(err)
	}
	before := len(mustRead(t, filepath.Join(dir, dataFile)))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := len(mustRead(t, filepath.Join(dir, dataFile)))
	if after >= before {
		t.Errorf("compact did not shrink the log: %d -> %d bytes", before, after)
	}
	e := s.Get(sigFor("JDK-1").Key())
	if e.Count != 50 || e.Min != "class A' {}" {
		t.Errorf("compact changed observable state: %+v", e)
	}
	// Appends still work post-compact, and a reopen replays cleanly.
	if _, err := s.Observe(sigFor("JDK-2"), occAt("s2", 99), "class B {}", 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir)
	defer r.Close()
	if r.Len() != 2 || r.Get(sigFor("JDK-1").Key()).Count != 50 {
		t.Fatal("post-compact reopen lost state")
	}
}

func TestStoreMerge(t *testing.T) {
	a := mustOpen(t, t.TempDir())
	defer a.Close()
	b := mustOpen(t, t.TempDir())
	defer b.Close()
	if _, err := a.Observe(sigFor("JDK-1"), occAt("s1", 10), "class A {}", 5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Observe(sigFor("JDK-1"), occAt("s9", 90), "class A9 {}", 8, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Reduced(sigFor("JDK-1").Key(), "class A' {}", 2, 1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Observe(sigFor("JDK-2"), occAt("s9", 91), "class B {}", 6, nil); err != nil {
		t.Fatal(err)
	}

	added, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Errorf("added = %d, want 1 (JDK-2 only)", added)
	}
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", a.Len())
	}
	e1 := a.Get(sigFor("JDK-1").Key())
	if e1.Count != 2 {
		t.Errorf("merged count = %d, want 2", e1.Count)
	}
	if e1.Min != "class A' {}" {
		t.Errorf("merge did not adopt the other store's minimized reproducer: %+v", e1)
	}
	if e1.Raw != "class A {}" {
		t.Errorf("merge overwrote the destination's raw reproducer: %+v", e1)
	}
	e2 := a.Get(sigFor("JDK-2").Key())
	if e2 == nil || e2.Raw != "class B {}" {
		t.Errorf("novel entry not merged whole: %+v", e2)
	}
	// Merging again adds nothing new.
	added, err = a.Merge(b)
	if err != nil || added != 0 {
		t.Errorf("re-merge: added=%d err=%v, want 0/nil", added, err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMinimizedPrograms: the template-mining iterator yields reduced
// reproducers only — skipping unreduced and quarantined entries — in
// first-seen order, and honors early stop.
func TestMinimizedPrograms(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	for i, id := range []string{"JDK-1", "JDK-2", "JDK-3", "JDK-4"} {
		if _, err := s.Observe(sigFor(id), occAt("s1", 10+i), "class Raw {}", 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reduced(sigFor("JDK-3").Key(), "class Min3 {}", 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Reduced(sigFor("JDK-1").Key(), "class Min1 {}", 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Reduced(sigFor("JDK-4").Key(), "class Min4 {}", 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine(sigFor("JDK-4").Key(), "harness-fault: boom"); err != nil {
		t.Fatal(err)
	}

	var got []string
	s.MinimizedPrograms(func(key, program string) bool {
		got = append(got, program)
		return true
	})
	if len(got) != 2 || got[0] != "class Min1 {}" || got[1] != "class Min3 {}" {
		t.Fatalf("MinimizedPrograms = %v, want [Min1 Min3] in first-seen order", got)
	}

	n := 0
	s.MinimizedPrograms(func(key, program string) bool {
		n++
		return false // early stop
	})
	if n != 1 {
		t.Fatalf("early stop visited %d entries, want 1", n)
	}
}
