package triage

import (
	"encoding/json"
	"strings"
	"testing"
)

func reportFixtureStore(t *testing.T) *Store {
	t.Helper()
	s := mustOpen(t, t.TempDir())
	t.Cleanup(func() { s.Close() })
	obv := make([]int64, 19)
	obv[0], obv[2] = 4, 1
	if _, err := s.Observe(sigFor("JDK-1"), occAt("s1", 10), "class A { big }", 9, obv); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(sigFor("JDK-1"), occAt("s2", 25), "class A2 {}", 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Reduced(sigFor("JDK-1").Key(), "class A' {}", 2, 3, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(sigFor("JDK-2"), occAt("s1", 12), "class B { raw }", 6, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(sigFor("JDK-3"), occAt("s3", 30), "class C {}", 5, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine(sigFor("JDK-3").Key(), "timeout: watchdog"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReportAggregates(t *testing.T) {
	r := BuildReport(reportFixtureStore(t))
	if r.Signatures != 3 || r.Occurrences != 4 || r.Reduced != 1 || r.Quarantined != 1 {
		t.Fatalf("aggregates = %+v", r)
	}
	byID := map[string]ReportEntry{}
	for _, e := range r.Entries {
		byID[e.BugID] = e
	}
	e1 := byID["JDK-1"]
	if !e1.Reduced || e1.MinStmts != 2 || e1.RawStmts != 9 || e1.Program != "class A' {}" {
		t.Errorf("reduced entry wrong: %+v", e1)
	}
	if e1.LastExecution != 25 || e1.Count != 2 {
		t.Errorf("sighting range wrong: %+v", e1)
	}
	if e1.OBVFingerprint == "" || !strings.Contains(e1.OBVFingerprint, ":4") {
		t.Errorf("OBV fingerprint missing: %q", e1.OBVFingerprint)
	}
	// Unreduced entries fall back to the raw reproducer, so
	// min_stmts <= raw_stmts holds for every entry.
	e2 := byID["JDK-2"]
	if e2.Reduced || e2.MinStmts != e2.RawStmts || e2.Program != "class B { raw }" {
		t.Errorf("unreduced fallback wrong: %+v", e2)
	}
	for _, e := range r.Entries {
		if e.MinStmts > e.RawStmts {
			t.Errorf("entry %s: min %d > raw %d", e.Key, e.MinStmts, e.RawStmts)
		}
	}
	if q := byID["JDK-3"]; q.Quarantined == "" {
		t.Errorf("quarantine note lost: %+v", q)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := BuildReport(reportFixtureStore(t))
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != reportVersion || back.Signatures != r.Signatures || len(back.Entries) != len(r.Entries) {
		t.Errorf("JSON round trip drifted: %+v", back)
	}
}

func TestReportText(t *testing.T) {
	txt := BuildReport(reportFixtureStore(t)).Text()
	for _, want := range []string{
		"3 signature(s)", "4 occurrence(s)", "1 reduced", "1 quarantined",
		"JDK-1", "reduced 9 -> 2 stmts",
		"JDK-2", "raw 6 stmts",
		"JDK-3", "reduction quarantined (timeout: watchdog)",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("report text missing %q:\n%s", want, txt)
		}
	}
}

func TestReportEmptyStore(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	r := BuildReport(s)
	if r.Signatures != 0 || r.Entries == nil {
		t.Errorf("empty report malformed: %+v", r)
	}
	if _, err := r.JSON(); err != nil {
		t.Error(err)
	}
}
