package triage

import (
	"flag"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"testing"
)

// minijvmPath is the -exec-json binary built by TestMain (or supplied
// via $MINIJVM); empty means subprocess-backend tests skip.
var minijvmPath string

// TestMain builds cmd/minijvm once, mirroring the exec package's test
// harness. -short skips the build (and the tests that need it).
func TestMain(m *testing.M) {
	flag.Parse()
	if !testing.Short() {
		if p := os.Getenv("MINIJVM"); p != "" {
			minijvmPath = p
		} else {
			dir, err := os.MkdirTemp("", "minijvm")
			if err == nil {
				bin := filepath.Join(dir, "minijvm")
				out, err := osexec.Command("go", "build", "-o", bin, "repro/cmd/minijvm").CombinedOutput()
				if err != nil {
					fmt.Fprintf(os.Stderr, "triage_test: building minijvm failed, subprocess tests will skip: %v\n%s", err, out)
				} else {
					minijvmPath = bin
				}
				defer os.RemoveAll(dir)
			}
		}
	}
	os.Exit(m.Run())
}
