package triage

import (
	"context"
	"testing"
	"time"

	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/jvm"
	"repro/internal/profile"
)

// crasherA triggers JDK-8312744 (lock coarsening over unrolled sync
// regions) on the reference VM without any mutation — the same program
// the core checkpoint tests use as a deterministic crasher.
const crasherA = `
class T {
  int f;
  static void main() {
    T t = new T();
    t.f = 3;
    long total = 0;
    for (int i = 0; i < 1500; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) {
        acc = acc + k + i;
      }
    }
    synchronized (this) {
      acc = acc + this.f;
    }
    return acc;
  }
}
`

// crasherB reaches the same coarsening bug through a structurally
// different program (different names, constants, and extra statements),
// so two distinct seeds exercise one root cause.
const crasherB = `
class U {
  int g;
  int pad;
  static void main() {
    U u = new U();
    u.g = 7;
    u.pad = 1;
    long sum = 0;
    int extra = 2;
    for (int j = 0; j < 1600; j += 1) {
      sum = sum + u.bar(j) + extra;
    }
    print(sum);
  }
  int bar(int j) {
    int v = 1;
    for (int m = 0; m < 4; m += 1) {
      synchronized (this) {
        v = v + m + j + this.pad;
      }
    }
    synchronized (this) {
      v = v + this.g;
    }
    return v;
  }
}
`

func oracleFor(b *buginject.Bug) string {
	if b.Effect == buginject.EffectCrash {
		return "crash"
	}
	return "differential"
}

// TestSignatureDistinctCatalogBugsNeverCollide: table-driven over the
// whole injected-bug catalog — no two distinct catalog bugs may share a
// signature key.
func TestSignatureDistinctCatalogBugsNeverCollide(t *testing.T) {
	keys := map[string]string{}
	for _, b := range buginject.Catalog {
		f := &core.Finding{Bug: b, Oracle: oracleFor(b)}
		k := Compute(f).Key()
		if prev, clash := keys[k]; clash {
			t.Errorf("bugs %s and %s collide on key %q", prev, b.ID, k)
		}
		keys[k] = b.ID
	}
	if len(keys) != len(buginject.Catalog) {
		t.Errorf("%d keys for %d catalog bugs", len(keys), len(buginject.Catalog))
	}
}

// TestSignatureStableAcrossProvenance: the same catalog bug reached via
// different seeds, mutation chains, campaign positions, targets, and
// divergence sites keys identically — provenance is metadata, not
// identity.
func TestSignatureStableAcrossProvenance(t *testing.T) {
	bug := buginject.ByID("JDK-8312744")
	if bug == nil {
		t.Fatal("JDK-8312744 missing from the catalog")
	}
	base := core.Finding{Bug: bug, Oracle: "crash", SeedName: "SeedA", Target: jvm.Reference()}
	variants := []core.Finding{
		base,
		{Bug: bug, Oracle: "crash", SeedName: "SeedB", Cursor: 99, Round: 4, ChainLen: 17},
		{Bug: bug, Oracle: "crash", Target: jvm.Spec{Impl: bug.Impl, Version: 21}, AtExecution: 5000},
		{Bug: bug, Oracle: "crash",
			Divergence: &jvm.Divergence{Modal: jvm.Reference(), Divergent: jvm.Spec{Impl: bug.Impl, Version: 8}, Index: 2}},
		{Bug: bug, Oracle: "crash", OBV: profile.OBV{0: 40, 3: 7}},
	}
	want := Compute(&base).Key()
	for i := range variants {
		if got := Compute(&variants[i]).Key(); got != want {
			t.Errorf("variant %d key %q != base key %q", i, got, want)
		}
	}
}

// TestSignatureUnattributedDivergence: findings with no catalog bug fall
// back to the divergence site, and different sites stay distinct.
func TestSignatureUnattributedDivergence(t *testing.T) {
	div := func(idx int) *jvm.Divergence {
		return &jvm.Divergence{Modal: jvm.Reference(), Divergent: jvm.Spec{Impl: buginject.HotSpot, Version: 8}, Index: idx}
	}
	a := Compute(&core.Finding{Oracle: "differential", Divergence: div(1), OBV: profile.OBV{2: 5}})
	b := Compute(&core.Finding{Oracle: "differential", Divergence: div(1), OBV: profile.OBV{2: 9}})
	c := Compute(&core.Finding{Oracle: "differential", Divergence: div(3), OBV: profile.OBV{2: 5}})
	if a.Key() != b.Key() {
		t.Errorf("same divergence site split: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == c.Key() {
		t.Errorf("different divergence indexes collide on %q", a.Key())
	}
	if a.BugID != "" || a.DivergentPair == "" {
		t.Errorf("unattributed signature malformed: %+v", a)
	}
}

// campaignKeys runs a short deterministic campaign over the given seeds
// and collects the signature key of every finding occurrence.
func campaignKeys(t *testing.T, ex exec.Executor, seeds []corpus.Seed) map[string]bool {
	t.Helper()
	target := jvm.Reference()
	cfg := core.DefaultConfig(target)
	cfg.DiffSpecs = nil
	cfg.MaxIterations = 2
	cfg.Executor = ex
	keys := map[string]bool{}
	res, err := core.RunCampaignContext(context.Background(), core.CampaignConfig{
		Seeds:    seeds,
		Budget:   20,
		Targets:  []jvm.Spec{target},
		Fuzz:     cfg,
		Seed:     7,
		Executor: ex,
		OnFinding: func(f core.Finding) {
			keys[Compute(&f).Key()] = true
		},
	}, harness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("campaign produced no findings")
	}
	return keys
}

// TestSignatureOneKeyAcrossSeeds: the same injected bug reached from two
// structurally different seeds deduplicates to a single signature.
func TestSignatureOneKeyAcrossSeeds(t *testing.T) {
	keys := campaignKeys(t, nil, []corpus.Seed{
		{Name: "crasherA", Source: crasherA},
		{Name: "crasherB", Source: crasherB},
	})
	if len(keys) != 1 {
		t.Fatalf("two seeds triggering one bug produced %d signatures: %v", len(keys), keys)
	}
}

// TestSignatureStableAcrossBackends: the in-process and subprocess
// execution backends yield identical signature sets for the same
// campaign — signatures must not depend on where execution happened.
func TestSignatureStableAcrossBackends(t *testing.T) {
	if minijvmPath == "" {
		t.Skip("minijvm binary unavailable (-short or build failure)")
	}
	seeds := []corpus.Seed{
		{Name: "crasherA", Source: crasherA},
		{Name: "crasherB", Source: crasherB},
	}
	inproc := campaignKeys(t, nil, seeds)
	sub := exec.NewSubprocess(minijvmPath)
	sub.Timeout = 30 * time.Second
	viaSub := campaignKeys(t, sub, seeds)
	if len(inproc) != len(viaSub) {
		t.Fatalf("backend signature sets differ: inprocess %v, subprocess %v", inproc, viaSub)
	}
	for k := range inproc {
		if !viaSub[k] {
			t.Errorf("key %q found in-process but not via subprocess", k)
		}
	}
}
