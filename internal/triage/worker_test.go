package triage

import (
	"context"
	"testing"
	"time"

	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// crasherFinding builds a real campaign-shaped finding whose program
// deterministically triggers JDK-8312744 on the reference VM.
func crasherFinding(t *testing.T, seedName string) core.Finding {
	t.Helper()
	bug := buginject.ByID("JDK-8312744")
	if bug == nil {
		t.Fatal("JDK-8312744 missing from the catalog")
	}
	prog, err := lang.Parse(crasherA)
	if err != nil {
		t.Fatal(err)
	}
	return core.Finding{
		Bug:      bug,
		Oracle:   "crash",
		SeedName: seedName,
		Target:   jvm.Reference(),
		Program:  prog,
		Round:    1,
	}
}

func newTestWorker(t *testing.T, cfg WorkerConfig) (*Worker, *Store) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = mustOpen(t, t.TempDir())
		t.Cleanup(func() { cfg.Store.Close() })
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return 42 }
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, cfg.Store
}

// TestWorkerDedupsAndReducesOnce: duplicate findings dedup against the
// store, and the reduction pipeline runs exactly once per novel
// signature.
func TestWorkerDedupsAndReducesOnce(t *testing.T) {
	w, store := newTestWorker(t, WorkerConfig{})
	w.Start(context.Background())
	f := crasherFinding(t, "seedA")
	for i := 0; i < 3; i++ {
		if !w.Submit(f) {
			t.Fatal("submit rejected while open")
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Received != 3 || st.Novel != 1 || st.Duplicates != 2 || st.Reduced != 1 {
		t.Fatalf("stats = %+v, want received 3 / novel 1 / dup 2 / reduced 1", st)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d entries, want 1", store.Len())
	}
	e := store.Entries()[0]
	if e.Count != 3 {
		t.Errorf("occurrence count = %d, want 3", e.Count)
	}
	if e.Min == "" || e.MinStmts >= e.RawStmts {
		t.Errorf("reduction missing or non-shrinking: min %d stmts vs raw %d", e.MinStmts, e.RawStmts)
	}
	// The minimized reproducer still triggers the bug.
	mp, err := lang.Parse(e.Min)
	if err != nil {
		t.Fatalf("minimized program does not parse: %v", err)
	}
	r, err := jvm.Run(mp, jvm.Reference(), jvm.Options{ForceCompile: true, MaxSteps: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Crash == nil || r.Result.Crash.BugID != "JDK-8312744" {
		t.Error("minimized reproducer no longer crashes with the catalog bug")
	}
}

// panicExec panics on every probe — a stand-in for a reduction that
// takes down the substrate.
type panicExec struct{}

func (panicExec) Execute(context.Context, *lang.Program, jvm.Spec, jvm.Options) (*jvm.ExecResult, error) {
	panic("substrate exploded during reduction probe")
}

func (panicExec) ExecuteDifferential(context.Context, *lang.Program, []jvm.Spec, jvm.Options) (*jvm.Differential, error) {
	panic("substrate exploded during reduction probe")
}

func (panicExec) ExecutePlanDifferential(context.Context, *lang.Program, jvm.Spec, []*jit.Plan, jvm.Options) (*jvm.Differential, error) {
	panic("substrate exploded during reduction probe")
}

// hangExec blocks until the context dies — a reduction probe that hangs.
type hangExec struct{}

func (hangExec) Execute(ctx context.Context, _ *lang.Program, _ jvm.Spec, _ jvm.Options) (*jvm.ExecResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (hangExec) ExecuteDifferential(ctx context.Context, _ *lang.Program, _ []jvm.Spec, _ jvm.Options) (*jvm.Differential, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (hangExec) ExecutePlanDifferential(ctx context.Context, _ *lang.Program, _ jvm.Spec, _ []*jit.Plan, _ jvm.Options) (*jvm.Differential, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestWorkerQuarantinesPanickingReduction: a reduction that panics is
// contained — the entry is quarantined with its raw reproducer kept and
// the worker keeps consuming findings.
func TestWorkerQuarantinesPanickingReduction(t *testing.T) {
	w, store := newTestWorker(t, WorkerConfig{Executor: panicExec{}})
	w.Start(context.Background())
	w.Submit(crasherFinding(t, "seedA"))
	// A second, differently-signatured finding must still be processed.
	f2 := crasherFinding(t, "seedB")
	f2.Bug = buginject.ByID("JDK-8301001")
	if f2.Bug == nil {
		t.Fatal("JDK-8301001 missing from the catalog")
	}
	w.Submit(f2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Novel != 2 || st.Quarantined != 2 || st.Reduced != 0 {
		t.Fatalf("stats = %+v, want novel 2 / quarantined 2 / reduced 0", st)
	}
	for _, e := range store.Entries() {
		if e.Quarantine == "" {
			t.Errorf("entry %s not quarantined", e.Key)
		}
		if e.Raw == "" {
			t.Errorf("entry %s lost its raw reproducer", e.Key)
		}
		if e.Min != "" {
			t.Errorf("entry %s claims a minimized reproducer from a panicking pipeline", e.Key)
		}
	}
}

// TestWorkerQuarantinesHangingReduction: the watchdog reclaims a hung
// reduction; the cancelled probe context drains the abandoned goroutine
// and the finding is quarantined as a timeout.
func TestWorkerQuarantinesHangingReduction(t *testing.T) {
	w, store := newTestWorker(t, WorkerConfig{
		Executor:      hangExec{},
		ReduceTimeout: 100 * time.Millisecond,
	})
	w.Start(context.Background())
	w.Submit(crasherFinding(t, "seedA"))
	done := make(chan error, 1)
	go func() { done <- w.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker wedged on a hanging reduction")
	}
	if st := w.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
	e := store.Entries()[0]
	if e.Quarantine == "" || e.Raw == "" {
		t.Errorf("hang quarantine malformed: %+v", e)
	}
}

// TestWorkerDropsAfterClose: Submit on a closed worker reports the drop
// instead of panicking or blocking.
func TestWorkerDropsAfterClose(t *testing.T) {
	w, _ := newTestWorker(t, WorkerConfig{})
	w.Start(context.Background())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Submit(crasherFinding(t, "late")) {
		t.Fatal("submit accepted after close")
	}
	if st := w.Stats(); st.Dropped != 1 {
		t.Errorf("stats = %+v, want 1 dropped", st)
	}
}

// runTriagedCampaign fuzzes the two crasher seeds with findings flowing
// through a triage worker into the store at dir, returning the worker
// stats.
func runTriagedCampaign(t *testing.T, dir string) Stats {
	t.Helper()
	store := mustOpen(t, dir)
	w, err := NewWorker(WorkerConfig{Store: store, Now: func() int64 { return 42 }})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w.Start(ctx)
	target := jvm.Reference()
	cfg := core.DefaultConfig(target)
	cfg.DiffSpecs = nil
	cfg.MaxIterations = 2
	res, err := core.RunCampaignContext(ctx, core.CampaignConfig{
		Seeds: []corpus.Seed{
			{Name: "crasherA", Source: crasherA},
			{Name: "crasherB", Source: crasherB},
		},
		Budget:    20,
		Targets:   []jvm.Spec{target},
		Fuzz:      cfg,
		Seed:      7,
		OnFinding: func(f core.Finding) { w.Submit(f) },
	}, harness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("campaign produced no findings")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return w.Stats()
}

// TestWorkerCampaignIntegration: a real campaign triaged end-to-end
// yields one store entry per distinct catalog bug, minimized no larger
// than raw; re-running the identical campaign against the same store
// adds zero entries.
func TestWorkerCampaignIntegration(t *testing.T) {
	dir := t.TempDir()
	st1 := runTriagedCampaign(t, dir)
	store := mustOpen(t, dir)
	n := store.Len()
	if n == 0 {
		t.Fatal("no entries triaged")
	}
	bugIDs := map[string]bool{}
	for _, e := range store.Entries() {
		bugIDs[e.Sig.BugID] = true
		min := e.MinStmts
		if e.Min == "" {
			min = e.RawStmts
		}
		if min > e.RawStmts {
			t.Errorf("entry %s grew under reduction: %d -> %d stmts", e.Key, e.RawStmts, min)
		}
	}
	if len(bugIDs) != n {
		t.Errorf("%d entries for %d distinct catalog bugs — dedup failed", n, len(bugIDs))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := runTriagedCampaign(t, dir)
	if st2.Novel != 0 {
		t.Errorf("identical rerun found %d novel signatures, want 0", st2.Novel)
	}
	if st2.Received != st1.Received {
		t.Errorf("rerun submitted %d findings vs %d — campaign not deterministic", st2.Received, st1.Received)
	}
	store2 := mustOpen(t, dir)
	defer store2.Close()
	if store2.Len() != n {
		t.Errorf("rerun grew the store: %d -> %d entries", n, store2.Len())
	}
}
