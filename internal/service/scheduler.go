package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/triage"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrDraining rejects submissions while the daemon is shutting down.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob names a job ID with no record.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotQueued rejects mutations of a job that already started.
	ErrNotQueued = errors.New("service: job is not queued")
	// ErrTerminal rejects cancellation of a finished job.
	ErrTerminal = errors.New("service: job already finished")
)

// Config tunes the scheduler (one per daemon).
type Config struct {
	// Dir is the persistent state directory (job records, campaign
	// checkpoints, triage stores, quarantines).
	Dir string
	// Runners bounds concurrently running campaigns (default 1).
	Runners int
	// Backend is the default execution backend for jobs that do not pin
	// one ("" = inprocess); MinijvmPath/ChildTimeout configure the
	// subprocess and pool backends exactly like the mopfuzzer flags.
	Backend      string
	MinijvmPath  string
	ChildTimeout time.Duration
	// Pool shapes the shared warm child pool used by jobs on the "pool"
	// backend (zero values = exec.PoolConfig defaults). All pooled jobs
	// share one daemon-wide pool so warm children amortize across jobs;
	// it is closed when the scheduler drains.
	Pool exec.PoolTuning
	// ExecTimeout arms the harness wall-clock watchdog per seed task
	// (0 = step fuel only).
	ExecTimeout time.Duration
	// CheckpointEvery is the minimum executions between campaign
	// snapshots (<=0 snapshots after every task — the drain-safest and
	// default setting).
	CheckpointEvery int
	// Now is the clock seam (nil = wall clock). Timestamps on job
	// records and triage occurrences derive from it.
	Now func() time.Time
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// OnTask, when set, observes (jobID, tasks done) after every
	// supervised campaign task — the deterministic-interruption test
	// seam, mirroring harness.Config.OnTask.
	OnTask func(jobID string, done int)
}

// RemoteRunner runs queued jobs somewhere other than the local runner
// pool — the fleet coordinator's seam. The scheduler stays the single
// owner of the job lifecycle; a remote runner only executes and
// reports.
type RemoteRunner interface {
	// RunRemote executes the job on a remote worker, blocking until the
	// job settles, the assignment is lost, or ctx is cancelled (daemon
	// drain or DELETE — the runner should stop the worker best-effort
	// and report Interrupted). It must call NoteRemoteStart once a
	// worker accepts the assignment.
	RunRemote(ctx context.Context, j *Job) RemoteOutcome
}

// RemoteOutcome is a remote runner's verdict on one assignment.
type RemoteOutcome struct {
	// Declined: no live worker could take the job — run it locally (the
	// zero-workers graceful-degradation path).
	Declined bool
	// Requeue: the assignment was lost (lease expired, worker died)
	// after any checkpoint handoff already landed on disk; the job goes
	// back on the queue and resumes from that checkpoint.
	Requeue bool
	// Interrupted: the run stopped without finishing (drain or cancel);
	// the scheduler settles it exactly like a local interrupted run.
	Interrupted bool
	// Summary is the finished campaign digest (nil unless done).
	Summary *ResultSummary
	// Stats is the worker-side triage segment for the job record.
	Stats triage.Stats
	// Err marks the job failed.
	Err error
	// Worker names the assignee, for logs.
	Worker string
}

// Scheduler owns the daemon's job lifecycle: submissions queue, a
// bounded runner pool dispatches them onto RunCampaignContext under the
// fault-isolating harness, per-job checkpoints make a daemon restart
// resume in-flight jobs from disk, and per-job triage stores
// deduplicate and minimize the findings the API serves.
type Scheduler struct {
	cfg     Config
	store   *JobStore
	metrics *Metrics
	broker  *Broker
	remote  RemoteRunner // optional: fleet dispatch before local fallback

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	order   []string // submission order
	queue   []string
	nextID  int
	started bool
	ctx     context.Context

	wg sync.WaitGroup

	// parse is the daemon-wide bounded parse cache shared by every
	// campaign, so identical seed sources (re-submitted corpora,
	// resumed jobs) parse once per daemon instead of once per job. Its
	// hit/miss/eviction counters feed /metrics.
	parse *corpus.ParseCache

	// poolMu guards the lazily-created daemon-wide warm child pool
	// shared by every job on the "pool" backend.
	poolMu   sync.Mutex
	execPool *exec.Pool

	// reportMu serializes triage-store opens/closes per daemon, so a
	// /findings read of a finished job never races a runner opening the
	// same store (triage.Open trims partial trailing records, which must
	// not happen under a live writer).
	reportMu sync.Mutex
}

// NewScheduler opens the state directory, loads every persisted job,
// and re-queues the ones a previous daemon left queued or in flight —
// those resume from their campaign checkpoints when Start runs them.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.ChildTimeout == 0 {
		cfg.ChildTimeout = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	store, err := OpenJobStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	recs, quarantined, err := store.LoadAll()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		store:   store,
		metrics: NewMetrics(cfg.Now),
		broker:  NewBroker(),
		jobs:    map[string]*Job{},
		parse:   corpus.NewParseCache(),
		nextID:  NextID(recs),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, id := range quarantined {
		s.metrics.AddJobQuarantined()
		s.logf("job %s: corrupt record quarantined to jobs-quarantined/ (startup continues)", id)
	}
	for _, rec := range recs {
		j := &Job{rec: *rec, dir: store.JobDir(rec.ID)}
		switch rec.State {
		case StateRunning, StateInterrupted:
			// The previous daemon drained (or died) mid-run; the campaign
			// checkpoint on disk carries the partial state, so the job goes
			// back on the queue and resumes exactly where it stopped. A
			// checkpoint that no longer decodes would fail that resume on
			// every restart, so quarantine the job instead of re-queueing
			// it — and instead of failing daemon startup.
			if bad := s.quarantineBadCheckpoint(j); bad {
				break
			}
			j.rec.State = StateQueued
			if err := store.Save(&j.rec); err != nil {
				return nil, err
			}
			s.queue = append(s.queue, rec.ID)
			s.logf("job %s: re-queued for resume (was %s)", rec.ID, rec.State)
		case StateQueued:
			if bad := s.quarantineBadCheckpoint(j); bad {
				break
			}
			s.queue = append(s.queue, rec.ID)
		}
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
	}
	return s, nil
}

// quarantineBadCheckpoint validates a restartable job's campaign
// checkpoint. A corrupt or truncated snapshot moves to
// checkpoint.json.corrupt and flips the job to StateQuarantined —
// counted in /metrics — so startup proceeds and every healthy job still
// resumes.
func (s *Scheduler) quarantineBadCheckpoint(j *Job) bool {
	id := j.rec.ID
	if !s.store.HasCheckpoint(id) {
		return false
	}
	if _, err := harness.LoadCheckpoint(s.store.CheckpointPath(id)); err == nil {
		return false
	} else {
		if qerr := s.store.QuarantineCheckpoint(id); qerr != nil {
			s.logf("job %s: set corrupt checkpoint aside: %v", id, qerr)
		}
		j.rec.State = StateQuarantined
		j.rec.Error = fmt.Sprintf("corrupt campaign checkpoint at restart: %v", err)
		j.rec.Finished = s.cfg.Now().Unix()
		if serr := s.store.Save(&j.rec); serr != nil {
			s.logf("job %s: persist quarantined state: %v", id, serr)
		}
		s.metrics.AddJobQuarantined()
		s.logf("job %s: checkpoint corrupt, job quarantined (startup continues): %v", id, err)
		return true
	}
}

// SetRemote installs a remote runner (the fleet coordinator). Must be
// called before Start.
func (s *Scheduler) SetRemote(r RemoteRunner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.remote = r
}

// Store exposes the underlying job store (paths for tests and tools).
func (s *Scheduler) Store() *JobStore { return s.store }

// CheckpointEvery exposes the campaign snapshot cadence — fleet
// assignments mirror it so remote runs match local ones.
func (s *Scheduler) CheckpointEvery() int { return s.cfg.CheckpointEvery }

// ExecTimeout exposes the per-task watchdog deadline, mirrored into
// fleet assignments like CheckpointEvery.
func (s *Scheduler) ExecTimeout() time.Duration { return s.cfg.ExecTimeout }

// Metrics exposes the daemon metrics registry.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Broker exposes the live event broker.
func (s *Scheduler) Broker() *Broker { return s.broker }

// Start launches the runner pool. Cancelling ctx is the drain signal:
// runners stop picking up queued jobs, running campaigns flush a final
// checkpoint and return interrupted, and Wait unblocks once every
// runner has exited.
func (s *Scheduler) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.ctx = ctx
	n := s.cfg.Runners
	s.mu.Unlock()
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.runner(ctx)
	}
	go func() {
		<-ctx.Done()
		s.cond.Broadcast() // wake idle runners so they exit
	}()
}

// Wait blocks until every runner has stopped (drain complete: all
// running campaigns checkpointed and their triage stores flushed).
func (s *Scheduler) Wait() {
	s.wg.Wait()
	// Runners are done: kill the warm children so a drained daemon
	// leaves no minijvm processes behind.
	s.poolMu.Lock()
	p := s.execPool
	s.poolMu.Unlock()
	if p != nil {
		p.Close()
	}
}

// Draining reports whether the scheduler has begun shutting down.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctx != nil && s.ctx.Err() != nil
}

// Submit validates a job spec, persists the job, and queues it.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx != nil && s.ctx.Err() != nil {
		return nil, ErrDraining
	}
	id := FormatID(s.nextID)
	j := &Job{
		rec: jobRecord{ID: id, Spec: spec, State: StateQueued, Created: s.cfg.Now().Unix()},
		dir: s.store.JobDir(id),
	}
	if err := s.store.Save(&j.rec); err != nil {
		return nil, err
	}
	s.nextID++
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.metrics.AddJobAccepted()
	if spec.PlanFuzz != "" && spec.PlanFuzz != "off" {
		s.metrics.AddPlanJob()
	}
	if spec.GeneratorsOn() {
		s.metrics.AddGenerateJob()
	}
	s.cond.Signal()
	return j, nil
}

// Get returns the job with the given ID, or nil.
func (s *Scheduler) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// JobsInOrder returns every job in submission order.
func (s *Scheduler) JobsInOrder() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel stops a job: a queued job goes terminal immediately, a running
// one has its campaign context cancelled (the runner marks it cancelled
// after the final checkpoint flush). Cancelling a finished job returns
// ErrTerminal.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	j := s.Get(id)
	if j == nil {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	switch j.rec.State {
	case StateQueued:
		j.rec.State = StateCancelled
		j.rec.Finished = s.cfg.Now().Unix()
		rec := j.rec
		j.mu.Unlock()
		if err := s.store.Save(&rec); err != nil {
			return nil, err
		}
		s.broker.Publish(id, Event{Type: "state", State: StateCancelled})
		return j, nil
	case StateRunning, StateInterrupted:
		j.cancelAsked = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return j, nil
	default:
		st := j.rec.State
		j.mu.Unlock()
		return nil, fmt.Errorf("%w (state %s)", ErrTerminal, st)
	}
}

// AddSeeds appends user seed programs to a queued job. Seeds are
// validated with corpus.Seed.TryParse, so a malformed program is an
// error here, never a campaign fault. A job that has started (or has
// checkpointed state awaiting resume) rejects the mutation: changing
// the seed pool would break resume determinism.
func (s *Scheduler) AddSeeds(id string, seeds []SeedSpec) (*Job, error) {
	j := s.Get(id)
	if j == nil {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rec.State != StateQueued {
		return nil, fmt.Errorf("%w (state %s)", ErrNotQueued, j.rec.State)
	}
	if s.store.HasCheckpoint(id) {
		return nil, fmt.Errorf("%w (job has checkpointed state awaiting resume)", ErrNotQueued)
	}
	base := len(j.rec.Spec.Seeds)
	for i := range seeds {
		if seeds[i].Name == "" {
			seeds[i].Name = fmt.Sprintf("User%04d", base+i+1)
		}
		if err := validateSeed(seeds[i]); err != nil {
			return nil, err
		}
	}
	j.rec.Spec.Seeds = append(j.rec.Spec.Seeds, seeds...)
	if err := s.store.Save(&j.rec); err != nil {
		return nil, err
	}
	return j, nil
}

// Report renders the job's triage findings — the same triage.Report
// (and serialization) that `triage report -json` emits. Running jobs
// read through the live store; finished ones open the store on demand.
func (s *Scheduler) Report(id string) (*triage.Report, error) {
	j := s.Get(id)
	if j == nil {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	live := j.tstore
	j.mu.Unlock()
	if live != nil {
		return triage.BuildReport(live), nil
	}
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	// Re-check under reportMu: the job may have started in the window,
	// and a live writer must never race our open/close.
	j.mu.Lock()
	live = j.tstore
	j.mu.Unlock()
	if live != nil {
		return triage.BuildReport(live), nil
	}
	store, err := triage.Open(s.store.TriageDir(id))
	if err != nil {
		return nil, err
	}
	defer store.Close()
	return triage.BuildReport(store), nil
}

// RenderMetrics writes the /metrics payload: registry counters plus the
// scrape-time gauges (jobs by state, aggregated triage stats — persisted
// segments of finished jobs plus live worker counters).
func (s *Scheduler) RenderMetrics(w io.Writer) {
	counts := map[JobState]int{}
	var tr TriageStats
	arms := 0
	energy := 0.0
	for _, j := range s.JobsInOrder() {
		j.mu.Lock()
		counts[j.rec.State]++
		if j.rec.Triage != nil {
			tr.Received += j.rec.Triage.Received
			tr.Novel += j.rec.Triage.Novel
			tr.Duplicates += j.rec.Triage.Duplicates
			tr.Reduced += j.rec.Triage.Reduced
			tr.Quarantined += j.rec.Triage.Quarantined
			tr.Errors += j.rec.Triage.Errors
		}
		if j.rec.State == StateRunning {
			arms += j.progress.ScheduleArms
			energy += j.progress.ScheduleEnergy
		}
		w8 := j.tworker
		j.mu.Unlock()
		if w8 != nil {
			tr.add(w8.Stats())
		}
	}
	s.metrics.Render(w, counts, tr)
	s.metrics.RenderCorpus(w, s.parse.Stats(), arms, energy)
	st, live := s.poolStats()
	RenderExecPool(w, st, live)
	s.mu.Lock()
	remote := s.remote
	s.mu.Unlock()
	if fr, ok := remote.(interface{ RenderMetrics(io.Writer) }); ok {
		fr.RenderMetrics(w)
	}
}

// runner is one worker of the bounded pool.
func (s *Scheduler) runner(ctx context.Context) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && ctx.Err() == nil {
			s.cond.Wait()
		}
		if ctx.Err() != nil {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		s.mu.Unlock()
		if j == nil || j.State() != StateQueued {
			continue // cancelled while queued
		}
		s.dispatch(ctx, j)
	}
}

// dispatch routes one claimed job: to the remote runner when one is
// installed and accepts it, to the local runner pool otherwise. The
// local path is also the graceful-degradation fallback — a coordinator
// with zero live workers still completes every job.
func (s *Scheduler) dispatch(ctx context.Context, j *Job) {
	s.mu.Lock()
	remote := s.remote
	s.mu.Unlock()
	if remote == nil {
		s.runJob(ctx, j)
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.cancelAsked = false
	j.mu.Unlock()
	out := remote.RunRemote(jctx, j)
	switch {
	case out.Declined:
		s.logf("job %s: no live worker, running locally", j.ID())
		s.runJob(ctx, j)
	case out.Requeue:
		s.requeue(j, out.Worker)
	default:
		s.settleRemote(j, out)
	}
}

// requeue puts a job whose remote assignment was lost back on the
// queue. The checkpoint the worker last handed off is already on disk,
// so the next claim — remote or local — resumes from it.
func (s *Scheduler) requeue(j *Job, worker string) {
	id := j.ID()
	j.mu.Lock()
	j.rec.State = StateQueued
	j.rec.Requeues++
	j.cancel = nil
	rec := j.rec
	j.mu.Unlock()
	if err := s.store.Save(&rec); err != nil {
		s.logf("job %s: persist requeued state: %v", id, err)
	}
	s.metrics.AddRequeue()
	s.broker.Publish(id, Event{Type: "state", State: StateQueued})
	s.logf("job %s: assignment lost (worker %s), re-queued for resume (requeues %d)", id, worker, rec.Requeues)
	s.mu.Lock()
	s.queue = append(s.queue, id)
	s.cond.Signal()
	s.mu.Unlock()
}

// settleRemote settles a job the remote runner finished, mirroring
// finishJob's state machine for locally run campaigns.
func (s *Scheduler) settleRemote(j *Job, out RemoteOutcome) {
	id := j.ID()
	j.mu.Lock()
	if j.rec.Triage == nil {
		j.rec.Triage = &TriageStats{}
	}
	j.rec.Triage.add(out.Stats)
	var state JobState
	switch {
	case out.Err != nil:
		state = StateFailed
		j.rec.Error = out.Err.Error()
		j.rec.Finished = s.cfg.Now().Unix()
	case out.Interrupted && j.cancelAsked:
		state = StateCancelled
		j.rec.Finished = s.cfg.Now().Unix()
	case out.Interrupted:
		// Drain: the worker's last checkpoint handoff is on disk; the
		// next daemon re-queues the job and resumes it from there.
		state = StateInterrupted
	default:
		state = StateDone
		j.rec.Result = out.Summary
		j.rec.Finished = s.cfg.Now().Unix()
	}
	j.rec.State = state
	j.cancel = nil
	rec := j.rec
	j.mu.Unlock()
	if err := s.store.Save(&rec); err != nil {
		s.logf("job %s: persist final state: %v", id, err)
	}
	s.broker.Publish(id, Event{Type: "state", State: state})
	s.logf("job %s: %s (worker %s)", id, state, out.Worker)
}

// NoteRemoteStart records that a worker accepted the job's assignment:
// the fleet-mode analogue of runJob's mark-running step.
func (s *Scheduler) NoteRemoteStart(j *Job, worker string) {
	id := j.ID()
	j.mu.Lock()
	j.rec.State = StateRunning
	if j.rec.Started == 0 {
		j.rec.Started = s.cfg.Now().Unix()
	}
	if s.store.HasCheckpoint(id) {
		j.rec.Resumes++
	}
	j.rec.Worker = worker
	rec := j.rec
	j.mu.Unlock()
	if err := s.store.Save(&rec); err != nil {
		s.logf("job %s: persist running state: %v", id, err)
	}
	s.broker.Publish(id, Event{Type: "state", State: StateRunning})
	s.logf("job %s: running on worker %s (resumes %d)", id, worker, rec.Resumes)
}

// MergeTriage folds a worker-uploaded triage log (findings.jsonl bytes)
// into the job's persistent triage store. Signature dedup makes the
// merge idempotent: re-uploading overlapping segments — a dead worker's
// partial log followed by the finishing worker's full log — cannot
// produce duplicate findings. Returns how many novel signatures the
// merge added.
func (s *Scheduler) MergeTriage(id string, log []byte) (added int, err error) {
	tmp, err := os.MkdirTemp("", "mopfuzzd-triage-merge-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(tmp)
	if err := os.WriteFile(filepath.Join(tmp, "findings.jsonl"), log, 0o644); err != nil {
		return 0, err
	}
	src, err := triage.Open(tmp)
	if err != nil {
		return 0, fmt.Errorf("service: decode uploaded triage log for %s: %w", id, err)
	}
	defer src.Close()

	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	// A live local store for this job would mean the scheduler itself is
	// running the campaign; fleet uploads only happen for remote
	// assignments, so opening on demand here is safe under reportMu.
	dst, err := triage.Open(s.store.TriageDir(id))
	if err != nil {
		return 0, err
	}
	defer dst.Close()
	return dst.Merge(src)
}

// executorFor builds the execution backend a job runs on. Jobs on the
// "pool" backend share one daemon-wide warm pool, so children (and
// their compile caches) stay hot across jobs instead of respawning per
// campaign.
func (s *Scheduler) executorFor(spec JobSpec) (exec.Executor, error) {
	backend := spec.Backend
	if backend == "" {
		backend = s.cfg.Backend
	}
	if backend == "pool" {
		return s.sharedPool()
	}
	return exec.FromFlags(backend, s.cfg.MinijvmPath, s.cfg.ChildTimeout)
}

// sharedPool lazily builds the daemon-wide pool.
func (s *Scheduler) sharedPool() (*exec.Pool, error) {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.execPool != nil {
		return s.execPool, nil
	}
	ex, err := exec.FromFlags("pool", s.cfg.MinijvmPath, s.cfg.ChildTimeout, s.cfg.Pool)
	if err != nil {
		return nil, err
	}
	s.execPool = ex.(*exec.Pool)
	return s.execPool, nil
}

// poolStats snapshots the shared pool's counters and live-children
// count for /metrics; zeros when no pooled job has run yet, so the
// execpool series always exist.
func (s *Scheduler) poolStats() (exec.Stats, int) {
	s.poolMu.Lock()
	p := s.execPool
	s.poolMu.Unlock()
	if p == nil {
		return exec.Stats{}, 0
	}
	return p.Stats(), len(p.Pids())
}

// runJob executes one job end to end: mark running (bumping the resume
// count when a checkpoint exists), attach the triage pipeline, run the
// campaign under the harness with per-task checkpointing, then settle
// the final state. Cancellation of ctx (drain) or the job's own context
// (DELETE) interrupts the campaign between tasks; the final checkpoint
// is already flushed by the time RunCampaignContext returns.
func (s *Scheduler) runJob(ctx context.Context, j *Job) {
	id := j.ID()
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	spec := j.Spec()
	resuming := s.store.HasCheckpoint(id)

	executor, err := s.executorFor(spec)
	if err != nil {
		s.finishJob(j, nil, err, triage.Stats{})
		return
	}

	j.mu.Lock()
	j.rec.State = StateRunning
	if j.rec.Started == 0 {
		j.rec.Started = s.cfg.Now().Unix()
	}
	if resuming {
		j.rec.Resumes++
	}
	j.cancel = cancel
	j.cancelAsked = false
	j.hasProgress = false
	rec := j.rec
	j.mu.Unlock()
	if err := s.store.Save(&rec); err != nil {
		s.logf("job %s: persist running state: %v", id, err)
	}
	s.broker.Publish(id, Event{Type: "state", State: StateRunning})
	s.logf("job %s: running (budget %d, %d generated + %d user seeds, resumes %d)",
		id, spec.Budget, spec.SeedCount, len(spec.Seeds), rec.Resumes)

	s.reportMu.Lock()
	tstore, err := triage.Open(s.store.TriageDir(id))
	if err != nil {
		s.reportMu.Unlock()
		s.finishJob(j, nil, err, triage.Stats{})
		return
	}
	tworker, err := triage.NewWorker(triage.WorkerConfig{
		Store:    tstore,
		Executor: executor,
		Now:      func() int64 { return s.cfg.Now().Unix() },
	})
	if err != nil {
		tstore.Close()
		s.reportMu.Unlock()
		s.finishJob(j, nil, err, triage.Stats{})
		return
	}
	j.mu.Lock()
	j.tstore, j.tworker = tstore, tworker
	j.mu.Unlock()
	s.reportMu.Unlock()
	tworker.Start(jctx)

	ccfg := spec.Campaign(executor)
	ccfg.ParseCache = s.parse
	// The score cache lives next to the checkpoint: a resumed or
	// fleet-handed-off power campaign reloads its seed feature vectors
	// instead of re-profiling the pool.
	ccfg.ScoreCachePath = s.store.ScoreCachePath(id)
	// Minimized triage reproducers from this job's store feed template
	// extraction. On resume the checkpoint's pinned extras win inside
	// core, so handoff stays byte-identical even though the local store
	// may have accumulated more reductions since.
	ccfg.TemplateExtras = spec.TemplateExtras(tstore)

	ckpt := s.store.CheckpointPath(id)
	hcfg := harness.Config{
		CheckpointPath:  ckpt,
		CheckpointEvery: s.cfg.CheckpointEvery,
		ExecTimeout:     s.cfg.ExecTimeout,
		QuarantineDir:   s.store.QuarantineDir(id),
		MaxRetries:      2,
		Backoff:         100 * time.Millisecond,
	}
	if s.cfg.OnTask != nil {
		hcfg.OnTask = func(done int) { s.cfg.OnTask(id, done) }
	}
	lastExec := 0
	if resuming {
		hcfg.ResumePath = ckpt
		if ck, err := harness.LoadCheckpoint(ckpt); err == nil {
			// Restored executions are prior work, not new throughput.
			lastExec = ck.Executions
		}
	}
	// Both hooks run on the campaign goroutine in cursor order, so the
	// metric stream and the SSE stream are deterministic per job.
	// Generated-seed counts restored from a checkpoint are prior work;
	// baseline on the first callback (-1 sentinel) so only fresh
	// emissions move the gauge.
	lastGen := -1
	ccfg.OnProgress = func(p core.Progress) {
		s.metrics.AddExecutions(p.Executions - lastExec)
		lastExec = p.Executions
		if lastGen < 0 {
			lastGen = p.GeneratedSeeds
		} else if p.GeneratedSeeds > lastGen {
			s.metrics.AddGeneratedSeeds(p.GeneratedSeeds - lastGen)
			lastGen = p.GeneratedSeeds
		}
		if p.HasDelta {
			s.metrics.ObserveDelta(p.Delta)
		}
		if p.Fault != nil {
			s.metrics.AddFault(string(p.Fault.Class))
		}
		j.mu.Lock()
		j.progress, j.hasProgress = p, true
		j.mu.Unlock()
	}
	ccfg.OnFinding = func(f core.Finding) {
		s.metrics.AddFinding()
		if f.Oracle == "plan-differential" {
			s.metrics.AddPlanFinding()
		}
		if f.GeneratorID != "" {
			s.metrics.AddGenerateFinding()
		}
		tworker.Submit(f)
		fs := summarizeFinding(&f)
		s.broker.Publish(id, Event{Type: "finding", Finding: &fs})
	}

	res, runErr := core.RunCampaignContext(jctx, ccfg, hcfg)

	// Drain the triage queue (reductions may still be running), then
	// release the store before settling the job state.
	if err := tworker.Close(); err != nil {
		s.logf("job %s: triage flush: %v", id, err)
	}
	stats := tworker.Stats()
	s.reportMu.Lock()
	j.mu.Lock()
	j.tstore, j.tworker = nil, nil
	j.mu.Unlock()
	if err := tstore.Close(); err != nil {
		s.logf("job %s: triage store close: %v", id, err)
	}
	s.reportMu.Unlock()

	s.finishJob(j, res, runErr, stats)
}

// finishJob settles the job's post-run state and persists it.
func (s *Scheduler) finishJob(j *Job, res *core.CampaignResult, runErr error, stats triage.Stats) {
	id := j.ID()
	j.mu.Lock()
	if j.rec.Triage == nil {
		j.rec.Triage = &TriageStats{}
	}
	j.rec.Triage.add(stats)
	var state JobState
	switch {
	case runErr != nil:
		state = StateFailed
		j.rec.Error = runErr.Error()
		j.rec.Finished = s.cfg.Now().Unix()
	case res.Interrupted && j.cancelAsked:
		state = StateCancelled
		j.rec.Finished = s.cfg.Now().Unix()
	case res.Interrupted:
		// Drain: the final checkpoint is on disk; the next daemon
		// re-queues the job and resumes it from there.
		state = StateInterrupted
	default:
		state = StateDone
		j.rec.Result = Summarize(res)
		j.rec.Finished = s.cfg.Now().Unix()
		if res.CheckpointErrors > 0 {
			s.logf("job %s: %d checkpoint write(s) failed (last: %s)", id, res.CheckpointErrors, res.LastCheckpointError)
		}
	}
	j.rec.State = state
	j.cancel = nil
	rec := j.rec
	j.mu.Unlock()
	if err := s.store.Save(&rec); err != nil {
		s.logf("job %s: persist final state: %v", id, err)
	}
	s.broker.Publish(id, Event{Type: "state", State: state})
	s.logf("job %s: %s", id, state)
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
