package service

import "sync"

// Event is one live notification on a job's finding stream.
type Event struct {
	// Type is "finding" for a streamed finding occurrence or "state" for
	// a job lifecycle transition.
	Type  string `json:"type"`
	JobID string `json:"job_id"`
	Seq   int    `json:"seq"`
	// Finding is set for "finding" events.
	Finding *FindingSummary `json:"finding,omitempty"`
	// State is set for "state" events.
	State JobState `json:"state,omitempty"`
}

// Broker fans live job events out to stream subscribers (SSE clients
// and long-pollers). Publishing never blocks — a subscriber that falls
// behind its buffer misses events rather than stalling the campaign
// goroutine; the persistent triage store remains the source of truth,
// and the stream is a live tail, not a durable log.
type Broker struct {
	mu   sync.Mutex
	subs map[string]map[chan Event]struct{}
	seq  map[string]int
}

// NewBroker builds an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: map[string]map[chan Event]struct{}{}, seq: map[string]int{}}
}

// Subscribe registers a buffered event channel for one job. The cancel
// func unregisters it; the channel is never closed by the broker, so
// receivers select against their own context.
func (b *Broker) Subscribe(jobID string) (<-chan Event, func()) {
	ch := make(chan Event, 64)
	b.mu.Lock()
	if b.subs[jobID] == nil {
		b.subs[jobID] = map[chan Event]struct{}{}
	}
	b.subs[jobID][ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		delete(b.subs[jobID], ch)
		if len(b.subs[jobID]) == 0 {
			delete(b.subs, jobID)
		}
		b.mu.Unlock()
	}
}

// Publish stamps and delivers an event to every subscriber of the job,
// dropping it for subscribers whose buffers are full.
func (b *Broker) Publish(jobID string, ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq[jobID]++
	ev.JobID, ev.Seq = jobID, b.seq[jobID]
	for ch := range b.subs[jobID] {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than block the campaign
		}
	}
}
