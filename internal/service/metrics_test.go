package service

import (
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
)

// fakeClock advances only when told, pinning rate/uptime math.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func renderMetrics(m *Metrics, jobs map[JobState]int, tr TriageStats) string {
	var sb strings.Builder
	m.Render(&sb, jobs, tr)
	return sb.String()
}

func wantLine(t *testing.T, out, line string) {
	t.Helper()
	if !strings.Contains(out, line+"\n") {
		t.Errorf("metrics output missing %q\n---\n%s", line, out)
	}
}

func TestMetricsRender(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m := NewMetrics(clock.now)

	m.AddExecutions(40)
	m.AddExecutions(10)
	m.AddExecutions(0) // ignored
	m.AddFinding()
	m.AddFinding()
	m.AddFault("crash")
	m.AddFault("crash")
	m.AddFault("timeout")
	m.AddJobAccepted()
	m.AddGenerateJob()
	m.AddGeneratedSeeds(4)
	m.AddGeneratedSeeds(0)  // ignored
	m.AddGeneratedSeeds(-1) // ignored
	m.AddGenerateFinding()
	for _, d := range []float64{0, 1, 3, 100, 1e6} {
		m.ObserveDelta(d)
	}
	clock.advance(10 * time.Second)

	out := renderMetrics(m, map[JobState]int{StateDone: 2, StateRunning: 1},
		TriageStats{Received: 10, Novel: 3, Duplicates: 7})

	wantLine(t, out, `mopfuzzd_jobs{state="done"} 2`)
	wantLine(t, out, `mopfuzzd_jobs{state="running"} 1`)
	wantLine(t, out, `mopfuzzd_jobs{state="queued"} 0`) // zero states still emitted
	wantLine(t, out, `mopfuzzd_jobs_accepted_total 1`)
	wantLine(t, out, `mopfuzzd_executions_total 50`)
	wantLine(t, out, `mopfuzzd_executions_per_second 5`)
	wantLine(t, out, `mopfuzzd_findings_total 2`)
	wantLine(t, out, `mopfuzzd_generate_jobs_total 1`)
	wantLine(t, out, `mopfuzzd_generate_seeds_total 4`)
	wantLine(t, out, `mopfuzzd_generate_findings_total 1`)
	wantLine(t, out, `mopfuzzd_faults_total{class="crash"} 2`)
	wantLine(t, out, `mopfuzzd_faults_total{class="timeout"} 1`)
	// Every known class appears even at zero, so dashboards can rely on
	// the series existing.
	wantLine(t, out, `mopfuzzd_faults_total{class="miscompile"} 0`)
	wantLine(t, out, `mopfuzzd_faults_total{class="heap-exhausted"} 0`)
	wantLine(t, out, `mopfuzzd_faults_total{class="harness-fault"} 0`)
	// Histogram buckets are cumulative.
	wantLine(t, out, `mopfuzzd_obv_delta_bucket{le="0"} 1`)
	wantLine(t, out, `mopfuzzd_obv_delta_bucket{le="1"} 2`)
	wantLine(t, out, `mopfuzzd_obv_delta_bucket{le="5"} 3`)
	wantLine(t, out, `mopfuzzd_obv_delta_bucket{le="100"} 4`)
	wantLine(t, out, `mopfuzzd_obv_delta_bucket{le="+Inf"} 5`)
	wantLine(t, out, `mopfuzzd_obv_delta_count 5`)
	wantLine(t, out, `mopfuzzd_triage_findings_total 10`)
	wantLine(t, out, `mopfuzzd_triage_signatures_total 3`)
	wantLine(t, out, `mopfuzzd_triage_dedup_hits_total 7`)
	wantLine(t, out, `mopfuzzd_triage_dedup_hit_ratio 0.7`)
	wantLine(t, out, `mopfuzzd_uptime_seconds 10`)
}

func TestRenderExecPool(t *testing.T) {
	var sb strings.Builder
	RenderExecPool(&sb, exec.Stats{
		Executions:      40,
		Batches:         8,
		Spawns:          3,
		SpawnsAvoided:   37,
		RecycledByCount: 2,
		RecycledByMem:   1,
		Killed:          4,
		Retries:         1,
		Faults:          1,
	}, 2)
	out := sb.String()
	wantLine(t, out, `mopfuzzd_execpool_children_live 2`)
	wantLine(t, out, `mopfuzzd_execpool_executions_total 40`)
	wantLine(t, out, `mopfuzzd_execpool_batches_total 8`)
	wantLine(t, out, `mopfuzzd_execpool_mean_batch_size 5`)
	wantLine(t, out, `mopfuzzd_execpool_spawns_total 3`)
	wantLine(t, out, `mopfuzzd_execpool_spawns_avoided_total 37`)
	wantLine(t, out, `mopfuzzd_execpool_recycled_total{reason="executions"} 2`)
	wantLine(t, out, `mopfuzzd_execpool_recycled_total{reason="memory"} 1`)
	wantLine(t, out, `mopfuzzd_execpool_killed_total 4`)
	wantLine(t, out, `mopfuzzd_execpool_retries_total 1`)
	wantLine(t, out, `mopfuzzd_execpool_faults_total 1`)

	// Without a pool the series still exist at zero.
	sb.Reset()
	RenderExecPool(&sb, exec.Stats{}, 0)
	out = sb.String()
	wantLine(t, out, `mopfuzzd_execpool_children_live 0`)
	wantLine(t, out, `mopfuzzd_execpool_mean_batch_size 0`)
}

func TestMetricsZeroSafe(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	m := NewMetrics(clock.now)
	// Zero uptime and zero triage volume must not divide by zero.
	out := renderMetrics(m, nil, TriageStats{})
	wantLine(t, out, `mopfuzzd_executions_per_second 0`)
	wantLine(t, out, `mopfuzzd_triage_dedup_hit_ratio 0`)
	wantLine(t, out, `mopfuzzd_obv_delta_bucket{le="+Inf"} 0`)
	wantLine(t, out, `mopfuzzd_generate_jobs_total 0`)
	wantLine(t, out, `mopfuzzd_generate_seeds_total 0`)
}
