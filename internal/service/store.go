package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// JobStore persists job records under a state directory:
//
//	<dir>/jobs/<id>/job.json         versioned job record
//	<dir>/jobs/<id>/checkpoint.json  harness campaign checkpoint
//	<dir>/jobs/<id>/triage/          per-job triage store
//	<dir>/jobs/<id>/quarantine/      pathological mutants
//
// Records are written atomically (temp file + rename), so a daemon
// killed mid-write leaves the previous record intact; the campaign
// checkpoint machinery gives the same guarantee for run state, which is
// what makes restart-resume safe.
type JobStore struct {
	dir string
}

// OpenJobStore opens (creating if needed) the store rooted at dir.
func OpenJobStore(dir string) (*JobStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: open job store: %w", err)
	}
	return &JobStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *JobStore) Dir() string { return st.dir }

// JobDir returns the directory owning one job's artifacts.
func (st *JobStore) JobDir(id string) string { return filepath.Join(st.dir, "jobs", id) }

// CheckpointPath returns the job's campaign checkpoint file.
func (st *JobStore) CheckpointPath(id string) string {
	return filepath.Join(st.JobDir(id), "checkpoint.json")
}

// ScoreCachePath returns the job's persisted seed-score cache — the
// corpus feature vectors a resumed power-schedule campaign reloads
// instead of re-profiling its pool.
func (st *JobStore) ScoreCachePath(id string) string {
	return filepath.Join(st.JobDir(id), "scores.json")
}

// TriageDir returns the job's triage store directory.
func (st *JobStore) TriageDir(id string) string { return filepath.Join(st.JobDir(id), "triage") }

// QuarantineDir returns the job's quarantine directory.
func (st *JobStore) QuarantineDir(id string) string {
	return filepath.Join(st.JobDir(id), "quarantine")
}

// Save persists a job record atomically.
func (st *JobStore) Save(rec *jobRecord) error {
	rec.Version = jobVersion
	if rec.ID == "" {
		return fmt.Errorf("service: save job: empty id")
	}
	if err := os.MkdirAll(st.JobDir(rec.ID), 0o755); err != nil {
		return fmt.Errorf("service: save job %s: %w", rec.ID, err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode job %s: %w", rec.ID, err)
	}
	path := filepath.Join(st.JobDir(rec.ID), "job.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: write job %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: write job %s: %w", rec.ID, err)
	}
	return nil
}

// Load reads and validates one job record.
func (st *JobStore) Load(id string) (*jobRecord, error) {
	data, err := os.ReadFile(filepath.Join(st.JobDir(id), "job.json"))
	if err != nil {
		return nil, fmt.Errorf("service: load job %s: %w", id, err)
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("service: decode job %s: %w", id, err)
	}
	if rec.Version != jobVersion {
		return nil, fmt.Errorf("service: job %s record version %d, want %d", id, rec.Version, jobVersion)
	}
	if rec.ID != id {
		return nil, fmt.Errorf("service: job record in %s names id %q", id, rec.ID)
	}
	return &rec, nil
}

// LoadAll reads every job record, sorted by ID (submission order, since
// IDs are a zero-padded sequence). A record that fails to load — a
// corrupt or truncated job.json, a version mismatch — does not fail the
// whole scan: its job directory is moved aside to
// <dir>/jobs-quarantined/<id> (artifacts preserved for forensics) and
// its ID is reported in quarantined, so one bad record cannot keep a
// daemon restart from resuming every healthy job.
func (st *JobStore) LoadAll() (recs []*jobRecord, quarantined []string, err error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, nil, fmt.Errorf("service: scan job store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := st.Load(e.Name())
		if err != nil {
			if qerr := st.quarantineJobDir(e.Name()); qerr != nil {
				// Can't even move it aside: now startup must stop, or the
				// same record would poison every restart.
				return nil, nil, fmt.Errorf("service: quarantine job %s (%v): %w", e.Name(), err, qerr)
			}
			quarantined = append(quarantined, e.Name())
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })
	sort.Strings(quarantined)
	return recs, quarantined, nil
}

// quarantineJobDir moves a job's directory under jobs-quarantined/.
func (st *JobStore) quarantineJobDir(id string) error {
	qdir := filepath.Join(st.dir, "jobs-quarantined")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(qdir, id)
	// A leftover from an earlier quarantine of the same ID must not block
	// this one; the newest evidence wins.
	_ = os.RemoveAll(dst)
	return os.Rename(st.JobDir(id), dst)
}

// QuarantineCheckpoint sets a job's corrupt campaign checkpoint aside
// as checkpoint.json.corrupt, so the record itself survives (marked
// quarantined by the scheduler) and the bad snapshot is preserved for
// inspection instead of being retried on every restart.
func (st *JobStore) QuarantineCheckpoint(id string) error {
	path := st.CheckpointPath(id)
	return os.Rename(path, path+".corrupt")
}

// NextID returns the first unused sequence ID after the given records.
func NextID(recs []*jobRecord) int {
	next := 1
	for _, r := range recs {
		if n, ok := seqOf(r.ID); ok && n >= next {
			next = n + 1
		}
	}
	return next
}

// FormatID renders a sequence number as a job ID ("job-0001").
func FormatID(n int) string { return fmt.Sprintf("job-%04d", n) }

func seqOf(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// HasCheckpoint reports whether a campaign checkpoint exists for id.
func (st *JobStore) HasCheckpoint(id string) bool {
	_, err := os.Stat(st.CheckpointPath(id))
	return err == nil
}
