package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
)

// TestDistillEndpoint walks the corpus distillation surface: a valid
// request returns a strictly smaller, deterministic subset; repeating
// it returns byte-identical JSON (the CI smoke contract); malformed
// requests are rejected; and the corpus metrics series reflect the
// traffic.
func TestDistillEndpoint(t *testing.T) {
	sched := newTestScheduler(t, Config{})
	srv := httptest.NewServer(NewServer(sched).Handler())
	defer srv.Close()
	client := srv.Client()

	var first corpus.DistillReport
	req := `{"seed_count": 12, "seed": 5}`
	postJSON(t, client, srv.URL+"/corpus/distill", req, 200, &first)
	if first.Submitted != 12 {
		t.Fatalf("Submitted = %d, want 12", first.Submitted)
	}
	if first.Kept <= 0 || first.Kept >= first.Submitted {
		t.Fatalf("Kept = %d of %d, want a strict non-empty subset", first.Kept, first.Submitted)
	}
	if len(first.Scores) != 12 {
		t.Fatalf("Scores len = %d, want one per submitted seed", len(first.Scores))
	}

	// Determinism: the same request yields the same report.
	var second corpus.DistillReport
	postJSON(t, client, srv.URL+"/corpus/distill", req, 200, &second)
	if len(second.KeptSeeds) != len(first.KeptSeeds) {
		t.Fatalf("kept %d then %d seeds for the same request", len(first.KeptSeeds), len(second.KeptSeeds))
	}
	for i := range first.KeptSeeds {
		if first.KeptSeeds[i] != second.KeptSeeds[i] {
			t.Fatalf("kept set drifted: %v vs %v", first.KeptSeeds, second.KeptSeeds)
		}
	}

	// max_keep caps the subset.
	var capped corpus.DistillReport
	postJSON(t, client, srv.URL+"/corpus/distill", `{"seed_count": 12, "seed": 5, "max_keep": 2}`, 200, &capped)
	if capped.Kept > 2 {
		t.Errorf("max_keep=2 kept %d", capped.Kept)
	}

	// User seeds ride along with the generated pool.
	var withUser corpus.DistillReport
	postJSON(t, client, srv.URL+"/corpus/distill",
		`{"seed_count": 2, "seed": 5, "seeds": [{"name": "Mine", "source": "class T { static void main() { print(42); } }"}]}`,
		200, &withUser)
	if withUser.Submitted != 3 {
		t.Errorf("Submitted = %d, want 2 generated + 1 user seed", withUser.Submitted)
	}

	// Rejections: bad JSON, unknown fields, malformed seed source, bad
	// backend.
	postJSON(t, client, srv.URL+"/corpus/distill", `{not json`, 400, nil)
	postJSON(t, client, srv.URL+"/corpus/distill", `{"bogus": 1}`, 400, nil)
	postJSON(t, client, srv.URL+"/corpus/distill", `{"seeds": [{"source": "class {"}]}`, 400, nil)
	postJSON(t, client, srv.URL+"/corpus/distill", `{"seed_count": 2, "backend": "no-such-backend"}`, 400, nil)

	// The corpus metrics series count the successful requests.
	var buf bytes.Buffer
	sched.RenderMetrics(&buf)
	text := buf.String()
	for metric, want := range map[string]string{
		"mopfuzzd_corpus_distill_requests_total": "4",
		"mopfuzzd_corpus_parsecache_hits_total":  "", // present; value depends on pool overlap
		"mopfuzzd_corpus_sched_arms":             "0",
		"mopfuzzd_corpus_sched_energy":           "0",
	} {
		line := ""
		for _, l := range strings.Split(text, "\n") {
			if strings.HasPrefix(l, metric+" ") {
				line = l
				break
			}
		}
		if line == "" {
			t.Errorf("metric %s missing from /metrics output", metric)
			continue
		}
		if want != "" && line != metric+" "+want {
			t.Errorf("%s, want value %s", line, want)
		}
	}
}

// TestJobSpecScheduleRuns pins the service-level schedule knob: a job
// submitted with "schedule": "power" runs to completion and its final
// summary is deterministic across two identical submissions.
func TestJobSpecScheduleRuns(t *testing.T) {
	sched := newTestScheduler(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)

	spec := JobSpec{SeedCount: 3, Budget: 90, Seed: 9, Schedule: "power"}
	run := func() *ResultSummary {
		j, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		v := waitJob(t, sched, j.ID(), 5*time.Minute, func(v JobView) bool { return v.State.Terminal() })
		if v.State != StateDone {
			t.Fatalf("power job ended %s (error %q)", v.State, v.Error)
		}
		if v.Result == nil {
			t.Fatal("no result summary")
		}
		return v.Result
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("power schedule results differ across identical jobs:\nfirst  %s\nsecond %s", aj, bj)
	}

	if _, err := sched.Submit(JobSpec{SeedCount: 2, Schedule: "bogus"}); err == nil {
		t.Error("bogus schedule mode accepted by Submit")
	}
}
