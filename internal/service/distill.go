package service

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exec"
)

// DistillRequest is a POST /corpus/distill body: a seed corpus —
// generated (seed_count/seed, exactly like a job submission) and/or
// user-supplied — plus the distillation knobs. The endpoint scores the
// corpus with one profiling dry-run per seed and returns the minimal
// maximally-diverse subset, without creating a job.
type DistillRequest struct {
	// SeedCount generates that many corpus seeds from Seed; user seeds
	// in Seeds are appended after them. Default 8 when Seeds is empty.
	SeedCount int        `json:"seed_count,omitempty"`
	Seed      int64      `json:"seed,omitempty"` // RNG seed (default 1)
	Seeds     []SeedSpec `json:"seeds,omitempty"`
	// Spread is the minimum pairwise distance a kept seed must add
	// (<= 0 uses corpus.DefaultDistillSpread).
	Spread float64 `json:"spread,omitempty"`
	// MaxKeep caps the subset size (0 = no cap).
	MaxKeep int `json:"max_keep,omitempty"`
	// Backend pins the execution backend for the profiling dry-runs;
	// empty inherits the daemon's default.
	Backend string `json:"backend,omitempty"`
}

// Validate normalizes a distillation request in place, applying the
// same defaults and seed vetting as a job submission.
func (r *DistillRequest) Validate() error {
	if r.SeedCount < 0 {
		return fmt.Errorf("seed_count must be non-negative")
	}
	if r.SeedCount == 0 && len(r.Seeds) == 0 {
		r.SeedCount = 8
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.MaxKeep < 0 {
		return fmt.Errorf("max_keep must be non-negative")
	}
	if !exec.ValidBackend(r.Backend) {
		return fmt.Errorf("unknown backend %q (want %s)", r.Backend, strings.Join(exec.Backends(), " or "))
	}
	for i := range r.Seeds {
		if r.Seeds[i].Name == "" {
			r.Seeds[i].Name = fmt.Sprintf("User%04d", i+1)
		}
		if err := validateSeed(r.Seeds[i]); err != nil {
			return err
		}
	}
	return nil
}

// pool materializes the request's corpus, mirroring JobSpec.pool.
func (r *DistillRequest) pool() []corpus.Seed {
	out := corpus.DefaultPool(r.SeedCount, r.Seed)
	for _, sd := range r.Seeds {
		out = append(out, corpus.Seed{Name: sd.Name, Source: sd.Source})
	}
	return out
}

// Distill serves one distillation request on the daemon's execution
// backend. No score cache is threaded: requests are one-shot, and the
// shared parse cache already absorbs the repeated-submission cost.
func (s *Scheduler) Distill(ctx context.Context, req *DistillRequest) (*corpus.DistillReport, error) {
	executor, err := s.executorFor(JobSpec{Backend: req.Backend})
	if err != nil {
		return nil, err
	}
	_, rep, err := core.DistillSeeds(ctx, req.pool(), executor, "", req.Spread, req.MaxKeep)
	if err != nil {
		return nil, err
	}
	s.metrics.AddDistill(rep.Submitted, rep.Kept)
	s.logf("corpus distill: %d seeds -> %d kept (spread %g)", rep.Submitted, rep.Kept, rep.Spread)
	return rep, nil
}
