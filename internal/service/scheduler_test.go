package service

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestScheduler builds a scheduler over a temp state dir. The
// returned config copy carries the dir for reopening (restart tests).
func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitJob polls until the job satisfies pred or the deadline passes.
func waitJob(t *testing.T, s *Scheduler, id string, timeout time.Duration, pred func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := s.Get(id)
		if j == nil {
			t.Fatalf("job %s disappeared", id)
		}
		v := j.View()
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s after %v", id, v.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, s *Scheduler, id string, timeout time.Duration) JobView {
	t.Helper()
	return waitJob(t, s, id, timeout, func(v JobView) bool { return v.State.Terminal() })
}

// smallSpec is a fast job: 2 generated seeds, tiny budget.
func smallSpec() JobSpec { return JobSpec{SeedCount: 2, Budget: 60, Seed: 3} }

func TestSchedulerRunsJobToDone(t *testing.T) {
	s := newTestScheduler(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	j, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-0001" {
		t.Errorf("first job ID = %s", j.ID())
	}
	v := waitTerminal(t, s, j.ID(), 3*time.Minute)
	if v.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", v.State, v.Error)
	}
	if v.Result == nil || v.Result.Executions < 60 {
		t.Fatalf("Result = %+v, want budget reached", v.Result)
	}
	if v.Triage == nil {
		t.Error("no triage stats recorded")
	}
	if v.Started == 0 || v.Finished == 0 {
		t.Errorf("timestamps not set: started %d finished %d", v.Started, v.Finished)
	}
	// The persisted record matches the live view.
	rec, err := s.Store().Load(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateDone || rec.Result == nil || rec.Result.Executions != v.Result.Executions {
		t.Errorf("persisted record = %+v", rec)
	}
	if got := s.Metrics().Executions(); got < 60 {
		t.Errorf("metrics executions = %d, want >= 60", got)
	}
	// The findings report is servable after the run (store re-opened).
	if _, err := s.Report(j.ID()); err != nil {
		t.Errorf("Report: %v", err)
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	s := newTestScheduler(t, Config{})
	// Not started: the job stays queued.
	j, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got)
	}
	if _, err := s.Cancel(j.ID()); err == nil || !strings.Contains(err.Error(), "finished") {
		t.Errorf("second cancel err = %v, want ErrTerminal", err)
	}
	rec, err := s.Store().Load(j.ID())
	if err != nil || rec.State != StateCancelled {
		t.Errorf("persisted state = %v (err %v)", rec, err)
	}
}

func TestSchedulerCancelRunning(t *testing.T) {
	var (
		s    *Scheduler
		once sync.Once
	)
	s = newTestScheduler(t, Config{
		OnTask: func(id string, done int) {
			if done == 1 {
				once.Do(func() {
					if _, err := s.Cancel(id); err != nil {
						t.Errorf("cancel running: %v", err)
					}
				})
			}
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := JobSpec{SeedCount: 3, Budget: 150, Seed: 7}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, s, j.ID(), 3*time.Minute)
	if v.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	// The interrupted campaign flushed its checkpoint before settling.
	if !s.Store().HasCheckpoint(j.ID()) {
		t.Error("no checkpoint flushed by the cancelled campaign")
	}
}

func TestSchedulerAddSeeds(t *testing.T) {
	s := newTestScheduler(t, Config{})
	j, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()

	if _, err := s.AddSeeds(id, []SeedSpec{{Source: "class U { static void main() { print(7); } }"}}); err != nil {
		t.Fatal(err)
	}
	spec := j.Spec()
	if len(spec.Seeds) != 1 || spec.Seeds[0].Name != "User0001" {
		t.Fatalf("seeds after add = %+v", spec.Seeds)
	}
	// Malformed source is rejected and nothing is appended.
	if _, err := s.AddSeeds(id, []SeedSpec{{Source: "class {"}}); err == nil {
		t.Error("malformed seed accepted")
	}
	if got := len(j.Spec().Seeds); got != 1 {
		t.Errorf("seed count after rejected add = %d", got)
	}
	// The append was persisted.
	rec, err := s.Store().Load(id)
	if err != nil || len(rec.Spec.Seeds) != 1 {
		t.Errorf("persisted seeds = %+v (err %v)", rec, err)
	}

	// A job with checkpointed state awaiting resume refuses new seeds:
	// the pool is part of the deterministic resume input.
	if err := os.WriteFile(s.Store().CheckpointPath(id), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddSeeds(id, []SeedSpec{{Source: "class V { static void main() { print(8); } }"}}); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("add-seeds with checkpoint err = %v, want rejection", err)
	}

	if _, err := s.AddSeeds("job-9999", nil); err == nil {
		t.Error("unknown job accepted seeds")
	}
}

func TestSchedulerDrainingRejectsSubmit(t *testing.T) {
	s := newTestScheduler(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	cancel()
	s.Wait()
	if !s.Draining() {
		t.Error("Draining() = false after shutdown")
	}
	if _, err := s.Submit(smallSpec()); err != ErrDraining {
		t.Errorf("Submit while draining err = %v, want ErrDraining", err)
	}
}

func TestSchedulerRunnersBound(t *testing.T) {
	// With one runner, two queued jobs never run concurrently: the
	// second starts only after the first is terminal.
	s := newTestScheduler(t, Config{Runners: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	a, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	va := waitTerminal(t, s, a.ID(), 3*time.Minute)
	vb := waitTerminal(t, s, b.ID(), 3*time.Minute)
	if va.State != StateDone || vb.State != StateDone {
		t.Fatalf("states = %s, %s", va.State, vb.State)
	}
	if vb.Started < va.Finished {
		t.Errorf("second job started at %d before first finished at %d with 1 runner", vb.Started, va.Finished)
	}
}

func TestSchedulerGeneratorJob(t *testing.T) {
	s := newTestScheduler(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := smallSpec()
	spec.Generators = []string{"randprog", "template"}
	spec.Styles = []string{"boxing-loop"}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, s, j.ID(), 3*time.Minute)
	if v.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", v.State, v.Error)
	}
	var sb strings.Builder
	s.RenderMetrics(&sb)
	out := sb.String()
	wantLine(t, out, "mopfuzzd_generate_jobs_total 1")
	if strings.Contains(out, "mopfuzzd_generate_seeds_total 0\n") {
		t.Errorf("generated-seed metric stayed at zero\n---\n%s", out)
	}

	// A baseline-only job leaves the generate counters untouched.
	j2, err := s.Submit(JobSpec{SeedCount: 2, Budget: 20, Seed: 5, Generators: []string{"randprog"}})
	if err != nil {
		t.Fatal(err)
	}
	if waitTerminal(t, s, j2.ID(), 3*time.Minute).State != StateDone {
		t.Fatal("baseline-only generator job did not finish")
	}
	sb.Reset()
	s.RenderMetrics(&sb)
	wantLine(t, sb.String(), "mopfuzzd_generate_jobs_total 1")
}
