package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// drainInterrupted runs spec until two tasks complete, drains, and
// returns the interrupted job's ID (checkpoint on disk). The scheduler
// is fully stopped on return.
func drainInterrupted(t *testing.T, dir string, spec JobSpec) string {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	var once sync.Once
	s := newTestScheduler(t, Config{
		Dir: dir,
		OnTask: func(id string, done int) {
			if done == 2 {
				once.Do(stop)
				select {
				case <-ctx.Done():
				case <-time.After(5 * time.Second):
				}
			}
		},
	})
	s.Start(ctx)
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()
	s.Wait()
	if got := j.State(); got != StateInterrupted {
		t.Fatalf("state after drain = %s, want interrupted", got)
	}
	if !s.Store().HasCheckpoint(id) {
		t.Fatal("no campaign checkpoint on disk after drain")
	}
	return id
}

// TestRestartQuarantinesCorruptCheckpoint pins the corrupt-state
// startup policy: a restart that finds a job's campaign checkpoint
// undecodable must quarantine that job (snapshot preserved as
// checkpoint.json.corrupt, counted in /metrics) and keep starting —
// one bad snapshot cannot take down the daemon or the other jobs.
func TestRestartQuarantinesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	id := drainInterrupted(t, dir, resumeSpec(""))

	// Corrupt the checkpoint: a torn write from a crashed daemon.
	store, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.CheckpointPath(id), []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestScheduler(t, Config{Dir: dir})
	j := s2.Get(id)
	if j == nil {
		t.Fatal("restarted daemon lost the job")
	}
	if got := j.State(); got != StateQuarantined {
		t.Fatalf("state after restart = %s, want quarantined", got)
	}
	if _, err := os.Stat(store.CheckpointPath(id) + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot not preserved: %v", err)
	}
	if store.HasCheckpoint(id) {
		t.Error("corrupt checkpoint still in place")
	}
	if v := j.View(); !strings.Contains(v.Error, "corrupt campaign checkpoint") {
		t.Errorf("quarantine reason not recorded: %q", v.Error)
	}

	// The daemon is healthy: new jobs still run to completion, and the
	// quarantine is visible in metrics.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	j2, err := s2.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, s2, j2.ID(), 3*time.Minute); v.State != StateDone {
		t.Fatalf("post-quarantine job ended %s (error %q)", v.State, v.Error)
	}
	var buf strings.Builder
	s2.RenderMetrics(&buf)
	if !strings.Contains(buf.String(), "mopfuzzd_jobs_quarantined_total 1") {
		t.Errorf("quarantine not counted in metrics:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `mopfuzzd_jobs{state="quarantined"} 1`) {
		t.Errorf("quarantined gauge missing:\n%s", buf.String())
	}
}

// TestRestartQuarantinesCorruptJobRecord pins the same policy one
// level up: a job.json that no longer parses moves the whole job dir
// to jobs-quarantined/ and startup continues with every healthy job.
func TestRestartQuarantinesCorruptJobRecord(t *testing.T) {
	dir := t.TempDir()
	s := newTestScheduler(t, Config{Dir: dir})
	j1, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Never started: both stay queued on disk. Corrupt the first.
	recPath := filepath.Join(s.Store().JobDir(j1.ID()), "job.json")
	if err := os.WriteFile(recPath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestScheduler(t, Config{Dir: dir})
	if s2.Get(j1.ID()) != nil {
		t.Error("corrupt job still loaded")
	}
	if s2.Get(j2.ID()) == nil {
		t.Fatal("healthy job lost alongside the corrupt one")
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs-quarantined", j1.ID(), "job.json")); err != nil {
		t.Errorf("corrupt record not preserved for forensics: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	if v := waitTerminal(t, s2, j2.ID(), 3*time.Minute); v.State != StateDone {
		t.Fatalf("healthy job ended %s (error %q)", v.State, v.Error)
	}
	var buf strings.Builder
	s2.RenderMetrics(&buf)
	if !strings.Contains(buf.String(), "mopfuzzd_jobs_quarantined_total 1") {
		t.Errorf("quarantine not counted in metrics:\n%s", buf.String())
	}
}

// TestRestartSurvivesStrayCheckpointTmp pins the torn-write story for
// the atomic checkpoint protocol: a daemon killed mid-checkpoint-write
// leaves checkpoint.json.tmp garbage next to the intact previous
// snapshot, and the restart must resume from the snapshot untouched by
// the stray temp file — byte-identical to an uninterrupted run.
func TestRestartSurvivesStrayCheckpointTmp(t *testing.T) {
	spec := resumeSpec("")
	want := resultJSON(t, runJobToCompletion(t, t.TempDir(), spec))

	dir := t.TempDir()
	id := drainInterrupted(t, dir, spec)
	store, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The kill-mid-write artifact: a partial temp file. The rename never
	// happened, so checkpoint.json still holds the previous snapshot.
	tmp := store.CheckpointPath(id) + ".tmp"
	if err := os.WriteFile(tmp, []byte(`{"version":2,"cur`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestScheduler(t, Config{Dir: dir})
	if got := s2.Get(id).State(); got != StateQueued {
		t.Fatalf("state after restart = %s, want re-queued", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	v := waitTerminal(t, s2, id, 5*time.Minute)
	if v.State != StateDone {
		t.Fatalf("resumed job ended %s (error %q)", v.State, v.Error)
	}
	if got := resultJSON(t, v); string(got) != string(want) {
		t.Errorf("resume with stray tmp differs:\n got %s\nwant %s", got, want)
	}
}

// TestHTTPDeleteOfJobMidTask pins the cancel path for a runner that is
// mid-campaign: DELETE must cancel the job between tasks, flush a
// final checkpoint, and settle the record as cancelled.
func TestHTTPDeleteOfJobMidTask(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reached := make(chan string, 1) // job ID once task 2 completes
	release := make(chan struct{})
	var once sync.Once
	s := newTestScheduler(t, Config{
		Dir: dir,
		OnTask: func(id string, done int) {
			if done == 2 {
				once.Do(func() {
					reached <- id
					// Hold the campaign between tasks until the DELETE has
					// landed, so the cancellation is observed mid-run
					// deterministically.
					select {
					case <-release:
					case <-time.After(10 * time.Second):
					}
				})
			}
		},
	})
	s.Start(ctx)
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	j, err := s.Submit(resumeSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()
	select {
	case got := <-reached:
		if got != id {
			t.Fatalf("unexpected job in OnTask: %s", got)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("campaign never reached task 2")
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE mid-task: status %d, want 200", resp.StatusCode)
	}
	close(release)

	v := waitTerminal(t, s, id, 2*time.Minute)
	if v.State != StateCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", v.State)
	}
	if !s.Store().HasCheckpoint(id) {
		t.Error("no final checkpoint after mid-task cancel")
	}
	// Cancelled is terminal: a second DELETE conflicts.
	req2, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE: status %d, want 409", resp2.StatusCode)
	}
}

// TestOversizedBodyRejected pins the request-body cap: a job
// submission (or seed upload) larger than the cap gets 413, not
// unbounded buffering.
func TestOversizedBodyRejected(t *testing.T) {
	s := newTestScheduler(t, Config{})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	big := strings.NewReader(`{"name":"` + strings.Repeat("x", 9<<20) + `"}`)
	resp, err := http.Post(srv.URL+"/jobs", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: status %d, want 413", resp.StatusCode)
	}
}
