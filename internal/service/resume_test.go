package service

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/harness"
)

// minijvmPath is the binary built by TestMain for subprocess-backend
// tests (or supplied via $MINIJVM). Empty means those tests skip.
var minijvmPath string

// TestMain builds cmd/minijvm once. -short skips the build (and with it
// every subprocess test), keeping unit-test runs fast.
func TestMain(m *testing.M) {
	flag.Parse()
	if !testing.Short() {
		if p := os.Getenv("MINIJVM"); p != "" {
			minijvmPath = p
		} else {
			dir, err := os.MkdirTemp("", "minijvm")
			if err == nil {
				bin := filepath.Join(dir, "minijvm")
				out, err := osexec.Command("go", "build", "-o", bin, "repro/cmd/minijvm").CombinedOutput()
				if err != nil {
					fmt.Fprintf(os.Stderr, "service_test: building minijvm failed, subprocess tests will skip: %v\n%s", err, out)
				} else {
					minijvmPath = bin
				}
				defer os.RemoveAll(dir)
			}
		}
	}
	os.Exit(m.Run())
}

// resumeSpec needs enough tasks that interrupting after the second
// leaves real work for the resumed daemon.
func resumeSpec(backend string) JobSpec {
	return JobSpec{SeedCount: 3, Budget: 150, Seed: 7, Backend: backend}
}

// runJobToCompletion runs one job on a fresh daemon over dir and
// returns its terminal view.
func runJobToCompletion(t *testing.T, dir string, spec JobSpec) JobView {
	t.Helper()
	s := newTestScheduler(t, Config{Dir: dir, MinijvmPath: minijvmPath})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, s, j.ID(), 5*time.Minute)
	cancel()
	s.Wait()
	if v.State != StateDone {
		t.Fatalf("reference job ended %s (error %q)", v.State, v.Error)
	}
	return v
}

// resultJSON is the byte-identity projection: ResultSummary carries no
// wall-clock state, so interrupted-and-resumed must match uninterrupted
// exactly.
func resultJSON(t *testing.T, v JobView) []byte {
	t.Helper()
	if v.Result == nil {
		t.Fatal("job has no result summary")
	}
	data, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// testDaemonRestartResume is the acceptance criterion: drain a daemon
// mid-campaign, start a new one over the same state dir, and the job
// must resume from its checkpoint and finish byte-identical to an
// uninterrupted run. drain triggers the first daemon's shutdown once
// the job has completed two tasks.
func testDaemonRestartResume(t *testing.T, backend string, drain func(stop context.CancelFunc)) {
	spec := resumeSpec(backend)
	want := resultJSON(t, runJobToCompletion(t, t.TempDir(), spec))

	dir := t.TempDir()
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	var once sync.Once
	s := newTestScheduler(t, Config{
		Dir:         dir,
		MinijvmPath: minijvmPath,
		OnTask: func(id string, done int) {
			if done == 2 {
				once.Do(func() { drain(stop) })
				// Block until the drain signal lands so the harness
				// observes it before dispatching the next task — the
				// deterministic-interruption seam.
				select {
				case <-ctx.Done():
				case <-time.After(5 * time.Second):
				}
			}
		},
	})
	s.Start(ctx)
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()
	s.Wait() // drain: final checkpoint flushed, triage store closed

	if got := j.State(); got != StateInterrupted {
		t.Fatalf("state after drain = %s, want interrupted", got)
	}
	if !s.Store().HasCheckpoint(id) {
		t.Fatal("no campaign checkpoint on disk after drain")
	}
	rec, err := s.Store().Load(id)
	if err != nil || rec.State != StateInterrupted {
		t.Fatalf("persisted state = %+v (err %v)", rec, err)
	}

	// "Restart the daemon": a new scheduler over the same state dir
	// re-queues the interrupted job and resumes it from the checkpoint.
	s2 := newTestScheduler(t, Config{Dir: dir, MinijvmPath: minijvmPath})
	j2 := s2.Get(id)
	if j2 == nil {
		t.Fatal("restarted daemon lost the job")
	}
	if got := j2.State(); got != StateQueued {
		t.Fatalf("state after restart = %s, want re-queued", got)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)
	v := waitTerminal(t, s2, id, 5*time.Minute)
	cancel2()
	s2.Wait()

	if v.State != StateDone {
		t.Fatalf("resumed job ended %s (error %q)", v.State, v.Error)
	}
	if v.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1", v.Resumes)
	}
	got := resultJSON(t, v)
	if string(got) != string(want) {
		t.Errorf("resumed result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestDaemonSIGTERMDrainThenRestartResumes drives the real signal path:
// SIGTERM hits the process, harness.ShutdownContext cancels the drain
// context, the running campaign checkpoints, and a restarted daemon
// resumes it to a byte-identical result.
func TestDaemonSIGTERMDrainThenRestartResumes(t *testing.T) {
	// ShutdownContext must wrap the scheduler context, so build it here
	// and let the drain hook deliver the signal to ourselves.
	spec := resumeSpec("")
	want := resultJSON(t, runJobToCompletion(t, t.TempDir(), spec))

	dir := t.TempDir()
	ctx, stop := harness.ShutdownContext(context.Background())
	defer stop()
	var once sync.Once
	s := newTestScheduler(t, Config{
		Dir: dir,
		OnTask: func(id string, done int) {
			if done == 2 {
				once.Do(func() {
					if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
						t.Errorf("self-SIGTERM: %v", err)
					}
				})
				select {
				case <-ctx.Done():
				case <-time.After(5 * time.Second):
				}
			}
		},
	})
	s.Start(ctx)
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()
	s.Wait()
	stop() // release the signal handler before any other test runs

	if ctx.Err() == nil {
		t.Fatal("SIGTERM did not cancel the shutdown context")
	}
	if got := j.State(); got != StateInterrupted {
		t.Fatalf("state after SIGTERM drain = %s, want interrupted", got)
	}
	if !s.Store().HasCheckpoint(id) {
		t.Fatal("no final checkpoint landed on SIGTERM")
	}

	s2 := newTestScheduler(t, Config{Dir: dir})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)
	v := waitTerminal(t, s2, id, 5*time.Minute)
	cancel2()
	s2.Wait()
	if v.State != StateDone || v.Resumes != 1 {
		t.Fatalf("resumed job: state %s resumes %d (error %q)", v.State, v.Resumes, v.Error)
	}
	if got := resultJSON(t, v); string(got) != string(want) {
		t.Errorf("post-SIGTERM resume differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

func TestDaemonRestartResumesInProcess(t *testing.T) {
	testDaemonRestartResume(t, "", func(stop context.CancelFunc) { stop() })
}

func TestDaemonRestartResumesSubprocess(t *testing.T) {
	if minijvmPath == "" {
		t.Skip("minijvm binary unavailable (-short or build failure)")
	}
	testDaemonRestartResume(t, "subprocess", func(stop context.CancelFunc) { stop() })
}
