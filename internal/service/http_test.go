package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/triage"
)

func getJSON(t *testing.T, client *http.Client, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d; body %s", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decode: %v; body %s", url, err, body)
		}
	}
}

func postJSON(t *testing.T, client *http.Client, url, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d; body %s", url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decode: %v; body %s", url, err, data)
		}
	}
}

// TestHTTPAPI walks the whole surface against one live daemon: submit,
// inspect, seed, run to completion, findings (plain, long-poll, SSE),
// metrics, cancellation conflicts, and drain.
func TestHTTPAPI(t *testing.T) {
	sched := newTestScheduler(t, Config{})
	srv := httptest.NewServer(NewServer(sched).Handler())
	defer srv.Close()
	client := srv.Client()

	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	getJSON(t, client, srv.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Draining {
		t.Fatalf("healthz = %+v", health)
	}

	// Rejections before anything is queued.
	postJSON(t, client, srv.URL+"/jobs", `{not json`, http.StatusBadRequest, nil)
	postJSON(t, client, srv.URL+"/jobs", `{"targets":["no-such-jvm"]}`, http.StatusBadRequest, nil)
	postJSON(t, client, srv.URL+"/jobs", `{"bogus_field":1}`, http.StatusBadRequest, nil)
	postJSON(t, client, srv.URL+"/jobs", `{"seeds":[{"source":"class {"}]}`, http.StatusBadRequest, nil)
	getJSON(t, client, srv.URL+"/jobs/job-0001", http.StatusNotFound, nil)

	// Submit a small job; the scheduler is not started yet, so it stays
	// queued while we mutate it.
	var created JobView
	postJSON(t, client, srv.URL+"/jobs", `{"seed_count":2,"budget":60,"seed":3}`, http.StatusCreated, &created)
	if created.ID != "job-0001" || created.State != StateQueued {
		t.Fatalf("created = %+v", created)
	}
	if created.Spec.Iterations != 50 {
		t.Errorf("defaults not applied in response: %+v", created.Spec)
	}

	var updated JobView
	postJSON(t, client, srv.URL+"/jobs/job-0001/seeds",
		`{"seeds":[{"source":"class U { static void main() { print(7); } }"}]}`, http.StatusOK, &updated)
	if len(updated.Spec.Seeds) != 1 || updated.Spec.Seeds[0].Name != "User0001" {
		t.Fatalf("seeds after add = %+v", updated.Spec.Seeds)
	}
	postJSON(t, client, srv.URL+"/jobs/job-0001/seeds", `{"seeds":[{"source":"class {"}]}`, http.StatusBadRequest, nil)
	postJSON(t, client, srv.URL+"/jobs/job-0001/seeds", `{"seeds":[]}`, http.StatusBadRequest, nil)
	postJSON(t, client, srv.URL+"/jobs/job-0404/seeds",
		`{"seeds":[{"source":"class U { static void main() { print(7); } }"}]}`, http.StatusNotFound, nil)

	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	getJSON(t, client, srv.URL+"/jobs", http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != "job-0001" {
		t.Fatalf("list = %+v", list)
	}

	// Run it. The long-poll subscribes while the job runs and must be
	// released by job events well before its wait expires.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)

	pollDone := make(chan error, 1)
	go func() {
		resp, err := client.Get(srv.URL + "/jobs/job-0001/findings?wait=4m")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("long-poll status %d", resp.StatusCode)
			}
		}
		pollDone <- err
	}()

	deadline := time.Now().Add(3 * time.Minute)
	var view JobView
	for {
		getJSON(t, client, srv.URL+"/jobs/job-0001", http.StatusOK, &view)
		if view.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.State != StateDone || view.Result == nil {
		t.Fatalf("job ended %+v", view)
	}

	select {
	case err := <-pollDone:
		if err != nil {
			t.Fatalf("long-poll: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("long-poll did not return after job completion")
	}

	// Seeds are frozen once the job has started.
	postJSON(t, client, srv.URL+"/jobs/job-0001/seeds",
		`{"seeds":[{"source":"class V { static void main() { print(8); } }"}]}`, http.StatusConflict, nil)

	// Findings: the payload is the triage.Report serialization.
	resp, err := client.Get(srv.URL + "/jobs/job-0001/findings")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("findings Content-Type = %q", ct)
	}
	var report triage.Report
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatalf("findings decode: %v", err)
	}
	resp.Body.Close()
	if report.Entries == nil {
		t.Error("findings report has no entries array")
	}

	// SSE on a finished job: a report event, then a terminal state event.
	resp, err = client.Get(srv.URL + "/jobs/job-0001/findings?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE Content-Type = %q", ct)
	}
	sse, err := io.ReadAll(bufio.NewReader(resp.Body))
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sse), "event: report") || !strings.Contains(string(sse), "event: state") {
		t.Errorf("SSE stream missing events:\n%s", sse)
	}
	// Every data frame must be one line of valid JSON (SSE framing).
	for _, line := range strings.Split(string(sse), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if !json.Valid([]byte(data)) {
				t.Errorf("SSE data frame is not single-line JSON: %q", line)
			}
		}
	}

	// Metrics: the acceptance-criteria series, with live values.
	mresp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mbody)
	wantLine(t, metrics, `mopfuzzd_jobs{state="done"} 1`)
	wantLine(t, metrics, `mopfuzzd_jobs_accepted_total 1`)
	for _, series := range []string{
		"mopfuzzd_executions_total ",
		"mopfuzzd_executions_per_second ",
		`mopfuzzd_faults_total{class="crash"} `,
		`mopfuzzd_faults_total{class="miscompile"} `,
		`mopfuzzd_faults_total{class="timeout"} `,
		"mopfuzzd_obv_delta_bucket",
		"mopfuzzd_triage_findings_total ",
		"mopfuzzd_triage_dedup_hits_total ",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics missing series %q", series)
		}
	}
	var execs int64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "mopfuzzd_executions_total ") {
			fmt.Sscanf(line, "mopfuzzd_executions_total %d", &execs)
		}
	}
	if execs < 60 {
		t.Errorf("mopfuzzd_executions_total = %d, want >= budget", execs)
	}

	// Cancel conflicts: terminal job, then unknown job.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/job-0001", nil)
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE terminal job = %d, want 409", dresp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/jobs/job-0404", nil)
	dresp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", dresp.StatusCode)
	}

	// Drain: submissions now bounce with 503.
	cancel()
	sched.Wait()
	postJSON(t, client, srv.URL+"/jobs", `{"budget":60}`, http.StatusServiceUnavailable, nil)
	getJSON(t, client, srv.URL+"/healthz", http.StatusOK, &health)
	if !health.Draining {
		t.Error("healthz does not report draining")
	}
}
