package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fullRecord populates every field of the wire schema, so the
// round-trip test fails if a field is added without a JSON tag (or
// dropped by the encoder).
func fullRecord() *jobRecord {
	return &jobRecord{
		Version: jobVersion,
		ID:      "job-0042",
		Spec: JobSpec{
			Name:       "nightly",
			Targets:    []string{"openjdk-17", "graal-21"},
			SeedCount:  4,
			Seeds:      []SeedSpec{{Name: "User0001", Source: "class U { static void main() { print(1); } }"}},
			Budget:     500,
			Iterations: 30,
			Seed:       9,
			Workers:    2,
			Backend:    "subprocess",
			Extended:   true,
			HeapLimit:  50_000,
		},
		State:    StateDone,
		Created:  100,
		Started:  110,
		Finished: 120,
		Resumes:  2,
		Error:    "",
		Result: &ResultSummary{
			Executions:  500,
			SeedsFuzzed: 10,
			UniqueBugs:  1,
			Findings: []FindingSummary{{
				BugID: "HS-1", Component: "jit", Kind: "miscompile", Oracle: "differential",
				SeedName: "Seed0001", Target: "openjdk-17", AtExecution: 44, Cursor: 3, Round: 2, ChainLen: 5,
			}},
			FaultsByClass: map[string]int{"timeout": 1},
			SeedErrors:    1,
			MedianDelta:   3.5,
		},
		Triage: &TriageStats{Received: 6, Novel: 1, Duplicates: 5, Reduced: 1, Quarantined: 1, Errors: 0},
	}
}

func TestJobRecordRoundTrip(t *testing.T) {
	st, err := OpenJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := fullRecord()
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(want.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestJobRecordVersionMismatchRejected(t *testing.T) {
	st, err := OpenJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := fullRecord()
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	// Rewrite the record with a future schema version.
	path := filepath.Join(st.JobDir(rec.ID), "job.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = 99
	data, _ = json.Marshal(raw)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(rec.ID); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("Load of version-99 record: err = %v, want version rejection", err)
	}
	// LoadAll must not silently load the record — it quarantines the
	// job directory and reports the ID, so startup survives.
	recs, quarantined, err := st.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("LoadAll loaded %d records from a version-99 store, want 0", len(recs))
	}
	if len(quarantined) != 1 || quarantined[0] != rec.ID {
		t.Errorf("LoadAll quarantined = %v, want [%s]", quarantined, rec.ID)
	}
	if _, err := os.Stat(st.JobDir(rec.ID)); !os.IsNotExist(err) {
		t.Errorf("job dir still present after quarantine (stat err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "jobs-quarantined", rec.ID, "job.json")); err != nil {
		t.Errorf("quarantined record not preserved: %v", err)
	}
}

func TestJobRecordIDMismatchRejected(t *testing.T) {
	st, err := OpenJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := fullRecord()
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	// A record copied into the wrong directory must not load.
	other := st.JobDir("job-0099")
	if err := os.MkdirAll(other, 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(st.JobDir(rec.ID), "job.json"))
	if err := os.WriteFile(filepath.Join(other, "job.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("job-0099"); err == nil {
		t.Error("Load accepted a record naming a different job ID")
	}
}

func TestNextIDAndFormat(t *testing.T) {
	if got := FormatID(7); got != "job-0007" {
		t.Errorf("FormatID(7) = %q", got)
	}
	recs := []*jobRecord{{ID: "job-0003"}, {ID: "job-0001"}, {ID: "not-a-job"}}
	if got := NextID(recs); got != 4 {
		t.Errorf("NextID = %d, want 4", got)
	}
	if got := NextID(nil); got != 1 {
		t.Errorf("NextID(nil) = %d, want 1", got)
	}
}

func TestJobSpecValidateDefaults(t *testing.T) {
	spec := JobSpec{}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Budget != 1000 || spec.Iterations != 50 || spec.SeedCount != 8 || spec.Seed != 1 {
		t.Errorf("defaults not applied: %+v", spec)
	}
	if len(spec.Targets) != 1 || spec.Targets[0] != "openjdk-17" {
		t.Errorf("default target = %v", spec.Targets)
	}
	// A job with only user seeds does not get generated ones forced in.
	spec = JobSpec{Seeds: []SeedSpec{{Source: "class U { static void main() { print(1); } }"}}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.SeedCount != 0 {
		t.Errorf("SeedCount = %d, want 0 when user seeds are supplied", spec.SeedCount)
	}
	if spec.Seeds[0].Name != "User0001" {
		t.Errorf("auto seed name = %q", spec.Seeds[0].Name)
	}
	if got := len(spec.pool()); got != 1 {
		t.Errorf("pool size = %d, want 1", got)
	}
}

func TestJobSpecValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"negative budget", JobSpec{Budget: -1}, "budget"},
		{"negative iterations", JobSpec{Iterations: -1}, "iterations"},
		{"negative seed count", JobSpec{SeedCount: -1}, "seed_count"},
		{"negative workers", JobSpec{Workers: -1}, "workers"},
		{"unknown target", JobSpec{Targets: []string{"no-such-jvm"}}, "target"},
		{"unknown backend", JobSpec{Backend: "quantum"}, "backend"},
		{"empty seed", JobSpec{Seeds: []SeedSpec{{Name: "S"}}}, "empty source"},
		{"malformed seed", JobSpec{Seeds: []SeedSpec{{Name: "S", Source: "class {"}}}, "seed"},
		{"unknown generator", JobSpec{Generators: []string{"quantum"}}, "generators"},
		{"unknown style", JobSpec{Generators: []string{"style"}, Styles: []string{"no-such-style"}}, "generators"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
