package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// maxBodyBytes caps job-spec and seed-upload request bodies. Seeds are
// source text of small synthetic programs; 8 MiB is orders of magnitude
// above any legitimate submission, so larger bodies are hostile or
// broken clients and get 413 instead of unbounded buffering.
const maxBodyBytes = 8 << 20

// Server is the daemon's HTTP JSON API over one scheduler:
//
//	POST   /jobs               submit a job (503 while draining)
//	GET    /jobs               list jobs in submission order
//	GET    /jobs/{id}          one job, with live progress when running
//	DELETE /jobs/{id}          cancel a queued or running job
//	POST   /jobs/{id}/seeds    add user seed programs to a queued job
//	GET    /jobs/{id}/findings triage report; ?wait= long-polls, SSE streams
//	POST   /corpus/distill     score a corpus, return its diverse subset
//	GET    /metrics            Prometheus text exposition
//	GET    /healthz            liveness + drain status
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer builds the API over a scheduler.
func NewServer(s *Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /jobs", srv.submitJob)
	srv.mux.HandleFunc("GET /jobs", srv.listJobs)
	srv.mux.HandleFunc("GET /jobs/{id}", srv.getJob)
	srv.mux.HandleFunc("DELETE /jobs/{id}", srv.cancelJob)
	srv.mux.HandleFunc("POST /jobs/{id}/seeds", srv.addSeeds)
	srv.mux.HandleFunc("GET /jobs/{id}/findings", srv.findings)
	srv.mux.HandleFunc("POST /corpus/distill", srv.distillCorpus)
	srv.mux.HandleFunc("GET /metrics", srv.metrics)
	srv.mux.HandleFunc("GET /healthz", srv.healthz)
	return srv
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeDecodeErr(w, fmt.Errorf("decode job spec: %v", err), err)
		return
	}
	j, err := s.sched.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusCreated, j.View())
	}
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.JobsInOrder()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j := s.sched.Get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeErr(w, http.StatusConflict, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, j.View())
	}
}

func (s *Server) addSeeds(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Seeds []SeedSpec `json:"seeds"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeDecodeErr(w, fmt.Errorf("decode seeds: %v", err), err)
		return
	}
	if len(body.Seeds) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no seeds given"))
		return
	}
	j, err := s.sched.AddSeeds(r.PathValue("id"), body.Seeds)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotQueued):
		writeErr(w, http.StatusConflict, err)
	case err != nil:
		// A malformed seed program: corpus.Seed.TryParse rejected it.
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, j.View())
	}
}

// findings serves the job's triage report. Plain GET returns the same
// JSON `triage report -json` writes; `?wait=<duration>` long-polls
// until new findings (or a state change) arrive or the wait expires;
// SSE (Accept: text/event-stream or ?stream=sse) tails the live
// finding stream until the job finishes or the client disconnects.
func (s *Server) findings(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.sched.Get(id)
	if j == nil {
		writeErr(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	if r.URL.Query().Get("stream") == "sse" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamFindings(w, r, j)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && !j.State().Terminal() {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("wait: %v", err))
			return
		}
		ch, cancel := s.sched.Broker().Subscribe(id)
		defer cancel()
		// Re-check after subscribing so a transition in the window does
		// not strand the poll.
		if !j.State().Terminal() {
			select {
			case <-ch:
			case <-time.After(wait):
			case <-r.Context().Done():
				return
			}
		}
	}
	rep, err := s.sched.Report(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// The exact serialization `triage report -json` emits.
	_ = rep.WriteJSON(w)
}

// streamFindings serves the SSE tail: one "report" event with the
// current triage report, then live "finding"/"state" events until the
// job goes terminal or the client leaves.
func (s *Server) streamFindings(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	id := j.ID()
	// Subscribe before the snapshot so no event between snapshot and
	// tail is lost (duplicates are possible and harmless; drops are not).
	ch, cancel := s.sched.Broker().Subscribe(id)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	rep, err := s.sched.Report(id)
	if err == nil {
		// SSE data must be one line; the report's canonical form is
		// indented, so re-marshal it compact for the frame.
		data, jerr := json.Marshal(rep)
		if jerr == nil {
			writeSSE(w, "report", data)
			fl.Flush()
		}
	}
	if j.State().Terminal() {
		data, _ := json.Marshal(Event{Type: "state", JobID: id, State: j.State()})
		writeSSE(w, "state", data)
		fl.Flush()
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			writeSSE(w, ev.Type, data)
			fl.Flush()
			if ev.Type == "state" && ev.State.Terminal() {
				return
			}
		}
	}
}

// writeSSE frames one server-sent event. Data is JSON (single line).
func writeSSE(w http.ResponseWriter, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// distillCorpus serves POST /corpus/distill: validate the submitted
// corpus exactly like a job submission (malformed seeds are 400, not a
// dry-run fault), score it, and return the corpus.DistillReport.
func (s *Server) distillCorpus(w http.ResponseWriter, r *http.Request) {
	var req DistillRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeDecodeErr(w, fmt.Errorf("decode distill request: %v", err), err)
		return
	}
	if err := req.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.sched.Distill(r.Context(), &req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.sched.RenderMetrics(w)
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	s.sched.mu.Lock()
	n := len(s.sched.jobs)
	s.sched.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.sched.Draining(),
		"jobs":     n,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeDecodeErr maps a body-decode failure to a status: an oversized
// body (MaxBytesReader tripped) is 413, anything else 400.
func writeDecodeErr(w http.ResponseWriter, wrapped, cause error) {
	var tooBig *http.MaxBytesError
	if errors.As(cause, &tooBig) {
		writeErr(w, http.StatusRequestEntityTooLarge, wrapped)
		return
	}
	writeErr(w, http.StatusBadRequest, wrapped)
}
