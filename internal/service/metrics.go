package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/harness"
)

// deltaBuckets are the upper bounds of the OBV-increment histogram —
// Δ(seed OBV, final-mutant OBV) per fuzzed seed, the paper's Figure 3/4
// distribution observed live. Values are behavior-count increments, so
// small integers dominate; the top bucket catches optimization-storm
// mutants.
var deltaBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250}

// knownFaultClasses fixes the fault-count series emitted even at zero,
// so dashboards and the CI smoke assertions can rely on their presence.
var knownFaultClasses = []harness.FaultClass{
	harness.FaultCrash,
	harness.FaultMiscompile,
	harness.FaultTimeout,
	harness.FaultHeapExhausted,
	harness.FaultHarness,
}

// Metrics aggregates daemon-wide counters and renders them in the
// Prometheus text exposition format. It is hand-rolled — the daemon
// takes no dependency on a client library — and safe for concurrent
// use: campaign progress callbacks feed it while /metrics scrapes it.
type Metrics struct {
	now   func() time.Time
	start time.Time

	mu              sync.Mutex
	executions      int64
	findings        int64
	faults          map[string]int64
	deltaCounts     []int64 // per-bucket (non-cumulative) counts; index len(deltaBuckets) is +Inf
	deltaSum        float64
	deltaObs        int64
	jobsAccepted    int64
	requeues        int64
	jobsQuarantined int64
	planJobs        int64
	planFindings    int64
	genJobs         int64
	genSeeds        int64
	genFindings     int64

	distillRequests  int64
	distillSubmitted int64
	distillKept      int64
}

// NewMetrics builds a registry. now is the clock seam (nil = wall
// clock); the construction instant anchors uptime and executions/sec.
func NewMetrics(now func() time.Time) *Metrics {
	if now == nil {
		now = time.Now
	}
	m := &Metrics{
		now:         now,
		start:       now(),
		faults:      map[string]int64{},
		deltaCounts: make([]int64, len(deltaBuckets)+1),
	}
	for _, c := range knownFaultClasses {
		m.faults[string(c)] = 0
	}
	return m
}

// AddExecutions accounts n more target executions.
func (m *Metrics) AddExecutions(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.executions += int64(n)
	m.mu.Unlock()
}

// AddFinding accounts one finding occurrence streamed by a campaign.
func (m *Metrics) AddFinding() {
	m.mu.Lock()
	m.findings++
	m.mu.Unlock()
}

// AddFault accounts one classified harness fault.
func (m *Metrics) AddFault(class string) {
	m.mu.Lock()
	m.faults[class]++
	m.mu.Unlock()
}

// AddJobAccepted accounts one accepted job submission.
func (m *Metrics) AddJobAccepted() {
	m.mu.Lock()
	m.jobsAccepted++
	m.mu.Unlock()
}

// AddRequeue accounts one job put back on the queue after its
// assignment was lost (fleet lease expiry, worker death).
func (m *Metrics) AddRequeue() {
	m.mu.Lock()
	m.requeues++
	m.mu.Unlock()
}

// Requeues returns the cumulative requeue count.
func (m *Metrics) Requeues() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requeues
}

// AddPlanJob accounts one accepted job with plan fuzzing enabled.
func (m *Metrics) AddPlanJob() {
	m.mu.Lock()
	m.planJobs++
	m.mu.Unlock()
}

// AddPlanFinding accounts one plan-differential finding occurrence
// streamed by a campaign (the plan-vs-plan oracle fired).
func (m *Metrics) AddPlanFinding() {
	m.mu.Lock()
	m.planFindings++
	m.mu.Unlock()
}

// AddGenerateJob accounts one accepted job with the generator
// subsystem enabled (generators beyond the randprog baseline).
func (m *Metrics) AddGenerateJob() {
	m.mu.Lock()
	m.genJobs++
	m.mu.Unlock()
}

// AddGeneratedSeeds accounts n generator emissions into job pools.
func (m *Metrics) AddGeneratedSeeds(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.genSeeds += int64(n)
	m.mu.Unlock()
}

// AddGenerateFinding accounts one finding occurrence whose seed came
// from a generator (pre-dedup).
func (m *Metrics) AddGenerateFinding() {
	m.mu.Lock()
	m.genFindings++
	m.mu.Unlock()
}

// AddJobQuarantined accounts one job record (or its checkpoint) found
// corrupt at startup and set aside instead of failing the daemon.
func (m *Metrics) AddJobQuarantined() {
	m.mu.Lock()
	m.jobsQuarantined++
	m.mu.Unlock()
}

// AddDistill accounts one served /corpus/distill request: submitted
// seeds in, kept seeds out.
func (m *Metrics) AddDistill(submitted, kept int) {
	m.mu.Lock()
	m.distillRequests++
	m.distillSubmitted += int64(submitted)
	m.distillKept += int64(kept)
	m.mu.Unlock()
}

// ObserveDelta records one seed task's OBV increment in the histogram.
func (m *Metrics) ObserveDelta(d float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deltaSum += d
	m.deltaObs++
	for i, le := range deltaBuckets {
		if d <= le {
			m.deltaCounts[i]++
			return
		}
	}
	m.deltaCounts[len(deltaBuckets)]++
}

// Executions returns the cumulative execution count.
func (m *Metrics) Executions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.executions
}

// Render writes the Prometheus text format. The caller supplies the
// scrape-time gauges the registry does not own: jobs by state and the
// aggregated triage stats.
func (m *Metrics) Render(w io.Writer, jobs map[JobState]int, tr TriageStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP mopfuzzd_jobs Jobs by lifecycle state.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_jobs gauge")
	for _, st := range States() {
		fmt.Fprintf(w, "mopfuzzd_jobs{state=%q} %d\n", string(st), jobs[st])
	}

	fmt.Fprintln(w, "# HELP mopfuzzd_jobs_accepted_total Job submissions accepted.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_jobs_accepted_total counter")
	fmt.Fprintf(w, "mopfuzzd_jobs_accepted_total %d\n", m.jobsAccepted)

	fmt.Fprintln(w, "# HELP mopfuzzd_requeues_total Jobs re-queued after a lost assignment (lease expiry, worker death).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_requeues_total counter")
	fmt.Fprintf(w, "mopfuzzd_requeues_total %d\n", m.requeues)

	fmt.Fprintln(w, "# HELP mopfuzzd_jobs_quarantined_total Job records or checkpoints found corrupt at startup and set aside.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_jobs_quarantined_total counter")
	fmt.Fprintf(w, "mopfuzzd_jobs_quarantined_total %d\n", m.jobsQuarantined)

	fmt.Fprintln(w, "# HELP mopfuzzd_executions_total Target executions across all jobs.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_executions_total counter")
	fmt.Fprintf(w, "mopfuzzd_executions_total %d\n", m.executions)

	up := m.now().Sub(m.start).Seconds()
	rate := 0.0
	if up > 0 {
		rate = float64(m.executions) / up
	}
	fmt.Fprintln(w, "# HELP mopfuzzd_executions_per_second Mean execution throughput since daemon start.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_executions_per_second gauge")
	fmt.Fprintf(w, "mopfuzzd_executions_per_second %g\n", rate)

	fmt.Fprintln(w, "# HELP mopfuzzd_findings_total Finding occurrences streamed by campaigns (pre-dedup).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_findings_total counter")
	fmt.Fprintf(w, "mopfuzzd_findings_total %d\n", m.findings)

	fmt.Fprintln(w, "# HELP mopfuzzd_planfuzz_jobs_total Accepted jobs with compilation-plan fuzzing enabled.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_planfuzz_jobs_total counter")
	fmt.Fprintf(w, "mopfuzzd_planfuzz_jobs_total %d\n", m.planJobs)

	fmt.Fprintln(w, "# HELP mopfuzzd_planfuzz_findings_total Finding occurrences from the plan-vs-plan differential oracle (pre-dedup).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_planfuzz_findings_total counter")
	fmt.Fprintf(w, "mopfuzzd_planfuzz_findings_total %d\n", m.planFindings)

	fmt.Fprintln(w, "# HELP mopfuzzd_generate_jobs_total Accepted jobs with corpus generators enabled.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_generate_jobs_total counter")
	fmt.Fprintf(w, "mopfuzzd_generate_jobs_total %d\n", m.genJobs)

	fmt.Fprintln(w, "# HELP mopfuzzd_generate_seeds_total Generator emissions refreshed into job pools.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_generate_seeds_total counter")
	fmt.Fprintf(w, "mopfuzzd_generate_seeds_total %d\n", m.genSeeds)

	fmt.Fprintln(w, "# HELP mopfuzzd_generate_findings_total Finding occurrences on generator-emitted seeds (pre-dedup).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_generate_findings_total counter")
	fmt.Fprintf(w, "mopfuzzd_generate_findings_total %d\n", m.genFindings)

	fmt.Fprintln(w, "# HELP mopfuzzd_faults_total Harness faults by class.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_faults_total counter")
	classes := make([]string, 0, len(m.faults))
	for c := range m.faults {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(w, "mopfuzzd_faults_total{class=%q} %d\n", c, m.faults[c])
	}

	fmt.Fprintln(w, "# HELP mopfuzzd_obv_delta OBV increment per fuzzed seed (Δ seed vs final mutant).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_obv_delta histogram")
	cum := int64(0)
	for i, le := range deltaBuckets {
		cum += m.deltaCounts[i]
		fmt.Fprintf(w, "mopfuzzd_obv_delta_bucket{le=%q} %d\n", trimFloat(le), cum)
	}
	cum += m.deltaCounts[len(deltaBuckets)]
	fmt.Fprintf(w, "mopfuzzd_obv_delta_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "mopfuzzd_obv_delta_sum %g\n", m.deltaSum)
	fmt.Fprintf(w, "mopfuzzd_obv_delta_count %d\n", m.deltaObs)

	fmt.Fprintln(w, "# HELP mopfuzzd_triage_findings_total Findings consumed by triage workers.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_triage_findings_total counter")
	fmt.Fprintf(w, "mopfuzzd_triage_findings_total %d\n", tr.Received)
	fmt.Fprintln(w, "# HELP mopfuzzd_triage_signatures_total Novel root-cause signatures stored.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_triage_signatures_total counter")
	fmt.Fprintf(w, "mopfuzzd_triage_signatures_total %d\n", tr.Novel)
	fmt.Fprintln(w, "# HELP mopfuzzd_triage_dedup_hits_total Findings deduplicated against existing signatures.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_triage_dedup_hits_total counter")
	fmt.Fprintf(w, "mopfuzzd_triage_dedup_hits_total %d\n", tr.Duplicates)
	ratio := 0.0
	if tr.Received > 0 {
		ratio = float64(tr.Duplicates) / float64(tr.Received)
	}
	fmt.Fprintln(w, "# HELP mopfuzzd_triage_dedup_hit_ratio Fraction of findings deduplicated.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_triage_dedup_hit_ratio gauge")
	fmt.Fprintf(w, "mopfuzzd_triage_dedup_hit_ratio %g\n", ratio)

	fmt.Fprintln(w, "# HELP mopfuzzd_uptime_seconds Seconds since daemon start.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_uptime_seconds gauge")
	fmt.Fprintf(w, "mopfuzzd_uptime_seconds %g\n", up)
}

// RenderCorpus writes the corpus-intelligence series: the daemon-wide
// parse-cache counters, the distillation endpoint's traffic, and the
// power-schedule gauges aggregated over running jobs. Always emitted —
// zeros before any corpus feature is exercised — so dashboards and the
// CI corpus-smoke assertions can rely on their presence.
func (m *Metrics) RenderCorpus(w io.Writer, ps corpus.ParseCacheStats, arms int, energy float64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_parsecache_hits_total Seed parses served from the shared parse cache.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_parsecache_hits_total counter")
	fmt.Fprintf(w, "mopfuzzd_corpus_parsecache_hits_total %d\n", ps.Hits)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_parsecache_misses_total Seed parses that had to run the parser.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_parsecache_misses_total counter")
	fmt.Fprintf(w, "mopfuzzd_corpus_parsecache_misses_total %d\n", ps.Misses)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_parsecache_evictions_total Cached parses evicted by the size bound.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_parsecache_evictions_total counter")
	fmt.Fprintf(w, "mopfuzzd_corpus_parsecache_evictions_total %d\n", ps.Evictions)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_parsecache_size Parsed programs currently cached.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_parsecache_size gauge")
	fmt.Fprintf(w, "mopfuzzd_corpus_parsecache_size %d\n", ps.Size)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_distill_requests_total Corpus distillation requests served.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_distill_requests_total counter")
	fmt.Fprintf(w, "mopfuzzd_corpus_distill_requests_total %d\n", m.distillRequests)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_distill_seeds_submitted_total Seeds submitted to the distillation endpoint.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_distill_seeds_submitted_total counter")
	fmt.Fprintf(w, "mopfuzzd_corpus_distill_seeds_submitted_total %d\n", m.distillSubmitted)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_distill_seeds_kept_total Seeds kept by the distillation endpoint.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_distill_seeds_kept_total counter")
	fmt.Fprintf(w, "mopfuzzd_corpus_distill_seeds_kept_total %d\n", m.distillKept)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_sched_arms Power-schedule arms across running jobs.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_sched_arms gauge")
	fmt.Fprintf(w, "mopfuzzd_corpus_sched_arms %d\n", arms)

	fmt.Fprintln(w, "# HELP mopfuzzd_corpus_sched_energy Total power-schedule energy across running jobs.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_corpus_sched_energy gauge")
	fmt.Fprintf(w, "mopfuzzd_corpus_sched_energy %g\n", energy)
}

// RenderExecPool writes the warm-child-pool series. Always emitted —
// zeros before any pooled job runs — so dashboards and smoke assertions
// can rely on their presence.
func RenderExecPool(w io.Writer, st exec.Stats, live int) {
	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_children_live Warm minijvm children currently pooled.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_children_live gauge")
	fmt.Fprintf(w, "mopfuzzd_execpool_children_live %d\n", live)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_executions_total Executions served by the pool.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_executions_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_executions_total %d\n", st.Executions)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_batches_total Serve-mode round trips (N executions each).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_batches_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_batches_total %d\n", st.Batches)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_mean_batch_size Mean executions per round trip (>1 means batching amortizes).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_mean_batch_size gauge")
	fmt.Fprintf(w, "mopfuzzd_execpool_mean_batch_size %g\n", st.MeanBatch())

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_spawns_total Child processes spawned by the pool.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_spawns_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_spawns_total %d\n", st.Spawns)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_spawns_avoided_total Executions served without a fresh spawn.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_spawns_avoided_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_spawns_avoided_total %d\n", st.SpawnsAvoided)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_recycled_total Children retired by recycle policy.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_recycled_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_recycled_total{reason=\"executions\"} %d\n", st.RecycledByCount)
	fmt.Fprintf(w, "mopfuzzd_execpool_recycled_total{reason=\"memory\"} %d\n", st.RecycledByMem)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_killed_total Children force-killed (timeouts, failures, drain).")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_killed_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_killed_total %d\n", st.Killed)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_retries_total Batches retried on a fresh child after a marker-less death.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_retries_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_retries_total %d\n", st.Retries)

	fmt.Fprintln(w, "# HELP mopfuzzd_execpool_faults_total Pool executions classified as backend faults.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_execpool_faults_total counter")
	fmt.Fprintf(w, "mopfuzzd_execpool_faults_total %d\n", st.Faults)
}

// trimFloat renders a bucket bound without a trailing ".0" — the
// Prometheus convention ("5", not "5.0"; "0.5" keeps its fraction).
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
