package service

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/generate"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/triage"
)

// JobState is the lifecycle of a submitted job.
type JobState string

// Job states. Queued and running are live; interrupted means a daemon
// drain checkpointed the campaign mid-flight (a restart re-queues it
// with resume); quarantined means a restart found the job's persisted
// run state (its campaign checkpoint) corrupt and set the job aside
// rather than failing daemon startup; the rest are terminal.
const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateInterrupted JobState = "interrupted"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateCancelled   JobState = "cancelled"
	StateQuarantined JobState = "quarantined"
)

// States lists every job state in a fixed order, so the /metrics gauge
// emits a series per state even at zero.
func States() []JobState {
	return []JobState{StateQueued, StateRunning, StateInterrupted, StateDone, StateFailed, StateCancelled, StateQuarantined}
}

// Terminal reports whether the state is final (no further transitions).
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateQuarantined
}

// SeedSpec is one user-supplied seed program in a job submission.
type SeedSpec struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// JobSpec is a job submission: the seed corpus plus the campaign knobs
// a CLI invocation would pass as flags. The zero value of every field
// gets the mopfuzzer default, so `{"budget": 500}` is a valid job.
type JobSpec struct {
	// Name is a free-form label for humans; it does not identify the job.
	Name string `json:"name,omitempty"`
	// Targets are jvm.Spec names (e.g. "openjdk-17"), cycled per seed
	// task exactly like mopfuzzer -jdk. Default: openjdk-17.
	Targets []string `json:"targets,omitempty"`
	// SeedCount generates that many corpus seeds from Seed; user seeds in
	// Seeds are appended after them. Default 8 when Seeds is empty.
	SeedCount int        `json:"seed_count,omitempty"`
	Seeds     []SeedSpec `json:"seeds,omitempty"`
	// Budget is the total execution budget (default 1000).
	Budget int `json:"budget,omitempty"`
	// Iterations is MAX Iterations per seed (default 50).
	Iterations int   `json:"iterations,omitempty"`
	Seed       int64 `json:"seed,omitempty"` // RNG seed (default 1)
	// Workers shards seed tasks inside the campaign (default 1;
	// results are byte-identical either way).
	Workers int `json:"workers,omitempty"`
	// Backend pins the execution backend ("inprocess" or "subprocess");
	// empty inherits the daemon's default.
	Backend string `json:"backend,omitempty"`
	// Extended enables the alternative evoking-mutator implementations.
	Extended bool `json:"extended,omitempty"`
	// HeapLimit caps per-execution heap allocation in units (0 = VM
	// default, <0 = uncapped), mirroring mopfuzzer -heap-limit.
	HeapLimit int64 `json:"heap_limit,omitempty"`
	// PlanFuzz turns the compilation plan into a fuzz dimension,
	// mirroring mopfuzzer -plan-fuzz: "" or "off" keeps the fixed
	// pipeline (byte-identical to pre-plan jobs), "minimal"/"full"
	// select the fuzzed-plan modes.
	PlanFuzz string `json:"plan_fuzz,omitempty"`
	// Schedule selects the campaign's seed-budget policy, mirroring
	// mopfuzzer -schedule: "" or "off" walks seeds in cursor order
	// (byte-identical to pre-schedule jobs), "power" allocates round
	// slots across (seed, plan-mode) arms by scored energy.
	Schedule string `json:"schedule,omitempty"`
	// Distill shrinks the seed pool to its maximally-diverse subset
	// (one profiling dry-run per seed) before fuzzing starts.
	Distill bool `json:"distill,omitempty"`
	// Generators selects the corpus generators that refresh the seed
	// pool between rounds, mirroring mopfuzzer -generators: "randprog"
	// (baseline; alone it is byte-identical to a generator-free job),
	// "template", "style". Empty keeps the subsystem off.
	Generators []string `json:"generators,omitempty"`
	// Styles restricts the style generator to the named composition
	// styles, mirroring mopfuzzer -styles; naming one implies the style
	// generator.
	Styles []string `json:"styles,omitempty"`
}

// Validate normalizes a submission in place (applying CLI defaults) and
// rejects anything that would fault the daemon at run time: unknown
// target specs, unknown backends, negative budgets, and — via
// corpus.Seed.TryParse — malformed user seed programs, so a bad
// submission is an API error, not a campaign fault.
func (s *JobSpec) Validate() error {
	if s.Budget < 0 {
		return fmt.Errorf("budget must be positive")
	}
	if s.Budget == 0 {
		s.Budget = 1000
	}
	if s.Iterations < 0 {
		return fmt.Errorf("iterations must be positive")
	}
	if s.Iterations == 0 {
		s.Iterations = 50
	}
	if s.SeedCount < 0 {
		return fmt.Errorf("seed_count must be non-negative")
	}
	if s.SeedCount == 0 && len(s.Seeds) == 0 {
		s.SeedCount = 8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Workers < 0 {
		return fmt.Errorf("workers must be non-negative")
	}
	if len(s.Targets) == 0 {
		s.Targets = []string{"openjdk-17"}
	}
	for _, t := range s.Targets {
		if _, err := jvm.ParseSpec(t); err != nil {
			return fmt.Errorf("target %q: %v", t, err)
		}
	}
	if !exec.ValidBackend(s.Backend) {
		return fmt.Errorf("unknown backend %q (want %s)", s.Backend, strings.Join(exec.Backends(), " or "))
	}
	if _, err := jit.ParsePlanMode(s.PlanFuzz); err != nil {
		return fmt.Errorf("plan_fuzz: %v", err)
	}
	if _, err := corpus.ParseScheduleMode(s.Schedule); err != nil {
		return fmt.Errorf("schedule: %v", err)
	}
	if _, err := generate.Normalize(s.Generators, s.Styles); err != nil {
		return fmt.Errorf("generators: %v", err)
	}
	for i := range s.Seeds {
		if s.Seeds[i].Name == "" {
			s.Seeds[i].Name = fmt.Sprintf("User%04d", i+1)
		}
		if err := validateSeed(s.Seeds[i]); err != nil {
			return err
		}
	}
	return nil
}

// validateSeed checks one user-supplied seed program.
func validateSeed(sd SeedSpec) error {
	if sd.Source == "" {
		return fmt.Errorf("seed %s: empty source", sd.Name)
	}
	if _, err := (corpus.Seed{Name: sd.Name, Source: sd.Source}).TryParse(); err != nil {
		return err
	}
	return nil
}

// pool materializes the job's seed corpus: the generated pool first,
// then user seeds in submission order. Every seed here has already
// passed Validate, so campaign-side Parse cannot fault on them.
func (s *JobSpec) pool() []corpus.Seed {
	out := corpus.DefaultPool(s.SeedCount, s.Seed)
	for _, sd := range s.Seeds {
		out = append(out, corpus.Seed{Name: sd.Name, Source: sd.Source})
	}
	return out
}

// Campaign builds the campaign configuration a validated spec runs
// under. Every execution site — the local runner pool and the fleet
// worker — MUST go through this one constructor: the knobs it sets
// decide the campaign's deterministic schedule, so two sites composing
// them independently could drift and break the byte-identical-resume
// guarantee across handoffs.
func (s *JobSpec) Campaign(executor exec.Executor) core.CampaignConfig {
	targets := s.specs()
	fcfg := core.DefaultConfig(targets[0])
	fcfg.MaxIterations = s.Iterations
	fcfg.Seed = s.Seed
	fcfg.ExtendedMutators = s.Extended
	fcfg.MaxHeapUnits = s.HeapLimit
	fcfg.StructuredOBV = true
	fcfg.Executor = executor
	// Validate already vetted the mode strings; zero modes keep the
	// fixed pipeline and cursor-order scheduling.
	fcfg.PlanFuzz, _ = jit.ParsePlanMode(s.PlanFuzz)
	schedule, _ := corpus.ParseScheduleMode(s.Schedule)
	return core.CampaignConfig{
		Seeds:        s.pool(),
		Budget:       s.Budget,
		Targets:      targets,
		Fuzz:         fcfg,
		Seed:         s.Seed,
		Workers:      s.Workers,
		Executor:     executor,
		SeedSchedule: schedule,
		DistillSeeds: s.Distill,
		Generators:   append([]string(nil), s.Generators...),
		Styles:       append([]string(nil), s.Styles...),
	}
}

// GeneratorsOn reports whether the (validated) spec enables the
// generator subsystem — i.e. whether its generator set normalizes to
// anything beyond the baseline.
func (s *JobSpec) GeneratorsOn() bool {
	gens, err := generate.Normalize(s.Generators, s.Styles)
	return err == nil && gens != nil
}

// TemplateExtras gathers the triage store's minimized reproducers for
// template mining — the found-bugs-breed-scenarios feed. Nil when the
// spec's generators are off. Both execution sites (the local runner and
// the fleet worker) call this against the job's own store; on resume
// the checkpoint's pinned extras take precedence in core, so handoffs
// stay byte-identical regardless of what either store holds now.
func (s *JobSpec) TemplateExtras(store *triage.Store) []string {
	if !s.GeneratorsOn() {
		return nil
	}
	var out []string
	store.MinimizedPrograms(func(_, program string) bool {
		out = append(out, program)
		return true
	})
	return out
}

// specs parses the validated target names.
func (s *JobSpec) specs() []jvm.Spec {
	out := make([]jvm.Spec, 0, len(s.Targets))
	for _, t := range s.Targets {
		spec, err := jvm.ParseSpec(t)
		if err != nil {
			panic(fmt.Sprintf("service: unvalidated target %q: %v", t, err)) // Validate ran first
		}
		out = append(out, spec)
	}
	return out
}

// FindingSummary is one campaign finding in a job result — the
// provenance fields without the full reproducer (the triage store keeps
// those).
type FindingSummary struct {
	BugID       string `json:"bug_id"`
	Component   string `json:"component"`
	Kind        string `json:"kind,omitempty"`
	Oracle      string `json:"oracle"`
	SeedName    string `json:"seed_name"`
	Target      string `json:"target"`
	AtExecution int    `json:"at_execution"`
	Cursor      int    `json:"cursor"`
	Round       int    `json:"round"`
	ChainLen    int    `json:"chain_len"`
	PlanID      string `json:"plan_id,omitempty"`
	GeneratorID string `json:"generator_id,omitempty"`
}

// ResultSummary is the deterministic digest of a finished campaign: it
// contains no wall-clock state, so an interrupted-and-resumed job must
// produce byte-identical JSON to an uninterrupted one (test-pinned).
type ResultSummary struct {
	Executions         int              `json:"executions"`
	SeedsFuzzed        int              `json:"seeds_fuzzed"`
	UniqueBugs         int              `json:"unique_bugs"`
	Findings           []FindingSummary `json:"findings"`
	FaultsByClass      map[string]int   `json:"faults_by_class,omitempty"`
	SeedErrors         int              `json:"seed_errors,omitempty"`
	SkippedQuarantined int              `json:"skipped_quarantined,omitempty"`
	MedianDelta        float64          `json:"median_delta"`
	// PlanFindings counts findings from the plan-vs-plan oracle (0 and
	// omitted when plan fuzzing was off).
	PlanFindings int `json:"plan_findings,omitempty"`
}

// Summarize digests a campaign result for the job record.
func Summarize(res *core.CampaignResult) *ResultSummary {
	sum := &ResultSummary{
		Executions:         res.Executions,
		SeedsFuzzed:        res.SeedsFuzzed,
		UniqueBugs:         len(res.Findings),
		Findings:           []FindingSummary{},
		SeedErrors:         len(res.SeedErrors),
		SkippedQuarantined: res.SkippedQuarantined,
		MedianDelta:        res.MedianDelta(),
		PlanFindings:       res.PlanFindings(),
	}
	for i := range res.Findings {
		sum.Findings = append(sum.Findings, summarizeFinding(&res.Findings[i]))
	}
	if len(res.Faults) > 0 {
		sum.FaultsByClass = map[string]int{}
		for _, f := range res.Faults {
			sum.FaultsByClass[string(f.Class)]++
		}
	}
	return sum
}

func summarizeFinding(f *core.Finding) FindingSummary {
	fs := FindingSummary{
		Oracle:      f.Oracle,
		SeedName:    f.SeedName,
		Target:      f.Target.Name(),
		AtExecution: f.AtExecution,
		Cursor:      f.Cursor,
		Round:       f.Round,
		ChainLen:    f.ChainLen,
		PlanID:      f.PlanID,
		GeneratorID: f.GeneratorID,
	}
	if f.Bug != nil {
		fs.BugID, fs.Component, fs.Kind = f.Bug.ID, f.Bug.Component, f.Bug.Kind.String()
	}
	return fs
}

// TriageStats is the persisted slice of triage.Stats, accumulated
// across a job's run segments (each resume adds its segment's counts).
type TriageStats struct {
	Received    int `json:"received"`
	Novel       int `json:"novel"`
	Duplicates  int `json:"duplicates"`
	Reduced     int `json:"reduced"`
	Quarantined int `json:"quarantined"`
	Errors      int `json:"errors,omitempty"`
}

func (t *TriageStats) add(s triage.Stats) {
	t.Received += s.Received
	t.Novel += s.Novel
	t.Duplicates += s.Duplicates
	t.Reduced += s.Reduced
	t.Quarantined += s.Quarantined
	t.Errors += s.Errors
}

// jobVersion guards the persisted job record schema; a record with
// another version is rejected rather than silently misread, mirroring
// the harness checkpoint and triage store versioning.
const jobVersion = 1

// jobRecord is the on-disk (and wire) form of a job: everything needed
// to re-queue, resume, and report it across daemon restarts.
type jobRecord struct {
	Version int      `json:"version"`
	ID      string   `json:"id"`
	Spec    JobSpec  `json:"spec"`
	State   JobState `json:"state"`
	// Created/Started/Finished are Unix timestamps; Started is the first
	// run segment's start, preserved across resumes.
	Created  int64 `json:"created,omitempty"`
	Started  int64 `json:"started,omitempty"`
	Finished int64 `json:"finished,omitempty"`
	// Resumes counts run segments that restored a checkpoint.
	Resumes int            `json:"resumes,omitempty"`
	Error   string         `json:"error,omitempty"`
	Result  *ResultSummary `json:"result,omitempty"`
	Triage  *TriageStats   `json:"triage,omitempty"`
	// Worker names the fleet worker the job last ran on ("" = this
	// daemon's local runner pool).
	Worker string `json:"worker,omitempty"`
	// Requeues counts assignments that were lost and re-queued (lease
	// expiry, worker death) — the fleet's recovery counter per job.
	Requeues int `json:"requeues,omitempty"`
}

// ProgressView is the live slice of a running job exposed by the API.
type ProgressView struct {
	Cursor             int `json:"cursor"`
	Executions         int `json:"executions"`
	Budget             int `json:"budget"`
	SeedsFuzzed        int `json:"seeds_fuzzed"`
	Findings           int `json:"findings"`
	PlanFindings       int `json:"plan_findings,omitempty"`
	Faults             int `json:"faults"`
	SeedErrors         int `json:"seed_errors,omitempty"`
	SkippedQuarantined int `json:"skipped_quarantined,omitempty"`
	// ScheduleArms/ScheduleEnergy mirror the power schedule's live
	// state (0 and omitted for cursor-order jobs).
	ScheduleArms   int     `json:"schedule_arms,omitempty"`
	ScheduleEnergy float64 `json:"schedule_energy,omitempty"`
	// GeneratedSeeds counts generator emissions into the pool so far (0
	// and omitted for generator-free jobs).
	GeneratedSeeds int `json:"generated_seeds,omitempty"`
}

// JobView is the API rendering of a job: the persisted record plus, for
// running jobs, the latest progress snapshot.
type JobView struct {
	ID       string         `json:"id"`
	Spec     JobSpec        `json:"spec"`
	State    JobState       `json:"state"`
	Created  int64          `json:"created,omitempty"`
	Started  int64          `json:"started,omitempty"`
	Finished int64          `json:"finished,omitempty"`
	Resumes  int            `json:"resumes,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *ResultSummary `json:"result,omitempty"`
	Triage   *TriageStats   `json:"triage,omitempty"`
	Worker   string         `json:"worker,omitempty"`
	Requeues int            `json:"requeues,omitempty"`
	Progress *ProgressView  `json:"progress,omitempty"`
}

// Job is one scheduled campaign with its runtime state. All access goes
// through the mutex: the scheduler's runner goroutine, the HTTP
// handlers, and the campaign's progress callback all touch it.
type Job struct {
	mu  sync.Mutex
	rec jobRecord
	dir string

	// Runtime, valid only while running.
	cancel      context.CancelFunc
	cancelAsked bool
	hasProgress bool
	progress    core.Progress
	tstore      *triage.Store
	tworker     *triage.Worker
}

// ID returns the job's identifier.
func (j *Job) ID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.ID
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.State
}

// Spec returns a copy of the job's (normalized) submission.
func (j *Job) Spec() JobSpec {
	j.mu.Lock()
	defer j.mu.Unlock()
	return copySpec(j.rec.Spec)
}

// View renders the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.rec.ID,
		Spec:     copySpec(j.rec.Spec),
		State:    j.rec.State,
		Created:  j.rec.Created,
		Started:  j.rec.Started,
		Finished: j.rec.Finished,
		Resumes:  j.rec.Resumes,
		Error:    j.rec.Error,
		Result:   j.rec.Result,
		Triage:   j.rec.Triage,
		Worker:   j.rec.Worker,
		Requeues: j.rec.Requeues,
	}
	if j.rec.State == StateRunning && j.hasProgress {
		v.Progress = &ProgressView{
			Cursor:             j.progress.Cursor,
			Executions:         j.progress.Executions,
			Budget:             j.rec.Spec.Budget,
			SeedsFuzzed:        j.progress.SeedsFuzzed,
			Findings:           j.progress.Findings,
			PlanFindings:       j.progress.PlanFindings,
			Faults:             j.progress.Faults,
			SeedErrors:         j.progress.SeedErrors,
			SkippedQuarantined: j.progress.SkippedQuarantined,
			ScheduleArms:       j.progress.ScheduleArms,
			ScheduleEnergy:     j.progress.ScheduleEnergy,
			GeneratedSeeds:     j.progress.GeneratedSeeds,
		}
	}
	return v
}

func copySpec(s JobSpec) JobSpec {
	cp := s
	cp.Targets = append([]string(nil), s.Targets...)
	cp.Seeds = append([]SeedSpec(nil), s.Seeds...)
	cp.Generators = append([]string(nil), s.Generators...)
	cp.Styles = append([]string(nil), s.Styles...)
	return cp
}

