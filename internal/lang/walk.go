package lang

// WalkStmts calls fn for every statement in the subtree rooted at s
// (including s itself), in source order. If fn returns false the walk
// does not descend into that statement's children.
func WalkStmts(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch n := s.(type) {
	case *Block:
		for _, c := range n.Stmts {
			WalkStmts(c, fn)
		}
	case *If:
		WalkStmts(n.Then, fn)
		if n.Else != nil {
			WalkStmts(n.Else, fn)
		}
	case *For:
		WalkStmts(n.Body, fn)
	case *While:
		WalkStmts(n.Body, fn)
	case *Sync:
		WalkStmts(n.Body, fn)
	case *Try:
		WalkStmts(n.Body, fn)
		WalkStmts(n.Catch, fn)
	}
}

// WalkExprsIn calls fn for every expression appearing directly in the
// statement s (not descending into child statements), in evaluation order.
func WalkExprsIn(s Stmt, fn func(Expr)) {
	switch n := s.(type) {
	case *VarDecl:
		WalkExpr(n.Init, fn)
	case *Assign:
		WalkExpr(n.Target, fn)
		WalkExpr(n.Value, fn)
	case *ExprStmt:
		WalkExpr(n.E, fn)
	case *If:
		WalkExpr(n.Cond, fn)
	case *For:
		WalkExpr(n.From, fn)
		WalkExpr(n.To, fn)
	case *While:
		WalkExpr(n.Cond, fn)
	case *Sync:
		WalkExpr(n.Monitor, fn)
	case *Return:
		WalkExpr(n.E, fn)
	case *Throw:
		WalkExpr(n.E, fn)
	case *Print:
		WalkExpr(n.E, fn)
	}
}

// WalkExpr calls fn for e and every sub-expression of e.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *FieldRef:
		WalkExpr(n.Recv, fn)
	case *Binary:
		WalkExpr(n.L, fn)
		WalkExpr(n.R, fn)
	case *Unary:
		WalkExpr(n.X, fn)
	case *Call:
		WalkExpr(n.Recv, fn)
		for _, a := range n.Args {
			WalkExpr(a, fn)
		}
	case *ReflectCall:
		WalkExpr(n.Recv, fn)
		for _, a := range n.Args {
			WalkExpr(a, fn)
		}
	case *ReflectFieldGet:
		WalkExpr(n.Recv, fn)
	case *NewArray:
		WalkExpr(n.Len, fn)
	case *Index:
		WalkExpr(n.Arr, fn)
		WalkExpr(n.Idx, fn)
	case *Box:
		WalkExpr(n.X, fn)
	case *Unbox:
		WalkExpr(n.X, fn)
	case *Widen:
		WalkExpr(n.X, fn)
	case *Cond:
		WalkExpr(n.C, fn)
		WalkExpr(n.T, fn)
		WalkExpr(n.F, fn)
	}
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *IntLit:
		c := *n
		return &c
	case *BoolLit:
		c := *n
		return &c
	case *StrLit:
		c := *n
		return &c
	case *VarRef:
		c := *n
		return &c
	case *FieldRef:
		c := *n
		c.Recv = CloneExpr(n.Recv)
		return &c
	case *Binary:
		c := *n
		c.L, c.R = CloneExpr(n.L), CloneExpr(n.R)
		return &c
	case *Unary:
		c := *n
		c.X = CloneExpr(n.X)
		return &c
	case *Call:
		c := *n
		c.Recv = CloneExpr(n.Recv)
		c.Args = cloneExprs(n.Args)
		return &c
	case *ReflectCall:
		c := *n
		c.Recv = CloneExpr(n.Recv)
		c.Args = cloneExprs(n.Args)
		return &c
	case *ReflectFieldGet:
		c := *n
		c.Recv = CloneExpr(n.Recv)
		return &c
	case *New:
		c := *n
		return &c
	case *NewArray:
		c := *n
		c.Len = CloneExpr(n.Len)
		return &c
	case *Index:
		c := *n
		c.Arr, c.Idx = CloneExpr(n.Arr), CloneExpr(n.Idx)
		return &c
	case *Box:
		c := *n
		c.X = CloneExpr(n.X)
		return &c
	case *Unbox:
		c := *n
		c.X = CloneExpr(n.X)
		return &c
	case *Widen:
		c := *n
		c.X = CloneExpr(n.X)
		return &c
	case *Cond:
		c := *n
		c.C, c.T, c.F = CloneExpr(n.C), CloneExpr(n.T), CloneExpr(n.F)
		return &c
	}
	panic("lang: CloneExpr: unknown expression type")
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}

// CloneStmt deep-copies a statement tree. Statement IDs are preserved;
// callers that need fresh IDs (e.g. when duplicating code into the same
// program) should follow with ReassignIDs.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch n := s.(type) {
	case *VarDecl:
		c := *n
		c.Init = CloneExpr(n.Init)
		return &c
	case *Assign:
		c := *n
		c.Target, c.Value = CloneExpr(n.Target), CloneExpr(n.Value)
		return &c
	case *ExprStmt:
		c := *n
		c.E = CloneExpr(n.E)
		return &c
	case *If:
		c := *n
		c.Cond = CloneExpr(n.Cond)
		c.Then = CloneBlock(n.Then)
		c.Else = CloneBlock(n.Else)
		return &c
	case *For:
		c := *n
		c.From, c.To = CloneExpr(n.From), CloneExpr(n.To)
		c.Body = CloneBlock(n.Body)
		return &c
	case *While:
		c := *n
		c.Cond = CloneExpr(n.Cond)
		c.Body = CloneBlock(n.Body)
		return &c
	case *Sync:
		c := *n
		c.Monitor = CloneExpr(n.Monitor)
		c.Body = CloneBlock(n.Body)
		return &c
	case *Return:
		c := *n
		c.E = CloneExpr(n.E)
		return &c
	case *Throw:
		c := *n
		c.E = CloneExpr(n.E)
		return &c
	case *Try:
		c := *n
		c.Body = CloneBlock(n.Body)
		c.Catch = CloneBlock(n.Catch)
		return &c
	case *Print:
		c := *n
		c.E = CloneExpr(n.E)
		return &c
	case *Block:
		return CloneBlock(n)
	}
	panic("lang: CloneStmt: unknown statement type")
}

// CloneBlock deep-copies a block (nil-safe).
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	c := &Block{}
	c.setID(b.ID())
	c.Stmts = make([]Stmt, len(b.Stmts))
	for i, s := range b.Stmts {
		c.Stmts[i] = CloneStmt(s)
	}
	return c
}

// CloneMethod deep-copies a method.
func CloneMethod(m *Method) *Method {
	c := *m
	c.Params = append([]Param(nil), m.Params...)
	c.Body = CloneBlock(m.Body)
	return &c
}

// CloneClass deep-copies a class.
func CloneClass(cl *Class) *Class {
	c := &Class{Name: cl.Name}
	for _, f := range cl.Fields {
		ff := *f
		c.Fields = append(c.Fields, &ff)
	}
	for _, m := range cl.Methods {
		c.Methods = append(c.Methods, CloneMethod(m))
	}
	return c
}

// CloneProgram deep-copies an entire program, preserving statement IDs
// and the ID counter, so a mutation point remains addressable in the clone.
func CloneProgram(p *Program) *Program {
	c := &Program{EntryClass: p.EntryClass, nextID: p.nextID}
	for _, cl := range p.Classes {
		c.Classes = append(c.Classes, CloneClass(cl))
	}
	return c
}

// ReassignIDs gives every statement in the subtree a fresh ID from p.
func ReassignIDs(p *Program, s Stmt) {
	WalkStmts(s, func(st Stmt) bool {
		st.setID(p.NewID())
		return true
	})
}
