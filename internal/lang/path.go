package lang

// Location describes where a statement lives inside a program: the owning
// class and method, the parent block, the index within it, and the chain
// of enclosing statements from the method body down to (excluding) the
// statement itself. Mutators use Locations to insert nested or adjacent
// code around a mutation point.
type Location struct {
	Class     *Class
	Method    *Method
	Parent    *Block
	Index     int
	Enclosing []Stmt // outermost first; includes Parent's ancestors and Parent itself
	Stmt      Stmt
}

// EnclosingSyncs returns the synchronized statements enclosing the
// location, innermost last.
func (l *Location) EnclosingSyncs() []*Sync {
	var out []*Sync
	for _, s := range l.Enclosing {
		if sy, ok := s.(*Sync); ok {
			out = append(out, sy)
		}
	}
	return out
}

// InnermostSync returns the closest enclosing synchronized statement, or nil.
func (l *Location) InnermostSync() *Sync {
	syncs := l.EnclosingSyncs()
	if len(syncs) == 0 {
		return nil
	}
	return syncs[len(syncs)-1]
}

// LoopDepth returns how many loops enclose the location.
func (l *Location) LoopDepth() int {
	n := 0
	for _, s := range l.Enclosing {
		switch s.(type) {
		case *For, *While:
			n++
		}
	}
	return n
}

// Find locates the statement with the given ID anywhere in the program.
// It returns nil if no statement has that ID.
func Find(p *Program, id int) *Location {
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			if loc := findInBlock(m.Body, id, nil); loc != nil {
				loc.Class, loc.Method = cl, m
				return loc
			}
		}
	}
	return nil
}

func findInBlock(b *Block, id int, enclosing []Stmt) *Location {
	if b == nil {
		return nil
	}
	enc := append(append([]Stmt(nil), enclosing...), b)
	for i, s := range b.Stmts {
		if s.ID() == id {
			return &Location{Parent: b, Index: i, Enclosing: enc, Stmt: s}
		}
		var loc *Location
		switch n := s.(type) {
		case *Block:
			loc = findInBlock(n, id, enc)
		case *If:
			withIf := append(enc, s)
			loc = findInBlock(n.Then, id, withIf)
			if loc == nil {
				loc = findInBlock(n.Else, id, withIf)
			}
		case *For:
			loc = findInBlock(n.Body, id, append(enc, s))
		case *While:
			loc = findInBlock(n.Body, id, append(enc, s))
		case *Sync:
			loc = findInBlock(n.Body, id, append(enc, s))
		case *Try:
			withTry := append(enc, s)
			loc = findInBlock(n.Body, id, withTry)
			if loc == nil {
				loc = findInBlock(n.Catch, id, withTry)
			}
		}
		if loc != nil {
			return loc
		}
	}
	return nil
}

// InsertBefore inserts stmt directly before the located statement.
func (l *Location) InsertBefore(s Stmt) {
	l.Parent.Stmts = append(l.Parent.Stmts, nil)
	copy(l.Parent.Stmts[l.Index+1:], l.Parent.Stmts[l.Index:])
	l.Parent.Stmts[l.Index] = s
	l.Index++
}

// InsertAfter inserts stmt directly after the located statement.
func (l *Location) InsertAfter(s Stmt) {
	i := l.Index + 1
	l.Parent.Stmts = append(l.Parent.Stmts, nil)
	copy(l.Parent.Stmts[i+1:], l.Parent.Stmts[i:])
	l.Parent.Stmts[i] = s
}

// Replace substitutes the located statement with s.
func (l *Location) Replace(s Stmt) {
	l.Parent.Stmts[l.Index] = s
	l.Stmt = s
}

// Remove deletes the located statement from its parent block.
func (l *Location) Remove() {
	copy(l.Parent.Stmts[l.Index:], l.Parent.Stmts[l.Index+1:])
	l.Parent.Stmts = l.Parent.Stmts[:len(l.Parent.Stmts)-1]
}

// Statements returns every statement in the program in source order,
// paired with its owning class and method. Block statements themselves
// are included (they are valid mutation points per the paper's "any
// statement" selection, though the default selector skips them).
func Statements(p *Program) []*Location {
	var out []*Location
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			collectBlock(m.Body, nil, cl, m, &out)
		}
	}
	return out
}

func collectBlock(b *Block, enclosing []Stmt, cl *Class, m *Method, out *[]*Location) {
	if b == nil {
		return
	}
	enc := append(append([]Stmt(nil), enclosing...), b)
	for i, s := range b.Stmts {
		*out = append(*out, &Location{Class: cl, Method: m, Parent: b, Index: i, Enclosing: enc, Stmt: s})
		switch n := s.(type) {
		case *Block:
			collectBlock(n, enc, cl, m, out)
		case *If:
			collectBlock(n.Then, append(enc, s), cl, m, out)
			collectBlock(n.Else, append(enc, s), cl, m, out)
		case *For:
			collectBlock(n.Body, append(enc, s), cl, m, out)
		case *While:
			collectBlock(n.Body, append(enc, s), cl, m, out)
		case *Sync:
			collectBlock(n.Body, append(enc, s), cl, m, out)
		case *Try:
			collectBlock(n.Body, append(enc, s), cl, m, out)
			collectBlock(n.Catch, append(enc, s), cl, m, out)
		}
	}
}

// CountStmts returns the number of statements in the program (excluding
// method-body blocks themselves but including nested blocks).
func CountStmts(p *Program) int {
	n := 0
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			WalkStmts(m.Body, func(Stmt) bool { n++; return true })
			n-- // don't count the body block itself
		}
	}
	return n
}

// FreshVar returns a variable name of the form prefixN that does not
// collide with any name used in the method (params, locals, loop vars,
// catch vars).
func FreshVar(m *Method, prefix string) string {
	used := map[string]bool{}
	for _, p := range m.Params {
		used[p.Name] = true
	}
	WalkStmts(m.Body, func(s Stmt) bool {
		switch n := s.(type) {
		case *VarDecl:
			used[n.Name] = true
		case *For:
			used[n.Var] = true
		case *Try:
			used[n.CatchVar] = true
		}
		return true
	})
	for i := 0; ; i++ {
		name := prefix + itoa(i)
		if !used[name] {
			return name
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// FreshMethod returns a method name of the form prefixN unused in the class.
func FreshMethod(c *Class, prefix string) string {
	used := map[string]bool{}
	for _, m := range c.Methods {
		used[m.Name] = true
	}
	for i := 0; ; i++ {
		name := prefix + itoa(i)
		if !used[name] {
			return name
		}
	}
}

// LocalsInScope returns the names and types of variables visible at the
// location, in declaration order: method params, then locals declared in
// enclosing blocks before the statement, loop variables, and catch vars.
func (l *Location) LocalsInScope() []Param {
	var out []Param
	if !l.Method.Static {
		out = append(out, Param{Name: "this", Ty: ObjectType(l.Class.Name)})
	}
	out = append(out, l.Method.Params...)
	// Walk the enclosing chain; in each block, take declarations that
	// appear before the child we descend into.
	chain := append(append([]Stmt(nil), l.Enclosing...), l.Stmt)
	for idx, s := range chain[:len(chain)-1] {
		child := chain[idx+1]
		switch n := s.(type) {
		case *Block:
			for _, bs := range n.Stmts {
				// Stop at the statement containing (or being) the child:
				// its own declaration is not in scope before it runs.
				if bs.ID() == child.ID() || containsStmt(bs, child.ID()) {
					break
				}
				if vd, ok := bs.(*VarDecl); ok {
					out = append(out, Param{Name: vd.Name, Ty: vd.Ty})
				}
			}
		case *For:
			out = append(out, Param{Name: n.Var, Ty: Int})
		case *Try:
			if blockContains(n.Catch, child.ID()) {
				out = append(out, Param{Name: n.CatchVar, Ty: Int})
			}
		}
	}
	return out
}

func containsStmt(s Stmt, id int) bool {
	found := false
	WalkStmts(s, func(st Stmt) bool {
		if st.ID() == id {
			found = true
		}
		return !found
	})
	return found
}

func blockContains(b *Block, id int) bool {
	if b == nil {
		return false
	}
	return containsStmt(b, id)
}
