package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLong
	tokString
	tokPunct // operators and punctuation, Text holds the exact spelling
)

type token struct {
	Kind tokKind
	Text string
	Int  int64
	Pos  int // byte offset, for error messages
	Line int
}

// lexer tokenizes mini-Java source.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

var multiPunct = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			l.lexPunct()
		}
	}
	l.toks = append(l.toks, token{Kind: tokEOF, Pos: l.pos, Line: l.line})
	return l.toks, nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{Kind: tokIdent, Text: l.src[start:l.pos], Pos: start, Line: l.line})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		l.pos++
	}
	text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return fmt.Errorf("lang: line %d: bad number %q: %v", l.line, text, err)
	}
	kind := tokInt
	if l.pos < len(l.src) && (l.src[l.pos] == 'L' || l.src[l.pos] == 'l') {
		kind = tokLong
		l.pos++
	}
	l.toks = append(l.toks, token{Kind: kind, Int: v, Text: text, Pos: start, Line: l.line})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{Kind: tokString, Text: b.String(), Pos: start, Line: l.line})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("lang: line %d: unterminated string", l.line)
}

func (l *lexer) lexPunct() {
	for _, p := range multiPunct {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.toks = append(l.toks, token{Kind: tokPunct, Text: p, Pos: l.pos, Line: l.line})
			l.pos += len(p)
			return
		}
	}
	l.toks = append(l.toks, token{Kind: tokPunct, Text: l.src[l.pos : l.pos+1], Pos: l.pos, Line: l.line})
	l.pos++
}
