package lang

import (
	"fmt"
	"strings"
)

// Format renders a program as Java-like source text. The output parses
// back with Parse (round-trip property, tested in print_test.go).
func Format(p *Program) string {
	var b strings.Builder
	for i, c := range p.Classes {
		if i > 0 {
			b.WriteString("\n")
		}
		formatClass(&b, c)
	}
	return b.String()
}

func formatClass(b *strings.Builder, c *Class) {
	fmt.Fprintf(b, "class %s {\n", c.Name)
	for _, f := range c.Fields {
		b.WriteString("  ")
		if f.Static {
			b.WriteString("static ")
		}
		fmt.Fprintf(b, "%s %s;\n", f.Ty, f.Name)
	}
	for _, m := range c.Methods {
		formatMethod(b, m)
	}
	b.WriteString("}\n")
}

func formatMethod(b *strings.Builder, m *Method) {
	b.WriteString("  ")
	if m.Static {
		b.WriteString("static ")
	}
	if m.Synchronized {
		b.WriteString("synchronized ")
	}
	fmt.Fprintf(b, "%s %s(", m.Ret, m.Name)
	for i, p := range m.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", p.Ty, p.Name)
	}
	b.WriteString(") ")
	formatBlock(b, m.Body, 1)
	b.WriteString("\n")
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch n := s.(type) {
	case *VarDecl:
		fmt.Fprintf(b, "%s %s = %s;\n", n.Ty, n.Name, FormatExpr(n.Init))
	case *Assign:
		fmt.Fprintf(b, "%s = %s;\n", FormatExpr(n.Target), FormatExpr(n.Value))
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", FormatExpr(n.E))
	case *If:
		fmt.Fprintf(b, "if (%s) ", FormatExpr(n.Cond))
		formatBlock(b, n.Then, depth)
		if n.Else != nil {
			b.WriteString(" else ")
			formatBlock(b, n.Else, depth)
		}
		b.WriteString("\n")
	case *For:
		fmt.Fprintf(b, "for (int %s = %s; %s < %s; %s += %d) ",
			n.Var, FormatExpr(n.From), n.Var, FormatExpr(n.To), n.Var, n.Step)
		formatBlock(b, n.Body, depth)
		b.WriteString("\n")
	case *While:
		fmt.Fprintf(b, "while (%s) ", FormatExpr(n.Cond))
		formatBlock(b, n.Body, depth)
		b.WriteString("\n")
	case *Sync:
		fmt.Fprintf(b, "synchronized (%s) ", FormatExpr(n.Monitor))
		formatBlock(b, n.Body, depth)
		b.WriteString("\n")
	case *Return:
		if n.E == nil {
			b.WriteString("return;\n")
		} else {
			fmt.Fprintf(b, "return %s;\n", FormatExpr(n.E))
		}
	case *Throw:
		fmt.Fprintf(b, "throw %s;\n", FormatExpr(n.E))
	case *Try:
		b.WriteString("try ")
		formatBlock(b, n.Body, depth)
		fmt.Fprintf(b, " catch (%s) ", n.CatchVar)
		formatBlock(b, n.Catch, depth)
		b.WriteString("\n")
	case *Print:
		fmt.Fprintf(b, "print(%s);\n", FormatExpr(n.E))
	case *Block:
		formatBlock(b, n, depth)
		b.WriteString("\n")
	default:
		panic("lang: Format: unknown statement type")
	}
}

// FormatExpr renders an expression as source text.
func FormatExpr(e Expr) string {
	switch n := e.(type) {
	case nil:
		return "<nil>"
	case *IntLit:
		if n.Ty.Kind == KindLong {
			return fmt.Sprintf("%dL", n.V)
		}
		return fmt.Sprintf("%d", n.V)
	case *BoolLit:
		if n.V {
			return "true"
		}
		return "false"
	case *StrLit:
		return fmt.Sprintf("%q", n.V)
	case *VarRef:
		return n.Name
	case *FieldRef:
		if n.Recv == nil {
			return fmt.Sprintf("%s.%s", n.Class, n.Name)
		}
		return fmt.Sprintf("%s.%s", FormatExpr(n.Recv), n.Name)
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(n.L), n.Op, FormatExpr(n.R))
	case *Unary:
		// Canonicalize unary minus over a literal to a negative literal
		// (the parser folds the same shape).
		if n.Op == OpNeg {
			if lit, ok := n.X.(*IntLit); ok {
				folded := &IntLit{V: -lit.V}
				folded.Ty = lit.Ty
				return FormatExpr(folded)
			}
		}
		return fmt.Sprintf("(%s%s)", n.Op, FormatExpr(n.X))
	case *Call:
		args := formatArgs(n.Args)
		if n.Recv == nil {
			return fmt.Sprintf("%s.%s(%s)", n.Class, n.Method, args)
		}
		return fmt.Sprintf("%s.%s(%s)", FormatExpr(n.Recv), n.Method, args)
	case *ReflectCall:
		recv := "null"
		if n.Recv != nil {
			recv = FormatExpr(n.Recv)
		}
		args := formatArgs(n.Args)
		if args != "" {
			args = ", " + args
		}
		return fmt.Sprintf("reflect_invoke(%q, %q, %s%s)", n.Class, n.Method, recv, args)
	case *ReflectFieldGet:
		recv := "null"
		if n.Recv != nil {
			recv = FormatExpr(n.Recv)
		}
		return fmt.Sprintf("reflect_get(%q, %q, %s)", n.Class, n.Name, recv)
	case *New:
		return fmt.Sprintf("new %s()", n.Class)
	case *NewArray:
		return fmt.Sprintf("new int[%s]", FormatExpr(n.Len))
	case *Index:
		return fmt.Sprintf("%s[%s]", FormatExpr(n.Arr), FormatExpr(n.Idx))
	case *Box:
		return fmt.Sprintf("Integer.valueOf(%s)", FormatExpr(n.X))
	case *Unbox:
		return fmt.Sprintf("%s.intValue()", FormatExpr(n.X))
	case *Widen:
		return fmt.Sprintf("(long)(%s)", FormatExpr(n.X))
	case *Cond:
		return fmt.Sprintf("(%s ? %s : %s)", FormatExpr(n.C), FormatExpr(n.T), FormatExpr(n.F))
	}
	panic("lang: FormatExpr: unknown expression type")
}

func formatArgs(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = FormatExpr(a)
	}
	return strings.Join(parts, ", ")
}
