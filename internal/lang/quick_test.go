package lang

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genExpr builds a random well-typed int expression over variables a, b.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &VarRef{Name: "a"}
		case 1:
			return &VarRef{Name: "b"}
		default:
			return &IntLit{V: int64(rng.Intn(2001) - 1000)}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return &Unary{Op: OpNeg, X: genExpr(rng, depth-1)}
	case 1:
		return &Unary{Op: OpBitNot, X: genExpr(rng, depth-1)}
	case 2:
		return &Cond{
			C: &Binary{Op: OpLt, L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)},
			T: genExpr(rng, depth-1),
			F: genExpr(rng, depth-1),
		}
	default:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	}
}

// exprValue implements quick.Generator for random expressions.
type exprValue struct{ E Expr }

func (exprValue) Generate(rng *rand.Rand, size int) reflect.Value {
	d := size % 5
	return reflect.ValueOf(exprValue{E: genExpr(rng, d)})
}

// Property: FormatExpr(parse(FormatExpr(e))) == FormatExpr(e).
func TestQuickExprRoundTrip(t *testing.T) {
	f := func(ev exprValue) bool {
		s1 := FormatExpr(ev.E)
		parsed, err := ParseExprString(s1, nil)
		if err != nil {
			t.Logf("parse failed on %q: %v", s1, err)
			return false
		}
		return FormatExpr(parsed) == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: CloneExpr produces an equal rendering and a disjoint tree.
func TestQuickCloneExprIndependent(t *testing.T) {
	f := func(ev exprValue) bool {
		c := CloneExpr(ev.E)
		if FormatExpr(c) != FormatExpr(ev.E) {
			return false
		}
		// Zero out every literal in the clone; the original must not move.
		before := FormatExpr(ev.E)
		WalkExpr(c, func(x Expr) {
			if lit, ok := x.(*IntLit); ok {
				lit.V = 0
			}
		})
		return FormatExpr(ev.E) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a program wrapping a random expression type-checks,
// round-trips, and keeps statement IDs unique after a clone+mutation.
func TestQuickProgramWithRandomExpr(t *testing.T) {
	f := func(ev exprValue) bool {
		p := &Program{EntryClass: "T"}
		body := Register(p, &Block{})
		body.Stmts = append(body.Stmts,
			Register(p, &VarDecl{Name: "a", Ty: Int, Init: &IntLit{V: 3}}),
			Register(p, &VarDecl{Name: "b", Ty: Int, Init: &IntLit{V: 5}}),
			Register(p, &Print{E: CloneExpr(ev.E)}),
		)
		p.Classes = []*Class{{Name: "T", Methods: []*Method{{
			Name: "main", Static: true, Ret: Void, Body: body,
		}}}}
		if err := Check(p); err != nil {
			t.Logf("check failed: %v\n%s", err, Format(p))
			return false
		}
		s1 := Format(p)
		p2, err := Parse(s1)
		if err != nil {
			return false
		}
		if err := Check(p2); err != nil {
			return false
		}
		if Format(p2) != s1 {
			return false
		}
		// Clone and mutate: IDs stay unique program-wide.
		q := CloneProgram(p)
		loc := Statements(q)[0]
		loc.InsertBefore(Register(q, &Print{E: &IntLit{V: 1}}))
		seen := map[int]bool{}
		ok := true
		for _, l := range Statements(q) {
			if seen[l.Stmt.ID()] {
				ok = false
			}
			seen[l.Stmt.ID()] = true
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Find locates every statement Statements enumerates, with the
// same parent block identity.
func TestQuickFindConsistent(t *testing.T) {
	f := func(ev exprValue) bool {
		src := `
class T {
  static void main() {
    int a = 1;
    int b = 2;
    for (int i = 0; i < 4; i += 1) {
      if (a < b) {
        print(` + FormatExpr(ev.E) + `);
      }
    }
  }
}`
		p, err := Parse(src)
		if err != nil {
			return false
		}
		if err := Check(p); err != nil {
			return false
		}
		for _, loc := range Statements(p) {
			got := Find(p, loc.Stmt.ID())
			if got == nil || got.Parent != loc.Parent || got.Index != loc.Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
