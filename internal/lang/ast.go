// Package lang defines a small Java-like language ("mini-Java") used as
// the input language for the simulated JVM and as the mutation substrate
// for the fuzzer. It covers every construct the optimization-evoking
// mutators need: counted and conditional loops, synchronized regions,
// method calls, reflection calls, autoboxing, try/catch, object fields,
// and integer arrays.
//
// Every statement carries a unique ID assigned from the owning Program's
// counter. Mutators address the mutation point by statement ID, which is
// stable across mutations (new statements receive fresh IDs).
package lang

// TypeKind enumerates the primitive kinds of the mini-Java type system.
type TypeKind int

// Type kinds.
const (
	KindVoid TypeKind = iota
	KindInt
	KindLong
	KindBool
	KindString
	KindIntBox // java.lang.Integer
	KindObject // a user-defined class type
	KindIntArray
)

// Type is a mini-Java type. For KindObject, Class names the class.
type Type struct {
	Kind  TypeKind
	Class string
}

// Convenience type constructors.
var (
	Void     = Type{Kind: KindVoid}
	Int      = Type{Kind: KindInt}
	Long     = Type{Kind: KindLong}
	Bool     = Type{Kind: KindBool}
	String   = Type{Kind: KindString}
	IntBox   = Type{Kind: KindIntBox}
	IntArray = Type{Kind: KindIntArray}
)

// ObjectType returns the class type for the named class.
func ObjectType(class string) Type { return Type{Kind: KindObject, Class: class} }

// IsNumeric reports whether t is an int or long.
func (t Type) IsNumeric() bool { return t.Kind == KindInt || t.Kind == KindLong }

// IsRef reports whether t is a reference type (object, box, array, string).
func (t Type) IsRef() bool {
	switch t.Kind {
	case KindObject, KindIntBox, KindIntArray, KindString:
		return true
	}
	return false
}

func (t Type) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindBool:
		return "boolean"
	case KindString:
		return "String"
	case KindIntBox:
		return "Integer"
	case KindObject:
		return t.Class
	case KindIntArray:
		return "int[]"
	}
	return "?"
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd // bitwise &
	OpOr  // bitwise |
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLAnd // logical &&
	OpLOr  // logical ||
)

// IsComparison reports whether the operator yields a boolean from numeric operands.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsLogical reports whether the operator combines booleans.
func (op BinOp) IsLogical() bool { return op == OpLAnd || op == OpLOr }

// IsArith reports whether the operator is an arithmetic/bitwise operator.
func (op BinOp) IsArith() bool { return op <= OpShr }

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpRem:
		return "%"
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpXor:
		return "^"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLAnd:
		return "&&"
	case OpLOr:
		return "||"
	}
	return "?"
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg    UnOp = iota // -x
	OpNot                // !x
	OpBitNot             // ~x
)

func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "!"
	case OpBitNot:
		return "~"
	}
	return "?"
}

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	isExpr()
	// ResultType returns the static type computed by the checker
	// (zero Type before Check runs).
	ResultType() Type
}

// exprBase carries the checker-assigned static type.
type exprBase struct{ Ty Type }

func (exprBase) isExpr()            {}
func (e exprBase) ResultType() Type { return e.Ty }

// IntLit is an integer literal (int or long according to Ty).
type IntLit struct {
	exprBase
	V int64
}

// BoolLit is a boolean literal.
type BoolLit struct {
	exprBase
	V bool
}

// StrLit is a string literal.
type StrLit struct {
	exprBase
	V string
}

// VarRef references a local variable or parameter by name.
type VarRef struct {
	exprBase
	Name string
}

// FieldRef accesses a field. Recv is nil for a static field of Class.
type FieldRef struct {
	exprBase
	Recv  Expr
	Class string // declaring class
	Name  string
}

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnOp
	X  Expr
}

// Call invokes a method. Recv is nil for a static call on Class.
type Call struct {
	exprBase
	Recv   Expr
	Class  string // declaring class
	Method string
	Args   []Expr
}

// ReflectCall invokes a method through the reflection mechanism:
// Class.forName(Class).getDeclaredMethod(Method).invoke(Recv, Args...).
// Recv is nil for static targets.
type ReflectCall struct {
	exprBase
	Class  string
	Method string
	Recv   Expr
	Args   []Expr
}

// ReflectFieldGet reads a field through reflection:
// Class.forName(Class).getDeclaredField(Name).getInt(Recv).
type ReflectFieldGet struct {
	exprBase
	Class string
	Name  string
	Recv  Expr
}

// New allocates an instance of Class with the default constructor.
type New struct {
	exprBase
	Class string
}

// NewArray allocates an int array of the given length.
type NewArray struct {
	exprBase
	Len Expr
}

// Index reads an array element.
type Index struct {
	exprBase
	Arr, Idx Expr
}

// Box wraps an int into an Integer (Integer.valueOf).
type Box struct {
	exprBase
	X Expr
}

// Unbox extracts the int from an Integer (intValue()).
type Unbox struct {
	exprBase
	X Expr
}

// Widen is an implicit int-to-long widening conversion, inserted by the
// checker at assignment, argument, and return positions so that every
// execution engine widens at exactly the same program points.
type Widen struct {
	exprBase
	X Expr
}

// Cond is the ternary conditional operator c ? t : f.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	isStmt()
	// ID returns the program-unique statement identifier.
	ID() int
	setID(int)
}

// stmtBase carries the statement ID.
type stmtBase struct{ id int }

func (stmtBase) isStmt()        {}
func (s stmtBase) ID() int      { return s.id }
func (s *stmtBase) setID(n int) { s.id = n }

// VarDecl declares a local variable with an initializer.
type VarDecl struct {
	stmtBase
	Name string
	Ty   Type
	Init Expr
}

// Assign assigns Value to Target. Target must be a VarRef, FieldRef, or Index.
type Assign struct {
	stmtBase
	Target Expr
	Value  Expr
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	E Expr
}

// If is a conditional statement; Else may be nil.
type If struct {
	stmtBase
	Cond Expr
	Then *Block
	Else *Block
}

// For is a counted loop:
//
//	for (int Var = From; Var < To; Var += Step) Body
//
// Counted loops are what the JIT's loop optimizations recognize.
type For struct {
	stmtBase
	Var  string
	From Expr
	To   Expr
	Step int64
	Body *Block
}

// While is a general conditional loop.
type While struct {
	stmtBase
	Cond Expr
	Body *Block
}

// Sync is a synchronized region on the Monitor expression.
type Sync struct {
	stmtBase
	Monitor Expr
	Body    *Block
}

// Return returns from the enclosing method; E is nil for void returns.
type Return struct {
	stmtBase
	E Expr
}

// Throw raises a runtime exception carrying an int code.
type Throw struct {
	stmtBase
	E Expr
}

// Try executes Body; if a Throw unwinds into it, CatchVar is bound to the
// thrown code and Catch runs.
type Try struct {
	stmtBase
	Body     *Block
	CatchVar string
	Catch    *Block
}

// Print appends the value of E to the program output (the oracle channel).
type Print struct {
	stmtBase
	E Expr
}

// Block is a brace-delimited statement list; it is itself a statement.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// Param is a method parameter.
type Param struct {
	Name string
	Ty   Type
}

// Method is a mini-Java method.
type Method struct {
	Name         string
	Params       []Param
	Ret          Type
	Body         *Block
	Static       bool
	Synchronized bool
}

// Field is a class field. All fields default to the zero value.
type Field struct {
	Name   string
	Ty     Type
	Static bool
}

// Class is a mini-Java class.
type Class struct {
	Name    string
	Fields  []*Field
	Methods []*Method
}

// Method returns the named method, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Field returns the named field, or nil.
func (c *Class) FieldByName(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Program is a compilation unit: a set of classes plus the entry point.
// EntryClass must define "static void main()". nextID feeds statement IDs.
type Program struct {
	Classes    []*Class
	EntryClass string
	nextID     int
}

// Class returns the named class, or nil.
func (p *Program) Class(name string) *Class {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Entry returns the entry class and its main method, or nils.
func (p *Program) Entry() (*Class, *Method) {
	c := p.Class(p.EntryClass)
	if c == nil {
		return nil, nil
	}
	return c, c.Method("main")
}

// NewID allocates a fresh statement ID.
func (p *Program) NewID() int {
	p.nextID++
	return p.nextID
}

// Register assigns a fresh ID to s and returns s (generic helper for
// constructing statements attached to this program).
func Register[S Stmt](p *Program, s S) S {
	s.setID(p.NewID())
	return s
}

// MaxID returns the highest statement ID currently assigned.
func (p *Program) MaxID() int { return p.nextID }

// SyncIDs walks all statements and raises nextID above any existing ID.
// Call after constructing a Program from parsed or cloned parts.
func (p *Program) SyncIDs() {
	max := p.nextID
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			WalkStmts(m.Body, func(s Stmt) bool {
				if s.ID() > max {
					max = s.ID()
				}
				return true
			})
		}
	}
	p.nextID = max
}
