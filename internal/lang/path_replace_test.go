package lang

import (
	"testing"
)

// allPositionsSrc covers every statement-nesting shape a Location can
// point into: plain blocks, if/else arms, for and while bodies,
// synchronized bodies, try/catch arms, and a nested bare block.
const allPositionsSrc = `
class R {
  int f;
  static void main() {
    R r = new R();
    int acc = 0;
    if (acc < 1) {
      acc = acc + 1;
    } else {
      acc = acc + 2;
    }
    for (int i = 0; i < 10; i += 1) {
      while (acc < 5) {
        acc = acc + r.bump(i);
      }
    }
    synchronized (r) {
      {
        acc = acc + 1;
      }
    }
    try {
      acc = acc / acc;
    } catch (e) {
      acc = 0;
    }
    print(acc);
  }
  int bump(int i) {
    return i + this.f;
  }
}
`

// TestReplaceAtEveryStatementPosition replaces the statement at every
// location in the program — including ones nested inside if arms, loop
// bodies, synchronized blocks, and catch arms — with a fresh statement,
// and requires each mutated program to survive ReassignIDs and a full
// print/parse/check round-trip. This is the exact operation template
// hole instantiation performs (internal/generate), pinned at the lang
// layer.
func TestReplaceAtEveryStatementPosition(t *testing.T) {
	base := mustChecked(t, allPositionsSrc)
	n := len(Statements(base))
	if n < 16 {
		t.Fatalf("expected a rich position set, got %d", n)
	}
	for pos := 0; pos < n; pos++ {
		clone := CloneProgram(base)
		locs := Statements(clone)
		loc := locs[pos]
		if _, isBlock := loc.Stmt.(*Block); isBlock {
			continue // bare blocks are containers, not replacement targets
		}
		// Replacing a declaration orphans later uses of its variable, and
		// replacing a return can leave a value-returning method without
		// one, so those positions only get the structural guarantees.
		checkable := true
		switch loc.Stmt.(type) {
		case *VarDecl, *Return:
			checkable = false
		}
		repl := &Print{E: &IntLit{V: 42}}
		ReassignIDs(clone, repl)
		loc.Replace(repl)
		if loc.Parent.Stmts[loc.Index] != Stmt(repl) {
			t.Fatalf("pos %d: Replace did not install the new statement", pos)
		}
		// The replacement is findable by its new ID at the same spot.
		found := Find(clone, repl.ID())
		if found == nil {
			t.Fatalf("pos %d: replacement not findable by ID", pos)
		}
		if found.Parent != loc.Parent || found.Index != loc.Index {
			t.Fatalf("pos %d: replacement found at wrong location", pos)
		}
		out := Format(clone)
		rt, err := Parse(out)
		if err != nil {
			t.Fatalf("pos %d: reparse after replace: %v\n%s", pos, err, out)
		}
		if checkable {
			if err := Check(rt); err != nil {
				t.Fatalf("pos %d: recheck after replace: %v\n%s", pos, err, out)
			}
		}
		if Format(rt) != out {
			t.Fatalf("pos %d: print/parse round-trip not stable", pos)
		}
	}
}

// TestReplaceKeepsSiblingStatements pins that Replace touches only its
// slot: siblings before and after keep their identity and order, at
// every depth of the enclosing chain.
func TestReplaceKeepsSiblingStatements(t *testing.T) {
	base := mustChecked(t, allPositionsSrc)
	for pos, ref := range Statements(base) {
		if _, isBlock := ref.Stmt.(*Block); isBlock {
			continue
		}
		clone := CloneProgram(base)
		loc := Statements(clone)[pos]
		before := append([]Stmt(nil), loc.Parent.Stmts...)
		repl := &Print{E: &IntLit{V: 1}}
		ReassignIDs(clone, repl)
		loc.Replace(repl)
		after := loc.Parent.Stmts
		if len(after) != len(before) {
			t.Fatalf("pos %d: sibling count changed: %d -> %d", pos, len(before), len(after))
		}
		for i := range after {
			if i == loc.Index {
				continue
			}
			if after[i] != before[i] {
				t.Fatalf("pos %d: sibling %d replaced along with the target", pos, i)
			}
		}
	}
}

// TestStatementsEnclosingChains pins the Enclosing invariants template
// extraction relies on when typing a hole: the chain starts at the
// method body, ends at the direct parent block, and the Parent/Index
// pair always addresses Stmt.
func TestStatementsEnclosingChains(t *testing.T) {
	p := mustChecked(t, allPositionsSrc)
	for i, loc := range Statements(p) {
		if len(loc.Enclosing) == 0 {
			t.Fatalf("loc %d: empty enclosing chain", i)
		}
		if loc.Enclosing[0] != Stmt(loc.Method.Body) {
			t.Errorf("loc %d: chain does not start at the method body", i)
		}
		if loc.Enclosing[len(loc.Enclosing)-1] != Stmt(loc.Parent) {
			t.Errorf("loc %d: chain does not end at the parent block", i)
		}
		if loc.Parent.Stmts[loc.Index] != loc.Stmt {
			t.Errorf("loc %d: Parent/Index does not address Stmt", i)
		}
		// Find on the statement's ID reconstructs the same address.
		found := Find(p, loc.Stmt.ID())
		if found == nil || found.Parent != loc.Parent || found.Index != loc.Index {
			t.Errorf("loc %d: Find disagrees with Statements", i)
		}
	}
}
