package lang

import (
	"errors"
	"fmt"
)

// Check resolves names and types across the whole program, filling in the
// static type of every expression and the declaring class of instance
// field accesses and calls. It returns an error describing every problem
// found (joined), or nil if the program is well formed.
//
// Check is idempotent and must run before compiling to bytecode and
// before the fuzzer inspects expression types at a mutation point.
func Check(p *Program) error {
	c := &checker{prog: p}
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			c.checkMethod(cl, m)
		}
	}
	if ec, em := p.Entry(); ec == nil || em == nil || !em.Static {
		c.errorf("program has no static main method in entry class %q", p.EntryClass)
	}
	return errors.Join(c.errs...)
}

type checker struct {
	prog *Program
	errs []error

	class  *Class
	method *Method
	scopes []map[string]Type
}

func (c *checker) errorf(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("lang: %s", fmt.Sprintf(format, args...)))
}

func (c *checker) push()                    { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) pop()                     { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) declare(n string, t Type) { c.scopes[len(c.scopes)-1][n] = t }

func (c *checker) lookup(n string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][n]; ok {
			return t, true
		}
	}
	return Void, false
}

func (c *checker) checkMethod(cl *Class, m *Method) {
	c.class, c.method = cl, m
	c.scopes = nil
	c.push()
	if !m.Static {
		c.declare("this", ObjectType(cl.Name))
	}
	for _, p := range m.Params {
		c.declare(p.Name, p.Ty)
	}
	c.checkBlock(m.Body)
	c.pop()
	if m.Ret.Kind != KindVoid && !alwaysExits(m.Body) {
		c.errorf("method %s.%s: missing return statement", cl.Name, m.Name)
	}
}

// alwaysExits conservatively reports whether every path through the
// block ends in a return or throw (Java's definite-completion rule,
// restricted to the constructs the language has).
func alwaysExits(b *Block) bool {
	if b == nil || len(b.Stmts) == 0 {
		return false
	}
	for _, s := range b.Stmts {
		switch n := s.(type) {
		case *Return, *Throw:
			return true
		case *If:
			if n.Else != nil && alwaysExits(n.Then) && alwaysExits(n.Else) {
				return true
			}
		case *Block:
			if alwaysExits(n) {
				return true
			}
		case *Sync:
			if alwaysExits(n.Body) {
				return true
			}
		case *Try:
			if alwaysExits(n.Body) && alwaysExits(n.Catch) {
				return true
			}
		}
	}
	return false
}

func (c *checker) checkBlock(b *Block) {
	if b == nil {
		return
	}
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

// assignable reports whether a value of type src can be assigned to dst.
func assignable(dst, src Type) bool {
	if dst == src {
		return true
	}
	// int widens to long.
	if dst.Kind == KindLong && src.Kind == KindInt {
		return true
	}
	return false
}

// widen wraps e in a Widen node when assigning an int value to a long
// destination, so every engine widens at the same program point.
func widen(dst Type, e Expr) Expr {
	if e == nil || dst.Kind != KindLong {
		return e
	}
	if e.ResultType().Kind != KindInt {
		return e
	}
	w := &Widen{X: e}
	w.Ty = Long
	return w
}

func (c *checker) checkStmt(s Stmt) {
	switch n := s.(type) {
	case *VarDecl:
		t := c.checkExpr(n.Init)
		if !assignable(n.Ty, t) {
			c.errorf("cannot initialize %s %s with %s value", n.Ty, n.Name, t)
		}
		n.Init = widen(n.Ty, n.Init)
		c.declare(n.Name, n.Ty)
	case *Assign:
		vt := c.checkExpr(n.Value)
		tt := c.checkExpr(n.Target)
		switch n.Target.(type) {
		case *VarRef, *FieldRef, *Index:
		default:
			c.errorf("invalid assignment target %s", FormatExpr(n.Target))
		}
		if !assignable(tt, vt) {
			c.errorf("cannot assign %s value to %s target %s", vt, tt, FormatExpr(n.Target))
		}
		n.Value = widen(tt, n.Value)
	case *ExprStmt:
		c.checkExpr(n.E)
	case *If:
		if t := c.checkExpr(n.Cond); t.Kind != KindBool {
			c.errorf("if condition must be boolean, got %s", t)
		}
		c.checkBlock(n.Then)
		c.checkBlock(n.Else)
	case *For:
		if t := c.checkExpr(n.From); t.Kind != KindInt {
			c.errorf("for-loop start must be int, got %s", t)
		}
		if t := c.checkExpr(n.To); t.Kind != KindInt {
			c.errorf("for-loop bound must be int, got %s", t)
		}
		if n.Step == 0 {
			c.errorf("for-loop step must be nonzero")
		}
		c.push()
		c.declare(n.Var, Int)
		c.checkBlock(n.Body)
		c.pop()
	case *While:
		if t := c.checkExpr(n.Cond); t.Kind != KindBool {
			c.errorf("while condition must be boolean, got %s", t)
		}
		c.checkBlock(n.Body)
	case *Sync:
		if t := c.checkExpr(n.Monitor); !t.IsRef() {
			c.errorf("synchronized monitor must be a reference, got %s", t)
		}
		c.checkBlock(n.Body)
	case *Return:
		ret := c.method.Ret
		if n.E == nil {
			if ret.Kind != KindVoid {
				c.errorf("method %s must return %s", c.method.Name, ret)
			}
			return
		}
		t := c.checkExpr(n.E)
		if !assignable(ret, t) {
			c.errorf("method %s returns %s, got %s", c.method.Name, ret, t)
		}
		n.E = widen(ret, n.E)
	case *Throw:
		if t := c.checkExpr(n.E); t.Kind != KindInt {
			c.errorf("throw expression must be int, got %s", t)
		}
	case *Try:
		c.checkBlock(n.Body)
		c.push()
		c.declare(n.CatchVar, Int)
		c.checkBlock(n.Catch)
		c.pop()
	case *Print:
		c.checkExpr(n.E)
	case *Block:
		c.checkBlock(n)
	default:
		c.errorf("unknown statement type %T", s)
	}
}

// checkExpr computes and stores the static type of e, returning it.
func (c *checker) checkExpr(e Expr) Type {
	switch n := e.(type) {
	case nil:
		return Void
	case *IntLit:
		if n.Ty.Kind != KindLong {
			n.Ty = Int
		}
		return n.Ty
	case *BoolLit:
		n.Ty = Bool
		return Bool
	case *StrLit:
		n.Ty = String
		return String
	case *VarRef:
		t, ok := c.lookup(n.Name)
		if !ok {
			c.errorf("undefined variable %q in %s.%s", n.Name, c.class.Name, c.method.Name)
			t = Int
		}
		n.Ty = t
		return t
	case *FieldRef:
		return c.checkFieldRef(n)
	case *Binary:
		return c.checkBinary(n)
	case *Unary:
		t := c.checkExpr(n.X)
		switch n.Op {
		case OpNeg, OpBitNot:
			if !t.IsNumeric() {
				c.errorf("unary %s needs numeric operand, got %s", n.Op, t)
			}
			n.Ty = t
		case OpNot:
			if t.Kind != KindBool {
				c.errorf("! needs boolean operand, got %s", t)
			}
			n.Ty = Bool
		}
		return n.Ty
	case *Call:
		return c.checkCall(n)
	case *ReflectCall:
		return c.checkReflectCall(n)
	case *ReflectFieldGet:
		cl := c.prog.Class(n.Class)
		if cl == nil {
			c.errorf("reflect_get on unknown class %q", n.Class)
			n.Ty = Int
			return n.Ty
		}
		f := cl.FieldByName(n.Name)
		if f == nil {
			c.errorf("reflect_get on unknown field %s.%s", n.Class, n.Name)
			n.Ty = Int
			return n.Ty
		}
		if n.Recv != nil {
			c.checkExpr(n.Recv)
		} else if !f.Static {
			c.errorf("reflect_get of instance field %s.%s needs a receiver", n.Class, n.Name)
		}
		n.Ty = f.Ty
		return n.Ty
	case *New:
		if c.prog.Class(n.Class) == nil {
			c.errorf("new of unknown class %q", n.Class)
		}
		n.Ty = ObjectType(n.Class)
		return n.Ty
	case *NewArray:
		if t := c.checkExpr(n.Len); t.Kind != KindInt {
			c.errorf("array length must be int, got %s", t)
		}
		n.Ty = IntArray
		return n.Ty
	case *Index:
		if t := c.checkExpr(n.Arr); t.Kind != KindIntArray {
			c.errorf("indexing non-array type %s", t)
		}
		if t := c.checkExpr(n.Idx); t.Kind != KindInt {
			c.errorf("array index must be int, got %s", t)
		}
		n.Ty = Int
		return n.Ty
	case *Box:
		if t := c.checkExpr(n.X); t.Kind != KindInt {
			c.errorf("Integer.valueOf needs int, got %s", t)
		}
		n.Ty = IntBox
		return n.Ty
	case *Unbox:
		if t := c.checkExpr(n.X); t.Kind != KindIntBox {
			c.errorf("intValue() needs Integer, got %s", t)
		}
		n.Ty = Int
		return n.Ty
	case *Widen:
		c.checkExpr(n.X)
		n.Ty = Long
		return Long
	case *Cond:
		if t := c.checkExpr(n.C); t.Kind != KindBool {
			c.errorf("ternary condition must be boolean, got %s", t)
		}
		tt := c.checkExpr(n.T)
		ft := c.checkExpr(n.F)
		if tt != ft && !(tt.IsNumeric() && ft.IsNumeric()) {
			c.errorf("ternary arms disagree: %s vs %s", tt, ft)
		}
		n.Ty = tt
		if tt.Kind == KindInt && ft.Kind == KindLong {
			n.Ty = Long
		}
		return n.Ty
	}
	c.errorf("unknown expression type %T", e)
	return Void
}

func (c *checker) checkBinary(n *Binary) Type {
	lt := c.checkExpr(n.L)
	rt := c.checkExpr(n.R)
	switch {
	case n.Op.IsLogical():
		if lt.Kind != KindBool || rt.Kind != KindBool {
			c.errorf("%s needs boolean operands, got %s and %s", n.Op, lt, rt)
		}
		n.Ty = Bool
	case n.Op.IsComparison():
		switch {
		case lt.IsNumeric() && rt.IsNumeric():
		case lt.IsRef() && rt.IsRef() && (n.Op == OpEq || n.Op == OpNe):
		case lt.Kind == KindBool && rt.Kind == KindBool && (n.Op == OpEq || n.Op == OpNe):
		default:
			c.errorf("cannot compare %s and %s with %s", lt, rt, n.Op)
		}
		n.Ty = Bool
	default: // arithmetic / bitwise
		if !lt.IsNumeric() || !rt.IsNumeric() {
			c.errorf("%s needs numeric operands, got %s and %s (%s)", n.Op, lt, rt, FormatExpr(n))
		}
		n.Ty = Int
		if lt.Kind == KindLong || rt.Kind == KindLong {
			n.Ty = Long
		}
	}
	return n.Ty
}

func (c *checker) checkFieldRef(n *FieldRef) Type {
	var cl *Class
	if n.Recv == nil {
		cl = c.prog.Class(n.Class)
		if cl == nil {
			c.errorf("unknown class %q in static field access", n.Class)
			n.Ty = Int
			return n.Ty
		}
	} else {
		rt := c.checkExpr(n.Recv)
		if rt.Kind != KindObject {
			c.errorf("field access on non-object type %s", rt)
			n.Ty = Int
			return n.Ty
		}
		cl = c.prog.Class(rt.Class)
		if cl == nil {
			c.errorf("field access on unknown class %q", rt.Class)
			n.Ty = Int
			return n.Ty
		}
		n.Class = cl.Name
	}
	f := cl.FieldByName(n.Name)
	if f == nil {
		c.errorf("unknown field %s.%s", cl.Name, n.Name)
		n.Ty = Int
		return n.Ty
	}
	if n.Recv == nil && !f.Static {
		c.errorf("instance field %s.%s accessed statically", cl.Name, n.Name)
	}
	n.Ty = f.Ty
	return n.Ty
}

func (c *checker) checkCall(n *Call) Type {
	var cl *Class
	if n.Recv == nil {
		cl = c.prog.Class(n.Class)
		if cl == nil {
			c.errorf("unknown class %q in static call", n.Class)
			n.Ty = Int
			return n.Ty
		}
	} else {
		rt := c.checkExpr(n.Recv)
		if rt.Kind != KindObject {
			c.errorf("method call on non-object type %s (%s)", rt, FormatExpr(n))
			n.Ty = Int
			return n.Ty
		}
		cl = c.prog.Class(rt.Class)
		if cl == nil {
			c.errorf("method call on unknown class %q", rt.Class)
			n.Ty = Int
			return n.Ty
		}
		n.Class = cl.Name
	}
	m := cl.Method(n.Method)
	if m == nil {
		c.errorf("unknown method %s.%s", cl.Name, n.Method)
		n.Ty = Int
		return n.Ty
	}
	if n.Recv == nil && !m.Static {
		c.errorf("instance method %s.%s called statically", cl.Name, n.Method)
	}
	if len(n.Args) != len(m.Params) {
		c.errorf("call to %s.%s with %d args, want %d", cl.Name, n.Method, len(n.Args), len(m.Params))
	}
	for i, a := range n.Args {
		at := c.checkExpr(a)
		if i < len(m.Params) {
			if !assignable(m.Params[i].Ty, at) {
				c.errorf("call to %s.%s: arg %d has type %s, want %s", cl.Name, n.Method, i, at, m.Params[i].Ty)
			}
			n.Args[i] = widen(m.Params[i].Ty, n.Args[i])
		}
	}
	n.Ty = m.Ret
	return n.Ty
}

func (c *checker) checkReflectCall(n *ReflectCall) Type {
	cl := c.prog.Class(n.Class)
	if cl == nil {
		c.errorf("reflect_invoke on unknown class %q", n.Class)
		n.Ty = Int
		return n.Ty
	}
	m := cl.Method(n.Method)
	if m == nil {
		c.errorf("reflect_invoke on unknown method %s.%s", n.Class, n.Method)
		n.Ty = Int
		return n.Ty
	}
	if n.Recv != nil {
		c.checkExpr(n.Recv)
	} else if !m.Static {
		c.errorf("reflect_invoke of instance method %s.%s needs a receiver", n.Class, n.Method)
	}
	if len(n.Args) != len(m.Params) {
		c.errorf("reflect_invoke %s.%s with %d args, want %d", n.Class, n.Method, len(n.Args), len(m.Params))
	}
	for i, a := range n.Args {
		at := c.checkExpr(a)
		if i < len(m.Params) {
			if !assignable(m.Params[i].Ty, at) {
				c.errorf("reflect_invoke %s.%s: arg %d has type %s, want %s", n.Class, n.Method, i, at, m.Params[i].Ty)
			}
			n.Args[i] = widen(m.Params[i].Ty, n.Args[i])
		}
	}
	n.Ty = m.Ret
	return n.Ty
}
