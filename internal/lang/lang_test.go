package lang

import (
	"strings"
	"testing"
)

const seedSrc = `
class T {
  int f;
  static int sf;
  static void main() {
    T t = new T();
    t.f = 7;
    int acc = 0;
    for (int i = 0; i < 100; i += 1) {
      acc = acc + t.foo(i);
    }
    print(acc);
  }
  int foo(int i) {
    int m = i + this.f;
    return m;
  }
}
`

func mustChecked(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Check(p); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return p
}

func TestParseSeed(t *testing.T) {
	p := mustChecked(t, seedSrc)
	if p.EntryClass != "T" {
		t.Errorf("EntryClass = %q, want T", p.EntryClass)
	}
	c := p.Class("T")
	if c == nil {
		t.Fatal("class T missing")
	}
	if got := len(c.Methods); got != 2 {
		t.Errorf("len(Methods) = %d, want 2", got)
	}
	if got := len(c.Fields); got != 2 {
		t.Errorf("len(Fields) = %d, want 2", got)
	}
	if !c.FieldByName("sf").Static {
		t.Error("sf should be static")
	}
	if c.FieldByName("f").Static {
		t.Error("f should not be static")
	}
	m := c.Method("main")
	if !m.Static || m.Ret.Kind != KindVoid {
		t.Errorf("main = static %v ret %v", m.Static, m.Ret)
	}
}

func TestRoundTrip(t *testing.T) {
	p := mustChecked(t, seedSrc)
	src1 := Format(p)
	p2, err := Parse(src1)
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, src1)
	}
	if err := Check(p2); err != nil {
		t.Fatalf("recheck: %v", err)
	}
	src2 := Format(p2)
	if src1 != src2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", src1, src2)
	}
}

func TestRoundTripAllConstructs(t *testing.T) {
	src := `
class U {
  int g;
  static void main() {
    U u = new U();
    int[] a = new int[10];
    a[3] = 5;
    Integer bx = Integer.valueOf(a[3] + 1);
    int ub = bx.intValue();
    long l = 12L;
    l = l + ub;
    boolean b = true;
    if (b && ub > 2) {
      print(l);
    } else {
      print(0);
    }
    while (ub > 0) {
      ub = ub - 1;
    }
    synchronized (u) {
      u.g = 1;
    }
    try {
      throw 42;
    } catch (e) {
      print(e);
    }
    int r = reflect_invoke("U", "twice", u, 4);
    int fg = reflect_get("U", "g", u);
    int tern = b ? r : fg;
    print(-tern + ~fg);
  }
  int twice(int x) { return x * 2; }
}
`
	p := mustChecked(t, src)
	s1 := Format(p)
	p2, err := Parse(s1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s1)
	}
	if err := Check(p2); err != nil {
		t.Fatalf("recheck: %v\n%s", err, s1)
	}
	if s2 := Format(p2); s1 != s2 {
		t.Errorf("round trip differs:\n%s\nvs\n%s", s1, s2)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", `class T { static void main() { print(x); } }`, "undefined variable"},
		{"bad assign", `class T { static void main() { boolean b = 1; } }`, "cannot initialize"},
		{"unknown method", `class T { static void main() { T.nope(); } }`, "unknown method"},
		{"unknown field", `class T { static void main() { T t = new T(); t.f = 1; } }`, "unknown field"},
		{"bad arity", `class T { static void main() { T.foo(1, 2); } static void foo(int x) { return; } }`, "args"},
		{"non-bool if", `class T { static void main() { if (1) { return; } } }`, "boolean"},
		{"sync on int", `class T { static void main() { int x = 1; synchronized (x) { return; } } }`, "reference"},
		{"no main", `class T { int foo() { return 1; } }`, "no static main"},
		{"instance static call", `class T { static void main() { T.inst(); } void inst() { return; } }`, "called statically"},
		{"reflect unknown", `class T { static void main() { int x = reflect_invoke("T", "gone", null); print(x); } }`, "unknown method"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			err = Check(p)
			if err == nil {
				t.Fatalf("Check passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Check error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestStmtIDsUnique(t *testing.T) {
	p := mustChecked(t, seedSrc)
	seen := map[int]bool{}
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			WalkStmts(m.Body, func(s Stmt) bool {
				if s.ID() == 0 {
					t.Errorf("statement %T has zero ID", s)
				}
				if seen[s.ID()] {
					t.Errorf("duplicate statement ID %d", s.ID())
				}
				seen[s.ID()] = true
				return true
			})
		}
	}
}

func TestFindAndLocation(t *testing.T) {
	p := mustChecked(t, seedSrc)
	locs := Statements(p)
	if len(locs) == 0 {
		t.Fatal("no statements")
	}
	for _, loc := range locs {
		got := Find(p, loc.Stmt.ID())
		if got == nil {
			t.Fatalf("Find(%d) = nil", loc.Stmt.ID())
		}
		if got.Stmt.ID() != loc.Stmt.ID() {
			t.Errorf("Find(%d) located %d", loc.Stmt.ID(), got.Stmt.ID())
		}
		if got.Method == nil || got.Class == nil {
			t.Errorf("Find(%d): missing class/method", loc.Stmt.ID())
		}
	}
	if Find(p, 999999) != nil {
		t.Error("Find of bogus ID should be nil")
	}
}

func TestInsertBeforeAfterReplace(t *testing.T) {
	p := mustChecked(t, seedSrc)
	// Locate the assignment acc = acc + t.foo(i) inside the loop.
	var target *Location
	for _, loc := range Statements(p) {
		if a, ok := loc.Stmt.(*Assign); ok {
			if vr, ok := a.Target.(*VarRef); ok && vr.Name == "acc" {
				target = loc
			}
		}
	}
	if target == nil {
		t.Fatal("mutation point not found")
	}
	if target.LoopDepth() != 1 {
		t.Errorf("LoopDepth = %d, want 1", target.LoopDepth())
	}
	before := Register(p, &Print{E: &IntLit{V: 1}})
	target.InsertBefore(before)
	after := Register(p, &Print{E: &IntLit{V: 2}})
	target.InsertAfter(after)
	// The parent block should now be print(1); assign; print(2).
	blk := target.Parent
	if len(blk.Stmts) != 3 {
		t.Fatalf("len(block) = %d, want 3", len(blk.Stmts))
	}
	if blk.Stmts[0] != before || blk.Stmts[2] != after {
		t.Error("insert order wrong")
	}
	if err := Check(p); err != nil {
		t.Fatalf("Check after mutation: %v", err)
	}
}

func TestCloneProgramIndependence(t *testing.T) {
	p := mustChecked(t, seedSrc)
	q := CloneProgram(p)
	if Format(p) != Format(q) {
		t.Fatal("clone formats differently")
	}
	// Mutating the clone must not affect the original.
	loc := Statements(q)[0]
	loc.InsertBefore(Register(q, &Print{E: &IntLit{V: 99}}))
	if Format(p) == Format(q) {
		t.Error("mutation leaked between clone and original")
	}
	// IDs preserved: every statement ID of p exists in q's original stmts.
	for _, l := range Statements(p) {
		if Find(q, l.Stmt.ID()) == nil {
			t.Errorf("ID %d lost in clone", l.Stmt.ID())
		}
	}
}

func TestEnclosingSyncs(t *testing.T) {
	src := `
class T {
  static void main() {
    T t = new T();
    synchronized (t) {
      synchronized (T.class_obj()) {
        print(1);
      }
    }
  }
  static T class_obj() { return new T(); }
}
`
	p := mustChecked(t, src)
	var printLoc *Location
	for _, loc := range Statements(p) {
		if _, ok := loc.Stmt.(*Print); ok {
			printLoc = loc
		}
	}
	if printLoc == nil {
		t.Fatal("print not found")
	}
	syncs := printLoc.EnclosingSyncs()
	if len(syncs) != 2 {
		t.Fatalf("EnclosingSyncs = %d, want 2", len(syncs))
	}
	if printLoc.InnermostSync() != syncs[1] {
		t.Error("InnermostSync should be the inner one")
	}
}

func TestLocalsInScope(t *testing.T) {
	p := mustChecked(t, seedSrc)
	var loc *Location
	for _, l := range Statements(p) {
		if a, ok := l.Stmt.(*Assign); ok {
			if vr, ok := a.Target.(*VarRef); ok && vr.Name == "acc" {
				loc = l
			}
		}
	}
	if loc == nil {
		t.Fatal("mutation point not found")
	}
	names := map[string]Type{}
	for _, pr := range loc.LocalsInScope() {
		names[pr.Name] = pr.Ty
	}
	for _, want := range []string{"t", "acc", "i"} {
		if _, ok := names[want]; !ok {
			t.Errorf("LocalsInScope missing %q (got %v)", want, names)
		}
	}
	if names["i"] != Int {
		t.Errorf("loop var i has type %v", names["i"])
	}
	if _, ok := names["this"]; ok {
		t.Error("static method should not see this")
	}
}

func TestFreshVarAndMethod(t *testing.T) {
	p := mustChecked(t, seedSrc)
	c := p.Class("T")
	m := c.Method("main")
	v := FreshVar(m, "acc")
	if v == "acc" {
		t.Error("FreshVar returned a used name")
	}
	if v != "acc0" {
		t.Errorf("FreshVar = %q, want acc0", v)
	}
	if got := FreshMethod(c, "foo"); got != "foo0" {
		t.Errorf("FreshMethod = %q, want foo0", got)
	}
	if got := FreshMethod(c, "main"); got != "main0" {
		t.Errorf("FreshMethod = %q, want main0", got)
	}
}

func TestReassignIDs(t *testing.T) {
	p := mustChecked(t, seedSrc)
	_, m := p.Entry()
	clone := CloneBlock(m.Body)
	ReassignIDs(p, clone)
	ids := map[int]bool{}
	WalkStmts(m.Body, func(s Stmt) bool { ids[s.ID()] = true; return true })
	WalkStmts(clone, func(s Stmt) bool {
		if ids[s.ID()] {
			t.Errorf("clone shares ID %d with original", s.ID())
		}
		return true
	})
}

func TestCloneExprDeep(t *testing.T) {
	e := &Binary{Op: OpAdd, L: &VarRef{Name: "a"}, R: &Call{Class: "T", Method: "f", Args: []Expr{&IntLit{V: 1}}}}
	c := CloneExpr(e).(*Binary)
	c.L.(*VarRef).Name = "zzz"
	if e.L.(*VarRef).Name != "a" {
		t.Error("CloneExpr is shallow")
	}
	if FormatExpr(e) == FormatExpr(c) {
		t.Error("mutation did not change clone format")
	}
}

func TestCountStmts(t *testing.T) {
	p := mustChecked(t, `class T { static void main() { print(1); print(2); } }`)
	if n := CountStmts(p); n != 2 {
		t.Errorf("CountStmts = %d, want 2", n)
	}
}

func TestParseExprString(t *testing.T) {
	e, err := ParseExprString("(a + T.f(b))", []string{"T"})
	if err != nil {
		t.Fatalf("ParseExprString: %v", err)
	}
	b, ok := e.(*Binary)
	if !ok || b.Op != OpAdd {
		t.Fatalf("parsed %T, want *Binary add", e)
	}
	if _, err := ParseExprString("a +", nil); err == nil {
		t.Error("want error for truncated expression")
	}
	if _, err := ParseExprString("a b", nil); err == nil {
		t.Error("want error for trailing input")
	}
}

func TestFormatExprStable(t *testing.T) {
	cases := []string{
		"(a + (b * c))",
		"Integer.valueOf((x + 1))",
		"bx.intValue()",
		`reflect_invoke("T", "f", t, 1)`,
		`reflect_get("T", "g", t)`,
		"new T()",
		"new int[8]",
		"arr[(i + 1)]",
		"(b ? 1 : 0)",
	}
	for _, src := range cases {
		e, err := ParseExprString(src, []string{"T"})
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if got := FormatExpr(e); got != src {
			t.Errorf("FormatExpr = %q, want %q", got, src)
		}
	}
}

func TestWalkExprOrder(t *testing.T) {
	e, err := ParseExprString("(a + (b * c))", nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	WalkExpr(e, func(x Expr) {
		if v, ok := x.(*VarRef); ok {
			names = append(names, v.Name)
		}
	})
	if strings.Join(names, "") != "abc" {
		t.Errorf("walk order = %v", names)
	}
}

func TestSyncIDs(t *testing.T) {
	p := mustChecked(t, seedSrc)
	max := p.MaxID()
	p2 := &Program{Classes: p.Classes, EntryClass: p.EntryClass}
	p2.SyncIDs()
	if p2.MaxID() != max {
		t.Errorf("SyncIDs: MaxID = %d, want %d", p2.MaxID(), max)
	}
	if id := p2.NewID(); id != max+1 {
		t.Errorf("NewID after SyncIDs = %d, want %d", id, max+1)
	}
}

func TestMissingReturnRejected(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"falls off end", `class T { static void main() { print(T.f()); } static int f() { int x = 1; } }`, false},
		{"returns in both arms", `class T { static void main() { print(T.f(1)); }
			static int f(int x) { if (x > 0) { return 1; } else { return 2; } } }`, true},
		{"returns in one arm only", `class T { static void main() { print(T.f(1)); }
			static int f(int x) { if (x > 0) { return 1; } } }`, false},
		{"throw counts as exit", `class T { static void main() { print(T.f(1)); }
			static int f(int x) { throw 3; } }`, true},
		{"try needs both paths", `class T { static void main() { print(T.f(1)); }
			static int f(int x) { try { return 1; } catch (e) { print(e); } } }`, false},
		{"loop does not guarantee exit", `class T { static void main() { print(T.f(1)); }
			static int f(int x) { for (int i = 0; i < 10; i += 1) { return i; } } }`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			err = Check(p)
			if tc.ok && err != nil {
				t.Errorf("Check = %v, want ok", err)
			}
			if !tc.ok && (err == nil || !strings.Contains(err.Error(), "missing return")) {
				t.Errorf("Check = %v, want missing-return error", err)
			}
		})
	}
}

func TestWidenInsertedAndRoundTrips(t *testing.T) {
	p := mustChecked(t, `class T {
		static void main() {
			long l = 5;
			l = l + 1;
			print(T.lf(3));
		}
		static long lf(int x) { return x; }
	}`)
	src := Format(p)
	if !strings.Contains(src, "(long)(") {
		t.Errorf("no widen cast in formatted source:\n%s", src)
	}
	p2, err := Parse(src)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, src)
	}
	if err := Check(p2); err != nil {
		t.Fatalf("recheck: %v", err)
	}
	if Format(p2) != src {
		t.Error("widen round trip unstable")
	}
}

func TestCheckIdempotentOnWiden(t *testing.T) {
	p := mustChecked(t, `class T { static void main() { long l = 7; print(l); } }`)
	first := Format(p)
	if err := Check(p); err != nil {
		t.Fatalf("second Check: %v", err)
	}
	if Format(p) != first {
		t.Error("re-checking wrapped Widen twice")
	}
}
