package lang

import (
	"fmt"
	"strings"
)

// Parse parses mini-Java source text into a Program. Statement IDs are
// assigned in parse order. The entry class is the first class defining a
// static main method (or the first class if none does).
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	// Pre-scan class names so the parser can distinguish static accesses.
	classNames := map[string]bool{}
	for i := 0; i+1 < len(toks); i++ {
		if toks[i].Kind == tokIdent && toks[i].Text == "class" && toks[i+1].Kind == tokIdent {
			classNames[toks[i+1].Text] = true
		}
	}
	p := &parser{toks: toks, classes: classNames, prog: &Program{}}
	for !p.at(tokEOF) {
		c, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		p.prog.Classes = append(p.prog.Classes, c)
	}
	for _, c := range p.prog.Classes {
		if m := c.Method("main"); m != nil && m.Static {
			p.prog.EntryClass = c.Name
			break
		}
	}
	if p.prog.EntryClass == "" && len(p.prog.Classes) > 0 {
		p.prog.EntryClass = p.prog.Classes[0].Name
	}
	return p.prog, nil
}

// MustParse parses src and panics on error (for tests and fixtures).
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks    []token
	i       int
	classes map[string]bool
	prog    *Program
}

func (p *parser) peek() token       { return p.toks[p.i] }
func (p *parser) next() token       { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.i].Kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.Kind == tokPunct && t.Text == s
}

func (p *parser) atIdent(s string) bool {
	t := p.peek()
	return t.Kind == tokIdent && t.Text == s
}

func (p *parser) accept(s string) bool {
	if p.atPunct(s) || p.atIdent(s) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	t := p.peek()
	return fmt.Errorf("lang: line %d: expected %q, found %q", t.Line, s, t.Text)
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("lang: line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

var typeKeywords = map[string]Type{
	"void":    Void,
	"int":     Int,
	"long":    Long,
	"boolean": Bool,
	"String":  String,
	"Integer": IntBox,
}

// parseType parses a type name; returns ok=false if the upcoming token is
// not a type (without consuming it).
func (p *parser) parseType() (Type, bool) {
	t := p.peek()
	if t.Kind != tokIdent {
		return Void, false
	}
	if ty, ok := typeKeywords[t.Text]; ok {
		p.i++
		if ty.Kind == KindInt && p.atPunct("[") {
			p.i++
			if !p.accept("]") {
				return Void, false
			}
			return IntArray, true
		}
		return ty, true
	}
	if p.classes[t.Text] {
		p.i++
		return ObjectType(t.Text), true
	}
	return Void, false
}

func (p *parser) parseClass() (*Class, error) {
	if err := p.expect("class"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.Kind != tokIdent {
		return nil, p.errf("expected class name")
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	c := &Class{Name: name.Text}
	for !p.atPunct("}") {
		static := false
		synchronized := false
		for {
			if p.atIdent("static") {
				p.i++
				static = true
				continue
			}
			if p.atIdent("synchronized") && p.toks[p.i+1].Kind == tokIdent {
				// "synchronized" as a method modifier (followed by a type).
				if _, isTy := typeKeywords[p.toks[p.i+1].Text]; isTy || p.classes[p.toks[p.i+1].Text] {
					p.i++
					synchronized = true
					continue
				}
			}
			break
		}
		ty, ok := p.parseType()
		if !ok {
			return nil, p.errf("expected member type, found %q", p.peek().Text)
		}
		memName := p.next()
		if memName.Kind != tokIdent {
			return nil, p.errf("expected member name")
		}
		if p.atPunct("(") {
			m, err := p.parseMethodRest(memName.Text, ty, static, synchronized)
			if err != nil {
				return nil, err
			}
			c.Methods = append(c.Methods, m)
		} else {
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			c.Fields = append(c.Fields, &Field{Name: memName.Text, Ty: ty, Static: static})
		}
	}
	return c, p.expect("}")
}

func (p *parser) parseMethodRest(name string, ret Type, static, synchronized bool) (*Method, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	m := &Method{Name: name, Ret: ret, Static: static, Synchronized: synchronized}
	for !p.atPunct(")") {
		if len(m.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		ty, ok := p.parseType()
		if !ok {
			return nil, p.errf("expected parameter type")
		}
		pn := p.next()
		if pn.Kind != tokIdent {
			return nil, p.errf("expected parameter name")
		}
		m.Params = append(m.Params, Param{Name: pn.Text, Ty: ty})
	}
	p.i++ // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	m.Body = body
	return m, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := Register(p.prog, &Block{})
	for !p.atPunct("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.i++ // '}'
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == tokIdent {
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "synchronized":
			return p.parseSync()
		case "return":
			p.i++
			if p.accept(";") {
				return Register(p.prog, &Return{}), nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return Register(p.prog, &Return{E: e}), p.expect(";")
		case "throw":
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return Register(p.prog, &Throw{E: e}), p.expect(";")
		case "try":
			return p.parseTry()
		case "print":
			if p.toks[p.i+1].Kind == tokPunct && p.toks[p.i+1].Text == "(" {
				p.i += 2
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return Register(p.prog, &Print{E: e}), p.expect(";")
			}
		}
		// Try a variable declaration: Type name = expr;
		save := p.i
		if ty, ok := p.parseType(); ok {
			if p.peek().Kind == tokIdent {
				name := p.next().Text
				if err := p.expect("="); err != nil {
					return nil, err
				}
				init, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return Register(p.prog, &VarDecl{Name: name, Ty: ty, Init: init}), p.expect(";")
			}
			p.i = save
		}
	}
	if p.atPunct("{") {
		return p.parseBlock()
	}
	// Expression statement or assignment.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *VarRef, *FieldRef, *Index:
		default:
			return nil, p.errf("invalid assignment target %s", FormatExpr(e))
		}
		return Register(p.prog, &Assign{Target: e, Value: v}), p.expect(";")
	}
	return Register(p.prog, &ExprStmt{E: e}), p.expect(";")
}

func (p *parser) parseIf() (Stmt, error) {
	p.i++ // 'if'
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := Register(p.prog, &If{Cond: cond, Then: then})
	if p.accept("else") {
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

// parseFor parses the counted-loop form emitted by Format:
// for (int v = e; v < e; v += n) { ... }
func (p *parser) parseFor() (Stmt, error) {
	p.i++ // 'for'
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expect("int"); err != nil {
		return nil, err
	}
	v := p.next()
	if v.Kind != tokIdent {
		return nil, p.errf("expected loop variable")
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if err := p.expect(v.Text); err != nil {
		return nil, err
	}
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if err := p.expect(v.Text); err != nil {
		return nil, err
	}
	if err := p.expect("+="); err != nil {
		return nil, err
	}
	step := p.next()
	if step.Kind != tokInt {
		return nil, p.errf("expected constant loop step")
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return Register(p.prog, &For{Var: v.Text, From: from, To: to, Step: step.Int, Body: body}), nil
}

func (p *parser) parseWhile() (Stmt, error) {
	p.i++ // 'while'
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return Register(p.prog, &While{Cond: cond, Body: body}), nil
}

func (p *parser) parseSync() (Stmt, error) {
	p.i++ // 'synchronized'
	if err := p.expect("("); err != nil {
		return nil, err
	}
	mon, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return Register(p.prog, &Sync{Monitor: mon, Body: body}), nil
}

func (p *parser) parseTry() (Stmt, error) {
	p.i++ // 'try'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expect("catch"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cv := p.next()
	if cv.Kind != tokIdent {
		return nil, p.errf("expected catch variable")
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	catch, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return Register(p.prog, &Try{Body: body, CatchVar: cv.Text, Catch: catch}), nil
}

// Expression precedence climbing.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOps = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpRem,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	"&&": OpLAnd, "||": OpLOr,
}

func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	// Ternary.
	if p.accept("?") {
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{C: e, T: t, F: f}, nil
	}
	return e, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.i++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: binOps[t.Text], L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	// (long)(expr) cast, as emitted by Format for Widen nodes.
	if p.atPunct("(") && p.toks[p.i+1].Kind == tokIdent && p.toks[p.i+1].Text == "long" &&
		p.toks[p.i+2].Kind == tokPunct && p.toks[p.i+2].Text == ")" {
		p.i += 3
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Widen{X: x}, nil
	}
	switch {
	case p.atPunct("-"):
		p.i++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negated literals so "-5" round-trips as a literal.
		if lit, ok := x.(*IntLit); ok {
			return &IntLit{exprBase: exprBase{Ty: lit.Ty}, V: -lit.V}, nil
		}
		return &Unary{Op: OpNeg, X: x}, nil
	case p.atPunct("!"):
		p.i++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	case p.atPunct("~"):
		p.i++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpBitNot, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("."):
			p.i++
			name := p.next()
			if name.Kind != tokIdent {
				return nil, p.errf("expected member name after '.'")
			}
			if p.atPunct("(") {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				e = p.makeCall(e, name.Text, args)
			} else {
				if vr, ok := e.(*VarRef); ok && p.classes[vr.Name] {
					e = &FieldRef{Class: vr.Name, Name: name.Text}
				} else {
					e = &FieldRef{Recv: e, Name: name.Text}
				}
			}
		case p.atPunct("["):
			p.i++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{Arr: e, Idx: idx}
		default:
			return e, nil
		}
	}
}

// makeCall builds the appropriate call node for recv.name(args),
// special-casing Integer.valueOf and x.intValue().
func (p *parser) makeCall(recv Expr, name string, args []Expr) Expr {
	if vr, ok := recv.(*VarRef); ok {
		if vr.Name == "Integer" && name == "valueOf" && len(args) == 1 {
			return &Box{X: args[0]}
		}
		if p.classes[vr.Name] {
			return &Call{Class: vr.Name, Method: name, Args: args}
		}
	}
	if name == "intValue" && len(args) == 0 {
		return &Unbox{X: recv}
	}
	return &Call{Recv: recv, Method: name, Args: args}
}

func (p *parser) parseArgs() ([]Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.atPunct(")") {
		if len(args) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.i++ // ')'
	return args, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case tokInt:
		p.i++
		return &IntLit{exprBase: exprBase{Ty: Int}, V: t.Int}, nil
	case tokLong:
		p.i++
		return &IntLit{exprBase: exprBase{Ty: Long}, V: t.Int}, nil
	case tokString:
		p.i++
		return &StrLit{exprBase: exprBase{Ty: String}, V: t.Text}, nil
	case tokIdent:
		switch t.Text {
		case "true", "false":
			p.i++
			return &BoolLit{exprBase: exprBase{Ty: Bool}, V: t.Text == "true"}, nil
		case "new":
			p.i++
			cn := p.next()
			if cn.Kind != tokIdent {
				return nil, p.errf("expected class name after new")
			}
			if cn.Text == "int" {
				if err := p.expect("["); err != nil {
					return nil, err
				}
				ln, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				return &NewArray{Len: ln}, nil
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &New{Class: cn.Text}, nil
		case "reflect_invoke":
			p.i++
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if len(args) < 3 {
				return nil, p.errf("reflect_invoke needs class, method, receiver")
			}
			cls, ok1 := args[0].(*StrLit)
			mth, ok2 := args[1].(*StrLit)
			if !ok1 || !ok2 {
				return nil, p.errf("reflect_invoke class and method must be string literals")
			}
			recv := args[2]
			if vr, ok := recv.(*VarRef); ok && vr.Name == "null" {
				recv = nil
			}
			return &ReflectCall{Class: cls.V, Method: mth.V, Recv: recv, Args: args[3:]}, nil
		case "reflect_get":
			p.i++
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if len(args) != 3 {
				return nil, p.errf("reflect_get needs class, field, receiver")
			}
			cls, ok1 := args[0].(*StrLit)
			fld, ok2 := args[1].(*StrLit)
			if !ok1 || !ok2 {
				return nil, p.errf("reflect_get class and field must be string literals")
			}
			recv := args[2]
			if vr, ok := recv.(*VarRef); ok && vr.Name == "null" {
				recv = nil
			}
			return &ReflectFieldGet{Class: cls.V, Name: fld.V, Recv: recv}, nil
		}
		p.i++
		return &VarRef{Name: t.Text}, nil
	case tokPunct:
		if t.Text == "(" {
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected token %q", t.Text)
}

// ParseExprString parses a single expression (for tests and the reducer).
func ParseExprString(src string, classNames []string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	cls := map[string]bool{}
	for _, c := range classNames {
		cls[c] = true
	}
	p := &parser{toks: toks, classes: cls, prog: &Program{}}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("lang: trailing input %q", strings.TrimSpace(src[p.peek().Pos:]))
	}
	return e, nil
}
