package generate

// State is the generator subsystem's block in the campaign checkpoint
// (version 4). Emission counts plus the current pool overlay are enough
// for a resumed process — possibly on another fleet worker — to rebuild
// the exact pool and continue emitting the same stream: generators are
// pure functions of (campaign seed, emission index).
type State struct {
	// Emitted counts lifetime emissions per generator ID. The next
	// emission from generator g draws index Emitted[g].
	Emitted map[string]int `json:"emitted"`
	// Slots is the current pool overlay: which corpus indices hold
	// generated seeds and what they contain. Recorded verbatim so resume
	// does not have to replay the refresh history.
	Slots []Slot `json:"slots,omitempty"`
	// LastRound is the highest round whose boundary refresh has run.
	LastRound int `json:"last_round"`
	// Extras pins the template-mining extras (reduced programs from the
	// triage store) captured at campaign start. The store may grow while
	// the campaign runs; resume and handoff must mine the same set.
	Extras []string `json:"extras,omitempty"`
}

// Slot is one corpus index overwritten by a generated seed.
type Slot struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Source string `json:"source"`
	Gen    string `json:"gen"`
}

// Clone deep-copies the state (checkpoint snapshots must not alias the
// live maps).
func (s *State) Clone() *State {
	if s == nil {
		return nil
	}
	c := &State{LastRound: s.LastRound}
	if s.Emitted != nil {
		c.Emitted = make(map[string]int, len(s.Emitted))
		for k, v := range s.Emitted {
			c.Emitted[k] = v
		}
	}
	c.Slots = append([]Slot(nil), s.Slots...)
	c.Extras = append([]string(nil), s.Extras...)
	return c
}
