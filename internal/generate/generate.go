// Package generate is the pluggable program-generator subsystem: the
// scenario-diversity layer ROADMAP open item 1 calls for. Campaigns no
// longer fuzz a fixed pool — between rounds they refresh corpus slots
// with seeds from deterministic generators behind one Generator
// interface:
//
//   - "randprog": the existing internal/randprog generator wrapped as
//     the baseline source. When it is the *only* configured generator
//     the subsystem is off entirely and the campaign is byte-identical
//     to the pre-generator code path (pinned by test), exactly like
//     -schedule=off and -plan-fuzz=off.
//   - "template": template extraction in the spirit of Zang et al.
//     (Java JIT testing with template extraction) — corpus seeds and
//     minimized triage findings are parsed, expression/statement sites
//     become typed holes, and hole instantiation (the mutator stack
//     plus a typed expression synthesizer) emits fresh seeds. Found
//     bugs breed new scenarios.
//   - "style:<name>": grammar-level composition styles following Zhou
//     et al. — production weights biased so the constructs chosen JIT
//     passes interact on land in the same compilation unit (see
//     internal/generate/styles).
//
// Every generator is a pure function of (campaign seed, emission
// index): resume and fleet handoff replay emission counts from the
// checkpoint (v4) and regenerate byte-identical pools.
package generate

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/generate/styles"
	"repro/internal/randprog"
)

// Generator is one deterministic seed source.
type Generator interface {
	// ID is the stable generator name ("randprog", "template",
	// "style:<name>"). It rides seeds, findings, triage reports, and
	// scheduler arms as provenance.
	ID() string
	// Generate emits n fresh seeds. seq is the number of seeds this
	// generator has already emitted in the campaign; seed k of the batch
	// is a pure function of (campaignSeed, seq+k), which is what lets a
	// resumed campaign regenerate the exact pool from emission counts
	// alone.
	Generate(campaignSeed int64, seq, n int) []corpus.Seed
}

// Baseline is the generator ID of the status-quo seed source. A
// campaign configured with only this generator runs the classic
// fixed-pool loop, byte-identical to builds without the subsystem.
const Baseline = "randprog"

// Salts decorrelating generator RNG streams from the mutation streams
// (cfg.Seed + cursor), the plan generator (0x706c616e), and the power
// schedule (0x73636864). Like the schedule tuning constants these are
// part of the deterministic campaign definition.
const (
	genSeqSalt int64 = 0x67656e73 // "gens": spreads emission indices
)

// emissionRNG builds the RNG for one seed emission. The generator ID is
// folded in so "template" and "style:x" draw decorrelated streams from
// the same (campaignSeed, seq).
func emissionRNG(id string, campaignSeed int64, seq int) *rand.Rand {
	var h int64
	for _, c := range id {
		h = h*131 + int64(c)
	}
	return rand.New(rand.NewSource((campaignSeed ^ h) + int64(seq)*genSeqSalt))
}

// Randprog wraps internal/randprog as the baseline Generator. Its
// emissions only appear when another generator is active too — alone it
// means "no refresh" (the pre-generator campaign).
type Randprog struct{}

// ID implements Generator.
func (Randprog) ID() string { return Baseline }

// Generate implements Generator.
func (Randprog) Generate(campaignSeed int64, seq, n int) []corpus.Seed {
	out := make([]corpus.Seed, 0, n)
	for k := 0; k < n; k++ {
		rng := emissionRNG(Baseline, campaignSeed, seq+k)
		out = append(out, corpus.Seed{
			Name:   fmt.Sprintf("Rnd%04d", seq+k+1),
			Source: randprog.Generate(rng),
			Gen:    Baseline,
		})
	}
	return out
}

// Config selects and parameterizes the generator set for a campaign.
type Config struct {
	// Generators lists source classes: "randprog", "template", "style".
	// "style" expands to one generator per selected style.
	Generators []string
	// Styles filters the composition styles when "style" is listed
	// (empty = every style in the registry).
	Styles []string
	// TemplateSources seeds template mining (typically the initial
	// corpus); TemplateExtras adds minimized findings from a triage
	// store. Extras are pinned into the campaign checkpoint so resume
	// and handoff mine the same template set even if the store grew.
	TemplateSources []corpus.Seed
	TemplateExtras  []string
	// StmtFillers are tried in order for statement holes before the
	// built-in synthesizer (the campaign wires the mutator stack here).
	StmtFillers []StmtFiller
}

// Normalize canonicalizes the generator list: deduplicated, validated,
// in configuration order. An empty list and a baseline-only list both
// return nil — the subsystem-off signal.
func Normalize(generators, styleNames []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, g := range generators {
		g = strings.TrimSpace(g)
		if g == "" || seen[g] {
			continue
		}
		switch g {
		case Baseline, "template", "style":
		default:
			return nil, fmt.Errorf("generate: unknown generator %q (want randprog, template, or style)", g)
		}
		seen[g] = true
		out = append(out, g)
	}
	for _, s := range styleNames {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, ok := styles.ByName(s); !ok {
			return nil, fmt.Errorf("generate: unknown style %q (known: %s)", s, strings.Join(styles.Names(), ", "))
		}
		if !seen["style"] {
			// Naming a style implies the style generator.
			seen["style"] = true
			out = append(out, "style")
		}
	}
	if len(out) == 0 || (len(out) == 1 && out[0] == Baseline) {
		return nil, nil
	}
	return out, nil
}

// Build instantiates the configured generator set in deterministic
// order. Returns nil when the configuration normalizes to
// subsystem-off.
func Build(cfg Config) ([]Generator, error) {
	names, err := Normalize(cfg.Generators, cfg.Styles)
	if err != nil {
		return nil, err
	}
	if names == nil {
		return nil, nil
	}
	var out []Generator
	for _, g := range names {
		switch g {
		case Baseline:
			out = append(out, Randprog{})
		case "template":
			tg, err := NewTemplateGenerator(cfg.TemplateSources, cfg.TemplateExtras, cfg.StmtFillers)
			if err != nil {
				return nil, err
			}
			out = append(out, tg)
		case "style":
			selected := append([]string(nil), cfg.Styles...)
			if len(selected) == 0 {
				selected = styles.Names()
			}
			sort.Strings(selected)
			for _, name := range selected {
				sp, ok := styles.ByName(name)
				if !ok {
					return nil, fmt.Errorf("generate: unknown style %q", name)
				}
				out = append(out, &StyleGenerator{Spec: sp})
			}
		}
	}
	return out, nil
}
