package generate

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/generate/styles"
)

// StyleGenerator emits programs in one composition style. Each selected
// style is its own Generator (ID "style:<name>") so the power schedule
// sees per-style arms and the recall experiment attributes detections
// per style.
type StyleGenerator struct {
	Spec styles.Spec
}

// ID implements Generator.
func (g *StyleGenerator) ID() string { return "style:" + g.Spec.Name }

// Generate implements Generator.
func (g *StyleGenerator) Generate(campaignSeed int64, seq, n int) []corpus.Seed {
	id := g.ID()
	out := make([]corpus.Seed, 0, n)
	for k := 0; k < n; k++ {
		rng := emissionRNG(id, campaignSeed, seq+k)
		out = append(out, corpus.Seed{
			Name:   fmt.Sprintf("%s%04d", g.Spec.Code, seq+k+1),
			Source: g.Spec.Generate(rng),
			Gen:    id,
		})
	}
	return out
}
