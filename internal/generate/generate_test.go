package generate

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/generate/styles"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		gens, sty []string
		want      string // comma-joined, "" = subsystem off
		wantErr   bool
	}{
		{nil, nil, "", false},
		{[]string{"randprog"}, nil, "", false},
		{[]string{"randprog", "", "randprog"}, nil, "", false},
		{[]string{"template"}, nil, "template", false},
		{[]string{"randprog", "template"}, nil, "randprog,template", false},
		{[]string{"style"}, nil, "style", false},
		// Naming a style implies the style generator.
		{nil, []string{"boxing-loop"}, "style", false},
		{[]string{"template"}, []string{"boxing-loop"}, "template,style", false},
		{[]string{"wat"}, nil, "", true},
		{nil, []string{"wat"}, "", true},
	}
	for _, tc := range cases {
		got, err := Normalize(tc.gens, tc.sty)
		if tc.wantErr != (err != nil) {
			t.Fatalf("Normalize(%v, %v): err=%v, wantErr=%v", tc.gens, tc.sty, err, tc.wantErr)
		}
		if strings.Join(got, ",") != tc.want {
			t.Fatalf("Normalize(%v, %v) = %v, want %q", tc.gens, tc.sty, got, tc.want)
		}
	}
}

func TestBuildExpandsStyles(t *testing.T) {
	gens, err := Build(Config{Generators: []string{"style"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != len(styles.All()) {
		t.Fatalf("got %d generators, want one per style (%d)", len(gens), len(styles.All()))
	}
	sty := []string{"coarsen-store", "boxing-loop"}
	gens, err = Build(Config{Styles: sty})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].ID() != "style:boxing-loop" || gens[1].ID() != "style:coarsen-store" {
		t.Fatalf("selected styles built %v", ids(gens))
	}
	if sty[0] != "coarsen-store" {
		t.Fatal("Build mutated the caller's style slice")
	}
	if _, err := Build(Config{Generators: []string{"nope"}}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if off, err := Build(Config{Generators: []string{"randprog"}}); err != nil || off != nil {
		t.Fatalf("randprog-only should normalize to subsystem-off, got %v, %v", off, err)
	}
}

func ids(gens []Generator) []string {
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.ID()
	}
	return out
}

// allGenerators builds one of everything, template mining the default
// pool plus one extra.
func allGenerators(t *testing.T) []Generator {
	t.Helper()
	gens, err := Build(Config{
		Generators:      []string{"randprog", "template", "style"},
		TemplateSources: corpus.DefaultPool(6, 11),
		TemplateExtras:  []string{corpus.MotivatingSeed, "not a program {{{"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return gens
}

// TestEmissionsDeterministic: same (campaignSeed, seq) → byte-identical
// seeds; emissions are pure functions, the property resume and fleet
// handoff rely on.
func TestEmissionsDeterministic(t *testing.T) {
	for _, g := range allGenerators(t) {
		a := g.Generate(42, 3, 4)
		b := g.Generate(42, 3, 4)
		if len(a) != 4 || len(b) != 4 {
			t.Fatalf("%s: emitted %d/%d seeds, want 4", g.ID(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: emission %d differs across identical calls", g.ID(), i)
			}
			if a[i].Gen != g.ID() {
				t.Fatalf("%s: emission carries Gen=%q", g.ID(), a[i].Gen)
			}
		}
		// A batch starting at seq+1 must reproduce the overlapping suffix:
		// Generate(seed, 3, 4)[1:] == Generate(seed, 4, 3).
		c := g.Generate(42, 4, 3)
		for i := range c {
			if c[i].Source != a[i+1].Source {
				t.Fatalf("%s: emission at seq %d not a pure function of (seed, seq)", g.ID(), 4+i)
			}
		}
	}
}

// TestEmissionsParseCheckRoundTrip: every emission parses, passes sema,
// and print→parse→print is a fixed point — the round-trip guarantee the
// campaign needs before fuzzing generated seeds (satellite: hole
// instantiation stresses print/parse paths randprog never hits).
func TestEmissionsParseCheckRoundTrip(t *testing.T) {
	for _, g := range allGenerators(t) {
		for _, s := range g.Generate(7, 0, 8) {
			p, err := s.TryParse()
			if err != nil {
				t.Fatalf("%s: emission %s does not parse: %v\n%s", g.ID(), s.Name, err, s.Source)
			}
			if err := lang.Check(p); err != nil {
				t.Fatalf("%s: emission %s fails sema: %v\n%s", g.ID(), s.Name, err, s.Source)
			}
			once := lang.Format(p)
			p2, err := lang.Parse(once)
			if err != nil {
				t.Fatalf("%s: formatted %s does not re-parse: %v\n%s", g.ID(), s.Name, err, once)
			}
			if again := lang.Format(p2); again != once {
				t.Fatalf("%s: print/parse round-trip not a fixed point for %s", g.ID(), s.Name)
			}
		}
	}
}

// TestTemplateMiningDeterministic: same sources → same templates, and
// minimized findings (extras) become templates too.
func TestTemplateMiningDeterministic(t *testing.T) {
	pool := corpus.DefaultPool(5, 3)
	extras := []string{corpus.MotivatingSeed}
	a, err := NewTemplateGenerator(pool, extras, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTemplateGenerator(pool, extras, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Templates() != b.Templates() {
		t.Fatalf("template counts differ: %d vs %d", a.Templates(), b.Templates())
	}
	if a.Templates() != len(pool)+1 {
		t.Fatalf("mined %d templates from %d sources + 1 extra", a.Templates(), len(pool))
	}
	ha, hb := a.Holes(), b.Holes()
	for name, n := range ha {
		if hb[name] != n {
			t.Fatalf("hole count for %s differs: %d vs %d", name, n, hb[name])
		}
		if n == 0 {
			t.Fatalf("template %s has no holes", name)
		}
	}
	// Unparseable extras are skipped, empty mining is an error.
	if g, err := NewTemplateGenerator(pool, []string{"garbage }{"}, nil); err != nil || g.Templates() != len(pool) {
		t.Fatalf("unparseable extra not skipped: %v", err)
	}
	if _, err := NewTemplateGenerator(nil, []string{"garbage }{"}, nil); err == nil {
		t.Fatal("empty template set accepted")
	}
}

// TestTemplateFillersRun: a statement filler wired by the caller (the
// campaign passes the mutator stack) is actually invoked and its edits
// survive when they type-check.
func TestTemplateFillersRun(t *testing.T) {
	called := 0
	g, err := NewTemplateGenerator(corpus.DefaultPool(4, 9), nil, []StmtFiller{
		func(p *lang.Program, loc *lang.Location, rng *rand.Rand) bool {
			called++
			return false // decline: built-in fallback must still produce valid programs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := g.Generate(1, 0, 10)
	if called == 0 {
		t.Fatal("statement filler never invoked across 10 emissions")
	}
	for _, s := range seeds {
		if _, err := s.TryParse(); err != nil {
			t.Fatalf("emission with declining filler invalid: %v", err)
		}
	}
}

// TestStyleTargetsObserved is the style smoke: executing each style's
// programs on the clean reference VM must light up every targeted OBV
// behavior — proof the style reaches the passes it names.
func TestStyleTargetsObserved(t *testing.T) {
	for _, sp := range styles.All() {
		g := &StyleGenerator{Spec: sp}
		var got profile.OBV
		for _, s := range g.Generate(5, 0, 6) {
			p := s.Parse()
			er, err := exec.InProcess{}.Execute(context.Background(), p, jvm.Reference(), jvm.Options{
				Flags:         profile.DefaultFlags(),
				ForceCompile:  true,
				MaxSteps:      3_000_000,
				StructuredOBV: true,
				Bugs:          []*buginject.Bug{},
			})
			if err != nil {
				t.Fatalf("style %s: %s failed: %v\n%s", sp.Name, s.Name, err, s.Source)
			}
			got = got.Add(er.OBV)
		}
		for _, b := range sp.Targets {
			if got[b] == 0 {
				t.Errorf("style %s: target behavior %s never observed (OBV %v)", sp.Name, b.String(), got)
			}
		}
	}
}
