// Package styles defines grammar-level composition styles (after Zhou
// et al., "Targeted Testing of Compiler Optimizations via Grammar-Level
// Composition Styles"): each style biases the production choices of a
// small program grammar so that the constructs a chosen set of JIT
// passes interact on are co-located in one compilation unit, instead of
// hoping random generation stumbles on the combination.
//
// A style names its target optimization behaviors; the style smoke test
// executes style-generated programs on the clean reference VM and
// asserts the OBV observes every target — a style that stops reaching
// its passes fails loudly.
package styles

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/profile"
)

// Spec is one composition style.
type Spec struct {
	// Name is the stable style identifier used in -styles= and in the
	// "style:<name>" generator ID.
	Name string
	// Code tags generated seed names (short, letters only).
	Code string
	// Desc is the one-line human description.
	Desc string
	// Targets lists the optimization behaviors the style co-locates.
	// Generated programs must light every one of them up in the OBV of a
	// profiled run (pinned by the style smoke test).
	Targets []profile.Behavior
	// weights biases the body-statement grammar: production name →
	// relative weight. Productions with weight 0 never fire; the shared
	// filler productions keep every program a plausible workload.
	weights []weighted
	// wrap post-processes the hot body: loop nesting, adjacent sync
	// regions — the structural half of the style.
	wrap func(g *gen, body string) string
}

type weighted struct {
	prod   string
	weight int
}

// All returns the style registry in canonical order.
func All() []Spec { return registry }

// Names returns the style names in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// ByName looks a style up.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

var registry = []Spec{
	{
		Name: "loopnest-sync-escape",
		Code: "Lse",
		Desc: "nested counted loops x synchronized regions on a non-escaping allocation (lock elimination x escape analysis x loop opts)",
		Targets: []profile.Behavior{
			profile.BUnroll, profile.BLockElim, profile.BEscapeNone, profile.BScalarReplace,
		},
		weights: []weighted{
			{"sync_local", 4}, {"accumulate", 2}, {"field", 1}, {"local", 1},
		},
		wrap: wrapLoopNest,
	},
	{
		Name: "inline-sync-exception",
		Code: "Ise",
		Desc: "deep call chain into a synchronized callee under a try/throw (inlining x monitor rewiring x exception paths)",
		Targets: []profile.Behavior{
			profile.BInline, profile.BInlineSync,
		},
		weights: []weighted{
			{"chain_call", 4}, {"try_throw", 3}, {"accumulate", 2}, {"local", 1},
		},
		wrap: wrapLoop,
	},
	{
		Name: "boxing-loop",
		Code: "Box",
		Desc: "autobox/unbox traffic inside counted loops (autobox elimination x loop opts)",
		Targets: []profile.Behavior{
			profile.BAutoboxElim, profile.BUnroll,
		},
		weights: []weighted{
			{"box_unbox", 4}, {"accumulate", 2}, {"local", 1},
		},
		wrap: wrapLoop,
	},
	{
		Name: "coarsen-store",
		Code: "Cst",
		Desc: "adjacent synchronized regions on one monitor with repeated stores (lock coarsening x redundant store elimination)",
		Targets: []profile.Behavior{
			profile.BLockCoarsen, profile.BRedundantStore,
		},
		weights: []weighted{
			{"sync_pair", 4}, {"store_store", 3}, {"accumulate", 1},
		},
		wrap: wrapLoop,
	},
}

// gen holds the per-program generation state.
type gen struct {
	rng  *rand.Rand
	vars []string
	n    int
}

func (g *gen) fresh(prefix string) string {
	g.n++
	return fmt.Sprintf("%s%d", prefix, g.n)
}

func (g *gen) pickVar() string { return g.vars[g.rng.Intn(len(g.vars))] }

func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return g.pickVar()
		}
		return fmt.Sprintf("%d", g.rng.Intn(63)+1)
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), ops[g.rng.Intn(len(ops))], g.intExpr(depth-1))
}

// production emits one body statement for the named production.
func (g *gen) production(b *strings.Builder, prod, indent string) {
	switch prod {
	case "sync_local":
		// Allocation that never escapes the iteration, locked and
		// scalar-replaceable: the lock-elim x escape-analysis interaction.
		fmt.Fprintf(b, "%sS o = new S();\n", indent)
		fmt.Fprintf(b, "%ssynchronized (o) {\n", indent)
		fmt.Fprintf(b, "%s  o.g = %s;\n", indent, g.intExpr(1))
		fmt.Fprintf(b, "%s  %s = %s + o.g;\n", indent, g.pickVar(), g.pickVar())
		fmt.Fprintf(b, "%s}\n", indent)
	case "sync_pair":
		// Back-to-back regions on the same monitor: the coarsening shape.
		fmt.Fprintf(b, "%ssynchronized (this) {\n", indent)
		fmt.Fprintf(b, "%s  this.g = %s;\n", indent, g.intExpr(1))
		fmt.Fprintf(b, "%s}\n", indent)
		fmt.Fprintf(b, "%ssynchronized (this) {\n", indent)
		fmt.Fprintf(b, "%s  %s = %s + this.g;\n", indent, g.pickVar(), g.pickVar())
		fmt.Fprintf(b, "%s}\n", indent)
	case "store_store":
		// Same target stored twice with no intervening read: RSE bait.
		v := g.pickVar()
		fmt.Fprintf(b, "%sthis.g = %s;\n", indent, g.intExpr(1))
		fmt.Fprintf(b, "%sthis.g = %s + 1;\n", indent, v)
	case "chain_call":
		// The sync inliner only rewires monitors when the call IS the
		// statement expression and the callee is a one-return synchronized
		// method — emit that exact shape, plus a chain call for depth.
		v := g.fresh("v")
		fmt.Fprintf(b, "%sint %s = this.locked(%s);\n", indent, v, g.intExpr(1))
		fmt.Fprintf(b, "%s%s = %s + this.c1(%s);\n", indent, g.pickVar(), g.pickVar(), v)
		g.vars = append(g.vars, v)
	case "try_throw":
		v := g.pickVar()
		fmt.Fprintf(b, "%stry {\n", indent)
		fmt.Fprintf(b, "%s  if (%s > %d) {\n", indent, v, g.rng.Intn(40)+20)
		fmt.Fprintf(b, "%s    throw %s;\n", indent, v)
		fmt.Fprintf(b, "%s  }\n", indent)
		fmt.Fprintf(b, "%s  %s = %s + 1;\n", indent, v, v)
		fmt.Fprintf(b, "%s} catch (e) {\n", indent)
		fmt.Fprintf(b, "%s  %s = e & 255;\n", indent, v)
		fmt.Fprintf(b, "%s}\n", indent)
	case "box_unbox":
		bx := g.fresh("b")
		fmt.Fprintf(b, "%sInteger %s = Integer.valueOf(%s);\n", indent, bx, g.intExpr(1))
		fmt.Fprintf(b, "%s%s = %s + %s.intValue();\n", indent, g.pickVar(), g.pickVar(), bx)
	case "field":
		fmt.Fprintf(b, "%sthis.g = %s;\n", indent, g.intExpr(1))
	case "local":
		v := g.fresh("v")
		fmt.Fprintf(b, "%sint %s = %s;\n", indent, v, g.intExpr(2))
		g.vars = append(g.vars, v)
	case "accumulate":
		fmt.Fprintf(b, "%s%s = %s %s %s;\n", indent, g.pickVar(), g.pickVar(),
			[]string{"+", "-", "^"}[g.rng.Intn(3)], g.intExpr(1))
	default:
		panic("styles: unknown production " + prod)
	}
}

// wrapLoop puts the body inside one counted loop with a literal trip
// count (the shape the loop passes recognize).
func wrapLoop(g *gen, body string) string {
	trips := []int{8, 16, 32}[g.rng.Intn(3)]
	lv := g.fresh("k")
	var b strings.Builder
	fmt.Fprintf(&b, "    for (int %s = 0; %s < %d; %s += 1) {\n", lv, lv, trips, lv)
	b.WriteString(body)
	b.WriteString("    }\n")
	return b.String()
}

// wrapLoopNest nests two counted loops around the body.
func wrapLoopNest(g *gen, body string) string {
	outer, inner := []int{4, 6, 8}[g.rng.Intn(3)], []int{8, 16}[g.rng.Intn(2)]
	ov, iv := g.fresh("k"), g.fresh("k")
	var b strings.Builder
	fmt.Fprintf(&b, "    for (int %s = 0; %s < %d; %s += 1) {\n", ov, ov, outer, ov)
	fmt.Fprintf(&b, "      for (int %s = 0; %s < %d; %s += 1) {\n", iv, iv, inner, iv)
	b.WriteString(body)
	b.WriteString("      }\n")
	b.WriteString("    }\n")
	return b.String()
}

// Generate emits one program in this style. The output is a valid
// mini-Java program whose hot method co-locates the style's constructs;
// determinism comes from the caller-provided RNG.
func (s Spec) Generate(rng *rand.Rand) string {
	g := &gen{rng: rng, vars: []string{"i", "acc"}}

	total := 0
	for _, w := range s.weights {
		total += w.weight
	}
	var body strings.Builder
	indent := "        "
	if s.wrap == nil {
		indent = "    "
	}
	nStmts := 3 + rng.Intn(3)
	for i := 0; i < nStmts; i++ {
		x := rng.Intn(total)
		for _, w := range s.weights {
			x -= w.weight
			if x < 0 {
				g.production(&body, w.prod, indent)
				break
			}
		}
	}
	hot := body.String()
	if s.wrap != nil {
		hot = s.wrap(g, hot)
	}

	trips := 1000 + rng.Intn(4)*250
	var b strings.Builder
	b.WriteString("class S {\n")
	b.WriteString("  int g;\n")
	b.WriteString("  static int sg;\n")
	b.WriteString("  static void main() {\n")
	b.WriteString("    S s = new S();\n")
	fmt.Fprintf(&b, "    s.g = %d;\n", rng.Intn(50)+1)
	b.WriteString("    long total = 0;\n")
	fmt.Fprintf(&b, "    for (int i = 0; i < %d; i += 1) {\n", trips)
	b.WriteString("      total = total + s.work(i);\n")
	b.WriteString("    }\n")
	b.WriteString("    print(total);\n")
	b.WriteString("    print(s.g);\n")
	b.WriteString("  }\n")
	b.WriteString("  int work(int i) {\n")
	b.WriteString("    int acc = i;\n")
	b.WriteString(hot)
	b.WriteString("    S.sg = S.sg + 1;\n")
	b.WriteString("    return acc;\n")
	b.WriteString("  }\n")
	b.WriteString("  synchronized int locked(int x) { return this.g + x; }\n")
	b.WriteString("  int c1(int x) { return this.c2(x) + 1; }\n")
	b.WriteString("  int c2(int x) { return this.locked(x & 15); }\n")
	b.WriteString("}\n")
	return b.String()
}
