package generate

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/lang"
)

// StmtFiller fills a statement hole at loc inside p, returning whether
// it did anything. The campaign wires the mutator stack in as fillers;
// the template generator falls back to its built-in synthesizer when
// every filler declines. A filler may leave the program ill-typed — the
// generator re-checks after every fill and reverts bad ones.
type StmtFiller func(p *lang.Program, loc *lang.Location, rng *rand.Rand) bool

// Hole slots: which site inside the anchor statement is the hole.
const (
	slotStmt = iota // the whole statement position
	slotInit        // VarDecl.Init
	slotValue       // Assign.Value
	slotCond        // If.Cond
	slotRet         // Return.E
)

// hole is one typed fill site, addressed by the anchor statement's ID
// (stable across CloneProgram).
type hole struct {
	stmtID int
	slot   int
	ty     lang.Type // required expression type; unused for slotStmt
}

// template is one mined program with its hole sites.
type template struct {
	name  string
	prog  *lang.Program // parsed, checked master copy; cloned per emission
	holes []hole
}

// TemplateGenerator mines templates from corpus seeds and minimized
// triage findings, then emits fresh seeds by re-instantiating their
// holes (Zang et al.'s template extraction, on the mini-Java AST).
type TemplateGenerator struct {
	templates []template
	fillers   []StmtFiller
}

// NewTemplateGenerator mines sources (the campaign corpus) and extras
// (reduced programs from a triage store; unparseable entries are
// skipped — a finding minimized under an older grammar must not wedge
// the campaign). It errors if nothing usable was mined.
func NewTemplateGenerator(sources []corpus.Seed, extras []string, fillers []StmtFiller) (*TemplateGenerator, error) {
	g := &TemplateGenerator{fillers: fillers}
	for _, s := range sources {
		p, err := s.TryParse()
		if err != nil {
			return nil, fmt.Errorf("generate: template source %s: %v", s.Name, err)
		}
		g.add(s.Name, p)
	}
	for i, src := range extras {
		p, err := lang.Parse(src)
		if err != nil {
			continue
		}
		g.add(fmt.Sprintf("finding%03d", i+1), p)
	}
	if len(g.templates) == 0 {
		return nil, fmt.Errorf("generate: no usable templates (need at least one parseable source with hole sites)")
	}
	return g, nil
}

func (g *TemplateGenerator) add(name string, p *lang.Program) {
	if err := lang.Check(p); err != nil {
		return
	}
	holes := extractHoles(p)
	if len(holes) == 0 {
		return
	}
	g.templates = append(g.templates, template{name: name, prog: p, holes: holes})
}

// Templates reports how many templates were mined (for -v output and
// the determinism smoke test).
func (g *TemplateGenerator) Templates() int { return len(g.templates) }

// Holes returns the mined hole sites per template, in mining order
// (name → hole count). Deterministic: same inputs, same result.
func (g *TemplateGenerator) Holes() map[string]int {
	out := make(map[string]int, len(g.templates))
	for _, t := range g.templates {
		out[t.name] = len(t.holes)
	}
	return out
}

// extractHoles walks the checked program and records typed fill sites.
// Expression holes sit where sema pins a required type regardless of
// what fills them: initializers (the declared type), assignment values
// (the target's type), if-conditions (bool), and return values (the
// method's return type). Statement holes sit at effect-statement
// positions (Assign/ExprStmt/Print), where a replacement cannot break
// scoping or control flow. Loop bounds and monitors are never holes:
// holes must not change which loops are counted or which monitors are
// legal.
func extractHoles(p *lang.Program) []hole {
	var out []hole
	for _, loc := range lang.Statements(p) {
		switch st := loc.Stmt.(type) {
		case *lang.VarDecl:
			if exprHoleType(st.Ty) {
				out = append(out, hole{stmtID: st.ID(), slot: slotInit, ty: st.Ty})
			}
		case *lang.Assign:
			ty := st.Target.ResultType()
			if exprHoleType(ty) {
				out = append(out, hole{stmtID: st.ID(), slot: slotValue, ty: ty})
			}
			out = append(out, hole{stmtID: st.ID(), slot: slotStmt})
		case *lang.If:
			out = append(out, hole{stmtID: st.ID(), slot: slotCond, ty: lang.Bool})
		case *lang.Return:
			if st.E != nil && exprHoleType(loc.Method.Ret) {
				out = append(out, hole{stmtID: st.ID(), slot: slotRet, ty: loc.Method.Ret})
			}
		case *lang.ExprStmt, *lang.Print:
			out = append(out, hole{stmtID: loc.Stmt.ID(), slot: slotStmt})
		}
	}
	return out
}

// exprHoleType limits expression holes to the types the synthesizer
// covers.
func exprHoleType(t lang.Type) bool {
	return t == lang.Int || t == lang.Long || t == lang.Bool
}

// ID implements Generator.
func (g *TemplateGenerator) ID() string { return "template" }

// Generate implements Generator.
func (g *TemplateGenerator) Generate(campaignSeed int64, seq, n int) []corpus.Seed {
	out := make([]corpus.Seed, 0, n)
	for k := 0; k < n; k++ {
		rng := emissionRNG(g.ID(), campaignSeed, seq+k)
		t := g.templates[rng.Intn(len(g.templates))]
		out = append(out, corpus.Seed{
			Name:   fmt.Sprintf("Tpl%04d", seq+k+1),
			Source: g.instantiate(t, rng),
			Gen:    g.ID(),
		})
	}
	return out
}

// instantiate clones the template, fills 1–3 holes, and formats the
// result. Every fill is validated with lang.Check and reverted if it
// broke typing, so emissions always parse and check.
func (g *TemplateGenerator) instantiate(t template, rng *rand.Rand) string {
	clone := lang.CloneProgram(t.prog)
	nFill := 1 + rng.Intn(3)
	if nFill > len(t.holes) {
		nFill = len(t.holes)
	}
	order := rng.Perm(len(t.holes))[:nFill]
	for _, hi := range order {
		h := t.holes[hi]
		loc := lang.Find(clone, h.stmtID)
		if loc == nil {
			continue // a prior statement fill consumed the anchor
		}
		before := lang.CloneProgram(clone)
		if h.slot == slotStmt {
			g.fillStmt(clone, loc, rng)
		} else {
			fillExpr(clone, loc, h, rng)
		}
		if lang.Check(clone) != nil {
			clone = before
		}
	}
	clone.SyncIDs()
	return lang.Format(clone)
}

// fillStmt runs the filler chain, then the built-in synthesizer.
func (g *TemplateGenerator) fillStmt(p *lang.Program, loc *lang.Location, rng *rand.Rand) {
	for _, f := range g.fillers {
		if f(p, loc, rng) {
			return
		}
	}
	// Built-in: overwrite the statement with a synthesized assignment to
	// an int variable in scope.
	ints := intLocals(loc)
	if len(ints) == 0 {
		return
	}
	v := ints[rng.Intn(len(ints))]
	st := lang.Register(p, &lang.Assign{Target: &lang.VarRef{Name: v}, Value: synthExpr(rng, lang.Int, ints, 2)})
	loc.Replace(st)
}

// fillExpr overwrites the hole's expression slot with a synthesized
// expression of the required type.
func fillExpr(p *lang.Program, loc *lang.Location, h hole, rng *rand.Rand) {
	e := synthExpr(rng, h.ty, intLocals(loc), 2)
	switch st := loc.Stmt.(type) {
	case *lang.VarDecl:
		st.Init = e
	case *lang.Assign:
		st.Value = e
	case *lang.If:
		st.Cond = e
	case *lang.Return:
		st.E = e
	}
}

// intLocals lists the int-typed variables visible at loc.
func intLocals(loc *lang.Location) []string {
	var out []string
	for _, pm := range loc.LocalsInScope() {
		if pm.Ty == lang.Int {
			out = append(out, pm.Name)
		}
	}
	return out
}

// synthExpr builds a well-typed expression per sema's rules: int
// expressions from in-scope variables, literals, and non-trapping
// arithmetic (no '/', '%' — a synthesized divide-by-zero would turn
// every instantiation into an exception test); bool expressions as
// comparisons; long by widening an int expression (sema inserts the
// Widen during Check).
func synthExpr(rng *rand.Rand, ty lang.Type, ints []string, depth int) lang.Expr {
	switch ty {
	case lang.Bool:
		cmps := []lang.BinOp{lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe}
		return &lang.Binary{
			Op: cmps[rng.Intn(len(cmps))],
			L:  synthExpr(rng, lang.Int, ints, depth-1),
			R:  synthExpr(rng, lang.Int, ints, depth-1),
		}
	case lang.Long:
		return synthExpr(rng, lang.Int, ints, depth)
	default:
		if depth <= 0 || rng.Intn(3) == 0 {
			if len(ints) > 0 && rng.Intn(3) > 0 {
				return &lang.VarRef{Name: ints[rng.Intn(len(ints))]}
			}
			return &lang.IntLit{V: int64(rng.Intn(127) + 1)}
		}
		ops := []lang.BinOp{lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpAnd, lang.OpOr, lang.OpXor}
		return &lang.Binary{
			Op: ops[rng.Intn(len(ops))],
			L:  synthExpr(rng, lang.Int, ints, depth-1),
			R:  synthExpr(rng, lang.Int, ints, depth-1),
		}
	}
}
