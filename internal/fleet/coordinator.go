package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/triage"
)

// errWorkerBusy marks a 409 from a worker: not a fault, just try the
// next candidate (and never retry this one — it will stay busy).
var errWorkerBusy = errors.New("fleet: worker busy")

// CoordinatorConfig tunes the fleet coordinator.
type CoordinatorConfig struct {
	// Sched is the scheduler whose queued jobs this coordinator shards.
	Sched *service.Scheduler
	// LeaseTTL bounds how long an assignment survives without a
	// heartbeat before it is forfeited and requeued (default 15s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the renewal cadence handed to workers (default
	// LeaseTTL/3).
	HeartbeatEvery time.Duration
	// DispatchAttempts bounds tries per worker per assignment RPC
	// (default 3).
	DispatchAttempts int
	// Backoff schedules dispatch retries. The zero value gets a jittered
	// default (base 100ms, max 2s, jitter 0.5) — fleet RPCs want
	// decorrelation, unlike campaign-internal retries.
	Backoff harness.Backoff
	// BreakerThreshold / BreakerCooldown tune the per-worker circuit
	// breaker (defaults: 3 failures, 30s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client issues worker RPCs; nil gets a 10s-timeout default. Tests
	// and the chaos harness inject transports here.
	Client *http.Client
	// Now is the clock seam (nil = wall clock).
	Now func() time.Time
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// remoteDone is a settled assignment, handed from the complete handler
// to the RunRemote watch loop.
type remoteDone struct {
	interrupted bool
	summary     *service.ResultSummary
	stats       triage.Stats
	err         error
}

// lease is one live assignment grant.
type lease struct {
	jobID  string
	worker string
	token  string

	mu          sync.Mutex
	expires     time.Time
	cancelAsked bool
	triageLog   []byte // latest cumulative upload
	lastExec    int    // last absolute execution count reported
	done        chan remoteDone
}

// workerState is the coordinator's view of one enrolled worker.
type workerState struct {
	id         string
	addr       string
	lastSeen   time.Time
	busy       string // job ID currently assigned, "" when idle
	breaker    *harness.Breaker
	executions int64 // cumulative executions reported across assignments
}

// Coordinator shards the scheduler's queued jobs across enrolled
// workers. It implements service.RemoteRunner; install it with
// Scheduler.SetRemote and mount its handlers next to the daemon API.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client

	mu      sync.Mutex
	workers map[string]*workerState
	leases  map[string]*lease // by job ID
	seq     int

	metrics fleetMetrics
}

// NewCoordinator builds a coordinator over the scheduler.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 3
	}
	if cfg.DispatchAttempts <= 0 {
		cfg.DispatchAttempts = 3
	}
	if cfg.Backoff == (harness.Backoff{}) {
		cfg.Backoff = harness.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Coordinator{
		cfg:     cfg,
		client:  client,
		workers: map[string]*workerState{},
		leases:  map[string]*lease{},
	}
}

// Mount registers the coordinator's fleet endpoints on the daemon mux.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /fleet/enroll", c.handleEnroll)
	mux.HandleFunc("POST /fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fleet/complete", c.handleComplete)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// ---- HTTP handlers (worker → coordinator) ----

func (c *Coordinator) handleEnroll(w http.ResponseWriter, r *http.Request) {
	var req EnrollRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if err := CheckVersion(req.Version); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Worker == "" || req.Addr == "" {
		httpErr(w, http.StatusBadRequest, errors.New("fleet: enroll needs worker and addr"))
		return
	}
	c.mu.Lock()
	ws := c.workers[req.Worker]
	if ws == nil {
		ws = &workerState{
			id: req.Worker,
			breaker: &harness.Breaker{
				Threshold: c.cfg.BreakerThreshold,
				Cooldown:  c.cfg.BreakerCooldown,
				Now:       c.cfg.Now,
				OnOpen:    c.metrics.breakerOpened,
			},
		}
		c.workers[req.Worker] = ws
		c.logf("fleet: worker %s enrolled at %s", req.Worker, req.Addr)
	}
	ws.addr = req.Addr
	ws.lastSeen = c.cfg.Now()
	c.mu.Unlock()
	c.metrics.add(&c.metrics.enrolls)
	writeWire(w, EnrollResponse{
		Version:          WireVersion,
		HeartbeatEveryMS: c.cfg.HeartbeatEvery.Milliseconds(),
		LeaseTTLMS:       c.cfg.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := decodeBody(w, r, &hb); err != nil {
		return
	}
	if err := CheckVersion(hb.Version); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	c.metrics.add(&c.metrics.heartbeats)
	c.mu.Lock()
	if ws := c.workers[hb.Worker]; ws != nil {
		ws.lastSeen = c.cfg.Now()
	}
	l := c.leases[hb.Job]
	c.mu.Unlock()
	if l == nil || l.token != hb.Lease || l.worker != hb.Worker {
		// Expired and moved on: the sender no longer owns this job.
		writeWire(w, HeartbeatResponse{Version: WireVersion, Unknown: true})
		return
	}
	l.mu.Lock()
	l.expires = c.cfg.Now().Add(c.cfg.LeaseTTL)
	cancel := l.cancelAsked
	if len(hb.TriageLog) > 0 {
		l.triageLog = hb.TriageLog
	}
	if d := hb.Executions - l.lastExec; d > 0 {
		l.lastExec = hb.Executions
		c.mu.Lock()
		if ws := c.workers[hb.Worker]; ws != nil {
			ws.executions += int64(d)
		}
		c.mu.Unlock()
	}
	l.mu.Unlock()
	if len(hb.Checkpoint) > 0 {
		c.landCheckpoint(hb.Job, hb.Checkpoint, hb.CheckpointSum)
	}
	writeWire(w, HeartbeatResponse{Version: WireVersion, Cancel: cancel})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if err := CheckVersion(req.Version); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	c.mu.Lock()
	l := c.leases[req.Job]
	c.mu.Unlock()
	if l == nil || l.token != req.Lease || l.worker != req.Worker {
		// The lease expired and the job was requeued; this straggler's
		// work is superseded. Its checkpoint must NOT land — a successor
		// may already be running from the earlier one.
		writeWire(w, CompleteResponse{Version: WireVersion, Accepted: false})
		return
	}
	if len(req.Checkpoint) > 0 {
		c.landCheckpoint(req.Job, req.Checkpoint, req.CheckpointSum)
	}
	l.mu.Lock()
	if len(req.TriageLog) > 0 {
		l.triageLog = req.TriageLog
	}
	if d := req.Executions - l.lastExec; d > 0 {
		l.lastExec = req.Executions
		c.mu.Lock()
		if ws := c.workers[req.Worker]; ws != nil {
			ws.executions += int64(d)
		}
		c.mu.Unlock()
	}
	l.mu.Unlock()
	d := remoteDone{interrupted: req.Interrupted, summary: req.Summary, stats: req.Stats}
	if req.Error != "" {
		d.err = errors.New(req.Error)
	}
	select {
	case l.done <- d:
	default: // watch loop already gone; nothing to settle
	}
	writeWire(w, CompleteResponse{Version: WireVersion, Accepted: true})
}

// landCheckpoint verifies and atomically installs an uploaded campaign
// checkpoint into the job's state directory. A checksum or decode
// failure rejects the upload and keeps the previously landed snapshot —
// resume correctness beats freshness.
func (c *Coordinator) landCheckpoint(jobID string, data []byte, sum string) {
	if Checksum(data) != sum {
		c.metrics.add(&c.metrics.handoffRejects)
		c.logf("fleet: job %s: checkpoint upload checksum mismatch, keeping previous snapshot", jobID)
		return
	}
	if _, err := harness.DecodeCheckpoint(data); err != nil {
		c.metrics.add(&c.metrics.handoffRejects)
		c.logf("fleet: job %s: checkpoint upload undecodable, keeping previous snapshot: %v", jobID, err)
		return
	}
	path := c.cfg.Sched.Store().CheckpointPath(jobID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		c.logf("fleet: job %s: write checkpoint handoff: %v", jobID, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		c.logf("fleet: job %s: install checkpoint handoff: %v", jobID, err)
		return
	}
	c.metrics.add(&c.metrics.handoffs)
}

// ---- dispatch (coordinator → worker) ----

// RunRemote implements service.RemoteRunner: assign the job to a live
// worker, then watch the lease until the worker settles it, the lease
// expires, or ctx is cancelled.
func (c *Coordinator) RunRemote(ctx context.Context, j *service.Job) service.RemoteOutcome {
	id := j.ID()
	asg := Assignment{
		Version:          WireVersion,
		Job:              id,
		Spec:             j.Spec(),
		CheckpointEvery:  c.schedCheckpointEvery(),
		ExecTimeoutMS:    c.schedExecTimeout().Milliseconds(),
		HeartbeatEveryMS: c.cfg.HeartbeatEvery.Milliseconds(),
	}
	store := c.cfg.Sched.Store()
	if store.HasCheckpoint(id) {
		data, err := os.ReadFile(store.CheckpointPath(id))
		if err != nil {
			return service.RemoteOutcome{Err: fmt.Errorf("fleet: read checkpoint for %s: %w", id, err)}
		}
		asg.Checkpoint = data
		asg.CheckpointSum = Checksum(data)
	}

	ws, l := c.assign(ctx, asg)
	if ws == nil {
		c.metrics.outcome("declined")
		return service.RemoteOutcome{Declined: true}
	}
	c.cfg.Sched.NoteRemoteStart(j, ws.id)
	return c.watch(ctx, j, ws, l)
}

// assign offers the assignment to each dispatchable worker in turn and
// returns the first acceptance. The lease is registered before the RPC
// so an eager worker's first heartbeat cannot race it.
func (c *Coordinator) assign(ctx context.Context, asg Assignment) (*workerState, *lease) {
	for _, ws := range c.dispatchable() {
		c.mu.Lock()
		c.seq++
		token := fmt.Sprintf("%s.%s.%d", asg.Job, ws.id, c.seq)
		l := &lease{
			jobID:   asg.Job,
			worker:  ws.id,
			token:   token,
			expires: c.cfg.Now().Add(c.cfg.LeaseTTL),
			done:    make(chan remoteDone, 1),
		}
		c.leases[asg.Job] = l
		ws.busy = asg.Job
		c.mu.Unlock()

		asg.Lease = token
		var resp AssignResponse
		err := c.postWire(ctx, ws, ws.addr+"/work", asg, &resp)
		accepted := err == nil && resp.Accepted
		if !accepted {
			c.dropLease(asg.Job, l)
			c.mu.Lock()
			ws.busy = ""
			c.mu.Unlock()
			switch {
			case errors.Is(err, errWorkerBusy):
				c.logf("fleet: worker %s busy, trying next", ws.id)
			case err != nil:
				c.metrics.add(&c.metrics.dispatchFailures)
				c.logf("fleet: dispatch %s to %s failed: %v", asg.Job, ws.id, err)
			default:
				c.logf("fleet: worker %s rejected %s: %s", ws.id, asg.Job, resp.Reason)
			}
			continue
		}
		c.metrics.add(&c.metrics.leasesGranted)
		c.logf("fleet: job %s leased to %s (ttl %s)", asg.Job, ws.id, c.cfg.LeaseTTL)
		return ws, l
	}
	return nil, nil
}

// watch follows one granted lease to its end.
func (c *Coordinator) watch(ctx context.Context, j *service.Job, ws *workerState, l *lease) service.RemoteOutcome {
	id := l.jobID
	release := func() {
		c.dropLease(id, l)
		c.mu.Lock()
		if ws.busy == id {
			ws.busy = ""
		}
		c.mu.Unlock()
	}
	for {
		l.mu.Lock()
		expires := l.expires
		l.mu.Unlock()
		wait := expires.Sub(c.cfg.Now())
		if wait <= 0 {
			// Lease expired: the worker is dead, hung, or partitioned. Its
			// last checkpoint handoff is already on disk; fold its partial
			// findings in and put the job back on the queue.
			release()
			ws.breaker.Failure()
			c.metrics.add(&c.metrics.leasesExpired)
			c.mergeTriage(id, l)
			c.metrics.outcome("requeued")
			c.logf("fleet: job %s lease on %s expired, requeueing", id, ws.id)
			return service.RemoteOutcome{Requeue: true, Worker: ws.id}
		}
		if poll := c.cfg.LeaseTTL / 4; wait > poll && poll > 0 {
			wait = poll
		}
		timer := time.NewTimer(wait)
		select {
		case d := <-l.done:
			timer.Stop()
			release()
			c.mergeTriage(id, l)
			out := service.RemoteOutcome{
				Interrupted: d.interrupted,
				Summary:     d.summary,
				Stats:       d.stats,
				Err:         d.err,
				Worker:      ws.id,
			}
			switch {
			case d.err != nil:
				c.metrics.outcome("failed")
			case d.interrupted:
				c.metrics.outcome("interrupted")
			default:
				c.metrics.outcome("done")
			}
			return out
		case <-ctx.Done():
			timer.Stop()
			// Cancel or drain: flag the lease so the next heartbeat tells
			// the worker to stop, then give it one TTL to settle.
			l.mu.Lock()
			l.cancelAsked = true
			l.mu.Unlock()
			grace := time.NewTimer(c.cfg.LeaseTTL)
			select {
			case d := <-l.done:
				grace.Stop()
				release()
				c.mergeTriage(id, l)
				c.metrics.outcome("interrupted")
				return service.RemoteOutcome{
					Interrupted: d.interrupted,
					Summary:     d.summary,
					Stats:       d.stats,
					Err:         d.err,
					Worker:      ws.id,
				}
			case <-grace.C:
				// Worker unreachable during shutdown; its last handoff is
				// the resume point.
				release()
				c.mergeTriage(id, l)
				c.metrics.outcome("interrupted")
				c.logf("fleet: job %s: worker %s did not settle cancel in time", id, ws.id)
				return service.RemoteOutcome{Interrupted: true, Worker: ws.id}
			}
		case <-timer.C:
			// Re-check expiry.
		}
	}
}

// mergeTriage folds the lease's last uploaded triage log into the
// job's store. Signature dedup makes overlapping logs — a dead
// worker's partial upload plus its successor's full one — idempotent.
func (c *Coordinator) mergeTriage(id string, l *lease) {
	l.mu.Lock()
	log := l.triageLog
	l.triageLog = nil
	l.mu.Unlock()
	if len(log) == 0 {
		return
	}
	added, err := c.cfg.Sched.MergeTriage(id, log)
	if err != nil {
		c.logf("fleet: job %s: merge uploaded triage log: %v", id, err)
		return
	}
	if added > 0 {
		c.logf("fleet: job %s: merged %d novel signature(s) from worker upload", id, added)
	}
}

func (c *Coordinator) dropLease(id string, l *lease) {
	c.mu.Lock()
	if c.leases[id] == l {
		delete(c.leases, id)
	}
	c.mu.Unlock()
}

// dispatchable returns live, idle workers whose breakers admit a call,
// in ID order (deterministic candidate order).
func (c *Coordinator) dispatchable() []*workerState {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*workerState
	for _, ws := range c.workers {
		if now.Sub(ws.lastSeen) > c.cfg.LeaseTTL {
			continue // not heard from: presumed dead
		}
		if ws.busy != "" {
			continue
		}
		if !ws.breaker.Allow() {
			continue
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// postWire POSTs one fleet message with harness retry and the worker's
// circuit breaker accounting.
func (c *Coordinator) postWire(ctx context.Context, ws *workerState, url string, in, out any) error {
	err := harness.Retry(ctx, harness.RetryConfig{
		Attempts: c.cfg.DispatchAttempts,
		Backoff:  c.cfg.Backoff,
		IsTransient: func(err error) bool {
			return !errors.Is(err, errWorkerBusy)
		},
		OnRetry: func(int, error) { c.metrics.add(&c.metrics.dispatchRetries) },
	}, func(ctx context.Context) error {
		return postJSON(ctx, c.client, url, in, out)
	})
	if err == nil {
		ws.breaker.Success()
	} else if !errors.Is(err, errWorkerBusy) && !errors.Is(err, context.Canceled) {
		ws.breaker.Failure()
	}
	return err
}

// schedCheckpointEvery / schedExecTimeout expose the scheduler's
// campaign knobs for assignments, so remote runs mirror local ones.
func (c *Coordinator) schedCheckpointEvery() int       { return c.cfg.Sched.CheckpointEvery() }
func (c *Coordinator) schedExecTimeout() time.Duration { return c.cfg.Sched.ExecTimeout() }

// ---- shared HTTP plumbing ----

// postJSON POSTs in as JSON and decodes the response into out. A 409
// maps to errWorkerBusy; other non-2xx statuses are transient errors.
func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return errWorkerBusy
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeBody decodes a bounded JSON request body, writing the error
// response itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(v); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("fleet: decode request: %v", err))
		return err
	}
	return nil
}

func writeWire(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
