// Package fleet scales mopfuzzd horizontally: one coordinator daemon
// owns the job lifecycle (its scheduler remains the single source of
// truth) and shards queued campaigns across worker daemons over a small
// versioned JSON protocol, mirroring the conventions of the exec wire
// (explicit version field, reject on mismatch, no silent misreads).
//
// The fault model is leases plus checkpoint handoff. A worker holds a
// time-bounded lease on its assignment and renews it by heartbeating;
// each heartbeat (and the final completion) may carry the campaign's
// latest harness checkpoint, sha256-checksummed, which the coordinator
// lands atomically in the job's own state directory. When a worker
// dies, hangs, or partitions, its lease expires and the job goes back
// on the queue — the next claim, on another worker or the local runner
// pool, resumes from that last-handed-off checkpoint, and the resumed
// campaign's ResultSummary is byte-identical to an uninterrupted run
// (the same guarantee the daemon's restart-resume tests pin). Findings
// travel as triage-log bytes and fold into the job's triage store by
// signature, so overlapping uploads from a dead worker and its
// successor cannot duplicate findings.
//
// Every RPC goes through harness.Retry with jittered backoff, and the
// coordinator keeps a harness.Breaker per worker so a flapping worker
// is cut off instead of eating every dispatch. With zero live workers
// the coordinator declines assignments and the scheduler runs jobs
// locally — fleet mode degrades to exactly the single-daemon behavior.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/service"
	"repro/internal/triage"
)

// WireVersion guards the fleet protocol. Every message carries it and
// both ends reject a mismatch: a version-skewed worker must fail
// loudly at enroll time, not corrupt a campaign mid-flight.
const WireVersion = 1

// Checksum returns the sha256 hex digest guarding checkpoint bytes in
// transit. An upload whose digest does not match is rejected and the
// previously landed checkpoint kept — a torn or tampered snapshot must
// never replace a good one.
func Checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// CheckVersion rejects a message from a version-skewed peer.
func CheckVersion(got int) error {
	if got != WireVersion {
		return fmt.Errorf("fleet: wire version %d, want %d", got, WireVersion)
	}
	return nil
}

// EnrollRequest announces (or re-announces) a worker to the
// coordinator. Enrollment is idempotent and doubles as the idle-worker
// liveness ping: a worker re-enrolls every heartbeat interval, and a
// worker not heard from within the liveness window is not dispatched
// to.
type EnrollRequest struct {
	Version int    `json:"version"`
	Worker  string `json:"worker"` // worker ID (unique per fleet)
	Addr    string `json:"addr"`   // base URL the coordinator POSTs assignments to
}

// EnrollResponse acknowledges enrollment and hands the worker the
// fleet timing contract.
type EnrollResponse struct {
	Version int `json:"version"`
	// HeartbeatEveryMS is how often the worker must heartbeat a held
	// lease (and re-enroll while idle).
	HeartbeatEveryMS int64 `json:"heartbeat_every_ms"`
	// LeaseTTLMS is the lease duration; missing heartbeats for this long
	// forfeits the assignment.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// Assignment dispatches one job to a worker (coordinator POSTs it to
// the worker's /work). It is self-contained: the spec, the resume
// checkpoint (when the job has prior progress), and the timing
// contract, so the worker holds no fleet state beyond the lease.
type Assignment struct {
	Version int    `json:"version"`
	Job     string `json:"job"`
	Lease   string `json:"lease"` // opaque token naming this grant

	Spec service.JobSpec `json:"spec"`

	// Checkpoint resumes the campaign from prior progress (nil = fresh
	// start); CheckpointSum guards it in transit.
	Checkpoint    []byte `json:"checkpoint,omitempty"`
	CheckpointSum string `json:"checkpoint_sum,omitempty"`

	// Campaign knobs the worker must mirror from the coordinator's
	// scheduler config, so a handoff between any two executors stays
	// byte-identical.
	CheckpointEvery int   `json:"checkpoint_every,omitempty"`
	ExecTimeoutMS   int64 `json:"exec_timeout_ms,omitempty"`

	HeartbeatEveryMS int64 `json:"heartbeat_every_ms"`
}

// AssignResponse is the worker's verdict on an assignment. A busy
// worker answers HTTP 409 instead; Accepted=false with a reason covers
// structural rejections (version skew, bad checkpoint sum).
type AssignResponse struct {
	Version  int    `json:"version"`
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Heartbeat renews a lease and hands off progress. The worker sends
// one after every completed seed task (deterministic, cursor-ordered)
// plus on a wall-clock tick, so even a campaign stuck inside one long
// task keeps its lease alive.
type Heartbeat struct {
	Version int    `json:"version"`
	Worker  string `json:"worker"`
	Job     string `json:"job"`
	Lease   string `json:"lease"`

	Executions int `json:"executions,omitempty"`

	// Checkpoint is the campaign's latest snapshot (optional; sum-guarded).
	Checkpoint    []byte `json:"checkpoint,omitempty"`
	CheckpointSum string `json:"checkpoint_sum,omitempty"`

	// TriageLog is the worker's cumulative findings log (findings.jsonl
	// bytes). Kept by the coordinator and merged into the job's triage
	// store if the lease is lost, so a dead worker's findings survive it.
	TriageLog []byte `json:"triage_log,omitempty"`
}

// HeartbeatResponse piggybacks control signals on the renewal.
type HeartbeatResponse struct {
	Version int `json:"version"`
	// Cancel tells the worker to stop the campaign (job DELETE or drain
	// propagating); the worker checkpoints and completes as interrupted.
	Cancel bool `json:"cancel,omitempty"`
	// Unknown means the lease is gone (expired and requeued): the worker
	// must abandon the run silently — its successor already owns the job.
	Unknown bool `json:"unknown,omitempty"`
}

// CompleteRequest settles an assignment: the final checkpoint, the full
// triage log, the worker-side triage stats, and either a result summary
// (finished), an error (failed), or Interrupted (cancelled/drained).
type CompleteRequest struct {
	Version int    `json:"version"`
	Worker  string `json:"worker"`
	Job     string `json:"job"`
	Lease   string `json:"lease"`

	Interrupted bool                   `json:"interrupted,omitempty"`
	Error       string                 `json:"error,omitempty"`
	Summary     *service.ResultSummary `json:"summary,omitempty"`
	Stats       triage.Stats           `json:"stats"`
	Executions  int                    `json:"executions,omitempty"`

	Checkpoint    []byte `json:"checkpoint,omitempty"`
	CheckpointSum string `json:"checkpoint_sum,omitempty"`
	TriageLog     []byte `json:"triage_log,omitempty"`
}

// CompleteResponse acknowledges settlement. Accepted=false means the
// lease was no longer held (the job moved on); the worker discards its
// local state either way.
type CompleteResponse struct {
	Version  int  `json:"version"`
	Accepted bool `json:"accepted"`
}
