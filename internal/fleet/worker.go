package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/triage"
)

// WorkerConfig tunes a fleet worker daemon.
type WorkerConfig struct {
	// ID uniquely names this worker in the fleet.
	ID string
	// Coordinator is the coordinator daemon's base URL.
	Coordinator string
	// Addr is the base URL the coordinator reaches this worker's /work
	// endpoint at (the advertised address).
	Addr string
	// Dir is the worker's scratch directory: per-assignment checkpoint,
	// triage store, and quarantine live under it.
	Dir string
	// Backend / MinijvmPath / ChildTimeout configure the execution
	// backend exactly like the standalone daemon flags. A job spec that
	// pins a backend overrides Backend.
	Backend      string
	MinijvmPath  string
	ChildTimeout time.Duration
	// Pool tunes the warm-child pool when Backend (or a job spec) picks
	// the pool backend; the zero value means library defaults.
	Pool exec.PoolTuning
	// RPCAttempts bounds tries per coordinator RPC (default 3).
	RPCAttempts int
	// Backoff schedules RPC retries (zero value → jittered default).
	Backoff harness.Backoff
	// Client issues coordinator RPCs; nil gets a 10s-timeout default.
	Client *http.Client
	// Now is the clock seam (nil = wall clock).
	Now func() time.Time
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// OnTask, when set, observes (jobID, tasks done) after every
	// campaign task — the chaos/test seam, mirroring service.Config.
	OnTask func(jobID string, done int)
}

// Worker is a fleet worker daemon: it enrolls with the coordinator,
// accepts one assignment at a time on /work, runs the campaign with
// per-task heartbeat handoffs, and settles it with a completion RPC.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	mu        sync.Mutex
	ctx       context.Context
	started   bool
	killed    bool
	busy      string // job ID currently running, "" when idle
	hbEvery   time.Duration
	cancelRun context.CancelFunc
	abandoned bool
	lastExecs int // latest campaign execution count, for heartbeats

	hbMu sync.Mutex // serializes heartbeat sends (per-task vs ticker)

	wg sync.WaitGroup
}

// NewWorker builds a worker daemon.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" || cfg.Coordinator == "" || cfg.Addr == "" || cfg.Dir == "" {
		return nil, errors.New("fleet: worker needs ID, Coordinator, Addr, and Dir")
	}
	if !exec.ValidBackend(cfg.Backend) {
		return nil, fmt.Errorf("fleet: unknown backend %q", cfg.Backend)
	}
	if cfg.RPCAttempts <= 0 {
		cfg.RPCAttempts = 3
	}
	if cfg.Backoff == (harness.Backoff{}) {
		cfg.Backoff = harness.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	}
	if cfg.ChildTimeout == 0 {
		cfg.ChildTimeout = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: worker scratch dir: %w", err)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Worker{cfg: cfg, client: client, hbEvery: 5 * time.Second}, nil
}

// Mount registers the worker's endpoints on its mux.
func (w *Worker) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /work", w.handleWork)
	mux.HandleFunc("GET /healthz", w.handleHealthz)
}

// Start launches the enrollment/liveness loop. Cancelling ctx drains
// the worker: the running campaign (if any) checkpoints, completes as
// interrupted, and Wait unblocks.
func (w *Worker) Start(ctx context.Context) {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.ctx = ctx
	w.mu.Unlock()
	w.wg.Add(1)
	go w.enrollLoop(ctx)
}

// Wait blocks until the enrollment loop and any running assignment
// have finished.
func (w *Worker) Wait() { w.wg.Wait() }

// Kill simulates abrupt worker death for chaos tests: the campaign is
// aborted, no completion or further heartbeat is sent, and /work stops
// accepting. From the coordinator's point of view the worker simply
// goes silent — exactly like a SIGKILL — and the lease must expire.
func (w *Worker) Kill() {
	w.mu.Lock()
	w.killed = true
	cancel := w.cancelRun
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	w.logf("worker %s: killed", w.cfg.ID)
}

func (w *Worker) isKilled() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.killed
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// enrollLoop announces the worker and keeps re-announcing every
// heartbeat interval — the idle-liveness ping the coordinator's
// dispatchable() check relies on.
func (w *Worker) enrollLoop(ctx context.Context) {
	defer w.wg.Done()
	for {
		if ctx.Err() != nil || w.isKilled() {
			return
		}
		var resp EnrollResponse
		err := w.post(ctx, "/fleet/enroll", EnrollRequest{
			Version: WireVersion,
			Worker:  w.cfg.ID,
			Addr:    w.cfg.Addr,
		}, &resp)
		interval := w.hbEvery
		if err != nil {
			w.logf("worker %s: enroll: %v", w.cfg.ID, err)
		} else if hb := time.Duration(resp.HeartbeatEveryMS) * time.Millisecond; hb > 0 {
			w.mu.Lock()
			w.hbEvery = hb
			w.mu.Unlock()
			interval = hb
		}
		t := time.NewTimer(interval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	busy := w.busy
	killed := w.killed
	w.mu.Unlock()
	if killed {
		httpErr(rw, http.StatusServiceUnavailable, errors.New("killed"))
		return
	}
	writeWire(rw, map[string]any{"status": "ok", "worker": w.cfg.ID, "busy": busy})
}

// handleWork accepts (or refuses) one assignment.
func (w *Worker) handleWork(rw http.ResponseWriter, r *http.Request) {
	var asg Assignment
	if err := decodeBody(rw, r, &asg); err != nil {
		return
	}
	if err := CheckVersion(asg.Version); err != nil {
		writeWire(rw, AssignResponse{Version: WireVersion, Reason: err.Error()})
		return
	}
	if w.isKilled() {
		httpErr(rw, http.StatusServiceUnavailable, errors.New("killed"))
		return
	}
	if len(asg.Checkpoint) > 0 && Checksum(asg.Checkpoint) != asg.CheckpointSum {
		writeWire(rw, AssignResponse{Version: WireVersion, Reason: "checkpoint checksum mismatch"})
		return
	}
	spec := asg.Spec
	if err := spec.Validate(); err != nil {
		writeWire(rw, AssignResponse{Version: WireVersion, Reason: fmt.Sprintf("spec: %v", err)})
		return
	}
	asg.Spec = spec

	w.mu.Lock()
	if w.busy != "" {
		w.mu.Unlock()
		httpErr(rw, http.StatusConflict, fmt.Errorf("busy with %s", w.busy))
		return
	}
	ctx := w.ctx
	if ctx == nil || ctx.Err() != nil {
		w.mu.Unlock()
		httpErr(rw, http.StatusServiceUnavailable, errors.New("not started or draining"))
		return
	}
	w.busy = asg.Job
	w.abandoned = false
	w.mu.Unlock()

	if err := w.stageAssignment(asg); err != nil {
		w.mu.Lock()
		w.busy = ""
		w.mu.Unlock()
		writeWire(rw, AssignResponse{Version: WireVersion, Reason: err.Error()})
		return
	}
	w.wg.Add(1)
	go w.run(ctx, asg)
	w.logf("worker %s: accepted %s (lease %s)", w.cfg.ID, asg.Job, asg.Lease)
	writeWire(rw, AssignResponse{Version: WireVersion, Accepted: true})
}

// jobDir / ckptPath / triageDir locate one assignment's scratch state.
func (w *Worker) jobDir(job string) string    { return filepath.Join(w.cfg.Dir, job) }
func (w *Worker) ckptPath(job string) string  { return filepath.Join(w.jobDir(job), "checkpoint.json") }
func (w *Worker) triageDir(job string) string { return filepath.Join(w.jobDir(job), "triage") }

// stageAssignment prepares the scratch directory, landing the resume
// checkpoint when the assignment carries one. Prior scratch state for
// the same job is discarded — the coordinator's copy is authoritative.
func (w *Worker) stageAssignment(asg Assignment) error {
	dir := w.jobDir(asg.Job)
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("reset scratch: %v", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("scratch: %v", err)
	}
	if len(asg.Checkpoint) > 0 {
		if _, err := harness.DecodeCheckpoint(asg.Checkpoint); err != nil {
			return fmt.Errorf("resume checkpoint: %v", err)
		}
		if err := os.WriteFile(w.ckptPath(asg.Job), asg.Checkpoint, 0o644); err != nil {
			return fmt.Errorf("stage checkpoint: %v", err)
		}
	}
	return nil
}

// run executes one assignment end to end on the worker.
func (w *Worker) run(ctx context.Context, asg Assignment) {
	defer w.wg.Done()
	id := asg.Job
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.cancelRun = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.cancelRun = nil
		w.busy = ""
		w.mu.Unlock()
	}()

	res, stats, runErr := w.campaign(jctx, asg)

	if w.isKilled() {
		return // dead workers tell no tales: the lease must expire
	}
	w.mu.Lock()
	abandoned := w.abandoned
	w.mu.Unlock()
	if abandoned {
		w.logf("worker %s: %s abandoned (lease superseded)", w.cfg.ID, id)
		return
	}

	req := CompleteRequest{
		Version: WireVersion,
		Worker:  w.cfg.ID,
		Job:     id,
		Lease:   asg.Lease,
		Stats:   stats,
	}
	switch {
	case runErr != nil:
		req.Error = runErr.Error()
	case res.Interrupted:
		req.Interrupted = true
	default:
		req.Summary = service.Summarize(res)
	}
	if res != nil {
		req.Executions = res.Executions
	}
	if data, err := os.ReadFile(w.ckptPath(id)); err == nil {
		req.Checkpoint = data
		req.CheckpointSum = Checksum(data)
	}
	if data, err := os.ReadFile(filepath.Join(w.triageDir(id), "findings.jsonl")); err == nil {
		req.TriageLog = data
	}
	var resp CompleteResponse
	// Completion must survive a drain: the parent ctx may already be
	// cancelled, but the coordinator still needs the final checkpoint.
	cctx, cdone := context.WithTimeout(context.Background(), 30*time.Second)
	defer cdone()
	if err := w.post(cctx, "/fleet/complete", req, &resp); err != nil {
		w.logf("worker %s: complete %s: %v", w.cfg.ID, id, err)
		return
	}
	if !resp.Accepted {
		w.logf("worker %s: %s completion superseded (lease moved on)", w.cfg.ID, id)
		return
	}
	w.logf("worker %s: completed %s (interrupted=%v err=%q)", w.cfg.ID, id, req.Interrupted, req.Error)
}

// campaign runs the assignment's campaign, mirroring the scheduler's
// local runJob so a handoff between the two stays byte-identical: the
// same JobSpec.Campaign constructor, the same harness knobs.
func (w *Worker) campaign(jctx context.Context, asg Assignment) (*core.CampaignResult, triage.Stats, error) {
	id := asg.Job
	spec := asg.Spec
	backend := spec.Backend
	if backend == "" {
		backend = w.cfg.Backend
	}
	executor, err := exec.FromFlags(backend, w.cfg.MinijvmPath, w.cfg.ChildTimeout, w.cfg.Pool)
	if err != nil {
		return nil, triage.Stats{}, err
	}
	defer exec.CloseExecutor(executor)
	tstore, err := triage.Open(w.triageDir(id))
	if err != nil {
		return nil, triage.Stats{}, err
	}
	tworker, err := triage.NewWorker(triage.WorkerConfig{
		Store:    tstore,
		Executor: executor,
		Now:      func() int64 { return w.cfg.Now().Unix() },
	})
	if err != nil {
		tstore.Close()
		return nil, triage.Stats{}, err
	}
	tworker.Start(jctx)

	w.mu.Lock()
	w.lastExecs = 0 // fresh campaign: do not leak the previous job's count
	w.mu.Unlock()
	ccfg := spec.Campaign(executor)
	// Template extras come from the local triage store, but on handoff
	// the checkpoint's pinned extras override them inside core, so two
	// workers resuming the same lease generate identical pools.
	ccfg.TemplateExtras = spec.TemplateExtras(tstore)
	ccfg.OnProgress = func(p core.Progress) {
		// Executions snapshot for heartbeats; progress callbacks run on
		// the campaign goroutine, heartbeat reads on the ticker's.
		w.mu.Lock()
		w.lastExecs = p.Executions
		w.mu.Unlock()
	}
	ccfg.OnFinding = func(f core.Finding) { tworker.Submit(f) }

	hcfg := harness.Config{
		CheckpointPath:  w.ckptPath(id),
		CheckpointEvery: asg.CheckpointEvery,
		ExecTimeout:     time.Duration(asg.ExecTimeoutMS) * time.Millisecond,
		QuarantineDir:   filepath.Join(w.jobDir(id), "quarantine"),
		MaxRetries:      2,
		Backoff:         100 * time.Millisecond,
	}
	if len(asg.Checkpoint) > 0 {
		hcfg.ResumePath = w.ckptPath(id)
	}
	hcfg.OnTask = func(done int) {
		if w.cfg.OnTask != nil {
			w.cfg.OnTask(id, done)
		}
		// Per-task heartbeat: deterministic handoff cadence in cursor
		// order, independent of wall clock.
		w.heartbeat(jctx, asg)
	}

	// Wall-clock heartbeats keep the lease alive through long tasks.
	hbStop := make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		every := time.Duration(asg.HeartbeatEveryMS) * time.Millisecond
		if every <= 0 {
			every = 5 * time.Second
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-jctx.Done():
				return
			case <-t.C:
				w.heartbeat(jctx, asg)
			}
		}
	}()

	res, runErr := core.RunCampaignContext(jctx, ccfg, hcfg)
	close(hbStop)

	if err := tworker.Close(); err != nil {
		w.logf("worker %s: %s triage flush: %v", w.cfg.ID, id, err)
	}
	stats := tworker.Stats()
	if err := tstore.Close(); err != nil {
		w.logf("worker %s: %s triage store close: %v", w.cfg.ID, id, err)
	}
	return res, stats, runErr
}

// heartbeat renews the lease, uploading the latest checkpoint and
// triage log. Send failures are logged, not retried into the campaign's
// critical path beyond the RPC retry budget — a persistently
// unreachable coordinator means the lease expires, which is the design.
func (w *Worker) heartbeat(ctx context.Context, asg Assignment) {
	if w.isKilled() || ctx.Err() != nil {
		return
	}
	w.hbMu.Lock()
	defer w.hbMu.Unlock()
	w.mu.Lock()
	execs := w.lastExecs
	w.mu.Unlock()
	hb := Heartbeat{
		Version:    WireVersion,
		Worker:     w.cfg.ID,
		Job:        asg.Job,
		Lease:      asg.Lease,
		Executions: execs,
	}
	if data, err := os.ReadFile(w.ckptPath(asg.Job)); err == nil {
		hb.Checkpoint = data
		hb.CheckpointSum = Checksum(data)
	}
	if data, err := os.ReadFile(filepath.Join(w.triageDir(asg.Job), "findings.jsonl")); err == nil {
		hb.TriageLog = data
	}
	var resp HeartbeatResponse
	if err := w.post(ctx, "/fleet/heartbeat", hb, &resp); err != nil {
		if ctx.Err() == nil {
			w.logf("worker %s: heartbeat %s: %v", w.cfg.ID, asg.Job, err)
		}
		return
	}
	switch {
	case resp.Unknown:
		w.mu.Lock()
		w.abandoned = true
		cancel := w.cancelRun
		w.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	case resp.Cancel:
		w.mu.Lock()
		cancel := w.cancelRun
		w.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// post sends one coordinator RPC with the worker's retry policy.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	return harness.Retry(ctx, harness.RetryConfig{
		Attempts: w.cfg.RPCAttempts,
		Backoff:  w.cfg.Backoff,
	}, func(ctx context.Context) error {
		return postJSON(ctx, w.client, w.cfg.Coordinator+path, in, out)
	})
}
