// Package chaos is the fleet's fault-injection harness. Its Transport
// wraps an http.RoundTripper and injects the failure modes the fleet's
// recovery behavior is pinned against: transient RPC errors, dropped
// heartbeats, corrupted checkpoint uploads. Worker death is simulated
// by fleet.Worker.Kill (in-process SIGKILL: the worker goes silent
// without completing); the CI fleet-smoke job exercises the real thing
// with an actual SIGKILL on a worker process.
//
// All rules match on URL path substrings, so one Transport can sit in
// front of a coordinator client (breaking dispatches) or a worker
// client (breaking heartbeats/completions).
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// ErrInjected is the error injected RPC failures return (wrapped), so
// tests can assert an observed failure was chaos-made.
var ErrInjected = errors.New("chaos: injected fault")

// Transport is a fault-injecting http.RoundTripper.
type Transport struct {
	// Base performs real requests (nil = http.DefaultTransport).
	Base http.RoundTripper

	mu sync.Mutex
	// failN[path] fails the next N requests whose URL path contains
	// path, returning a transport error (as if the peer was unreachable).
	failN map[string]int
	// dropPaths black-holes matching requests while set (the partition /
	// dead-peer simulation: errors, indefinitely).
	dropPaths map[string]bool
	// corruptCheckpoints flips a byte in the Checkpoint field of the
	// next N heartbeat/complete uploads, leaving the advertised checksum
	// stale — the coordinator must reject the upload.
	corruptCheckpoints int
	// counters
	injected  int
	corrupted int
}

// FailNext makes the next n requests whose path contains match fail
// with a transport error. Requests beyond n pass through.
func (t *Transport) FailNext(match string, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failN == nil {
		t.failN = map[string]int{}
	}
	t.failN[match] = n
}

// Drop starts or stops black-holing requests whose path contains match.
func (t *Transport) Drop(match string, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropPaths == nil {
		t.dropPaths = map[string]bool{}
	}
	t.dropPaths[match] = on
}

// CorruptNextCheckpoints corrupts the checkpoint payload of the next n
// uploads (heartbeats or completions) that carry one.
func (t *Transport) CorruptNextCheckpoints(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.corruptCheckpoints = n
}

// Injected returns how many requests chaos failed or dropped.
func (t *Transport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// Corrupted returns how many checkpoint uploads chaos corrupted.
func (t *Transport) Corrupted() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.corrupted
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	t.mu.Lock()
	for match, on := range t.dropPaths {
		if on && strings.Contains(path, match) {
			t.injected++
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: dropped %s", ErrInjected, path)
		}
	}
	for match, n := range t.failN {
		if n > 0 && strings.Contains(path, match) {
			t.failN[match] = n - 1
			t.injected++
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: failed %s", ErrInjected, path)
		}
	}
	corrupt := t.corruptCheckpoints > 0 &&
		(strings.Contains(path, "/fleet/heartbeat") || strings.Contains(path, "/fleet/complete"))
	t.mu.Unlock()

	if corrupt && req.Body != nil {
		body, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		if tampered, ok := tamperCheckpoint(body); ok {
			t.mu.Lock()
			t.corruptCheckpoints--
			t.corrupted++
			t.mu.Unlock()
			body = tampered
		}
		req = req.Clone(req.Context())
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// tamperCheckpoint flips one byte inside the message's Checkpoint
// payload without touching its advertised checksum, returning false
// when the message carries no checkpoint (nothing to corrupt).
func tamperCheckpoint(body []byte) ([]byte, bool) {
	// Heartbeat and CompleteRequest share the checkpoint field shape, so
	// one envelope covers both.
	var msg map[string]json.RawMessage
	if err := json.Unmarshal(body, &msg); err != nil {
		return nil, false
	}
	raw, ok := msg["checkpoint"]
	if !ok {
		return nil, false
	}
	var ckpt []byte
	if err := json.Unmarshal(raw, &ckpt); err != nil || len(ckpt) == 0 {
		return nil, false
	}
	ckpt[len(ckpt)/2] ^= 0xff
	tampered, err := json.Marshal(ckpt)
	if err != nil {
		return nil, false
	}
	msg["checkpoint"] = tampered
	out, err := json.Marshal(msg)
	if err != nil {
		return nil, false
	}
	return out, true
}

var _ http.RoundTripper = (*Transport)(nil)
