package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// fleetMetrics aggregates coordinator-side counters. The scheduler's
// RenderMetrics appends the coordinator's series to /metrics via the
// RenderMetrics hook, so one scrape covers the whole fleet.
type fleetMetrics struct {
	enrolls          int64
	leasesGranted    int64
	leasesExpired    int64
	heartbeats       int64
	handoffs         int64
	handoffRejects   int64
	dispatchRetries  int64
	dispatchFailures int64
	breakerOpens     int64

	mu       sync.Mutex
	outcomes map[string]int64 // remote job outcomes by label
}

func (m *fleetMetrics) add(counter *int64) { atomic.AddInt64(counter, 1) }

func (m *fleetMetrics) breakerOpened() { atomic.AddInt64(&m.breakerOpens, 1) }

func (m *fleetMetrics) outcome(label string) {
	m.mu.Lock()
	if m.outcomes == nil {
		m.outcomes = map[string]int64{}
	}
	m.outcomes[label]++
	m.mu.Unlock()
}

// knownOutcomes fixes the outcome series emitted even at zero, so the
// CI fleet-smoke assertions can rely on their presence.
var knownOutcomes = []string{"declined", "done", "failed", "interrupted", "requeued"}

// RenderMetrics writes the coordinator's Prometheus series. The
// receiver is the Coordinator (not fleetMetrics) because the
// worker-liveness gauges come from the registry, not the counters.
func (c *Coordinator) RenderMetrics(w io.Writer) {
	now := c.cfg.Now()
	live, dead := 0, 0
	type wexec struct {
		id    string
		execs int64
	}
	var execs []wexec
	c.mu.Lock()
	for _, ws := range c.workers {
		if now.Sub(ws.lastSeen) > c.cfg.LeaseTTL {
			dead++
		} else {
			live++
		}
		execs = append(execs, wexec{ws.id, ws.executions})
	}
	leases := len(c.leases)
	c.mu.Unlock()
	sort.Slice(execs, func(i, k int) bool { return execs[i].id < execs[k].id })

	m := &c.metrics
	fmt.Fprintln(w, "# HELP mopfuzzd_fleet_workers Enrolled workers by liveness.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_fleet_workers gauge")
	fmt.Fprintf(w, "mopfuzzd_fleet_workers{state=\"live\"} %d\n", live)
	fmt.Fprintf(w, "mopfuzzd_fleet_workers{state=\"dead\"} %d\n", dead)

	fmt.Fprintln(w, "# HELP mopfuzzd_fleet_leases Assignments currently leased to workers.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_fleet_leases gauge")
	fmt.Fprintf(w, "mopfuzzd_fleet_leases %d\n", leases)

	counter := func(name, help string, v *int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, atomic.LoadInt64(v))
	}
	counter("mopfuzzd_fleet_enrolls_total", "Worker enrollments (including liveness re-enrolls).", &m.enrolls)
	counter("mopfuzzd_fleet_leases_granted_total", "Assignments accepted by workers.", &m.leasesGranted)
	counter("mopfuzzd_fleet_leases_expired_total", "Leases forfeited to missing heartbeats.", &m.leasesExpired)
	counter("mopfuzzd_fleet_heartbeats_total", "Lease renewals received.", &m.heartbeats)
	counter("mopfuzzd_fleet_checkpoint_handoffs_total", "Checkpoint uploads verified and landed.", &m.handoffs)
	counter("mopfuzzd_fleet_checkpoint_rejects_total", "Checkpoint uploads rejected (checksum or decode failure).", &m.handoffRejects)
	counter("mopfuzzd_fleet_dispatch_retries_total", "Worker RPC attempts retried after transient failures.", &m.dispatchRetries)
	counter("mopfuzzd_fleet_dispatch_failures_total", "Assignment dispatches that exhausted retries.", &m.dispatchFailures)
	counter("mopfuzzd_fleet_breaker_open_total", "Per-worker circuit breakers tripped open.", &m.breakerOpens)

	m.mu.Lock()
	outs := map[string]int64{}
	for _, k := range knownOutcomes {
		outs[k] = m.outcomes[k]
	}
	for k, v := range m.outcomes {
		outs[k] = v
	}
	m.mu.Unlock()
	keys := make([]string, 0, len(outs))
	for k := range outs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "# HELP mopfuzzd_fleet_remote_jobs_total Remote assignment outcomes.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_fleet_remote_jobs_total counter")
	for _, k := range keys {
		fmt.Fprintf(w, "mopfuzzd_fleet_remote_jobs_total{outcome=%q} %d\n", k, outs[k])
	}

	fmt.Fprintln(w, "# HELP mopfuzzd_fleet_worker_executions_total Executions reported per worker.")
	fmt.Fprintln(w, "# TYPE mopfuzzd_fleet_worker_executions_total counter")
	for _, we := range execs {
		fmt.Fprintf(w, "mopfuzzd_fleet_worker_executions_total{worker=%q} %d\n", we.id, we.execs)
	}
}
