package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet/chaos"
	"repro/internal/harness"
	"repro/internal/service"
)

// envOpts tunes a test fleet.
type envOpts struct {
	dir          string
	workers      int
	leaseTTL     time.Duration
	hbEvery      time.Duration
	coordClient  *http.Client
	workerClient *http.Client
}

// env is one coordinator + N workers over real HTTP (httptest servers).
type env struct {
	t      *testing.T
	sched  *service.Scheduler
	coord  *Coordinator
	wrkers []*Worker
	cancel context.CancelFunc

	mu     sync.Mutex
	onTask func(workerIdx int, job string, done int)
}

func newEnv(t *testing.T, o envOpts) *env {
	t.Helper()
	if o.dir == "" {
		o.dir = t.TempDir()
	}
	if o.leaseTTL == 0 {
		o.leaseTTL = 1500 * time.Millisecond
	}
	if o.hbEvery == 0 {
		o.hbEvery = 100 * time.Millisecond
	}
	sched, err := service.NewScheduler(service.Config{Dir: o.dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{t: t, sched: sched}
	e.coord = NewCoordinator(CoordinatorConfig{
		Sched:          sched,
		LeaseTTL:       o.leaseTTL,
		HeartbeatEvery: o.hbEvery,
		Backoff:        harness.Backoff{Base: 20 * time.Millisecond},
		Client:         o.coordClient,
		Logf:           t.Logf,
	})
	mux := http.NewServeMux()
	e.coord.Mount(mux)
	coordSrv := httptest.NewServer(mux)
	t.Cleanup(coordSrv.Close)
	sched.SetRemote(e.coord)

	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel

	for i := 0; i < o.workers; i++ {
		idx := i
		wmux := http.NewServeMux()
		wsrv := httptest.NewServer(wmux)
		t.Cleanup(wsrv.Close)
		w, err := NewWorker(WorkerConfig{
			ID:          fmt.Sprintf("w%d", i+1),
			Coordinator: coordSrv.URL,
			Addr:        wsrv.URL,
			Dir:         t.TempDir(),
			Backoff:     harness.Backoff{Base: 20 * time.Millisecond},
			Client:      o.workerClient,
			Logf:        t.Logf,
			OnTask: func(job string, done int) {
				e.mu.Lock()
				f := e.onTask
				e.mu.Unlock()
				if f != nil {
					f(idx, job, done)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Mount(wmux)
		w.Start(ctx)
		e.wrkers = append(e.wrkers, w)
	}

	sched.Start(ctx)
	t.Cleanup(func() {
		cancel()
		sched.Wait()
		for _, w := range e.wrkers {
			w.Wait()
		}
	})
	return e
}

// setOnTask installs the per-task chaos hook (fires on worker campaign
// goroutines).
func (e *env) setOnTask(f func(workerIdx int, job string, done int)) {
	e.mu.Lock()
	e.onTask = f
	e.mu.Unlock()
}

// waitLive blocks until the coordinator sees n dispatchable workers.
func (e *env) waitLive(n int) {
	e.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(e.coord.dispatchable()) >= n {
			return
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("never saw %d live workers", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitView polls the job until pred holds.
func waitView(t *testing.T, s *service.Scheduler, id string, timeout time.Duration, pred func(service.JobView) bool) service.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := s.Get(id)
		if j == nil {
			t.Fatalf("job %s disappeared", id)
		}
		v := j.View()
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s after %v", id, v.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitDone(t *testing.T, s *service.Scheduler, id string, timeout time.Duration) service.JobView {
	t.Helper()
	v := waitView(t, s, id, timeout, func(v service.JobView) bool { return v.State.Terminal() })
	if v.State != service.StateDone {
		t.Fatalf("job %s ended %s (error %q), want done", id, v.State, v.Error)
	}
	return v
}

// fleetSpec has enough tasks (3 seeds) that a mid-campaign kill leaves
// real work for the successor.
func fleetSpec() service.JobSpec { return service.JobSpec{SeedCount: 3, Budget: 150, Seed: 7} }

// localBaseline runs the spec on a plain (fleet-less) scheduler and
// returns its terminal view plus the triage report signature keys.
func localBaseline(t *testing.T, spec service.JobSpec) (service.JobView, []string) {
	t.Helper()
	sched, err := service.NewScheduler(service.Config{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	j, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, sched, j.ID(), 5*time.Minute)
	keys := reportKeys(t, sched, j.ID())
	cancel()
	sched.Wait()
	return v, keys
}

// resultJSON is the byte-identity projection (no wall-clock state).
func resultJSON(t *testing.T, v service.JobView) []byte {
	t.Helper()
	if v.Result == nil {
		t.Fatal("job has no result summary")
	}
	data, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// reportKeys returns the job's deduplicated triage signature keys,
// sorted.
func reportKeys(t *testing.T, s *service.Scheduler, id string) []string {
	t.Helper()
	rep, err := s.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(rep.Entries))
	for _, e := range rep.Entries {
		keys = append(keys, e.Key)
	}
	sort.Strings(keys)
	return keys
}

func metricsText(s *service.Scheduler) string {
	var buf bytes.Buffer
	s.RenderMetrics(&buf)
	return buf.String()
}

// metricValue extracts one sample line's value from rendered metrics.
func metricValue(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return ""
}

// TestRemoteRunMatchesLocal pins the fleet's core guarantee: a job
// sharded to a worker produces the same ResultSummary bytes as a local
// run, and the same deduplicated findings.
func TestRemoteRunMatchesLocal(t *testing.T) {
	spec := fleetSpec()
	want, wantKeys := localBaseline(t, spec)

	e := newEnv(t, envOpts{workers: 1})
	e.waitLive(1)
	j, err := e.sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)
	if v.Worker != "w1" {
		t.Errorf("job ran on %q, want w1 (remote)", v.Worker)
	}
	if got, wantB := resultJSON(t, v), resultJSON(t, want); !bytes.Equal(got, wantB) {
		t.Errorf("remote result differs from local:\nremote %s\nlocal  %s", got, wantB)
	}
	if gotKeys := reportKeys(t, e.sched, j.ID()); !equalStrings(gotKeys, wantKeys) {
		t.Errorf("remote findings %v, local %v", gotKeys, wantKeys)
	}
	text := metricsText(e.sched)
	if metricValue(t, text, `mopfuzzd_fleet_remote_jobs_total{outcome="done"}`) != "1" {
		t.Errorf("remote done counter != 1:\n%s", text)
	}
}

// TestWorkerKilledMidTaskResumesOnOtherWorker is the chaos acceptance
// criterion: SIGKILL a worker mid-campaign; the lease expires, the job
// requeues, resumes on the other worker from the handed-off checkpoint,
// and finishes with byte-identical results and no duplicate findings.
func TestWorkerKilledMidTaskResumesOnOtherWorker(t *testing.T) {
	spec := fleetSpec()
	want, wantKeys := localBaseline(t, spec)

	e := newEnv(t, envOpts{workers: 2, leaseTTL: 800 * time.Millisecond, hbEvery: 60 * time.Millisecond})
	e.waitLive(2)
	var once sync.Once
	e.setOnTask(func(idx int, job string, done int) {
		// Kill the first assignee after its third task: heartbeats for
		// tasks 1-2 have already handed off a checkpoint.
		if idx == 0 && done == 3 {
			once.Do(e.wrkers[0].Kill)
		}
	})
	j, err := e.sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)

	if v.Worker != "w2" {
		t.Errorf("job finished on %q, want w2 (resumed after w1 died)", v.Worker)
	}
	if v.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", v.Requeues)
	}
	if v.Resumes < 1 {
		t.Errorf("resumes = %d, want >= 1 (checkpoint handoff restore)", v.Resumes)
	}
	if got, wantB := resultJSON(t, v), resultJSON(t, want); !bytes.Equal(got, wantB) {
		t.Errorf("resumed result differs from uninterrupted local run:\ngot  %s\nwant %s", got, wantB)
	}
	// Fleet-global dedup: the dead worker's partial upload plus the
	// successor's full log must merge to exactly the local finding set.
	if gotKeys := reportKeys(t, e.sched, j.ID()); !equalStrings(gotKeys, wantKeys) {
		t.Errorf("findings after merge %v, want %v (no dups, none lost)", gotKeys, wantKeys)
	}
	text := metricsText(e.sched)
	if metricValue(t, text, "mopfuzzd_requeues_total") == "0" {
		t.Errorf("requeue counter not incremented:\n%s", text)
	}
	if metricValue(t, text, "mopfuzzd_fleet_leases_expired_total") == "0" {
		t.Errorf("lease expiry counter not incremented:\n%s", text)
	}
}

// TestZeroWorkersFallsBackToLocal pins graceful degradation: a
// coordinator with no enrolled workers still completes jobs on the
// local runner pool.
func TestZeroWorkersFallsBackToLocal(t *testing.T) {
	spec := fleetSpec()
	e := newEnv(t, envOpts{workers: 0})
	j, err := e.sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)
	if v.Worker != "" {
		t.Errorf("worker = %q, want local run", v.Worker)
	}
	text := metricsText(e.sched)
	if metricValue(t, text, `mopfuzzd_fleet_remote_jobs_total{outcome="declined"}`) != "1" {
		t.Errorf("declined counter != 1:\n%s", text)
	}
}

// TestHeartbeatPartitionRequeues drops every heartbeat: the lease must
// expire and the job must still finish (requeued, then completed
// locally since the worker stays busy with the orphaned run).
func TestHeartbeatPartitionRequeues(t *testing.T) {
	ct := &chaos.Transport{}
	ct.Drop("/fleet/heartbeat", true)
	spec := fleetSpec()
	e := newEnv(t, envOpts{
		workers:      1,
		leaseTTL:     600 * time.Millisecond,
		hbEvery:      60 * time.Millisecond,
		workerClient: &http.Client{Transport: ct, Timeout: 10 * time.Second},
	})
	e.waitLive(1)
	j, err := e.sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)
	if v.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 (partitioned worker forfeits lease)", v.Requeues)
	}
	if ct.Injected() == 0 {
		t.Error("chaos transport never dropped a heartbeat")
	}
}

// TestCorruptCheckpointUploadRejected corrupts one checkpoint handoff
// in flight: the coordinator must reject it (checksum mismatch), keep
// the previous snapshot, and the campaign must still finish correctly.
func TestCorruptCheckpointUploadRejected(t *testing.T) {
	spec := fleetSpec()
	want, _ := localBaseline(t, spec)

	ct := &chaos.Transport{}
	ct.CorruptNextCheckpoints(1)
	e := newEnv(t, envOpts{
		workers:      1,
		workerClient: &http.Client{Transport: ct, Timeout: 10 * time.Second},
	})
	e.waitLive(1)
	j, err := e.sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)
	if ct.Corrupted() != 1 {
		t.Fatalf("chaos corrupted %d checkpoint uploads, want 1", ct.Corrupted())
	}
	text := metricsText(e.sched)
	if metricValue(t, text, "mopfuzzd_fleet_checkpoint_rejects_total") != "1" {
		t.Errorf("checkpoint reject counter != 1:\n%s", text)
	}
	if got, wantB := resultJSON(t, v), resultJSON(t, want); !bytes.Equal(got, wantB) {
		t.Errorf("result after corrupt upload differs:\ngot  %s\nwant %s", got, wantB)
	}
}

// TestTransientDispatchErrorsRetried fails the first two assignment
// RPCs: harness retry must carry the dispatch through on the third.
func TestTransientDispatchErrorsRetried(t *testing.T) {
	ct := &chaos.Transport{}
	e := newEnv(t, envOpts{
		workers:     1,
		coordClient: &http.Client{Transport: ct, Timeout: 10 * time.Second},
	})
	e.waitLive(1)
	ct.FailNext("/work", 2)
	j, err := e.sched.Submit(fleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)
	if v.Worker != "w1" {
		t.Errorf("job ran on %q, want w1 despite transient dispatch failures", v.Worker)
	}
	if ct.Injected() != 2 {
		t.Errorf("chaos injected %d failures, want 2", ct.Injected())
	}
	text := metricsText(e.sched)
	if metricValue(t, text, "mopfuzzd_fleet_dispatch_retries_total") != "2" {
		t.Errorf("dispatch retry counter != 2:\n%s", text)
	}
}

// TestBreakerCutsOffDeadWorker enrolls a worker address that refuses
// every connection: after Threshold failed dispatches its breaker must
// open, later jobs must skip the RPC entirely, and everything still
// completes locally.
func TestBreakerCutsOffDeadWorker(t *testing.T) {
	e := newEnv(t, envOpts{workers: 0})
	// Enroll a phantom worker by hand: a live registry entry whose
	// address refuses every connection (an unroutable localhost port).
	e.coord.mu.Lock()
	e.coord.workers["phantom"] = &workerState{
		id:       "phantom",
		addr:     "http://127.0.0.1:1",
		lastSeen: time.Now().Add(24 * time.Hour), // stays "live" all test
		breaker: &harness.Breaker{
			Threshold: 2,
			Cooldown:  time.Hour,
			OnOpen:    e.coord.metrics.breakerOpened,
		},
	}
	e.coord.mu.Unlock()

	spec := service.JobSpec{SeedCount: 2, Budget: 60, Seed: 3}
	for i := 0; i < 3; i++ {
		j, err := e.sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		v := waitDone(t, e.sched, j.ID(), 5*time.Minute)
		if v.Worker != "" {
			t.Errorf("job %d ran on %q, want local fallback", i, v.Worker)
		}
	}
	text := metricsText(e.sched)
	if metricValue(t, text, "mopfuzzd_fleet_breaker_open_total") != "1" {
		t.Errorf("breaker open counter != 1:\n%s", text)
	}
	if metricValue(t, text, "mopfuzzd_fleet_dispatch_failures_total") != "2" {
		t.Errorf("dispatch failures != 2 (third job must skip the open breaker):\n%s", text)
	}
}

// TestWireVersionMismatchRejected pins the versioned-protocol contract.
func TestWireVersionMismatchRejected(t *testing.T) {
	e := newEnv(t, envOpts{workers: 0})
	mux := http.NewServeMux()
	e.coord.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	body, _ := json.Marshal(EnrollRequest{Version: WireVersion + 1, Worker: "wx", Addr: "http://x"})
	resp, err := http.Post(srv.URL+"/fleet/enroll", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("version-skewed enroll: status %d, want 400", resp.StatusCode)
	}
	if len(e.coord.dispatchable()) != 0 {
		t.Error("version-skewed worker was enrolled")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPowerScheduleHandoffByteIdentical extends the chaos acceptance
// criterion to the power schedule: the v3 checkpoint hands the bandit's
// arm statistics and the current round plan to the successor worker, so
// a mid-campaign kill must still reproduce the uninterrupted local
// power run byte-for-byte.
func TestPowerScheduleHandoffByteIdentical(t *testing.T) {
	spec := fleetSpec()
	spec.Schedule = "power"
	want, wantKeys := localBaseline(t, spec)

	e := newEnv(t, envOpts{workers: 2, leaseTTL: 800 * time.Millisecond, hbEvery: 60 * time.Millisecond})
	e.waitLive(2)
	var once sync.Once
	e.setOnTask(func(idx int, job string, done int) {
		if idx == 0 && done == 3 {
			once.Do(e.wrkers[0].Kill)
		}
	})
	j, err := e.sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)

	if v.Worker != "w2" {
		t.Errorf("job finished on %q, want w2 (resumed after w1 died)", v.Worker)
	}
	if v.Resumes < 1 {
		t.Errorf("resumes = %d, want >= 1 (schedule state restored from handoff)", v.Resumes)
	}
	if got, wantB := resultJSON(t, v), resultJSON(t, want); !bytes.Equal(got, wantB) {
		t.Errorf("power result after handoff differs from uninterrupted local run:\ngot  %s\nwant %s", got, wantB)
	}
	if gotKeys := reportKeys(t, e.sched, j.ID()); !equalStrings(gotKeys, wantKeys) {
		t.Errorf("findings after power handoff %v, want %v", gotKeys, wantKeys)
	}
}

// TestGeneratorHandoffByteIdentical extends the handoff criterion to
// the generator subsystem: the v4 checkpoint carries emission counts,
// slot provenance, and the pinned template extras, so a mid-campaign
// kill with generators enabled must still reproduce the uninterrupted
// local run byte-for-byte — even though the successor worker's triage
// store saw a different history.
func TestGeneratorHandoffByteIdentical(t *testing.T) {
	spec := fleetSpec()
	spec.Schedule = "power"
	spec.Generators = []string{"randprog", "template", "style"}
	spec.Styles = []string{"boxing-loop", "coarsen-store"}
	want, wantKeys := localBaseline(t, spec)

	e := newEnv(t, envOpts{workers: 2, leaseTTL: 800 * time.Millisecond, hbEvery: 60 * time.Millisecond})
	e.waitLive(2)
	var once sync.Once
	e.setOnTask(func(idx int, job string, done int) {
		// Kill after task 6: with a 3-seed pool the first refresh (round
		// boundary 1) has happened, so the handed-off checkpoint carries
		// live generator state, not an empty block.
		if idx == 0 && done == 6 {
			once.Do(e.wrkers[0].Kill)
		}
	})
	j, err := e.sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, e.sched, j.ID(), 5*time.Minute)

	if v.Worker != "w2" {
		t.Errorf("job finished on %q, want w2 (resumed after w1 died)", v.Worker)
	}
	if v.Resumes < 1 {
		t.Errorf("resumes = %d, want >= 1 (generator state restored from handoff)", v.Resumes)
	}
	if got, wantB := resultJSON(t, v), resultJSON(t, want); !bytes.Equal(got, wantB) {
		t.Errorf("generator result after handoff differs from uninterrupted local run:\ngot  %s\nwant %s", got, wantB)
	}
	if gotKeys := reportKeys(t, e.sched, j.ID()); !equalStrings(gotKeys, wantKeys) {
		t.Errorf("findings after generator handoff %v, want %v", gotKeys, wantKeys)
	}
}
