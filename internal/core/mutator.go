// Package core implements MopFuzzer: the 13 optimization-evoking
// mutators, the profile-data-guided fuzzing loop (the paper's Algorithm
// 1), the crash and differential-testing oracles, and the campaign
// runner the evaluation harness drives.
package core

import (
	"math/rand"

	"repro/internal/lang"
)

// MP is the mutation point: a statement addressed by its program-unique
// ID, stable across program clones. Mutators update it when the paper's
// Table 1 designates a new MP_n.
type MP struct {
	ID int
}

// Locate resolves the mutation point in (a clone of) the program.
func (mp MP) Locate(p *lang.Program) *lang.Location {
	return lang.Find(p, mp.ID)
}

// Mutator is one optimization-evoking mutator. Apply transforms the
// program in place around the located mutation point and returns the
// next mutation point (usually unchanged).
type Mutator interface {
	// Name is the mutator's identifier ("LoopUnrolling-evoke", ...).
	Name() string
	// Evokes names the optimization behavior the mutator targets.
	Evokes() string
	// Applicable reports whether the mutator's condition holds at the
	// location (the "Cond" column of Table 1). Unconditional mutators
	// return true for any located statement.
	Applicable(loc *lang.Location) bool
	// Apply performs the mutation. The program has already been cloned;
	// Apply may assume exclusive ownership. It returns the new MP.
	Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error)
}

// AllMutators returns the 13 mutators in canonical order.
func AllMutators() []Mutator {
	return []Mutator{
		&LoopUnrollingEvoke{},
		&LockEliminationEvoke{},
		&LockCoarseningEvoke{},
		&InliningEvoke{},
		&DeReflectionEvoke{},
		&LoopPeelingEvoke{},
		&LoopUnswitchingEvoke{},
		&DeoptimizationEvoke{},
		&AutoboxEliminationEvoke{},
		&RedundantStoreEvoke{},
		&AlgebraicSimplificationEvoke{},
		&EscapeAnalysisEvoke{},
		&DeadCodeEliminationEvoke{},
	}
}

// MutatorNames returns the names in canonical order.
func MutatorNames() []string {
	ms := AllMutators()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name()
	}
	return out
}

// --- shared helpers ---

// copyForInsert clones the MP statement with fresh IDs, ready to be
// inserted elsewhere in the same program.
func copyForInsert(p *lang.Program, s lang.Stmt) lang.Stmt {
	c := lang.CloneStmt(s)
	lang.ReassignIDs(p, c)
	return c
}

// copyRegion clones the mutation point together with its accumulated
// synchronized nest (the outermost enclosing sync), as in the paper's
// Listing 3 where the inserted loop wraps the previously inserted
// synchronized statement. This is what makes iterated mutation compound:
// structures built by earlier iterations are replicated by later ones.
func copyRegion(p *lang.Program, loc *lang.Location) lang.Stmt {
	// Cap the copied region so iterated copying cannot double program
	// size without bound (the paper's "performance considerations").
	const regionCap = 32
	syncs := loc.EnclosingSyncs()
	for _, sy := range syncs {
		if stmtSize(sy) <= regionCap {
			return copyForInsert(p, sy)
		}
	}
	return copyForInsert(p, loc.Stmt)
}

func stmtSize(s lang.Stmt) int {
	n := 0
	lang.WalkStmts(s, func(lang.Stmt) bool { n++; return true })
	return n
}

// HotMethodKey returns the "Class.method" key of the seed's workload
// method — the largest reachable non-main method (falling back to main).
// Baseline tools pass it as the compileonly target so every tool's OBV
// is measured under the same JVM settings.
func HotMethodKey(p *lang.Program) string {
	best := ""
	bestSize := -1
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			if m.Name == "main" {
				continue
			}
			n := 0
			lang.WalkStmts(m.Body, func(lang.Stmt) bool { n++; return true })
			if n > bestSize {
				bestSize = n
				best = cl.Name + "." + m.Name
			}
		}
	}
	if best == "" {
		return p.EntryClass + ".main"
	}
	return best
}

// intVarsInScope lists int-typed variables visible at the location.
func intVarsInScope(loc *lang.Location) []string {
	var out []string
	for _, pr := range loc.LocalsInScope() {
		if pr.Ty.Kind == lang.KindInt {
			out = append(out, pr.Name)
		}
	}
	return out
}

// objectsInScope lists reference-typed variables visible at the location
// (including "this" for instance methods).
func objectsInScope(loc *lang.Location) []lang.Param {
	var out []lang.Param
	for _, pr := range loc.LocalsInScope() {
		if pr.Ty.Kind == lang.KindObject {
			out = append(out, pr)
		}
	}
	return out
}

// pickIntExpr selects a random int-typed expression inside the statement
// (excluding child statements), or nil.
func pickIntExpr(loc *lang.Location, rng *rand.Rand) *exprSlot {
	slots := intExprSlots(loc.Stmt)
	if len(slots) == 0 {
		return nil
	}
	return slots[rng.Intn(len(slots))]
}

// exprSlot is a mutable reference to an expression position.
type exprSlot struct {
	get func() lang.Expr
	set func(lang.Expr)
}

// intExprSlots enumerates the int-typed expression positions directly in
// the statement. The slots permit in-place replacement.
func intExprSlots(s lang.Stmt) []*exprSlot {
	var out []*exprSlot
	addExpr := func(get func() lang.Expr, set func(lang.Expr)) {
		e := get()
		if e != nil && e.ResultType().Kind == lang.KindInt {
			out = append(out, &exprSlot{get: get, set: set})
		}
	}
	// Top-level expression positions of the statement.
	switch n := s.(type) {
	case *lang.VarDecl:
		addExpr(func() lang.Expr { return n.Init }, func(e lang.Expr) { n.Init = e })
	case *lang.Assign:
		addExpr(func() lang.Expr { return n.Value }, func(e lang.Expr) { n.Value = e })
	case *lang.ExprStmt:
		addExpr(func() lang.Expr { return n.E }, func(e lang.Expr) { n.E = e })
	case *lang.Print:
		addExpr(func() lang.Expr { return n.E }, func(e lang.Expr) { n.E = e })
	case *lang.Return:
		addExpr(func() lang.Expr { return n.E }, func(e lang.Expr) { n.E = e })
	case *lang.If:
		// The condition is boolean; descend into binary comparisons.
		if b, ok := n.Cond.(*lang.Binary); ok {
			addExpr(func() lang.Expr { return b.L }, func(e lang.Expr) { b.L = e })
			addExpr(func() lang.Expr { return b.R }, func(e lang.Expr) { b.R = e })
		}
	case *lang.Throw:
		addExpr(func() lang.Expr { return n.E }, func(e lang.Expr) { n.E = e })
	}
	// One level deeper: operands of a top-level binary expression.
	for _, slot := range append([]*exprSlot(nil), out...) {
		if b, ok := slot.get().(*lang.Binary); ok {
			bb := b
			addExpr(func() lang.Expr { return bb.L }, func(e lang.Expr) { bb.L = e })
			addExpr(func() lang.Expr { return bb.R }, func(e lang.Expr) { bb.R = e })
		}
	}
	return out
}

// firstBinary finds a binary expression with primitive int operands
// inside the statement's expressions, with its slot.
func firstBinary(s lang.Stmt) (slot *exprSlot) {
	for _, sl := range intExprSlots(s) {
		if b, ok := sl.get().(*lang.Binary); ok && b.Op.IsArith() {
			if b.L.ResultType().Kind == lang.KindInt && b.R.ResultType().Kind == lang.KindInt {
				return sl
			}
		}
	}
	return nil
}

// containsCallOrFieldAccess reports whether the statement contains a
// direct method call or instance field read (DeReflection's condition).
func containsCallOrFieldAccess(s lang.Stmt) bool {
	found := false
	lang.WalkExprsIn(s, func(e lang.Expr) {
		switch n := e.(type) {
		case *lang.Call:
			found = true
		case *lang.FieldRef:
			if n.Recv != nil || n.Class != "" {
				found = true
			}
		}
	})
	return found
}
