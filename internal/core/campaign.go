package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/generate"
	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

// CampaignConfig drives a multi-seed fuzzing campaign. Budget is the
// total number of target executions — the deterministic stand-in for
// the paper's wall-clock budgets (24 hours, three months).
type CampaignConfig struct {
	Seeds   []corpus.Seed
	Budget  int
	Targets []jvm.Spec // fuzzing targets, cycled per seed
	Fuzz    Config     // per-seed settings (Target/Seed overwritten)
	Seed    int64
	// Workers shards seed-tasks across a worker pool. 0 or 1 runs
	// sequentially on the calling goroutine (the deterministic default);
	// N>1 executes tasks speculatively on N goroutines while a
	// cursor-ordered merge reconstructs the sequential result
	// byte-identically (see internal/core/parallel.go).
	Workers int
	// Executor selects the execution backend for every fuzzing and
	// differential run in the campaign. Nil keeps the in-process default
	// (byte-identical results, pinned by the determinism tests); a
	// subprocess executor gives each target execution its own process so
	// substrate deaths become classified harness faults.
	Executor exec.Executor
	// OnFinding, when non-nil, observes every detected finding occurrence
	// as it is merged — including repeat occurrences of bugs already in
	// Findings, which the campaign-level dedup suppresses from the result.
	// Calls happen on the campaign goroutine in cursor order (identical
	// under -workers), so a triage consumer sees a deterministic stream.
	// Findings restored from a checkpoint are not re-fired: a persistent
	// consumer already saw them in the interrupted run.
	OnFinding func(Finding)
	// SeedSchedule selects the budget-allocation policy across seeds.
	// Empty or corpus.ScheduleOff walks seeds in cursor order — the
	// pre-scheduling campaign, byte-identical by construction and pinned
	// by test. corpus.SchedulePower scores the pool (one profiling
	// dry-run per seed, not counted against Budget) and allocates round
	// slots across (seed, plan-mode) arms by decayed yield with UCB
	// exploration; the whole schedule derives deterministically from
	// Seed, so resume and fleet handoff reproduce it byte-identically.
	SeedSchedule corpus.ScheduleMode
	// ScoreCachePath, when non-empty, persists per-seed feature vectors
	// across runs (power scheduling and distillation skip dry-runs for
	// seeds already scored). Purely an accelerator; never changes
	// results.
	ScoreCachePath string
	// DistillSeeds replaces the pool with its maximally-diverse subset
	// (corpus.Distill) before fuzzing starts. Deterministic, so resumed
	// and handed-off campaigns reconstruct the same subset.
	DistillSeeds bool
	// ParseCache optionally shares a seed-parse cache with other
	// campaigns (the daemon shares one bounded cache across runners).
	// Nil keeps a campaign-local cache.
	ParseCache *corpus.ParseCache
	// OnProgress, when non-nil, observes an incremental campaign snapshot
	// after every merged task, on the campaign goroutine in cursor order
	// (identical under -workers). Long-running consumers — the service
	// daemon's job views and /metrics endpoint — read live state from
	// these instead of waiting for the final CampaignResult. State
	// restored from a checkpoint is not re-fired; the first snapshot of a
	// resumed run already carries the restored cumulative totals.
	OnProgress func(Progress)
	// Generators selects the program-generator sources that refresh the
	// seed pool between rounds (see internal/generate): "randprog" (the
	// baseline random generator), "template" (typed holes punched into
	// the campaign's own seeds plus TemplateExtras), "style" (grammar
	// composition styles targeting JIT-pass interactions). Empty — or
	// just "randprog" — leaves the subsystem off: the pool is static and
	// the campaign is byte-identical to a pre-generator build, pinned by
	// test.
	Generators []string
	// Styles restricts the "style" generator to the named composition
	// styles (empty = all registered styles). Naming a style implies the
	// style generator.
	Styles []string
	// TemplateExtras are extra program sources mined for templates beyond
	// the seed pool — the triage path feeds minimized finding reducers in
	// here. Unparseable entries are skipped. The set is pinned in the
	// checkpoint so resume mines identical templates.
	TemplateExtras []string
}

// Progress is one incremental campaign snapshot: the cumulative totals
// after merging the task at Cursor, plus the per-task observations
// (final-mutant delta, fault) that cumulative counters can't recover.
type Progress struct {
	Cursor             int // task just merged
	Executions         int // cumulative, including restored checkpoint state
	SeedsFuzzed        int
	Findings           int // deduplicated campaign findings so far
	Faults             int
	SeedErrors         int
	SkippedQuarantined int
	// PlanFindings counts the deduplicated findings so far whose oracle
	// is the plan-vs-plan differential — the live feed for the service's
	// planfuzz metrics. Always ≤ Findings; 0 when plan fuzzing is off.
	PlanFindings int
	// Delta is the just-merged task's Δ(seed OBV, final-mutant OBV);
	// HasDelta marks whether the task produced one (skipped, faulted,
	// and errored tasks do not).
	Delta    float64
	HasDelta bool
	// Fault is the fault merged by this task, when any (contained panic,
	// watchdog timeout, heap exhaustion).
	Fault *harness.Fault
	// ScheduleArms and ScheduleEnergy describe the power schedule when
	// one is active (the /metrics gauges): the arm-space size and the
	// current total live energy. Both zero with scheduling off.
	ScheduleArms   int
	ScheduleEnergy float64
	// GeneratedSeeds counts cumulative generator emissions when the
	// generator subsystem is on (the mopfuzzd_generate_seeds gauge).
	// Zero with generators off.
	GeneratedSeeds int
}

// Finding is one campaign-level bug detection.
type Finding struct {
	Bug         *buginject.Bug
	Oracle      string
	SeedName    string
	Target      jvm.Spec
	AtExecution int // cumulative executions when found (the time axis)
	Mutators    []string
	Program     *lang.Program // the triggering mutant (pre-reduction)
	// Harness carries the supervision context (fault class, retries,
	// quarantine path) when the finding came through the supervised
	// path; hs_err reports are annotated with it.
	Harness *harness.FaultContext
	// Provenance: where and how deep in the campaign the bug surfaced.
	// Cursor is the global task cursor (seed, round, target, and RNG seed
	// all derive from it), Round the corpus round, and ChainLen the
	// mutation-chain length at detection.
	Cursor   int
	Round    int
	ChainLen int
	// OBV is the final mutant's optimization-behavior vector — the
	// profile behaviors active at failure, which triage reports render as
	// the finding's OBV fingerprint.
	OBV profile.OBV
	// Divergence is the first diverging target pair for differential
	// findings (nil for crash findings).
	Divergence *jvm.Divergence
	// PlanID is the compilation plan the finding surfaced under
	// ("default" or a plan ShortID). Empty when the campaign ran without
	// plan fuzzing — the pre-plan finding shape.
	PlanID string
	// GeneratorID names the generator that emitted the seed the finding
	// surfaced on ("randprog", "template", "style:<name>"). Empty for
	// baseline-pool seeds and for campaigns without generators — the
	// pre-generator finding shape.
	GeneratorID string
}

// SeedError records a seed the fuzzer rejected (parse/shape problems),
// previously swallowed silently by the campaign loop.
type SeedError struct {
	SeedName string `json:"seed_name"`
	Round    int    `json:"round"`
	Err      string `json:"err"`
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Findings    []Finding // chronological; first occurrence per bug ID
	Executions  int
	SeedsFuzzed int
	// FinalDeltas holds Δ(seed OBV, final-mutant OBV) per fuzzed seed —
	// the Figure 3/4 distribution.
	FinalDeltas []float64
	// SeedErrors lists seeds the fuzzer could not process, per round.
	SeedErrors []SeedError
	// Faults lists harness-level failures (contained panics, wall-clock
	// hangs, heap exhaustions) — themselves crash-oracle findings, with
	// the triggering mutants quarantined on disk.
	Faults []*harness.Fault
	// SkippedQuarantined counts task runs skipped because the seed was
	// already quarantined.
	SkippedQuarantined int
	// CheckpointErrors counts checkpoint writes that failed; the
	// campaign keeps running (the next flush retries), but silent
	// persistence loss would make -resume lie, so failures are surfaced
	// here with the most recent message in LastCheckpointError.
	CheckpointErrors    int
	LastCheckpointError string
	// Interrupted marks a partial result (SIGINT/SIGTERM or context
	// cancellation); Resumed marks a run restored from a checkpoint.
	Interrupted bool
	Resumed     bool
}

// UniqueBugs returns the distinct detected bugs in detection order.
func (r *CampaignResult) UniqueBugs() []*buginject.Bug {
	var out []*buginject.Bug
	for _, f := range r.Findings {
		out = append(out, f.Bug)
	}
	return out
}

// BugIDs returns the detected bug IDs as a set.
func (r *CampaignResult) BugIDs() map[string]bool {
	out := map[string]bool{}
	for _, f := range r.Findings {
		out[f.Bug.ID] = true
	}
	return out
}

// ComponentCounts tallies detected bugs per JIT component.
func (r *CampaignResult) ComponentCounts() map[string]int {
	out := map[string]int{}
	for _, f := range r.Findings {
		out[f.Bug.Component]++
	}
	return out
}

// MedianDelta returns the median of FinalDeltas (0 when empty).
func (r *CampaignResult) MedianDelta() float64 {
	if len(r.FinalDeltas) == 0 {
		return 0
	}
	s := append([]float64(nil), r.FinalDeltas...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// PlanFindings counts findings surfaced by the plan-vs-plan oracle.
func (r *CampaignResult) PlanFindings() int {
	n := 0
	for _, f := range r.Findings {
		if f.Oracle == "plan-differential" {
			n++
		}
	}
	return n
}

// FaultCounts tallies harness faults per class.
func (r *CampaignResult) FaultCounts() map[harness.FaultClass]int {
	out := map[harness.FaultClass]int{}
	for _, f := range r.Faults {
		out[f.Class]++
	}
	return out
}

// RunCampaign fuzzes seeds sequentially (Algorithm 1 line 1) until the
// execution budget is exhausted, cycling the seed pool if needed. It
// delegates to the supervised execution engine in its zero
// configuration: sequential, deterministic, panic-contained, with no
// watchdog goroutine or persistence — so every experiment table and
// figure reproduces byte-identically.
func RunCampaign(cfg CampaignConfig) *CampaignResult {
	// The zero harness config performs no I/O, so this cannot fail.
	res, _ := RunCampaignContext(context.Background(), cfg, harness.Config{})
	return res
}

// RunCampaignContext runs a campaign under the fault-isolated harness.
// Per-seed fuzzing executes as supervised tasks: panics anywhere in the
// substrate become classified faults instead of killing the process, a
// wall-clock watchdog (hcfg.ExecTimeout) cancels hung executions, and
// pathological seeds are quarantined and skipped on later rounds. When
// hcfg.CheckpointPath is set the campaign state (executions, findings,
// per-seed mutator weights, RNG cursor, quarantine index) is
// snapshotted periodically and flushed on cancellation, and
// hcfg.ResumePath restores a snapshot so an interrupted campaign
// continues where it stopped. The per-task RNG seed is derived from
// cfg.Seed plus the global task index, so resume reproduces the exact
// random stream of an uninterrupted run.
//
// cfg.Workers > 1 shards task execution across a worker pool; the
// cursor-ordered merge keeps findings, deltas, faults, weights, and
// checkpoints byte-identical to a sequential run, and checkpoints
// always describe a merged prefix, so resume works identically under
// parallelism.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig, hcfg harness.Config) (*CampaignResult, error) {
	if len(cfg.Targets) == 0 {
		cfg.Targets = []jvm.Spec{jvm.Reference()}
	}
	res := &CampaignResult{}
	if len(cfg.Seeds) == 0 {
		return res, nil
	}
	schedMode, err := corpus.ParseScheduleMode(string(cfg.SeedSchedule))
	if err != nil {
		return nil, err
	}
	genNames, err := generate.Normalize(cfg.Generators, cfg.Styles)
	if err != nil {
		return nil, err
	}

	// Resume state decodes up front: the generator subsystem needs the
	// checkpoint's slot overlay and pinned template extras before the
	// pool is prepared, while findings/counters restore later (they need
	// the supervisor). Decoding once keeps both views consistent.
	var ck *harness.Checkpoint
	var ckSt *campaignState
	if hcfg.ResumePath != "" {
		ck, err = harness.LoadCheckpoint(hcfg.ResumePath)
		if err != nil {
			return nil, err
		}
		ckSt = &campaignState{}
		if err := json.Unmarshal(ck.State, ckSt); err != nil {
			return nil, fmt.Errorf("core: resume state: %w", err)
		}
	}

	// Corpus intelligence: scoring feeds both distillation (shrink the
	// pool to its maximally-diverse subset) and the power schedule.
	// Both are pure functions of the seed sources and cfg.Seed, so a
	// resumed or handed-off campaign reconstructs the same pool and the
	// same scheduler. Scoring dry-runs are corpus preparation, not
	// fuzzing: like triage-reduction probes, they don't count against
	// Budget.
	var sched *corpus.Scheduler
	if schedMode == corpus.SchedulePower || cfg.DistillSeeds {
		feats, err := ScoreSeeds(ctx, cfg.Seeds, cfg.Executor, cfg.ScoreCachePath)
		if err != nil {
			return nil, err
		}
		if cfg.DistillSeeds {
			keptIdx := corpus.Distill(feats, 0, 0)
			seeds := make([]corpus.Seed, 0, len(keptIdx))
			kept := make([]*corpus.Features, 0, len(keptIdx))
			for _, i := range keptIdx {
				seeds = append(seeds, cfg.Seeds[i])
				kept = append(kept, feats[i])
			}
			cfg.Seeds, feats = seeds, kept
		}
		if schedMode == corpus.SchedulePower {
			names := make([]string, len(cfg.Seeds))
			for i, s := range cfg.Seeds {
				names[i] = s.Name
			}
			sched = corpus.NewScheduler(names, corpus.DiversityScores(feats),
				corpus.PlanModesFor(cfg.Fuzz.PlanFuzz), cfg.Seed)
		}
	}

	// Generator subsystem: build the configured sources over the
	// post-distill pool, then (on resume) replay the checkpoint's slot
	// overlay so the pool matches the interrupted run exactly. Templates
	// mine the pre-overlay pool — the same sources a fresh run mined —
	// and the pinned extras come from the checkpoint, so the template
	// set is identical across resume and handoff.
	var genRT *genRuntime
	if genNames != nil {
		// Round refreshes overwrite pool slots in place; work on a copy
		// so the caller's slice is untouched.
		cfg.Seeds = append([]corpus.Seed(nil), cfg.Seeds...)
		extras := cfg.TemplateExtras
		if ckSt != nil {
			if ckSt.Generate == nil {
				return nil, fmt.Errorf("core: resume: campaign configured with generators but checkpoint has no generator state; resume with -generators=randprog")
			}
			extras = ckSt.Generate.Extras
		}
		genRT, err = newGenRuntime(cfg, extras)
		if err != nil {
			return nil, err
		}
		if ckSt != nil {
			genRT.st = ckSt.Generate.Clone()
			for _, sl := range genRT.st.Slots {
				if sl.Index < 0 || sl.Index >= len(cfg.Seeds) {
					return nil, fmt.Errorf("core: resume: generator slot index %d out of range (pool has %d seeds)", sl.Index, len(cfg.Seeds))
				}
				cfg.Seeds[sl.Index] = corpus.Seed{Name: sl.Name, Source: sl.Source, Gen: sl.Gen}
				if sched != nil {
					sched.ReplaceSeed(sl.Index, sl.Name)
				}
			}
		}
		if sched != nil {
			sched.EnableGenerators(genRT.ids())
		}
	} else if ckSt != nil && ckSt.Generate != nil {
		return nil, fmt.Errorf("core: resume: checkpoint carries generator state; resume with the same -generators configuration")
	}

	sup, err := harness.New(hcfg)
	if err != nil {
		return nil, err
	}

	seen := map[string]bool{}
	weights := map[string]map[string]float64{}
	cursor := 0 // global task index == RNG cursor
	roundProgressed := false

	if ck != nil {
		if err := restoreCampaign(ck, ckSt, sup, res, seen, weights, &cursor, &roundProgressed, sched); err != nil {
			return nil, err
		}
		res.Resumed = true
	}

	nSeeds := len(cfg.Seeds)
	lastCkptExec := res.Executions
	flush := func() {
		if hcfg.CheckpointPath == "" {
			return
		}
		// Checkpoint failures must not kill the campaign — the next
		// flush retries with fresh state — but they must not be silent
		// either: count them and keep the last message for the report.
		if err := saveCampaign(hcfg.CheckpointPath, sup, res, seen, weights, cursor, roundProgressed, sched, genRT); err != nil {
			res.CheckpointErrors++
			res.LastCheckpointError = err.Error()
		}
	}

	// Campaign-scoped hot-path caches. The parse cache makes each seed
	// parse once per campaign instead of once per round; the compile
	// cache shares compiled methods across rounds, mutants, and
	// differential targets. Both are transparent — a hit is
	// indistinguishable from a miss — so results stay byte-identical
	// (determinism tests pin this).
	if cfg.Fuzz.CompileCache == nil {
		cfg.Fuzz.CompileCache = jit.NewCache(0)
	}
	parsed := cfg.ParseCache
	if parsed == nil {
		parsed = corpus.NewParseCache()
	}

	// The campaign-level backend choice propagates to every per-seed
	// fuzzer unless the fuzz config already pins its own.
	if cfg.Executor != nil && cfg.Fuzz.Executor == nil {
		cfg.Fuzz.Executor = cfg.Executor
	}

	// mkTask builds the task at a cursor position. Everything a task
	// needs — seed, round, target, RNG seed — derives from the cursor
	// alone, which is what lets parallel workers execute tasks out of
	// order and still merge deterministically. Under the power schedule
	// the cursor resolves through the current round's slot plan (and the
	// arm's plan mode overrides PlanFuzz); the engine's round barrier
	// guarantees workers only see cursors whose round is planned.
	mkTask := func(cursor int) harness.Task {
		round, i := cursor/nSeeds, cursor%nSeeds
		seedIdx := i
		fcfg := cfg.Fuzz
		if sched != nil {
			var mode jit.PlanMode
			seedIdx, mode = sched.ArmFor(cursor)
			fcfg.PlanFuzz = mode
		}
		seed := cfg.Seeds[seedIdx]
		fcfg.Target = cfg.Targets[cursor%len(cfg.Targets)]
		fcfg.Seed = cfg.Seed + int64(cursor)
		return harness.Task{
			ID:       seed.Name,
			SeedName: seed.Name,
			Round:    round,
			Source:   seed.Source,
			Run: func(tctx context.Context) (any, error) {
				f := NewFuzzer(fcfg)
				return f.FuzzSeedContext(tctx, seed.Name, parsed.Parse(seed))
			},
		}
	}
	roundLen := 0
	if sched != nil || genRT != nil {
		// Both the schedule's slot plan and the generator pool refresh
		// are written on the campaign goroutine at round boundaries; the
		// engine's round barrier makes those writes happen-before any
		// worker reads tasks of the round.
		roundLen = nSeeds
	}
	eng := newEngine(ctx, sup, cfg.Workers, cursor, roundLen, mkTask)
	defer eng.stop()

	for {
		if res.Executions >= cfg.Budget {
			break
		}
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		round, i := cursor/nSeeds, cursor%nSeeds
		if i == 0 && round > 0 {
			if !roundProgressed {
				break // a full round made no progress: the pool is dead
			}
			roundProgressed = false
		}
		if genRT != nil && i == 0 && round > genRT.st.LastRound {
			// Round-boundary corpus refresh, before the round is planned
			// or any of its tasks dispatched. On resume the restored
			// LastRound and slot overlay already describe this round, so
			// the refresh is not replayed.
			genRT.refreshPool(round, cfg.Seeds, cfg.Seed, sched)
		}

		seedIdx := i
		if sched != nil {
			// Plan the round before the engine dispatches any of its
			// tasks (the dispatch inside eng.do only releases cursors in
			// the merge round, so the plan write happens-before every
			// worker read of it).
			sched.StartRound(round)
			seedIdx, _ = sched.ArmFor(cursor)
		}
		seed := cfg.Seeds[seedIdx]
		target := cfg.Targets[cursor%len(cfg.Targets)]
		taskKey := fmt.Sprintf("%s#r%d", seed.Name, round)

		out := eng.do(cursor)

		var taskDelta float64
		var taskHasDelta bool
		var taskFault *harness.Fault

		switch {
		case out.Skipped:
			res.SkippedQuarantined++
			if sched != nil {
				// A quarantined seed must stop winning budget: retire
				// every arm of it (energy pinned to zero).
				sched.RetireSeed(seedIdx)
				sched.Observe(cursor, 0, 0)
				if seed.Gen != "" {
					sched.ObserveGen(seed.Gen, 0, 0)
				}
			}
		case out.Fault != nil:
			res.Faults = append(res.Faults, out.Fault)
			taskFault = out.Fault
			if sched != nil {
				// The harness quarantines the faulting task under the
				// seed's name; later rounds would skip it anyway, so the
				// arm retires now.
				sched.RetireSeed(seedIdx)
				sched.Observe(cursor, 0, 0)
				if seed.Gen != "" {
					sched.ObserveGen(seed.Gen, 0, 0)
				}
			}
		case out.Err != nil:
			if ctx.Err() != nil {
				// Shutdown raced the task; leave the cursor on it so a
				// resume re-runs it instead of recording a phantom error.
				res.Interrupted = true
				flush()
				return res, nil
			}
			res.SeedErrors = append(res.SeedErrors, SeedError{SeedName: seed.Name, Round: round, Err: out.Err.Error()})
			if sched != nil {
				sched.Observe(cursor, 0, 0)
				if seed.Gen != "" {
					sched.ObserveGen(seed.Gen, 0, 0)
				}
			}
		default:
			fr := out.Value.(*FuzzResult)
			roundProgressed = true
			res.Executions += fr.Executions
			res.SeedsFuzzed++
			res.FinalDeltas = append(res.FinalDeltas, fr.FinalDelta)
			taskDelta, taskHasDelta = fr.FinalDelta, true
			if fr.Weights != nil {
				weights[taskKey] = fr.Weights
			}
			if sched != nil {
				nBugs := 0
				for _, fd := range fr.Findings {
					if fd.Bug != nil {
						nBugs++
					}
				}
				sched.Observe(cursor, fr.FinalDelta, nBugs)
				if seed.Gen != "" {
					// Credit the generator bandit arm with the same yield
					// the (seed, plan) arm earned.
					sched.ObserveGen(seed.Gen, fr.FinalDelta, nBugs)
				}
			}
			if fr.HeapExhaustions > 0 {
				taskFault = reportHeapExhaustion(sup, seed, taskKey, round, fr)
				res.Faults = append(res.Faults, taskFault)
				if sched != nil && len(fr.Records) == 0 {
					// Baseline heap exhaustion quarantines the seed
					// itself (see reportHeapExhaustion): retire its arms.
					sched.RetireSeed(seedIdx)
				}
			}
			for _, fd := range fr.Findings {
				if fd.Bug == nil {
					continue
				}
				class := harness.FaultCrash
				if fd.Oracle == "differential" || fd.Oracle == "plan-differential" {
					class = harness.FaultMiscompile
				}
				f := Finding{
					Bug:         fd.Bug,
					Oracle:      fd.Oracle,
					SeedName:    seed.Name,
					Target:      target,
					AtExecution: res.Executions,
					Mutators:    fd.Mutators,
					Program:     fr.Final,
					Harness:     &harness.FaultContext{Class: class, Retries: out.Retries},
					Cursor:      cursor,
					Round:       round,
					ChainLen:    len(fd.Mutators),
					OBV:         fr.FinalOBV,
					Divergence:  fd.Divergence,
					PlanID:      fd.PlanID,
					GeneratorID: seed.Gen,
				}
				// Every occurrence streams to the triage hook — duplicates
				// of an already-seen bug are exactly what a triage layer
				// counts — while the campaign result keeps only the first.
				if cfg.OnFinding != nil {
					cfg.OnFinding(f)
				}
				if seen[fd.Bug.ID] {
					continue
				}
				seen[fd.Bug.ID] = true
				res.Findings = append(res.Findings, f)
			}
		}
		if cfg.OnProgress != nil {
			pr := Progress{
				Cursor:             cursor,
				Executions:         res.Executions,
				SeedsFuzzed:        res.SeedsFuzzed,
				Findings:           len(res.Findings),
				PlanFindings:       res.PlanFindings(),
				Faults:             len(res.Faults),
				SeedErrors:         len(res.SeedErrors),
				SkippedQuarantined: res.SkippedQuarantined,
				Delta:              taskDelta,
				HasDelta:           taskHasDelta,
				Fault:              taskFault,
			}
			if sched != nil {
				pr.ScheduleArms = sched.ArmCount()
				pr.ScheduleEnergy = sched.TotalEnergy()
			}
			if genRT != nil {
				pr.GeneratedSeeds = genRT.generated()
			}
			cfg.OnProgress(pr)
		}
		cursor++
		if hcfg.CheckpointPath != "" &&
			(hcfg.CheckpointEvery <= 0 || res.Executions-lastCkptExec >= hcfg.CheckpointEvery) {
			flush()
			lastCkptExec = res.Executions
		}
	}
	flush()
	return res, nil
}

// reportHeapExhaustion quarantines a heap-exhaustion trigger. A seed
// whose unmutated baseline already exhausts the heap (no iteration
// records) is quarantined under its own name so future rounds skip it;
// a single pathological mutant is stored under a round-scoped key, so
// the artifact is kept but the seed stays fuzzable.
func reportHeapExhaustion(sup *harness.Supervisor, seed corpus.Seed, taskKey string, round int, fr *FuzzResult) *harness.Fault {
	id := taskKey
	if len(fr.Records) == 0 {
		id = seed.Name
	}
	src := seed.Source
	if fr.FirstHeapExhausting != nil {
		src = lang.Format(fr.FirstHeapExhausting)
	}
	return sup.Report(&harness.Fault{
		Class:    harness.FaultHeapExhausted,
		TaskID:   id,
		SeedName: seed.Name,
		Round:    round,
		Message:  fmt.Sprintf("%d execution(s) exhausted the heap-allocation budget", fr.HeapExhaustions),
		Source:   src,
	})
}

// campaignState is the campaign-owned slice of a checkpoint: everything
// needed to continue a run with byte-identical results. The schedule
// block (checkpoint v3) is present exactly when the campaign runs the
// power schedule, and the generate block (checkpoint v4) exactly when
// the generator subsystem is on, so off-mode checkpoints remain
// byte-identical to older builds.
type campaignState struct {
	TaskCursor         int                           `json:"task_cursor"`
	RoundProgressed    bool                          `json:"round_progressed"`
	Executions         int                           `json:"executions"`
	SeedsFuzzed        int                           `json:"seeds_fuzzed"`
	SkippedQuarantined int                           `json:"skipped_quarantined,omitempty"`
	FinalDeltas        []float64                     `json:"final_deltas,omitempty"`
	SeenBugs           []string                      `json:"seen_bugs,omitempty"`
	SeedErrors         []SeedError                   `json:"seed_errors,omitempty"`
	Findings           []findingSnapshot             `json:"findings,omitempty"`
	Faults             []*harness.Fault              `json:"faults,omitempty"`
	Weights            map[string]map[string]float64 `json:"weights,omitempty"`
	Schedule           *corpus.ScheduleState         `json:"schedule,omitempty"`
	Generate           *generate.State               `json:"generate,omitempty"`
}

// findingSnapshot is the JSON form of a Finding: bugs by catalog ID,
// programs as source text, both re-resolved on restore. Checkpoint
// format v2 added the provenance block (cursor, round, chain length),
// the OBV, and the divergence site; plan provenance (plan_id and the
// divergence's plan pair) is additive and omitted when empty, so
// pre-plan checkpoints round-trip byte-identically.
type findingSnapshot struct {
	BugID         string                `json:"bug_id"`
	Oracle        string                `json:"oracle"`
	SeedName      string                `json:"seed_name"`
	TargetImpl    string                `json:"target_impl"`
	TargetVersion int                   `json:"target_version"`
	AtExecution   int                   `json:"at_execution"`
	Mutators      []string              `json:"mutators,omitempty"`
	Program       string                `json:"program,omitempty"`
	Harness       *harness.FaultContext `json:"harness,omitempty"`
	Cursor        int                   `json:"cursor,omitempty"`
	Round         int                   `json:"round,omitempty"`
	ChainLen      int                   `json:"chain_len,omitempty"`
	OBV           []int64               `json:"obv,omitempty"`
	Divergence    *divergenceSnapshot   `json:"divergence,omitempty"`
	PlanID        string                `json:"plan_id,omitempty"`
	GeneratorID   string                `json:"generator_id,omitempty"`
}

// divergenceSnapshot serializes a jvm.Divergence by spec name, the same
// rendering the wire protocol and CLIs use. Plan differentials add the
// plan pair (spec differentials leave it empty).
type divergenceSnapshot struct {
	Modal         string `json:"modal"`
	Divergent     string `json:"divergent"`
	Index         int    `json:"index"`
	ModalPlan     string `json:"modal_plan,omitempty"`
	DivergentPlan string `json:"divergent_plan,omitempty"`
}

func saveCampaign(path string, sup *harness.Supervisor, res *CampaignResult,
	seen map[string]bool, weights map[string]map[string]float64, cursor int, roundProgressed bool,
	sched *corpus.Scheduler, genRT *genRuntime) error {
	st := campaignState{
		TaskCursor:         cursor,
		RoundProgressed:    roundProgressed,
		Executions:         res.Executions,
		SeedsFuzzed:        res.SeedsFuzzed,
		SkippedQuarantined: res.SkippedQuarantined,
		FinalDeltas:        res.FinalDeltas,
		SeedErrors:         res.SeedErrors,
		Faults:             res.Faults,
		Weights:            weights,
		Schedule:           sched.State(),
		Generate:           genRT.state(),
	}
	for id := range seen {
		st.SeenBugs = append(st.SeenBugs, id)
	}
	sort.Strings(st.SeenBugs)
	for _, f := range res.Findings {
		fs := findingSnapshot{
			BugID:         f.Bug.ID,
			Oracle:        f.Oracle,
			SeedName:      f.SeedName,
			TargetImpl:    string(f.Target.Impl),
			TargetVersion: f.Target.Version,
			AtExecution:   f.AtExecution,
			Mutators:      f.Mutators,
			Harness:       f.Harness,
			Cursor:        f.Cursor,
			Round:         f.Round,
			ChainLen:      f.ChainLen,
			PlanID:        f.PlanID,
			GeneratorID:   f.GeneratorID,
		}
		if f.OBV.Total() > 0 {
			fs.OBV = f.OBV.Slice()
		}
		if f.Divergence != nil {
			fs.Divergence = &divergenceSnapshot{
				Modal:         f.Divergence.Modal.Name(),
				Divergent:     f.Divergence.Divergent.Name(),
				Index:         f.Divergence.Index,
				ModalPlan:     f.Divergence.ModalPlan,
				DivergentPlan: f.Divergence.DivergentPlan,
			}
		}
		if f.Program != nil {
			fs.Program = lang.Format(f.Program)
		}
		st.Findings = append(st.Findings, fs)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	ck := &harness.Checkpoint{
		TaskCursor:  cursor,
		Executions:  res.Executions,
		Quarantined: sup.Q.IDs(),
		State:       raw,
	}
	if st.Generate != nil {
		// Generator-bearing snapshots stamp v4; schedule-only ones v3;
		// plain ones keep v2 so off-mode checkpoints stay byte-identical.
		ck.Version = harness.CheckpointVersionGenerate
	} else if st.Schedule != nil {
		ck.Version = harness.CheckpointVersionScheduled
	}
	return ck.Save(path)
}

func restoreCampaign(ck *harness.Checkpoint, stp *campaignState, sup *harness.Supervisor, res *CampaignResult,
	seen map[string]bool, weights map[string]map[string]float64, cursor *int, roundProgressed *bool,
	sched *corpus.Scheduler) error {
	st := *stp
	if st.Schedule != nil && sched == nil {
		return fmt.Errorf("core: resume: checkpoint carries power-schedule state; resume with the schedule set to power")
	}
	if sched != nil {
		// A nil block under power means the interrupted run stopped
		// before planning its first round — a fresh scheduler continues
		// it byte-identically.
		if err := sched.Restore(st.Schedule); err != nil {
			return fmt.Errorf("core: resume: %w", err)
		}
	}
	*cursor = st.TaskCursor
	*roundProgressed = st.RoundProgressed
	res.Executions = st.Executions
	res.SeedsFuzzed = st.SeedsFuzzed
	res.SkippedQuarantined = st.SkippedQuarantined
	res.FinalDeltas = st.FinalDeltas
	res.SeedErrors = st.SeedErrors
	res.Faults = st.Faults
	for _, id := range st.SeenBugs {
		seen[id] = true
	}
	for k, w := range st.Weights {
		weights[k] = w
	}
	for _, fs := range st.Findings {
		bug := buginject.ByID(fs.BugID)
		if bug == nil {
			return fmt.Errorf("core: resume: unknown bug %s in checkpoint", fs.BugID)
		}
		f := Finding{
			Bug:         bug,
			Oracle:      fs.Oracle,
			SeedName:    fs.SeedName,
			Target:      jvm.Spec{Impl: buginject.Impl(fs.TargetImpl), Version: fs.TargetVersion},
			AtExecution: fs.AtExecution,
			Mutators:    fs.Mutators,
			Harness:     fs.Harness,
			Cursor:      fs.Cursor,
			Round:       fs.Round,
			ChainLen:    fs.ChainLen,
			PlanID:      fs.PlanID,
			GeneratorID: fs.GeneratorID,
		}
		if fs.OBV != nil {
			obv, err := profile.OBVFromSlice(fs.OBV)
			if err != nil {
				return fmt.Errorf("core: resume: finding %s OBV: %w", fs.BugID, err)
			}
			f.OBV = obv
		}
		if fs.Divergence != nil {
			modal, err := jvm.ParseSpec(fs.Divergence.Modal)
			if err != nil {
				return fmt.Errorf("core: resume: finding %s divergence: %w", fs.BugID, err)
			}
			divergent, err := jvm.ParseSpec(fs.Divergence.Divergent)
			if err != nil {
				return fmt.Errorf("core: resume: finding %s divergence: %w", fs.BugID, err)
			}
			f.Divergence = &jvm.Divergence{
				Modal: modal, Divergent: divergent, Index: fs.Divergence.Index,
				ModalPlan: fs.Divergence.ModalPlan, DivergentPlan: fs.Divergence.DivergentPlan,
			}
		}
		if fs.Program != "" {
			p, err := lang.Parse(fs.Program)
			if err != nil {
				// The snapshotted program no longer parses (corrupt
				// checkpoint, grammar drift). The finding itself is still
				// valid — restore it without the program, but say so
				// instead of silently dropping the reproducer.
				res.SeedErrors = append(res.SeedErrors, SeedError{
					SeedName: fs.SeedName,
					Round:    -1, // resume-time, not a fuzzing round
					Err:      fmt.Sprintf("resume: snapshotted program for finding %s did not re-parse: %v", fs.BugID, err),
				})
			} else {
				f.Program = p
			}
		}
		res.Findings = append(res.Findings, f)
	}
	// Re-arm skip semantics for quarantined IDs whose artifacts are not
	// on disk (memory-only quarantine in the interrupted run).
	for _, id := range ck.Quarantined {
		if !sup.Q.Has(id) {
			sup.Report(&harness.Fault{
				Class:   harness.FaultHarness,
				TaskID:  id,
				Message: "quarantined in a previous run (artifact not persisted)",
			})
		}
	}
	return nil
}
