package core

import (
	"sort"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// CampaignConfig drives a multi-seed fuzzing campaign. Budget is the
// total number of target executions — the deterministic stand-in for
// the paper's wall-clock budgets (24 hours, three months).
type CampaignConfig struct {
	Seeds   []corpus.Seed
	Budget  int
	Targets []jvm.Spec // fuzzing targets, cycled per seed
	Fuzz    Config     // per-seed settings (Target/Seed overwritten)
	Seed    int64
}

// Finding is one campaign-level bug detection.
type Finding struct {
	Bug         *buginject.Bug
	Oracle      string
	SeedName    string
	Target      jvm.Spec
	AtExecution int // cumulative executions when found (the time axis)
	Mutators    []string
	Program     *lang.Program // the triggering mutant (pre-reduction)
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Findings    []Finding // chronological; first occurrence per bug ID
	Executions  int
	SeedsFuzzed int
	// FinalDeltas holds Δ(seed OBV, final-mutant OBV) per fuzzed seed —
	// the Figure 3/4 distribution.
	FinalDeltas []float64
}

// UniqueBugs returns the distinct detected bugs in detection order.
func (r *CampaignResult) UniqueBugs() []*buginject.Bug {
	var out []*buginject.Bug
	for _, f := range r.Findings {
		out = append(out, f.Bug)
	}
	return out
}

// BugIDs returns the detected bug IDs as a set.
func (r *CampaignResult) BugIDs() map[string]bool {
	out := map[string]bool{}
	for _, f := range r.Findings {
		out[f.Bug.ID] = true
	}
	return out
}

// ComponentCounts tallies detected bugs per JIT component.
func (r *CampaignResult) ComponentCounts() map[string]int {
	out := map[string]int{}
	for _, f := range r.Findings {
		out[f.Bug.Component]++
	}
	return out
}

// MedianDelta returns the median of FinalDeltas (0 when empty).
func (r *CampaignResult) MedianDelta() float64 {
	if len(r.FinalDeltas) == 0 {
		return 0
	}
	s := append([]float64(nil), r.FinalDeltas...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// RunCampaign fuzzes seeds sequentially (Algorithm 1 line 1) until the
// execution budget is exhausted, cycling the seed pool if needed.
func RunCampaign(cfg CampaignConfig) *CampaignResult {
	if len(cfg.Targets) == 0 {
		cfg.Targets = []jvm.Spec{jvm.Reference()}
	}
	res := &CampaignResult{}
	seen := map[string]bool{}
	round := 0
	for res.Executions < cfg.Budget {
		progressed := false
		for i, seed := range cfg.Seeds {
			if res.Executions >= cfg.Budget {
				break
			}
			fcfg := cfg.Fuzz
			fcfg.Target = cfg.Targets[(round*len(cfg.Seeds)+i)%len(cfg.Targets)]
			fcfg.Seed = cfg.Seed + int64(round*len(cfg.Seeds)+i)
			f := NewFuzzer(fcfg)
			fr, err := f.FuzzSeed(seed.Name, seed.Parse())
			if err != nil {
				continue
			}
			progressed = true
			res.Executions += fr.Executions
			res.SeedsFuzzed++
			res.FinalDeltas = append(res.FinalDeltas, fr.FinalDelta)
			for _, fd := range fr.Findings {
				if fd.Bug == nil || seen[fd.Bug.ID] {
					continue
				}
				seen[fd.Bug.ID] = true
				res.Findings = append(res.Findings, Finding{
					Bug:         fd.Bug,
					Oracle:      fd.Oracle,
					SeedName:    seed.Name,
					Target:      fcfg.Target,
					AtExecution: res.Executions,
					Mutators:    fd.Mutators,
					Program:     fr.Final,
				})
			}
		}
		if !progressed {
			break
		}
		round++
	}
	return res
}
