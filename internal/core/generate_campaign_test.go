package core

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jvm"
)

func genCampaignCfg(seed int64) CampaignConfig {
	return CampaignConfig{
		Seeds:      corpus.DefaultPool(4, seed),
		Budget:     220,
		Targets:    []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:       testCampaignCfg(seed),
		Seed:       seed,
		Generators: []string{"randprog", "template", "style"},
		Styles:     []string{"boxing-loop", "coarsen-store"},
	}
}

// generateBlockOf decodes the generate block of a raw checkpoint.
func generateBlockOf(t *testing.T, data []byte) *campaignState {
	t.Helper()
	var ck harness.Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	var st campaignState
	if err := json.Unmarshal(ck.State, &st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// TestGeneratorsOffMatchesBaseline pins the acceptance criterion: a
// campaign that names only the baseline generator is the subsystem-off
// campaign — byte-identical results and checkpoint (v2 envelope, no
// generate block) against a config that never heard of generators.
func TestGeneratorsOffMatchesBaseline(t *testing.T) {
	base := CampaignConfig{
		Seeds:   corpus.DefaultPool(3, 41),
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    testCampaignCfg(41),
		Seed:    41,
	}
	withOff := base
	withOff.Generators = []string{"randprog"}

	plain, plainCkpt := runForCheckpoint(t, base, 1)
	off, offCkpt := runForCheckpoint(t, withOff, 1)
	assertCampaignsEqual(t, plain, off)
	if s, o := normalizeCheckpoint(t, plainCkpt), normalizeCheckpoint(t, offCkpt); s != o {
		t.Errorf("randprog-only checkpoint diverged from baseline:\nplain: %s\noff:   %s", s, o)
	}
	if v := checkpointVersionOf(t, offCkpt); v != 2 {
		t.Errorf("randprog-only checkpoint version = %d, want 2 (no generate block)", v)
	}
}

// TestGeneratorCampaignDeterministic: generator emissions and the
// round-boundary pool refresh are pure functions of the campaign seed
// and emission counts, so two identical runs agree byte-for-byte —
// and the final checkpoint carries the v4 generate block with the
// refreshed slot overlay.
func TestGeneratorCampaignDeterministic(t *testing.T) {
	ccfg := genCampaignCfg(42)
	a, aCkpt := runForCheckpoint(t, ccfg, 1)
	b, bCkpt := runForCheckpoint(t, ccfg, 1)
	assertCampaignsEqual(t, a, b)
	if s, o := normalizeCheckpoint(t, aCkpt), normalizeCheckpoint(t, bCkpt); s != o {
		t.Errorf("generator campaign not deterministic:\na: %s\nb: %s", s, o)
	}
	if v := checkpointVersionOf(t, aCkpt); v != harness.CheckpointVersionGenerate {
		t.Errorf("checkpoint version = %d, want %d", v, harness.CheckpointVersionGenerate)
	}
	st := generateBlockOf(t, aCkpt)
	if st.Generate == nil {
		t.Fatal("checkpoint has no generate block")
	}
	if st.Generate.LastRound == 0 || len(st.Generate.Slots) == 0 {
		t.Fatalf("no pool refresh happened: LastRound=%d, %d slots (budget too small?)",
			st.Generate.LastRound, len(st.Generate.Slots))
	}
	total := 0
	for _, n := range st.Generate.Emitted {
		total += n
	}
	if total < len(st.Generate.Slots) {
		t.Errorf("emission counts (%d) inconsistent with slot overlay (%d)", total, len(st.Generate.Slots))
	}
	for _, sl := range st.Generate.Slots {
		if sl.Gen == "" || sl.Name == "" || sl.Source == "" {
			t.Errorf("slot %d missing provenance: %+v", sl.Index, sl)
		}
	}
}

// TestGeneratorParallelMatchesSequential: the refresh happens on the
// campaign goroutine under the engine's round barrier, so sharding
// across 8 workers must reproduce the sequential campaign — results
// and checkpoint — byte-identically, with the power schedule's
// generator bandit arms active.
func TestGeneratorParallelMatchesSequential(t *testing.T) {
	ccfg := genCampaignCfg(43)
	ccfg.SeedSchedule = corpus.SchedulePower
	seq, seqCkpt := runForCheckpoint(t, ccfg, 1)
	par, parCkpt := runForCheckpoint(t, ccfg, 8)
	assertCampaignsEqual(t, seq, par)
	if s, p := normalizeCheckpoint(t, seqCkpt), normalizeCheckpoint(t, parCkpt); s != p {
		t.Errorf("parallel generator campaign diverged from sequential:\nseq: %s\npar: %s", s, p)
	}
}

// TestGeneratorCheckpointResumeEquivalence: an interrupted generator
// campaign resumed from its checkpoint must equal the uninterrupted
// run — the slot overlay restores the refreshed pool, the emission
// counts pin the generator streams, and the schedule's renamed and
// generator arms restore in place.
func TestGeneratorCheckpointResumeEquivalence(t *testing.T) {
	ccfg := genCampaignCfg(44)
	ccfg.SeedSchedule = corpus.SchedulePower
	uninterrupted := RunCampaign(ccfg)

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := RunCampaignContext(ctx, ccfg, harness.Config{
		CheckpointPath: ckpt,
		OnTask: func(done int) {
			if done == 6 { // past the first refresh: the overlay must restore, not replay
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("cancellation did not mark the result interrupted")
	}
	if partial.Executions >= uninterrupted.Executions {
		t.Fatalf("partial run executed %d >= %d: nothing left to resume", partial.Executions, uninterrupted.Executions)
	}

	resumed, err := RunCampaignContext(context.Background(), ccfg, harness.Config{
		CheckpointPath: ckpt,
		ResumePath:     ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Error("resumed run not marked Resumed")
	}
	assertCampaignsEqual(t, uninterrupted, resumed)
}

// TestGeneratorResumeConfigMismatch: a v4 checkpoint refuses to resume
// into a generator-free config (the pool overlay would be silently
// dropped), and a generator config refuses a checkpoint without
// generator state (the pool would silently diverge from the
// interrupted run).
func TestGeneratorResumeConfigMismatch(t *testing.T) {
	ccfg := genCampaignCfg(45)
	ccfg.Budget = 120
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	if _, err := RunCampaignContext(context.Background(), ccfg, harness.Config{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	offCfg := ccfg
	offCfg.Generators, offCfg.Styles = nil, nil
	if _, err := RunCampaignContext(context.Background(), offCfg, harness.Config{ResumePath: ckpt}); err == nil {
		t.Fatal("generator-free resume of a v4 checkpoint succeeded; slot overlay was silently dropped")
	}

	plainCfg := offCfg
	plainCkpt := filepath.Join(t.TempDir(), "plain.ckpt.json")
	if _, err := RunCampaignContext(context.Background(), plainCfg, harness.Config{CheckpointPath: plainCkpt}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCampaignContext(context.Background(), ccfg, harness.Config{ResumePath: plainCkpt}); err == nil {
		t.Fatal("generator resume of a generator-free checkpoint succeeded; pool would diverge")
	}
}

// TestGeneratorFindingsCarryProvenance: findings surfaced on generated
// seeds carry the emitting generator's ID, and it round-trips through
// the checkpoint.
func TestGeneratorFindingsCarryProvenance(t *testing.T) {
	ccfg := genCampaignCfg(46)
	ccfg.Budget = 400
	var generated int
	ccfg.OnProgress = func(p Progress) { generated = p.GeneratedSeeds }
	res, ckpt := runForCheckpoint(t, ccfg, 1)
	if generated == 0 {
		t.Error("Progress.GeneratedSeeds never rose above zero")
	}
	st := generateBlockOf(t, ckpt)
	bySlot := map[string]string{}
	for _, sl := range st.Generate.Slots {
		bySlot[sl.Name] = sl.Gen
	}
	for i, f := range res.Findings {
		if gen, ok := bySlot[f.SeedName]; ok && f.GeneratorID != gen {
			t.Errorf("finding %d on generated seed %s: GeneratorID=%q, slot says %q",
				i, f.SeedName, f.GeneratorID, gen)
		}
	}
	for _, fs := range st.Findings {
		if gen, ok := bySlot[fs.SeedName]; ok && fs.GeneratorID != gen {
			t.Errorf("snapshot finding on %s: generator_id=%q, slot says %q", fs.SeedName, fs.GeneratorID, gen)
		}
	}
}
