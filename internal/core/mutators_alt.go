package core

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
)

// The paper notes that "there are multiple ways to design the evoking
// mutator for each optimization behavior, and we only explored one
// implementation in this study... the other implementations of such
// evoking mutators are left as our important future work" (§3.2). This
// file implements that future work for four behaviors; the extended set
// is selectable via ExtendedMutators and ablated in the benchmarks.

// ExtendedMutators returns the 13 canonical mutators plus the
// alternative implementations.
func ExtendedMutators() []Mutator {
	return append(AllMutators(),
		&LoopUnrollingEvokeAlt{},
		&LockEliminationEvokeAlt{},
		&InliningEvokeAlt{},
		&DeoptimizationEvokeAlt{},
	)
}

// LoopUnrollingEvokeAlt is the second unrolling-evoker design: instead
// of inserting a fresh loop *before* MP, it appends a partial-unroll
// shaped accumulator loop *after* MP whose bound depends on an in-scope
// value masked to a small constant range — exercising the unroller's
// non-constant-bound bailout paths as well as the pre/main/post split.
type LoopUnrollingEvokeAlt struct{}

func (LoopUnrollingEvokeAlt) Name() string   { return "LoopUnrolling-evoke-alt" }
func (LoopUnrollingEvokeAlt) Evokes() string { return "loop unrolling (alternative)" }
func (LoopUnrollingEvokeAlt) Applicable(loc *lang.Location) bool {
	return true
}

func (LoopUnrollingEvokeAlt) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	v := lang.FreshVar(loc.Method, "lua")
	sink := lang.FreshVar(loc.Method, "luas")
	trips := []int64{16, 20, 24}[rng.Intn(3)]
	decl := lang.Register(p, &lang.VarDecl{Name: sink, Ty: lang.Int, Init: &lang.IntLit{V: 0}})
	body := lang.Register(p, &lang.Block{Stmts: []lang.Stmt{
		lang.Register(p, &lang.Assign{
			Target: &lang.VarRef{Name: sink},
			Value: &lang.Binary{Op: lang.OpAdd,
				L: &lang.VarRef{Name: sink},
				R: &lang.Binary{Op: lang.OpXor, L: &lang.VarRef{Name: v}, R: &lang.IntLit{V: 21}}},
		}),
	}})
	loop := lang.Register(p, &lang.For{
		Var:  v,
		From: &lang.IntLit{V: 0},
		To:   &lang.IntLit{V: trips},
		Step: 1,
		Body: body,
	})
	loc.InsertAfter(loop)
	loc.InsertAfter(decl)
	return MP{ID: loc.Stmt.ID()}, nil
}

// LockEliminationEvokeAlt is the second lock-elision-evoker design: it
// moves the MP into a freshly synthesized *synchronized method* on the
// enclosing class and calls it — exercising method-level monitors and
// the inliner's monitor-rewiring path (Listing 1) rather than block
// synchronization.
type LockEliminationEvokeAlt struct{}

func (LockEliminationEvokeAlt) Name() string   { return "LockElimination-evoke-alt" }
func (LockEliminationEvokeAlt) Evokes() string { return "lock elimination via synchronized methods" }
func (LockEliminationEvokeAlt) Applicable(loc *lang.Location) bool {
	// The synthesized callee computes an int from one in-scope int.
	return !loc.Method.Static && len(intVarsInScope(loc)) > 0
}

func (LockEliminationEvokeAlt) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	ints := intVarsInScope(loc)
	if loc.Method.Static || len(ints) == 0 {
		return MP{}, fmt.Errorf("mutator: needs an instance method with an int in scope")
	}
	arg := ints[rng.Intn(len(ints))]
	name := lang.FreshMethod(loc.Class, "mop_sync")
	ret := lang.Register(p, &lang.Return{E: &lang.Binary{
		Op: lang.OpAdd,
		L:  &lang.VarRef{Name: "x"},
		R:  &lang.IntLit{V: int64(rng.Intn(9))},
	}})
	m := &lang.Method{
		Name:         name,
		Params:       []lang.Param{{Name: "x", Ty: lang.Int}},
		Ret:          lang.Int,
		Synchronized: true,
		Body:         lang.Register(p, &lang.Block{Stmts: []lang.Stmt{ret}}),
	}
	loc.Class.Methods = append(loc.Class.Methods, m)
	sink := lang.FreshVar(loc.Method, "ls")
	call := lang.Register(p, &lang.VarDecl{Name: sink, Ty: lang.Int,
		Init: &lang.Call{Recv: &lang.VarRef{Name: "this"}, Class: loc.Class.Name,
			Method: name, Args: []lang.Expr{&lang.VarRef{Name: arg}}}})
	loc.InsertBefore(call)
	return MP{ID: loc.Stmt.ID()}, nil
}

// InliningEvokeAlt is the second inlining-evoker design: instead of
// outlining a binary expression, it outlines the *whole MP statement*
// into a fresh void method (parameters bound from scope) and replaces MP
// with the call — exercising statement-level (void-body) inlining rather
// than expression inlining.
type InliningEvokeAlt struct{}

func (InliningEvokeAlt) Name() string   { return "Inlining-evoke-alt" }
func (InliningEvokeAlt) Evokes() string { return "statement-level inlining" }
func (InliningEvokeAlt) Applicable(loc *lang.Location) bool {
	// Only statements whose effects flow through fields/statics can be
	// outlined without rebinding locals: field and static assignments.
	switch n := loc.Stmt.(type) {
	case *lang.Assign:
		_, isField := n.Target.(*lang.FieldRef)
		return isField && !loc.Method.Static
	case *lang.ExprStmt:
		return !loc.Method.Static
	}
	return false
}

func (m InliningEvokeAlt) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	if !m.Applicable(loc) {
		return MP{}, fmt.Errorf("mutator: MP not outlineable")
	}
	// Collect the int locals the statement reads; they become params.
	reads := map[string]bool{}
	lang.WalkExprsIn(loc.Stmt, func(e lang.Expr) {
		if v, ok := e.(*lang.VarRef); ok {
			reads[v.Name] = true
		}
	})
	inScope := map[string]lang.Type{}
	for _, pr := range loc.LocalsInScope() {
		inScope[pr.Name] = pr.Ty
	}
	var params []lang.Param
	var args []lang.Expr
	for name := range reads {
		if name == "this" {
			continue
		}
		ty, ok := inScope[name]
		if !ok {
			return MP{}, fmt.Errorf("mutator: %q not in scope", name)
		}
		if ty.Kind != lang.KindInt && ty.Kind != lang.KindLong && ty.Kind != lang.KindBool {
			return MP{}, fmt.Errorf("mutator: cannot outline over %s local", ty)
		}
	}
	// Deterministic parameter order: sorted names.
	names := sortedKeys(reads)
	for _, name := range names {
		if name == "this" {
			continue
		}
		params = append(params, lang.Param{Name: name, Ty: inScope[name]})
		args = append(args, &lang.VarRef{Name: name})
	}

	mName := lang.FreshMethod(loc.Class, "mop_out")
	body := lang.Register(p, &lang.Block{Stmts: []lang.Stmt{loc.Stmt}})
	outlined := &lang.Method{Name: mName, Params: params, Ret: lang.Void, Body: body}
	loc.Class.Methods = append(loc.Class.Methods, outlined)
	call := lang.Register(p, &lang.ExprStmt{E: &lang.Call{
		Recv: &lang.VarRef{Name: "this"}, Class: loc.Class.Name, Method: mName, Args: args,
	}})
	loc.Replace(call)
	return MP{ID: call.ID()}, nil
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DeoptimizationEvokeAlt is the second deoptimization-evoker design: an
// equality guard against a value the driver reaches exactly once (an
// uncommon trap that fires exactly once, then forces a recompile),
// instead of the ordered comparison of the canonical design.
type DeoptimizationEvokeAlt struct{}

func (DeoptimizationEvokeAlt) Name() string   { return "Deoptimization-evoke-alt" }
func (DeoptimizationEvokeAlt) Evokes() string { return "single-shot deoptimization" }
func (DeoptimizationEvokeAlt) Applicable(loc *lang.Location) bool {
	return len(intVarsInScope(loc)) > 0
}

func (DeoptimizationEvokeAlt) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	ints := intVarsInScope(loc)
	if len(ints) == 0 {
		return MP{}, fmt.Errorf("mutator: no int variable in scope")
	}
	v := ints[rng.Intn(len(ints))]
	magic := int64(310 + rng.Intn(5)*97)
	sink := lang.FreshVar(loc.Method, "de")
	decl := lang.Register(p, &lang.VarDecl{Name: sink, Ty: lang.Int, Init: &lang.IntLit{V: 0}})
	guard := lang.Register(p, &lang.If{
		Cond: &lang.Binary{Op: lang.OpEq, L: &lang.VarRef{Name: v}, R: &lang.IntLit{V: magic}},
		Then: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{
			lang.Register(p, &lang.Assign{Target: &lang.VarRef{Name: sink},
				Value: &lang.Binary{Op: lang.OpAdd, L: &lang.VarRef{Name: sink}, R: &lang.IntLit{V: 1}}}),
		}}),
	})
	loc.InsertBefore(decl)
	loc.InsertBefore(guard)
	return MP{ID: loc.Stmt.ID()}, nil
}
