package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

func seedProgram(t *testing.T) *lang.Program {
	t.Helper()
	p, err := lang.Parse(corpus.MotivatingSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// locateWorkStmt returns the location of the first statement inside
// T.foo (a hot-method statement, the natural MP).
func locateWorkStmt(t *testing.T, p *lang.Program) *lang.Location {
	t.Helper()
	for _, loc := range lang.Statements(p) {
		if loc.Method.Name == "foo" {
			if _, ok := loc.Stmt.(*lang.VarDecl); ok {
				return loc
			}
		}
	}
	t.Fatal("no mutation point in T.foo")
	return nil
}

func TestAllMutatorsProduceValidPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range AllMutators() {
		t.Run(m.Name(), func(t *testing.T) {
			applied := false
			for attempt := 0; attempt < 8 && !applied; attempt++ {
				p := seedProgram(t)
				loc := locateWorkStmt(t, p)
				if !m.Applicable(loc) {
					// Build applicability: LockCoarsening needs a sync
					// around the MP first.
					if m.Name() == "LockCoarsening-evoke" {
						le := &LockEliminationEvoke{}
						mp, err := le.Apply(p, loc, rng)
						if err != nil {
							t.Fatal(err)
						}
						if err := lang.Check(p); err != nil {
							t.Fatal(err)
						}
						loc = mp.Locate(p)
						if loc == nil || !m.Applicable(loc) {
							t.Fatal("LockCoarsening not applicable after LockElimination")
						}
					} else {
						t.Fatalf("mutator not applicable to seed MP")
					}
				}
				mp, err := m.Apply(p, loc, rng)
				if err != nil {
					continue
				}
				if err := lang.Check(p); err != nil {
					t.Fatalf("mutant ill-typed: %v\n%s", err, lang.Format(p))
				}
				if mp.Locate(p) == nil {
					t.Fatalf("new MP %d not locatable", mp.ID)
				}
				// The mutant must still run on a bug-free JVM.
				r, err := jvm.Run(p, jvm.Reference(), jvm.Options{
					ForceCompile: true,
					Bugs:         []*buginject.Bug{},
					MaxSteps:     5_000_000,
				})
				if err != nil {
					t.Fatalf("mutant rejected: %v\n%s", err, lang.Format(p))
				}
				if r.Crashed() {
					t.Fatalf("mutant crashed a bug-free JVM: %v\n%s", r.Result.Crash, lang.Format(p))
				}
				applied = true
			}
			if !applied {
				t.Fatal("mutator never applied successfully")
			}
		})
	}
}

func TestMutantsAgreeAcrossBugFreeEngines(t *testing.T) {
	// Differential sanity: random mutants must produce identical output
	// on the pure interpreter and the bug-free JIT. This is the
	// correctness backstop for the whole mutate+optimize stack.
	rng := rand.New(rand.NewSource(11))
	muts := AllMutators()
	for trial := 0; trial < 6; trial++ {
		p := seedProgram(t)
		loc := locateWorkStmt(t, p)
		mp := MP{ID: loc.Stmt.ID()}
		for step := 0; step < 6; step++ {
			l := mp.Locate(p)
			if l == nil {
				t.Fatal("MP lost")
			}
			m := muts[rng.Intn(len(muts))]
			if !m.Applicable(l) {
				continue
			}
			nmp, err := m.Apply(p, l, rng)
			if err != nil {
				continue
			}
			if err := lang.Check(p); err != nil {
				t.Fatalf("trial %d step %d (%s): %v", trial, step, m.Name(), err)
			}
			mp = nmp
		}
		ref, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{
			PureInterpreter: true, MaxSteps: 20_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{
			ForceCompile: true, Bugs: []*buginject.Bug{}, MaxSteps: 20_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Result.TimedOut || opt.Result.TimedOut {
			continue
		}
		if ref.Result.OutputString() != opt.Result.OutputString() {
			t.Fatalf("trial %d: engines disagree:\n-- interp --\n%s\n-- jit --\n%s\n-- program --\n%s",
				trial, ref.Result.OutputString(), opt.Result.OutputString(), lang.Format(p))
		}
	}
}

func TestFuzzSeedGuidedRun(t *testing.T) {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.MaxIterations = 20
	cfg.Seed = 42
	cfg.DiffSpecs = nil // skip differential here; tested separately
	f := NewFuzzer(cfg)
	res, err := f.FuzzSeed("motivating", seedProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 2 {
		t.Errorf("Executions = %d", res.Executions)
	}
	if len(res.Records) == 0 {
		t.Fatal("no iteration records")
	}
	// Guidance must have updated at least one weight above 1.
	bumped := false
	for _, w := range f.Weights() {
		if w > 1 {
			bumped = true
		}
	}
	if !bumped {
		t.Error("no mutator weight ever increased under guidance")
	}
	// Δ relative to the seed should grow over iterations (paper Fig. 1):
	// compare the mean of the first third vs the last third.
	applied := 0
	var firstSum, lastSum float64
	var firstN, lastN int
	for _, r := range res.Records {
		if r.Skipped {
			continue
		}
		applied++
		if r.Iter <= cfg.MaxIterations/3 {
			firstSum += r.DeltaSeed
			firstN++
		}
		if r.Iter > 2*cfg.MaxIterations/3 {
			lastSum += r.DeltaSeed
			lastN++
		}
	}
	if applied < 5 {
		t.Fatalf("only %d mutations applied", applied)
	}
	if firstN > 0 && lastN > 0 && lastSum/float64(lastN) < firstSum/float64(firstN) {
		t.Logf("note: Δ did not grow monotonically (first %.1f, last %.1f)",
			firstSum/float64(firstN), lastSum/float64(lastN))
	}
}

func TestFuzzFindsInteractionCrash(t *testing.T) {
	// On jdk17, JDK-8312744 (coarsen after unroll) and friends are armed.
	// A few guided seeds should reach at least one crash.
	found := false
	for s := int64(0); s < 6 && !found; s++ {
		cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
		cfg.Seed = s
		cfg.MaxIterations = 50
		cfg.DiffSpecs = nil
		f := NewFuzzer(cfg)
		res, err := f.FuzzSeed("motivating", seedProgram(t))
		if err != nil {
			t.Fatal(err)
		}
		for _, fd := range res.Findings {
			if fd.Oracle == "crash" {
				found = true
				if fd.Bug == nil {
					t.Error("crash finding without a bug attribution")
				}
			}
		}
	}
	if !found {
		t.Error("no crash found in 6 guided seeds on jdk17 (triggers may be unreachable)")
	}
}

func TestMutatorNamesStable(t *testing.T) {
	names := MutatorNames()
	if len(names) != 13 {
		t.Fatalf("mutator count = %d, want 13", len(names))
	}
	want := []string{"LoopUnrolling-evoke", "LockElimination-evoke", "LockCoarsening-evoke",
		"Inlining-evoke", "DeReflection-evoke"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
	}
}

func TestLockCoarseningSplitsSync(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := seedProgram(t)
	loc := locateWorkStmt(t, p)
	le := &LockEliminationEvoke{}
	mp, err := le.Apply(p, loc, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	lc := &LockCoarseningEvoke{}
	l := mp.Locate(p)
	if !lc.Applicable(l) {
		t.Fatal("not applicable inside sync")
	}
	if _, err := lc.Apply(p, l, rng); err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatalf("after coarsening-evoke: %v\n%s", err, lang.Format(p))
	}
	src := lang.Format(p)
	if got := strings.Count(src, "synchronized"); got < 2 {
		t.Errorf("want >= 2 synchronized regions, got %d:\n%s", got, src)
	}
}

func TestProfileGuidanceUsesLogOnly(t *testing.T) {
	// With all flags off the fuzzer sees empty OBVs: Δ is always zero
	// and no weight can change — exactly the paper's §5.1 limitation.
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.Flags = profile.NoFlags()
	cfg.Seed = 5
	cfg.MaxIterations = 8
	cfg.DiffSpecs = nil
	f := NewFuzzer(cfg)
	res, err := f.FuzzSeed("motivating", seedProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range f.Weights() {
		if w != 1 {
			t.Errorf("weight changed to %v without profile data", w)
		}
	}
	if res.SeedOBV.Total() != 0 {
		t.Error("OBV nonzero with flags off")
	}
}
