package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/buginject"
	"repro/internal/coverage"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

// Config tunes a Fuzzer. The defaults mirror the paper's §4.1 settings.
type Config struct {
	MaxIterations int  // mutations per seed (paper: 50)
	Guided        bool // profile-data-based mutator weighting (§3.4)
	FixedMP       bool // iterate on one mutation point (false = MopFuzzer_r)
	Target        jvm.Spec
	DiffSpecs     []jvm.Spec // differential-testing targets for the final mutant
	Flags         profile.FlagSet
	MaxSteps      int64
	// MaxHeapUnits caps per-execution heap allocation (0 = VM default,
	// negative = uncapped); exhausting it marks the mutant a dead end.
	MaxHeapUnits int64
	Seed         int64
	// CompileHook, when non-nil, observes every JIT compilation event
	// on the fuzzing target (test seam for fault injection).
	CompileHook jit.Hook
	// Coverage, when non-nil, accumulates VM line coverage across every
	// execution (the Figure 2 instrumentation).
	Coverage *coverage.Tracker
	// DisableBugs runs against bug-free VMs — used when measuring Δ
	// distributions so crashes don't truncate runs.
	DisableBugs bool
	// MaxStmts rejects mutants larger than this many statements
	// (default 400): iterated region copying would otherwise grow
	// programs geometrically.
	MaxStmts int
	// ExtendedMutators adds the alternative evoking-mutator
	// implementations (the paper's future-work extension).
	ExtendedMutators bool
	// StructuredOBV profiles via the counter fast path instead of
	// regex-scanning log text (see jvm.Options.StructuredOBV). Guidance
	// depends only on OBV values, which the equivalence tests pin to the
	// regex oracle, so results are unchanged.
	StructuredOBV bool
	// CompileCache, when non-nil, reuses JIT compilations across this
	// fuzzer's executions and anything else sharing the cache (campaigns
	// attach one cache across all seeds, rounds, and differential
	// targets). A cache hit is byte-equivalent to recompiling.
	CompileCache *jit.Cache
	// Executor selects the execution backend. Nil runs in-process
	// (byte-identical to calling jvm.Run, the deterministic default); a
	// subprocess executor isolates every target execution in a child
	// process whose death is classified by the harness instead of
	// killing the fuzzer.
	Executor exec.Executor
	// PlanFuzz turns the compilation plan into a fuzz dimension (ROADMAP
	// item 3). The zero value (and jit.PlanDefault) keeps every execution
	// on the fixed pipeline — byte-identical to the pre-plan fuzzer.
	// PlanMinimal/PlanFull draw a deterministic per-seed set of fuzzed
	// plans, rotate them across iterations so the OBV weight update
	// operates over (program, plan) pairs, and run a plan-vs-plan
	// differential on the final mutant — the ordering-sensitivity oracle.
	PlanFuzz jit.PlanMode
}

// DefaultConfig returns the paper's configuration against the given
// target.
func DefaultConfig(target jvm.Spec) Config {
	return Config{
		MaxIterations: 50,
		Guided:        true,
		FixedMP:       true,
		Target:        target,
		DiffSpecs:     jvm.AllSpecs(),
		Flags:         profile.DefaultFlags(),
		MaxSteps:      3_000_000,
	}
}

// IterationRecord captures one fuzzing iteration for analysis
// (Figure 1's curve is plotted from these).
type IterationRecord struct {
	Iter          int
	Mutator       string
	Delta         float64 // Δ(parent, child), Formula 2
	DeltaSeed     float64 // Δ(seed, child) — Figure 1's y-axis
	OBV           profile.OBV
	Weight        float64 // mutator's weight after the update
	CrashBugID    string  // non-empty when this mutant crashed the JVM
	Skipped       bool    // mutation produced an invalid program
	HeapExhausted bool    // mutant blew the heap-allocation budget (dead end)
}

// BugFinding is one detected bug occurrence.
type BugFinding struct {
	Bug       *buginject.Bug
	Oracle    string // "crash", "differential", or "plan-differential"
	Iteration int    // mutation count when detected
	Mutators  []string
	// Divergence records the first diverging target pair for
	// differential findings (nil for crash findings) — the divergence
	// site triage signatures key unattributed miscompiles on.
	Divergence *jvm.Divergence
	// PlanID is the compilation plan the finding surfaced under —
	// "default" or a plan ShortID. Empty when plan fuzzing is off, so
	// off-mode findings keep the pre-plan shape.
	PlanID string
}

// FuzzResult is the outcome of fuzzing one seed.
type FuzzResult struct {
	SeedName   string
	Final      *lang.Program // the final mutant c*
	Records    []IterationRecord
	SeedOBV    profile.OBV
	FinalOBV   profile.OBV
	FinalDelta float64 // Δ(seed OBV, final OBV)
	Findings   []BugFinding
	MutatorSeq []string // mutators applied, in order
	Executions int      // target executions consumed (the time proxy)
	MPID       int
	// Weights is the final mutator-weight table, snapshotted so campaign
	// checkpoints can persist per-seed guidance state.
	Weights map[string]float64
	// HeapExhaustions counts executions that blew the heap budget;
	// FirstHeapExhausting keeps the first triggering program so the
	// harness can quarantine it as a crash-oracle artifact.
	FirstHeapExhausting *lang.Program
	HeapExhaustions     int
	// PlanIDs names the plan set this seed fuzzed over ("default" plus
	// the fuzzed plan ShortIDs), in rotation order. Nil when plan
	// fuzzing is off.
	PlanIDs []string
}

// Fuzzer runs the paper's Algorithm 1.
type Fuzzer struct {
	Cfg      Config
	Mutators []Mutator
	rng      *rand.Rand
	weights  map[string]float64
	// compileOnly is the -XX:CompileCommand=compileonly target: the
	// method holding the seed's mutation point (§4.1). It is fixed per
	// seed, so the MopFuzzer_r variant's scattered mutations mostly land
	// in code the JIT never compiles — the paper's explanation for that
	// variant's collapse.
	compileOnly string
	// plans is the per-seed plan set: index 0 is always nil (the fixed
	// default pipeline); fuzz modes append deterministic fuzzed plans.
	// Iterations rotate through it.
	plans []*jit.Plan
}

// fuzzedPlansPerSeed is how many fuzzed plans join the default plan in a
// seed's rotation (and in the final plan differential).
const fuzzedPlansPerSeed = 3

// planSeedSalt decorrelates the plan-generation stream from the mutation
// stream: both derive from Cfg.Seed, but plan generation must not
// perturb f.rng (off-mode mutation sequences stay byte-identical).
const planSeedSalt = 0x706c616e

// planFuzzOn reports whether this fuzzer explores fuzzed plans.
func (f *Fuzzer) planFuzzOn() bool {
	return f.Cfg.PlanFuzz != "" && f.Cfg.PlanFuzz != jit.PlanDefault
}

// planAt returns the compilation plan for iteration i: nil (the default
// pipeline) when plan fuzzing is off, otherwise the rotation's i-th
// entry. The baseline (i=0) always profiles under the default plan so
// guidance starts from the production reference.
func (f *Fuzzer) planAt(i int) *jit.Plan {
	if len(f.plans) == 0 {
		return nil
	}
	return f.plans[i%len(f.plans)]
}

// planIDFor labels finding provenance: empty when plan fuzzing is off
// (the pre-plan finding shape), the canonical plan ID otherwise.
func (f *Fuzzer) planIDFor(p *jit.Plan) string {
	if !f.planFuzzOn() {
		return ""
	}
	return jit.PlanID(p)
}

// NewFuzzer builds a fuzzer with the 13 mutators.
func NewFuzzer(cfg Config) *Fuzzer {
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 50
	}
	if cfg.MaxStmts == 0 {
		cfg.MaxStmts = 600
	}
	muts := AllMutators()
	if cfg.ExtendedMutators {
		muts = ExtendedMutators()
	}
	return &Fuzzer{
		Cfg:      cfg,
		Mutators: muts,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// selectMP picks the mutation point: a random non-block statement in hot
// code — a method reachable from main (mutations in dead methods never
// execute, so they cannot evoke anything), preferring statements inside
// the workload rather than the entry point's driver bookkeeping. This is
// the paper's setting: its -XX:CompileCommand=compileonly targets the
// seed's workload method, and its example MP is the hot call site.
func (f *Fuzzer) selectMP(p *lang.Program) *lang.Location {
	reach := reachableMethods(p)
	var hot, all []*lang.Location
	for _, loc := range lang.Statements(p) {
		if _, isBlock := loc.Stmt.(*lang.Block); isBlock {
			continue
		}
		if !reach[loc.Class.Name+"."+loc.Method.Name] {
			continue
		}
		all = append(all, loc)
		if loc.Method.Name != "main" || loc.LoopDepth() > 0 {
			hot = append(hot, loc)
		}
	}
	if len(hot) > 0 {
		return hot[f.rng.Intn(len(hot))]
	}
	if len(all) == 0 {
		return nil
	}
	return all[f.rng.Intn(len(all))]
}

// reachableMethods computes the call-graph closure from main.
func reachableMethods(p *lang.Program) map[string]bool {
	reach := map[string]bool{}
	var visit func(class, method string)
	visit = func(class, method string) {
		key := class + "." + method
		if reach[key] {
			return
		}
		cl := p.Class(class)
		if cl == nil {
			return
		}
		m := cl.Method(method)
		if m == nil {
			return
		}
		reach[key] = true
		lang.WalkStmts(m.Body, func(s lang.Stmt) bool {
			lang.WalkExprsIn(s, func(e lang.Expr) {
				switch n := e.(type) {
				case *lang.Call:
					visit(n.Class, n.Method)
				case *lang.ReflectCall:
					visit(n.Class, n.Method)
				}
			})
			return true
		})
	}
	visit(p.EntryClass, "main")
	return reach
}

// applicable returns the applicable mutators and their weights at loc.
func (f *Fuzzer) applicable(loc *lang.Location) ([]Mutator, []float64) {
	var ms []Mutator
	var ws []float64
	for _, m := range f.Mutators {
		if m.Applicable(loc) {
			ms = append(ms, m)
			ws = append(ws, f.weights[m.Name()])
		}
	}
	return ms, ws
}

// selectByWeight implements Formula 1: potential(m_i) = w_i / Σ w_j.
func (f *Fuzzer) selectByWeight(ms []Mutator, ws []float64) Mutator {
	total := 0.0
	for _, w := range ws {
		total += w
	}
	if total <= 0 {
		return ms[f.rng.Intn(len(ms))]
	}
	x := f.rng.Float64() * total
	for i, w := range ws {
		x -= w
		if x <= 0 {
			return ms[i]
		}
	}
	return ms[len(ms)-1]
}

// execute runs the program on the fuzzing target with flags enabled,
// through the configured execution backend, under the given compilation
// plan (nil = the fixed default pipeline).
func (f *Fuzzer) execute(ctx context.Context, p *lang.Program, plan *jit.Plan) (*jvm.ExecResult, error) {
	opt := jvm.Options{
		Flags:         f.Cfg.Flags,
		ForceCompile:  true,
		MaxSteps:      f.Cfg.MaxSteps,
		MaxHeapUnits:  f.Cfg.MaxHeapUnits,
		Coverage:      f.Cfg.Coverage,
		CompileOnly:   f.compileOnly,
		CompileHook:   f.Cfg.CompileHook,
		StructuredOBV: f.Cfg.StructuredOBV,
		CompileCache:  f.Cfg.CompileCache,
		Plan:          plan,
	}
	if f.Cfg.DisableBugs {
		opt.Bugs = []*buginject.Bug{}
	}
	return exec.Or(f.Cfg.Executor).Execute(ctx, p, f.Cfg.Target, opt)
}

// FuzzSeed runs Algorithm 1 on one seed program and returns the result.
// The seed is not modified.
func (f *Fuzzer) FuzzSeed(name string, seed *lang.Program) (*FuzzResult, error) {
	return f.FuzzSeedContext(context.Background(), name, seed)
}

// FuzzSeedContext is FuzzSeed with a context threaded to the execution
// backend: an out-of-process backend uses it to bound and kill child
// processes (the in-process backend ignores it, keeping the default
// path byte-identical).
func (f *Fuzzer) FuzzSeedContext(ctx context.Context, name string, seed *lang.Program) (*FuzzResult, error) {
	res := &FuzzResult{SeedName: name}
	// Snapshot the final weight table on every exit path (checkpoints
	// persist it as the per-seed guidance state).
	defer func() { res.Weights = f.Weights() }()

	// Initialize mutator weights to 1 (Algorithm 1, line 4).
	f.weights = map[string]float64{}
	for _, m := range f.Mutators {
		f.weights[m.Name()] = 1
	}

	// Plan set for this seed: index 0 is the fixed default pipeline;
	// fuzz modes add deterministic fuzzed plans drawn from a dedicated
	// stream (f.rng is untouched, so off-mode mutation sequences stay
	// byte-identical whether or not this build knows about plans).
	f.plans = []*jit.Plan{nil}
	if f.planFuzzOn() {
		prng := rand.New(rand.NewSource(f.Cfg.Seed ^ planSeedSalt))
		for len(f.plans) < 1+fuzzedPlansPerSeed {
			plan := jit.GeneratePlan(prng.Int63(), f.Cfg.PlanFuzz)
			if err := plan.Validate(); err != nil {
				// Unreachable by construction; a registry bug must surface
				// here, not as a misattributed execution failure.
				return nil, fmt.Errorf("core: generated plan rejected: %w", err)
			}
			f.plans = append(f.plans, plan)
		}
		for _, plan := range f.plans {
			res.PlanIDs = append(res.PlanIDs, jit.PlanID(plan))
		}
	}

	parent := lang.CloneProgram(seed)
	if err := lang.Check(parent); err != nil {
		return nil, fmt.Errorf("core: seed rejected: %w", err)
	}

	// Select the mutation point (line 2).
	mpLoc := f.selectMP(parent)
	if mpLoc == nil {
		return nil, fmt.Errorf("core: seed has no statements")
	}
	mp := MP{ID: mpLoc.Stmt.ID()}
	res.MPID = mp.ID
	f.compileOnly = mpLoc.Class.Name + "." + mpLoc.Method.Name

	// Execute the seed for its baseline profile data (line 3), always
	// under the default plan (planAt(0)): guidance starts from the
	// production reference schedule.
	parentExec, err := f.execute(ctx, lang.CloneProgram(parent), f.planAt(0))
	if err != nil {
		return nil, err
	}
	res.Executions++
	res.SeedOBV = parentExec.OBV
	parentOBV := parentExec.OBV
	if parentExec.Result.HeapExhausted {
		// The unmutated seed already exhausts the heap: record it so the
		// campaign harness can quarantine the seed, and stop — mutation
		// guidance is meaningless against a truncated baseline profile.
		res.HeapExhaustions++
		res.FirstHeapExhausting = parent
		res.Final = parent
		res.FinalOBV = parentOBV
		return res, nil
	}
	if parentExec.Crashed() {
		// The unmutated seed already crashes (possible on heavily bugged
		// versions): report and stop.
		f.recordCrash(res, parentExec, 0, f.planIDFor(f.planAt(0)))
		res.Final = parent
		res.FinalOBV = parentOBV
		return res, nil
	}

	for iter := 1; iter <= f.Cfg.MaxIterations; iter++ {
		// Variant MopFuzzer_r re-picks a random statement each round.
		loc := mp.Locate(parent)
		if !f.Cfg.FixedMP || loc == nil {
			loc = f.selectMP(parent)
			if loc == nil {
				break
			}
			mp = MP{ID: loc.Stmt.ID()}
		}

		ms, ws := f.applicable(loc)
		if len(ms) == 0 {
			break
		}
		m := f.selectByWeight(ms, ws)

		child := lang.CloneProgram(parent)
		childLoc := mp.Locate(child)
		if childLoc == nil {
			break
		}
		newMP, err := m.Apply(child, childLoc, f.rng)
		if err != nil {
			res.Records = append(res.Records, IterationRecord{Iter: iter, Mutator: m.Name(), Skipped: true})
			continue
		}
		if err := lang.Check(child); err != nil {
			res.Records = append(res.Records, IterationRecord{Iter: iter, Mutator: m.Name(), Skipped: true})
			continue
		}
		if lang.CountStmts(child) > f.Cfg.MaxStmts {
			res.Records = append(res.Records, IterationRecord{Iter: iter, Mutator: m.Name(), Skipped: true})
			continue
		}

		// Rotate the plan set: with plan fuzzing on, iteration i runs
		// under plans[i mod |plans|], so guidance explores (program,
		// plan) pairs — a mutant's Δ can come from the mutation, the
		// schedule, or their interaction, and all three feed the weight
		// update. Off mode always gets nil (the default pipeline).
		plan := f.planAt(iter)
		childExec, err := f.execute(ctx, lang.CloneProgram(child), plan)
		if err != nil {
			// A backend fault (the child process died under this mutant)
			// is a first-class crash-oracle artifact, not a skipped
			// iteration: propagate it so the harness classifies the death
			// and quarantines the trigger.
			if harness.AsFault(err) != nil {
				return nil, err
			}
			res.Records = append(res.Records, IterationRecord{Iter: iter, Mutator: m.Name(), Skipped: true})
			continue
		}
		res.Executions++
		res.MutatorSeq = append(res.MutatorSeq, m.Name())

		rec := IterationRecord{
			Iter:      iter,
			Mutator:   m.Name(),
			OBV:       childExec.OBV,
			Delta:     profile.Delta(parentOBV, childExec.OBV),
			DeltaSeed: profile.Delta(res.SeedOBV, childExec.OBV),
		}

		// Weight update (Formula 3) under guidance.
		if f.Cfg.Guided {
			f.weights[m.Name()] = profile.UpdateWeight(f.weights[m.Name()], parentOBV, childExec.OBV)
		}
		rec.Weight = f.weights[m.Name()]

		if childExec.Crashed() {
			rec.CrashBugID = childExec.Result.Crash.BugID
			res.Records = append(res.Records, rec)
			f.recordCrash(res, childExec, iter, f.planIDFor(plan))
			res.Final = child
			res.FinalOBV = childExec.OBV
			res.FinalDelta = rec.DeltaSeed
			return res, nil
		}
		rec.HeapExhausted = childExec.Result.HeapExhausted
		res.Records = append(res.Records, rec)

		// Timed-out and heap-exhausted mutants are dead ends: do not
		// adopt them. Heap exhaustion additionally marks the mutant as a
		// quarantinable artifact for the harness.
		if childExec.Result.HeapExhausted {
			res.HeapExhaustions++
			if res.FirstHeapExhausting == nil {
				res.FirstHeapExhausting = child
			}
			continue
		}
		if childExec.Result.TimedOut {
			continue
		}

		parent = child
		parentOBV = childExec.OBV
		mp = newMP
	}

	res.Final = parent
	res.FinalOBV = parentOBV
	res.FinalDelta = profile.Delta(res.SeedOBV, parentOBV)

	// Differential testing of the final mutant c* (Algorithm 1 line 20).
	if len(f.Cfg.DiffSpecs) > 0 {
		diff, err := exec.Or(f.Cfg.Executor).ExecuteDifferential(ctx, parent, f.Cfg.DiffSpecs, jvm.Options{
			ForceCompile: true,
			MaxSteps:     f.Cfg.MaxSteps,
			MaxHeapUnits: f.Cfg.MaxHeapUnits,
			CompileOnly:  f.compileOnly,
			// One cache serves every differential target: compilations on
			// specs with identical tuning and armed-bug state are shared.
			CompileCache: f.Cfg.CompileCache,
		})
		if err != nil {
			return nil, err
		}
		res.Executions += len(diff.Results)
		if crash := diff.AnyCrash(); crash != nil {
			f.recordCrash(res, crash, f.Cfg.MaxIterations, f.planIDFor(nil))
		} else if diff.Inconsistent() {
			div := diff.FirstDivergence()
			for _, b := range diff.DivergentBugs() {
				res.Findings = append(res.Findings, BugFinding{
					Bug: b, Oracle: "differential", Iteration: f.Cfg.MaxIterations,
					Mutators:   append([]string(nil), res.MutatorSeq...),
					Divergence: div,
					PlanID:     f.planIDFor(nil),
				})
			}
		}
	}

	// Plan-vs-plan differential (the ordering-sensitivity oracle): the
	// final mutant runs on ONE spec — the fuzzing target — under every
	// plan in the seed's set. Program and spec are held fixed, so any
	// divergence is phase-ordering sensitivity: the bug class the fixed
	// schedule provably cannot reach (see runTier's ordering comment).
	if f.planFuzzOn() {
		pdiff, err := exec.Or(f.Cfg.Executor).ExecutePlanDifferential(ctx, parent, f.Cfg.Target, f.plans, jvm.Options{
			ForceCompile: true,
			MaxSteps:     f.Cfg.MaxSteps,
			MaxHeapUnits: f.Cfg.MaxHeapUnits,
			CompileOnly:  f.compileOnly,
			CompileCache: f.Cfg.CompileCache,
		})
		if err != nil {
			return nil, err
		}
		res.Executions += len(pdiff.Results)
		if crash := pdiff.AnyCrash(); crash != nil {
			f.recordCrash(res, crash, f.Cfg.MaxIterations, crash.PlanID)
		} else if pdiff.Inconsistent() {
			div := pdiff.FirstDivergence()
			for _, b := range pdiff.DivergentBugs() {
				res.Findings = append(res.Findings, BugFinding{
					Bug: b, Oracle: "plan-differential", Iteration: f.Cfg.MaxIterations,
					Mutators:   append([]string(nil), res.MutatorSeq...),
					Divergence: div,
					PlanID:     div.DivergentPlan,
				})
			}
		}
	}
	return res, nil
}

func (f *Fuzzer) recordCrash(res *FuzzResult, exec *jvm.ExecResult, iter int, planID string) {
	crash := exec.Result.Crash
	finding := BugFinding{
		Oracle:    "crash",
		Iteration: iter,
		Mutators:  append([]string(nil), res.MutatorSeq...),
		PlanID:    planID,
	}
	if b := buginject.ByID(crash.BugID); b != nil {
		finding.Bug = b
	} else {
		// A crash without a catalog entry (e.g. an illegal-monitor
		// state produced by a miscompile defect): attribute it to the
		// first triggered bug if any.
		for _, b := range exec.Triggered {
			finding.Bug = b
			break
		}
	}
	if finding.Bug != nil {
		res.Findings = append(res.Findings, finding)
	}
}

// Weights exposes the current weight table (for the guidance example and
// tests).
func (f *Fuzzer) Weights() map[string]float64 {
	out := map[string]float64{}
	for k, v := range f.weights {
		out[k] = v
	}
	return out
}
