package core

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jvm"
)

// checkpointVersionOf decodes just the envelope version of a raw
// checkpoint file.
func checkpointVersionOf(t *testing.T, data []byte) int {
	t.Helper()
	var ck harness.Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	return ck.Version
}

// TestScheduleOffMatchesUnscheduled pins the satellite guarantee:
// -schedule=off reproduces the pre-scheduling campaign byte-identically,
// including the final checkpoint — same envelope version (v2, no
// schedule block), same findings, same everything. A campaign config
// that never heard of scheduling and one that explicitly asks for off
// must be indistinguishable.
func TestScheduleOffMatchesUnscheduled(t *testing.T) {
	base := CampaignConfig{
		Seeds:   corpus.DefaultPool(3, 31),
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    testCampaignCfg(31),
		Seed:    31,
	}
	withOff := base
	withOff.SeedSchedule = corpus.ScheduleOff

	plain, plainCkpt := runForCheckpoint(t, base, 1)
	off, offCkpt := runForCheckpoint(t, withOff, 1)
	assertCampaignsEqual(t, plain, off)
	if s, o := normalizeCheckpoint(t, plainCkpt), normalizeCheckpoint(t, offCkpt); s != o {
		t.Errorf("off-mode checkpoint diverged from unscheduled:\nplain: %s\noff:   %s", s, o)
	}
	if v := checkpointVersionOf(t, offCkpt); v != 2 {
		t.Errorf("off-mode checkpoint version = %d, want 2 (no schedule block)", v)
	}
}

// TestPowerCampaignDeterministic: the power schedule is a pure function
// of the campaign seed and the merged observation prefix, so two
// identical runs must agree byte-for-byte — results and final
// checkpoint, which now carries the v3 schedule block.
func TestPowerCampaignDeterministic(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:        corpus.DefaultPool(3, 32),
		Budget:       150,
		Targets:      []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:         testCampaignCfg(32),
		Seed:         32,
		SeedSchedule: corpus.SchedulePower,
	}
	a, aCkpt := runForCheckpoint(t, ccfg, 1)
	b, bCkpt := runForCheckpoint(t, ccfg, 1)
	assertCampaignsEqual(t, a, b)
	if s1, s2 := normalizeCheckpoint(t, aCkpt), normalizeCheckpoint(t, bCkpt); s1 != s2 {
		t.Errorf("power campaign not deterministic:\nfirst:  %s\nsecond: %s", s1, s2)
	}
	if v := checkpointVersionOf(t, aCkpt); v != harness.CheckpointVersionScheduled {
		t.Errorf("power checkpoint version = %d, want %d", v, harness.CheckpointVersionScheduled)
	}
}

// TestPowerParallelMatchesSequential: the round barrier makes the power
// schedule safe under speculative workers — 8 workers must reproduce
// the sequential power campaign byte-identically.
func TestPowerParallelMatchesSequential(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:        corpus.DefaultPool(4, 33),
		Budget:       200,
		Targets:      []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}, {Impl: buginject.OpenJ9, Version: 17}},
		Fuzz:         testCampaignCfg(33),
		Seed:         33,
		SeedSchedule: corpus.SchedulePower,
	}
	seq, seqCkpt := runForCheckpoint(t, ccfg, 1)
	par, parCkpt := runForCheckpoint(t, ccfg, 8)
	assertCampaignsEqual(t, seq, par)
	if s, p := normalizeCheckpoint(t, seqCkpt), normalizeCheckpoint(t, parCkpt); s != p {
		t.Errorf("power checkpoint diverged under parallelism:\nsequential: %s\nparallel:   %s", s, p)
	}
}

// TestPowerCheckpointResumeEquivalence: interrupt a power campaign
// mid-flight and resume it; the restored arm statistics and the
// persisted round plan must continue the schedule exactly where it
// stopped, reproducing the uninterrupted run byte-identically.
func TestPowerCheckpointResumeEquivalence(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:        corpus.DefaultPool(3, 34),
		Budget:       150,
		Targets:      []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:         testCampaignCfg(34),
		Seed:         34,
		SeedSchedule: corpus.SchedulePower,
	}
	uninterrupted := RunCampaign(ccfg)

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := RunCampaignContext(ctx, ccfg, harness.Config{
		CheckpointPath: ckpt,
		OnTask: func(done int) {
			if done == 4 { // mid-round: the plan must resume, not replan
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("cancellation did not mark the result interrupted")
	}
	if partial.Executions >= uninterrupted.Executions {
		t.Fatalf("partial run executed %d >= %d: nothing left to resume", partial.Executions, uninterrupted.Executions)
	}

	resumed, err := RunCampaignContext(context.Background(), ccfg, harness.Config{
		CheckpointPath: ckpt,
		ResumePath:     ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Error("resumed run not marked Resumed")
	}
	assertCampaignsEqual(t, uninterrupted, resumed)
}

// TestPowerResumeRequiresSchedule: a v3 checkpoint carrying schedule
// state must refuse to resume into a schedule-free config instead of
// silently dropping the arm statistics.
func TestPowerResumeRequiresSchedule(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:        corpus.DefaultPool(3, 35),
		Budget:       60,
		Targets:      []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:         testCampaignCfg(35),
		Seed:         35,
		SeedSchedule: corpus.SchedulePower,
	}
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	if _, err := RunCampaignContext(context.Background(), ccfg, harness.Config{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}

	offCfg := ccfg
	offCfg.SeedSchedule = corpus.ScheduleOff
	if _, err := RunCampaignContext(context.Background(), offCfg, harness.Config{ResumePath: ckpt}); err == nil {
		t.Fatal("schedule-free resume of a power checkpoint succeeded; arm statistics were silently dropped")
	}
}

// TestScoreSeedsCacheReuse: a second scoring pass over the same corpus
// must come from the cache file, not fresh dry-runs. Proven by
// poisoning one cached vector between passes: if the poisoned value
// comes back, the dry-run was skipped.
func TestScoreSeedsCacheReuse(t *testing.T) {
	ctx := context.Background()
	seeds := corpus.DefaultPool(3, 36)
	path := filepath.Join(t.TempDir(), "scores.json")

	first, err := ScoreSeeds(ctx, seeds, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(seeds) {
		t.Fatalf("scored %d of %d seeds", len(first), len(seeds))
	}
	for i, ft := range first {
		if len(ft.OBV) == 0 {
			t.Errorf("seed %d has no OBV from its dry-run", i)
		}
	}

	cache := corpus.LoadScoreCache(path)
	if cache.Len() != len(seeds) {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), len(seeds))
	}
	poisoned := cache.Get(corpus.HashSource(seeds[0].Source))
	if poisoned == nil {
		t.Fatal("seed 0 missing from cache")
	}
	poisoned.Methods = 999
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	second, err := ScoreSeeds(ctx, seeds, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Methods != 999 {
		t.Errorf("Methods = %d after poisoning the cache, want 999 (dry-run was not skipped)", second[0].Methods)
	}
}
