package core

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jvm"
)

// runForCheckpoint runs a campaign to completion with checkpointing on
// and returns the result plus the final checkpoint bytes — the
// strongest equality witness we have, since the snapshot serializes
// executions, findings, deltas, faults, per-seed weights, seen-bug
// set, quarantine index, and the task cursor.
func runForCheckpoint(t *testing.T, ccfg CampaignConfig, workers int) (*CampaignResult, []byte) {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	ccfg.Workers = workers
	res, err := RunCampaignContext(context.Background(), ccfg, harness.Config{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	return res, data
}

// normalizeCheckpoint blanks the Go stack text inside contained-panic
// faults before comparing checkpoints: a panic contained on a worker
// goroutine unavoidably records a different goroutine id and engine
// call path than one contained inline, while every semantic fault
// field (class, task, seed, round, message, component, source) is
// asserted identical separately.
func normalizeCheckpoint(t *testing.T, data []byte) string {
	t.Helper()
	var ck harness.Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	var st campaignState
	if err := json.Unmarshal(ck.State, &st); err != nil {
		t.Fatal(err)
	}
	for _, f := range st.Faults {
		f.Stack = ""
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	ck.State = raw
	out, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestParallelCampaignMatchesSequential is the tentpole acceptance
// criterion: sharding seed-tasks across 8 workers must reproduce the
// sequential campaign byte-identically — findings, deltas, faults,
// weights, and checkpoint state.
func TestParallelCampaignMatchesSequential(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:   corpus.DefaultPool(4, 21),
		Budget:  200,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}, {Impl: buginject.OpenJ9, Version: 17}},
		Fuzz:    testCampaignCfg(21),
		Seed:    21,
	}
	seq, seqCkpt := runForCheckpoint(t, ccfg, 1)
	par, parCkpt := runForCheckpoint(t, ccfg, 8)
	assertCampaignsEqual(t, seq, par)
	if s, p := normalizeCheckpoint(t, seqCkpt), normalizeCheckpoint(t, parCkpt); s != p {
		t.Errorf("final checkpoint diverged under parallelism:\nsequential: %s\nparallel:   %s", s, p)
	}
}

// TestParallelCampaignMatchesSequentialWithFaults exercises the
// order-dependent merge paths: a seed whose compilation panics the
// substrate gets quarantined mid-campaign, later speculative attempts
// of it must be skipped exactly as a sequential run skips them, and a
// seed the fuzzer rejects must land in SeedErrors at the same rounds.
func TestParallelCampaignMatchesSequentialWithFaults(t *testing.T) {
	fcfg := testCampaignCfg(22)
	fcfg.CompileHook = panicOnClass{class: "Boom"}
	pool := append(corpus.DefaultPool(3, 22), boomSeed, emptySeed)
	ccfg := CampaignConfig{
		Seeds:   pool,
		Budget:  200,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    fcfg,
		Seed:    22,
	}
	seq, seqCkpt := runForCheckpoint(t, ccfg, 1)
	par, parCkpt := runForCheckpoint(t, ccfg, 8)
	assertCampaignsEqual(t, seq, par)
	if len(par.Faults) != len(seq.Faults) {
		t.Fatalf("Faults len = %d, want %d", len(par.Faults), len(seq.Faults))
	}
	for i := range seq.Faults {
		w, g := seq.Faults[i], par.Faults[i]
		if g.Class != w.Class || g.TaskID != w.TaskID || g.SeedName != w.SeedName || g.Round != w.Round ||
			g.Message != w.Message || g.Component != w.Component || g.Source != w.Source {
			t.Errorf("Faults[%d] = {%s %s %s r%d %q}, want {%s %s %s r%d %q}",
				i, g.Class, g.TaskID, g.SeedName, g.Round, g.Message, w.Class, w.TaskID, w.SeedName, w.Round, w.Message)
		}
	}
	if par.SkippedQuarantined != seq.SkippedQuarantined {
		t.Errorf("SkippedQuarantined = %d, want %d", par.SkippedQuarantined, seq.SkippedQuarantined)
	}
	if len(par.SeedErrors) != len(seq.SeedErrors) {
		t.Fatalf("SeedErrors len = %d, want %d", len(par.SeedErrors), len(seq.SeedErrors))
	}
	if seq.SkippedQuarantined == 0 {
		t.Error("test is vacuous: no quarantine skips occurred")
	}
	if s, p := normalizeCheckpoint(t, seqCkpt), normalizeCheckpoint(t, parCkpt); s != p {
		t.Errorf("final checkpoint diverged under parallelism:\nsequential: %s\nparallel:   %s", s, p)
	}
}

// TestParallelCheckpointResumeEquivalence: interrupt a parallel
// campaign mid-flight, resume it in parallel, and require the exact
// result of an uninterrupted sequential run. Checkpoints only ever
// describe a merged prefix of the task stream, so speculative work in
// flight at the interrupt is invisible to the snapshot.
func TestParallelCheckpointResumeEquivalence(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:   corpus.DefaultPool(3, 23),
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    testCampaignCfg(23),
		Seed:    23,
	}
	uninterrupted := RunCampaign(ccfg)

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ccfg.Workers = 8
	partial, err := RunCampaignContext(ctx, ccfg, harness.Config{
		CheckpointPath: ckpt,
		OnTask: func(done int) {
			if done == 2 {
				cancel() // simulate SIGINT after the second merged task
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("cancellation did not mark the result interrupted")
	}
	if partial.Executions >= uninterrupted.Executions {
		t.Fatalf("partial run executed %d >= %d: nothing left to resume", partial.Executions, uninterrupted.Executions)
	}

	resumed, err := RunCampaignContext(context.Background(), ccfg, harness.Config{
		CheckpointPath: ckpt,
		ResumePath:     ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Error("resumed run not marked Resumed")
	}
	assertCampaignsEqual(t, uninterrupted, resumed)
}
