package core

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jvm"
)

// TestCampaignCountsCheckpointWriteFailures: a checkpoint path that can
// never be written (missing parent directory) must not kill the
// campaign, but each failed flush must be counted and the last error
// surfaced — not silently dropped.
func TestCampaignCountsCheckpointWriteFailures(t *testing.T) {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:  corpus.DefaultPool(2, 3),
		Budget: 30,
		Fuzz:   cfg,
		Seed:   3,
	}, harness.Config{
		CheckpointPath: filepath.Join(t.TempDir(), "no-such-dir", "ck.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 30 {
		t.Errorf("campaign stopped early: %d executions", res.Executions)
	}
	if res.CheckpointErrors == 0 {
		t.Fatal("checkpoint write failures were not counted")
	}
	if res.LastCheckpointError == "" {
		t.Error("LastCheckpointError empty")
	}
}

func TestCampaignCheckpointErrorsZeroOnHealthyPath(t *testing.T) {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:  corpus.DefaultPool(2, 3),
		Budget: 30,
		Fuzz:   cfg,
		Seed:   3,
	}, harness.Config{
		CheckpointPath: filepath.Join(t.TempDir(), "ck.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointErrors != 0 {
		t.Errorf("CheckpointErrors = %d (last: %s), want 0", res.CheckpointErrors, res.LastCheckpointError)
	}
}

// TestResumeNotesUnparseableSnapshotProgram: a finding whose
// snapshotted reproducer no longer parses must still be restored (sans
// program) with a resume-time SeedError note, instead of the program
// being dropped silently.
func TestResumeNotesUnparseableSnapshotProgram(t *testing.T) {
	bug := buginject.Catalog[0]
	st := campaignState{
		TaskCursor: 4,
		Executions: 200,
		Findings: []findingSnapshot{{
			BugID:         bug.ID,
			Oracle:        "crash",
			SeedName:      "Seed0",
			TargetImpl:    string(bug.Impl),
			TargetVersion: 17,
			AtExecution:   120,
			Program:       "class Broken {", // does not re-parse
		}},
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := &harness.Checkpoint{TaskCursor: 4, Executions: 200, State: raw}
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:  corpus.DefaultPool(2, 3),
		Budget: 100, // already exhausted by the restored executions
		Fuzz:   cfg,
		Seed:   3,
	}, harness.Config{ResumePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("finding was dropped: %d findings", len(res.Findings))
	}
	if res.Findings[0].Program != nil {
		t.Error("unparseable program should restore as nil")
	}
	found := false
	for _, se := range res.SeedErrors {
		if se.Round == -1 && strings.Contains(se.Err, "did not re-parse") {
			found = true
		}
	}
	if !found {
		t.Errorf("no resume-time note about the unparseable program: %+v", res.SeedErrors)
	}
}
