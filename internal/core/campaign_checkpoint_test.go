package core

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jvm"
)

// TestCampaignCountsCheckpointWriteFailures: a checkpoint path that can
// never be written (missing parent directory) must not kill the
// campaign, but each failed flush must be counted and the last error
// surfaced — not silently dropped.
func TestCampaignCountsCheckpointWriteFailures(t *testing.T) {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:  corpus.DefaultPool(2, 3),
		Budget: 30,
		Fuzz:   cfg,
		Seed:   3,
	}, harness.Config{
		CheckpointPath: filepath.Join(t.TempDir(), "no-such-dir", "ck.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 30 {
		t.Errorf("campaign stopped early: %d executions", res.Executions)
	}
	if res.CheckpointErrors == 0 {
		t.Fatal("checkpoint write failures were not counted")
	}
	if res.LastCheckpointError == "" {
		t.Error("LastCheckpointError empty")
	}
}

func TestCampaignCheckpointErrorsZeroOnHealthyPath(t *testing.T) {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:  corpus.DefaultPool(2, 3),
		Budget: 30,
		Fuzz:   cfg,
		Seed:   3,
	}, harness.Config{
		CheckpointPath: filepath.Join(t.TempDir(), "ck.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointErrors != 0 {
		t.Errorf("CheckpointErrors = %d (last: %s), want 0", res.CheckpointErrors, res.LastCheckpointError)
	}
}

// TestResumeNotesUnparseableSnapshotProgram: a finding whose
// snapshotted reproducer no longer parses must still be restored (sans
// program) with a resume-time SeedError note, instead of the program
// being dropped silently.
func TestResumeNotesUnparseableSnapshotProgram(t *testing.T) {
	bug := buginject.Catalog[0]
	st := campaignState{
		TaskCursor: 4,
		Executions: 200,
		Findings: []findingSnapshot{{
			BugID:         bug.ID,
			Oracle:        "crash",
			SeedName:      "Seed0",
			TargetImpl:    string(bug.Impl),
			TargetVersion: 17,
			AtExecution:   120,
			Program:       "class Broken {", // does not re-parse
		}},
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := &harness.Checkpoint{TaskCursor: 4, Executions: 200, State: raw}
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:  corpus.DefaultPool(2, 3),
		Budget: 100, // already exhausted by the restored executions
		Fuzz:   cfg,
		Seed:   3,
	}, harness.Config{ResumePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("finding was dropped: %d findings", len(res.Findings))
	}
	if res.Findings[0].Program != nil {
		t.Error("unparseable program should restore as nil")
	}
	found := false
	for _, se := range res.SeedErrors {
		if se.Round == -1 && strings.Contains(se.Err, "did not re-parse") {
			found = true
		}
	}
	if !found {
		t.Errorf("no resume-time note about the unparseable program: %+v", res.SeedErrors)
	}
}

// crashingSeedSrc triggers JDK-8312744 (lock coarsening over unrolled
// sync regions) on the reference VM without any mutation, so a campaign
// over it records a crash finding deterministically.
const crashingSeedSrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    t.f = 3;
    long total = 0;
    for (int i = 0; i < 1500; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) {
        acc = acc + k + i;
      }
    }
    synchronized (this) {
      acc = acc + this.f;
    }
    return acc;
  }
}
`

// TestCheckpointFindingProvenanceRoundTrip: the v2 snapshot fields —
// cursor, round, chain length, OBV, divergence — must survive a
// save/resume cycle bit-for-bit.
func TestCheckpointFindingProvenanceRoundTrip(t *testing.T) {
	target := jvm.Reference()
	cfg := DefaultConfig(target)
	cfg.DiffSpecs = nil
	path := filepath.Join(t.TempDir(), "ck.json")
	ccfg := CampaignConfig{
		Seeds:   []corpus.Seed{{Name: "crasher", Source: crashingSeedSrc}},
		Budget:  3,
		Targets: []jvm.Spec{target},
		Fuzz:    cfg,
		Seed:    7,
	}
	res, err := RunCampaignContext(context.Background(), ccfg, harness.Config{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("the crashing seed produced no finding")
	}
	orig := res.Findings[0]
	if orig.OBV.Total() == 0 {
		t.Fatal("finding recorded no OBV (flags should be on during fuzzing)")
	}

	res2, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:   ccfg.Seeds,
		Budget:  res.Executions, // already exhausted: restore only
		Targets: ccfg.Targets,
		Fuzz:    cfg,
		Seed:    7,
	}, harness.Config{ResumePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed || len(res2.Findings) != len(res.Findings) {
		t.Fatalf("resume lost findings: %d vs %d", len(res2.Findings), len(res.Findings))
	}
	got := res2.Findings[0]
	if got.Cursor != orig.Cursor || got.Round != orig.Round || got.ChainLen != orig.ChainLen {
		t.Errorf("provenance drifted: got cursor=%d round=%d chain=%d, want cursor=%d round=%d chain=%d",
			got.Cursor, got.Round, got.ChainLen, orig.Cursor, orig.Round, orig.ChainLen)
	}
	if got.OBV != orig.OBV {
		t.Errorf("OBV drifted:\n got %v\nwant %v", got.OBV, orig.OBV)
	}
	if got.ChainLen != len(orig.Mutators) {
		t.Errorf("ChainLen = %d, want len(Mutators) = %d", got.ChainLen, len(orig.Mutators))
	}
}

// TestCheckpointDivergenceRoundTrip: a differential finding's divergence
// site is restored spec-for-spec from the v2 snapshot.
func TestCheckpointDivergenceRoundTrip(t *testing.T) {
	bug := buginject.Catalog[0]
	st := campaignState{
		TaskCursor: 2,
		Executions: 50,
		Findings: []findingSnapshot{{
			BugID:         bug.ID,
			Oracle:        "differential",
			SeedName:      "Seed0",
			TargetImpl:    string(bug.Impl),
			TargetVersion: 17,
			AtExecution:   40,
			Cursor:        1,
			Round:         0,
			ChainLen:      4,
			OBV:           []int64{3, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
			Divergence:    &divergenceSnapshot{Modal: "openjdk-8", Divergent: "openjdk-21", Index: 3},
		}},
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := &harness.Checkpoint{TaskCursor: 2, Executions: 50, State: raw}
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:  corpus.DefaultPool(2, 3),
		Budget: 50,
		Fuzz:   cfg,
		Seed:   3,
	}, harness.Config{ResumePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(res.Findings))
	}
	f := res.Findings[0]
	if f.Divergence == nil {
		t.Fatal("divergence dropped on resume")
	}
	want := jvm.Divergence{Modal: jvm.Spec{Impl: buginject.HotSpot, Version: 8},
		Divergent: jvm.Spec{Impl: buginject.HotSpot, Version: 21}, Index: 3}
	if *f.Divergence != want {
		t.Errorf("divergence = %+v, want %+v", *f.Divergence, want)
	}
	if f.ChainLen != 4 || f.Cursor != 1 || f.OBV[0] != 3 {
		t.Errorf("provenance = cursor %d chain %d obv[0] %d, want 1/4/3", f.Cursor, f.ChainLen, f.OBV[0])
	}
}
