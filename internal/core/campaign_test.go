package core

import (
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/jvm"
)

func TestCampaignRespectsBudgetAndDedups(t *testing.T) {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	res := RunCampaign(CampaignConfig{
		Seeds:   corpus.DefaultPool(4, 2),
		Budget:  300,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    cfg,
		Seed:    2,
	})
	if res.Executions < 300 {
		t.Errorf("Executions = %d, want >= budget", res.Executions)
	}
	// The budget is a soft stop: the in-flight seed finishes. One seed
	// costs at most MaxIterations+1 executions plus differential runs.
	if res.Executions > 300+cfg.MaxIterations+len(jvm.AllSpecs())+2 {
		t.Errorf("Executions = %d, overshot budget too far", res.Executions)
	}
	seen := map[string]bool{}
	for _, f := range res.Findings {
		if seen[f.Bug.ID] {
			t.Errorf("bug %s reported twice", f.Bug.ID)
		}
		seen[f.Bug.ID] = true
		if f.AtExecution <= 0 || f.AtExecution > res.Executions {
			t.Errorf("finding timestamp %d out of range", f.AtExecution)
		}
	}
	if res.SeedsFuzzed == 0 || len(res.FinalDeltas) != res.SeedsFuzzed {
		t.Errorf("SeedsFuzzed=%d FinalDeltas=%d", res.SeedsFuzzed, len(res.FinalDeltas))
	}
}

func TestCampaignDeterministic(t *testing.T) {
	run := func() []string {
		cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
		cfg.DiffSpecs = nil
		res := RunCampaign(CampaignConfig{
			Seeds:  corpus.DefaultPool(3, 5),
			Budget: 200,
			Fuzz:   cfg,
			Seed:   5,
		})
		var ids []string
		for _, f := range res.Findings {
			ids = append(ids, f.Bug.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different finding counts: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic findings: %v vs %v", a, b)
		}
	}
}

func TestCampaignHelpers(t *testing.T) {
	b1 := buginject.ByID("JDK-8312744")
	b2 := buginject.ByID("JDK-8324174")
	res := &CampaignResult{
		Findings: []Finding{
			{Bug: b1, AtExecution: 10},
			{Bug: b2, AtExecution: 20},
		},
		FinalDeltas: []float64{5, 1, 9},
	}
	if len(res.UniqueBugs()) != 2 {
		t.Error("UniqueBugs")
	}
	if !res.BugIDs()["JDK-8312744"] {
		t.Error("BugIDs")
	}
	cc := res.ComponentCounts()
	if cc["Macro Expansion, C2"] != 2 {
		t.Errorf("ComponentCounts = %v", cc)
	}
	if res.MedianDelta() != 5 {
		t.Errorf("MedianDelta = %v", res.MedianDelta())
	}
}
