package core

import (
	"context"
	"sync"

	"repro/internal/harness"
)

// campaignEngine supplies the campaign loop with one task outcome per
// cursor position. The loop itself stays the single source of truth for
// control flow (budget, dead-pool, cancellation, checkpoints); engines
// only differ in how the outcome is produced.
type campaignEngine interface {
	// do returns the supervised outcome for the task at cursor. Called
	// with strictly increasing cursors, one call per loop iteration.
	do(cursor int) *harness.Outcome
	// stop releases engine resources; no do calls may follow.
	stop()
}

// newEngine builds the execution engine. roundLen > 0 installs a round
// barrier: speculation never crosses from the merge cursor's round into
// the next one. The power schedule needs this — a round's tasks are
// only defined once the round is planned, and planning reads the
// observations merged from the previous round — while roundLen == 0
// keeps the original unbounded-window speculation (off-mode campaigns
// are byte-identical either way; the barrier only affects scheduling
// latitude, not results).
func newEngine(ctx context.Context, sup *harness.Supervisor, workers, start, roundLen int,
	mk func(cursor int) harness.Task) campaignEngine {
	if workers <= 1 {
		return &seqEngine{ctx: ctx, sup: sup, mk: mk}
	}
	return newParEngine(ctx, sup, workers, start, roundLen, mk)
}

// seqEngine is the zero-configuration path: tasks run inline on the
// calling goroutine, exactly as the pre-parallel campaign did.
type seqEngine struct {
	ctx context.Context
	sup *harness.Supervisor
	mk  func(int) harness.Task
}

func (e *seqEngine) do(cursor int) *harness.Outcome {
	return e.sup.Do(e.ctx, e.mk(cursor))
}

func (e *seqEngine) stop() {}

// parEngine shards task execution across a worker pool while preserving
// the sequential result byte-identically. It exploits the campaign's
// key invariant: a task is fully determined by its cursor (seed, round,
// target, and RNG seed all derive from it), so workers can execute
// tasks speculatively and out of order. The merge side — this engine's
// do(), called by the campaign loop in cursor order — reassembles
// outcomes in order and applies harness.Finish, which owns every
// order-dependent decision (authoritative quarantine skip checks,
// quarantine writes, completion callbacks). Workers call only
// harness.Attempt, which never writes shared supervision state.
//
// Speculation is bounded by a window of 2×workers tasks beyond the
// cursor being merged. Tasks speculated past a stop point (budget
// exhausted, dead pool, cancellation) are discarded unmerged: their
// only side effects are on order-independent shared sinks (the compile
// cache, where a hit is equivalent to a miss, and the coverage set).
type parEngine struct {
	sup      *harness.Supervisor
	mk       func(int) harness.Task
	taskCh   chan int
	outCh    chan specOutcome
	pending  map[int]*harness.Outcome
	next     int // next cursor to hand to the pool
	window   int
	roundLen int // > 0: speculation stops at round boundaries
	wg       sync.WaitGroup
}

type specOutcome struct {
	cursor int
	out    *harness.Outcome
}

func newParEngine(ctx context.Context, sup *harness.Supervisor, workers, start, roundLen int,
	mk func(int) harness.Task) *parEngine {
	window := 2 * workers
	e := &parEngine{
		sup:      sup,
		mk:       mk,
		taskCh:   make(chan int, window+2),
		outCh:    make(chan specOutcome, window+2),
		pending:  map[int]*harness.Outcome{},
		next:     start,
		window:   window,
		roundLen: roundLen,
	}
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for c := range e.taskCh {
				e.outCh <- specOutcome{cursor: c, out: e.sup.Attempt(ctx, e.mk(c))}
			}
		}()
	}
	return e
}

func (e *parEngine) do(cursor int) *harness.Outcome {
	// Keep the speculation window full. Channel capacities cover the
	// whole window, so neither this send nor a worker's result send can
	// block: outstanding tasks never exceed window+1. With a round
	// barrier, dispatch additionally stops at the merge round's end:
	// the next round's tasks are undefined until its plan is computed,
	// which happens on the merge goroutine after this round merges.
	for e.next <= cursor+e.window &&
		(e.roundLen <= 0 || e.next/e.roundLen == cursor/e.roundLen) {
		e.taskCh <- e.next
		e.next++
	}
	raw := e.pending[cursor]
	for raw == nil {
		so := <-e.outCh
		if so.cursor == cursor {
			raw = so.out
			break
		}
		e.pending[so.cursor] = so.out
	}
	delete(e.pending, cursor)
	return e.sup.Finish(e.mk(cursor), raw)
}

func (e *parEngine) stop() {
	close(e.taskCh)
	e.wg.Wait()
}
