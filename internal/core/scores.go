package core

import (
	"context"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/jvm"
	"repro/internal/profile"
)

// ScoreSeeds extracts the full feature vector for every seed: static
// AST features plus one profiling dry-run per seed — the unmutated
// program on the bug-free reference VM under the default plan, with
// the diagnostic flags and coverage instrumentation on. Dry-runs are
// deterministic and backend-independent (the exec equivalence tests
// pin OBV and coverage replay), so the vectors are byte-stable.
//
// cachePath, when non-empty, persists vectors keyed by source hash;
// resumed campaigns, fleet workers, and repeated distill requests skip
// the dry-runs for seeds they have seen. Like the triage reducer's
// probe executions, scoring runs are not counted against any campaign
// budget: they are corpus preparation, not fuzzing.
//
// A seed that fails to parse is an error (user corpora are validated
// before scoring elsewhere; generated corpora cannot fail). A seed
// whose dry-run fails with an ordinary execution error keeps its
// static features and a zero OBV — still deterministic, still
// schedulable. Backend faults (a child process died) propagate.
func ScoreSeeds(ctx context.Context, seeds []corpus.Seed, ex exec.Executor, cachePath string) ([]*corpus.Features, error) {
	var cache *corpus.ScoreCache
	if cachePath != "" {
		cache = corpus.LoadScoreCache(cachePath)
	}
	out := make([]*corpus.Features, 0, len(seeds))
	dirty := false
	for _, s := range seeds {
		hash := corpus.HashSource(s.Source)
		if ft := cache.Get(hash); ft != nil {
			// A cached vector keeps its cached name; the campaign
			// identifies seeds positionally, but reports read Name, so
			// rebind it to this pool's spelling.
			if ft.Name != s.Name {
				copied := *ft
				copied.Name = s.Name
				ft = &copied
			}
			out = append(out, ft)
			continue
		}
		p, err := s.TryParse()
		if err != nil {
			return nil, err
		}
		ft := corpus.StaticFeatures(s.Name, s.Source, p)
		tr := coverage.NewTracker()
		er, err := exec.Or(ex).Execute(ctx, p, jvm.Reference(), jvm.Options{
			Flags:         profile.DefaultFlags(),
			ForceCompile:  true,
			MaxSteps:      3_000_000,
			Coverage:      tr,
			StructuredOBV: true,
			Bugs:          []*buginject.Bug{}, // profile the clean VM
		})
		if err != nil {
			if harness.AsFault(err) != nil || ctx.Err() != nil {
				return nil, err
			}
		} else {
			ft.OBV = er.OBV.Slice()
			ft.Coverage = tr.Names()
		}
		cache.Put(ft)
		dirty = true
		out = append(out, ft)
	}
	if dirty && cache != nil {
		// The cache is an accelerator: a failed save costs re-profiling
		// later, never correctness.
		_ = cache.Save()
	}
	return out, nil
}

// DistillSeeds scores a corpus and reduces it to its maximally-diverse
// subset (corpus.Distill): the shared engine behind
// `mopfuzzer -distill`, the daemon's POST /corpus/distill, and the
// JobSpec distill knob. Returns the kept seeds in corpus order plus
// the full report.
func DistillSeeds(ctx context.Context, seeds []corpus.Seed, ex exec.Executor, cachePath string, spread float64, maxKeep int) ([]corpus.Seed, *corpus.DistillReport, error) {
	fs, err := ScoreSeeds(ctx, seeds, ex, cachePath)
	if err != nil {
		return nil, nil, err
	}
	rep := corpus.BuildDistillReport(fs, spread, maxKeep)
	kept := make([]corpus.Seed, 0, rep.Kept)
	for i, sc := range rep.Scores {
		if sc.Kept {
			kept = append(kept, seeds[i])
		}
	}
	return kept, rep, nil
}
