package core

import (
	"math/rand"
	"testing"

	"repro/internal/buginject"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// planOrderingSrc is a compact Issue-19301 witness: caller allocates a
// NoEscape local (escape analysis records BEscapeNone) and sync-inlines
// locked (the inliner records BInlineSync); locked throws on the last
// call, so a sync region that lost its exception cleanup leaks the
// monitor into the output. The hot statements all live in caller or
// locked, so the fuzzer's compile-only pragma lands on one of the two.
const planOrderingSrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    long acc = 0;
    try {
      acc = acc + t.caller(1);
      acc = acc + t.caller(5900);
    } catch (e) {
      acc = acc + e;
    }
    print(acc);
  }
  int caller(int i) {
    T tmp = new T();
    tmp.f = i;
    int v = this.locked(i);
    return v + 1 + tmp.f;
  }
  synchronized int locked(int x) { return this.f + 100 / (x - 5900); }
}`

// eaBeforeInline reports whether the plan schedules escape_analysis
// ahead of inline in C2 — the ordering class the default pipeline never
// emits, and the precondition for triggering Issue-19301.
func eaBeforeInline(p *jit.Plan) bool {
	if p == nil {
		return false
	}
	flat := append(append(append([]string(nil), p.C2.Front...), p.C2.Loop...), p.C2.Tail...)
	ea, in := -1, -1
	for i, n := range flat {
		switch n {
		case "escape_analysis":
			ea = i
		case "inline":
			in = i
		}
	}
	return ea >= 0 && in >= 0 && ea < in
}

// seedPlanSet replicates FuzzSeedContext's plan derivation: the per-seed
// plan stream is rand.NewSource(cfgSeed ^ planSeedSalt), drawing
// fuzzedPlansPerSeed plans after the fixed default.
func seedPlanSet(cfgSeed int64, mode jit.PlanMode) []*jit.Plan {
	prng := rand.New(rand.NewSource(cfgSeed ^ planSeedSalt))
	plans := []*jit.Plan{nil}
	for len(plans) < 1+fuzzedPlansPerSeed {
		plans = append(plans, jit.GeneratePlan(prng.Int63(), mode))
	}
	return plans
}

// TestPlanFuzzFindsOrderingSensitiveBug is the campaign-level acceptance
// test for the plan dimension: with -plan-fuzz=full the fuzzer detects
// Issue-19301 via the plan-differential oracle on a seed the fixed
// pipeline can never trigger it on — and with plan fuzzing off, the same
// configuration provably reports nothing.
func TestPlanFuzzFindsOrderingSensitiveBug(t *testing.T) {
	target := jvm.Spec{Impl: buginject.OpenJ9, Version: 17}

	run := func(cfgSeed int64, mode jit.PlanMode) *FuzzResult {
		t.Helper()
		cfg := DefaultConfig(target)
		cfg.MaxIterations = 0 // no mutation: the plan set is the only fuzz dimension
		cfg.DiffSpecs = nil   // isolate the plan oracle from the spec oracle
		cfg.Seed = cfgSeed
		cfg.PlanFuzz = mode
		p, err := lang.Parse(planOrderingSrc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewFuzzer(cfg).FuzzSeed("plan-ordering", p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	found := int64(-1)
	for cfgSeed := int64(1); cfgSeed <= 100 && found < 0; cfgSeed++ {
		ordered := false
		for _, p := range seedPlanSet(cfgSeed, jit.PlanFull) {
			ordered = ordered || eaBeforeInline(p)
		}
		if !ordered {
			continue // this seed's plan set cannot reach the bug; skip the execution cost
		}
		res := run(cfgSeed, jit.PlanFull)
		if len(res.PlanIDs) != 1+fuzzedPlansPerSeed || res.PlanIDs[0] != "default" {
			t.Fatalf("seed %d: plan provenance malformed: %v", cfgSeed, res.PlanIDs)
		}
		for _, fd := range res.Findings {
			if fd.Oracle == "plan-differential" && fd.Bug != nil && fd.Bug.ID == "Issue-19301" {
				if fd.PlanID == "" || fd.PlanID == "default" {
					t.Errorf("seed %d: finding lacks fuzzed-plan provenance: %q", cfgSeed, fd.PlanID)
				}
				found = cfgSeed
			}
		}
	}
	if found < 0 {
		t.Fatal("no cfg seed in 1..100 detected Issue-19301 via the plan-differential oracle")
	}

	// The identical configuration with plan fuzzing off: no plan set, no
	// plan-differential findings — the bug is unreachable by construction.
	off := run(found, jit.PlanDefault)
	if off.PlanIDs != nil {
		t.Errorf("off mode recorded a plan set: %v", off.PlanIDs)
	}
	for _, fd := range off.Findings {
		if fd.Oracle == "plan-differential" {
			t.Errorf("off mode produced a plan-differential finding: %+v", fd)
		}
		if fd.Bug != nil && fd.Bug.ID == "Issue-19301" {
			t.Errorf("off mode detected Issue-19301 via %s — ordering argument broken", fd.Oracle)
		}
	}
}
