package core

import (
	"math/rand"
	"testing"

	"repro/internal/buginject"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

func allFlags() profile.FlagSet { return profile.DefaultFlags() }

func TestExtendedMutatorSet(t *testing.T) {
	ext := ExtendedMutators()
	if len(ext) != 17 {
		t.Fatalf("extended set = %d, want 13 + 4", len(ext))
	}
	names := map[string]bool{}
	for _, m := range ext {
		if names[m.Name()] {
			t.Errorf("duplicate mutator name %q", m.Name())
		}
		names[m.Name()] = true
		if m.Evokes() == "" {
			t.Errorf("%s has no Evokes description", m.Name())
		}
	}
}

func TestAltMutatorsProduceValidPrograms(t *testing.T) {
	alts := []Mutator{
		&LoopUnrollingEvokeAlt{},
		&LockEliminationEvokeAlt{},
		&InliningEvokeAlt{},
		&DeoptimizationEvokeAlt{},
	}
	rng := rand.New(rand.NewSource(17))
	for _, m := range alts {
		t.Run(m.Name(), func(t *testing.T) {
			applied := false
			for attempt := 0; attempt < 12 && !applied; attempt++ {
				p := seedProgram(t)
				if m.Name() == "Inlining-evoke-alt" {
					// The outliner needs a field store or call statement.
					p = lang.MustParse(`
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 1200; i += 1) { total = total + t.foo(i); }
    print(total);
    print(t.f);
  }
  int foo(int i) {
    this.f = i + 1;
    int acc = i + this.f;
    return acc;
  }
}`)
					if err := lang.Check(p); err != nil {
						t.Fatal(err)
					}
				}
				// Pick any statement in T.foo the mutator accepts.
				var loc *lang.Location
				for _, l := range lang.Statements(p) {
					if l.Method.Name == "foo" && m.Applicable(l) {
						loc = l
						break
					}
				}
				if loc == nil {
					t.Fatalf("%s not applicable anywhere in T.foo", m.Name())
				}
				if _, err := m.Apply(p, loc, rng); err != nil {
					continue
				}
				if err := lang.Check(p); err != nil {
					t.Fatalf("mutant ill-typed: %v\n%s", err, lang.Format(p))
				}
				r, err := jvm.Run(p, jvm.Reference(), jvm.Options{
					ForceCompile: true, Bugs: []*buginject.Bug{}, MaxSteps: 5_000_000,
				})
				if err != nil {
					t.Fatalf("mutant rejected: %v", err)
				}
				if r.Crashed() {
					t.Fatalf("mutant crashed bug-free JVM: %v", r.Result.Crash)
				}
				applied = true
			}
			if !applied {
				t.Fatalf("%s never applied", m.Name())
			}
		})
	}
}

func TestSyncMethodAltEvokesInlineSync(t *testing.T) {
	// LockElimination-evoke-alt synthesizes a synchronized callee; the
	// JIT should report the monitors-rewired inline on compilation.
	rng := rand.New(rand.NewSource(2))
	p := seedProgram(t)
	var loc *lang.Location
	for _, l := range lang.Statements(p) {
		if l.Method.Name == "foo" {
			loc = l
			break
		}
	}
	m := &LockEliminationEvokeAlt{}
	if !m.Applicable(loc) {
		t.Fatal("not applicable")
	}
	if _, err := m.Apply(p, loc, rng); err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	r, err := jvm.Run(p, jvm.Reference(), jvm.Options{
		ForceCompile: true,
		Bugs:         []*buginject.Bug{},
		Flags:        allFlags(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.OBV.Total() == 0 {
		t.Errorf("no behaviors logged; log:\n%s", r.Log)
	}
}

func TestFuzzerWithExtendedMutators(t *testing.T) {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.ExtendedMutators = true
	cfg.MaxIterations = 10
	cfg.DiffSpecs = nil
	cfg.DisableBugs = true
	cfg.Seed = 6
	f := NewFuzzer(cfg)
	if len(f.Mutators) != 17 {
		t.Fatalf("fuzzer mutators = %d", len(f.Mutators))
	}
	res, err := f.FuzzSeed("ext", seedProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no iterations")
	}
}
