package core

import (
	"context"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jvm"
)

// TestCampaignProgressSnapshots pins the OnProgress contract: one
// snapshot per merged task in cursor order, cumulative totals that end
// exactly at the final result, and per-task deltas that reconstruct
// FinalDeltas.
func TestCampaignProgressSnapshots(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:   corpus.DefaultPool(3, 11),
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    testCampaignCfg(11),
		Seed:    11,
	}
	var snaps []Progress
	ccfg.OnProgress = func(p Progress) { snaps = append(snaps, p) }
	res, err := RunCampaignContext(context.Background(), ccfg, harness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots fired")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Cursor != snaps[i-1].Cursor+1 {
			t.Fatalf("snapshot cursors not consecutive: %d then %d", snaps[i-1].Cursor, snaps[i].Cursor)
		}
		if snaps[i].Executions < snaps[i-1].Executions {
			t.Fatalf("executions regressed: %d then %d", snaps[i-1].Executions, snaps[i].Executions)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Executions != res.Executions || last.SeedsFuzzed != res.SeedsFuzzed ||
		last.Findings != len(res.Findings) || last.Faults != len(res.Faults) ||
		last.SeedErrors != len(res.SeedErrors) || last.SkippedQuarantined != res.SkippedQuarantined {
		t.Errorf("final snapshot %+v does not match result (exec %d seeds %d findings %d faults %d)",
			last, res.Executions, res.SeedsFuzzed, len(res.Findings), len(res.Faults))
	}
	var deltas []float64
	for _, p := range snaps {
		if p.HasDelta {
			deltas = append(deltas, p.Delta)
		}
	}
	if len(deltas) != len(res.FinalDeltas) {
		t.Fatalf("%d delta-bearing snapshots, result has %d FinalDeltas", len(deltas), len(res.FinalDeltas))
	}
	for i := range deltas {
		if deltas[i] != res.FinalDeltas[i] {
			t.Errorf("delta[%d] = %v, want %v", i, deltas[i], res.FinalDeltas[i])
		}
	}

	// The snapshot stream is deterministic under -workers: same tasks,
	// same cursor order, same totals.
	var parSnaps []Progress
	pcfg := ccfg
	pcfg.Workers = 3
	pcfg.OnProgress = func(p Progress) { parSnaps = append(parSnaps, p) }
	pres, err := RunCampaignContext(context.Background(), pcfg, harness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignsEqual(t, res, pres)
	if len(parSnaps) != len(snaps) {
		t.Fatalf("parallel run fired %d snapshots, sequential %d", len(parSnaps), len(snaps))
	}
	for i := range snaps {
		a, b := snaps[i], parSnaps[i]
		if (a.Fault == nil) != (b.Fault == nil) {
			t.Errorf("snapshot[%d] fault presence differs under -workers", i)
		}
		a.Fault, b.Fault = nil, nil // pointers differ across runs; compare values only
		if a != b {
			t.Errorf("snapshot[%d] differs under -workers:\n seq %+v\n par %+v", i, snaps[i], parSnaps[i])
		}
	}
}

// TestCampaignProgressReportsFaults pins the per-task fault attachment:
// a panicking JIT pass surfaces as a snapshot with a harness fault.
func TestCampaignProgressReportsFaults(t *testing.T) {
	fcfg := testCampaignCfg(12)
	fcfg.CompileHook = panicOnClass{class: "Boom"}
	ccfg := CampaignConfig{
		Seeds:   append(corpus.DefaultPool(2, 12), boomSeed),
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    fcfg,
		Seed:    12,
	}
	var faults int
	ccfg.OnProgress = func(p Progress) {
		if p.Fault != nil {
			faults++
			if p.Fault.Class != harness.FaultHarness {
				t.Errorf("fault class = %s, want harness-fault", p.Fault.Class)
			}
		}
	}
	res, err := RunCampaignContext(context.Background(), ccfg, harness.Config{QuarantineDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if faults == 0 {
		t.Fatal("no fault-bearing snapshot fired")
	}
	if counts := res.FaultCounts(); counts[harness.FaultHarness] == 0 {
		t.Fatal("result recorded no harness fault (test premise broken)")
	}
}
