package core

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
)

// LoopUnrollingEvoke inserts a loop structure before MP wrapping a copy
// of MP (Table 1). The copy is not used as MP_n for performance reasons
// (nested loop growth); the original statement remains the MP.
type LoopUnrollingEvoke struct{}

func (LoopUnrollingEvoke) Name() string   { return "LoopUnrolling-evoke" }
func (LoopUnrollingEvoke) Evokes() string { return "loop unrolling" }
func (LoopUnrollingEvoke) Applicable(loc *lang.Location) bool {
	return true
}

func (LoopUnrollingEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	// Trip counts chosen to exercise the unroller: small counts fully
	// unroll, 16/20 take the pre/main/post partial path.
	trips := []int64{3, 4, 6, 8, 16, 20}[rng.Intn(6)]
	v := lang.FreshVar(loc.Method, "lu")
	body := lang.Register(p, &lang.Block{Stmts: []lang.Stmt{copyRegion(p, loc)}})
	loop := lang.Register(p, &lang.For{
		Var:  v,
		From: &lang.IntLit{V: 0},
		To:   &lang.IntLit{V: trips},
		Step: 1,
		Body: body,
	})
	loc.InsertBefore(loop)
	return MP{ID: loc.Stmt.ID()}, nil
}

// LockEliminationEvoke wraps MP in a synchronized body. The monitor is a
// valid object in scope, the receiver, a class-wide string constant, or
// a fresh non-escaping allocation (prime lock-elision food).
type LockEliminationEvoke struct{}

func (LockEliminationEvoke) Name() string   { return "LockElimination-evoke" }
func (LockEliminationEvoke) Evokes() string { return "lock elimination" }
func (LockEliminationEvoke) Applicable(loc *lang.Location) bool {
	return true
}

func (LockEliminationEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	var monitor lang.Expr
	objs := objectsInScope(loc)
	switch {
	case len(objs) > 0 && rng.Intn(3) != 0:
		monitor = &lang.VarRef{Name: objs[rng.Intn(len(objs))].Name}
	case rng.Intn(2) == 0:
		// The class-constant monitor (synchronized (T.class) analogue):
		// a string literal locks a shared interned object.
		monitor = &lang.StrLit{V: loc.Class.Name + ".class"}
	default:
		monitor = &lang.New{Class: loc.Class.Name}
	}
	// A declaration cannot simply move inside the region (its scope
	// would shrink past the closing brace), so it splits into a hoisted
	// default-initialized declaration and a locked assignment — which is
	// what javac's scoping would force a human to write too.
	if vd, ok := loc.Stmt.(*lang.VarDecl); ok {
		var zero lang.Expr
		switch vd.Ty.Kind {
		case lang.KindInt, lang.KindLong:
			zero = &lang.IntLit{V: 0}
		case lang.KindBool:
			zero = &lang.BoolLit{V: false}
		default:
			return MP{}, fmt.Errorf("mutator: cannot hoist %s declaration out of a lock region", vd.Ty)
		}
		assign := lang.Register(p, &lang.Assign{
			Target: &lang.VarRef{Name: vd.Name},
			Value:  vd.Init,
		})
		vd.Init = zero
		body := lang.Register(p, &lang.Block{Stmts: []lang.Stmt{assign}})
		sync := lang.Register(p, &lang.Sync{Monitor: monitor, Body: body})
		loc.InsertAfter(sync)
		return MP{ID: assign.ID()}, nil
	}
	inner := loc.Stmt
	body := lang.Register(p, &lang.Block{Stmts: []lang.Stmt{inner}})
	sync := lang.Register(p, &lang.Sync{Monitor: monitor, Body: body})
	loc.Replace(sync)
	return MP{ID: inner.ID()}, nil
}

// LockCoarseningEvoke requires MP to be inside a synchronized body and
// splits that body into two synchronized bodies on the same monitor,
// with MP opening the second (Table 1).
type LockCoarseningEvoke struct{}

func (LockCoarseningEvoke) Name() string   { return "LockCoarsening-evoke" }
func (LockCoarseningEvoke) Evokes() string { return "lock coarsening" }
func (LockCoarseningEvoke) Applicable(loc *lang.Location) bool {
	return loc.InnermostSync() != nil
}

func (LockCoarseningEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	sync := loc.InnermostSync()
	if sync == nil {
		return MP{}, fmt.Errorf("mutator: MP not inside synchronized body")
	}
	// Find MP's index chain: the statement at the top level of sync.Body
	// that contains (or is) the MP.
	idx := -1
	for i, s := range sync.Body.Stmts {
		if s.ID() == loc.Stmt.ID() || containsID(s, loc.Stmt.ID()) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return MP{}, fmt.Errorf("mutator: MP not found at sync body top level")
	}
	first := sync.Body.Stmts[:idx]
	second := sync.Body.Stmts[idx:]
	if len(first) == 0 {
		// Nothing precedes MP: split after it instead, keeping MP in the
		// first region.
		if len(second) < 2 {
			// A single-statement region cannot split; duplicate the lock
			// around a no-op-ish statement by cloning MP's region shape:
			// insert an empty-bodied sibling region before.
			sibling := lang.Register(p, &lang.Sync{
				Monitor: lang.CloneExpr(sync.Monitor),
				Body:    lang.Register(p, &lang.Block{}),
			})
			// Place it adjacent to the enclosing sync.
			outer := lang.Find(p, sync.ID())
			if outer == nil {
				return MP{}, fmt.Errorf("mutator: enclosing sync lost")
			}
			outer.InsertBefore(sibling)
			return MP{ID: loc.Stmt.ID()}, nil
		}
		first = second[:1]
		second = second[1:]
	}
	sync.Body.Stmts = first
	secondBlock := lang.Register(p, &lang.Block{Stmts: second})
	secondSync := lang.Register(p, &lang.Sync{
		Monitor: lang.CloneExpr(sync.Monitor),
		Body:    secondBlock,
	})
	outer := lang.Find(p, sync.ID())
	if outer == nil {
		return MP{}, fmt.Errorf("mutator: enclosing sync lost")
	}
	outer.InsertAfter(secondSync)
	return MP{ID: loc.Stmt.ID()}, nil
}

func containsID(s lang.Stmt, id int) bool {
	found := false
	lang.WalkStmts(s, func(st lang.Stmt) bool {
		if st.ID() == id {
			found = true
		}
		return !found
	})
	return found
}

// InliningEvoke requires a binary expression in MP and replaces it with
// a call to a new function performing the same operation (Table 1).
type InliningEvoke struct{}

func (InliningEvoke) Name() string   { return "Inlining-evoke" }
func (InliningEvoke) Evokes() string { return "inlining" }
func (InliningEvoke) Applicable(loc *lang.Location) bool {
	return firstBinary(loc.Stmt) != nil
}

func (InliningEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	slot := firstBinary(loc.Stmt)
	if slot == nil {
		return MP{}, fmt.Errorf("mutator: no binary expression in MP")
	}
	bin := slot.get().(*lang.Binary)
	name := lang.FreshMethod(loc.Class, "mop_fn")
	// static int mop_fnN(int x, int y) { return x <op> y; }
	ret := lang.Register(p, &lang.Return{E: &lang.Binary{
		Op: bin.Op,
		L:  &lang.VarRef{Name: "x"},
		R:  &lang.VarRef{Name: "y"},
	}})
	m := &lang.Method{
		Name:   name,
		Params: []lang.Param{{Name: "x", Ty: lang.Int}, {Name: "y", Ty: lang.Int}},
		Ret:    lang.Int,
		Static: true,
		Body:   lang.Register(p, &lang.Block{Stmts: []lang.Stmt{ret}}),
	}
	loc.Class.Methods = append(loc.Class.Methods, m)
	slot.set(&lang.Call{Class: loc.Class.Name, Method: name, Args: []lang.Expr{bin.L, bin.R}})
	return MP{ID: loc.Stmt.ID()}, nil
}

// DeReflectionEvoke requires a function call or field access in MP and
// routes it through the reflection mechanism (Table 1).
type DeReflectionEvoke struct{}

func (DeReflectionEvoke) Name() string   { return "DeReflection-evoke" }
func (DeReflectionEvoke) Evokes() string { return "de-reflection" }
func (DeReflectionEvoke) Applicable(loc *lang.Location) bool {
	return containsCallOrFieldAccess(loc.Stmt)
}

func (DeReflectionEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	converted := false
	var rewrite func(e lang.Expr) lang.Expr
	rewrite = func(e lang.Expr) lang.Expr {
		if converted || e == nil {
			return e
		}
		switch n := e.(type) {
		case *lang.Call:
			n.Recv = rewrite(n.Recv)
			for i := range n.Args {
				n.Args[i] = rewrite(n.Args[i])
			}
			if converted {
				return n
			}
			converted = true
			return &lang.ReflectCall{Class: n.Class, Method: n.Method, Recv: n.Recv, Args: n.Args}
		case *lang.FieldRef:
			n.Recv = rewrite(n.Recv)
			if converted {
				return n
			}
			converted = true
			return &lang.ReflectFieldGet{Class: n.Class, Name: n.Name, Recv: n.Recv}
		case *lang.Binary:
			n.L = rewrite(n.L)
			n.R = rewrite(n.R)
		case *lang.Unary:
			n.X = rewrite(n.X)
		case *lang.Box:
			n.X = rewrite(n.X)
		case *lang.Unbox:
			n.X = rewrite(n.X)
		case *lang.Widen:
			n.X = rewrite(n.X)
		case *lang.Index:
			n.Arr = rewrite(n.Arr)
			n.Idx = rewrite(n.Idx)
		case *lang.Cond:
			n.C, n.T, n.F = rewrite(n.C), rewrite(n.T), rewrite(n.F)
		}
		return e
	}
	rewriteStmtExprs(loc.Stmt, rewrite)
	if !converted {
		return MP{}, fmt.Errorf("mutator: no call or field access in MP")
	}
	return MP{ID: loc.Stmt.ID()}, nil
}

// rewriteStmtExprs maps fn over the statement's direct expressions.
func rewriteStmtExprs(s lang.Stmt, fn func(lang.Expr) lang.Expr) {
	switch n := s.(type) {
	case *lang.VarDecl:
		n.Init = fn(n.Init)
	case *lang.Assign:
		n.Value = fn(n.Value)
	case *lang.ExprStmt:
		n.E = fn(n.E)
	case *lang.If:
		n.Cond = fn(n.Cond)
	case *lang.While:
		n.Cond = fn(n.Cond)
	case *lang.Sync:
		n.Monitor = fn(n.Monitor)
	case *lang.Return:
		if n.E != nil {
			n.E = fn(n.E)
		}
	case *lang.Throw:
		n.E = fn(n.E)
	case *lang.Print:
		n.E = fn(n.E)
	case *lang.For:
		n.From = fn(n.From)
		n.To = fn(n.To)
	}
}

// LoopPeelingEvoke inserts before MP a counted loop whose body branches
// on the first iteration — the shape the peeling heuristic targets. The
// branch wraps a copy of MP so peeled code nests the existing code.
type LoopPeelingEvoke struct{}

func (LoopPeelingEvoke) Name() string   { return "LoopPeeling-evoke" }
func (LoopPeelingEvoke) Evokes() string { return "loop peeling" }
func (LoopPeelingEvoke) Applicable(loc *lang.Location) bool {
	return true
}

func (LoopPeelingEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	v := lang.FreshVar(loc.Method, "lp")
	guarded := lang.Register(p, &lang.If{
		Cond: &lang.Binary{Op: lang.OpEq, L: &lang.VarRef{Name: v}, R: &lang.IntLit{V: 0}},
		Then: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{copyRegion(p, loc)}}),
	})
	loop := lang.Register(p, &lang.For{
		Var:  v,
		From: &lang.IntLit{V: 0},
		To:   &lang.IntLit{V: int64(3 + rng.Intn(6))},
		Step: 1,
		Body: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{guarded}}),
	})
	loc.InsertBefore(loop)
	return MP{ID: loc.Stmt.ID()}, nil
}

// LoopUnswitchingEvoke inserts before MP a loop whose body holds a
// loop-invariant branch (unswitching's shape), with a copy of MP under
// one arm.
type LoopUnswitchingEvoke struct{}

func (LoopUnswitchingEvoke) Name() string   { return "LoopUnswitching-evoke" }
func (LoopUnswitchingEvoke) Evokes() string { return "loop unswitching" }
func (LoopUnswitchingEvoke) Applicable(loc *lang.Location) bool {
	return true
}

func (LoopUnswitchingEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	flag := lang.FreshVar(loc.Method, "uw")
	ints := intVarsInScope(loc)
	var src lang.Expr = &lang.IntLit{V: int64(rng.Intn(7))}
	if len(ints) > 0 {
		src = &lang.VarRef{Name: ints[rng.Intn(len(ints))]}
	}
	decl := lang.Register(p, &lang.VarDecl{
		Name: flag, Ty: lang.Bool,
		Init: &lang.Binary{Op: lang.OpEq,
			L: &lang.Binary{Op: lang.OpAnd, L: src, R: &lang.IntLit{V: 1}},
			R: &lang.IntLit{V: 0}},
	})
	v := lang.FreshVar(loc.Method, "us")
	branch := lang.Register(p, &lang.If{
		Cond: &lang.VarRef{Name: flag},
		Then: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{copyRegion(p, loc)}}),
		Else: lang.Register(p, &lang.Block{}),
	})
	loop := lang.Register(p, &lang.For{
		Var:  v,
		From: &lang.IntLit{V: 0},
		To:   &lang.IntLit{V: int64(4 + rng.Intn(5))},
		Step: 1,
		Body: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{branch}}),
	})
	loc.InsertBefore(decl)
	loc.InsertBefore(loop)
	return MP{ID: loc.Stmt.ID()}, nil
}

// DeoptimizationEvoke inserts before MP an uncommon-trap-shaped guard: a
// comparison of an in-scope int against a large constant, wrapping a
// copy of MP. The compiler speculates the branch never taken; when the
// driver eventually satisfies it, the compiled code deoptimizes.
type DeoptimizationEvoke struct{}

func (DeoptimizationEvoke) Name() string   { return "Deoptimization-evoke" }
func (DeoptimizationEvoke) Evokes() string { return "deoptimization" }
func (DeoptimizationEvoke) Applicable(loc *lang.Location) bool {
	return len(intVarsInScope(loc)) > 0
}

func (DeoptimizationEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	ints := intVarsInScope(loc)
	if len(ints) == 0 {
		return MP{}, fmt.Errorf("mutator: no int variable in scope")
	}
	v := ints[rng.Intn(len(ints))]
	big := int64(300 + rng.Intn(3)*300)
	guard := lang.Register(p, &lang.If{
		Cond: &lang.Binary{Op: lang.OpGt, L: &lang.VarRef{Name: v}, R: &lang.IntLit{V: big}},
		Then: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{copyRegion(p, loc)}}),
	})
	loc.InsertBefore(guard)
	return MP{ID: loc.Stmt.ID()}, nil
}

// AutoboxEliminationEvoke requires an int expression in MP and wraps it
// in a boxing round-trip: Integer.valueOf(e).intValue().
type AutoboxEliminationEvoke struct{}

func (AutoboxEliminationEvoke) Name() string   { return "AutoboxElimination-evoke" }
func (AutoboxEliminationEvoke) Evokes() string { return "autobox elimination" }
func (AutoboxEliminationEvoke) Applicable(loc *lang.Location) bool {
	return len(intExprSlots(loc.Stmt)) > 0
}

func (AutoboxEliminationEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	slot := pickIntExpr(loc, rng)
	if slot == nil {
		return MP{}, fmt.Errorf("mutator: no int expression in MP")
	}
	slot.set(&lang.Unbox{X: &lang.Box{X: slot.get()}})
	return MP{ID: loc.Stmt.ID()}, nil
}

// RedundantStoreEvoke requires MP to be a store (to a variable or
// field) and inserts a redundant store to the same target before it.
type RedundantStoreEvoke struct{}

func (RedundantStoreEvoke) Name() string   { return "RedundantStore-evoke" }
func (RedundantStoreEvoke) Evokes() string { return "redundant store elimination" }
func (RedundantStoreEvoke) Applicable(loc *lang.Location) bool {
	switch n := loc.Stmt.(type) {
	case *lang.Assign:
		return n.Target.ResultType().Kind == lang.KindInt || n.Target.ResultType().Kind == lang.KindLong
	case *lang.VarDecl:
		return n.Ty.Kind == lang.KindInt || n.Ty.Kind == lang.KindLong
	}
	return false
}

func (RedundantStoreEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	val := &lang.IntLit{V: int64(rng.Intn(100))}
	switch n := loc.Stmt.(type) {
	case *lang.Assign:
		dead := lang.Register(p, &lang.Assign{Target: lang.CloneExpr(n.Target), Value: val})
		loc.InsertBefore(dead)
	case *lang.VarDecl:
		// Declarations get their redundancy after: v = dead; v = v (keep).
		dead := lang.Register(p, &lang.Assign{Target: &lang.VarRef{Name: n.Name}, Value: val})
		redef := lang.Register(p, &lang.Assign{
			Target: &lang.VarRef{Name: n.Name},
			Value:  lang.CloneExpr(n.Init),
		})
		loc.InsertAfter(redef)
		loc.InsertAfter(dead)
	default:
		return MP{}, fmt.Errorf("mutator: MP is not a store")
	}
	return MP{ID: loc.Stmt.ID()}, nil
}

// AlgebraicSimplificationEvoke requires an int expression in MP and
// rewrites it into an algebraically reducible form.
type AlgebraicSimplificationEvoke struct{}

func (AlgebraicSimplificationEvoke) Name() string   { return "AlgebraicSimplification-evoke" }
func (AlgebraicSimplificationEvoke) Evokes() string { return "algebraic simplification" }
func (AlgebraicSimplificationEvoke) Applicable(loc *lang.Location) bool {
	return len(intExprSlots(loc.Stmt)) > 0
}

func (AlgebraicSimplificationEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	slot := pickIntExpr(loc, rng)
	if slot == nil {
		return MP{}, fmt.Errorf("mutator: no int expression in MP")
	}
	e := slot.get()
	switch rng.Intn(4) {
	case 0: // (e + 0)
		slot.set(&lang.Binary{Op: lang.OpAdd, L: e, R: &lang.IntLit{V: 0}})
	case 1: // (e * 1)
		slot.set(&lang.Binary{Op: lang.OpMul, L: e, R: &lang.IntLit{V: 1}})
	case 2: // (e * 2) — strength-reducible
		slot.set(&lang.Binary{Op: lang.OpMul, L: e, R: &lang.IntLit{V: 2}})
	default: // (e | 0) with a constant-folding neighbor
		slot.set(&lang.Binary{Op: lang.OpOr,
			L: e,
			R: &lang.Binary{Op: lang.OpSub, L: &lang.IntLit{V: 7}, R: &lang.IntLit{V: 7}}})
	}
	return MP{ID: loc.Stmt.ID()}, nil
}

// EscapeAnalysisEvoke inserts a non-escaping allocation around MP: a
// fresh object whose fields are written and read locally, then discarded.
type EscapeAnalysisEvoke struct{}

func (EscapeAnalysisEvoke) Name() string   { return "EscapeAnalysis-evoke" }
func (EscapeAnalysisEvoke) Evokes() string { return "escape analysis" }
func (EscapeAnalysisEvoke) Applicable(loc *lang.Location) bool {
	return firstIntFieldClass(loc) != ""
}

// firstIntFieldClass returns a class with a non-static int field,
// preferring the enclosing class.
func firstIntFieldClass(loc *lang.Location) string {
	hasIntField := func(c *lang.Class) bool {
		for _, f := range c.Fields {
			if !f.Static && f.Ty.Kind == lang.KindInt {
				return true
			}
		}
		return false
	}
	if hasIntField(loc.Class) {
		return loc.Class.Name
	}
	return ""
}

func (EscapeAnalysisEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	class := firstIntFieldClass(loc)
	if class == "" {
		return MP{}, fmt.Errorf("mutator: no class with an int field")
	}
	var field string
	for _, f := range loc.Class.Fields {
		if !f.Static && f.Ty.Kind == lang.KindInt {
			field = f.Name
			break
		}
	}
	obj := lang.FreshVar(loc.Method, "ea")
	snk := lang.FreshVar(loc.Method, "eas")
	ints := intVarsInScope(loc)
	var val lang.Expr = &lang.IntLit{V: int64(rng.Intn(100))}
	if len(ints) > 0 {
		val = &lang.VarRef{Name: ints[rng.Intn(len(ints))]}
	}
	decl := lang.Register(p, &lang.VarDecl{Name: obj, Ty: lang.ObjectType(class), Init: &lang.New{Class: class}})
	store := lang.Register(p, &lang.Assign{
		Target: &lang.FieldRef{Recv: &lang.VarRef{Name: obj}, Class: class, Name: field},
		Value:  val,
	})
	load := lang.Register(p, &lang.VarDecl{Name: snk, Ty: lang.Int,
		Init: &lang.Binary{Op: lang.OpAdd,
			L: &lang.FieldRef{Recv: &lang.VarRef{Name: obj}, Class: class, Name: field},
			R: &lang.IntLit{V: 1}}})
	loc.InsertBefore(decl)
	loc.InsertBefore(store)
	loc.InsertBefore(load)
	return MP{ID: loc.Stmt.ID()}, nil
}

// DeadCodeEliminationEvoke inserts dead code around MP: either a pure
// computation into a never-read local, or a branch whose condition folds
// to false wrapping a copy of MP.
type DeadCodeEliminationEvoke struct{}

func (DeadCodeEliminationEvoke) Name() string   { return "DeadCodeElimination-evoke" }
func (DeadCodeEliminationEvoke) Evokes() string { return "dead code elimination" }
func (DeadCodeEliminationEvoke) Applicable(loc *lang.Location) bool {
	return true
}

func (DeadCodeEliminationEvoke) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (MP, error) {
	ints := intVarsInScope(loc)
	if rng.Intn(2) == 0 || len(ints) == 0 {
		dead := lang.FreshVar(loc.Method, "dc")
		var e lang.Expr = &lang.Binary{Op: lang.OpMul, L: &lang.IntLit{V: 13}, R: &lang.IntLit{V: 77}}
		if len(ints) > 0 {
			e = &lang.Binary{Op: lang.OpXor, L: &lang.VarRef{Name: ints[rng.Intn(len(ints))]}, R: e}
		}
		decl := lang.Register(p, &lang.VarDecl{Name: dead, Ty: lang.Int, Init: e})
		loc.InsertBefore(decl)
		return MP{ID: loc.Stmt.ID()}, nil
	}
	// if (3 > 5) { copy of MP } — a constant-foldable dead branch.
	guard := lang.Register(p, &lang.If{
		Cond: &lang.Binary{Op: lang.OpGt, L: &lang.IntLit{V: 3}, R: &lang.IntLit{V: 5}},
		Then: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{copyRegion(p, loc)}}),
	})
	loc.InsertBefore(guard)
	return MP{ID: loc.Stmt.ID()}, nil
}
