package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lang"
)

// Table 1 of the paper illustrates five mutators on the statement
// `m = a + t.f();`. These tests apply each mutator to exactly that
// mutation point and check the transformation shape the table shows.

const table1Seed = `
class T {
  int fld;
  static void main() {
    T t = new T();
    int a = 3;
    int m = 0;
    m = a + t.f();
    print(m);
  }
  int f() { return this.fld + 1; }
}
`

// table1MP locates `m = a + t.f();`.
func table1MP(t *testing.T, p *lang.Program) *lang.Location {
	t.Helper()
	for _, loc := range lang.Statements(p) {
		if a, ok := loc.Stmt.(*lang.Assign); ok {
			if v, ok := a.Target.(*lang.VarRef); ok && v.Name == "m" {
				return loc
			}
		}
	}
	t.Fatal("Table 1 MP not found")
	return nil
}

func table1Program(t *testing.T) *lang.Program {
	t.Helper()
	p := lang.MustParse(table1Seed)
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTable1LoopUnrolling(t *testing.T) {
	// "Insert a loop structure before MP. The loop structure wraps a
	// copy of MP. We do not use the copy of MP as MP_n."
	p := table1Program(t)
	loc := table1MP(t, p)
	origID := loc.Stmt.ID()
	m := &LoopUnrollingEvoke{}
	mp, err := m.Apply(p, loc, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if mp.ID != origID {
		t.Error("MP_n must remain the original statement, not the copy")
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	src := lang.Format(p)
	// The loop with the copy precedes the original statement.
	iLoop := strings.Index(src, "for (int lu0")
	iOrig := strings.LastIndex(src, "m = (a + t.f())")
	if iLoop < 0 || iOrig < 0 || iLoop > iOrig {
		t.Errorf("loop not inserted before MP:\n%s", src)
	}
	if strings.Count(src, "(a + t.f())") != 2 {
		t.Errorf("MP copy count wrong:\n%s", src)
	}
}

func TestTable1LockElimination(t *testing.T) {
	// "Wrap MP in a synchronized body... MP_n is the statement inside."
	p := table1Program(t)
	loc := table1MP(t, p)
	origID := loc.Stmt.ID()
	m := &LockEliminationEvoke{}
	mp, err := m.Apply(p, loc, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if mp.ID != origID {
		t.Errorf("MP_n should be the wrapped statement")
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	newLoc := mp.Locate(p)
	if newLoc.InnermostSync() == nil {
		t.Errorf("MP not inside a synchronized body:\n%s", lang.Format(p))
	}
}

func TestTable1LockCoarsening(t *testing.T) {
	// "If MP is in a synchronized body, split this body into two
	// synchronized bodies with the same synchronized object."
	p := table1Program(t)
	loc := table1MP(t, p)
	le := &LockEliminationEvoke{}
	mp, err := le.Apply(p, loc, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	lc := &LockCoarseningEvoke{}
	newLoc := mp.Locate(p)
	if !lc.Applicable(newLoc) {
		t.Fatal("coarsening-evoke must be applicable inside a sync body")
	}
	if _, err := lc.Apply(p, newLoc, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	src := lang.Format(p)
	if strings.Count(src, "synchronized") < 2 {
		t.Errorf("body not split into two synchronized regions:\n%s", src)
	}
	// Both regions lock the same monitor expression.
	first := strings.Index(src, "synchronized (")
	second := strings.Index(src[first+1:], "synchronized (")
	if second < 0 {
		t.Fatalf("second region missing:\n%s", src)
	}
	monOf := func(i int) string {
		rest := src[i:]
		return rest[:strings.Index(rest, ")")]
	}
	if monOf(first) != monOf(first+1+second) {
		t.Errorf("split regions lock different monitors:\n%s", src)
	}
}

func TestTable1Inlining(t *testing.T) {
	// "If MP contains a binary expression, replace it with a function
	// call, with the variables involved passed as arguments"; plus the
	// generated declaration performing the same operation.
	p := table1Program(t)
	loc := table1MP(t, p)
	m := &InliningEvoke{}
	if !m.Applicable(loc) {
		t.Fatal("binary expression present, must be applicable")
	}
	if _, err := m.Apply(p, loc, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	src := lang.Format(p)
	if !strings.Contains(src, "m = T.mop_fn0(a, t.f())") {
		t.Errorf("binary expression not outlined into a call:\n%s", src)
	}
	if !strings.Contains(src, "static int mop_fn0(int x, int y)") {
		t.Errorf("generated function declaration missing:\n%s", src)
	}
	if !strings.Contains(src, "return (x + y);") {
		t.Errorf("generated function must perform the original operation:\n%s", src)
	}
}

func TestTable1DeReflection(t *testing.T) {
	// "If MP contains a function call or field access, replace it with a
	// reflection call through the Java reflection mechanism."
	p := table1Program(t)
	loc := table1MP(t, p)
	m := &DeReflectionEvoke{}
	if !m.Applicable(loc) {
		t.Fatal("call present, must be applicable")
	}
	if _, err := m.Apply(p, loc, rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	src := lang.Format(p)
	if !strings.Contains(src, `reflect_invoke("T", "f", t)`) {
		t.Errorf("call not routed through reflection:\n%s", src)
	}
}

func TestTable1ConditionalMutatorsRejectBareStatement(t *testing.T) {
	// On `print(m);` (no binary expr, no call/field access after m is a
	// plain variable), the conditional mutators must not apply.
	p := table1Program(t)
	var printLoc *lang.Location
	for _, loc := range lang.Statements(p) {
		if _, ok := loc.Stmt.(*lang.Print); ok {
			printLoc = loc
		}
	}
	if printLoc == nil {
		t.Fatal("print not found")
	}
	if (&LockCoarseningEvoke{}).Applicable(printLoc) {
		t.Error("LockCoarsening-evoke requires an enclosing sync body")
	}
	if (&InliningEvoke{}).Applicable(printLoc) {
		t.Error("Inlining-evoke requires a binary expression")
	}
	if (&DeReflectionEvoke{}).Applicable(printLoc) {
		t.Error("DeReflection-evoke requires a call or field access")
	}
}

func TestSixUnconditionalMutators(t *testing.T) {
	// §3.3: "Among the designed 13 mutators, 6 types are unconditional."
	p := table1Program(t)
	var bare *lang.Location
	for _, loc := range lang.Statements(p) {
		if _, ok := loc.Stmt.(*lang.Print); ok {
			bare = loc
		}
	}
	unconditional := 0
	for _, m := range AllMutators() {
		if m.Applicable(bare) {
			unconditional++
		}
	}
	// print(m) offers an int expression, so the expression-conditioned
	// mutators also apply here; count the truly unconditional ones by a
	// statement with no expressions at all: a bare return in a void
	// helper.
	p2 := lang.MustParse(`class T { static void main() { T.v(); } static void v() { return; } }`)
	if err := lang.Check(p2); err != nil {
		t.Fatal(err)
	}
	var ret *lang.Location
	for _, loc := range lang.Statements(p2) {
		if r, ok := loc.Stmt.(*lang.Return); ok && r.E == nil {
			ret = loc
		}
	}
	names := []string{}
	for _, m := range AllMutators() {
		if m.Applicable(ret) {
			names = append(names, m.Name())
		}
	}
	// LoopUnrolling, LockElimination, LoopPeeling, LoopUnswitching,
	// DeadCodeElimination are structurally unconditional; EscapeAnalysis
	// needs a class with an int field (absent here); Deoptimization
	// needs an int in scope (absent here).
	want := map[string]bool{
		"LoopUnrolling-evoke": true, "LockElimination-evoke": true,
		"LoopPeeling-evoke": true, "LoopUnswitching-evoke": true,
		"DeadCodeElimination-evoke": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected mutator applicable to bare return: %s", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("mutator %s should apply to a bare return", n)
	}
}
