package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
)

// panicOnClass is the test-only injectable panicking JIT pass: it blows
// up the compiler whenever a method of the target class is compiled,
// modeling a Go-level defect in the substrate rather than a seeded
// simulated bug.
type panicOnClass struct{ class string }

func (h panicOnClass) Observe(ctx *jit.Context, ev jit.Event) error {
	if ctx.Fn.Class == h.class {
		panic("injected JIT pass panic in " + ctx.Fn.Class + "." + ctx.Fn.Name)
	}
	return nil
}

// boomSeed compiles fine but panics the (hooked) JIT: its workload
// method is hot, so -Xcomp tiers it up on the first call.
var boomSeed = corpus.Seed{Name: "Boom", Source: `
class Boom {
  static void main() {
    long t = 0;
    for (int i = 0; i < 200; i += 1) {
      t = t + Boom.work(i);
    }
    print(t);
  }
  static int work(int x) {
    int y = x * 3 + 1;
    return y;
  }
}
`}

// allocSeed is the fuel-proof infinite allocator: each iteration burns
// a handful of interpreter steps but 5001 heap units, so a heap cap
// fires long before the step-fuel budget would.
var allocSeed = corpus.Seed{Name: "Alloc", Source: `
class Alloc {
  static void main() {
    long s = 0;
    for (int i = 0; i < 2000000; i += 1) {
      int[] a = new int[5000];
      s = s + a[0] + Alloc.work(i);
    }
    print(s);
  }
  static int work(int x) {
    int y = x + 1;
    return y;
  }
}
`}

// emptySeed parses but has no statements, so FuzzSeed rejects it.
var emptySeed = corpus.Seed{Name: "Empty", Source: `
class Empty {
  static void main() { }
}
`}

func testCampaignCfg(seed int64) Config {
	cfg := DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.DiffSpecs = nil
	cfg.Seed = seed
	return cfg
}

func TestCampaignRecordsSeedErrors(t *testing.T) {
	pool := append(corpus.DefaultPool(2, 3), emptySeed)
	res := RunCampaign(CampaignConfig{
		Seeds:   pool,
		Budget:  120,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    testCampaignCfg(3),
		Seed:    3,
	})
	if res.Executions < 120 {
		t.Errorf("Executions = %d, want budget reached despite the broken seed", res.Executions)
	}
	if len(res.SeedErrors) == 0 {
		t.Fatal("FuzzSeed error swallowed: no SeedErrors recorded")
	}
	se := res.SeedErrors[0]
	if se.SeedName != "Empty" || se.Err == "" {
		t.Errorf("SeedError = %+v", se)
	}
}

func TestCampaignSurvivesPanickingJITPass(t *testing.T) {
	qdir := t.TempDir()
	fcfg := testCampaignCfg(4)
	fcfg.CompileHook = panicOnClass{class: "Boom"}
	pool := append(corpus.DefaultPool(2, 4), boomSeed)
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:   pool,
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    fcfg,
		Seed:    4,
	}, harness.Config{QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 150 {
		t.Errorf("Executions = %d, want budget completion despite the panicking pass", res.Executions)
	}
	counts := res.FaultCounts()
	if counts[harness.FaultHarness] == 0 {
		t.Fatalf("no harness-fault recorded; faults = %+v", res.Faults)
	}
	var fault *harness.Fault
	for _, f := range res.Faults {
		if f.Class == harness.FaultHarness {
			fault = f
		}
	}
	if fault.SeedName != "Boom" || fault.Component != "jit" {
		t.Errorf("fault = %+v, want Boom blamed on jit", fault)
	}
	if fault.QuarantinePath == "" {
		t.Fatal("panicking mutant not quarantined")
	}
	if _, err := os.Stat(fault.QuarantinePath); err != nil {
		t.Errorf("quarantine artifact missing: %v", err)
	}
	// Later rounds skip the quarantined seed instead of re-panicking.
	if res.SkippedQuarantined == 0 {
		t.Error("quarantined seed was not skipped on later rounds")
	}
}

func TestCampaignClassifiesHeapExhaustion(t *testing.T) {
	qdir := t.TempDir()
	fcfg := testCampaignCfg(5)
	fcfg.MaxHeapUnits = 20_000
	pool := append(corpus.DefaultPool(2, 5), allocSeed)
	res, err := RunCampaignContext(context.Background(), CampaignConfig{
		Seeds:   pool,
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    fcfg,
		Seed:    5,
	}, harness.Config{QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 150 {
		t.Errorf("Executions = %d, want budget completion despite the allocator seed", res.Executions)
	}
	var fault *harness.Fault
	for _, f := range res.Faults {
		if f.Class == harness.FaultHeapExhausted && f.SeedName == "Alloc" {
			fault = f
		}
	}
	if fault == nil {
		t.Fatalf("no heap-exhausted fault for Alloc; faults = %+v", res.Faults)
	}
	if fault.QuarantinePath == "" {
		t.Fatal("heap-exhaustion trigger not quarantined")
	}
	if fi, err := os.Stat(fault.QuarantinePath); err != nil || fi.Size() == 0 {
		t.Errorf("quarantine artifact missing/empty: %v", err)
	}
	if fault.Source == "" {
		t.Error("fault lost the triggering program source")
	}
}

// TestCampaignHarnessMatchesSequentialMode pins the refactor invariant:
// the supervised engine (watchdog armed but never firing) produces the
// exact result of the default deterministic mode.
func TestCampaignHarnessMatchesSequentialMode(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:   corpus.DefaultPool(3, 6),
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    testCampaignCfg(6),
		Seed:    6,
	}
	plain := RunCampaign(ccfg)
	supervised, err := RunCampaignContext(context.Background(), ccfg, harness.Config{ExecTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignsEqual(t, plain, supervised)
}

// TestCampaignCheckpointResumeEquivalence is the acceptance criterion:
// interrupt mid-campaign, resume from the checkpoint, and end with the
// same finding set and execution count as an uninterrupted run.
func TestCampaignCheckpointResumeEquivalence(t *testing.T) {
	ccfg := CampaignConfig{
		Seeds:   corpus.DefaultPool(3, 7),
		Budget:  150,
		Targets: []jvm.Spec{{Impl: buginject.HotSpot, Version: 17}},
		Fuzz:    testCampaignCfg(7),
		Seed:    7,
	}
	uninterrupted := RunCampaign(ccfg)

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := RunCampaignContext(ctx, ccfg, harness.Config{
		CheckpointPath: ckpt,
		OnTask: func(done int) {
			if done == 2 {
				cancel() // simulate SIGINT after the second seed task
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("cancellation did not mark the result interrupted (budget too small for the test?)")
	}
	if partial.Executions >= uninterrupted.Executions {
		t.Fatalf("partial run executed %d >= %d: nothing left to resume", partial.Executions, uninterrupted.Executions)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint flushed on interruption: %v", err)
	}

	resumed, err := RunCampaignContext(context.Background(), ccfg, harness.Config{
		CheckpointPath: ckpt,
		ResumePath:     ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Error("resumed run not marked Resumed")
	}
	assertCampaignsEqual(t, uninterrupted, resumed)
}

func assertCampaignsEqual(t *testing.T, want, got *CampaignResult) {
	t.Helper()
	if got.Executions != want.Executions {
		t.Errorf("Executions = %d, want %d", got.Executions, want.Executions)
	}
	if got.SeedsFuzzed != want.SeedsFuzzed {
		t.Errorf("SeedsFuzzed = %d, want %d", got.SeedsFuzzed, want.SeedsFuzzed)
	}
	if len(got.FinalDeltas) != len(want.FinalDeltas) {
		t.Fatalf("FinalDeltas len = %d, want %d", len(got.FinalDeltas), len(want.FinalDeltas))
	}
	for i := range want.FinalDeltas {
		if got.FinalDeltas[i] != want.FinalDeltas[i] {
			t.Errorf("FinalDeltas[%d] = %v, want %v", i, got.FinalDeltas[i], want.FinalDeltas[i])
		}
	}
	if len(got.Findings) != len(want.Findings) {
		t.Fatalf("Findings len = %d, want %d", len(got.Findings), len(want.Findings))
	}
	for i := range want.Findings {
		w, g := want.Findings[i], got.Findings[i]
		if g.Bug.ID != w.Bug.ID || g.AtExecution != w.AtExecution || g.SeedName != w.SeedName || g.Oracle != w.Oracle {
			t.Errorf("Findings[%d] = {%s %d %s %s}, want {%s %d %s %s}",
				i, g.Bug.ID, g.AtExecution, g.SeedName, g.Oracle, w.Bug.ID, w.AtExecution, w.SeedName, w.Oracle)
		}
	}
}
