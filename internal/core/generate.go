package core

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/generate"
	"repro/internal/lang"
)

// mutatorFillers adapts the mutator stack into template hole fillers: a
// statement hole is filled by a deterministically-chosen applicable
// mutator. This is what makes randprog "one hole-filler among several"
// — the template generator's built-in synthesizer is the fallback when
// no mutator applies.
func mutatorFillers() []generate.StmtFiller {
	muts := AllMutators()
	return []generate.StmtFiller{
		func(p *lang.Program, loc *lang.Location, rng *rand.Rand) bool {
			var applicable []Mutator
			for _, m := range muts {
				if m.Applicable(loc) {
					applicable = append(applicable, m)
				}
			}
			if len(applicable) == 0 {
				return false
			}
			m := applicable[rng.Intn(len(applicable))]
			_, err := m.Apply(p, loc, rng)
			return err == nil
		},
	}
}

// genRuntime is the campaign-side generator subsystem state: the built
// generator set plus the checkpointed emission counts and pool-slot
// overlay (checkpoint v4).
type genRuntime struct {
	gens  []generate.Generator
	st    *generate.State
	quota int // pool slots refreshed per round boundary
}

// newGenRuntime builds the configured generator set over the campaign's
// (post-distill) pool. extras are the pinned template-mining extras —
// cfg.TemplateExtras on a fresh run, the checkpointed set on resume.
func newGenRuntime(cfg CampaignConfig, extras []string) (*genRuntime, error) {
	gens, err := generate.Build(generate.Config{
		Generators:      cfg.Generators,
		Styles:          cfg.Styles,
		TemplateSources: cfg.Seeds,
		TemplateExtras:  extras,
		StmtFillers:     mutatorFillers(),
	})
	if err != nil {
		return nil, err
	}
	if gens == nil {
		return nil, fmt.Errorf("core: generator set normalized to off inside newGenRuntime")
	}
	quota := len(cfg.Seeds) / 4
	if quota < 1 {
		quota = 1
	}
	return &genRuntime{
		gens:  gens,
		st:    &generate.State{Emitted: map[string]int{}, Extras: append([]string(nil), extras...)},
		quota: quota,
	}, nil
}

// ids lists the generator IDs in build order (the scheduler's gen-arm
// order).
func (g *genRuntime) ids() []string {
	out := make([]string, len(g.gens))
	for i, gen := range g.gens {
		out[i] = gen.ID()
	}
	return out
}

func (g *genRuntime) byID(id string) generate.Generator {
	for _, gen := range g.gens {
		if gen.ID() == id {
			return gen
		}
	}
	return nil
}

// generated reports cumulative emissions (the Progress/metrics gauge).
func (g *genRuntime) generated() int {
	n := 0
	for _, c := range g.st.Emitted {
		n += c
	}
	return n
}

// refreshPool runs the round-boundary corpus refresh: quota slots of
// the pool are overwritten with fresh generator emissions, rotating
// through slot indices across rounds so every position eventually
// cycles. With a power schedule the generator for each slot is the
// gen-arm bandit's pick and the slot's (seed, plan-mode) arms are
// renamed and reset; without one, generators rotate round-robin. Runs
// on the campaign goroutine before the round's first task dispatch
// (the engine's round barrier publishes the writes to workers), and
// everything derives from (campaign seed, emission counts), so resume
// and fleet handoff replay it byte-identically.
func (g *genRuntime) refreshPool(round int, seeds []corpus.Seed, campaignSeed int64, sched *corpus.Scheduler) {
	for r := g.st.LastRound + 1; r <= round; r++ {
		for k := 0; k < g.quota; k++ {
			slot := (r-1)*g.quota + k
			idx := slot % len(seeds)
			var gen generate.Generator
			if sched != nil {
				gen = g.byID(sched.PickGen(slot))
			}
			if gen == nil {
				gen = g.gens[slot%len(g.gens)]
			}
			id := gen.ID()
			seq := g.st.Emitted[id]
			s := gen.Generate(campaignSeed, seq, 1)[0]
			g.st.Emitted[id] = seq + 1
			seeds[idx] = s
			if sched != nil {
				sched.ReplaceSeed(idx, s.Name)
			}
			g.setSlot(idx, s)
		}
		g.st.LastRound = r
	}
}

// setSlot upserts the slot overlay entry for a pool index, keeping the
// overlay sorted by index for stable checkpoint bytes.
func (g *genRuntime) setSlot(idx int, s corpus.Seed) {
	for i := range g.st.Slots {
		if g.st.Slots[i].Index == idx {
			g.st.Slots[i] = generate.Slot{Index: idx, Name: s.Name, Source: s.Source, Gen: s.Gen}
			return
		}
	}
	g.st.Slots = append(g.st.Slots, generate.Slot{Index: idx, Name: s.Name, Source: s.Source, Gen: s.Gen})
	for i := len(g.st.Slots) - 1; i > 0 && g.st.Slots[i].Index < g.st.Slots[i-1].Index; i-- {
		g.st.Slots[i], g.st.Slots[i-1] = g.st.Slots[i-1], g.st.Slots[i]
	}
}

// state snapshots the runtime for a checkpoint (nil-safe).
func (g *genRuntime) state() *generate.State {
	if g == nil {
		return nil
	}
	return g.st.Clone()
}
