// Package experiments regenerates every table and figure of the paper's
// evaluation over the simulated substrate: deterministic campaigns with
// fixed seeds, execution-count budgets standing in for wall-clock time,
// and text renderings of each artifact.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/baselines"
	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/exec"
	"repro/internal/jvm"
)

// Budget scales the experiments: Executions stands in for the paper's
// 24-hour tool budgets; Seeds sizes the shared pool (§4.1 uses the same
// seed pool for every tool).
type Budget struct {
	Executions int
	Seeds      int
	Seed       int64
	// Executor is the execution backend every tool runs through
	// (nil = in-process; results are identical either way).
	Executor exec.Executor
}

// withExecutor applies the budget's backend to tools that support one.
func (b Budget) withExecutor(tool baselines.Tool) baselines.Tool {
	if b.Executor != nil {
		if s, ok := tool.(baselines.ExecutorSetter); ok {
			s.SetExecutor(b.Executor)
		}
	}
	return tool
}

// DefaultBudget finishes in tens of seconds on a laptop.
func DefaultBudget() Budget { return Budget{Executions: 1500, Seeds: 40, Seed: 1} }

// QuickBudget is the benchmark-sized budget.
func QuickBudget() Budget { return Budget{Executions: 250, Seeds: 10, Seed: 1} }

// toolRun aggregates one tool's budgeted campaign.
type toolRun struct {
	Name     string
	Findings []core.BugFinding
	// FindingAt holds cumulative executions at each unique-bug detection.
	FindingAt []int
	Deltas    []float64
	Coverage  *coverage.Tracker
	Execs     int
}

// runTool drives a baselines.Tool over the shared seed pool until the
// execution budget is exhausted.
func runTool(tool baselines.Tool, seeds []corpus.Seed, budget Budget) *toolRun {
	tool = budget.withExecutor(tool)
	run := &toolRun{Name: tool.Name()}
	seen := map[string]bool{}
	idx := int64(0)
	parsed := corpus.NewParseCache() // parse each seed once, not once per round
	for run.Execs < budget.Executions {
		progressed := false
		for _, seed := range seeds {
			if run.Execs >= budget.Executions {
				break
			}
			idx++
			fr, err := tool.FuzzSeed(seed.Name, parsed.Parse(seed), budget.Seed*100000+idx)
			if err != nil {
				continue
			}
			progressed = true
			run.Execs += fr.Executions
			run.Deltas = append(run.Deltas, fr.FinalDelta)
			for _, fd := range fr.Findings {
				if fd.Bug == nil || seen[fd.Bug.ID] {
					continue
				}
				seen[fd.Bug.ID] = true
				run.Findings = append(run.Findings, fd)
				run.FindingAt = append(run.FindingAt, run.Execs)
			}
		}
		if !progressed {
			break
		}
	}
	return run
}

func (r *toolRun) bugIDs() map[string]bool {
	out := map[string]bool{}
	for _, f := range r.Findings {
		out[f.Bug.ID] = true
	}
	return out
}

// --- small stats helpers ---

type fiveNum struct{ Min, Q1, Med, Q3, Max float64 }

func summarize(xs []float64) fiveNum {
	if len(xs) == 0 {
		return fiveNum{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return fiveNum{Min: s[0], Q1: q(0.25), Med: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

// boxplotLine renders a five-number summary as an ASCII boxplot scaled
// into [lo, hi].
func boxplotLine(f fiveNum, lo, hi float64, width int) string {
	if hi <= lo {
		hi = lo + 1
	}
	pos := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	line := make([]byte, width)
	for i := range line {
		line[i] = ' '
	}
	for i := pos(f.Min); i <= pos(f.Max); i++ {
		line[i] = '-'
	}
	for i := pos(f.Q1); i <= pos(f.Q3); i++ {
		line[i] = '='
	}
	line[pos(f.Med)] = '|'
	return string(line)
}

// table renders rows with aligned columns.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func pool(budget Budget) []corpus.Seed {
	return corpus.DefaultPool(budget.Seeds, budget.Seed)
}

// hotspotTargets cycles the OpenJDK LTS+mainline targets (§4.1).
func hotspotTargets() []jvm.Spec { return jvm.HotSpotLTSAndMainline() }

// allTargets cycles both implementations.
func allTargets() []jvm.Spec { return jvm.AllSpecs() }

var _ = buginject.Catalog // referenced by tables.go
