package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/baselines"
	"repro/internal/buginject"
	"repro/internal/corpus"
)

// Recall runs a long multi-version campaign and reports ground-truth
// recall: which of the 59 seeded bugs the fuzzer detected within budget,
// per implementation and component. The paper cannot measure this
// (real-JVM ground truth is unknown); it is this reproduction's added
// measurement, and the long-horizon sanity check that every bug class
// is reachable.
func Recall(w io.Writer, budget Budget) {
	seeds := pool(budget)
	targets := allTargets()
	detected := map[string]int{} // bug ID -> executions at detection
	execs := 0
	idx := int64(0)
	parsed := corpus.NewParseCache() // parse each seed once, not once per round
	for execs < budget.Executions {
		progressed := false
		for i, seed := range seeds {
			if execs >= budget.Executions {
				break
			}
			idx++
			tool := budget.withExecutor(baselines.NewMopFuzzer(targets[(int(idx)+i)%len(targets)], nil))
			fr, err := tool.FuzzSeed(seed.Name, parsed.Parse(seed), budget.Seed*104729+idx)
			if err != nil {
				continue
			}
			progressed = true
			execs += fr.Executions
			for _, fd := range fr.Findings {
				if fd.Bug != nil {
					if _, ok := detected[fd.Bug.ID]; !ok {
						detected[fd.Bug.ID] = execs
					}
				}
			}
		}
		if !progressed {
			break
		}
	}

	type row struct {
		impl      buginject.Impl
		component string
		found     int
		total     int
	}
	agg := map[string]*row{}
	var order []string
	for _, b := range buginject.Catalog {
		key := string(b.Impl) + "/" + b.Component
		r := agg[key]
		if r == nil {
			r = &row{impl: b.Impl, component: b.Component}
			agg[key] = r
			order = append(order, key)
		}
		r.total++
		if _, ok := detected[b.ID]; ok {
			r.found++
		}
	}
	sort.Strings(order)

	fmt.Fprintf(w, "Recall vs ground truth (budget %d executions, %d seeds, targets cycled over %d builds)\n\n",
		budget.Executions, budget.Seeds, len(targets))
	var rows [][]string
	foundTotal, total := 0, 0
	for _, key := range order {
		r := agg[key]
		rows = append(rows, []string{string(r.impl), r.component,
			fmt.Sprintf("%d/%d", r.found, r.total)})
		foundTotal += r.found
		total += r.total
	}
	rows = append(rows, []string{"", "Total", fmt.Sprintf("%d/%d", foundTotal, total)})
	table(w, []string{"Impl", "Component", "Detected"}, rows)

	if len(detected) > 0 {
		fmt.Fprintln(w, "\nDetection order (bug @ cumulative executions):")
		type hit struct {
			id string
			at int
		}
		var hits []hit
		for id, at := range detected {
			hits = append(hits, hit{id, at})
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].at < hits[j].at })
		for _, h := range hits {
			b := buginject.ByID(h.id)
			fmt.Fprintf(w, "  %6d  %-14s %s (%s)\n", h.at, h.id, b.Component, b.Kind)
		}
	}
}
