package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// BenchReport is the machine-readable campaign-performance artifact
// (BENCH_campaign.json). Campaign throughput compares the sequential
// engine against the speculative worker pool on identical workloads —
// wall-clock parallel speedup tracks the host's usable cores
// (NumCPU/GOMAXPROCS are recorded so a 1-core container's ~1x is
// interpretable) — and the OBV numbers compare the reference
// regex-over-log extraction against the structured counter fast path
// on identical emission streams.
type BenchReport struct {
	// SchemaVersion is 4: v1 fields are preserved verbatim; v2 added the
	// GOMAXPROCS×workers×backend scaling matrix, the child-backend
	// exec-overhead legs, and the interpreter allocation pin; v3 added
	// the power-schedule recall legs (schedule off vs power × plan-fuzz
	// off vs full, detections and median executions-to-first-detection
	// against the ground-truth bug catalog); v4 adds the generator
	// recall legs (randprog-only vs template/style generator sets at
	// the same budget).
	SchemaVersion    int `json:"schema_version"`
	BudgetExecutions int `json:"budget_executions"`
	SeedPool         int `json:"seed_pool"`
	Workers          int `json:"workers"`
	NumCPU           int `json:"num_cpu"`
	GoMaxProcs       int `json:"gomaxprocs"`

	SequentialSecs        float64 `json:"sequential_secs"`
	SequentialExecsPerSec float64 `json:"sequential_execs_per_sec"`
	ParallelSecs          float64 `json:"parallel_secs"`
	ParallelExecsPerSec   float64 `json:"parallel_execs_per_sec"`
	CampaignSpeedup       float64 `json:"campaign_speedup"`

	LegacyOBVSecs        float64 `json:"legacy_obv_campaign_secs"`
	LegacyOBVExecsPerSec float64 `json:"legacy_obv_execs_per_sec"`
	FastOBVSpeedupE2E    float64 `json:"fast_obv_campaign_speedup"`

	OBVRegexNsPerOp      float64 `json:"obv_regex_ns_per_op"`
	OBVStructuredNsPerOp float64 `json:"obv_structured_ns_per_op"`
	OBVSpeedup           float64 `json:"obv_extraction_speedup"`

	// ScalingMatrix sweeps GOMAXPROCS (= campaign workers) per backend
	// over a reduced-budget campaign. NumCPU is recorded per row so a
	// flat curve on a 1-core host is interpretable.
	ScalingMatrix []ScalingRow `json:"scaling_matrix,omitempty"`

	// Exec-overhead legs: the same light program driven through the
	// cold-spawn subprocess backend and the warm child pool, single
	// worker. The pool serves warm children with a live compile cache, so
	// this isolates process-spawn + recompile overhead — the cost the
	// pool exists to amortize. Zero values mean no minijvm binary was
	// available to run the legs.
	SubprocessExecsPerSec   float64 `json:"subprocess_execs_per_sec,omitempty"`
	PoolExecsPerSec         float64 `json:"pool_execs_per_sec,omitempty"`
	PoolVsSubprocessSpeedup float64 `json:"pool_vs_subprocess_speedup,omitempty"`
	SubprocessSpawns        int64   `json:"subprocess_spawns,omitempty"`
	PoolSpawns              int64   `json:"pool_spawns,omitempty"`
	PoolSpawnsAvoided       int64   `json:"pool_spawns_avoided,omitempty"`
	PoolBatches             int64   `json:"pool_batches,omitempty"`
	PoolMeanBatch           float64 `json:"pool_mean_batch,omitempty"`

	// ScheduleLegs is the v3 scheduling comparison: one ground-truth
	// recall campaign per (schedule, plan-fuzz) cell at the same budget.
	// The power rows validate the corpus subsystem's energy allocation:
	// detected >= the matching off row with a lower (or equal) median
	// executions-to-first-detection.
	ScheduleLegs []ScheduleLeg `json:"schedule_legs,omitempty"`

	// GeneratorLegs is the v4 generator comparison: one ground-truth
	// recall campaign per generator set at the same budget. The
	// template/style rows validate the generate subsystem's scenario
	// diversity: catalog bugs reached that the fixed randprog pool (row
	// 0) misses.
	GeneratorLegs []GeneratorLeg `json:"generator_legs,omitempty"`

	// InterpAllocsPerOp is the call-heavy interpreter workload's heap
	// allocations per full run (the number the frame/arg freelists drive
	// down; internal/vm's TestInterpreterAllocBudget pins its ceiling).
	InterpAllocsPerOp float64 `json:"interp_allocs_per_op"`

	// Plan-fuzz leg (additive; schema_version stays 2): plan-generation
	// throughput, and the per-execution cost of the plan-differential
	// oracle (one spec, k fuzzed plans) against the spec/tier-differential
	// oracle (k specs, fixed plan) over the same program and execution
	// count. PlanDiffOverhead > 1 means one plan-differential execution
	// costs more than one spec-differential execution.
	PlanGenPerSec       float64 `json:"planfuzz_plans_per_sec,omitempty"`
	SpecDiffExecsPerSec float64 `json:"spec_differential_execs_per_sec,omitempty"`
	PlanDiffExecsPerSec float64 `json:"plan_differential_execs_per_sec,omitempty"`
	PlanDiffOverhead    float64 `json:"plan_differential_overhead,omitempty"`
}

// ScalingRow is one cell of the scaling matrix: a campaign at the given
// GOMAXPROCS and worker count on one backend.
type ScalingRow struct {
	Backend     string  `json:"backend"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Workers     int     `json:"workers"`
	Secs        float64 `json:"secs"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Speedup is relative to the same backend's GOMAXPROCS=1 row.
	Speedup float64 `json:"speedup_vs_1"`
}

// BenchOptions configures the v2 legs that need a minijvm binary. The
// zero value skips them (the matrix then covers inprocess only).
type BenchOptions struct {
	// MinijvmPath locates the child binary ("" = $MINIJVM, then $PATH).
	MinijvmPath string
	// ChildTimeout is the per-execution watchdog for child backends.
	ChildTimeout time.Duration
	// Pool shapes the warm pool used by the pool legs.
	Pool exec.PoolTuning
}

// benchCampaignConfig is the shared workload: the standard corpus pool
// fuzzed against one HotSpot target with the production fuzzer config.
func benchCampaignConfig(budget Budget, structured bool, workers int) core.CampaignConfig {
	target := jvm.Reference()
	fcfg := core.DefaultConfig(target)
	fcfg.Seed = budget.Seed
	fcfg.StructuredOBV = structured
	return core.CampaignConfig{
		Seeds:   pool(budget),
		Budget:  budget.Executions,
		Targets: []jvm.Spec{target},
		Fuzz:    fcfg,
		Seed:    budget.Seed,
		Workers: workers,
	}
}

// timeCampaign runs one campaign and returns (executions, seconds).
func timeCampaign(budget Budget, structured bool, workers int) (int, float64) {
	start := time.Now()
	res := core.RunCampaign(benchCampaignConfig(budget, structured, workers))
	return res.Executions, time.Since(start).Seconds()
}

// scalingMatrix sweeps GOMAXPROCS = workers ∈ {1,2,4,8} per backend on a
// reduced-budget campaign. The pool backend appears only when opts
// resolves a minijvm binary; its pool is sized to the row's worker count
// so children scale with parallelism.
func scalingMatrix(budget Budget, opts BenchOptions) []ScalingRow {
	row := budget
	row.Executions = budget.Executions / 3
	if row.Executions < 60 {
		row.Executions = 60
	}

	backends := []string{"inprocess"}
	if _, err := exec.FindMinijvm(opts.MinijvmPath); err == nil {
		backends = append(backends, "pool")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var rows []ScalingRow
	for _, backend := range backends {
		var base float64
		for _, gmp := range []int{1, 2, 4, 8} {
			runtime.GOMAXPROCS(gmp)
			tuning := opts.Pool
			if tuning.Children == 0 {
				tuning.Children = gmp
			}
			executor, err := exec.FromFlags(backend, opts.MinijvmPath, opts.ChildTimeout, tuning)
			if err != nil {
				continue
			}
			cfg := benchCampaignConfig(row, true, gmp)
			cfg.Executor = executor
			start := time.Now()
			res := core.RunCampaign(cfg)
			secs := time.Since(start).Seconds()
			exec.CloseExecutor(executor)

			r := ScalingRow{
				Backend:     backend,
				GoMaxProcs:  gmp,
				NumCPU:      runtime.NumCPU(),
				Workers:     gmp,
				Secs:        secs,
				ExecsPerSec: float64(res.Executions) / secs,
			}
			if base == 0 {
				base = r.ExecsPerSec
			}
			r.Speedup = r.ExecsPerSec / base
			rows = append(rows, r)
		}
	}
	return rows
}

// overheadSrc is the exec-overhead workload: light enough that process
// spawn and recompilation dominate a cold child's execution cost.
const overheadSrc = `class B {
  static void main() {
    int s = 0;
    for (int i = 0; i < 50; i += 1) { s = s + i; }
    print(s);
  }
}`

// benchExecOverhead drives overheadSrc through the cold-spawn subprocess
// backend and the warm pool (single worker): N single executions each,
// then N/4 full differentials through the pool so batch amortization
// (mean batch > 1, spawns avoided) shows up in the pool counters.
func benchExecOverhead(r *BenchReport, opts BenchOptions) error {
	path, err := exec.FindMinijvm(opts.MinijvmPath)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(overheadSrc)
	if err != nil {
		return err
	}
	if err := lang.Check(prog); err != nil {
		return err
	}
	ctx := context.Background()
	ref := jvm.Reference()
	specs := jvm.AllSpecs()
	const singles = 40

	sub := exec.NewSubprocess(path)
	sub.Timeout = opts.ChildTimeout
	start := time.Now()
	for i := 0; i < singles; i++ {
		if _, err := sub.Execute(ctx, prog, ref, jvm.Options{}); err != nil {
			return err
		}
	}
	r.SubprocessExecsPerSec = singles / time.Since(start).Seconds()
	r.SubprocessSpawns = sub.Stats().Spawns

	tuning := opts.Pool
	if tuning.Children == 0 {
		tuning.Children = 1
	}
	pool := exec.NewPool(exec.PoolConfig{
		Path:              path,
		Timeout:           opts.ChildTimeout,
		Children:          tuning.Children,
		RecycleAfter:      tuning.RecycleAfter,
		MaxChildHeapBytes: tuning.MaxChildHeapBytes,
	})
	defer pool.Close()
	// One warm-up execution so the pool leg times warm children, not the
	// first spawn — the steady state a campaign runs in.
	if _, err := pool.Execute(ctx, prog, ref, jvm.Options{}); err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < singles; i++ {
		if _, err := pool.Execute(ctx, prog, ref, jvm.Options{}); err != nil {
			return err
		}
	}
	r.PoolExecsPerSec = singles / time.Since(start).Seconds()
	for i := 0; i < singles/4; i++ {
		if _, err := pool.ExecuteDifferential(ctx, prog, specs, jvm.Options{}); err != nil {
			return err
		}
	}
	st := pool.Stats()
	r.PoolSpawns = st.Spawns
	r.PoolSpawnsAvoided = st.SpawnsAvoided
	r.PoolBatches = st.Batches
	r.PoolMeanBatch = st.MeanBatch()
	if r.SubprocessExecsPerSec > 0 {
		r.PoolVsSubprocessSpeedup = r.PoolExecsPerSec / r.SubprocessExecsPerSec
	}
	return nil
}

// benchPlanFuzz times compilation-plan generation and compares the two
// differential oracles per execution: spec-differential (every spec,
// default plan) versus plan-differential (one spec, as many fuzzed
// plans as there are specs), on the same program. Equal execution
// counts per round trip make the ratio a pure schedule-overhead number.
func benchPlanFuzz(r *BenchReport) error {
	prog, err := lang.Parse(overheadSrc)
	if err != nil {
		return err
	}
	if err := lang.Check(prog); err != nil {
		return err
	}

	const gens = 20000
	start := time.Now()
	for i := 0; i < gens; i++ {
		if err := jit.GeneratePlan(int64(i), jit.PlanFull).Validate(); err != nil {
			return err
		}
	}
	r.PlanGenPerSec = gens / time.Since(start).Seconds()

	specs := jvm.AllSpecs()
	plans := []*jit.Plan{nil}
	for len(plans) < len(specs) {
		plans = append(plans, jit.GeneratePlan(int64(len(plans))*7919, jit.PlanFull))
	}
	opt := jvm.Options{ForceCompile: true, MaxSteps: 3_000_000}
	const rounds = 25

	start = time.Now()
	specExecs := 0
	for i := 0; i < rounds; i++ {
		d, err := jvm.RunDifferential(lang.CloneProgram(prog), specs, opt)
		if err != nil {
			return err
		}
		specExecs += len(d.Results)
	}
	r.SpecDiffExecsPerSec = float64(specExecs) / time.Since(start).Seconds()

	start = time.Now()
	planExecs := 0
	for i := 0; i < rounds; i++ {
		d, err := jvm.RunPlanDifferential(lang.CloneProgram(prog), jvm.Reference(), plans, opt)
		if err != nil {
			return err
		}
		planExecs += len(d.Results)
	}
	r.PlanDiffExecsPerSec = float64(planExecs) / time.Since(start).Seconds()
	if r.PlanDiffExecsPerSec > 0 {
		r.PlanDiffOverhead = r.SpecDiffExecsPerSec / r.PlanDiffExecsPerSec
	}
	return nil
}

// allocWorkloadSrc mirrors internal/vm's call-heavy allocation workload:
// nested calls, argument passing, and enough heap churn to trigger GC
// root scans.
const allocWorkloadSrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 400; i += 1) {
      total = total + t.outer(i, i + 1);
    }
    print(total);
  }
  int outer(int a, int b) {
    return this.inner(a) + this.inner(b);
  }
  int inner(int x) {
    int acc = 0;
    for (int k = 0; k < 3; k += 1) { acc = acc + x + k; }
    return acc;
  }
}`

// benchInterpAllocs measures heap allocations per full interpreter run
// of the call-heavy workload (a hand-rolled AllocsPerRun: Mallocs delta
// over a fixed iteration count).
func benchInterpAllocs() (float64, error) {
	p, err := lang.Parse(allocWorkloadSrc)
	if err != nil {
		return 0, err
	}
	if err := lang.Check(p); err != nil {
		return 0, err
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		return 0, err
	}
	run := func() error {
		res := vm.NewMachine(img, vm.Config{}).Run()
		if res.Crash != nil || res.Exception != nil {
			return fmt.Errorf("experiments: alloc workload failed: %+v", res)
		}
		return nil
	}
	if err := run(); err != nil { // warm-up: lazy init off the measured path
		return 0, err
	}
	const iters = 10
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / iters, nil
}

// benchOBVExtraction times one representative emission stream — every
// structured line shape, including both double-rule shapes — through
// the full recorder + regex extraction versus the counter recorder.
func benchOBVExtraction() (regexNs, structuredNs float64) {
	emitStream := func(e interface {
		Emitf(profile.Flag, string, ...any)
		EmitBehaviorf(profile.Flag, []profile.Behavior, string, ...any)
	}) {
		for rep := 0; rep < 8; rep++ {
			e.Emitf(profile.FlagPrintCompilation, "    %d    3    Foo::work (hot)", rep)
			e.EmitBehaviorf(profile.FlagPrintInlining, profile.LineInline, "@ %d Foo::work (%d nodes)   inline (hot)", rep, 12)
			e.EmitBehaviorf(profile.FlagPrintInlining, profile.LineInlineSync, "@ %d Foo::sync   inline (hot) monitors rewired", rep)
			e.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LineUnroll, "Unroll %d(%d)", 8, 16)
			e.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LinePeel, "Peel  %s trip=%d", "Foo.work", 3)
			e.EmitBehaviorf(profile.FlagPrintEliminateLocks, profile.LineNestedLockElim, "++++ Eliminated: 1 Lock (nested)")
			e.EmitBehaviorf(profile.FlagPrintEscapeAnalysis, profile.LineEscapeNone, "%s is NoEscape", "obj")
			e.EmitBehaviorf(profile.FlagPrintGVN, profile.LineGVN, "GVN hit: %s subsumed by %s in %s", "add(a,b)", "t1", "Foo.work")
			e.EmitBehaviorf(profile.FlagTraceDeadCode, profile.LineDCE, "DCE: removed %s in %s", "dead branch", "Foo.work")
			e.EmitBehaviorf(profile.FlagTraceDeoptimization, profile.LineUncommonTrap, "Uncommon trap occurred in %s reason=%s", "Foo.work", "trap")
		}
	}
	flags := profile.DefaultFlags()
	const iters = 2000
	var sink profile.OBV

	start := time.Now()
	for i := 0; i < iters; i++ {
		rec := profile.NewRecorder(flags)
		emitStream(rec)
		sink = profile.ExtractOBV(rec.Text())
	}
	regexNs = float64(time.Since(start).Nanoseconds()) / iters

	start = time.Now()
	for i := 0; i < iters; i++ {
		rec := profile.NewCounterRecorder(flags)
		emitStream(rec)
		sink = rec.OBV()
	}
	structuredNs = float64(time.Since(start).Nanoseconds()) / iters
	_ = sink
	return regexNs, structuredNs
}

// BenchCampaign measures campaign throughput (sequential vs parallel vs
// legacy-OBV), the scaling matrix, the child-backend exec-overhead legs,
// OBV extraction cost, and the interpreter allocation pin.
func BenchCampaign(budget Budget, workers int, opts BenchOptions) *BenchReport {
	if workers <= 0 {
		workers = 4
	}
	r := &BenchReport{
		SchemaVersion:    4,
		BudgetExecutions: budget.Executions,
		SeedPool:         budget.Seeds,
		Workers:          workers,
		NumCPU:           runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}

	// The schedule legs run before anything else so they execute against
	// the same fresh process state as `experiments -schedule-recall`:
	// campaign results are reproducible across fresh processes, but heavy
	// unrelated in-process work beforehand (warm-up, scaling sweeps) can
	// shift a marginal detection, and the recorded artifact must match
	// what the documented command reproduces. They are recall campaigns,
	// not throughput measurements, so running them cold costs nothing.
	r.ScheduleLegs = BenchScheduleLegs(budget)
	// The generator legs are recall campaigns too, and the same
	// reproducibility argument applies: run them cold, before the timing
	// legs, so `experiments -generator-recall` reproduces the artifact.
	r.GeneratorLegs = BenchGeneratorLegs(budget)

	// Warm-up run so one-time costs (corpus generation, lazy init) do
	// not land on the first timed configuration.
	timeCampaign(Budget{Executions: budget.Executions / 4, Seeds: budget.Seeds, Seed: budget.Seed}, true, 1)

	execs, secs := timeCampaign(budget, true, 1)
	r.SequentialSecs = secs
	r.SequentialExecsPerSec = float64(execs) / secs

	execs, secs = timeCampaign(budget, true, workers)
	r.ParallelSecs = secs
	r.ParallelExecsPerSec = float64(execs) / secs
	r.CampaignSpeedup = r.ParallelExecsPerSec / r.SequentialExecsPerSec

	execs, secs = timeCampaign(budget, false, 1)
	r.LegacyOBVSecs = secs
	r.LegacyOBVExecsPerSec = float64(execs) / secs
	r.FastOBVSpeedupE2E = r.SequentialExecsPerSec / r.LegacyOBVExecsPerSec

	r.OBVRegexNsPerOp, r.OBVStructuredNsPerOp = benchOBVExtraction()
	r.OBVSpeedup = r.OBVRegexNsPerOp / r.OBVStructuredNsPerOp

	r.ScalingMatrix = scalingMatrix(budget, opts)
	// The overhead legs need a minijvm binary; without one the fields
	// stay zero (omitted from the JSON) and the matrix covers inprocess
	// only.
	_ = benchExecOverhead(r, opts)
	_ = benchPlanFuzz(r)
	if allocs, err := benchInterpAllocs(); err == nil {
		r.InterpAllocsPerOp = allocs
	}
	return r
}

// WriteBenchJSON runs BenchCampaign and writes the indented JSON report.
func WriteBenchJSON(w io.Writer, budget Budget, workers int, opts BenchOptions) (*BenchReport, error) {
	r := BenchCampaign(budget, workers, opts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("experiments: bench report: %w", err)
	}
	return r, nil
}

// ScalingTable renders the v2 legs human-readably — the scaling matrix,
// the exec-overhead comparison, and the allocation pin — for
// experiments_output.txt alongside the JSON artifact.
func ScalingTable(w io.Writer, r *BenchReport) {
	fmt.Fprintf(w, "Scaling matrix (campaign throughput; host: %d CPU(s)):\n", r.NumCPU)
	if len(r.ScalingMatrix) == 0 {
		fmt.Fprintln(w, "  (not run)")
	} else {
		fmt.Fprintf(w, "  %-10s  %10s  %7s  %9s  %7s\n", "backend", "gomaxprocs", "workers", "execs/sec", "speedup")
		for _, row := range r.ScalingMatrix {
			fmt.Fprintf(w, "  %-10s  %10d  %7d  %9.1f  %6.2fx\n",
				row.Backend, row.GoMaxProcs, row.Workers, row.ExecsPerSec, row.Speedup)
		}
	}
	fmt.Fprintln(w, "Exec overhead (light program, single worker):")
	if r.SubprocessExecsPerSec == 0 && r.PoolExecsPerSec == 0 {
		fmt.Fprintln(w, "  (skipped: no minijvm binary)")
	} else {
		fmt.Fprintf(w, "  subprocess  %8.1f execs/sec  (%d spawns: one cold child per execution)\n",
			r.SubprocessExecsPerSec, r.SubprocessSpawns)
		fmt.Fprintf(w, "  pool        %8.1f execs/sec  (%.1fx; %d spawns, %d avoided, mean batch %.1f over %d round trips)\n",
			r.PoolExecsPerSec, r.PoolVsSubprocessSpeedup, r.PoolSpawns, r.PoolSpawnsAvoided, r.PoolMeanBatch, r.PoolBatches)
	}
	if r.PlanGenPerSec > 0 {
		fmt.Fprintf(w, "Plan fuzzing: %.0f plans/sec generated; differential oracle %8.1f execs/sec over specs vs %8.1f over plans (%.2fx overhead)\n",
			r.PlanGenPerSec, r.SpecDiffExecsPerSec, r.PlanDiffExecsPerSec, r.PlanDiffOverhead)
	}
	if len(r.ScheduleLegs) > 0 {
		fmt.Fprintln(w, "Power-schedule recall (same budget per leg):")
		fmt.Fprintf(w, "  %-8s  %-8s  %8s  %8s  %14s\n", "schedule", "planfuzz", "detected", "execs", "medianToDetect")
		for _, lg := range r.ScheduleLegs {
			fmt.Fprintf(w, "  %-8s  %-8s  %8d  %8d  %14.0f\n",
				lg.Schedule, lg.PlanFuzz, lg.Detected, lg.Executions, lg.MedianExecsToDetect)
		}
	}
	if len(r.GeneratorLegs) > 0 {
		fmt.Fprintln(w, "Generator recall (same budget per leg):")
		fmt.Fprintf(w, "  %-28s  %8s  %8s  %14s  %8s\n", "generators", "detected", "execs", "medianToDetect", "genHits")
		for _, lg := range r.GeneratorLegs {
			fmt.Fprintf(w, "  %-28s  %8d  %8d  %14.0f  %8d\n",
				strings.Join(lg.Generators, "+"), lg.Detected, lg.Executions, lg.MedianExecsToDetect, lg.GeneratorDetections)
		}
	}
	fmt.Fprintf(w, "Interpreter: %.0f allocs per call-heavy workload run\n", r.InterpAllocsPerOp)
}
