package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/jvm"
	"repro/internal/profile"
)

// BenchReport is the machine-readable campaign-performance artifact
// (BENCH_campaign.json). Campaign throughput compares the sequential
// engine against the speculative worker pool on identical workloads —
// wall-clock parallel speedup tracks the host's usable cores
// (NumCPU/GOMAXPROCS are recorded so a 1-core container's ~1x is
// interpretable) — and the OBV numbers compare the reference
// regex-over-log extraction against the structured counter fast path
// on identical emission streams.
type BenchReport struct {
	BudgetExecutions int `json:"budget_executions"`
	SeedPool         int `json:"seed_pool"`
	Workers          int `json:"workers"`
	NumCPU           int `json:"num_cpu"`
	GoMaxProcs       int `json:"gomaxprocs"`

	SequentialSecs        float64 `json:"sequential_secs"`
	SequentialExecsPerSec float64 `json:"sequential_execs_per_sec"`
	ParallelSecs          float64 `json:"parallel_secs"`
	ParallelExecsPerSec   float64 `json:"parallel_execs_per_sec"`
	CampaignSpeedup       float64 `json:"campaign_speedup"`

	LegacyOBVSecs        float64 `json:"legacy_obv_campaign_secs"`
	LegacyOBVExecsPerSec float64 `json:"legacy_obv_execs_per_sec"`
	FastOBVSpeedupE2E    float64 `json:"fast_obv_campaign_speedup"`

	OBVRegexNsPerOp      float64 `json:"obv_regex_ns_per_op"`
	OBVStructuredNsPerOp float64 `json:"obv_structured_ns_per_op"`
	OBVSpeedup           float64 `json:"obv_extraction_speedup"`
}

// benchCampaignConfig is the shared workload: the standard corpus pool
// fuzzed against one HotSpot target with the production fuzzer config.
func benchCampaignConfig(budget Budget, structured bool, workers int) core.CampaignConfig {
	target := jvm.Reference()
	fcfg := core.DefaultConfig(target)
	fcfg.Seed = budget.Seed
	fcfg.StructuredOBV = structured
	return core.CampaignConfig{
		Seeds:   pool(budget),
		Budget:  budget.Executions,
		Targets: []jvm.Spec{target},
		Fuzz:    fcfg,
		Seed:    budget.Seed,
		Workers: workers,
	}
}

// timeCampaign runs one campaign and returns (executions, seconds).
func timeCampaign(budget Budget, structured bool, workers int) (int, float64) {
	start := time.Now()
	res := core.RunCampaign(benchCampaignConfig(budget, structured, workers))
	return res.Executions, time.Since(start).Seconds()
}

// benchOBVExtraction times one representative emission stream — every
// structured line shape, including both double-rule shapes — through
// the full recorder + regex extraction versus the counter recorder.
func benchOBVExtraction() (regexNs, structuredNs float64) {
	emitStream := func(e interface {
		Emitf(profile.Flag, string, ...any)
		EmitBehaviorf(profile.Flag, []profile.Behavior, string, ...any)
	}) {
		for rep := 0; rep < 8; rep++ {
			e.Emitf(profile.FlagPrintCompilation, "    %d    3    Foo::work (hot)", rep)
			e.EmitBehaviorf(profile.FlagPrintInlining, profile.LineInline, "@ %d Foo::work (%d nodes)   inline (hot)", rep, 12)
			e.EmitBehaviorf(profile.FlagPrintInlining, profile.LineInlineSync, "@ %d Foo::sync   inline (hot) monitors rewired", rep)
			e.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LineUnroll, "Unroll %d(%d)", 8, 16)
			e.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LinePeel, "Peel  %s trip=%d", "Foo.work", 3)
			e.EmitBehaviorf(profile.FlagPrintEliminateLocks, profile.LineNestedLockElim, "++++ Eliminated: 1 Lock (nested)")
			e.EmitBehaviorf(profile.FlagPrintEscapeAnalysis, profile.LineEscapeNone, "%s is NoEscape", "obj")
			e.EmitBehaviorf(profile.FlagPrintGVN, profile.LineGVN, "GVN hit: %s subsumed by %s in %s", "add(a,b)", "t1", "Foo.work")
			e.EmitBehaviorf(profile.FlagTraceDeadCode, profile.LineDCE, "DCE: removed %s in %s", "dead branch", "Foo.work")
			e.EmitBehaviorf(profile.FlagTraceDeoptimization, profile.LineUncommonTrap, "Uncommon trap occurred in %s reason=%s", "Foo.work", "trap")
		}
	}
	flags := profile.DefaultFlags()
	const iters = 2000
	var sink profile.OBV

	start := time.Now()
	for i := 0; i < iters; i++ {
		rec := profile.NewRecorder(flags)
		emitStream(rec)
		sink = profile.ExtractOBV(rec.Text())
	}
	regexNs = float64(time.Since(start).Nanoseconds()) / iters

	start = time.Now()
	for i := 0; i < iters; i++ {
		rec := profile.NewCounterRecorder(flags)
		emitStream(rec)
		sink = rec.OBV()
	}
	structuredNs = float64(time.Since(start).Nanoseconds()) / iters
	_ = sink
	return regexNs, structuredNs
}

// BenchCampaign measures campaign throughput (sequential vs parallel vs
// legacy-OBV) and OBV extraction cost, returning the report.
func BenchCampaign(budget Budget, workers int) *BenchReport {
	if workers <= 0 {
		workers = 4
	}
	r := &BenchReport{
		BudgetExecutions: budget.Executions,
		SeedPool:         budget.Seeds,
		Workers:          workers,
		NumCPU:           runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}

	// Warm-up run so one-time costs (corpus generation, lazy init) do
	// not land on the first timed configuration.
	timeCampaign(Budget{Executions: budget.Executions / 4, Seeds: budget.Seeds, Seed: budget.Seed}, true, 1)

	execs, secs := timeCampaign(budget, true, 1)
	r.SequentialSecs = secs
	r.SequentialExecsPerSec = float64(execs) / secs

	execs, secs = timeCampaign(budget, true, workers)
	r.ParallelSecs = secs
	r.ParallelExecsPerSec = float64(execs) / secs
	r.CampaignSpeedup = r.ParallelExecsPerSec / r.SequentialExecsPerSec

	execs, secs = timeCampaign(budget, false, 1)
	r.LegacyOBVSecs = secs
	r.LegacyOBVExecsPerSec = float64(execs) / secs
	r.FastOBVSpeedupE2E = r.SequentialExecsPerSec / r.LegacyOBVExecsPerSec

	r.OBVRegexNsPerOp, r.OBVStructuredNsPerOp = benchOBVExtraction()
	r.OBVSpeedup = r.OBVRegexNsPerOp / r.OBVStructuredNsPerOp
	return r
}

// WriteBenchJSON runs BenchCampaign and writes the indented JSON report.
func WriteBenchJSON(w io.Writer, budget Budget, workers int) (*BenchReport, error) {
	r := BenchCampaign(budget, workers)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("experiments: bench report: %w", err)
	}
	return r, nil
}
