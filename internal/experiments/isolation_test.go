package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/corpus"
	"repro/internal/jit"
)

// TestCampaignIsolatedFromPriorWork pins that a campaign's results are
// a pure function of its own configuration: running heavy unrelated
// work in the same process first — other campaigns at different
// budgets, a parallel campaign, micro-benchmarks, GOMAXPROCS changes —
// must not move a single detection.
//
// This replays, in miniature, the ordering that once made BenCHmark's
// schedule legs look flaky (ROADMAP: a power x plan-full leg detected
// one bug fewer inside the full bench run than standalone at the same
// budget). A full-scale replay of the pre-v3 bench ordering at the
// recorded 1500x20 leg reproduced byte-identical results, so the shift
// was config drift between the bench harness and the standalone run
// (warm-up budget and leg order changed between versions), not shared
// state. The suspects audited and cleared on the way: no global
// math/rand in non-test code, jit.Cache is campaign-scoped and fully
// keyed, the heap budget is logical units rather than wall-clock or
// allocator state, sync.Pools reset their contents, and the in-process
// executor is stateless. This test keeps all of that true.
func TestCampaignIsolatedFromPriorWork(t *testing.T) {
	budget := Budget{Executions: 300, Seeds: 8, Seed: 1}
	leg := func() string {
		detected, execs := scheduleDetected(budget, corpus.SchedulePower, jit.PlanFull)
		b, err := json.Marshal(detected)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("execs=%d detected=%s", execs, b)
	}
	cold := leg()

	// Unrelated in-process work in the bench harness's order: warm-up
	// campaign, sequential and parallel timing legs, micro-benchmarks,
	// and campaigns under shifted GOMAXPROCS.
	timeCampaign(Budget{Executions: 125, Seeds: 8, Seed: 3}, true, 4)
	timeCampaign(Budget{Executions: 125, Seeds: 8, Seed: 1}, false, 1)
	benchOBVExtraction()
	prev := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(2)
	timeCampaign(Budget{Executions: 125, Seeds: 8, Seed: 2}, true, 2)
	runtime.GOMAXPROCS(prev)

	if warm := leg(); warm != cold {
		t.Errorf("campaign shifted after unrelated in-process work:\ncold %s\nwarm %s", cold, warm)
	}
}
