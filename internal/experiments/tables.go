package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/baselines"
	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/jvm"
)

// Table2 renders the status of reported bugs (paper Table 2). The
// catalog is the ground-truth outcome of the simulated three-month
// campaign, so the table is computed from it; a budgeted campaign's
// detection coverage is appended for context when requested elsewhere.
func Table2(w io.Writer) {
	count := func(impl buginject.Impl, pred func(*buginject.Bug) bool) int {
		n := 0
		for _, b := range buginject.Catalog {
			if b.Impl == impl && pred(b) {
				n++
			}
		}
		return n
	}
	row := func(name string, pred func(*buginject.Bug) bool) []string {
		hs := count(buginject.HotSpot, pred)
		j9 := count(buginject.OpenJ9, pred)
		return []string{name, fmt.Sprint(hs), fmt.Sprint(j9), fmt.Sprint(hs + j9)}
	}
	fmt.Fprintln(w, "Table 2: Status of the reported bugs")
	fmt.Fprintln(w)
	rows := [][]string{
		row("Confirmed", func(*buginject.Bug) bool { return true }),
		row("In Progress", func(b *buginject.Bug) bool { return b.Status == buginject.InProgress }),
		row("Fixed", func(b *buginject.Bug) bool { return b.Status == buginject.Fixed }),
		row("Duplicate", func(b *buginject.Bug) bool { return b.Status == buginject.Duplicate }),
		row("Not Backportable", func(b *buginject.Bug) bool { return b.Status == buginject.NotBackportable }),
		row("Crash", func(b *buginject.Bug) bool { return b.Kind == buginject.Crash }),
		row("Miscompilation", func(b *buginject.Bug) bool { return b.Kind == buginject.Miscompile }),
	}
	table(w, []string{"Category", "OpenJDK", "OpenJ9", "Total"}, rows)
}

// Table3 renders the bug distribution across OpenJDK versions (Table 3).
func Table3(w io.Writer) {
	versions := []int{8, 11, 17, 21, 23}
	names := []string{"JDK-8", "JDK-11", "JDK-17", "JDK-21", "Mainline"}
	bugs := make([]string, len(versions))
	nb := make([]string, len(versions))
	for i, v := range versions {
		b, n := 0, 0
		for _, bug := range buginject.Catalog {
			if bug.Impl != buginject.HotSpot || !bug.In(v) {
				continue
			}
			b++
			if bug.Status == buginject.NotBackportable {
				n++
			}
		}
		bugs[i] = fmt.Sprint(b)
		nb[i] = fmt.Sprint(n)
	}
	fmt.Fprintln(w, "Table 3: Distribution of detected bugs across OpenJDK LTS and mainline versions")
	fmt.Fprintln(w)
	table(w, append([]string{"Affected Version"}, names...), [][]string{
		append([]string{"#Bugs"}, bugs...),
		append([]string{"#Not Backportable"}, nb...),
	})
}

// Table4 renders the affected JIT components (Table 4).
func Table4(w io.Writer) {
	tally := func(impl buginject.Impl) ([]string, map[string]int) {
		counts := map[string]int{}
		var order []string
		for _, b := range buginject.Catalog {
			if b.Impl != impl {
				continue
			}
			if counts[b.Component] == 0 {
				order = append(order, b.Component)
			}
			counts[b.Component]++
		}
		sort.SliceStable(order, func(i, j int) bool { return counts[order[i]] > counts[order[j]] })
		return order, counts
	}
	hsOrder, hs := tally(buginject.HotSpot)
	j9Order, j9 := tally(buginject.OpenJ9)
	fmt.Fprintln(w, "Table 4: Distribution of the affected JIT components")
	fmt.Fprintln(w)
	n := len(hsOrder)
	if len(j9Order) > n {
		n = len(j9Order)
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := []string{"", "", "", ""}
		if i < len(hsOrder) {
			row[0], row[1] = hsOrder[i], fmt.Sprint(hs[hsOrder[i]])
		}
		if i < len(j9Order) {
			row[2], row[3] = j9Order[i], fmt.Sprint(j9[j9Order[i]])
		}
		rows[i] = row
	}
	table(w, []string{"HotSpot Component", "#", "OpenJ9 Component", "#"}, rows)
}

// Table5 runs a detection campaign and renders the top mutators and
// mutator pairs involved in bug-triggering test cases (Table 5).
func Table5(w io.Writer, budget Budget) {
	seeds := pool(budget)
	// Cycle targets across versions and implementations so version-
	// specific bugs are reachable, as in the three-month campaign.
	var findings []struct {
		bugID    string
		mutators map[string]bool
	}
	seen := map[string]bool{}
	execs := 0
	idx := int64(0)
	targets := allTargets()
	parsed := corpus.NewParseCache() // parse each seed once, not once per round
	for execs < budget.Executions {
		progressed := false
		for i, seed := range seeds {
			if execs >= budget.Executions {
				break
			}
			idx++
			tool := budget.withExecutor(baselines.NewMopFuzzer(targets[(int(idx)+i)%len(targets)], nil))
			fr, err := tool.FuzzSeed(seed.Name, parsed.Parse(seed), budget.Seed*7919+idx)
			if err != nil {
				continue
			}
			progressed = true
			execs += fr.Executions
			for _, fd := range fr.Findings {
				if fd.Bug == nil || seen[fd.Bug.ID] {
					continue
				}
				seen[fd.Bug.ID] = true
				set := map[string]bool{}
				for _, m := range fd.Mutators {
					set[m] = true
				}
				findings = append(findings, struct {
					bugID    string
					mutators map[string]bool
				}{fd.Bug.ID, set})
			}
		}
		if !progressed {
			break
		}
	}

	fmt.Fprintf(w, "Table 5: Top mutators and mutator pairs in the %d bug-triggering test cases\n", len(findings))
	fmt.Fprintf(w, "(campaign budget: %d executions over %d seeds)\n\n", budget.Executions, budget.Seeds)
	if len(findings) == 0 {
		fmt.Fprintln(w, "  no bugs detected within budget; increase -budget")
		return
	}

	single := map[string]int{}
	pairs := map[string]int{}
	for _, f := range findings {
		var ms []string
		for m := range f.mutators {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		for i, a := range ms {
			single[a]++
			for _, b := range ms[i+1:] {
				pairs[a+" + "+b]++
			}
		}
	}
	top := func(m map[string]int, k int) []string {
		var keys []string
		for key := range m {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool {
			if m[keys[i]] != m[keys[j]] {
				return m[keys[i]] > m[keys[j]]
			}
			return keys[i] < keys[j]
		})
		if len(keys) > k {
			keys = keys[:k]
		}
		return keys
	}
	n := float64(len(findings))
	var rows [][]string
	topSingle := top(single, 5)
	topPairs := top(pairs, 5)
	for i := 0; i < 5; i++ {
		row := []string{"", "", "", ""}
		if i < len(topSingle) {
			row[0] = topSingle[i]
			row[1] = fmt.Sprintf("%.1f%%", 100*float64(single[topSingle[i]])/n)
		}
		if i < len(topPairs) {
			row[2] = topPairs[i]
			row[3] = fmt.Sprintf("%.1f%%", 100*float64(pairs[topPairs[i]])/n)
		}
		rows = append(rows, row)
	}
	table(w, []string{"Top Mutators", "Ratio", "Top Mutator Pairs", "Ratio"}, rows)
}

// Table6 compares bug detection across MopFuzzer, Artemis, and JITFuzz
// under the same seed pool and execution budget on OpenJDK 17 (Table 6).
func Table6(w io.Writer, budget Budget) {
	seeds := pool(budget)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	jf := baselines.NewJITFuzz(target, coverage.NewTracker())
	if budget.Executions < jf.Iterations {
		jf.Iterations = budget.Executions
	}
	tools := []baselines.Tool{
		baselines.NewMopFuzzer(target, coverage.NewTracker()),
		baselines.NewArtemis(target, coverage.NewTracker()),
		jf,
	}
	runs := make([]*toolRun, len(tools))
	for i, tool := range tools {
		runs[i] = runTool(tool, seeds, budget)
	}

	// Component rows: union of components any tool hit.
	compSet := map[string]bool{}
	perTool := make([]map[string]int, len(runs))
	for i, r := range runs {
		perTool[i] = map[string]int{}
		for _, f := range r.Findings {
			compSet[f.Bug.Component] = true
			perTool[i][f.Bug.Component]++
		}
	}
	var comps []string
	for c := range compSet {
		comps = append(comps, c)
	}
	sort.Strings(comps)

	// Unique detections (found by this tool only).
	unique := make([]map[string]int, len(runs))
	for i, r := range runs {
		unique[i] = map[string]int{}
		for _, f := range r.Findings {
			only := true
			for j, o := range runs {
				if j != i && o.bugIDs()[f.Bug.ID] {
					only = false
				}
			}
			if only {
				unique[i][f.Bug.Component]++
			}
		}
	}

	fmt.Fprintf(w, "Table 6: Bug detection within the same budget (%d executions) on %s\n", budget.Executions, target.Name())
	fmt.Fprintln(w, "(bracketed numbers are bugs uniquely detected by that tool)")
	fmt.Fprintln(w)
	var rows [][]string
	for _, c := range comps {
		row := []string{c}
		for i := range runs {
			row = append(row, fmt.Sprintf("%d (%d)", perTool[i][c], unique[i][c]))
		}
		rows = append(rows, row)
	}
	totalRow := []string{"Total"}
	for i, r := range runs {
		u := 0
		for _, n := range unique[i] {
			u += n
		}
		totalRow = append(totalRow, fmt.Sprintf("%d (%d)", len(r.Findings), u))
	}
	rows = append(rows, totalRow)
	table(w, []string{"Components", "MopFuzzer", "Artemis", "JITFuzz"}, rows)
}
