package experiments

import (
	"strings"
	"testing"
)

func tiny() Budget { return Budget{Executions: 120, Seeds: 4, Seed: 1} }

func render(t *testing.T, f func(b *strings.Builder)) string {
	t.Helper()
	var b strings.Builder
	f(&b)
	out := b.String()
	if out == "" {
		t.Fatal("empty artifact")
	}
	return out
}

func TestTable2MatchesPaper(t *testing.T) {
	out := render(t, func(b *strings.Builder) { Table2(b) })
	for _, want := range []string{
		"Confirmed         45       14      59",
		"In Progress       19       9       28",
		"Fixed             7        4       11",
		"Not Backportable  14       0       14",
		"Crash             39       2       41",
		"Miscompilation    6        12      18",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	out := render(t, func(b *strings.Builder) { Table3(b) })
	if !strings.Contains(out, "26     9       13      9       12") {
		t.Errorf("Table 3 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "12     2       0       0       0") {
		t.Errorf("Table 3 not-backportable row wrong:\n%s", out)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	out := render(t, func(b *strings.Builder) { Table4(b) })
	for _, want := range []string{
		"Global Value Number., C2   10",
		"Redundancy Elimination  4",
		"Cond. Const. Prop., C2     1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5RunsAtTinyBudget(t *testing.T) {
	out := render(t, func(b *strings.Builder) { Table5(b, tiny()) })
	if !strings.Contains(out, "Table 5") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestFigure2ProducesCoverage(t *testing.T) {
	out := render(t, func(b *strings.Builder) { Figure2(b, tiny()) })
	for _, comp := range []string{"C1", "C2", "Runtime", "GC", "Summary"} {
		if !strings.Contains(out, comp) {
			t.Errorf("Figure 2 missing %s row:\n%s", comp, out)
		}
	}
	// Every tool should cover a meaningful slice of C2 even at tiny
	// budgets (the pipeline's unconditional regions).
	if strings.Contains(out, " 0.0%") && strings.Count(out, " 0.0%") > 4 {
		t.Errorf("suspiciously empty coverage:\n%s", out)
	}
}

func TestStatsHelpers(t *testing.T) {
	f := summarize([]float64{1, 2, 3, 4, 100})
	if f.Min != 1 || f.Max != 100 || f.Med != 3 {
		t.Errorf("summarize = %+v", f)
	}
	line := boxplotLine(f, 0, 100, 40)
	if len(line) != 40 || !strings.Contains(line, "|") {
		t.Errorf("boxplot = %q", line)
	}
	if summarize(nil) != (fiveNum{}) {
		t.Error("empty summary should be zero")
	}
}
