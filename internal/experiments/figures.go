package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/baselines"
	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/jvm"
)

// Figure1 reproduces the case-study curve: Δ(OBV of the i-th mutant,
// OBV of the original seed) over a guided run that ends in a crash,
// with "large jump" iterations marked.
func Figure1(w io.Writer, budget Budget) {
	seeds := pool(budget)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}

	// Find a guided run that crashes after a healthy number of
	// iterations (the paper's case study crashes at mutant 48).
	var best *core.FuzzResult
	parsed := corpus.NewParseCache() // parse each seed once across the search
	for s := int64(0); s < 24; s++ {
		cfg := core.DefaultConfig(target)
		cfg.Seed = budget.Seed*1000 + s
		cfg.DiffSpecs = nil
		cfg.Executor = budget.Executor
		f := core.NewFuzzer(cfg)
		fr, err := f.FuzzSeed("fig1", parsed.Parse(seeds[int(s)%len(seeds)]))
		if err != nil {
			continue
		}
		crashed := false
		for _, fd := range fr.Findings {
			if fd.Oracle == "crash" {
				crashed = true
			}
		}
		if crashed && (best == nil || len(fr.Records) > len(best.Records)) {
			best = fr
		}
	}
	fmt.Fprintln(w, "Figure 1: Euclidean distance between the i-th mutant's OBV and the seed's OBV")
	if best == nil {
		fmt.Fprintln(w, "  no crashing run found within the search budget; increase -budget")
		return
	}
	crashID := ""
	for _, fd := range best.Findings {
		if fd.Bug != nil {
			crashID = fd.Bug.ID
		}
	}
	fmt.Fprintf(w, "(the %dth mutant triggers %s; * marks large jumps)\n\n", len(best.Records), crashID)

	// Collect the curve and the mean jump.
	var deltas []float64
	var jumps []float64
	prev := 0.0
	for _, r := range best.Records {
		if r.Skipped {
			continue
		}
		deltas = append(deltas, r.DeltaSeed)
		jumps = append(jumps, r.DeltaSeed-prev)
		prev = r.DeltaSeed
	}
	meanJump := 0.0
	for _, j := range jumps {
		if j > 0 {
			meanJump += j
		}
	}
	if len(jumps) > 0 {
		meanJump /= float64(len(jumps))
	}
	maxD := 1.0
	for _, d := range deltas {
		if d > maxD {
			maxD = d
		}
	}
	for i, d := range deltas {
		bar := int(40 * d / maxD)
		mark := " "
		if jumps[i] > 2*meanJump && jumps[i] > 1 {
			mark = "*"
		}
		fmt.Fprintf(w, "  iter %2d %s %8.1f %s\n", i+1, mark, d, strings.Repeat("#", bar))
	}
}

// Figure2 compares line coverage per VM component across the three
// tools under the same budget (Figure 2).
func Figure2(w io.Writer, budget Budget) {
	seeds := pool(budget)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	covs := []*coverage.Tracker{coverage.NewTracker(), coverage.NewTracker(), coverage.NewTracker()}
	jf := baselines.NewJITFuzz(target, covs[1])
	if budget.Executions < jf.Iterations {
		jf.Iterations = budget.Executions
	}
	tools := []baselines.Tool{
		baselines.NewMopFuzzer(target, covs[0]),
		jf,
		baselines.NewArtemis(target, covs[2]),
	}
	names := []string{"MopFuzzer", "JITFuzz", "Artemis"}
	for i, tool := range tools {
		_ = runTool(tool, seeds, budget)
		_ = i
	}
	fmt.Fprintf(w, "Figure 2: Line coverage by component (budget %d executions; %d instrumented lines)\n\n",
		budget.Executions, coverage.TotalLines())
	header := append([]string{"Component"}, names...)
	var rows [][]string
	for _, comp := range coverage.Components() {
		row := []string{string(comp)}
		for _, cov := range covs {
			row = append(row, fmt.Sprintf("%5.1f%%", cov.Percent(comp)))
		}
		rows = append(rows, row)
	}
	sum := []string{"Summary"}
	for _, cov := range covs {
		sum = append(sum, fmt.Sprintf("%5.1f%%", cov.Summary()))
	}
	rows = append(rows, sum)
	table(w, header, rows)
}

// Figure3 renders the distribution of final-mutant Δ for the three tools
// (Figure 3's boxplot).
func Figure3(w io.Writer, budget Budget) {
	seeds := pool(budget)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	// Δ is a property of generated mutants, not of bugs: measure on
	// bug-free VMs so crashes don't truncate the 50-iteration runs.
	mop := baselines.NewMopFuzzer(target, nil)
	mop.Cfg.DisableBugs = true
	mop.Cfg.DiffSpecs = nil
	jf := baselines.NewJITFuzz(target, nil)
	jf.DisableBugs = true
	jf.DiffSpecs = nil
	if budget.Executions < jf.Iterations {
		jf.Iterations = budget.Executions
	}
	art := baselines.NewArtemis(target, nil)
	art.DisableBugs = true
	art.DiffSpecs = nil
	tools := []baselines.Tool{mop, jf, art}
	renderDeltaBoxplots(w, "Figure 3: Euclidean distance of OBV (final mutant vs seed) per tool", tools, seeds, budget)
}

// Figure4 renders the same distribution for MopFuzzer and its variants
// (Figure 4).
func Figure4(w io.Writer, budget Budget) {
	seeds := pool(budget)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	var tools []baselines.Tool
	for _, mk := range []func(jvm.Spec, *coverage.Tracker) *baselines.MopFuzzerTool{
		baselines.NewMopFuzzer, baselines.NewMopFuzzerG, baselines.NewMopFuzzerR,
	} {
		tool := mk(target, nil)
		tool.Cfg.DisableBugs = true
		tool.Cfg.DiffSpecs = nil
		tools = append(tools, tool)
	}
	renderDeltaBoxplots(w, "Figure 4: Euclidean distance of OBV for MopFuzzer and its variants", tools, seeds, budget)
}

func renderDeltaBoxplots(w io.Writer, title string, tools []baselines.Tool, seeds []corpus.Seed, budget Budget) {
	fmt.Fprintf(w, "%s (budget %d executions)\n\n", title, budget.Executions)
	var runs []*toolRun
	hi := 1.0
	for _, tool := range tools {
		r := runTool(tool, seeds, budget)
		runs = append(runs, r)
		for _, d := range r.Deltas {
			if d > hi {
				hi = d
			}
		}
	}
	for _, r := range runs {
		f := summarize(r.Deltas)
		fmt.Fprintf(w, "  %-12s [%s] med=%.0f q1=%.0f q3=%.0f n=%d\n",
			r.Name, boxplotLine(f, 0, hi, 48), f.Med, f.Q1, f.Q3, len(r.Deltas))
	}
}

// Figure5a renders the number of detected bugs over time (execution
// count) for MopFuzzer and its variants (Figure 5a).
func Figure5a(w io.Writer, budget Budget) {
	seeds := pool(budget)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	tools := []baselines.Tool{
		baselines.NewMopFuzzer(target, nil),
		baselines.NewMopFuzzerG(target, nil),
		baselines.NewMopFuzzerR(target, nil),
	}
	runs := make([]*toolRun, len(tools))
	for i, tool := range tools {
		runs[i] = runTool(tool, seeds, budget)
	}
	fmt.Fprintf(w, "Figure 5a: Detected bugs over time (budget %d executions)\n\n", budget.Executions)
	const checkpoints = 8
	header := []string{"Tool"}
	for c := 1; c <= checkpoints; c++ {
		header = append(header, fmt.Sprintf("%d", budget.Executions*c/checkpoints))
	}
	var rows [][]string
	for _, r := range runs {
		row := []string{r.Name}
		for c := 1; c <= checkpoints; c++ {
			cut := budget.Executions * c / checkpoints
			n := 0
			for _, at := range r.FindingAt {
				if at <= cut {
					n++
				}
			}
			row = append(row, fmt.Sprintf("%d", n))
		}
		rows = append(rows, row)
	}
	table(w, header, rows)
}

// Figure5b renders the overlap of detected bug sets across the variants
// (Figure 5b's Venn counts).
func Figure5b(w io.Writer, budget Budget) {
	seeds := pool(budget)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	tools := []baselines.Tool{
		baselines.NewMopFuzzer(target, nil),
		baselines.NewMopFuzzerG(target, nil),
		baselines.NewMopFuzzerR(target, nil),
	}
	names := []string{"MopFuzzer", "MopFuzzer_g", "MopFuzzer_r"}
	sets := make([]map[string]bool, len(tools))
	for i, tool := range tools {
		sets[i] = runTool(tool, seeds, budget).bugIDs()
	}
	all := map[string]bool{}
	for _, s := range sets {
		for id := range s {
			all[id] = true
		}
	}
	fmt.Fprintf(w, "Figure 5b: Overlap of detected bugs across variants (budget %d executions)\n\n", budget.Executions)
	region := map[string]int{}
	for id := range all {
		key := ""
		for i := range sets {
			if sets[i][id] {
				key += "1"
			} else {
				key += "0"
			}
		}
		region[key]++
	}
	for i, n := range names {
		fmt.Fprintf(w, "  %-12s total %d\n", n, len(sets[i]))
	}
	fmt.Fprintln(w)
	labels := []struct{ key, desc string }{
		{"111", "all three"},
		{"110", names[0] + " ∩ " + names[1] + " only"},
		{"101", names[0] + " ∩ " + names[2] + " only"},
		{"011", names[1] + " ∩ " + names[2] + " only"},
		{"100", names[0] + " only"},
		{"010", names[1] + " only"},
		{"001", names[2] + " only"},
	}
	for _, l := range labels {
		fmt.Fprintf(w, "  %-34s %d\n", l.desc, region[l.key])
	}
}
