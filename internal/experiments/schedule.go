package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/jit"
)

// ScheduleLeg is one cell of the scheduling comparison: a full campaign
// at the given seed-budget policy and plan-generation mode, scored
// against the 59-bug ground-truth catalog. MedianExecsToDetect is the
// median cumulative-execution count at first detection over the bugs
// the leg found — the power schedule's claim is that it detects at
// least as many bugs in fewer median executions, because energy moves
// budget toward diverse, high-yield (seed, plan-mode) arms.
type ScheduleLeg struct {
	Schedule            string  `json:"schedule"`
	PlanFuzz            string  `json:"plan_fuzz"`
	Detected            int     `json:"detected"`
	Executions          int     `json:"executions"`
	MedianExecsToDetect float64 `json:"median_execs_to_detection"`
	// MedianCommonExecsToDetect is the median over only the bugs BOTH
	// legs of the same plan-fuzz pair detected — the paired
	// time-to-detection statistic. The unpaired median punishes the leg
	// that detects more: its extra bugs are necessarily late detections,
	// so they drag its median up even when it reaches every shared bug
	// sooner.
	MedianCommonExecsToDetect float64 `json:"median_common_execs_to_detection,omitempty"`
}

// scheduleLegPlans pairs each schedule mode with the plan modes the
// BENCH artifact compares: the fixed pipeline and the fully fuzzed one
// (which also gives the power schedule its plan-mode arm axis).
func scheduleLegPlans() []struct {
	Schedule corpus.ScheduleMode
	Plan     jit.PlanMode
} {
	return []struct {
		Schedule corpus.ScheduleMode
		Plan     jit.PlanMode
	}{
		{corpus.ScheduleOff, jit.PlanDefault},
		{corpus.SchedulePower, jit.PlanDefault},
		{corpus.ScheduleOff, jit.PlanFull},
		{corpus.SchedulePower, jit.PlanFull},
	}
}

// scheduleDetected runs one campaign-level recall leg and returns bug
// ID -> cumulative executions at first detection, plus the executions
// actually spent. Campaign-level (core.RunCampaign, not per-seed tool
// loops) because the power schedule is a campaign policy: it only
// exists in the round planner.
func scheduleDetected(budget Budget, sched corpus.ScheduleMode, plan jit.PlanMode) (map[string]int, int) {
	targets := allTargets()
	fcfg := core.DefaultConfig(targets[0])
	fcfg.Seed = budget.Seed
	fcfg.StructuredOBV = true
	fcfg.PlanFuzz = plan
	fcfg.Executor = budget.Executor
	res := core.RunCampaign(core.CampaignConfig{
		Seeds:        pool(budget),
		Budget:       budget.Executions,
		Targets:      targets,
		Fuzz:         fcfg,
		Seed:         budget.Seed,
		Executor:     budget.Executor,
		SeedSchedule: sched,
	})
	detected := map[string]int{}
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Bug == nil {
			continue
		}
		if at, ok := detected[f.Bug.ID]; !ok || f.AtExecution < at {
			detected[f.Bug.ID] = f.AtExecution
		}
	}
	return detected, res.Executions
}

// medianDetection returns the median first-detection execution count.
func medianDetection(detected map[string]int) float64 {
	if len(detected) == 0 {
		return 0
	}
	ats := make([]int, 0, len(detected))
	for _, at := range detected {
		ats = append(ats, at)
	}
	sort.Ints(ats)
	n := len(ats)
	if n%2 == 1 {
		return float64(ats[n/2])
	}
	return float64(ats[n/2-1]+ats[n/2]) / 2
}

// scheduleLegRun pairs a leg's summary with its raw detection map.
type scheduleLegRun struct {
	leg      ScheduleLeg
	detected map[string]int
}

// runScheduleLegs executes the 2x2 comparison and fills in the paired
// common-bug medians per (off, power) pair.
func runScheduleLegs(budget Budget) []scheduleLegRun {
	var runs []scheduleLegRun
	for _, lg := range scheduleLegPlans() {
		detected, execs := scheduleDetected(budget, lg.Schedule, lg.Plan)
		plan := string(lg.Plan)
		if plan == "" {
			plan = "off"
		}
		runs = append(runs, scheduleLegRun{
			leg: ScheduleLeg{
				Schedule:            string(lg.Schedule),
				PlanFuzz:            plan,
				Detected:            len(detected),
				Executions:          execs,
				MedianExecsToDetect: medianDetection(detected),
			},
			detected: detected,
		})
	}
	// scheduleLegPlans orders legs (off, power) per plan mode.
	for i := 0; i+1 < len(runs); i += 2 {
		off, power := &runs[i], &runs[i+1]
		common := map[string]bool{}
		for id := range off.detected {
			if _, ok := power.detected[id]; ok {
				common[id] = true
			}
		}
		restrict := func(m map[string]int) map[string]int {
			out := map[string]int{}
			for id, at := range m {
				if common[id] {
					out[id] = at
				}
			}
			return out
		}
		off.leg.MedianCommonExecsToDetect = medianDetection(restrict(off.detected))
		power.leg.MedianCommonExecsToDetect = medianDetection(restrict(power.detected))
	}
	return runs
}

// BenchScheduleLegs runs the 2x2 scheduling comparison (schedule off vs
// power, plan-fuzz off vs full) for the BENCH artifact.
func BenchScheduleLegs(budget Budget) []ScheduleLeg {
	runs := runScheduleLegs(budget)
	legs := make([]ScheduleLeg, 0, len(runs))
	for _, r := range runs {
		legs = append(legs, r.leg)
	}
	return legs
}

// ScheduleRecall reruns the ground-truth recall campaign per scheduling
// leg and reports detections and executions-to-detection, schedule off
// vs power at each plan mode — the corpus subsystem's validation: power
// should detect at least as many of the 59 seeded bugs while reaching
// them in fewer median executions.
func ScheduleRecall(w io.Writer, budget Budget) {
	fmt.Fprintf(w, "Power-schedule recall vs ground truth (budget %d executions per leg, %d seeds)\n\n",
		budget.Executions, budget.Seeds)

	runs := runScheduleLegs(budget)

	var rows [][]string
	for _, r := range runs {
		rows = append(rows, []string{
			r.leg.Schedule, r.leg.PlanFuzz,
			fmt.Sprintf("%d/%d", r.leg.Detected, len(buginject.Catalog)),
			fmt.Sprintf("%d", r.leg.Executions),
			fmt.Sprintf("%.0f", r.leg.MedianExecsToDetect),
			fmt.Sprintf("%.0f", r.leg.MedianCommonExecsToDetect),
		})
	}
	table(w, []string{"Schedule", "PlanFuzz", "Detected", "Execs", "MedianToDetect", "MedianCommon"}, rows)

	// Bugs only the power schedule reached, per plan mode: the energy
	// allocation's net gain over cursor order at the same budget.
	for i := 0; i+1 < len(runs); i += 2 {
		off, power := runs[i], runs[i+1]
		var powerOnly []string
		for id := range power.detected {
			if _, ok := off.detected[id]; !ok {
				powerOnly = append(powerOnly, id)
			}
		}
		sort.Strings(powerOnly)
		if len(powerOnly) > 0 {
			fmt.Fprintf(w, "\nDetected only with -schedule=power (plan-fuzz %s, %d):\n",
				power.leg.PlanFuzz, len(powerOnly))
			for _, id := range powerOnly {
				b := buginject.ByID(id)
				fmt.Fprintf(w, "  %-14s %s (%s, %s)\n", id, b.Component, b.Kind, b.Impl)
			}
		} else {
			fmt.Fprintf(w, "\nNo power-only bugs at plan-fuzz %s at this budget (raise -budget).\n",
				power.leg.PlanFuzz)
		}
	}
}
