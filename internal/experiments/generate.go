package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/buginject"
	"repro/internal/core"
)

// GeneratorLeg is one cell of the generator-recall comparison: a full
// campaign with the given generator set refreshing the corpus between
// rounds, scored against the 59-bug ground-truth catalog. The
// subsystem's claim is scenario diversity: templates mined from the
// corpus and style-biased generation reach catalog bugs the fixed
// randprog pool misses at the same budget, because refreshed seeds keep
// landing new construct combinations in front of the JIT passes.
type GeneratorLeg struct {
	Generators          []string `json:"generators"`
	Styles              []string `json:"styles,omitempty"`
	Detected            int      `json:"detected"`
	Executions          int      `json:"executions"`
	MedianExecsToDetect float64  `json:"median_execs_to_detection"`
	// GeneratorDetections counts the detected bugs whose first detection
	// rode a generator-emitted seed (finding provenance GeneratorID set)
	// rather than an original pool seed. Zero on the baseline leg by
	// construction.
	GeneratorDetections int `json:"generator_detections"`
}

// generatorLegConfigs orders the recall legs baseline-first so the
// comparison below (bugs only the generator legs reached) reads against
// leg 0. Every leg keeps randprog in the mix — the subsystem refreshes
// a rotating quota of slots, so the baseline source still fuzzes
// alongside the new ones, exactly like a production campaign.
func generatorLegConfigs() []struct {
	Generators []string
	Styles     []string
} {
	return []struct {
		Generators []string
		Styles     []string
	}{
		{[]string{"randprog"}, nil}, // subsystem off: the fixed-pool baseline
		{[]string{"randprog", "template"}, nil},
		{[]string{"randprog", "style"}, nil}, // nil styles = every registered style
		{[]string{"randprog", "template", "style"}, nil},
	}
}

// generatorDetected runs one campaign-level recall leg and returns bug
// ID -> cumulative executions at first detection, bug ID -> generator
// provenance of that first detection ("" = original pool seed), and the
// executions spent. Campaign-level because generators only exist in the
// round planner's pool refresh.
func generatorDetected(budget Budget, gens, styleNames []string) (detected map[string]int, provenance map[string]string, execs int) {
	targets := allTargets()
	fcfg := core.DefaultConfig(targets[0])
	fcfg.Seed = budget.Seed
	fcfg.StructuredOBV = true
	fcfg.Executor = budget.Executor
	res := core.RunCampaign(core.CampaignConfig{
		Seeds:      pool(budget),
		Budget:     budget.Executions,
		Targets:    targets,
		Fuzz:       fcfg,
		Seed:       budget.Seed,
		Executor:   budget.Executor,
		Generators: gens,
		Styles:     styleNames,
	})
	detected, provenance = map[string]int{}, map[string]string{}
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Bug == nil {
			continue
		}
		if at, ok := detected[f.Bug.ID]; !ok || f.AtExecution < at {
			detected[f.Bug.ID] = f.AtExecution
			provenance[f.Bug.ID] = f.GeneratorID
		}
	}
	return detected, provenance, res.Executions
}

// generatorLegRun pairs a leg's summary with its raw detection maps.
type generatorLegRun struct {
	leg        GeneratorLeg
	detected   map[string]int
	provenance map[string]string
}

// runGeneratorLegs executes every generator-recall leg on the shared
// budget.
func runGeneratorLegs(budget Budget) []generatorLegRun {
	var runs []generatorLegRun
	for _, cfg := range generatorLegConfigs() {
		detected, provenance, execs := generatorDetected(budget, cfg.Generators, cfg.Styles)
		genHits := 0
		for _, gen := range provenance {
			if gen != "" {
				genHits++
			}
		}
		runs = append(runs, generatorLegRun{
			leg: GeneratorLeg{
				Generators:          cfg.Generators,
				Styles:              cfg.Styles,
				Detected:            len(detected),
				Executions:          execs,
				MedianExecsToDetect: medianDetection(detected),
				GeneratorDetections: genHits,
			},
			detected:   detected,
			provenance: provenance,
		})
	}
	return runs
}

// BenchGeneratorLegs runs the generator-recall comparison for the BENCH
// artifact (schema v4's generator_legs).
func BenchGeneratorLegs(budget Budget) []GeneratorLeg {
	runs := runGeneratorLegs(budget)
	legs := make([]GeneratorLeg, 0, len(runs))
	for _, r := range runs {
		legs = append(legs, r.leg)
	}
	return legs
}

// GeneratorRecall reruns the ground-truth recall campaign per generator
// leg and reports detections, executions-to-detection, and the bugs
// each generator set reached that the fixed randprog pool missed — the
// template/style subsystem's validation against the 59-bug catalog.
func GeneratorRecall(w io.Writer, budget Budget) {
	fmt.Fprintf(w, "Generator recall vs ground truth (budget %d executions per leg, %d seeds)\n\n",
		budget.Executions, budget.Seeds)

	runs := runGeneratorLegs(budget)

	var rows [][]string
	for _, r := range runs {
		rows = append(rows, []string{
			strings.Join(r.leg.Generators, "+"),
			fmt.Sprintf("%d/%d", r.leg.Detected, len(buginject.Catalog)),
			fmt.Sprintf("%d", r.leg.Executions),
			fmt.Sprintf("%.0f", r.leg.MedianExecsToDetect),
			fmt.Sprintf("%d", r.leg.GeneratorDetections),
		})
	}
	table(w, []string{"Generators", "Detected", "Execs", "MedianToDetect", "GenDetections"}, rows)

	// Bugs each generator leg reached that the baseline missed: the
	// scenario-diversity gain at the same budget.
	base := runs[0]
	for _, r := range runs[1:] {
		var only []string
		for id := range r.detected {
			if _, ok := base.detected[id]; !ok {
				only = append(only, id)
			}
		}
		sort.Strings(only)
		name := strings.Join(r.leg.Generators, "+")
		if len(only) > 0 {
			fmt.Fprintf(w, "\nDetected only with -generators=%s (%d):\n", name, len(only))
			for _, id := range only {
				b := buginject.ByID(id)
				via := "pool seed"
				if gen := r.provenance[id]; gen != "" {
					via = "seed by " + gen
				}
				fmt.Fprintf(w, "  %-14s %s (%s, %s; first hit via %s)\n", id, b.Component, b.Kind, b.Impl, via)
			}
		} else {
			fmt.Fprintf(w, "\nNo %s-only bugs at this budget (raise -budget).\n", name)
		}
	}
}
