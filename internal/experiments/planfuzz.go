package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/baselines"
	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/jit"
)

// PlanRecall reruns the ground-truth recall campaign once per
// plan-generation mode — off (the fixed production pipeline), minimal
// (mandatory passes, fuzzed order), full (fuzzed selection, order, and
// loop rounds) — and reports which of the 59 seeded bugs each mode
// detects within the same budget. The interesting column is the bugs
// only a fuzzed schedule reaches: ordering-sensitive interactions the
// fixed pipeline provably cannot trigger (its pass pairs only ever
// occur in one order).
func PlanRecall(w io.Writer, budget Budget) {
	modes := []jit.PlanMode{jit.PlanDefault, jit.PlanMinimal, jit.PlanFull}
	detected := map[jit.PlanMode]map[string]int{}
	for _, mode := range modes {
		detected[mode] = recallDetected(budget, mode)
	}

	fmt.Fprintf(w, "Plan-fuzz recall vs ground truth (budget %d executions per mode, %d seeds)\n\n",
		budget.Executions, budget.Seeds)

	type row struct {
		impl      buginject.Impl
		component string
		total     int
		found     map[jit.PlanMode]int
	}
	agg := map[string]*row{}
	var order []string
	for _, b := range buginject.Catalog {
		key := string(b.Impl) + "/" + b.Component
		r := agg[key]
		if r == nil {
			r = &row{impl: b.Impl, component: b.Component, found: map[jit.PlanMode]int{}}
			agg[key] = r
			order = append(order, key)
		}
		r.total++
		for _, mode := range modes {
			if _, ok := detected[mode][b.ID]; ok {
				r.found[mode]++
			}
		}
	}
	sort.Strings(order)

	var rows [][]string
	totals := map[jit.PlanMode]int{}
	total := 0
	for _, key := range order {
		r := agg[key]
		cells := []string{string(r.impl), r.component}
		for _, mode := range modes {
			cells = append(cells, fmt.Sprintf("%d/%d", r.found[mode], r.total))
			totals[mode] += r.found[mode]
		}
		total += r.total
		rows = append(rows, cells)
	}
	totalCells := []string{"", "Total"}
	for _, mode := range modes {
		totalCells = append(totalCells, fmt.Sprintf("%d/%d", totals[mode], total))
	}
	rows = append(rows, totalCells)
	table(w, []string{"Impl", "Component", "off", "minimal", "full"}, rows)

	// Bugs only a fuzzed schedule reached: the plan dimension's net gain.
	var planOnly []string
	for id := range detected[jit.PlanFull] {
		if _, ok := detected[jit.PlanDefault][id]; !ok {
			planOnly = append(planOnly, id)
		}
	}
	sort.Strings(planOnly)
	if len(planOnly) > 0 {
		fmt.Fprintf(w, "\nDetected only with -plan-fuzz=full (%d):\n", len(planOnly))
		for _, id := range planOnly {
			b := buginject.ByID(id)
			fmt.Fprintf(w, "  %-14s %s (%s, %s)\n", id, b.Component, b.Kind, b.Impl)
		}
	} else {
		fmt.Fprintln(w, "\nNo plan-only bugs at this budget (raise -budget).")
	}
}

// recallDetected runs one Recall-shaped campaign with the given
// plan-generation mode and returns bug ID -> cumulative executions at
// first detection.
func recallDetected(budget Budget, mode jit.PlanMode) map[string]int {
	seeds := pool(budget)
	targets := allTargets()
	detected := map[string]int{}
	execs := 0
	idx := int64(0)
	parsed := corpus.NewParseCache()
	for execs < budget.Executions {
		progressed := false
		for i, seed := range seeds {
			if execs >= budget.Executions {
				break
			}
			idx++
			tool := baselines.NewMopFuzzer(targets[(int(idx)+i)%len(targets)], nil)
			tool.Cfg.PlanFuzz = mode
			fr, err := budget.withExecutor(tool).FuzzSeed(seed.Name, parsed.Parse(seed), budget.Seed*104729+idx)
			if err != nil {
				continue
			}
			progressed = true
			execs += fr.Executions
			for _, fd := range fr.Findings {
				if fd.Bug != nil {
					if _, ok := detected[fd.Bug.ID]; !ok {
						detected[fd.Bug.ID] = execs
					}
				}
			}
		}
		if !progressed {
			break
		}
	}
	return detected
}
