package exec

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// TestRequestPlanRoundTrip: a compilation plan riding a request must
// survive the JSON wire exactly — the decoded child-side execution is
// byte-identical to running the plan in-process.
func TestRequestPlanRoundTrip(t *testing.T) {
	spec := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	plan := jit.GeneratePlan(3, jit.PlanFull)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := jvm.Options{ForceCompile: true, Plan: plan}

	p := wireProg(t)
	want, err := jvm.Run(lang.CloneProgram(p), spec, opt)
	if err != nil {
		t.Fatal(err)
	}

	req, err := NewRequest(p, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Request
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Options.Plan == nil || decoded.Options.Plan.Fingerprint() != plan.Fingerprint() {
		t.Fatalf("plan did not survive the wire: %+v", decoded.Options.Plan)
	}

	var in, out bytes.Buffer
	in.Write(data)
	in.WriteByte('\n')
	if err := Serve(&in, &out); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(&out).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("in-band error: %s", resp.Error)
	}
	got, err := decodeRun(resp.Result, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plan-bearing wire round trip diverged\n got: %+v\nwant: %+v", got, want)
	}
}

// TestChildRejectsPlanBelowPlanWireVersion: a plan riding a request
// pinned to a pre-plan wire version must be refused in-band, never
// silently executed under the fixed pipeline.
func TestChildRejectsPlanBelowPlanWireVersion(t *testing.T) {
	req, err := NewRequest(wireProg(t), jvm.Reference(),
		jvm.Options{ForceCompile: true, Plan: jit.GeneratePlan(1, jit.PlanMinimal)})
	if err != nil {
		t.Fatal(err)
	}
	req.Version = PlanWireVersion - 1
	resp := req.Run()
	if resp.Error == "" || !strings.Contains(resp.Error, "compilation plan") {
		t.Errorf("want in-band plan-version error, got %+v", resp)
	}
	if resp.Result != nil {
		t.Error("rejected request still produced a result")
	}

	// The same request without a plan is fine at the old version: plan-free
	// traffic keeps flowing to older children.
	plain, err := NewRequest(wireProg(t), jvm.Reference(), jvm.Options{ForceCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	plain.Version = PlanWireVersion - 1
	if resp := plain.Run(); resp.Error != "" {
		t.Errorf("plan-free request rejected at old version: %s", resp.Error)
	}
}

// TestPlanVersionFault: the parent must refuse to send plan-bearing
// requests to a serve child whose hello negotiates below the plan wire
// version — a classified, non-silent fault naming the remedy.
func TestPlanVersionFault(t *testing.T) {
	planned, err := NewRequest(wireProg(t), jvm.Reference(),
		jvm.Options{ForceCompile: true, Plan: jit.GeneratePlan(1, jit.PlanFull)})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewRequest(wireProg(t), jvm.Reference(), jvm.Options{ForceCompile: true})
	if err != nil {
		t.Fatal(err)
	}

	old := ServerHello{Version: PlanWireVersion - 1, MinVersion: MinWireVersion, PID: 42}
	f := planVersionFault(old, []*Request{plain, planned})
	if f == nil {
		t.Fatal("old child accepted a plan-bearing batch")
	}
	if f.Class != harness.FaultHarness {
		t.Errorf("fault class = %v, want %v", f.Class, harness.FaultHarness)
	}
	for _, want := range []string{"wire", "plan", "rebuild"} {
		if !strings.Contains(f.Message, want) {
			t.Errorf("fault message missing %q: %s", want, f.Message)
		}
	}
	if planVersionFault(old, []*Request{plain}) != nil {
		t.Error("plan-free batch faulted on an old child")
	}
	current := ServerHello{Version: WireVersion, MinVersion: MinWireVersion, PID: 42}
	if planVersionFault(current, []*Request{planned}) != nil {
		t.Error("current child faulted on a plan-bearing batch")
	}
}

// TestNegotiateVersionCapsAtChildDialect: batch and request versions
// are downgraded to an older child's dialect so plan-free traffic still
// flows (all post-v1 request fields are omitempty).
func TestNegotiateVersionCapsAtChildDialect(t *testing.T) {
	mk := func() []*Request {
		r1, err := NewRequest(wireProg(t), jvm.Reference(), jvm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := NewRequest(wireProg(t), jvm.Reference(), jvm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return []*Request{r1, r2}
	}

	reqs := mk()
	if v := negotiateVersion(ServerHello{Version: 2, MinVersion: 1}, reqs); v != 2 {
		t.Errorf("negotiated %d with a v2 child, want 2", v)
	}
	for i, r := range reqs {
		if r.Version != 2 {
			t.Errorf("request %d version = %d, want 2", i, r.Version)
		}
	}

	reqs = mk()
	if v := negotiateVersion(ServerHello{Version: WireVersion + 5, MinVersion: 1}, reqs); v != WireVersion {
		t.Errorf("negotiated %d with a newer child, want %d", v, WireVersion)
	}
	for i, r := range reqs {
		if r.Version != WireVersion {
			t.Errorf("request %d version = %d, want %d", i, r.Version, WireVersion)
		}
	}
}
