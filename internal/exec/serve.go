package exec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/jit"
)

// maxBatchFrame bounds one NDJSON frame in serve mode. Campaign programs
// are a few KB of source; even a full-differential batch (one request
// per spec) stays far below this, so hitting the cap means a corrupt or
// hostile stream, not a legitimate workload.
const maxBatchFrame = 64 << 20

// ServeStream is the child side of the warm-pool protocol
// (`minijvm -exec-serve`): write a ServerHello, then answer NDJSON
// BatchRequest lines with BatchResponse lines until stdin closes. A
// clean EOF — the parent recycling the child — returns nil; a framing or
// version error returns non-nil and the child exits ExitRequestError.
//
// The child keeps one jit.Cache across every request it serves. The
// cache is transparent (a hit is byte-equivalent to recompiling), so a
// warm child stays byte-identical to a cold one while skipping most
// compilation work — the pool's main throughput lever alongside the
// spawn it already avoided.
//
// Substrate panics are NOT recovered, matching single-shot -exec-json:
// an escaped panic is exactly the signal the parent's process-level
// containment classifies. The parent retries or faults only the
// in-flight batch.
func ServeStream(in io.Reader, out io.Writer) error {
	enc := json.NewEncoder(out)
	if err := enc.Encode(&ServerHello{Version: WireVersion, MinVersion: MinWireVersion, PID: os.Getpid()}); err != nil {
		return fmt.Errorf("exec: write hello: %w", err)
	}
	flush(out)

	cache := jit.NewCache(0)
	var served int64
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64<<10), maxBatchFrame)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var batch BatchRequest
		if err := json.Unmarshal(line, &batch); err != nil {
			return fmt.Errorf("exec: decode batch: %w", err)
		}
		if batch.Version < MinWireVersion || batch.Version > WireVersion {
			return fmt.Errorf("exec: batch wire version %d, child speaks %d..%d", batch.Version, MinWireVersion, WireVersion)
		}
		resp := &BatchResponse{Version: WireVersion}
		corrupt := false
		for _, req := range batch.Requests {
			if req.Inject == "corrupt" {
				corrupt = true
			}
			resp.Responses = append(resp.Responses, req.run(cache))
			served++
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		resp.Telemetry = ChildTelemetry{Executions: served, HeapBytes: ms.HeapAlloc}
		if corrupt {
			// Injected frame corruption: emit bytes that are neither a
			// BatchResponse nor valid JSON, so the parent exercises its
			// corrupt-frame recovery path.
			fmt.Fprintln(out, "\x00exec: injected corrupt frame\x00")
			flush(out)
			continue
		}
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("exec: write batch response: %w", err)
		}
		flush(out)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("exec: read batch: %w", err)
	}
	return nil
}

// flush pushes buffered output to the pipe when the writer buffers —
// serve mode must not sit on a finished response.
func flush(out io.Writer) {
	type flusher interface{ Flush() error }
	if f, ok := out.(flusher); ok {
		f.Flush()
	}
}
