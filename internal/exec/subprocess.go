package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	osexec "os/exec"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// Subprocess executes every program in a fresh `minijvm -exec-json`
// child process. The fuzzer and the system under test stop sharing a
// failure domain: a substrate panic, an unbounded hang, or a runaway
// allocation kills only the child, and the parent classifies the death
// into the harness.FaultClass taxonomy. Each execution pays a process
// spawn, so this backend trades throughput for isolation — the paper's
// actual deployment shape, where targets are external JVM binaries.
type Subprocess struct {
	// Path is the minijvm binary.
	Path string
	// Timeout is the per-execution wall-clock watchdog; when it expires
	// the child is killed and the execution classified FaultTimeout.
	// Zero relies on the caller's context alone.
	Timeout time.Duration
	// InjectFault is forwarded as Request.Inject on every execution — a
	// harness-test seam ("panic" or "hang"); production leaves it empty.
	InjectFault string

	execs       atomic.Int64
	faults      atomic.Int64
	childMicros atomic.Int64
}

// NewSubprocess returns a subprocess backend driving the given minijvm
// binary.
func NewSubprocess(path string) *Subprocess { return &Subprocess{Path: path} }

// FindMinijvm resolves the minijvm binary: an explicit path wins, then
// the MINIJVM environment variable, then $PATH lookup.
func FindMinijvm(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("exec: minijvm binary: %w", err)
		}
		return explicit, nil
	}
	if p := os.Getenv("MINIJVM"); p != "" {
		if _, err := os.Stat(p); err != nil {
			return "", fmt.Errorf("exec: $MINIJVM: %w", err)
		}
		return p, nil
	}
	p, err := osexec.LookPath("minijvm")
	if err != nil {
		return "", fmt.Errorf("exec: minijvm not found (build it with `go build ./cmd/minijvm` and pass -minijvm or set $MINIJVM): %w", err)
	}
	return p, nil
}

// FromFlags resolves the shared -backend/-minijvm/-child-timeout CLI
// surface: "" or "inprocess" selects the nil (in-process, byte-identical
// default) executor; "subprocess" locates the minijvm binary and builds
// a watchdogged Subprocess backend.
func FromFlags(backend, minijvmPath string, childTimeout time.Duration) (Executor, error) {
	switch backend {
	case "", "inprocess":
		return nil, nil
	case "subprocess":
		path, err := FindMinijvm(minijvmPath)
		if err != nil {
			return nil, err
		}
		sub := NewSubprocess(path)
		sub.Timeout = childTimeout
		return sub, nil
	default:
		return nil, fmt.Errorf("unknown -backend %q (want inprocess or subprocess)", backend)
	}
}

// Stats is a snapshot of the backend's counters.
type Stats struct {
	Executions  int64 // child processes spawned
	Faults      int64 // executions classified as backend faults
	ChildMicros int64 // cumulative child-reported wall time
}

// Stats returns the counters accumulated so far.
func (s *Subprocess) Stats() Stats {
	return Stats{
		Executions:  s.execs.Load(),
		Faults:      s.faults.Load(),
		ChildMicros: s.childMicros.Load(),
	}
}

// Execute implements Executor by spawning one child per execution.
func (s *Subprocess) Execute(ctx context.Context, p *lang.Program, spec jvm.Spec, opt jvm.Options) (*jvm.ExecResult, error) {
	req, err := NewRequest(p, spec, opt)
	if err != nil {
		return nil, err
	}
	req.Inject = s.InjectFault
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("exec: encode request: %w", err)
	}

	tctx := ctx
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	cmd := osexec.CommandContext(tctx, s.Path, "-exec-json")
	cmd.Stdin = bytes.NewReader(payload)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr

	s.execs.Add(1)
	runErr := cmd.Run()
	if runErr != nil {
		err := s.classify(ctx, tctx, runErr, stderr.String())
		if _, ok := err.(*BackendFault); ok {
			s.faults.Add(1)
		}
		return nil, err
	}

	var resp Response
	if err := json.Unmarshal(stdout.Bytes(), &resp); err != nil {
		s.faults.Add(1)
		return nil, &BackendFault{
			Class:   harness.FaultHarness,
			Message: fmt.Sprintf("minijvm child wrote malformed response: %v", err),
			Stderr:  stderr.String(),
		}
	}
	if resp.Version != WireVersion {
		return nil, fmt.Errorf("exec: minijvm child speaks wire version %d, want %d (rebuild the binary)", resp.Version, WireVersion)
	}
	s.childMicros.Add(resp.Timings.TotalMicros)
	if resp.Error != "" {
		// In-band program-level rejection: surface the exact jvm.Run
		// error text so both backends report identical seed errors.
		return nil, errors.New(resp.Error)
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("exec: minijvm child sent neither result nor error")
	}
	res, err := decodeRun(resp.Result, spec)
	if err != nil {
		return nil, err
	}
	if opt.Coverage != nil {
		for _, name := range resp.Result.CoverageHits {
			opt.Coverage.Hit(name)
		}
	}
	return res, nil
}

// ExecuteDifferential implements Executor: one child per spec, grouped
// exactly like jvm.RunDifferential.
func (s *Subprocess) ExecuteDifferential(ctx context.Context, p *lang.Program, specs []jvm.Spec, opt jvm.Options) (*jvm.Differential, error) {
	d := &jvm.Differential{Groups: map[string][]jvm.Spec{}}
	for _, spec := range specs {
		r, err := s.Execute(ctx, p, spec, opt)
		if err != nil {
			return nil, err
		}
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], spec)
	}
	return d, nil
}

// classify maps a dead child to the fault taxonomy. Precedence: parent
// shutdown is nobody's fault; a watchdog kill is FaultTimeout; a Go
// panic (ExitPanic, "panic:" on stderr) is FaultHarness with the
// component blamed from the child's stack; ExitRequestError is an
// ordinary error (the request, not the target, was bad); anything else
// — unexpected status, signal death — is FaultHarness.
func (s *Subprocess) classify(ctx, tctx context.Context, runErr error, stderr string) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if tctx.Err() == context.DeadlineExceeded {
		return &BackendFault{
			Class:   harness.FaultTimeout,
			Message: fmt.Sprintf("minijvm child exceeded the %s wall-clock deadline and was killed", s.Timeout),
			Stderr:  stderr,
		}
	}
	var ee *osexec.ExitError
	if !errors.As(runErr, &ee) {
		return fmt.Errorf("exec: spawn minijvm: %w", runErr)
	}
	code := ee.ExitCode()
	for _, marker := range []string{"panic:", "fatal error:"} {
		i := strings.Index(stderr, marker)
		if i < 0 {
			continue
		}
		msg := stderr[i:]
		if nl := strings.IndexByte(msg, '\n'); nl >= 0 {
			msg = msg[:nl]
		}
		return &BackendFault{
			Class:     harness.FaultHarness,
			Component: harness.ComponentFromStack(stderr),
			Message:   fmt.Sprintf("minijvm child died: %s", strings.TrimSpace(msg)),
			ExitCode:  code,
			Stderr:    stderr,
		}
	}
	if code == ExitRequestError {
		return fmt.Errorf("exec: minijvm rejected the request: %s", strings.TrimSpace(stderr))
	}
	what := fmt.Sprintf("exited with status %d", code)
	if code < 0 {
		what = "was killed by a signal"
	}
	return &BackendFault{
		Class:    harness.FaultHarness,
		Message:  fmt.Sprintf("minijvm child %s: %s", what, strings.TrimSpace(stderr)),
		ExitCode: code,
		Stderr:   stderr,
	}
}

// BackendFault is a child-process death classified into the harness
// taxonomy. It implements harness.Faulter, so a supervised task
// surfacing it is recorded as a first-class fault — process-level
// containment composing with the supervisor's panic containment.
type BackendFault struct {
	Class     harness.FaultClass
	Component string
	Message   string
	ExitCode  int
	Stderr    string
}

// Error implements error.
func (f *BackendFault) Error() string {
	return fmt.Sprintf("exec: %s: %s", f.Class, f.Message)
}

// HarnessFault implements harness.Faulter. The child's stderr (which
// holds the goroutine stack for panics) travels as the fault's stack.
func (f *BackendFault) HarnessFault() *harness.Fault {
	return &harness.Fault{
		Class:     f.Class,
		Component: f.Component,
		Message:   f.Message,
		Stack:     f.Stderr,
	}
}
