package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	osexec "os/exec"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// Subprocess executes every program in a fresh `minijvm -exec-json`
// child process. The fuzzer and the system under test stop sharing a
// failure domain: a substrate panic, an unbounded hang, or a runaway
// allocation kills only the child, and the parent classifies the death
// into the harness.FaultClass taxonomy. Each execution pays a process
// spawn, so this backend trades throughput for isolation — the paper's
// actual deployment shape, where targets are external JVM binaries.
type Subprocess struct {
	// Path is the minijvm binary.
	Path string
	// Timeout is the per-execution wall-clock watchdog; when it expires
	// the child is killed and the execution classified FaultTimeout.
	// Zero relies on the caller's context alone.
	Timeout time.Duration
	// InjectFault is forwarded as Request.Inject on every execution — a
	// harness-test seam ("panic" or "hang"); production leaves it empty.
	InjectFault string

	execs         atomic.Int64
	faults        atomic.Int64
	childMicros   atomic.Int64
	spawns        atomic.Int64
	spawnsAvoided atomic.Int64
}

// NewSubprocess returns a subprocess backend driving the given minijvm
// binary.
func NewSubprocess(path string) *Subprocess { return &Subprocess{Path: path} }

// FindMinijvm resolves the minijvm binary: an explicit path wins, then
// the MINIJVM environment variable, then $PATH lookup.
func FindMinijvm(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("exec: minijvm binary: %w", err)
		}
		return explicit, nil
	}
	if p := os.Getenv("MINIJVM"); p != "" {
		if _, err := os.Stat(p); err != nil {
			return "", fmt.Errorf("exec: $MINIJVM: %w", err)
		}
		return p, nil
	}
	p, err := osexec.LookPath("minijvm")
	if err != nil {
		return "", fmt.Errorf("exec: minijvm not found (build it with `go build ./cmd/minijvm` and pass -minijvm or set $MINIJVM): %w", err)
	}
	return p, nil
}

// PoolTuning is the optional pool-shape subset of the CLI surface:
// zero values keep PoolConfig defaults.
type PoolTuning struct {
	Children          int
	RecycleAfter      int64
	MaxChildHeapBytes uint64
}

// FromFlags resolves the shared -backend/-minijvm/-child-timeout CLI
// surface: "" or "inprocess" selects the nil (in-process, byte-identical
// default) executor; "subprocess" locates the minijvm binary and builds
// a watchdogged Subprocess backend; "pool" builds the warm child pool
// (shaped by the optional tuning — callers without pool flags omit it
// and get the defaults). Callers should CloseExecutor the result when
// done so pooled children don't outlive the campaign.
func FromFlags(backend, minijvmPath string, childTimeout time.Duration, tuning ...PoolTuning) (Executor, error) {
	switch backend {
	case "", "inprocess":
		return nil, nil
	case "subprocess":
		path, err := FindMinijvm(minijvmPath)
		if err != nil {
			return nil, err
		}
		sub := NewSubprocess(path)
		sub.Timeout = childTimeout
		return sub, nil
	case "pool":
		path, err := FindMinijvm(minijvmPath)
		if err != nil {
			return nil, err
		}
		cfg := PoolConfig{Path: path, Timeout: childTimeout}
		if len(tuning) > 0 {
			cfg.Children = tuning[0].Children
			cfg.RecycleAfter = tuning[0].RecycleAfter
			cfg.MaxChildHeapBytes = tuning[0].MaxChildHeapBytes
		}
		return NewPool(cfg), nil
	default:
		return nil, fmt.Errorf("unknown -backend %q (want inprocess, subprocess, or pool)", backend)
	}
}

// Stats is a snapshot of a backend's counters, shared by the Subprocess
// and Pool backends (fields a backend doesn't track stay zero).
type Stats struct {
	Executions  int64 // executions performed through the backend
	Faults      int64 // executions classified as backend faults
	ChildMicros int64 // cumulative child-reported wall time

	Spawns        int64 // child processes actually spawned
	SpawnsAvoided int64 // executions served without a fresh spawn
	Batches       int64 // serve-mode round trips (pool only)

	RecycledByCount int64 // children retired at the execution budget
	RecycledByMem   int64 // children retired at the heap high-water mark
	Killed          int64 // children force-killed (timeouts, failures, Close)
	Retries         int64 // batches retried on a fresh child
}

// MeanBatch is the average executions per serve-mode round trip — the
// amortization the bench report pins (>1 means batching is real).
func (st Stats) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.Executions) / float64(st.Batches)
}

// Stats returns the counters accumulated so far.
func (s *Subprocess) Stats() Stats {
	return Stats{
		Executions:    s.execs.Load(),
		Faults:        s.faults.Load(),
		ChildMicros:   s.childMicros.Load(),
		Spawns:        s.spawns.Load(),
		SpawnsAvoided: s.spawnsAvoided.Load(),
	}
}

// Execute implements Executor by spawning one child per execution.
func (s *Subprocess) Execute(ctx context.Context, p *lang.Program, spec jvm.Spec, opt jvm.Options) (*jvm.ExecResult, error) {
	req, err := NewRequest(p, spec, opt)
	if err != nil {
		return nil, err
	}
	req.Inject = s.InjectFault
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("exec: encode request: %w", err)
	}

	tctx := ctx
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	cmd := osexec.CommandContext(tctx, s.Path, "-exec-json")
	cmd.Stdin = bytes.NewReader(payload)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr

	s.execs.Add(1)
	s.spawns.Add(1)
	runErr := cmd.Run()
	if runErr != nil {
		err := s.classify(ctx, tctx, runErr, stderr.String())
		if _, ok := err.(*BackendFault); ok {
			s.faults.Add(1)
		}
		return nil, err
	}

	var resp Response
	if err := json.Unmarshal(stdout.Bytes(), &resp); err != nil {
		s.faults.Add(1)
		return nil, &BackendFault{
			Class:   harness.FaultHarness,
			Message: fmt.Sprintf("minijvm child wrote malformed response: %v", err),
			Stderr:  stderr.String(),
		}
	}
	s.childMicros.Add(resp.Timings.TotalMicros)
	return handleResponse(&resp, spec, opt)
}

// handleResponse turns one wire Response into the parent-side
// ExecResult, shared by the Subprocess and Pool backends so every
// in-band outcome — version skew, program rejection, coverage merge —
// is interpreted identically.
func handleResponse(resp *Response, spec jvm.Spec, opt jvm.Options) (*jvm.ExecResult, error) {
	if resp.Version < MinWireVersion || resp.Version > WireVersion {
		return nil, fmt.Errorf("exec: minijvm child speaks wire version %d, want %d..%d (rebuild the binary)", resp.Version, MinWireVersion, WireVersion)
	}
	if resp.Error != "" {
		// In-band program-level rejection: surface the exact jvm.Run
		// error text so both backends report identical seed errors.
		return nil, errors.New(resp.Error)
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("exec: minijvm child sent neither result nor error")
	}
	res, err := decodeRun(resp.Result, spec)
	if err != nil {
		return nil, err
	}
	if opt.Coverage != nil {
		for _, name := range resp.Result.CoverageHits {
			opt.Coverage.Hit(name)
		}
	}
	return res, nil
}

// ExecuteDifferential implements Executor: the whole differential runs
// on ONE serve-mode child — a single spawn and a single batched round
// trip — where this backend historically spawned one child per spec.
// Grouping matches jvm.RunDifferential exactly.
func (s *Subprocess) ExecuteDifferential(ctx context.Context, p *lang.Program, specs []jvm.Spec, opt jvm.Options) (*jvm.Differential, error) {
	reqs := make([]*Request, 0, len(specs))
	for _, spec := range specs {
		req, err := NewRequest(p, spec, opt)
		if err != nil {
			return nil, err
		}
		req.Inject = s.InjectFault
		reqs = append(reqs, req)
	}
	resps, err := s.serveBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	d := &jvm.Differential{Groups: map[string][]jvm.Spec{}}
	for i, spec := range specs {
		r, err := handleResponse(resps[i], spec, opt)
		if err != nil {
			return nil, err
		}
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], spec)
	}
	return d, nil
}

// ExecutePlanDifferential implements Executor: one spec, one request per
// plan, all riding a single serve-mode batch. Grouping matches
// jvm.RunPlanDifferential exactly.
func (s *Subprocess) ExecutePlanDifferential(ctx context.Context, p *lang.Program, spec jvm.Spec, plans []*jit.Plan, opt jvm.Options) (*jvm.Differential, error) {
	reqs := make([]*Request, 0, len(plans))
	for _, plan := range plans {
		o := opt
		o.Plan = plan
		req, err := NewRequest(p, spec, o)
		if err != nil {
			return nil, err
		}
		req.Inject = s.InjectFault
		reqs = append(reqs, req)
	}
	resps, err := s.serveBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	d := &jvm.Differential{Groups: map[string][]jvm.Spec{}}
	for i, plan := range plans {
		r, err := handleResponse(resps[i], spec, opt)
		if err != nil {
			return nil, err
		}
		r.PlanID = jit.PlanID(plan)
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], spec)
	}
	return d, nil
}

// serveBatch runs one batch of requests through a dedicated serve-mode
// child: spawn, hello, plan/version negotiation, one round trip, clean
// shutdown.
func (s *Subprocess) serveBatch(ctx context.Context, reqs []*Request) ([]*Response, error) {
	s.spawns.Add(1)
	c, err := spawnChild(s.Path)
	if err != nil {
		return nil, err
	}
	if bf := planVersionFault(c.hello, reqs); bf != nil {
		c.shutdown(false)
		s.faults.Add(1)
		return nil, bf
	}
	v := negotiateVersion(c.hello, reqs)
	deadline := time.Duration(0)
	if s.Timeout > 0 {
		deadline = s.Timeout * time.Duration(len(reqs))
	}
	resp, timedOut, rtErr := c.roundTrip(ctx, deadline, &BatchRequest{Version: v, Requests: reqs})
	if rtErr != nil {
		c.shutdown(true)
		err := classifyServeFailure(ctx, timedOut, deadline, c, rtErr)
		if _, ok := err.(*BackendFault); ok {
			s.faults.Add(1)
		}
		return nil, err
	}
	c.shutdown(false)
	if len(resp.Responses) != len(reqs) {
		s.faults.Add(1)
		return nil, &BackendFault{
			Class:   harness.FaultHarness,
			Message: fmt.Sprintf("minijvm child answered %d of %d batched executions", len(resp.Responses), len(reqs)),
		}
	}
	s.execs.Add(int64(len(reqs)))
	s.spawnsAvoided.Add(int64(len(reqs)) - 1)
	for _, r := range resp.Responses {
		s.childMicros.Add(r.Timings.TotalMicros)
	}
	return resp.Responses, nil
}

// planVersionFault refuses to send plan-bearing requests to a serve
// child whose negotiated wire version predates compilation plans.
// Letting such a batch through would end one of two bad ways: a
// version-enforcing old child rejects it opaquely, and a lenient one
// silently compiles under its fixed default plan while the parent
// attributes the output to the fuzzed plan — corrupting the plan
// differential. The fault is deterministic for the child binary, so
// callers must not retry it.
func planVersionFault(hello ServerHello, reqs []*Request) *BackendFault {
	if hello.Version >= PlanWireVersion {
		return nil
	}
	for _, r := range reqs {
		if r.Options.Plan != nil {
			return &BackendFault{
				Class: harness.FaultHarness,
				Message: fmt.Sprintf("minijvm serve child (pid %d) speaks wire %d..%d, which cannot express compilation plans (need v%d+; rebuild the binary)",
					hello.PID, hello.MinVersion, hello.Version, PlanWireVersion),
			}
		}
	}
	return nil
}

// negotiateVersion caps the batch (and each request's) version at the
// child's best dialect, so plan-free traffic still flows to children one
// protocol behind. Plan-bearing requests are never downgraded below
// PlanWireVersion — planVersionFault must run first and reject those.
func negotiateVersion(hello ServerHello, reqs []*Request) int {
	v := WireVersion
	if hello.Version < v {
		v = hello.Version
	}
	for _, r := range reqs {
		if r.Version > v {
			r.Version = v
		}
	}
	return v
}

// classify maps a dead child to the fault taxonomy. Precedence: parent
// shutdown is nobody's fault; a watchdog kill is FaultTimeout; a Go
// panic (ExitPanic, "panic:" on stderr) is FaultHarness with the
// component blamed from the child's stack; ExitRequestError is an
// ordinary error (the request, not the target, was bad); anything else
// — unexpected status, signal death — is FaultHarness.
func (s *Subprocess) classify(ctx, tctx context.Context, runErr error, stderr string) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if tctx.Err() == context.DeadlineExceeded {
		return &BackendFault{
			Class:   harness.FaultTimeout,
			Message: fmt.Sprintf("minijvm child exceeded the %s wall-clock deadline and was killed", s.Timeout),
			Stderr:  stderr,
		}
	}
	var ee *osexec.ExitError
	if !errors.As(runErr, &ee) {
		return fmt.Errorf("exec: spawn minijvm: %w", runErr)
	}
	code := ee.ExitCode()
	if bf := panicFault(stderr, code); bf != nil {
		bf.Message = "minijvm child died: " + bf.Message
		return bf
	}
	if code == ExitRequestError {
		return fmt.Errorf("exec: minijvm rejected the request: %s", strings.TrimSpace(stderr))
	}
	what := fmt.Sprintf("exited with status %d", code)
	if code < 0 {
		what = "was killed by a signal"
	}
	return &BackendFault{
		Class:    harness.FaultHarness,
		Message:  fmt.Sprintf("minijvm child %s: %s", what, strings.TrimSpace(stderr)),
		ExitCode: code,
		Stderr:   stderr,
	}
}

// panicFault classifies a dead child whose stderr carries a Go panic
// marker, blaming the component from the child's stack. Returns nil for
// marker-less deaths (signal kills, abrupt exits), which the pool treats
// as retryable where a panic is deterministic and is not.
func panicFault(stderr string, code int) *BackendFault {
	for _, marker := range []string{"panic:", "fatal error:"} {
		i := strings.Index(stderr, marker)
		if i < 0 {
			continue
		}
		msg := stderr[i:]
		if nl := strings.IndexByte(msg, '\n'); nl >= 0 {
			msg = msg[:nl]
		}
		return &BackendFault{
			Class:     harness.FaultHarness,
			Component: harness.ComponentFromStack(stderr),
			Message:   strings.TrimSpace(msg),
			ExitCode:  code,
			Stderr:    stderr,
			panicked:  true,
		}
	}
	return nil
}

// classifyServeFailure maps a failed serve-mode round trip onto the
// fault taxonomy, the batched analogue of Subprocess.classify with the
// same precedence: caller cancellation is nobody's fault, a deadline
// kill is FaultTimeout, a panic marker on stderr is FaultHarness with
// component blame, and anything else — EOF, corrupt frame, signal death
// — is a marker-less FaultHarness.
func classifyServeFailure(ctx context.Context, timedOut bool, deadline time.Duration, c *poolChild, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if timedOut {
		return &BackendFault{
			Class:   harness.FaultTimeout,
			Message: fmt.Sprintf("minijvm serve child (pid %d) exceeded the %s batch deadline and was killed", c.hello.PID, deadline),
			Stderr:  c.stderrText(),
		}
	}
	stderr := c.stderrText()
	if bf := panicFault(stderr, c.exitCode()); bf != nil {
		bf.Message = fmt.Sprintf("minijvm serve child (pid %d) died: %s", c.hello.PID, bf.Message)
		return bf
	}
	return &BackendFault{
		Class:    harness.FaultHarness,
		Message:  fmt.Sprintf("minijvm serve child (pid %d) failed mid-batch: %v", c.hello.PID, err),
		ExitCode: c.exitCode(),
		Stderr:   stderr,
	}
}

// BackendFault is a child-process death classified into the harness
// taxonomy. It implements harness.Faulter, so a supervised task
// surfacing it is recorded as a first-class fault — process-level
// containment composing with the supervisor's panic containment.
type BackendFault struct {
	Class     harness.FaultClass
	Component string
	Message   string
	ExitCode  int
	Stderr    string

	// panicked marks a death with a Go panic marker on stderr — a
	// deterministic substrate failure the pool must not retry (it would
	// just panic again), unlike the SIGKILL-shaped deaths it retries
	// once on a fresh child.
	panicked bool
}

// Error implements error.
func (f *BackendFault) Error() string {
	return fmt.Sprintf("exec: %s: %s", f.Class, f.Message)
}

// HarnessFault implements harness.Faulter. The child's stderr (which
// holds the goroutine stack for panics) travels as the fault's stack.
func (f *BackendFault) HarnessFault() *harness.Fault {
	return &harness.Fault{
		Class:     f.Class,
		Component: f.Component,
		Message:   f.Message,
		Stack:     f.Stderr,
	}
}
