package exec

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/coverage"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

const wireSrc = `
class Wire {
  static void main() {
    long t = 0;
    for (int i = 0; i < 400; i += 1) {
      t = t + Wire.work(i);
    }
    print(t);
  }
  static int work(int x) {
    int y = x * 3 + 1;
    if (y > 100) {
      y = y - x;
    }
    return y;
  }
}
`

func wireProg(t *testing.T) *lang.Program {
	t.Helper()
	p, err := lang.Parse(wireSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWireRoundTrip pins the tentpole's core invariant: an execution
// that crosses the wire (request encode -> child Run -> response encode
// -> parent decode) reconstructs the exact ExecResult jvm.Run produces
// in-process.
func TestWireRoundTrip(t *testing.T) {
	spec := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	for _, opt := range []jvm.Options{
		{ForceCompile: true, MaxSteps: 1_000_000},
		{ForceCompile: true, Flags: profile.DefaultFlags()},
		{ForceCompile: true, StructuredOBV: true},
		{PureInterpreter: true},
		{ForceCompile: true, Bugs: []*buginject.Bug{}}, // DisableBugs ablation
		{ForceCompile: true, CompileOnly: "Wire.work"},
	} {
		p := wireProg(t)
		want, err := jvm.Run(lang.CloneProgram(p), spec, opt)
		if err != nil {
			t.Fatal(err)
		}

		req, err := NewRequest(p, spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Force a real JSON round trip, exactly what the subprocess does.
		var in, out bytes.Buffer
		if err := json.NewEncoder(&in).Encode(req); err != nil {
			t.Fatal(err)
		}
		if err := Serve(&in, &out); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.NewDecoder(&out).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Error != "" {
			t.Fatalf("in-band error: %s", resp.Error)
		}
		got, err := decodeRun(resp.Result, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("opt %+v: wire round trip diverged\n got: %+v\nwant: %+v", opt, got, want)
		}
	}
}

func TestWireCoverageHits(t *testing.T) {
	spec := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	direct := coverage.NewTracker()
	if _, err := jvm.Run(wireProg(t), spec, jvm.Options{ForceCompile: true, Coverage: direct}); err != nil {
		t.Fatal(err)
	}

	req, err := NewRequest(wireProg(t), spec, jvm.Options{ForceCompile: true, Coverage: coverage.NewTracker()})
	if err != nil {
		t.Fatal(err)
	}
	resp := req.Run()
	if resp.Error != "" {
		t.Fatalf("in-band error: %s", resp.Error)
	}
	if !reflect.DeepEqual(resp.Result.CoverageHits, direct.Names()) {
		t.Errorf("coverage hits diverged: %v vs %v", resp.Result.CoverageHits, direct.Names())
	}
	if len(resp.Result.CoverageHits) == 0 {
		t.Error("expected nonzero coverage")
	}
}

func TestWireProgramErrorInBand(t *testing.T) {
	spec := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	req := &Request{Version: WireVersion, Spec: spec.Name(), Source: "class Broken {"}
	resp := req.Run()
	if resp.Error == "" || resp.Result != nil {
		t.Fatalf("want in-band parse error, got %+v", resp)
	}
	// The in-process backend must report the identical message, so seed
	// errors are backend-independent.
	_, err := lang.Parse("class Broken {")
	if err == nil || resp.Error != err.Error() {
		t.Errorf("error text diverged: %q vs %v", resp.Error, err)
	}
}

func TestWireVersionMismatch(t *testing.T) {
	resp := (&Request{Version: WireVersion + 7}).Run()
	if resp.Error == "" || !strings.Contains(resp.Error, "wire version") {
		t.Errorf("want version-mismatch error, got %+v", resp)
	}
}

func TestWireUnknownInjection(t *testing.T) {
	resp := (&Request{Version: WireVersion, Inject: "zap"}).Run()
	if resp.Error == "" || !strings.Contains(resp.Error, "unknown fault injection") {
		t.Errorf("want injection error, got %+v", resp)
	}
}

type nopHook struct{}

func (nopHook) Observe(*jit.Context, jit.Event) error { return nil }

func TestNewRequestRejectsCompileHook(t *testing.T) {
	_, err := NewRequest(wireProg(t), jvm.Reference(), jvm.Options{CompileHook: nopHook{}})
	if err == nil || !strings.Contains(err.Error(), "CompileHook") {
		t.Errorf("want CompileHook rejection, got %v", err)
	}
}

func TestOBVSliceRoundTrip(t *testing.T) {
	var o profile.OBV
	for i := range o {
		o[i] = int64(i * 7)
	}
	back, err := profile.OBVFromSlice(o.Slice())
	if err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Errorf("round trip: %v != %v", back, o)
	}
	if _, err := profile.OBVFromSlice(make([]int64, len(o)+1)); err == nil {
		t.Error("want length-mismatch error (taxonomy skew)")
	}
}

func TestFlagSetNamesRoundTrip(t *testing.T) {
	fs := profile.DefaultFlags()
	back := profile.FlagSetFromNames(fs.Names())
	if !reflect.DeepEqual(back, fs) {
		t.Errorf("round trip: %v != %v", back, fs)
	}
	if profile.FlagSetFromNames(nil) != nil {
		t.Error("empty names must decode to nil (preserves Options.Flags nil-ness)")
	}
}
