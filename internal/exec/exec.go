// Package exec is the pluggable execution-backend layer: everything
// that runs a program on a simulated JVM goes through an Executor, so
// the fuzzer, campaign engine, differential oracle, and reducer no
// longer care whether the target lives in this address space or in a
// child process. Two backends ship:
//
//   - InProcess wraps jvm.Run / jvm.RunDifferential directly. It is the
//     zero-configuration default and is byte-identical to calling the
//     jvm package, so every experiment table and determinism test pins
//     it.
//   - Subprocess shells each execution out to a `minijvm -exec-json`
//     child, giving OS-level fault isolation: a panic, hang, or runaway
//     allocation in the substrate kills only the child, and the exit
//     status is classified into the harness.FaultClass taxonomy.
//
// The split mirrors the paper's setup — MopFuzzer drives external JVM
// processes whose deaths ARE the crash oracle — and is the seam for the
// roadmap's sharded/remote backends and real-JVM adapters.
package exec

import (
	"context"

	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// Executor runs programs on simulated JVM targets. Implementations must
// be safe for concurrent use: the parallel campaign engine calls Execute
// from several workers.
type Executor interface {
	// Execute runs p on one spec. Program-level errors (unparseable,
	// ill-typed) return an error; JVM-level outcomes (crash, exception,
	// timeout, heap exhaustion) are inside the ExecResult. Backend-level
	// failures — the target process dying — return an error carrying a
	// harness.Faulter so the supervisor can classify them.
	Execute(ctx context.Context, p *lang.Program, spec jvm.Spec, opt jvm.Options) (*jvm.ExecResult, error)
	// ExecuteDifferential runs p on every spec and groups the outputs —
	// the paper's miscompilation oracle.
	ExecuteDifferential(ctx context.Context, p *lang.Program, specs []jvm.Spec, opt jvm.Options) (*jvm.Differential, error)
	// ExecutePlanDifferential runs p on ONE spec under every plan (nil =
	// the default plan) and groups the outputs — the plan-vs-plan oracle:
	// any divergence is ordering/phase sensitivity in that spec, since
	// program and spec are held fixed. opt.Plan is ignored; the plans
	// slice governs.
	ExecutePlanDifferential(ctx context.Context, p *lang.Program, spec jvm.Spec, plans []*jit.Plan, opt jvm.Options) (*jvm.Differential, error)
}

// InProcess executes on the simulated JVM inside this address space —
// the deterministic default. The context is advisory: in-process runs
// are bounded by the VM's step and heap fuel, and wall-clock containment
// is the harness watchdog's job, so Execute deliberately performs no
// cancellation checks (keeping results byte-identical to jvm.Run).
type InProcess struct{}

// Execute implements Executor via jvm.Run.
func (InProcess) Execute(_ context.Context, p *lang.Program, spec jvm.Spec, opt jvm.Options) (*jvm.ExecResult, error) {
	return jvm.Run(p, spec, opt)
}

// ExecuteDifferential implements Executor via jvm.RunDifferential.
func (InProcess) ExecuteDifferential(_ context.Context, p *lang.Program, specs []jvm.Spec, opt jvm.Options) (*jvm.Differential, error) {
	return jvm.RunDifferential(p, specs, opt)
}

// ExecutePlanDifferential implements Executor via jvm.RunPlanDifferential.
func (InProcess) ExecutePlanDifferential(_ context.Context, p *lang.Program, spec jvm.Spec, plans []*jit.Plan, opt jvm.Options) (*jvm.Differential, error) {
	return jvm.RunPlanDifferential(p, spec, plans, opt)
}

// Backends lists the recognized -backend names ("" is the in-process
// default). Shared by every layer that validates a backend choice — the
// CLI flags, the service JobSpec, and the fleet worker config.
func Backends() []string { return []string{"inprocess", "subprocess", "pool"} }

// ValidBackend reports whether name selects a known backend ("" counts:
// it inherits the caller's default).
func ValidBackend(name string) bool {
	if name == "" {
		return true
	}
	for _, b := range Backends() {
		if name == b {
			return true
		}
	}
	return false
}

// Default is the executor used when none is configured.
var Default Executor = InProcess{}

// Or returns ex when non-nil and the in-process default otherwise — the
// idiom every layer with an optional Executor field uses.
func Or(ex Executor) Executor {
	if ex != nil {
		return ex
	}
	return Default
}

// CloseExecutor releases a backend's resources when it holds any — the
// warm pool's children, for now. Safe on nil and on backends with
// nothing to release.
func CloseExecutor(ex Executor) {
	type closer interface{ Close() error }
	if c, ok := ex.(closer); ok {
		c.Close()
	}
}
