package exec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestServeStreamHelloAndNegotiation pins the serve-mode handshake: the
// child leads with a hello advertising [MinWireVersion, WireVersion],
// answers an empty in-range batch, and rejects an out-of-range one.
func TestServeStreamHelloAndNegotiation(t *testing.T) {
	batch := func(version int) string {
		b, err := json.Marshal(&BatchRequest{Version: version})
		if err != nil {
			t.Fatal(err)
		}
		return string(b) + "\n"
	}

	t.Run("in-range", func(t *testing.T) {
		var out bytes.Buffer
		if err := ServeStream(strings.NewReader(batch(WireVersion)), &out); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(&out)
		if !sc.Scan() {
			t.Fatal("no hello line")
		}
		var hello ServerHello
		if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
			t.Fatalf("hello not JSON: %v", err)
		}
		if hello.Version != WireVersion || hello.MinVersion != MinWireVersion {
			t.Errorf("hello advertises %d..%d, want %d..%d", hello.MinVersion, hello.Version, MinWireVersion, WireVersion)
		}
		if !hello.Compatible() {
			t.Error("own hello must be self-compatible")
		}
		if hello.PID == 0 {
			t.Error("hello missing pid")
		}
		if !sc.Scan() {
			t.Fatal("no batch response line")
		}
		var resp BatchResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("batch response not JSON: %v", err)
		}
		if resp.Version != WireVersion {
			t.Errorf("response version = %d, want %d", resp.Version, WireVersion)
		}
		if resp.Telemetry.HeapBytes == 0 {
			t.Error("telemetry missing heap self-report")
		}
	})

	t.Run("out-of-range", func(t *testing.T) {
		var out bytes.Buffer
		err := ServeStream(strings.NewReader(batch(WireVersion+1)), &out)
		if err == nil || !strings.Contains(err.Error(), "wire version") {
			t.Errorf("want wire-version error, got %v", err)
		}
	})

	t.Run("garbage-frame", func(t *testing.T) {
		var out bytes.Buffer
		err := ServeStream(strings.NewReader("not json\n"), &out)
		if err == nil || !strings.Contains(err.Error(), "decode batch") {
			t.Errorf("want decode error, got %v", err)
		}
	})

	t.Run("clean-eof", func(t *testing.T) {
		var out bytes.Buffer
		if err := ServeStream(strings.NewReader(""), &out); err != nil {
			t.Errorf("EOF after hello must be a clean shutdown, got %v", err)
		}
	})
}

// TestServeStreamExecutesBatch runs a real two-execution batch through
// the child-side loop and checks in-band results and telemetry
// accounting.
func TestServeStreamExecutesBatch(t *testing.T) {
	req := &Request{
		Version: WireVersion,
		Spec:    "openjdk-17",
		Source:  "class T { static void main() { print(7); } }",
	}
	b, err := json.Marshal(&BatchRequest{Version: WireVersion, Requests: []*Request{req, req}})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ServeStream(strings.NewReader(string(b)+"\n"), &out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	sc.Scan() // hello
	if !sc.Scan() {
		t.Fatal("no batch response")
	}
	var resp BatchResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != 2 {
		t.Fatalf("got %d responses, want 2", len(resp.Responses))
	}
	for i, r := range resp.Responses {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("response %d: error=%q result=%v", i, r.Error, r.Result)
		}
		if len(r.Result.Output) != 1 || r.Result.Output[0] != "7" {
			t.Errorf("response %d output = %v, want [7]", i, r.Result.Output)
		}
	}
	if resp.Telemetry.Executions != 2 {
		t.Errorf("telemetry executions = %d, want 2", resp.Telemetry.Executions)
	}
}
