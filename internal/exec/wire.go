package exec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/buginject"
	"repro/internal/coverage"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// injectedDeathCode is the exit status of the "die" injection: an
// arbitrary non-reserved code with no stderr marker, so the parent's
// classifier sees the same shape as an external SIGKILL/OOM death.
const injectedDeathCode = 7

// WireVersion is the -exec-json protocol version. Both sides send it and
// reject a mismatch, so a stale minijvm binary fails loudly instead of
// silently misreporting results.
//
// Version history:
//
//	1  single-shot request/response (`minijvm -exec-json`)
//	2  adds the long-lived serve mode (`minijvm -exec-serve`): a
//	   ServerHello handshake, NDJSON-framed BatchRequest/BatchResponse
//	   streams (N executions per round trip), child heap telemetry, and
//	   the "die"/"corrupt" fault-injection modes
//	3  adds compilation plans (RequestOptions.Plan): a request may carry
//	   a fuzzed pass schedule for the child's JIT. Plan-bearing requests
//	   require v3 on BOTH sides — a v3 child rejects a plan riding a
//	   request pinned below PlanWireVersion, and a v3 parent refuses to
//	   send plans to a serve child whose hello negotiates below it —
//	   so an old binary fails loudly instead of silently compiling
//	   under its fixed default plan.
//
// Serve mode negotiates: the child's hello advertises [MinWireVersion,
// WireVersion] and the parent proceeds only when its own range overlaps,
// so a stale binary on either side fails at connect time, not mid-batch.
const (
	WireVersion    = 3
	MinWireVersion = 1
	// PlanWireVersion is the minimum version able to express
	// RequestOptions.Plan.
	PlanWireVersion = 3
)

// ServerHello is the first line a `minijvm -exec-serve` child writes on
// stdout: the version range it speaks plus its pid (so parents can
// report which child died without platform-specific process digging).
type ServerHello struct {
	Version    int `json:"version"`
	MinVersion int `json:"min_version"`
	PID        int `json:"pid"`
}

// Compatible reports whether the advertised range overlaps this build's.
func (h *ServerHello) Compatible() bool {
	return h.MinVersion <= WireVersion && h.Version >= MinWireVersion
}

// BatchRequest is one serve-mode round trip: N executions encoded as a
// single NDJSON line. Batching amortizes the pipe round trip and lets a
// whole differential (one request per spec) ride one frame.
type BatchRequest struct {
	Version  int        `json:"version"`
	Requests []*Request `json:"requests"`
}

// BatchResponse answers a BatchRequest: Responses[i] corresponds to
// Requests[i], and Telemetry carries the child's self-reported state so
// the parent can recycle it before memory bloat matters.
type BatchResponse struct {
	Version   int            `json:"version"`
	Responses []*Response    `json:"responses"`
	Telemetry ChildTelemetry `json:"telemetry"`
}

// ChildTelemetry is the child's self-report after each batch:
// cumulative executions served and the Go heap high-water proxy
// (runtime.MemStats.HeapAlloc). Informational only — never part of
// result comparison — but the pool's recycle policy reads it.
type ChildTelemetry struct {
	Executions int64  `json:"executions"`
	HeapBytes  uint64 `json:"heap_bytes"`
}

// Child exit codes for `minijvm -exec-json`. JVM-level outcomes (crash,
// timeout, heap exhaustion) and program-level rejections are in-band —
// the child still exits ExitOK with a Response describing them. Only
// harness-level failures reach the exit status:
//
//	ExitOK           response written
//	ExitRequestError request unusable (malformed JSON, bad version)
//	ExitPanic        a Go panic escaped the substrate (the runtime's own
//	                 status for an uncaught panic; "panic:" + stack on
//	                 stderr) — classified FaultHarness by the parent
//
// A child killed by the parent's watchdog has no exit code of its own
// (signal death) and is classified FaultTimeout.
const (
	ExitOK           = 0
	ExitRequestError = 1
	ExitPanic        = 2 // Go runtime convention, listed for the classifier
)

// Request is one execution order sent to the child on stdin.
type Request struct {
	Version int            `json:"version"`
	Spec    string         `json:"spec"` // jvm.Spec.Name form, e.g. "openjdk-17"
	Source  string         `json:"source"`
	Options RequestOptions `json:"options"`
	// Inject is a harness-test seam: "panic" makes the child panic after
	// decoding the request, "hang" makes it block forever, "die" makes
	// it exit abruptly (the SIGKILL-shaped death, no panic marker), and
	// "corrupt" makes a serve-mode child emit a garbage frame instead of
	// the batch response — the subprocess analogues of the in-process
	// CompileHook fault injector, used to pin fault classification.
	// Production parents never set it.
	Inject string `json:"inject,omitempty"`
}

// RequestOptions is the serializable subset of jvm.Options. CompileHook
// (an arbitrary function) cannot cross the process boundary and
// CompileCache is child-local, so neither appears here.
type RequestOptions struct {
	Flags           []string `json:"flags,omitempty"` // profile.FlagSet.Names encoding
	ForceCompile    bool     `json:"force_compile,omitempty"`
	CompileOnly     string   `json:"compile_only,omitempty"`
	MaxSteps        int64    `json:"max_steps,omitempty"`
	MaxHeapUnits    int64    `json:"max_heap_units,omitempty"`
	PureInterpreter bool     `json:"pure_interpreter,omitempty"`
	StructuredOBV   bool     `json:"structured_obv,omitempty"`
	// Coverage asks the child to report which VM regions the run hit;
	// the parent merges them into its tracker.
	Coverage bool `json:"coverage,omitempty"`
	// BugsOverride + BugIDs mirror jvm.Options.Bugs, whose nil/empty
	// distinction matters: nil keeps the spec's armed set, an empty
	// override disarms every bug (the DisableBugs ablation).
	BugsOverride bool     `json:"bugs_override,omitempty"`
	BugIDs       []string `json:"bug_ids,omitempty"`
	// Plan mirrors jvm.Options.Plan (a fuzzed compilation plan; nil =
	// the fixed default pipeline). Wire v3+: both sides reject a plan
	// riding an older version (see PlanWireVersion).
	Plan *jit.Plan `json:"plan,omitempty"`
}

// Response is the child's answer on stdout.
type Response struct {
	Version int `json:"version"`
	// Error reports a program-level rejection (parse/type/verify), the
	// in-band equivalent of jvm.Run returning an error. Exclusive with
	// Result.
	Error   string   `json:"error,omitempty"`
	Result  *WireRun `json:"result,omitempty"`
	Timings Timings  `json:"timings"`
}

// Timings carries the child's own wall-clock measurements, informational
// only (never part of result comparison).
type Timings struct {
	TotalMicros int64 `json:"total_micros"`
}

// WireCrash is the serialized vm.Crash.
type WireCrash struct {
	BugID     string `json:"bug_id"`
	Component string `json:"component"`
	Message   string `json:"message"`
	FnKey     string `json:"fn_key"`
}

// WireRun is the serialized execution outcome: vm.Result plus the
// jvm.ExecResult envelope (log, OBV, triggered bugs, compilations).
type WireRun struct {
	Output        []string       `json:"output,omitempty"`
	ExceptionCode *int64         `json:"exception_code,omitempty"`
	Crash         *WireCrash     `json:"crash,omitempty"`
	TimedOut      bool           `json:"timed_out,omitempty"`
	HeapExhausted bool           `json:"heap_exhausted,omitempty"`
	MonitorLeaks  int            `json:"monitor_leaks,omitempty"`
	Steps         int64          `json:"steps"`
	GCCycles      int            `json:"gc_cycles"`
	AllocCount    int            `json:"alloc_count"`
	Tiers         map[string]int `json:"tiers,omitempty"`
	Deopts        int            `json:"deopts"`

	Log          string   `json:"log,omitempty"`
	OBV          []int64  `json:"obv"`
	Triggered    []string `json:"triggered,omitempty"` // bug catalog IDs, in trigger order
	Compiled     int      `json:"compiled"`
	CoverageHits []string `json:"coverage_hits,omitempty"`
}

// NewRequest builds the wire request for one execution. It fails when
// the options carry state that cannot cross the process boundary.
func NewRequest(p *lang.Program, spec jvm.Spec, opt jvm.Options) (*Request, error) {
	if opt.CompileHook != nil {
		return nil, fmt.Errorf("exec: CompileHook cannot be serialized to a subprocess backend; use InProcess")
	}
	req := &Request{
		Version: WireVersion,
		Spec:    spec.Name(),
		Source:  lang.Format(p),
		Options: RequestOptions{
			Flags:           opt.Flags.Names(),
			ForceCompile:    opt.ForceCompile,
			CompileOnly:     opt.CompileOnly,
			MaxSteps:        opt.MaxSteps,
			MaxHeapUnits:    opt.MaxHeapUnits,
			PureInterpreter: opt.PureInterpreter,
			StructuredOBV:   opt.StructuredOBV,
			Coverage:        opt.Coverage != nil,
			Plan:            opt.Plan,
		},
	}
	if opt.Bugs != nil {
		req.Options.BugsOverride = true
		for _, b := range opt.Bugs {
			req.Options.BugIDs = append(req.Options.BugIDs, b.ID)
		}
	}
	return req, nil
}

// Run executes the request against the in-process substrate — the child
// side of the protocol. Program-level errors become Response.Error;
// injected faults escape deliberately (that is their point).
func (r *Request) Run() *Response { return r.run(nil) }

// run is Run with an optional child-local compile cache. Serve-mode
// children thread one cache across every request they handle — legal
// because the cache is transparent (a hit is byte-equivalent to
// recompiling, pinned by TestCompileCacheTransparent) and the single
// biggest amortization the warm pool buys.
func (r *Request) run(cache *jit.Cache) *Response {
	start := time.Now()
	resp := &Response{Version: WireVersion}
	fail := func(err error) *Response {
		resp.Error = err.Error()
		resp.Timings.TotalMicros = time.Since(start).Microseconds()
		return resp
	}
	if r.Version < MinWireVersion || r.Version > WireVersion {
		return fail(fmt.Errorf("exec: wire version %d, child speaks %d..%d", r.Version, MinWireVersion, WireVersion))
	}
	if r.Options.Plan != nil && r.Version < PlanWireVersion {
		// A plan riding a pre-plan request version means the parent and
		// child disagree about the protocol; running it under the fixed
		// default plan would silently misattribute every result.
		return fail(fmt.Errorf("exec: request carries a compilation plan but pins wire version %d (plans need %d+)", r.Version, PlanWireVersion))
	}
	// Answer in the requester's dialect: a v1 parent driving a newer
	// child must see the version it pins.
	resp.Version = r.Version
	switch r.Inject {
	case "", "corrupt": // "corrupt" is the serve loop's job (frame-level)
	case "panic":
		panic("exec: injected fault (panic)")
	case "hang":
		for { // block until the parent's watchdog kills us (a bare
			time.Sleep(time.Hour) // select{} would trip the deadlock detector)
		}
	case "die":
		os.Exit(injectedDeathCode) // abrupt, marker-less death: the SIGKILL shape
	default:
		return fail(fmt.Errorf("exec: unknown fault injection %q", r.Inject))
	}
	spec, err := jvm.ParseSpec(r.Spec)
	if err != nil {
		return fail(err)
	}
	p, err := lang.Parse(r.Source)
	if err != nil {
		return fail(err)
	}
	opt := jvm.Options{
		Flags:           profile.FlagSetFromNames(r.Options.Flags),
		ForceCompile:    r.Options.ForceCompile,
		CompileOnly:     r.Options.CompileOnly,
		MaxSteps:        r.Options.MaxSteps,
		MaxHeapUnits:    r.Options.MaxHeapUnits,
		PureInterpreter: r.Options.PureInterpreter,
		StructuredOBV:   r.Options.StructuredOBV,
		CompileCache:    cache,
		Plan:            r.Options.Plan,
	}
	if r.Options.BugsOverride {
		opt.Bugs = []*buginject.Bug{}
		for _, id := range r.Options.BugIDs {
			b := buginject.ByID(id)
			if b == nil {
				return fail(fmt.Errorf("exec: unknown bug %q in override (catalog skew)", id))
			}
			opt.Bugs = append(opt.Bugs, b)
		}
	}
	if r.Options.Coverage {
		opt.Coverage = coverage.NewTracker()
	}
	res, err := jvm.Run(p, spec, opt)
	if err != nil {
		return fail(err)
	}
	resp.Result = encodeRun(res)
	resp.Result.CoverageHits = opt.Coverage.Names()
	resp.Timings.TotalMicros = time.Since(start).Microseconds()
	return resp
}

// Serve handles one -exec-json round on the given streams: decode a
// Request, run it, encode the Response. A returned error means the
// request itself was unusable (the child exits ExitRequestError);
// execution problems are in-band in the Response.
func Serve(in io.Reader, out io.Writer) error {
	var req Request
	if err := json.NewDecoder(in).Decode(&req); err != nil {
		return fmt.Errorf("exec: decode request: %w", err)
	}
	enc := json.NewEncoder(out)
	return enc.Encode(req.Run())
}

// encodeRun serializes an in-process execution outcome.
func encodeRun(res *jvm.ExecResult) *WireRun {
	r := res.Result
	w := &WireRun{
		Output:        r.Output,
		TimedOut:      r.TimedOut,
		HeapExhausted: r.HeapExhausted,
		MonitorLeaks:  r.MonitorLeaks,
		Steps:         r.Steps,
		GCCycles:      r.GCCycles,
		AllocCount:    r.AllocCount,
		Deopts:        r.Deopts,
		Log:           res.Log,
		OBV:           res.OBV.Slice(),
		Compiled:      res.Compiled,
	}
	if r.Exception != nil {
		code := r.Exception.Code
		w.ExceptionCode = &code
	}
	if r.Crash != nil {
		w.Crash = &WireCrash{BugID: r.Crash.BugID, Component: r.Crash.Component, Message: r.Crash.Message, FnKey: r.Crash.FnKey}
	}
	if len(r.Tiers) > 0 {
		w.Tiers = map[string]int{}
		for k, t := range r.Tiers {
			w.Tiers[k] = int(t)
		}
	}
	for _, b := range res.Triggered {
		w.Triggered = append(w.Triggered, b.ID)
	}
	return w
}

// decodeRun reconstructs the parent-side ExecResult. Triggered bugs are
// re-resolved from the catalog (both processes run the same build, so an
// unknown ID means binary skew and is an error, not a silent drop).
func decodeRun(w *WireRun, spec jvm.Spec) (*jvm.ExecResult, error) {
	obv, err := profile.OBVFromSlice(w.OBV)
	if err != nil {
		return nil, err
	}
	r := &vm.Result{
		Output:        w.Output,
		TimedOut:      w.TimedOut,
		HeapExhausted: w.HeapExhausted,
		MonitorLeaks:  w.MonitorLeaks,
		Steps:         w.Steps,
		GCCycles:      w.GCCycles,
		AllocCount:    w.AllocCount,
		Deopts:        w.Deopts,
	}
	if w.ExceptionCode != nil {
		r.Exception = &vm.Thrown{Code: *w.ExceptionCode}
	}
	if w.Crash != nil {
		r.Crash = &vm.Crash{BugID: w.Crash.BugID, Component: w.Crash.Component, Message: w.Crash.Message, FnKey: w.Crash.FnKey}
	}
	// The machine always materializes Tiers, so reconstruct a non-nil
	// map even when no method tiered up (keeps the decoded result
	// DeepEqual to the in-process one).
	r.Tiers = map[string]vm.Tier{}
	for k, t := range w.Tiers {
		r.Tiers[k] = vm.Tier(t)
	}
	res := &jvm.ExecResult{
		Spec:     spec,
		Result:   r,
		Log:      w.Log,
		OBV:      obv,
		Compiled: w.Compiled,
	}
	for _, id := range w.Triggered {
		b := buginject.ByID(id)
		if b == nil {
			return nil, fmt.Errorf("exec: child reported unknown bug %q (catalog skew)", id)
		}
		res.Triggered = append(res.Triggered, b)
	}
	return res, nil
}
